// Ablation of memory-system design choices (DESIGN.md S5): bank-level
// parallelism, power-down aggressiveness, and write-drain watermarks.
// These are the substrate knobs the MECC results sit on; the ablation
// shows the defaults are reasonable and the paper's conclusions are not
// artifacts of a pathological configuration.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace mecc;
  using namespace mecc::sim;

  const SimOptions opts = parse_options(argc, argv, 5'000'000);
  bench::BenchOutput out("ablation_memsys", opts);

  // Two representative workloads: latency-sensitive high-MPKI and
  // power-down-friendly low-MPKI.
  const char* kReps[] = {"sphinx3", "h264ref"};

  bench::print_banner("Ablation: bank-level parallelism",
                      "IPC and row-hit rate vs bank count");
  {
    TextTable t({"banks", "workload", "IPC", "row hit rate", "power mW"});
    for (std::uint32_t banks : {1u, 2u, 4u, 8u}) {
      SystemConfig cfg = bench::scaled_config(opts);
      cfg.geometry.banks = banks;
      // Keep capacity at 1 GB: scale rows inversely.
      cfg.geometry.rows_per_bank = 16 * 1024 * (4 / banks == 0 ? 1 : 4 / banks);
      if (banks == 8) cfg.geometry.rows_per_bank = 8 * 1024;
      for (const char* name : kReps) {
        const auto r = run_benchmark(trace::benchmark(name),
                                     EccPolicy::kNoEcc, cfg);
        const double hits =
            static_cast<double>(r.stats.counter("memctrl.row_hits"));
        const double misses =
            static_cast<double>(r.stats.counter("memctrl.row_misses")) +
            static_cast<double>(r.stats.counter("memctrl.row_conflicts"));
        t.add_row({std::to_string(banks), name, TextTable::num(r.ipc),
                   TextTable::num(hits / (hits + misses), 2),
                   TextTable::num(r.avg_power_mw, 1)});
        out.add_run("banks" + std::to_string(banks) + "." + name, r);
      }
    }
    t.print("Bank count sweep (Table II default: 4)");
  }

  bench::print_banner("Ablation: power-down idle threshold",
                      "aggressive (paper baseline) vs lazy power-down");
  {
    TextTable t({"threshold (mem cycles)", "workload", "IPC", "pd entries",
                 "power mW"});
    for (dram::MemCycle thr : {4u, 16u, 64u, 1024u}) {
      SystemConfig cfg = bench::scaled_config(opts);
      cfg.controller.power_down_idle_threshold = thr;
      for (const char* name : kReps) {
        const auto r = run_benchmark(trace::benchmark(name),
                                     EccPolicy::kNoEcc, cfg);
        t.add_row({std::to_string(thr), name, TextTable::num(r.ipc),
                   std::to_string(r.stats.counter("memctrl.pd_entries")),
                   TextTable::num(r.avg_power_mw, 1)});
        out.add_run("pdthr" + std::to_string(thr) + "." + name, r);
      }
    }
    t.print("Power-down threshold sweep (default: 4, 'aggressive')");
  }

  bench::print_banner("Ablation: write-drain watermarks",
                      "write-queue hysteresis vs read latency");
  {
    TextTable t({"drain high/low", "workload", "IPC", "power mW"});
    struct Marks {
      std::size_t high, low;
    };
    for (const Marks m : {Marks{8, 2}, Marks{24, 8}, Marks{31, 28}}) {
      SystemConfig cfg = bench::scaled_config(opts);
      cfg.controller.write_drain_high = m.high;
      cfg.controller.write_drain_low = m.low;
      for (const char* name : kReps) {
        const auto r = run_benchmark(trace::benchmark(name),
                                     EccPolicy::kNoEcc, cfg);
        t.add_row({std::to_string(m.high) + "/" + std::to_string(m.low),
                   name, TextTable::num(r.ipc),
                   TextTable::num(r.avg_power_mw, 1)});
        out.add_run("drain" + std::to_string(m.high) + "_" +
                        std::to_string(m.low) + "." + name,
                    r);
      }
    }
    t.print("Write-drain hysteresis sweep (default: 24/8)");
  }
  return out.write();
}
