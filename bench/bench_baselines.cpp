// Related-work comparison (paper S VII): refresh savings and VRT
// robustness of MECC versus RAIDR-style retention-aware multirate
// refresh and Flikker-style critical-data partitioning.
//
// Paper's qualitative claims, reproduced quantitatively here:
//  * Flikker's savings are Amdahl-limited by the critical region
//    (1/4 critical -> effective rate ~1/3, vs MECC's 1/16).
//  * Retention-profiling schemes cannot reach a 1 s period on this
//    technology (the weakest cell of a 16 KB row essentially never
//    retains 2 s) and are vulnerable to VRT; MECC tolerates random
//    failures by construction.
#include <cstdio>

#include "baselines/hiecc.h"
#include "baselines/raidr.h"
#include "bench_util.h"
#include "mecc/memory_image.h"
#include "reliability/retention_model.h"

int main(int argc, char** argv) {
  using namespace mecc;
  using namespace mecc::baselines;

  const sim::SimOptions opts = sim::parse_options(argc, argv, 0);
  bench::BenchOutput out("baselines", opts);

  bench::print_banner("Related-work comparison: MECC vs RAIDR vs Flikker",
                      "refresh reduction in idle mode + VRT robustness");

  const reliability::RetentionModel retention;
  RaidrConfig rc;
  Raidr raidr(rc);
  Rng rng(11);
  const RaidrProfile profile = raidr.profile(retention, rng);

  TextTable t({"scheme", "mechanism", "refresh reduction", "needs sw changes",
               "VRT-safe"});
  t.add_row({"Baseline", "64 ms everywhere", "1.0x", "no", "yes"});
  t.add_row({"Flikker (1/4 critical)", "partition + slow non-critical",
             TextTable::num(
                 1.0 / flikker_effective_refresh_rate(0.25, 16.0), 1) + "x",
             "YES (programmer)", "no"});
  t.add_row({"RAIDR-style (profiled bins)", "multirate by row retention",
             TextTable::num(profile.refresh_reduction(rc), 1) + "x", "no",
             "NO"});
  t.add_row({"MECC (idle)", "ECC-6 + 1 s self-refresh", "15.6x", "no",
             "yes"});
  t.print("Idle-mode refresh reduction");
  out.add_scalar("flikker_refresh_reduction",
                 1.0 / flikker_effective_refresh_rate(0.25, 16.0));
  out.add_scalar("raidr_refresh_reduction", profile.refresh_reduction(rc));

  std::printf("\nRAIDR bin occupancy (64 ms / 256 ms / 1 s): "
              "%llu / %llu / %llu rows\n",
              static_cast<unsigned long long>(profile.rows_per_bin[0]),
              static_cast<unsigned long long>(profile.rows_per_bin[1]),
              static_cast<unsigned long long>(profile.rows_per_bin[2]));
  std::printf("-> on this 60 nm retention curve, profiling alone cannot"
              " reach the 1 s bin; ECC is required.\n");

  // VRT: cells that flip to a low-retention state after profiling.
  bench::print_banner("Variable Retention Time exposure",
                      "expected corrupted rows after profiling");
  TextTable v({"VRT rate (per cell)", "RAIDR victim rows (expected)",
               "MECC victim lines"});
  for (double rate : {1e-12, 1e-10, 1e-9, 1e-8}) {
    // MECC: a VRT cell is just one more random bad bit; ECC-6 absorbs it
    // unless the line already carries 6 errors (probability ~1e-16/line,
    // Table I) - effectively zero.
    v.add_row({TextTable::sci(rate),
               TextTable::num(raidr.expected_vrt_victim_rows(profile, rate),
                              2),
               "~0 (absorbed by ECC-6)"});
  }
  v.print("Post-profiling retention surprises");

  // Demonstrate MECC absorbing a VRT event at the bit level.
  morph::MemoryImage img(64);
  Rng drng(3);
  BitVec data(morph::kDataBits);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data.set(i, drng.chance(0.5));
  }
  img.write_line(7, data, morph::LineMode::kStrong);
  reliability::FaultInjector fi(4);
  (void)img.inject_retention_errors(3.16e-5, fi);  // idle period at 1 s
  img.flip_stored_bit(7, 123);  // the VRT cell: one extra surprise bit
  const auto decoded = img.read_line(7, true);
  const bool vrt_intact = decoded.has_value() && *decoded == data;
  std::printf("\nBit-level check: strong line with idle-period errors + a"
              " VRT surprise decodes %s.\n",
              vrt_intact ? "intact" : "CORRUPTED");
  out.add_scalar("vrt_line_intact", vrt_intact ? 1.0 : 0.0);

  // Hi-ECC (S VII-C): coarse-granularity strong ECC trades storage for
  // overfetch and read-modify-write traffic.
  bench::print_banner("Hi-ECC granularity trade-off (S VII-C)",
                      "parity storage vs per-64B-access traffic");
  TextTable h({"granularity", "parity bits", "storage overhead",
               "read overfetch", "write amplification"});
  for (std::size_t block : {64u, 256u, 1024u, 4096u}) {
    const auto c = strong_ecc_granularity(block, 6);
    h.add_row({std::to_string(block) + " B (t=6)",
               std::to_string(c.parity_bits),
               TextTable::pct(c.storage_overhead, 1).substr(1),
               TextTable::num(c.read_overfetch, 0) + "x",
               TextTable::num(c.write_amplification, 0) + "x"});
  }
  h.print("Strong-ECC protection granularity");
  std::printf("\nMECC stays at 64 B: zero extra storage (the code lives in"
              " the existing (72,64) spare bits) and no overfetch; Hi-ECC's"
              " 1 KB blocks save parity but move 16-32x the data per"
              " access, and its line-disable trick would punch holes in"
              " main memory.\n");
  return out.write();
}
