// Extension bench: when does an idle period pay for MECC's ECC-Upgrade?
//
// The upgrade walk on idle entry costs energy (read + decode + encode +
// write per downgraded line); the 16x-slower refresh then saves
// ~0.95 mW of idle power. Short idle periods don't amortize the walk -
// this bench quantifies the break-even duration per footprint, showing
// why the paper's "idle periods are several minutes" observation matters
// and how MDT (fewer lines to upgrade) shortens the break-even.
#include <cstdio>

#include "bench_util.h"
#include "power/power_model.h"

int main(int argc, char** argv) {
  using namespace mecc;
  using namespace mecc::sim;

  const SimOptions opts = parse_options(argc, argv, 0);
  bench::BenchOutput out("breakeven", opts);

  bench::print_banner("Extension: idle-duration break-even for MECC",
                      "ECC-Upgrade energy vs slow-refresh savings");

  const power::PowerModel pm;
  TextTable t({"upgraded footprint", "lines", "upgrade mJ", "upgrade ms",
               "break-even idle"});
  for (const double mb : {16.0, 64.0, 128.0, 256.0, 1024.0}) {
    const auto lines =
        static_cast<std::uint64_t>(mb * 1024 * 1024 / kLineBytes);
    const BreakEven b = mecc_break_even(pm, lines);
    t.add_row({TextTable::num(mb, 0) + " MB (" +
                   (mb == 1024.0 ? "no MDT" : "MDT-bounded") + ")",
               std::to_string(b.lines_upgraded),
               TextTable::num(b.upgrade_energy_mj, 1),
               TextTable::num(b.upgrade_seconds * 1e3, 0),
               TextTable::num(b.break_even_seconds, 0) + " s"});
    out.add_scalar("break_even_s_at_" +
                       std::to_string(static_cast<int>(mb)) + "mb",
                   b.break_even_seconds);
  }
  t.print("Break-even idle duration by upgraded footprint");

  const BreakEven avg = mecc_break_even(pm, 128ull << 14);  // 128 MB
  std::printf("\nIdle power saving while asleep: %.2f mW\n",
              avg.idle_saving_mw);
  out.add_scalar("idle_saving_mw", avg.idle_saving_mw);
  std::printf("\nReading: with MDT bounding the walk to the ~128 MB average"
              " footprint, MECC wins for idle periods longer than ~a"
              " minute - comfortably inside the paper's 'idle periods are"
              " several minutes' regime (S III). Without MDT, the full-"
              "memory walk also costs 8x the energy, stretching the"
              " break-even correspondingly (S VI-A's energy argument).\n");
  return out.write();
}
