// Google-benchmark microbenchmarks for the real ECC codecs (supports the
// S III-E latency/area discussion): SECDED and BCH-t encode/decode
// throughput, with and without injected errors.
//
// Beyond the google-benchmark suite, --throughput runs a lines/sec
// comparison of the word-parallel codecs against the retained scalar
// references (src/ecc/scalar_reference.h) and, with --perf-out=, writes
// the numbers as mecc-codec-throughput-v1 JSON for scripts/perf_smoke.sh
// to fold into BENCH_perf.json (docs/PERFORMANCE.md).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "ecc/bch.h"
#include "ecc/scalar_reference.h"
#include "ecc/secded.h"
#include "mecc/line_codec.h"
#include "reliability/fault_injection.h"

namespace {

using namespace mecc;

BitVec random_bits(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.chance(0.5));
  return v;
}

void BM_SecdedEncode64(benchmark::State& state) {
  const ecc::Secded code(64);
  const BitVec d = random_bits(64, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(d));
  }
}
BENCHMARK(BM_SecdedEncode64);

void BM_SecdedDecodeClean64(benchmark::State& state) {
  const ecc::Secded code(64);
  const BitVec cw = code.encode(random_bits(64, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(cw));
  }
}
BENCHMARK(BM_SecdedDecodeClean64);

void BM_SecdedEncode512(benchmark::State& state) {
  const ecc::Secded code(512);
  const BitVec d = random_bits(512, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(d));
  }
}
BENCHMARK(BM_SecdedEncode512);

void BM_SecdedDecodeOneError512(benchmark::State& state) {
  const ecc::Secded code(512);
  BitVec cw = code.encode(random_bits(512, 4));
  cw.flip(100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(cw));
  }
}
BENCHMARK(BM_SecdedDecodeOneError512);

void BM_BchEncode(benchmark::State& state) {
  const ecc::Bch code(10, static_cast<std::size_t>(state.range(0)), 512);
  const BitVec d = random_bits(512, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(d));
  }
}
BENCHMARK(BM_BchEncode)->Arg(1)->Arg(3)->Arg(6);

void BM_BchDecodeClean(benchmark::State& state) {
  const ecc::Bch code(10, static_cast<std::size_t>(state.range(0)), 512);
  const BitVec cw = code.encode(random_bits(512, 6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(cw));
  }
}
BENCHMARK(BM_BchDecodeClean)->Arg(1)->Arg(6);

void BM_BchDecodeWithErrors(benchmark::State& state) {
  // Full Berlekamp-Massey + Chien search path at t errors.
  const std::size_t nerr = static_cast<std::size_t>(state.range(0));
  const ecc::Bch code(10, 6, 512);
  BitVec cw = code.encode(random_bits(512, 7));
  reliability::FaultInjector fi(8);
  fi.inject_exact(cw, nerr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(cw));
  }
}
BENCHMARK(BM_BchDecodeWithErrors)->Arg(1)->Arg(3)->Arg(6);

void BM_LineCodecStoreStrong(benchmark::State& state) {
  const morph::LineCodec codec;
  const BitVec d = random_bits(512, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.store(d, morph::LineMode::kStrong));
  }
}
BENCHMARK(BM_LineCodecStoreStrong);

void BM_LineCodecLoadTrialDecode(benchmark::State& state) {
  // Worst case: mode replicas split 2-2, forcing trial decoding.
  const morph::LineCodec codec;
  BitVec stored = codec.store(random_bits(512, 10), morph::LineMode::kStrong);
  stored.flip(512);
  stored.flip(513);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.load(stored));
  }
}
BENCHMARK(BM_LineCodecLoadTrialDecode);

void BM_LineCodecLoadBatch(benchmark::State& state) {
  // The shadow-memory scrub / ECC-Upgrade walk shape: decode a block of
  // clean strong-mode lines through the batch entry point.
  const morph::LineCodec codec;
  std::vector<BitVec> lines;
  for (std::uint64_t s = 0; s < 64; ++s) {
    lines.push_back(codec.store(random_bits(512, 11 + s),
                                morph::LineMode::kStrong));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.load_batch(lines));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lines.size()));
}
BENCHMARK(BM_LineCodecLoadBatch);

// ---------------------------------------------------------------------------
// --throughput: lines/sec of the word-parallel codecs vs the retained
// scalar references, on identical inputs. The ratio IS the speedup over
// the pre-vectorization implementation (the references are verbatim
// copies of it).

constexpr std::size_t kPoolLines = 256;

struct ThroughputRow {
  std::string name;
  double vec_lps = 0.0;     // vectorized lines/sec
  double scalar_lps = 0.0;  // scalar-reference lines/sec (0 = n/a)
};

/// Runs `body` (which processes kPoolLines lines) repeatedly until at
/// least ~60 ms of wall time accumulates, then reports lines/sec.
template <typename F>
double measure_lines_per_sec(F&& body) {
  using clock = std::chrono::steady_clock;
  body();  // warm-up: touch tables, fault in scratch
  std::uint64_t reps = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::uint64_t r = 0; r < reps; ++r) body();
    const double secs =
        std::chrono::duration<double>(clock::now() - t0).count();
    if (secs >= 0.06) {
      return static_cast<double>(reps * kPoolLines) / secs;
    }
    reps *= 4;
  }
}

template <typename Code>
double encode_lps(const Code& code, const std::vector<BitVec>& datas) {
  return measure_lines_per_sec([&] {
    for (const BitVec& d : datas) benchmark::DoNotOptimize(code.encode(d));
  });
}

template <typename Code>
double decode_lps(const Code& code, const std::vector<BitVec>& cws) {
  return measure_lines_per_sec([&] {
    for (const BitVec& cw : cws) benchmark::DoNotOptimize(code.decode(cw));
  });
}

std::vector<ThroughputRow> run_throughput(std::uint64_t seed) {
  std::vector<ThroughputRow> rows;

  const auto pool = [&](std::size_t bits, std::uint64_t salt) {
    std::vector<BitVec> v;
    v.reserve(kPoolLines);
    for (std::uint64_t i = 0; i < kPoolLines; ++i) {
      v.push_back(random_bits(bits, seed * 7919 + salt * 131 + i));
    }
    return v;
  };

  {
    const ecc::Secded vec(64);
    const ecc::reference::ScalarSecded ref(64);
    const std::vector<BitVec> datas = pool(64, 1);
    std::vector<BitVec> cws;
    for (const BitVec& d : datas) cws.push_back(vec.encode(d));
    rows.push_back({"secded64_encode", encode_lps(vec, datas),
                    encode_lps(ref, datas)});
    rows.push_back({"secded64_decode_clean", decode_lps(vec, cws),
                    decode_lps(ref, cws)});
  }
  {
    const ecc::Secded vec(512);
    const ecc::reference::ScalarSecded ref(512);
    const std::vector<BitVec> datas = pool(512, 2);
    std::vector<BitVec> cws;
    for (const BitVec& d : datas) cws.push_back(vec.encode(d));
    rows.push_back({"secded512_encode", encode_lps(vec, datas),
                    encode_lps(ref, datas)});
    rows.push_back({"secded512_decode_clean", decode_lps(vec, cws),
                    decode_lps(ref, cws)});
  }
  {
    const ecc::Bch vec(10, 6, 512);
    const ecc::reference::ScalarBch ref(10, 6, 512);
    const std::vector<BitVec> datas = pool(512, 3);
    std::vector<BitVec> cws;
    for (const BitVec& d : datas) cws.push_back(vec.encode(d));
    rows.push_back({"bch_t6_encode", encode_lps(vec, datas),
                    encode_lps(ref, datas)});
    rows.push_back({"bch_t6_decode_clean", decode_lps(vec, cws),
                    decode_lps(ref, cws)});
  }
  {
    // LineCodec has no scalar twin; its lines/sec still lands in the
    // report because the MECC walks consume the codecs through it.
    const morph::LineCodec codec;
    std::vector<BitVec> stored;
    for (std::uint64_t i = 0; i < kPoolLines; ++i) {
      stored.push_back(codec.store(random_bits(512, seed * 31 + i),
                                   i % 2 == 0 ? morph::LineMode::kStrong
                                              : morph::LineMode::kWeak));
    }
    rows.push_back({"line_codec_load_batch", measure_lines_per_sec([&] {
                      benchmark::DoNotOptimize(codec.load_batch(stored));
                    }),
                    0.0});
  }
  return rows;
}

bool write_throughput_json(const std::vector<ThroughputRow>& rows,
                           const std::string& path, std::uint64_t seed) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    std::fprintf(stderr, "error: cannot open --perf-out file '%s'\n",
                 path.c_str());
    return false;
  }
  char buf[64];
  const auto num = [&buf](double v) {
    std::snprintf(buf, sizeof buf, "%.1f", v);
    return std::string(buf);
  };
  f << "{\n  \"schema\": \"mecc-codec-throughput-v1\",\n";
  f << "  \"seed\": " << seed << ",\n  \"entries\": [";
  bool first = true;
  for (const auto& r : rows) {
    if (!first) f << ",";
    first = false;
    f << "\n    {\"name\": \"" << r.name << "\", \"lines_per_sec\": "
      << num(r.vec_lps);
    if (r.scalar_lps > 0.0) {
      char sbuf[32];
      std::snprintf(sbuf, sizeof sbuf, "%.3f", r.vec_lps / r.scalar_lps);
      f << ", \"scalar_lines_per_sec\": " << num(r.scalar_lps)
        << ", \"speedup\": " << sbuf;
    }
    f << "}";
  }
  f << "\n  ]\n}\n";
  return f.good();
}

void print_throughput(const std::vector<ThroughputRow>& rows) {
  std::string t;
  t += "codec throughput (lines/sec), word-parallel vs scalar reference\n";
  char line[160];
  std::snprintf(line, sizeof line, "%-24s %14s %14s %8s\n", "path",
                "vectorized", "scalar", "speedup");
  t += line;
  for (const auto& r : rows) {
    if (r.scalar_lps > 0.0) {
      std::snprintf(line, sizeof line, "%-24s %14.0f %14.0f %7.2fx\n",
                    r.name.c_str(), r.vec_lps, r.scalar_lps,
                    r.vec_lps / r.scalar_lps);
    } else {
      std::snprintf(line, sizeof line, "%-24s %14.0f %14s %8s\n",
                    r.name.c_str(), r.vec_lps, "-", "-");
    }
    t += line;
  }
  console_write(t);
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the shared SimOptions flags
// must be stripped before benchmark::Initialize, which rejects arguments
// it does not recognize. The strip set comes from parse_options itself
// (the `consumed` report) so new shared flags never leak here again —
// the old hard-coded list missed --fast-forward=/--trace=/--metrics-*
// and the bench exited 1 when any of them was passed.
int main(int argc, char** argv) {
  std::vector<bool> consumed;
  const mecc::sim::SimOptions opts =
      mecc::sim::parse_options(argc, argv, 0, &consumed);

  bool throughput = false;
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    if (consumed[static_cast<std::size_t>(i)]) continue;
    if (std::strcmp(argv[i], "--throughput") == 0) {
      throughput = true;
      continue;
    }
    bench_argv.push_back(argv[i]);
  }

  if (throughput) {
    // The throughput report owns --perf-out (mecc-codec-throughput-v1);
    // keep BenchOutput from writing its suite-shaped perf report there.
    mecc::sim::SimOptions bench_opts = opts;
    bench_opts.perf_out.clear();
    mecc::bench::BenchOutput out("ecc_codec_throughput", bench_opts);
    const std::vector<ThroughputRow> rows = run_throughput(opts.seed);
    print_throughput(rows);
    if (!opts.perf_out.empty() &&
        !write_throughput_json(rows, opts.perf_out, opts.seed)) {
      return 1;
    }
    out.add_scalar("completed", 1.0);
    return out.write();
  }

  mecc::bench::BenchOutput out("ecc_codec", opts);
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // The microbenchmark timings are host-dependent by nature, so the JSON
  // report carries only a determinism-safe marker that the run finished
  // (google-benchmark's own --benchmark_out= serves the timing export).
  out.add_scalar("completed", 1.0);
  return out.write();
}
