// Google-benchmark microbenchmarks for the real ECC codecs (supports the
// S III-E latency/area discussion): SECDED and BCH-t encode/decode
// throughput, with and without injected errors.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>

#include "bench_util.h"
#include "common/rng.h"
#include "ecc/bch.h"
#include "ecc/secded.h"
#include "mecc/line_codec.h"
#include "reliability/fault_injection.h"

namespace {

using namespace mecc;

BitVec random_bits(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.chance(0.5));
  return v;
}

void BM_SecdedEncode64(benchmark::State& state) {
  const ecc::Secded code(64);
  const BitVec d = random_bits(64, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(d));
  }
}
BENCHMARK(BM_SecdedEncode64);

void BM_SecdedDecodeClean64(benchmark::State& state) {
  const ecc::Secded code(64);
  const BitVec cw = code.encode(random_bits(64, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(cw));
  }
}
BENCHMARK(BM_SecdedDecodeClean64);

void BM_SecdedEncode512(benchmark::State& state) {
  const ecc::Secded code(512);
  const BitVec d = random_bits(512, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(d));
  }
}
BENCHMARK(BM_SecdedEncode512);

void BM_SecdedDecodeOneError512(benchmark::State& state) {
  const ecc::Secded code(512);
  BitVec cw = code.encode(random_bits(512, 4));
  cw.flip(100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(cw));
  }
}
BENCHMARK(BM_SecdedDecodeOneError512);

void BM_BchEncode(benchmark::State& state) {
  const ecc::Bch code(10, static_cast<std::size_t>(state.range(0)), 512);
  const BitVec d = random_bits(512, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(d));
  }
}
BENCHMARK(BM_BchEncode)->Arg(1)->Arg(3)->Arg(6);

void BM_BchDecodeClean(benchmark::State& state) {
  const ecc::Bch code(10, static_cast<std::size_t>(state.range(0)), 512);
  const BitVec cw = code.encode(random_bits(512, 6));
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(cw));
  }
}
BENCHMARK(BM_BchDecodeClean)->Arg(1)->Arg(6);

void BM_BchDecodeWithErrors(benchmark::State& state) {
  // Full Berlekamp-Massey + Chien search path at t errors.
  const std::size_t nerr = static_cast<std::size_t>(state.range(0));
  const ecc::Bch code(10, 6, 512);
  BitVec cw = code.encode(random_bits(512, 7));
  reliability::FaultInjector fi(8);
  fi.inject_exact(cw, nerr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(cw));
  }
}
BENCHMARK(BM_BchDecodeWithErrors)->Arg(1)->Arg(3)->Arg(6);

void BM_LineCodecStoreStrong(benchmark::State& state) {
  const morph::LineCodec codec;
  const BitVec d = random_bits(512, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.store(d, morph::LineMode::kStrong));
  }
}
BENCHMARK(BM_LineCodecStoreStrong);

void BM_LineCodecLoadTrialDecode(benchmark::State& state) {
  // Worst case: mode replicas split 2-2, forcing trial decoding.
  const morph::LineCodec codec;
  BitVec stored = codec.store(random_bits(512, 10), morph::LineMode::kStrong);
  stored.flip(512);
  stored.flip(513);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.load(stored));
  }
}
BENCHMARK(BM_LineCodecLoadTrialDecode);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the shared SimOptions flags
// (--out=, --instructions=, --seed=, --jobs=) must be stripped before
// benchmark::Initialize, which rejects arguments it does not recognize.
int main(int argc, char** argv) {
  const mecc::sim::SimOptions opts = mecc::sim::parse_options(argc, argv, 0);
  mecc::bench::BenchOutput out("ecc_codec", opts);

  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    const std::string a(argv[i]);
    if (a.rfind("--out=", 0) == 0 || a.rfind("--instructions=", 0) == 0 ||
        a.rfind("--seed=", 0) == 0 || a.rfind("--jobs=", 0) == 0) {
      continue;
    }
    bench_argv.push_back(argv[i]);
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  // The microbenchmark timings are host-dependent by nature, so the JSON
  // report carries only a determinism-safe marker that the run finished
  // (google-benchmark's own --benchmark_out= serves the timing export).
  out.add_scalar("completed", 1.0);
  return out.write();
}
