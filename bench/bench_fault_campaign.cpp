// End-to-end fault-injection campaigns (ISSUE 3 tentpole).
//
// Two halves:
//
//  1. Monte-Carlo campaign over the real 576-bit MECC line layout:
//     BER x idle-period-count x protection-mode cells, each a
//     population of lines stored through the real LineCodec, corrupted
//     by the FaultInjector, and read back. The empirical
//     uncorrectable-line rate of every cell is cross-checked against
//     the reliability::failure_analysis binomial analytics and must
//     land inside the binomial confidence interval — the timing-free
//     data path and the paper's Table I math agree or the bench fails.
//     Cells run on the shared thread pool (--jobs=N) with per-cell
//     seeds, so the JSON emission is byte-identical at any job count.
//
//  2. A DUE-handling demo on the full timing simulator: a MECC System
//     with the fault campaign enabled lives through active/idle cycles
//     at an elevated BER, and the injected DUEs climb the
//     memctrl::DuePolicy degradation ladder (retry -> scrub -> forced
//     ECC-Upgrade -> 64 ms refresh fallback + degraded latch). Every
//     rung is visible in the errors.* stats of the emitted RunResult.
//
// docs/RELIABILITY.md describes the subsystem; --ber=X overrides the
// demo's injected BER.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "mecc/memory_image.h"
#include "reliability/failure_analysis.h"
#include "reliability/fault_injection.h"
#include "reliability/retention_model.h"
#include "sim/thread_pool.h"

namespace {

using namespace mecc;

/// One campaign cell: a (ber, idle-period count, mode) population.
struct Cell {
  double ber = 0.0;       // per-idle-period raw BER
  unsigned idles = 1;     // consecutive idle periods before wake-up reads
  morph::LineMode mode = morph::LineMode::kStrong;
  std::string label;      // stable scalar-key prefix
};

struct CellResult {
  std::size_t lines = 0;
  std::size_t failures = 0;  // DUE + silent corruption
  std::size_t due = 0;
  std::size_t silent = 0;
  std::uint64_t injected_bits = 0;
  double effective_ber = 0.0;  // n injections of p, flips cancel in pairs
  double analytic_p = 0.0;     // line_failure_probability at effective_ber
  bool ci_ok = false;          // empirical inside the binomial CI
};

/// Net flip probability after `n` independent injections at `p` (a bit
/// flipped twice is back to clean): q = (1 - (1-2p)^n) / 2.
[[nodiscard]] double effective_ber(double p, unsigned n) {
  return 0.5 * (1.0 - std::pow(1.0 - 2.0 * p, static_cast<double>(n)));
}

[[nodiscard]] CellResult run_cell(const Cell& cell, std::size_t lines,
                                  std::uint64_t seed) {
  CellResult res;
  res.lines = lines;
  res.effective_ber = effective_ber(cell.ber, cell.idles);

  morph::MemoryImage image(lines);
  Rng data_rng(seed);
  std::vector<BitVec> expected;
  expected.reserve(lines);
  for (std::size_t i = 0; i < lines; ++i) {
    BitVec d(morph::kDataBits);
    for (std::size_t j = 0; j < d.size(); ++j) d.set(j, data_rng.chance(0.5));
    expected.push_back(d);
    image.write_line(i, d, cell.mode);
  }

  reliability::FaultInjector injector(seed ^ 0x5DEECE66Dull);
  for (unsigned n = 0; n < cell.idles; ++n) {
    res.injected_bits += image.inject_retention_errors(cell.ber, injector);
  }

  for (std::size_t i = 0; i < lines; ++i) {
    const auto data = image.read_line(i, /*downgrade=*/false);
    if (!data.has_value()) {
      ++res.due;
      ++res.failures;
    } else if (*data != expected[i]) {
      ++res.silent;
      ++res.failures;
    }
  }

  // Analytic prediction on the decoder's actual codeword length: the 4
  // mode-replica bits sit outside both codewords (trial decoding absorbs
  // their flips), so weak decode spans 523 bits (t=1) and strong decode
  // 572 bits (t=6).
  const bool strong = cell.mode == morph::LineMode::kStrong;
  res.analytic_p = reliability::line_failure_probability(
      strong ? 572 : 523, strong ? 6 : 1, res.effective_ber);

  // Binomial confidence interval: |obs - Np| <= z*sigma + slack, with a
  // wide z (4.5) plus absolute slack 2 so near-zero expectations don't
  // flake while real model/datapath disagreements still trip it.
  const double n = static_cast<double>(lines);
  const double mean = n * res.analytic_p;
  const double sigma =
      std::sqrt(std::max(0.0, n * res.analytic_p * (1.0 - res.analytic_p)));
  res.ci_ok =
      std::abs(static_cast<double>(res.failures) - mean) <= 4.5 * sigma + 2.0;
  return res;
}

/// Scalar-key-safe exponent formatting: 3.2e-03 -> "3.2e-03".
[[nodiscard]] std::string ber_label(double ber) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1e", ber);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const sim::SimOptions opts = sim::parse_options(argc, argv, 2000);
  bench::BenchOutput out("fault_campaign", opts);
  const std::size_t kLines = opts.instructions;  // lines per cell

  bench::print_banner(
      "Fault-injection campaign: BER x idle-count x mode, DUE ladder",
      "S II-C / Table I cross-check + graceful refresh degradation");

  // ---- half 1: Monte-Carlo cells, cross-checked against analytics ----
  const reliability::RetentionModel retention;
  std::vector<Cell> cells;
  std::vector<double> bers;
  for (double period : {1.0, 4.0, 16.0}) {
    bers.push_back(retention.bit_failure_probability(period));
  }
  bers.push_back(4e-3);  // elevated: measurable strong-mode failure rates
  bers.push_back(8e-3);
  for (double ber : bers) {
    for (unsigned idles : {1u, 4u}) {
      for (morph::LineMode mode :
           {morph::LineMode::kWeak, morph::LineMode::kStrong}) {
        Cell c;
        c.ber = ber;
        c.idles = idles;
        c.mode = mode;
        c.label = std::string(mode == morph::LineMode::kStrong ? "strong"
                                                               : "weak") +
                  "_n" + std::to_string(idles) + "_ber" + ber_label(ber);
        cells.push_back(std::move(c));
      }
    }
  }

  std::vector<CellResult> results(cells.size());
  {
    sim::ThreadPool pool(opts.jobs);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      pool.submit([&, i] {
        // Per-cell seed: results identical at any --jobs value.
        results[i] = run_cell(cells[i], kLines, opts.seed + 1000 * (i + 1));
      });
    }
    pool.wait_idle();
  }

  TextTable t({"cell", "eff. BER", "E[fail]", "observed", "DUE", "silent",
               "CI"});
  std::size_t ci_failures = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& r = results[i];
    if (!r.ci_ok) ++ci_failures;
    t.add_row({cells[i].label, TextTable::sci(r.effective_ber),
               TextTable::num(r.analytic_p * static_cast<double>(r.lines), 2),
               std::to_string(r.failures), std::to_string(r.due),
               std::to_string(r.silent), r.ci_ok ? "ok" : "FAIL"});
    out.add_scalar(cells[i].label + "_failures",
                   static_cast<double>(r.failures));
    out.add_scalar(cells[i].label + "_analytic_p", r.analytic_p);
    out.add_scalar(cells[i].label + "_ci_ok", r.ci_ok ? 1.0 : 0.0);
  }
  t.print("Campaign cells: " + std::to_string(kLines) +
          " lines each; empirical failures vs binomial analytics");
  out.add_scalar("ci_failures", static_cast<double>(ci_failures));

  // ---- half 2: DUE degradation ladder on the timing simulator ----
  // Elevated BER so a small shadow population sees real DUEs; the
  // transient read noise gives the retry rung genuine successes.
  const double demo_ber = opts.ber >= 0.0 ? opts.ber : 8e-3;

  struct Variant {
    std::string tag;
    memctrl::DuePolicyConfig due;
  };
  std::vector<Variant> variants;
  variants.push_back({"ladder_full", {}});
  {
    memctrl::DuePolicyConfig retry_only;
    retry_only.scrub_enabled = false;
    retry_only.upgrade_enabled = false;
    retry_only.fallback_enabled = false;
    variants.push_back({"ladder_retry_only", retry_only});
  }
  {
    memctrl::DuePolicyConfig no_scrub;
    no_scrub.scrub_enabled = false;
    variants.push_back({"ladder_no_scrub", no_scrub});
  }

  TextTable lt({"policy", "DUE", "retries", "retry ok", "scrubs",
                "upgrades", "fallbacks", "degraded"});
  for (const Variant& v : variants) {
    sim::SystemConfig cfg;
    cfg.policy = sim::EccPolicy::kMecc;
    cfg.instructions = 200'000;
    cfg.seed = opts.seed;
    cfg.fast_forward = opts.fast_forward;
    cfg.fault.enabled = true;
    cfg.fault.shadow_lines = 2048;
    cfg.fault.ber_override = demo_ber;
    cfg.fault.transient_read_ber = 1e-3;
    cfg.fault.due = v.due;
    // One trace/metrics file per ladder variant (tag-derived names, so
    // the file set is independent of variant order and --jobs).
    cfg.trace = sim::trace_config_from(opts);
    cfg.metrics = sim::metrics_config_from(opts);
    cfg.trace.path = sim::per_run_path(cfg.trace.path, v.tag);
    cfg.metrics.path = sim::per_run_path(cfg.metrics.path, v.tag);

    const trace::BenchmarkProfile profile = trace::all_benchmarks()[0];
    sim::System system(profile, cfg);
    // Fig. 4 lifecycle with two poisoned sleeps: the first wake-up's
    // DUEs climb retry -> scrub -> forced upgrade, the second's latch
    // the refresh fallback.
    (void)system.run_period(cfg.instructions);
    (void)system.idle_period(10.0);
    (void)system.run_period(cfg.instructions);
    (void)system.idle_period(10.0);
    const sim::RunResult r = system.run_period(cfg.instructions);

    lt.add_row({v.tag, std::to_string(r.stats.counter("errors.due")),
                std::to_string(r.stats.counter("errors.retries")),
                std::to_string(r.stats.counter("errors.retry_success")),
                std::to_string(r.stats.counter("errors.scrubs")),
                std::to_string(r.stats.counter("errors.forced_upgrades")),
                std::to_string(r.stats.counter("errors.refresh_fallbacks")),
                TextTable::num(r.stats.gauge("errors.degraded"), 0)});
    out.add_run(v.tag, r);
  }
  lt.print("DUE ladder under injected BER " + TextTable::sci(demo_ber) +
           " (errors.* stats, cumulative over the lifecycle)");

  std::printf(
      "\nEvery campaign cell must sit inside the binomial CI of the\n"
      "failure_analysis prediction (ci_failures == 0), and the full\n"
      "ladder must show retry/scrub/upgrade/fallback activity.\n");

  const int json_rc = out.write();
  return ci_failures == 0 ? json_rc : 1;
}
