// Regenerates Fig. 10: total memory-system energy split into active and
// idle portions, with the paper's 95%-idle usage mix.
//
// Paper shape: idle energy is roughly one-third of the baseline total;
// MECC halves the idle portion, cutting total memory energy ~15%.
#include <cstdio>

#include "bench_util.h"
#include "power/power_model.h"

int main(int argc, char** argv) {
  using namespace mecc;
  using namespace mecc::sim;

  const SimOptions opts = parse_options(argc, argv, 20'000'000);
  const SystemConfig cfg = bench::scaled_config(opts);
  bench::BenchOutput out("fig10_total_energy", opts);

  bench::print_banner("Fig. 10: total energy (95% idle usage mix)",
                      "active + idle energy, normalized to baseline");

  // Average active power and time across the suite per scheme.
  const power::PowerModel pm;
  struct Scheme {
    const char* name;
    EccPolicy policy;
    double idle_period;
  };
  const Scheme schemes[] = {{"Baseline", EccPolicy::kNoEcc, 0.064},
                            {"MECC", EccPolicy::kMecc, 1.0},
                            {"ECC-6", EccPolicy::kEcc6, 1.0}};

  // All 3 schemes x 28 benchmarks as one flat parallel sweep.
  std::vector<bench::SuiteSpec> specs;
  for (const auto& s : schemes) specs.push_back({s.name, s.policy, cfg});
  const auto suites = bench::run_suites_parallel(specs, opts.jobs);

  double base_total = 0.0;
  TextTable t({"scheme", "active mJ", "idle mJ", "total mJ", "normalized",
               "idle share"});
  for (const auto& s : schemes) {
    const auto& runs = suites.at(s.name);
    double active_mw = 0.0;
    double active_s = 0.0;
    for (const auto& [name, r] : runs) {
      active_mw += r.avg_power_mw;
      active_s += r.seconds;
    }
    active_mw /= static_cast<double>(runs.size());
    active_s /= static_cast<double>(runs.size());
    const double idle_mw = pm.idle_power(s.idle_period).total_mw();
    const EnergyMix mix = compose_energy(active_mw, active_s, idle_mw, 0.95);
    if (base_total == 0.0) base_total = mix.total_mj();
    t.add_row({s.name, TextTable::num(mix.active_mj(), 3),
               TextTable::num(mix.idle_mj(), 3),
               TextTable::num(mix.total_mj(), 3),
               TextTable::num(mix.total_mj() / base_total),
               TextTable::pct(mix.idle_mj() / mix.total_mj(), 0)});
    out.add_suite(s.name, runs);
    out.add_scalar(std::string(s.name) + "_total_mj", mix.total_mj());
    out.add_scalar(std::string(s.name) + "_norm_total",
                   mix.total_mj() / base_total);
  }
  t.print("Total memory energy, average workload, 95% idle time");

  std::printf("\nPaper: idle ~1/3 of baseline energy; MECC reduces total"
              " memory energy by ~15%%.\n");
  return out.write();
}
