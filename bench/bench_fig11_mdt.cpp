// Regenerates Fig. 11: memory touched per benchmark as estimated by the
// 1K-entry Memory Downgrade Tracking table (1 MB regions over 1 GB).
//
// This is a *functional* experiment: the full (unscaled) footprint trace
// streams through the MDT with no timing model, exactly what the table
// would observe over a full active period.
//
// Paper shape: tracked memory ~= footprint (average 128 MB, 8x less than
// the 1 GB capacity), cutting the ECC-Upgrade walk 8x.
#include <cstdio>

#include "bench_util.h"
#include "mecc/mdt.h"
#include "trace/generator.h"

int main(int argc, char** argv) {
  using namespace mecc;

  const sim::SimOptions opts =
      sim::parse_options(argc, argv, /*accesses default stands in*/ 400'000);
  bench::BenchOutput out("fig11_mdt", opts);

  bench::print_banner("Fig. 11: memory tracked by MDT (1K regions)",
                      "full footprints, functional MDT pass");

  TextTable t({"benchmark", "footprint MB", "MDT-tracked MB", "regions",
               "bar (log)"});
  double total_tracked = 0.0;
  for (const auto& b : trace::all_benchmarks()) {
    trace::GeneratorConfig gc;
    gc.footprint_scale = 1.0;  // full footprint (no slice scaling here)
    gc.seed = opts.seed;
    trace::TraceGenerator gen(b, gc);
    morph::Mdt mdt(kMemoryBytes, 1024);
    // One full active period's worth of accesses at the benchmark's
    // intensity: MPKI/1000 accesses per instruction over the 4B-equivalent
    // period is enormous; region-level coverage saturates much earlier,
    // so stream a fixed large access count.
    for (std::uint64_t i = 0; i < opts.instructions; ++i) {
      mdt.mark(gen.next().line_addr);
    }
    const double tracked_mb =
        static_cast<double>(mdt.tracked_bytes()) / (1 << 20);
    total_tracked += tracked_mb;
    out.add_scalar(std::string(b.name) + "_tracked_mb", tracked_mb);
    t.add_row({std::string(b.name), TextTable::num(b.footprint_mb, 1),
               TextTable::num(tracked_mb, 1),
               std::to_string(mdt.marked_regions()),
               ascii_bar(std::log2(tracked_mb + 1), 10.0, 20)});
  }
  t.print("MDT-estimated touched memory (1 GB capacity, 1 MB regions)");

  const double avg = total_tracked / 28.0;
  std::printf("\nAverage tracked: %.1f MB of 1024 MB -> %.1fx upgrade-work"
              " reduction (paper: ~128 MB, ~8x)\n",
              avg, 1024.0 / avg);

  out.add_scalar("avg_tracked_mb", avg);
  return out.write();
}
