// Regenerates Fig. 12: sensitivity of ECC-6 and MECC to the strong-ECC
// decode latency (15 / 30 / 45 / 60 processor cycles).
//
// Paper shape: ECC-6 degrades from ~5% to ~18% slowdown across the
// sweep; MECC stays within ~2% throughout because it pays the decode
// latency only once per line.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace mecc;
  using namespace mecc::sim;

  const SimOptions opts = parse_options(argc, argv, 10'000'000);
  SystemConfig cfg = bench::scaled_config(opts);
  bench::BenchOutput out("fig12_latency_sensitivity", opts);

  bench::print_banner("Fig. 12: sensitivity to ECC-6 decode latency",
                      "normalized IPC (ALL geomean) at 15/30/45/60 cycles");
  std::printf("slice: %llu instructions\n",
              static_cast<unsigned long long>(cfg.instructions));

  // The whole (latency x policy x benchmark) cross product — baseline
  // plus ECC-6 and MECC at each of the 4 latencies — runs as one flat
  // parallel sweep: 9 suites, 252 jobs.
  const Cycle latencies[] = {15, 30, 45, 60};
  std::vector<bench::SuiteSpec> specs{{"base", EccPolicy::kNoEcc, cfg}};
  for (Cycle latency : latencies) {
    cfg.ecc6_decode_cycles = latency;
    specs.push_back(
        {"ecc6@" + std::to_string(latency), EccPolicy::kEcc6, cfg});
    specs.push_back(
        {"mecc@" + std::to_string(latency), EccPolicy::kMecc, cfg});
  }
  const auto suites = bench::run_suites_parallel(specs, opts.jobs);
  const auto& base = suites.at("base");

  TextTable t({"decode latency", "ECC-6 norm IPC", "MECC norm IPC",
               "paper ECC-6", "paper MECC"});
  const char* paper_e6[] = {"~0.95", "~0.90", "~0.86", "~0.82"};
  int row = 0;
  for (Cycle latency : latencies) {
    const auto& e6 = suites.at("ecc6@" + std::to_string(latency));
    const auto& mecc = suites.at("mecc@" + std::to_string(latency));
    std::map<std::string, double> n_e6;
    std::map<std::string, double> n_mecc;
    for (const auto& [name, r] : base) {
      n_e6[name] = e6.at(name).ipc / r.ipc;
      n_mecc[name] = mecc.at(name).ipc / r.ipc;
    }
    const double e6_all = bench::summarize_by_class(n_e6).all;
    const double mecc_all = bench::summarize_by_class(n_mecc).all;
    t.add_row({std::to_string(latency) + " cycles", TextTable::num(e6_all),
               TextTable::num(mecc_all), paper_e6[row], ">= 0.98"});
    out.add_scalar("ecc6_norm_ipc_at_" + std::to_string(latency), e6_all);
    out.add_scalar("mecc_norm_ipc_at_" + std::to_string(latency), mecc_all);
    ++row;
  }
  t.print("Normalized IPC vs ECC-6 decode latency");

  std::printf("\nPaper: even at 60 cycles MECC stays within ~2%% of the"
              " no-ECC baseline while ECC-6 loses ~18%%.\n");

  for (const auto& [tag, runs] : suites) out.add_suite(tag, runs);
  return out.write();
}
