// Regenerates Fig. 13: MECC's normalized IPC as a function of executed
// instructions (the ECC-Downgrade transition cost amortizing away).
//
// The paper measures 0.5/1/2/3/4 B-instruction slices of the 4 B run; at
// our 1/100 scale those are 5/10/20/30/40 M instructions of a 40 M run.
//
// Paper shape: ~2% slowdown in the first slice, shrinking toward ~1.2%
// by the full run, converging to SECDED's level.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace mecc;
  using namespace mecc::sim;

  const SimOptions opts = parse_options(argc, argv, 40'000'000);
  SystemConfig cfg = bench::scaled_config(opts);
  bench::BenchOutput out("fig13_transition", opts);
  const InstCount full = cfg.instructions;
  cfg.checkpoint_insts = {full / 8, full / 4, full / 2, (3 * full) / 4,
                          full};

  bench::print_banner("Fig. 13: MECC transition behavior over the run",
                      "cumulative normalized IPC at 1/8..1 of the slice");
  std::printf("slice: %llu instructions (corresponds to the paper's 4B)\n",
              static_cast<unsigned long long>(full));

  // 3 policies x 28 benchmarks as one flat parallel sweep, then
  // accumulate per-checkpoint cycles across the suite for each policy.
  const auto suites = bench::run_suites_parallel(
      {{"base", EccPolicy::kNoEcc, cfg},
       {"mecc", EccPolicy::kMecc, cfg},
       {"secded", EccPolicy::kSecded, cfg}},
      opts.jobs);
  std::vector<double> base_cycles(cfg.checkpoint_insts.size(), 0.0);
  std::vector<double> mecc_cycles(cfg.checkpoint_insts.size(), 0.0);
  std::vector<double> sec_cycles(cfg.checkpoint_insts.size(), 0.0);
  for (const auto& b : trace::all_benchmarks()) {
    const std::string name(b.name);
    const RunResult& rb = suites.at("base").at(name);
    const RunResult& rm = suites.at("mecc").at(name);
    const RunResult& rs = suites.at("secded").at(name);
    for (std::size_t i = 0; i < cfg.checkpoint_insts.size(); ++i) {
      base_cycles[i] += static_cast<double>(rb.checkpoints[i].cycles);
      mecc_cycles[i] += static_cast<double>(rm.checkpoints[i].cycles);
      sec_cycles[i] += static_cast<double>(rs.checkpoints[i].cycles);
    }
  }

  TextTable t({"instructions (paper-equivalent)", "MECC norm IPC",
               "SECDED norm IPC", "paper MECC"});
  const char* paper[] = {"~0.98", "~0.98", "~0.985", "~0.987", "~0.988"};
  for (std::size_t i = 0; i < cfg.checkpoint_insts.size(); ++i) {
    const double paper_equiv =
        static_cast<double>(cfg.checkpoint_insts[i]) * 100.0 / 1e9;
    t.add_row({TextTable::num(paper_equiv, 1) + " B",
               TextTable::num(base_cycles[i] / mecc_cycles[i]),
               TextTable::num(base_cycles[i] / sec_cycles[i]), paper[i]});
    const std::string ckpt = std::to_string(i);
    out.add_scalar("mecc_norm_ipc_ckpt" + ckpt,
                   base_cycles[i] / mecc_cycles[i]);
    out.add_scalar("secded_norm_ipc_ckpt" + ckpt,
                   base_cycles[i] / sec_cycles[i]);
  }
  t.print("Cumulative normalized IPC (suite aggregate)");

  std::printf("\nPaper: the gap to SECDED closes after ~1 B instructions"
              " (the first second of execution).\n");

  for (const auto& [tag, runs] : suites) out.add_suite(tag, runs);
  return out.write();
}
