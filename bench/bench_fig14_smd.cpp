// Regenerates Fig. 14: with Selective Memory Downgrade (MPKC threshold
// 2), the fraction of execution time for which ECC-Downgrade remains
// DISABLED, per benchmark.
//
// Paper shape: 7 benchmarks (povray, tonto, wrf, gamess, hmmer, sjeng,
// h264ref) never enable downgrade; memory-intensive ones enable it
// within the first quantum; some medium benchmarks flip partway.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace mecc;
  using namespace mecc::sim;

  const SimOptions opts = parse_options(argc, argv, 20'000'000);
  SystemConfig cfg = bench::scaled_config(opts);
  cfg.mecc_use_smd = true;
  cfg.smd_mpkc_threshold = 2.0;
  bench::BenchOutput out("fig14_smd", opts);

  bench::print_banner("Fig. 14: SMD - time with ECC-Downgrade disabled",
                      "MECC + SMD, MPKC threshold = 2, 64 ms quanta");

  // Both policies x 28 benchmarks as one flat parallel sweep (the
  // base/MECC IPC ratio needs matching per-benchmark seeds, which the
  // suite runners derive identically for both policies).
  const auto suites = bench::run_suites_parallel(
      {{"base", EccPolicy::kNoEcc, cfg}, {"mecc", EccPolicy::kMecc, cfg}},
      opts.jobs);
  const auto& base = suites.at("base");

  TextTable t({"benchmark", "class", "% time disabled", "norm IPC", "bar"});
  int never_enabled = 0;
  std::map<std::string, double> n_ipc;
  for (const auto& b : trace::all_benchmarks()) {
    const RunResult& r = suites.at("mecc").at(std::string(b.name));
    if (r.frac_downgrade_disabled >= 1.0) ++never_enabled;
    n_ipc[std::string(b.name)] = r.ipc / base.at(std::string(b.name)).ipc;
    t.add_row({std::string(b.name), trace::mpki_class_name(b.klass),
               TextTable::num(r.frac_downgrade_disabled * 100.0, 1),
               TextTable::num(n_ipc[std::string(b.name)]),
               ascii_bar(r.frac_downgrade_disabled, 1.0, 25)});
  }
  t.print("Fraction of execution with ECC-Downgrade disabled");

  std::printf("\nBenchmarks that never enable ECC-Downgrade: %d"
              " (paper: 7 - povray, tonto, wrf, gamess, hmmer, sjeng,"
              " h264ref)\n",
              never_enabled);
  std::printf("Average performance with SMD: %s vs no-ECC baseline"
              " (paper: within 2%%)\n",
              TextTable::pct(bench::summarize_by_class(n_ipc).all - 1.0)
                  .c_str());

  out.add_suite("base", base);
  out.add_suite("mecc", suites.at("mecc"));
  out.add_scalar("never_enabled_benchmarks",
                 static_cast<double>(never_enabled));
  out.add_scalar("smd_norm_ipc_all", bench::summarize_by_class(n_ipc).all);
  return out.write();
}
