// Regenerates Fig. 1: the bursty usage pattern of a handheld device -
// short active bursts separated by long idle periods - and the resulting
// memory power breakdown (active power vs background vs refresh).
//
// Paper shape: active-mode memory power ~9x idle; refresh is a small
// share of power in active mode but roughly half of it in idle mode.
#include <cstdio>

#include "bench_util.h"
#include "power/power_model.h"

int main(int argc, char** argv) {
  using namespace mecc;
  using namespace mecc::sim;

  const SimOptions opts = parse_options(argc, argv, 5'000'000);
  const SystemConfig cfg = bench::scaled_config(opts);
  bench::BenchOutput out("fig1_usage_pattern", opts);

  bench::print_banner("Fig. 1: bursty usage and memory power breakdown",
                      "active bursts vs long idle periods");

  // A representative phone session: web browsing-ish (medium intensity).
  const auto& b = trace::benchmark("astar");
  const RunResult active = run_benchmark(b, EccPolicy::kSecded, cfg);
  const power::PowerModel pm;
  const auto idle = pm.idle_power(0.064);

  const double active_refresh_mw =
      active.energy.refresh_mj / active.seconds;
  const double active_bg_mw = active.energy.background_mj / active.seconds;
  const double active_dynamic_mw =
      active.avg_power_mw - active_refresh_mw - active_bg_mw;

  TextTable t({"mode", "dynamic mW", "background mW", "refresh mW",
               "total mW", "refresh share"});
  t.add_row({"Active burst", TextTable::num(active_dynamic_mw, 2),
             TextTable::num(active_bg_mw, 2),
             TextTable::num(active_refresh_mw, 2),
             TextTable::num(active.avg_power_mw, 2),
             TextTable::pct(active_refresh_mw / active.avg_power_mw, 1)});
  t.add_row({"Idle (self-refresh)", "0.00",
             TextTable::num(idle.background_mw, 2),
             TextTable::num(idle.refresh_mw, 2),
             TextTable::num(idle.total_mw(), 2),
             TextTable::pct(idle.refresh_mw / idle.total_mw(), 1)});
  t.print("Memory power by mode (baseline system)");

  std::printf("\nActive/idle memory power ratio: %.1fx (paper: ~9x for the"
              " whole device; memory-only ratios run higher)\n",
              active.avg_power_mw / idle.total_mw());

  // The day-in-the-life pattern itself: bursts + idle, energy per phase.
  TextTable day({"phase", "duration", "power mW", "energy mJ"});
  double total_mj = 0.0;
  const double burst_s = 120.0;
  const double idle_s = 2280.0;  // 95% idle (S V-D)
  for (int i = 0; i < 3; ++i) {
    const double amj = active.avg_power_mw * burst_s;
    const double imj = idle.total_mw() * idle_s;
    day.add_row({"active burst " + std::to_string(i + 1), "2 min",
                 TextTable::num(active.avg_power_mw, 1),
                 TextTable::num(amj, 0)});
    day.add_row({"idle period " + std::to_string(i + 1), "38 min",
                 TextTable::num(idle.total_mw(), 2),
                 TextTable::num(imj, 0)});
    total_mj += amj + imj;
  }
  day.print("Two-hour usage window (95% idle)");
  std::printf("\nTotal memory energy over the window: %.0f mJ\n", total_mj);

  out.add_run("active", active);
  out.add_scalar("active_power_mw", active.avg_power_mw);
  out.add_scalar("idle_power_mw", idle.total_mw());
  out.add_scalar("active_idle_power_ratio",
                 active.avg_power_mw / idle.total_mw());
  out.add_scalar("window_total_mj", total_mj);
  return out.write();
}
