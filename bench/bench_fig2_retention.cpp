// Regenerates Fig. 2: cumulative bit-failure probability vs retention
// time (60 nm DRAM, derived from Kim & Lee), and derived operating
// points used throughout the paper.
#include <cstdio>
#include <cmath>

#include "bench_util.h"
#include "reliability/retention_model.h"

int main(int argc, char** argv) {
  using namespace mecc;
  using namespace mecc::reliability;

  const sim::SimOptions opts = sim::parse_options(argc, argv, 0);
  bench::BenchOutput out("fig2_retention", opts);

  bench::print_banner("Fig. 2: DRAM retention-time distribution",
                      "bit failure probability vs retention time (log-log)");

  const RetentionModel model;
  TextTable t({"retention (s)", "bit failure prob", "log10", ""});
  for (double s : {0.01, 0.032, 0.064, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0,
                   100.0}) {
    const double p = model.bit_failure_probability(s);
    t.add_row({TextTable::num(s, 3), TextTable::sci(p),
               TextTable::num(std::log10(std::max(p, 1e-300)), 2),
               ascii_bar(9.0 + std::log10(std::max(p, 1e-12)), 12.0, 24)});
  }
  t.print("Cumulative failure probability");

  std::printf("\nDerived operating points:\n");
  std::printf("  BER at 64 ms (JEDEC)     : %.2e  (paper: ~1e-9)\n",
              model.bit_failure_probability(0.064));
  std::printf("  BER at 1 s (MECC idle)   : %.2e  (paper: 10^-4.5)\n",
              model.bit_failure_probability(1.0));
  const double bits_1gb = 1024.0 * 1024.0 * 1024.0;
  std::printf("  Expected failing bits/1Gb: %.0f  (paper: ~32K)\n",
              bits_1gb * model.bit_failure_probability(1.0));
  std::printf("  Expected failing bits/1GB: %.0f  (paper: ~256K)\n",
              8.0 * bits_1gb * model.bit_failure_probability(1.0));

  out.add_scalar("ber_64ms", model.bit_failure_probability(0.064));
  out.add_scalar("ber_1s", model.bit_failure_probability(1.0));
  out.add_scalar("failing_bits_per_gb",
                 8.0 * bits_1gb * model.bit_failure_probability(1.0));
  return out.write();
}
