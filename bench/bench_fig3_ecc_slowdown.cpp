// Regenerates Fig. 3: normalized IPC of SECDED and ECC-6 versus a
// no-error-correction baseline, grouped by MPKI class.
//
// Paper: SECDED is within ~0.5% everywhere; ECC-6 loses up to ~21%
// (libquantum) and ~10% on average, concentrated in the high-MPKI class.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace mecc;
  using namespace mecc::sim;

  const SimOptions opts = parse_options(argc, argv, 20'000'000);
  const SystemConfig cfg = bench::scaled_config(opts);
  bench::BenchOutput out("fig3_ecc_slowdown", opts);

  bench::print_banner("Fig. 3: performance impact of ECC decode latency",
                      "normalized IPC by MPKI class, SECDED vs ECC-6");
  std::printf("slice: %llu instructions (1/%.0f of the paper's 4B)\n",
              static_cast<unsigned long long>(cfg.instructions),
              4e9 / static_cast<double>(cfg.instructions));

  // 3 policies x 28 benchmarks as one flat parallel sweep.
  const auto suites = bench::run_suites_parallel(
      {{"base", EccPolicy::kNoEcc, cfg},
       {"secded", EccPolicy::kSecded, cfg},
       {"ecc6", EccPolicy::kEcc6, cfg}},
      opts.jobs);
  const auto& base = suites.at("base");
  const auto& secded = suites.at("secded");
  const auto& ecc6 = suites.at("ecc6");

  std::map<std::string, double> n_secded;
  std::map<std::string, double> n_ecc6;
  for (const auto& [name, r] : base) {
    n_secded[name] = secded.at(name).ipc / r.ipc;
    n_ecc6[name] = ecc6.at(name).ipc / r.ipc;
  }
  const auto s_sec = bench::summarize_by_class(n_secded);
  const auto s_e6 = bench::summarize_by_class(n_ecc6);

  TextTable t({"class", "SECDED norm IPC", "ECC-6 norm IPC", "paper"});
  t.add_row({"Low-MPKI", TextTable::num(s_sec.low), TextTable::num(s_e6.low),
             "ECC-6 ~1.00"});
  t.add_row({"Med-MPKI", TextTable::num(s_sec.med), TextTable::num(s_e6.med),
             "ECC-6 degraded"});
  t.add_row({"High-MPKI", TextTable::num(s_sec.high),
             TextTable::num(s_e6.high), "ECC-6 worst"});
  t.add_row({"ALL (geomean)", TextTable::num(s_sec.all),
             TextTable::num(s_e6.all), "SECDED ~0.995, ECC-6 ~0.90"});
  t.print("Normalized IPC (baseline = no error correction)");

  std::printf("\nSECDED average slowdown: %s (paper: ~0.5%%)\n",
              TextTable::pct(s_sec.all - 1.0).c_str());
  std::printf("ECC-6  average slowdown: %s (paper: ~10%%, worst ~21%%)\n",
              TextTable::pct(s_e6.all - 1.0).c_str());
  double worst = 1.0;
  std::string worst_name;
  for (const auto& [name, v] : n_ecc6) {
    if (v < worst) {
      worst = v;
      worst_name = name;
    }
  }
  std::printf("ECC-6  worst slowdown  : %s (%s)\n",
              TextTable::pct(worst - 1.0).c_str(), worst_name.c_str());

  out.add_suite("base", base);
  out.add_suite("secded", secded);
  out.add_suite("ecc6", ecc6);
  out.add_scalar("secded_norm_ipc_all", s_sec.all);
  out.add_scalar("ecc6_norm_ipc_all", s_e6.all);
  out.add_scalar("ecc6_norm_ipc_worst", worst);
  return out.write();
}
