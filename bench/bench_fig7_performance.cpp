// Regenerates Fig. 7: per-benchmark normalized IPC of SECDED, ECC-6 and
// MECC versus the no-error-correction baseline, plus the ALL geomean.
//
// Paper shape: SECDED ~0.5% slowdown, ECC-6 up to 21% (libquantum) and
// ~10% on average, MECC within ~1.2% on average, bridging the gap.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace mecc;
  using namespace mecc::sim;

  const SimOptions opts = parse_options(argc, argv, 20'000'000);
  const SystemConfig cfg = bench::scaled_config(opts);
  bench::BenchOutput out("fig7_performance", opts);

  bench::print_banner("Fig. 7: SECDED / ECC-6 / MECC normalized IPC",
                      "per benchmark + ALL geomean");
  std::printf("slice: %llu instructions, %u jobs\n",
              static_cast<unsigned long long>(cfg.instructions), opts.jobs);

  // All 4 policies x 28 benchmarks as one flat parallel sweep.
  auto suites = bench::run_suites_parallel(
      {{"base", EccPolicy::kNoEcc, cfg},
       {"secded", EccPolicy::kSecded, cfg},
       {"ecc6", EccPolicy::kEcc6, cfg},
       {"mecc", EccPolicy::kMecc, cfg}},
      opts.jobs);
  const auto& base = suites.at("base");
  const auto& secded = suites.at("secded");
  const auto& ecc6 = suites.at("ecc6");
  const auto& mecc = suites.at("mecc");

  std::map<std::string, double> n_sec;
  std::map<std::string, double> n_e6;
  std::map<std::string, double> n_mecc;

  TextTable t({"benchmark", "class", "SECDED", "ECC-6", "MECC",
               "ECC-6 bar"});
  for (const auto& b : trace::all_benchmarks()) {
    const std::string name(b.name);
    const double ipc0 = base.at(name).ipc;
    n_sec[name] = secded.at(name).ipc / ipc0;
    n_e6[name] = ecc6.at(name).ipc / ipc0;
    n_mecc[name] = mecc.at(name).ipc / ipc0;
    t.add_row({name, trace::mpki_class_name(b.klass),
               TextTable::num(n_sec[name]), TextTable::num(n_e6[name]),
               TextTable::num(n_mecc[name]),
               ascii_bar(1.0 - n_e6[name], 0.25, 25)});
  }
  const auto s_sec = bench::summarize_by_class(n_sec);
  const auto s_e6 = bench::summarize_by_class(n_e6);
  const auto s_mecc = bench::summarize_by_class(n_mecc);
  t.add_row({"ALL (geomean)", "", TextTable::num(s_sec.all),
             TextTable::num(s_e6.all), TextTable::num(s_mecc.all), ""});
  t.print("Normalized IPC (baseline = no error correction latency)");

  std::printf("\nAverage slowdowns (paper): SECDED %s (~0.5%%), ECC-6 %s"
              " (~10%%), MECC %s (~1.2%%)\n",
              TextTable::pct(s_sec.all - 1.0).c_str(),
              TextTable::pct(s_e6.all - 1.0).c_str(),
              TextTable::pct(s_mecc.all - 1.0).c_str());
  std::printf("MECC within %s of SECDED (paper: within 1%%)\n",
              TextTable::pct(s_mecc.all / s_sec.all - 1.0).c_str());

  out.add_suite("base", base);
  out.add_suite("secded", secded);
  out.add_suite("ecc6", ecc6);
  out.add_suite("mecc", mecc);
  out.add_scalar("secded_norm_ipc_all", s_sec.all);
  out.add_scalar("ecc6_norm_ipc_all", s_e6.all);
  out.add_scalar("mecc_norm_ipc_all", s_mecc.all);
  return out.write();
}
