// Regenerates Fig. 8: (left) normalized refresh power and (right) total
// idle power breakdown (refresh + background) for Baseline (64 ms),
// MECC (1 s) and ECC-6 (1 s).
//
// Paper shape: refresh power and refresh operations drop 16x; total
// idle power drops ~43% ("almost 2X").
#include <cstdio>

#include "bench_util.h"
#include "power/power_model.h"

int main(int argc, char** argv) {
  using namespace mecc;
  using namespace mecc::sim;

  const SimOptions opts = parse_options(argc, argv, 0);
  bench::BenchOutput out("fig8_idle_power", opts);

  bench::print_banner("Fig. 8: idle-mode refresh and total power",
                      "self-refresh at 64 ms vs 1 s");

  const power::PowerModel pm;
  const auto reports = analyze_idle(pm);
  const auto& baseline = reports[0];

  TextTable left({"scheme", "refresh period", "refresh ops/s",
                  "refresh power (norm)", "bar"});
  for (const auto& r : reports) {
    const double norm =
        r.power.refresh_mw / baseline.power.refresh_mw;
    left.add_row({r.scheme, TextTable::num(r.refresh_period_s, 3) + " s",
                  TextTable::num(r.refresh_ops_per_s, 0),
                  TextTable::num(norm), ascii_bar(norm, 1.0, 30)});
  }
  left.print("Fig. 8 (left): normalized refresh power");

  TextTable right({"scheme", "refresh mW", "background mW", "total mW",
                   "normalized", "bar"});
  for (const auto& r : reports) {
    const double norm = r.power.total_mw() / baseline.power.total_mw();
    right.add_row({r.scheme, TextTable::num(r.power.refresh_mw),
                   TextTable::num(r.power.background_mw),
                   TextTable::num(r.power.total_mw()), TextTable::num(norm),
                   ascii_bar(norm, 1.0, 30)});
  }
  right.print("Fig. 8 (right): total idle power breakdown");

  const double reduction =
      1.0 - reports[1].power.total_mw() / baseline.power.total_mw();
  std::printf("\nRefresh ops reduced %.1fx (paper: 16x)\n",
              baseline.refresh_ops_per_s / reports[1].refresh_ops_per_s);
  std::printf("Idle power reduced %s, i.e. %.2fx (paper: ~43%%, ~2X)\n",
              TextTable::pct(-reduction).c_str(), 1.0 / (1.0 - reduction));

  for (const auto& r : reports) {
    const std::string tag(r.scheme);
    out.add_scalar(tag + "_refresh_mw", r.power.refresh_mw);
    out.add_scalar(tag + "_background_mw", r.power.background_mw);
    out.add_scalar(tag + "_total_mw", r.power.total_mw());
    out.add_scalar(tag + "_refresh_ops_per_s", r.refresh_ops_per_s);
  }
  out.add_scalar("idle_power_reduction", reduction);
  return out.write();
}
