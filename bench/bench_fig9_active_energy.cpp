// Regenerates Fig. 9: active-mode power, energy and energy-delay product
// for Baseline, ECC-6 and MECC, normalized to baseline (suite averages).
//
// Paper shape: MECC ~1% higher power (extra downgrade write-backs);
// ECC-6 *appears* lower-power only because it runs ~10% longer; energies
// are similar; EDP is ~10% worse for ECC-6 and ~baseline for MECC.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace mecc;
  using namespace mecc::sim;

  const SimOptions opts = parse_options(argc, argv, 20'000'000);
  const SystemConfig cfg = bench::scaled_config(opts);
  bench::BenchOutput out("fig9_active_energy", opts);

  bench::print_banner("Fig. 9: active-mode power / energy / EDP",
                      "suite averages normalized to no-ECC baseline");

  // 3 policies x 28 benchmarks as one flat parallel sweep.
  const auto suites = bench::run_suites_parallel(
      {{"base", EccPolicy::kNoEcc, cfg},
       {"ecc6", EccPolicy::kEcc6, cfg},
       {"mecc", EccPolicy::kMecc, cfg}},
      opts.jobs);
  const auto& base = suites.at("base");
  const auto& ecc6 = suites.at("ecc6");
  const auto& mecc = suites.at("mecc");

  struct Sums {
    double power = 0, energy = 0, edp = 0;
  };
  auto sums = [&](const bench::SuiteMap& runs) {
    Sums s;
    for (const auto& [name, r] : runs) {
      const auto& b = base.at(name);
      s.power += r.avg_power_mw / b.avg_power_mw;
      s.energy += r.energy.total_mj() / b.energy.total_mj();
      s.edp += r.edp_mj_s / b.edp_mj_s;
    }
    const double n = static_cast<double>(runs.size());
    return Sums{s.power / n, s.energy / n, s.edp / n};
  };

  const Sums s_base{1.0, 1.0, 1.0};
  const Sums s_e6 = sums(ecc6);
  const Sums s_mecc = sums(mecc);

  TextTable t({"scheme", "power", "energy", "EDP", "paper"});
  t.add_row({"Baseline", TextTable::num(s_base.power),
             TextTable::num(s_base.energy), TextTable::num(s_base.edp),
             "1.00 / 1.00 / 1.00"});
  t.add_row({"ECC-6", TextTable::num(s_e6.power),
             TextTable::num(s_e6.energy), TextTable::num(s_e6.edp),
             "lower power, ~1.00 energy, ~1.10 EDP"});
  t.add_row({"MECC", TextTable::num(s_mecc.power),
             TextTable::num(s_mecc.energy), TextTable::num(s_mecc.edp),
             "~1.01 power, ~1.00 energy, ~1.00 EDP"});
  t.print("Active-mode metrics (normalized to baseline, suite average)");

  std::printf("\nMECC extra power from downgrade write traffic: %s"
              " (paper: ~1%%)\n",
              TextTable::pct(s_mecc.power - 1.0).c_str());
  std::printf("ECC-6 EDP penalty: %s (paper: ~10%%)\n",
              TextTable::pct(s_e6.edp - 1.0).c_str());

  out.add_suite("base", base);
  out.add_suite("ecc6", ecc6);
  out.add_suite("mecc", mecc);
  out.add_scalar("ecc6_norm_power", s_e6.power);
  out.add_scalar("ecc6_norm_energy", s_e6.energy);
  out.add_scalar("ecc6_norm_edp", s_e6.edp);
  out.add_scalar("mecc_norm_power", s_mecc.power);
  out.add_scalar("mecc_norm_energy", s_mecc.energy);
  out.add_scalar("mecc_norm_edp", s_mecc.edp);
  return out.write();
}
