// Fleet-scale campaign bench (ROADMAP item 2, docs/FLEET.md): samples a
// device fleet — per-device workload class (Table III shares), Fig. 1
// active/idle duty cycle, temperature/retention variation — and runs the
// per-device reliability/energy model sharded across supervised worker
// *processes* via the sim/fleet Orchestrator: crash/hang detection,
// bounded retries with exponential backoff, graceful degradation, and a
// durable checkpoint after every shard so `kill -9` at any instant
// (worker or orchestrator) is survivable with --resume.
//
// This same binary is its own worker: the orchestrator re-execs
// /proc/self/exe with --fleet-worker, so one executable carries the
// whole campaign.
//
// Fleet-specific flags (on top of the shared --seed/--jobs/--out/
// --perf-out):
//   --fleet-devices=N            fleet size (default 20000)
//   --fleet-devices-per-shard=N  shard granularity (default 2500)
//   --fleet-state-dir=DIR        checkpoint directory (default fleet_state)
//   --resume=DIR                 resume the campaign checkpointed in DIR
//   --fleet-retries=R            re-queue budget per shard (default 2)
//   --fleet-deadline-s=X         per-attempt hard wall limit
//   --fleet-heartbeat-timeout-s=X  hung-worker detection threshold
//   --fleet-backoff-s=X          base retry delay (doubles per attempt)
//   --fleet-selftest=SPEC        failure injection (docs/FLEET.md)
//   --fleet-aggregate-out=FILE   aggregate JSONL copy (default
//                                STATE_DIR/aggregate.jsonl only)
//   --fleet-dashboard            live in-terminal dashboard (stderr)
//   --telemetry-out=FILE         mecc-telemetry-v1 snapshot feed
//                                (JSONL; scripts/mecc_top.py reads it)
//   --fleet-telemetry-interval-s=X  min seconds between snapshots
//
// The aggregate JSONL is byte-identical for a given (config, seed)
// regardless of --jobs, retries, or interruptions; the supervision
// observability (retries, kills, backoff) lives in the --out report's
// fleet.* scalars instead.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "common/fsio.h"
#include "common/json.h"
#include "sim/fleet.h"

namespace {

using namespace mecc;
namespace fleet = sim::fleet;

[[nodiscard]] bool eat_prefix(const char* arg, const char* prefix,
                              const char** rest) {
  const std::size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) return false;
  *rest = arg + n;
  return true;
}

[[nodiscard]] bool parse_u64(const char* s, std::uint64_t* out) {
  char* endp = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &endp, 10);
  if (errno != 0 || endp == s || *endp != '\0') return false;
  *out = v;
  return true;
}

[[nodiscard]] bool parse_pos_double(const char* s, double* out) {
  char* endp = nullptr;
  const double v = std::strtod(s, &endp);
  if (endp == s || *endp != '\0' || !(v > 0.0)) return false;
  *out = v;
  return true;
}

[[noreturn]] void flag_error(const char* arg) {
  std::fprintf(stderr, "error: malformed fleet flag '%s'\n", arg);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  // Worker mode first: the orchestrator re-execs this binary with
  // --fleet-worker to compute exactly one shard.
  if (fleet::is_fleet_worker_invocation(argc, argv)) {
    return fleet::worker_main(argc, argv);
  }

  const sim::SimOptions opts = sim::parse_options(argc, argv, 20'000);

  fleet::FleetConfig cfg;
  cfg.devices = 20'000;
  cfg.devices_per_shard = 2'500;
  cfg.seed = opts.seed;
  cfg.jobs = opts.jobs;
  cfg.state_dir = "fleet_state";
  cfg.interrupt = &bench::g_interrupt_signal;
  std::string aggregate_out;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* v = nullptr;
    if (eat_prefix(arg, "--fleet-devices=", &v)) {
      if (!parse_u64(v, &cfg.devices) || cfg.devices == 0) flag_error(arg);
    } else if (eat_prefix(arg, "--fleet-devices-per-shard=", &v)) {
      if (!parse_u64(v, &cfg.devices_per_shard) || cfg.devices_per_shard == 0) {
        flag_error(arg);
      }
    } else if (eat_prefix(arg, "--fleet-state-dir=", &v)) {
      if (*v == '\0') flag_error(arg);
      cfg.state_dir = v;
    } else if (eat_prefix(arg, "--resume=", &v)) {
      if (*v == '\0') flag_error(arg);
      cfg.state_dir = v;
      cfg.resume = true;
    } else if (eat_prefix(arg, "--fleet-retries=", &v)) {
      std::uint64_t r = 0;
      if (!parse_u64(v, &r)) flag_error(arg);
      cfg.max_retries = static_cast<unsigned>(r);
    } else if (eat_prefix(arg, "--fleet-deadline-s=", &v)) {
      if (!parse_pos_double(v, &cfg.shard_deadline_s)) flag_error(arg);
    } else if (eat_prefix(arg, "--fleet-heartbeat-timeout-s=", &v)) {
      if (!parse_pos_double(v, &cfg.heartbeat_timeout_s)) flag_error(arg);
    } else if (eat_prefix(arg, "--fleet-heartbeat-interval-s=", &v)) {
      if (!parse_pos_double(v, &cfg.heartbeat_interval_s)) flag_error(arg);
    } else if (eat_prefix(arg, "--fleet-backoff-s=", &v)) {
      if (!parse_pos_double(v, &cfg.backoff_base_s)) flag_error(arg);
    } else if (eat_prefix(arg, "--fleet-lines-per-device=", &v)) {
      if (!parse_u64(v, &cfg.model.lines_per_device)) flag_error(arg);
    } else if (eat_prefix(arg, "--fleet-selftest=", &v)) {
      cfg.selftest = v;
    } else if (eat_prefix(arg, "--fleet-aggregate-out=", &v)) {
      if (*v == '\0') flag_error(arg);
      aggregate_out = v;
    } else if (std::strcmp(arg, "--fleet-dashboard") == 0) {
      cfg.dashboard = true;
    } else if (eat_prefix(arg, "--telemetry-out=", &v)) {
      if (*v == '\0') flag_error(arg);
      cfg.telemetry_out = v;
    } else if (eat_prefix(arg, "--fleet-telemetry-interval-s=", &v)) {
      if (!parse_pos_double(v, &cfg.telemetry_interval_s)) flag_error(arg);
    } else if (eat_prefix(arg, "--fleet-", &v)) {
      flag_error(arg);  // unknown --fleet-* flag: refuse loudly
    }
  }

  // BenchOutput gets a perf-less copy of the options: the fleet perf
  // report (devices/sec, not instructions/sec) is written below.
  sim::SimOptions bench_opts = opts;
  bench_opts.perf_out.clear();
  bench::BenchOutput out("fleet_campaign", bench_opts);

  bench::print_banner(
      "Fleet campaign: device population percentiles under supervision",
      "Fig. 1 usage + Fig. 2 retention + Eq. 1 idle power, fleet-scaled");

  const auto wall_start = std::chrono::steady_clock::now();
  fleet::Orchestrator orchestrator(cfg);
  fleet::CampaignOutcome outcome = orchestrator.run();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  if (!outcome.completed) {
    if (!outcome.error.empty()) {
      std::fprintf(stderr, "%s\n", outcome.error.c_str());
    }
    if (outcome.exit_code > 128) {
      // Interrupted: flush the partial report through the shared
      // bench_util path (scalars collected so far + interrupted tag).
      StatSet stats;
      outcome.to_stats(stats);
      for (const auto& [name, value] : stats.counters()) {
        out.add_scalar("fleet." + name, static_cast<double>(value));
      }
      out.exit_interrupted(outcome.exit_code - 128);
    }
    return outcome.exit_code;
  }

  // Aggregate JSONL: always into the state dir (that copy is what the
  // resume-equivalence gate byte-compares), optionally mirrored.
  const std::string aggregate_path = cfg.state_dir + "/aggregate.jsonl";
  if (!orchestrator.write_aggregate(aggregate_path)) return 1;
  if (!aggregate_out.empty() && !orchestrator.write_aggregate(aggregate_out)) {
    return 1;
  }

  // fleet.* stats component -> report scalars, StatRegistry-keyed.
  StatRegistry registry;
  registry.register_component(
      "fleet", [&outcome](StatSet& s) { outcome.to_stats(s); });
  const StatSet stats = registry.snapshot();
  for (const auto& [name, value] : stats.counters()) {
    out.add_scalar(name, static_cast<double>(value));
  }
  for (const auto& [name, value] : stats.gauges()) {
    out.add_scalar(name, value);
  }
  for (const auto& [name, dist] : stats.dists()) {
    out.add_scalar(name + "_mean", dist.mean());
    out.add_scalar(name + "_min", dist.min);
    out.add_scalar(name + "_max", dist.max);
  }

  TextTable t({"metric", "value"});
  auto row = [&t](const std::string& k, const std::string& v) {
    t.add_row({k, v});
  };
  row("devices simulated", std::to_string(outcome.devices_simulated));
  row("shards done / degraded / total",
      std::to_string(outcome.shards_done) + " / " +
          std::to_string(outcome.shards_degraded) + " / " +
          std::to_string(outcome.shards_total));
  row("coverage", TextTable::num(outcome.coverage(), 4));
  row("worker retries (crash/dirty/hung/deadline)",
      std::to_string(outcome.retries) + " (" +
          std::to_string(outcome.workers_crashed) + "/" +
          std::to_string(outcome.workers_dirty) + "/" +
          std::to_string(outcome.workers_hung_killed) + "/" +
          std::to_string(outcome.workers_deadline_killed) + ")");
  row("DUE/year per device p50", TextTable::sci(outcome.due_rate.quantile(0.5)));
  row("DUE/year per device p99", TextTable::sci(outcome.due_rate.quantile(0.99)));
  row("DUE/year per device p99.9",
      TextTable::sci(outcome.due_rate.quantile(0.999)));
  row("energy mJ/day per device mean", TextTable::num(outcome.energy.mean(), 1));
  row("energy mJ/day per device p99.9",
      TextTable::num(outcome.energy.quantile(0.999), 1));
  t.print("Campaign summary (" + std::to_string(cfg.jobs) +
          " worker processes; aggregate: " + aggregate_path + ")");

  // Host-side perf observability: campaign throughput in devices/sec
  // (perf_smoke.sh lifts fleet_devices_per_sec into BENCH_perf.json).
  if (!opts.perf_out.empty()) {
    const double rate =
        wall_s > 0.0 ? static_cast<double>(outcome.devices_simulated) / wall_s
                     : 0.0;
    JsonWriter w(2);
    w.begin_object();
    w.key("schema");
    w.value("mecc-bench-perf-v1");
    w.key("bench");
    w.value("fleet_campaign");
    w.key("devices");
    w.value(outcome.devices_simulated);
    w.key("jobs");
    w.value(cfg.jobs);
    w.key("wall_seconds");
    w.value(wall_s);
    w.key("fleet_devices_per_sec");
    w.value(rate);
    w.end_object();
    if (!atomic_write_file(opts.perf_out, w.str() + "\n", "--perf-out")) {
      return 1;
    }
  }

  return out.write();
}
