// Regenerates the S II-A motivation: DRAM idle-mode options and their
// power / capacity / wake-up trade-off. The paper's framing: "we want
// the power savings close to PASR or DPD, and yet have a usable capacity
// of Auto/Self Refresh" - which is what MECC's slow self-refresh
// delivers.
#include <cstdio>

#include "bench_util.h"
#include "power/idle_modes.h"

int main(int argc, char** argv) {
  using namespace mecc;

  const sim::SimOptions opts = sim::parse_options(argc, argv, 0);
  bench::BenchOutput out("idle_modes", opts);

  bench::print_banner("S II-A: idle-mode options for a 1 GB mobile memory",
                      "power vs usable capacity vs wake-up cost");

  const power::PowerModel pm;
  const auto options = power::idle_mode_options(pm, 1024.0);

  TextTable t({"mode", "idle power", "norm", "usable capacity",
               "state kept", "wake-up"});
  const double base = options.front().power_mw;
  for (const auto& o : options) {
    std::string wake;
    if (o.wakeup_seconds < 1e-3) {
      wake = TextTable::num(o.wakeup_seconds * 1e9, 0) + " ns";
    } else {
      wake = TextTable::num(o.wakeup_seconds, 1) + " s";
    }
    t.add_row({o.name, TextTable::num(o.power_mw, 3) + " mW",
               TextTable::num(o.power_mw / base, 2) + "x",
               TextTable::pct(o.usable_capacity_fraction, 0).substr(1),
               o.state_preserved ? "yes" : "NO",
               wake});
    out.add_scalar(std::string(o.name) + "_power_mw", o.power_mw);
  }
  t.print("Idle-mode comparison");

  std::printf("\nPASR/DPD reach low power only by dropping contents - the"
              " paper's S I point: restoring 1 GB from mobile flash takes"
              " tens of seconds, ruining responsiveness.\n");
  std::printf("MECC keeps the full state resident at PASR-class power with"
              " nanosecond-class wake-up.\n");
  return out.write();
}
