// Ablation: end-to-end idle-period reliability at the bit level.
//
// Stores a population of lines through the real Morphable-ECC line
// codec, injects one idle period's worth of retention errors at the BER
// implied by each refresh period, and counts data-loss events - for a
// SEC-DED-only memory versus a MECC memory (ECC-Upgraded before sleep).
//
// Supports the paper's central reliability argument (S II-C, S VII-A):
// weak ECC cannot hold a slowed refresh; ECC-6 can, with zero software
// involvement ("does not compromise application reliability").
#include <cstdio>

#include "bench_util.h"
#include "mecc/memory_image.h"
#include "reliability/retention_model.h"

int main(int argc, char** argv) {
  using namespace mecc;

  const sim::SimOptions opts = sim::parse_options(argc, argv, 2000);
  bench::BenchOutput out("idle_reliability", opts);
  const std::size_t kLines = opts.instructions;  // lines per population

  bench::print_banner("Idle-period reliability: SEC-DED vs MECC (real bits)",
                      "data-loss rate after one idle period, by refresh period");
  std::printf("population: %zu lines of 64 B each\n", kLines);

  const reliability::RetentionModel retention;
  Rng data_rng(42);

  TextTable t({"refresh period", "BER", "SECDED lines lost",
               "MECC lines lost", "MECC corrected bits"});
  for (double period : {0.064, 0.25, 1.0, 4.0, 16.0}) {
    const double ber = retention.bit_failure_probability(period);

    morph::MemoryImage weak(kLines);
    morph::MemoryImage strong(kLines);
    for (std::size_t i = 0; i < kLines; ++i) {
      BitVec d(morph::kDataBits);
      for (std::size_t j = 0; j < d.size(); ++j) {
        d.set(j, data_rng.chance(0.5));
      }
      weak.write_line(i, d, morph::LineMode::kWeak);
      strong.write_line(i, d, morph::LineMode::kStrong);  // post-upgrade
    }
    reliability::FaultInjector fi(7 + static_cast<std::uint64_t>(period * 16));
    (void)weak.inject_retention_errors(ber, fi);
    (void)strong.inject_retention_errors(ber, fi);

    std::size_t weak_lost = 0;
    std::size_t strong_lost = 0;
    for (std::size_t i = 0; i < kLines; ++i) {
      if (!weak.read_line(i, false).has_value()) ++weak_lost;
      if (!strong.read_line(i, true).has_value()) ++strong_lost;
    }
    t.add_row({TextTable::num(period, 3) + " s", TextTable::sci(ber),
               std::to_string(weak_lost), std::to_string(strong_lost),
               std::to_string(strong.stats().corrected_bits)});
    const std::string ms = std::to_string(static_cast<int>(period * 1000));
    out.add_scalar("secded_lost_at_" + ms + "ms",
                   static_cast<double>(weak_lost));
    out.add_scalar("mecc_lost_at_" + ms + "ms",
                   static_cast<double>(strong_lost));
  }
  t.print("Lines lost out of the population (0 = data fully preserved)");

  std::printf("\nAt the paper's 1 s operating point MECC loses nothing;"
              " SEC-DED alone starts losing lines as E[errors/line]"
              " approaches 1.\n");
  return out.write();
}
