// Memory-system geometry sweep (docs/SCALING.md): Baseline and MECC
// over the 28-benchmark suite at every {1,2,4,8}-channel x {1,2}-rank
// point, plus the Fig. 8 idle-power and Fig. 10 total-energy shapes per
// geometry.
//
// Paper context: Table II models a single LPDDR channel. Scaling the
// channel/rank count changes the absolute power (more devices refresh
// and burn background power) and the active latency (requests spread
// over more banks), but MECC's *relative* savings — the 16x refresh-ops
// reduction and the ~43% idle-power cut — are per-device properties and
// must survive every geometry. This bench pins that invariance.
//
// --channels= / --ranks= restrict the sweep to that single geometry;
// without them the full 4x2 grid runs. The JSON report is byte-identical
// across --jobs, --fast-forward and --channel-parallel settings.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "power/power_model.h"

int main(int argc, char** argv) {
  using namespace mecc;
  using namespace mecc::sim;

  const SimOptions opts = parse_options(argc, argv, 2'000'000);
  const SystemConfig base_cfg = bench::scaled_config(opts);
  bench::BenchOutput out("memsys_geometry", opts);

  bench::print_banner(
      "Memory-system geometry: channels x ranks scaling",
      "Table II single-channel model scaled out (docs/SCALING.md)");

  struct Geometry {
    std::uint32_t channels;
    std::uint32_t ranks;
  };
  std::vector<Geometry> grid;
  if (opts.channels != 0) {
    grid.push_back({opts.channels, opts.ranks});
  } else {
    for (std::uint32_t ch : {1u, 2u, 4u, 8u}) {
      for (std::uint32_t rk : {1u, 2u}) grid.push_back({ch, rk});
    }
  }
  std::printf("slice: %llu instructions, %u jobs, interleave=%s, "
              "%u stream(s)\n",
              static_cast<unsigned long long>(base_cfg.instructions),
              opts.jobs, memctrl::interleave_name(base_cfg.interleave),
              base_cfg.streams);

  const auto tag_of = [](const Geometry& g, const char* suite) {
    return std::to_string(g.channels) + "ch" + std::to_string(g.ranks) +
           "r_" + suite;
  };
  const auto with_geometry = [&base_cfg](const Geometry& g) {
    SystemConfig c = base_cfg;
    c.geometry.channels = g.channels;
    c.geometry.ranks = g.ranks;
    return c;
  };

  // The full (geometry x policy x benchmark) cross product as one flat
  // parallel job set; each spec's slice is bit-identical to a serial
  // run_suite of that spec.
  std::vector<bench::SuiteSpec> specs;
  for (const Geometry& g : grid) {
    const SystemConfig cfg = with_geometry(g);
    specs.push_back({tag_of(g, "base"), EccPolicy::kNoEcc, cfg});
    SystemConfig mecc_cfg = cfg;
    mecc_cfg.mecc_use_smd = false;
    specs.push_back({tag_of(g, "mecc"), EccPolicy::kMecc, mecc_cfg});
  }
  const auto suites = bench::run_suites_parallel(specs, opts.jobs);

  TextTable t({"geometry", "base IPC", "MECC IPC", "norm IPC",
               "refresh ops/s", "idle mW (base)", "idle mW (MECC)",
               "idle cut", "norm total mJ"});
  for (const Geometry& g : grid) {
    const bench::SuiteMap& base_runs = suites.at(tag_of(g, "base"));
    const bench::SuiteMap& mecc_runs = suites.at(tag_of(g, "mecc"));

    std::map<std::string, double> norm_ipc;
    std::map<std::string, double> base_ipc;
    double base_active_mw = 0.0;
    double mecc_active_mw = 0.0;
    double active_s = 0.0;
    for (const auto& [name, r] : base_runs) {
      base_ipc[name] = r.ipc;
      norm_ipc[name] = mecc_runs.at(name).ipc / r.ipc;
      base_active_mw += r.avg_power_mw;
      mecc_active_mw += mecc_runs.at(name).avg_power_mw;
      active_s += r.seconds;
    }
    const auto n = static_cast<double>(base_runs.size());
    base_active_mw /= n;
    mecc_active_mw /= n;
    active_s /= n;
    const bench::ClassSummary ipc_cls = bench::summarize_by_class(base_ipc);
    const bench::ClassSummary norm_cls = bench::summarize_by_class(norm_ipc);

    // Fig. 8 shape at this geometry: self-refresh power at the 64 ms
    // baseline vs MECC's 1 s period, scaled by channels * ranks devices.
    const SystemConfig cfg = with_geometry(g);
    const power::PowerModel pm(cfg.power, cfg.timing, cfg.geometry.banks,
                               g.channels * g.ranks);
    const power::IdlePower idle_base = pm.idle_power(0.064);
    const power::IdlePower idle_mecc = pm.idle_power(1.0);
    const double idle_cut = 1.0 - idle_mecc.total_mw() / idle_base.total_mw();

    // Fig. 10 shape at this geometry: 95%-idle usage mix, normalized to
    // this geometry's own baseline (the cross-geometry absolute totals
    // scale with the device count; the MECC ratio must not).
    const EnergyMix mix_base = compose_energy(base_active_mw, active_s,
                                              idle_base.total_mw(), 0.95);
    const EnergyMix mix_mecc = compose_energy(mecc_active_mw, active_s,
                                              idle_mecc.total_mw(), 0.95);
    const double norm_total = mix_mecc.total_mj() / mix_base.total_mj();

    const std::string geo = std::to_string(g.channels) + "ch x " +
                            std::to_string(g.ranks) + "r";
    t.add_row({geo, TextTable::num(ipc_cls.all),
               TextTable::num(ipc_cls.all * norm_cls.all),
               TextTable::num(norm_cls.all),
               TextTable::num(pm.refresh_ops_per_second(0.064), 0),
               TextTable::num(idle_base.total_mw()),
               TextTable::num(idle_mecc.total_mw()),
               TextTable::pct(-idle_cut), TextTable::num(norm_total)});

    out.add_suite(tag_of(g, "base"), base_runs);
    out.add_suite(tag_of(g, "mecc"), mecc_runs);
    const std::string p = tag_of(g, "");
    out.add_scalar(p + "geomean_base_ipc", ipc_cls.all);
    out.add_scalar(p + "geomean_norm_ipc", norm_cls.all);
    out.add_scalar(p + "idle_power_base_mw", idle_base.total_mw());
    out.add_scalar(p + "idle_power_mecc_mw", idle_mecc.total_mw());
    out.add_scalar(p + "idle_power_reduction", idle_cut);
    out.add_scalar(p + "norm_total_energy", norm_total);
  }
  t.print("Geometry sweep, 28 benchmarks per point (docs/SCALING.md)");

  std::printf("\nPaper shape at every geometry: refresh ops/s scale with "
              "the device count while MECC's idle-power cut (~43%%) and "
              "normalized totals stay geometry-invariant.\n");
  return out.write();
}
