// Extension bench (paper S VIII closing claim): "the MECC scheme is
// useful for morphing between arbitrary levels of ECC, which trades off
// robustness with performance or power savings."
//
// For each strong-ECC strength t, derive:
//  * the longest refresh period whose raw BER the code still tolerates
//    at <1e-6 system failures (reserving the paper's +1 margin, i.e.
//    t-1 bits correct retention errors),
//  * the resulting idle-power reduction,
//  * whether the parity fits the (72,64) spare space (t*10 <= 60),
//  * MECC performance with that strength on representative workloads.
#include <cstdio>
#include <cmath>

#include "bench_util.h"
#include "ecc/ecc_model.h"
#include "power/power_model.h"
#include "reliability/failure_analysis.h"
#include "reliability/retention_model.h"

int main(int argc, char** argv) {
  using namespace mecc;
  using namespace mecc::sim;
  using namespace mecc::reliability;

  const SimOptions opts = parse_options(argc, argv, 10'000'000);
  bench::BenchOutput out("morph_levels", opts);

  bench::print_banner("Extension: morphing between arbitrary ECC levels",
                      "strength -> refresh period -> idle power -> perf");

  const RetentionModel retention;
  const power::PowerModel pm;
  const double base_idle = pm.idle_power(0.064).total_mw();

  // Representative workloads spanning the MPKI classes.
  const char* kReps[] = {"h264ref", "soplex", "libquantum"};

  TextTable t({"strong ECC", "parity bits", "fits (72,64)", "decode cyc",
               "refresh period", "idle power", "MECC norm IPC (3 reps)"});
  for (std::size_t strength = 1; strength <= 7; ++strength) {
    // Reserve one corrected bit for soft errors (paper S II-C).
    const std::size_t retention_budget = strength - 1;
    const double ber = max_tolerable_ber(kTable1LineBits, retention_budget,
                                         kTable1NumLines, 1e-6);
    // Refresh period tolerable at that BER, floored at the JEDEC 64 ms.
    const double period =
        ber > 0.0 ? std::max(0.064, retention.retention_for_ber(ber)) : 0.064;
    const double idle_mw = pm.idle_power(period).total_mw();

    SystemConfig cfg = bench::scaled_config(opts);
    cfg.strong_ecc_t = strength;
    double norm = 0.0;
    for (const char* name : kReps) {
      const auto& b = trace::benchmark(name);
      const RunResult base = run_benchmark(b, EccPolicy::kNoEcc, cfg);
      const RunResult mecc = run_benchmark(b, EccPolicy::kMecc, cfg);
      norm += mecc.ipc / base.ipc;
    }
    norm /= 3.0;

    const std::size_t parity = 10 * strength;
    t.add_row({"ECC-" + std::to_string(strength), std::to_string(parity),
               parity + 4 <= 64 ? "yes" : "NO (extra storage)",
               std::to_string(
                   ecc::EccModel::decode_cycles_for_strength(strength)),
               TextTable::num(period, 3) + " s",
               TextTable::num(idle_mw / base_idle, 2) + "x",
               TextTable::num(norm)});
    const std::string k = std::to_string(strength);
    out.add_scalar("refresh_period_t" + k, period);
    out.add_scalar("norm_idle_power_t" + k, idle_mw / base_idle);
    out.add_scalar("mecc_norm_ipc_t" + k, norm);
  }
  t.print("The robustness / power / performance morphing space");

  std::printf("\nThe paper's operating point is ECC-6: the strongest code"
              " that still fits the (72,64) spare space, tolerating a"
              " ~1 s refresh period.\n");
  std::printf("MECC's performance is nearly flat across strengths - the"
              " decode cost is paid once per line - while an always-strong"
              " design would degrade linearly.\n");
  return out.write();
}
