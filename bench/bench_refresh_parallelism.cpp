// Refresh-parallelism sweep (docs/SCHEDULING.md): all-bank REF vs
// per-bank REFpb vs DARP-style dynamic scheduling vs DARP+SARP subarray
// overlap, each at the 64 ms base rate and under MECC's SMD divider,
// plus the 2x-rate stress point where refresh interference is large
// enough for the scheduling policy to matter.
//
// Paper context: Morphable ECC lowers the *refresh rate*; DARP/SARP
// (Chang et al., HPCA'14) attack the same refresh tax from the
// *scheduling* side. This bench quantifies how much of the interference
// the scheduler can hide so the two levers can be compared.
#include <cstdio>

#include "bench_util.h"

namespace {

using namespace mecc;
using namespace mecc::sim;

[[nodiscard]] SystemConfig with_refresh(SystemConfig c,
                                        memctrl::RefreshGranularity g,
                                        bool darp, bool sarp) {
  c.controller.refresh_granularity = g;
  c.controller.darp = darp;
  c.controller.sarp = sarp;
  c.controller.elastic_refresh = false;
  return c;
}

struct SuiteSummary {
  double mean_read_lat = 0.0;  // mem cycles, queueing included
  double refresh_mj = 0.0;
  std::uint64_t refreshes = 0;
  std::uint64_t refreshes_pb = 0;
  std::uint64_t pull_ins = 0;
  std::uint64_t postpones = 0;
  std::uint64_t sarp_overlaps = 0;
};

[[nodiscard]] SuiteSummary summarize(const bench::SuiteMap& runs) {
  SuiteSummary s;
  std::uint64_t lat = 0;
  std::uint64_t reads = 0;
  for (const auto& [_, r] : runs) {
    lat += r.stats.counter("memctrl.read_latency_mem_cycles");
    reads += r.stats.counter("memctrl.reads_enqueued");
    s.refreshes += r.stats.counter("memctrl.refreshes");
    s.refreshes_pb += r.stats.counter("memctrl.refreshes_pb");
    s.pull_ins += r.stats.counter("memctrl.refresh_pull_ins");
    s.postpones += r.stats.counter("memctrl.refresh_postpones");
    s.sarp_overlaps += r.stats.counter("memctrl.sarp_overlap_refreshes");
    s.refresh_mj += r.energy.refresh_mj;
  }
  s.mean_read_lat =
      reads > 0 ? static_cast<double>(lat) / static_cast<double>(reads) : 0.0;
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  using memctrl::RefreshGranularity;

  const SimOptions opts = parse_options(argc, argv, 2'000'000);
  const SystemConfig cfg = bench::scaled_config(opts);
  bench::BenchOutput out("refresh_parallelism", opts);

  bench::print_banner(
      "Refresh parallelism: all-bank / per-bank / DARP / DARP+SARP",
      "refresh scheduling baselines (Chang et al., HPCA'14 shape)");
  std::printf("slice: %llu instructions, %u jobs\n",
              static_cast<unsigned long long>(cfg.instructions), opts.jobs);

  // MECC's SMD mode holds the refresh divider at 16 while active; the
  // 2x point halves tREFI instead (the refresh-tax stress direction
  // both DARP and SARP were designed for).
  SystemConfig smd = cfg;
  smd.mecc_use_smd = true;
  SystemConfig cfg2x = cfg;
  cfg2x.timing.tREFI /= 2;

  const auto g_ab = RefreshGranularity::kAllBank;
  const auto g_pb = RefreshGranularity::kPerBank;
  auto suites = bench::run_suites_parallel(
      {{"all_bank", EccPolicy::kNoEcc, with_refresh(cfg, g_ab, false, false)},
       {"per_bank", EccPolicy::kNoEcc, with_refresh(cfg, g_pb, false, false)},
       {"darp", EccPolicy::kNoEcc, with_refresh(cfg, g_pb, true, false)},
       {"darp_sarp", EccPolicy::kNoEcc, with_refresh(cfg, g_pb, true, true)},
       {"all_bank_smd", EccPolicy::kMecc,
        with_refresh(smd, g_ab, false, false)},
       {"per_bank_smd", EccPolicy::kMecc,
        with_refresh(smd, g_pb, false, false)},
       {"darp_smd", EccPolicy::kMecc, with_refresh(smd, g_pb, true, false)},
       {"darp_sarp_smd", EccPolicy::kMecc,
        with_refresh(smd, g_pb, true, true)},
       {"all_bank_2x", EccPolicy::kNoEcc,
        with_refresh(cfg2x, g_ab, false, false)},
       {"darp_2x", EccPolicy::kNoEcc, with_refresh(cfg2x, g_pb, true, false)}},
      opts.jobs);

  TextTable t({"suite", "read lat", "REF", "REFpb", "pull-in", "postpone",
               "SARP ovl", "refresh mJ"});
  std::map<std::string, SuiteSummary> sums;
  for (const auto& [tag, runs] : suites) {
    sums[tag] = summarize(runs);
  }
  // Fixed presentation order (the map iterates alphabetically).
  const char* order[] = {"all_bank",     "per_bank",      "darp",
                         "darp_sarp",    "all_bank_smd",  "per_bank_smd",
                         "darp_smd",     "darp_sarp_smd", "all_bank_2x",
                         "darp_2x"};
  for (const char* tag : order) {
    const SuiteSummary& s = sums.at(tag);
    t.add_row({tag, TextTable::num(s.mean_read_lat),
               std::to_string(s.refreshes), std::to_string(s.refreshes_pb),
               std::to_string(s.pull_ins), std::to_string(s.postpones),
               std::to_string(s.sarp_overlaps),
               TextTable::num(s.refresh_mj)});
  }
  t.print("Suite totals over 28 benchmarks (read lat in mem cycles)");

  const double lat_ab2x = sums.at("all_bank_2x").mean_read_lat;
  const double lat_darp2x = sums.at("darp_2x").mean_read_lat;
  const double reduction_2x =
      lat_ab2x > 0.0 ? 1.0 - lat_darp2x / lat_ab2x : 0.0;
  std::printf("\nDARP vs all-bank at 2x refresh rate: mean read latency "
              "%.3f -> %.3f mem cycles (%.2f%% lower)\n",
              lat_ab2x, lat_darp2x, reduction_2x * 100.0);
  std::printf("Per-bank vs all-bank refresh energy at 64 ms: %.6f vs "
              "%.6f mJ (should match closely)\n",
              sums.at("per_bank").refresh_mj, sums.at("all_bank").refresh_mj);

  for (const char* tag : order) out.add_suite(tag, suites.at(tag));
  for (const char* tag : order) {
    out.add_scalar(std::string(tag) + "_mean_read_lat",
                   sums.at(tag).mean_read_lat);
  }
  out.add_scalar("darp_read_latency_reduction_2x", reduction_2x);
  return out.write();
}
