// Counter-audit matrix (docs/OBSERVABILITY.md): runs sim::audit_system_run
// over the refresh-policy x geometry x fast-forward matrix plus one
// fault-injection campaign, and exits non-zero if any trace/counter
// inconsistency is found. The two observability surfaces — the event
// trace and the StatRegistry — are produced by independent code paths;
// this bench is the tier-1 gate that they never drift apart.
//
// Flags (on top of the shared --instructions/--seed/--out):
//   --audit-stats=on|off   run the audit matrix (default on; off skips
//                          it and exits 0, for wiring experiments)
//   --audit-selftest=KEY   deliberately miscount snapshot key KEY by +1
//                          on one config; the audit MUST catch it and
//                          this bench then exits non-zero with the key
//                          named in the failure (exit 3 if the skew
//                          slipped through — an audit bug).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/stat_audit.h"

namespace {

using namespace mecc;
using namespace mecc::sim;

struct MatrixEntry {
  const char* tag;
  RefreshPolicyOption policy;
  std::uint32_t channels;
  std::uint32_t ranks;
  bool fast_forward;
};

[[nodiscard]] AuditOptions audit_options(const SimOptions& base,
                                         const MatrixEntry& m) {
  SimOptions o = base;
  o.refresh_policy = m.policy;
  o.refresh_granularity = RefreshGranularityOption::kAllBank;
  o.channels = m.channels;
  o.ranks = m.ranks;
  o.fast_forward = m.fast_forward;
  o.trace.clear();
  o.metrics_out.clear();
  AuditOptions a;
  a.config = bench::scaled_config(o);
  a.config.policy = EccPolicy::kMecc;
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const SimOptions opts = parse_options(argc, argv, 20'000);

  bool audit_on = true;
  std::string selftest_key;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--audit-stats=off") == 0) {
      audit_on = false;
    } else if (std::strcmp(arg, "--audit-stats=on") == 0 ||
               std::strcmp(arg, "--audit-stats") == 0) {
      audit_on = true;
    } else if (std::strncmp(arg, "--audit-selftest=", 17) == 0) {
      selftest_key = arg + 17;
      if (selftest_key.empty()) {
        std::fprintf(stderr, "error: --audit-selftest= needs a stat key\n");
        return 2;
      }
    }
  }

  bench::BenchOutput out("stat_audit", opts);
  bench::print_banner(
      "Counter audit: trace replay vs StatRegistry, policy x geometry",
      "every DRAM command, queue edge, residency span and error instant "
      "must match its counter");

  const MatrixEntry kMatrix[] = {
      {"strict", RefreshPolicyOption::kStrict, 1, 1, true},
      {"strict_noff", RefreshPolicyOption::kStrict, 1, 1, false},
      {"strict_2ch", RefreshPolicyOption::kStrict, 2, 1, true},
      {"strict_2r", RefreshPolicyOption::kStrict, 1, 2, true},
      {"strict_2ch_2r_noff", RefreshPolicyOption::kStrict, 2, 2, false},
      {"elastic", RefreshPolicyOption::kElastic, 1, 1, true},
      {"elastic_noff", RefreshPolicyOption::kElastic, 1, 1, false},
      {"elastic_2ch", RefreshPolicyOption::kElastic, 2, 1, true},
      {"elastic_2r", RefreshPolicyOption::kElastic, 1, 2, true},
      {"darp", RefreshPolicyOption::kDarp, 1, 1, true},
      {"darp_noff", RefreshPolicyOption::kDarp, 1, 1, false},
      {"darp_2ch", RefreshPolicyOption::kDarp, 2, 1, true},
      {"darp_2r", RefreshPolicyOption::kDarp, 1, 2, true},
      {"darp_sarp", RefreshPolicyOption::kDarpSarp, 1, 1, true},
      {"darp_sarp_noff", RefreshPolicyOption::kDarpSarp, 1, 1, false},
      {"darp_sarp_2ch", RefreshPolicyOption::kDarpSarp, 2, 1, true},
      {"darp_sarp_2r", RefreshPolicyOption::kDarpSarp, 1, 2, true},
      {"darp_sarp_2ch_2r", RefreshPolicyOption::kDarpSarp, 2, 2, true},
  };

  // Self-test mode: one config, one deliberately miscounted key. The
  // audit catching it (exit 1, key named) is the PASS outcome tier 1
  // asserts on; the skew slipping through is an audit bug (exit 3).
  if (!selftest_key.empty()) {
    AuditOptions a = audit_options(opts, kMatrix[0]);
    a.skew_key = selftest_key;
    const AuditResult r = audit_system_run(a);
    if (r.ok) {
      std::fprintf(stderr,
                   "selftest: skew on '%s' was NOT caught by the audit\n",
                   selftest_key.c_str());
      return 3;
    }
    for (const std::string& f : r.failures) {
      std::fprintf(stderr, "audit[%s]: FAIL: %s\n", kMatrix[0].tag, f.c_str());
    }
    std::printf("selftest: skew on '%s' caught (%llu checks, %llu events)\n",
                selftest_key.c_str(),
                static_cast<unsigned long long>(r.checks),
                static_cast<unsigned long long>(r.events_replayed));
    return 1;
  }

  if (!audit_on) {
    std::printf("audit disabled (--audit-stats=off)\n");
    return 0;
  }

  TextTable t({"config", "events", "checks", "status"});
  std::uint64_t total_checks = 0;
  std::uint64_t total_events = 0;
  std::uint64_t total_failures = 0;
  auto run_one = [&](const char* tag, const AuditOptions& a) {
    const AuditResult r = audit_system_run(a);
    total_checks += r.checks;
    total_events += r.events_replayed;
    total_failures += r.failures.size();
    for (const std::string& f : r.failures) {
      std::fprintf(stderr, "audit[%s]: FAIL: %s\n", tag, f.c_str());
    }
    t.add_row({tag, std::to_string(r.events_replayed),
               std::to_string(r.checks), r.ok ? "ok" : "FAIL"});
  };

  for (const MatrixEntry& m : kMatrix) {
    run_one(m.tag, audit_options(opts, m));
  }

  // Fault-injection campaign: retention errors + transient read noise
  // exercise the error-instant audit family (shadow CE/DUE, retries).
  {
    AuditOptions a = audit_options(opts, kMatrix[0]);
    a.config.fault.enabled = true;
    a.config.fault.shadow_lines = 1024;
    a.config.fault.ber_override = 2e-5;
    a.config.fault.transient_read_ber = 1e-4;
    run_one("fault_campaign", a);
  }

  t.print("Audit matrix (refresh policy x channels x ranks x fast-forward)");

  out.add_scalar("audit_configs",
                 static_cast<double>(std::size(kMatrix)) + 1.0);
  out.add_scalar("audit_checks", static_cast<double>(total_checks));
  out.add_scalar("audit_events_replayed", static_cast<double>(total_events));
  out.add_scalar("audit_failures", static_cast<double>(total_failures));

  if (total_failures != 0) {
    std::fprintf(stderr, "audit: %llu inconsistencies found\n",
                 static_cast<unsigned long long>(total_failures));
    (void)out.write();
    return 1;
  }
  std::printf("audit clean: %llu checks over %llu trace events, 0 "
              "inconsistencies\n",
              static_cast<unsigned long long>(total_checks),
              static_cast<unsigned long long>(total_events));
  return out.write();
}
