// Regenerates Table I: line failure and 1 GB-system failure probability
// for ECC-0..ECC-6 at the paper's raw BER of 10^-4.5, plus a Monte-Carlo
// cross-check of the analytics with the *real* BCH codec at an elevated
// BER where failures are observable.
#include <cstdio>

#include "bench_util.h"
#include "ecc/bch.h"
#include "reliability/failure_analysis.h"
#include "reliability/fault_injection.h"
#include "reliability/retention_model.h"

int main(int argc, char** argv) {
  using namespace mecc;
  using namespace mecc::reliability;

  const sim::SimOptions opts = sim::parse_options(argc, argv, 0);
  bench::BenchOutput out("table1_failure_prob", opts);

  bench::print_banner(
      "Table I: Line / System (1GB) failure probability vs ECC strength",
      "BER 10^-4.5, 64B line (+ECC space = 576 bits), 2^24 lines");

  const double ber = RetentionModel::kDefaultBerAt1s;
  // Paper's printed values for comparison.
  const double paper_line[7] = {1.8e-2, 1.6e-4, 9.8e-7, 4.5e-9,
                                1.6e-11, 4.9e-14, 1.2e-16};
  const double paper_sys[7] = {1.0, 1.0, 1.0, 7.2e-2, 2.7e-4, 8.1e-7,
                               1.8e-9};

  TextTable t({"ECC strength", "Line failure", "(paper)", "System failure",
               "(paper)"});
  for (std::size_t k = 0; k <= 6; ++k) {
    const double pl = line_failure_probability(kTable1LineBits, k, ber);
    const double ps = system_failure_probability(pl, kTable1NumLines);
    t.add_row({k == 0 ? "No ECC" : "ECC-" + std::to_string(k),
               TextTable::sci(pl), TextTable::sci(paper_line[k]),
               TextTable::sci(ps), TextTable::sci(paper_sys[k])});
    out.add_scalar("line_failure_ecc" + std::to_string(k), pl);
    out.add_scalar("system_failure_ecc" + std::to_string(k), ps);
  }
  t.print("Analytic (binomial tail)");

  const std::size_t need =
      required_ecc_strength(kTable1LineBits, kTable1NumLines, ber, 1e-6);
  std::printf(
      "\nECC strength for < 1e-6 system failure: ECC-%zu"
      " (+1 soft-error margin -> ECC-6, matching the paper)\n",
      need);

  // Monte-Carlo cross-check against the real BCH decoder. At 10^-4.5 a
  // protected line essentially never fails, so validate the analytic
  // model in an elevated-BER regime instead.
  bench::print_banner(
      "Monte-Carlo cross-check (real BCH codec, elevated BER)",
      "validates the binomial model driving Table I");
  TextTable mc({"code", "BER", "trials", "measured line fail", "analytic"});
  struct Case {
    std::size_t t;
    double ber;
    std::size_t trials;
  };
  for (const Case c : {Case{2, 3e-3, 4000}, Case{4, 6e-3, 3000},
                       Case{6, 9e-3, 2000}}) {
    const ecc::Bch code(10, c.t, 512);
    const auto r = measure_line_failures(code, c.ber, c.trials, 1234 + c.t);
    const double analytic =
        line_failure_probability(code.codeword_bits(), c.t, c.ber);
    mc.add_row({"BCH t=" + std::to_string(c.t), TextTable::sci(c.ber),
                std::to_string(c.trials), TextTable::sci(r.failure_rate()),
                TextTable::sci(analytic)});
    out.add_scalar("mc_line_failure_t" + std::to_string(c.t),
                   r.failure_rate());
  }
  mc.print("Empirical vs analytic");
  return out.write();
}
