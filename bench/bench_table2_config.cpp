// Prints the reproduction's system configuration (Table II) and power
// parameters (Table IV) so every other bench's context is on record.
#include <cstdio>

#include "bench_util.h"
#include "dram/dram_params.h"
#include "ecc/ecc_model.h"
#include "power/power_params.h"

int main(int argc, char** argv) {
  using namespace mecc;

  const sim::SimOptions opts = sim::parse_options(argc, argv, 0);
  bench::BenchOutput out("table2_config", opts);

  bench::print_banner("Table II: baseline system configuration",
                      "in-order 1.6 GHz core, 1 MB LLC, 1 GB LPDDR-200");
  {
    const dram::Geometry g;
    const dram::Timing t;
    TextTable tt({"parameter", "value"});
    tt.add_row({"Processor", "in-order, 2-wide retire, 1.6 GHz"});
    tt.add_row({"Cache", "1 MB LLC, 64 B lines"});
    tt.add_row({"Memory", "1 GB LPDDR, 200 MHz DDR bus, x32"});
    tt.add_row({"Channels/Ranks/Banks",
                std::to_string(g.channels) + "/" + std::to_string(g.ranks) +
                    "/" + std::to_string(g.banks)});
    tt.add_row({"Rows per bank", std::to_string(g.rows_per_bank)});
    tt.add_row({"Row buffer", std::to_string(g.lines_per_row * 64) + " B"});
    tt.add_row({"Total lines", std::to_string(g.total_lines())});
    tt.add_row({"tRCD/tRP/tCL (cycles)",
                std::to_string(t.tRCD) + "/" + std::to_string(t.tRP) + "/" +
                    std::to_string(t.tCL)});
    tt.add_row({"tRAS/tWR/tRFC", std::to_string(t.tRAS) + "/" +
                                     std::to_string(t.tWR) + "/" +
                                     std::to_string(t.tRFC)});
    tt.add_row({"tREFI", std::to_string(t.tREFI) + " cycles (7.8 us)"});
    tt.print("System configuration");
    out.add_scalar("total_lines", static_cast<double>(g.total_lines()));
    out.add_scalar("tREFI_cycles", static_cast<double>(t.tREFI));
  }

  bench::print_banner("Table IV: power parameters", "Micron LPDDR values");
  {
    const power::PowerParams p;
    TextTable tt({"parameter", "value", "description"});
    tt.add_row({"VDD", TextTable::num(p.vdd, 1) + " V", "operating voltage"});
    tt.add_row({"IDD0", TextTable::num(p.idd0_ma, 0) + " mA",
                "1-bank active-precharge"});
    tt.add_row({"IDD2P", TextTable::num(p.idd2p_ma, 1) + " mA",
                "precharge power-down standby"});
    tt.add_row({"IDD3P", TextTable::num(p.idd3p_ma, 1) + " mA",
                "active power-down standby"});
    tt.add_row({"IDD4", TextTable::num(p.idd4_ma, 0) + " mA",
                "burst read/write"});
    tt.add_row({"IDD5", TextTable::num(p.idd5_ma, 0) + " mA", "auto refresh"});
    tt.add_row({"IDD8", TextTable::num(p.idd8_ma, 1) + " mA", "self refresh"});
    tt.add_row({"IDD2N*", TextTable::num(p.idd2n_ma, 0) + " mA",
                "precharge standby (datasheet)"});
    tt.add_row({"IDD3N*", TextTable::num(p.idd3n_ma, 0) + " mA",
                "active standby (datasheet)"});
    tt.print("Power parameters (* = values the paper omits)");
  }

  bench::print_banner("ECC scheme costs (S III-E)",
                      "decode/encode latency, energy, area");
  {
    const ecc::EccModel m;
    TextTable tt({"scheme", "decode (cyc)", "encode (cyc)", "decode (pJ)",
                  "gates"});
    for (auto s : {ecc::Scheme::kSecded, ecc::Scheme::kEcc6}) {
      const auto c = m.costs(s);
      tt.add_row({ecc::scheme_name(s), std::to_string(c.decode_cycles),
                  std::to_string(c.encode_cycles),
                  TextTable::num(c.decode_energy_pj, 0),
                  std::to_string(c.gate_count)});
      out.add_scalar(std::string(ecc::scheme_name(s)) + "_decode_cycles",
                     static_cast<double>(c.decode_cycles));
    }
    tt.print("Modeled codec costs");
  }
  return out.write();
}
