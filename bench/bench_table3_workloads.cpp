// Regenerates Table III: benchmark characterization (baseline IPC, MPKI,
// footprint), per class and per benchmark, as measured by the simulator
// against the paper's targets.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace mecc;
  using namespace mecc::sim;

  const SimOptions opts = parse_options(argc, argv, 20'000'000);
  const SystemConfig cfg = bench::scaled_config(opts);
  bench::BenchOutput out("table3_workloads", opts);

  bench::print_banner("Table III: benchmark characterization",
                      "28 SPEC2006-profile workloads, no-ECC baseline");

  const auto base = bench::run_suite_map(EccPolicy::kNoEcc, cfg, opts.jobs);

  TextTable t({"benchmark", "class", "IPC", "(paper)", "MPKI", "(paper)",
               "footprint MB"});
  struct Acc {
    double ipc = 0, mpki = 0, fp = 0;
    int n = 0;
  };
  std::map<trace::MpkiClass, Acc> acc;
  for (const auto& b : trace::all_benchmarks()) {
    const auto& r = base.at(std::string(b.name));
    t.add_row({std::string(b.name), trace::mpki_class_name(b.klass),
               TextTable::num(r.ipc), TextTable::num(b.paper_ipc),
               TextTable::num(r.measured_mpki, 1), TextTable::num(b.mpki, 1),
               TextTable::num(b.footprint_mb, 1)});
    auto& a = acc[b.klass];
    a.ipc += r.ipc;
    a.mpki += r.measured_mpki;
    a.fp += b.footprint_mb;
    ++a.n;
  }
  t.print("Per-benchmark characterization (measured vs paper)");

  TextTable s({"class", "IPC", "(paper)", "MPKI", "(paper)", "footprint",
               "(paper)"});
  const char* paper_rows[3][3] = {{"1.514", "0.3", "26"},
                                  {"0.887", "4.7", "96.4"},
                                  {"0.359", "23.5", "259.1"}};
  int i = 0;
  for (auto klass : {trace::MpkiClass::kLow, trace::MpkiClass::kMed,
                     trace::MpkiClass::kHigh}) {
    const auto& a = acc[klass];
    s.add_row({trace::mpki_class_name(klass), TextTable::num(a.ipc / a.n),
               paper_rows[i][0], TextTable::num(a.mpki / a.n, 1),
               paper_rows[i][1], TextTable::num(a.fp / a.n, 1),
               paper_rows[i][2]});
    ++i;
  }
  s.print("Class averages (measured vs Table III)");

  out.add_suite("base", base);
  return out.write();
}
