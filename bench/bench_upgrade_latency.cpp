// Regenerates the S VI-A ECC-Upgrade latency result: converting the
// whole 1 GB memory to ECC-6 on idle entry takes ~400 ms; with MDT and a
// typical 128 MB touched footprint it drops to ~50 ms. Includes an
// ablation over the MDT entry count (the paper's 1K-entry/128 B table is
// the chosen point).
#include <cstdio>

#include "bench_util.h"
#include "mecc/engine.h"
#include "trace/generator.h"

int main(int argc, char** argv) {
  using namespace mecc;

  const sim::SimOptions opts = sim::parse_options(argc, argv, 300'000);
  bench::BenchOutput out("upgrade_latency", opts);

  bench::print_banner("ECC-Upgrade latency: full walk vs MDT (S VI-A)",
                      "400 ms -> 50 ms with a 128-byte table");

  // Full-memory upgrade (no MDT).
  {
    morph::EngineConfig c;
    c.use_mdt = false;
    morph::Engine e(c);
    (void)e.on_read(0);
    const auto r = e.enter_idle();
    std::printf("\nWithout MDT: %llu lines, %.0f ms (paper: ~400 ms)\n",
                static_cast<unsigned long long>(r.lines_upgraded),
                r.upgrade_seconds * 1e3);
    out.add_scalar("full_walk_upgrade_ms", r.upgrade_seconds * 1e3);
  }

  // With MDT at various table sizes, driven by a 128 MB-footprint access
  // stream (the suite-average footprint).
  TextTable t({"MDT entries", "table bytes", "region size", "lines upgraded",
               "upgrade ms"});
  for (std::size_t entries : {64u, 256u, 1024u, 4096u, 16384u}) {
    morph::EngineConfig c;
    c.mdt_entries = entries;
    morph::Engine e(c);
    trace::BenchmarkProfile avg = trace::benchmark("bzip2");  // 120 MB
    trace::GeneratorConfig gc;
    gc.footprint_scale = 1.0;
    gc.seed = opts.seed;
    trace::TraceGenerator gen(avg, gc);
    for (std::uint64_t i = 0; i < opts.instructions; ++i) {
      (void)e.on_read(gen.next().line_addr);
    }
    const auto r = e.enter_idle();
    t.add_row({std::to_string(entries),
               std::to_string(e.mdt().storage_bytes()),
               std::to_string(e.mdt().region_bytes() / 1024) + " KB",
               std::to_string(r.lines_upgraded),
               TextTable::num(r.upgrade_seconds * 1e3, 1)});
    out.add_scalar("mdt" + std::to_string(entries) + "_upgrade_ms",
                   r.upgrade_seconds * 1e3);
  }
  t.print("MDT ablation (bzip2-like 120 MB footprint)");

  std::printf("\nPaper's chosen point: 1K entries = 128 bytes, ~50 ms"
              " upgrade, 8x less coding energy.\n");
  return out.write();
}
