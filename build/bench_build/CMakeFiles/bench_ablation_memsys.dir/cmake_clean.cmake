file(REMOVE_RECURSE
  "../bench/bench_ablation_memsys"
  "../bench/bench_ablation_memsys.pdb"
  "CMakeFiles/bench_ablation_memsys.dir/bench_ablation_memsys.cpp.o"
  "CMakeFiles/bench_ablation_memsys.dir/bench_ablation_memsys.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_memsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
