# Empty dependencies file for bench_ablation_memsys.
# This may be replaced when dependencies are built.
