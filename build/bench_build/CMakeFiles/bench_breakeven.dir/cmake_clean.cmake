file(REMOVE_RECURSE
  "../bench/bench_breakeven"
  "../bench/bench_breakeven.pdb"
  "CMakeFiles/bench_breakeven.dir/bench_breakeven.cpp.o"
  "CMakeFiles/bench_breakeven.dir/bench_breakeven.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_breakeven.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
