file(REMOVE_RECURSE
  "../bench/bench_ecc_codec"
  "../bench/bench_ecc_codec.pdb"
  "CMakeFiles/bench_ecc_codec.dir/bench_ecc_codec.cpp.o"
  "CMakeFiles/bench_ecc_codec.dir/bench_ecc_codec.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ecc_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
