# Empty compiler generated dependencies file for bench_ecc_codec.
# This may be replaced when dependencies are built.
