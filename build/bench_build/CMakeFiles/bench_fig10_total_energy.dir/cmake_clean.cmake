file(REMOVE_RECURSE
  "../bench/bench_fig10_total_energy"
  "../bench/bench_fig10_total_energy.pdb"
  "CMakeFiles/bench_fig10_total_energy.dir/bench_fig10_total_energy.cpp.o"
  "CMakeFiles/bench_fig10_total_energy.dir/bench_fig10_total_energy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_total_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
