file(REMOVE_RECURSE
  "../bench/bench_fig11_mdt"
  "../bench/bench_fig11_mdt.pdb"
  "CMakeFiles/bench_fig11_mdt.dir/bench_fig11_mdt.cpp.o"
  "CMakeFiles/bench_fig11_mdt.dir/bench_fig11_mdt.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_mdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
