# Empty dependencies file for bench_fig11_mdt.
# This may be replaced when dependencies are built.
