file(REMOVE_RECURSE
  "../bench/bench_fig13_transition"
  "../bench/bench_fig13_transition.pdb"
  "CMakeFiles/bench_fig13_transition.dir/bench_fig13_transition.cpp.o"
  "CMakeFiles/bench_fig13_transition.dir/bench_fig13_transition.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_transition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
