# Empty dependencies file for bench_fig13_transition.
# This may be replaced when dependencies are built.
