file(REMOVE_RECURSE
  "../bench/bench_fig14_smd"
  "../bench/bench_fig14_smd.pdb"
  "CMakeFiles/bench_fig14_smd.dir/bench_fig14_smd.cpp.o"
  "CMakeFiles/bench_fig14_smd.dir/bench_fig14_smd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_smd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
