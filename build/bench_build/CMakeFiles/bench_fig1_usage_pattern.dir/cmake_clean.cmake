file(REMOVE_RECURSE
  "../bench/bench_fig1_usage_pattern"
  "../bench/bench_fig1_usage_pattern.pdb"
  "CMakeFiles/bench_fig1_usage_pattern.dir/bench_fig1_usage_pattern.cpp.o"
  "CMakeFiles/bench_fig1_usage_pattern.dir/bench_fig1_usage_pattern.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_usage_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
