file(REMOVE_RECURSE
  "../bench/bench_fig2_retention"
  "../bench/bench_fig2_retention.pdb"
  "CMakeFiles/bench_fig2_retention.dir/bench_fig2_retention.cpp.o"
  "CMakeFiles/bench_fig2_retention.dir/bench_fig2_retention.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_retention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
