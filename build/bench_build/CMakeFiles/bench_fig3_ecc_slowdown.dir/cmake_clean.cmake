file(REMOVE_RECURSE
  "../bench/bench_fig3_ecc_slowdown"
  "../bench/bench_fig3_ecc_slowdown.pdb"
  "CMakeFiles/bench_fig3_ecc_slowdown.dir/bench_fig3_ecc_slowdown.cpp.o"
  "CMakeFiles/bench_fig3_ecc_slowdown.dir/bench_fig3_ecc_slowdown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_ecc_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
