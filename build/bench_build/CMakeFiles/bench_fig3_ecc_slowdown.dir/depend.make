# Empty dependencies file for bench_fig3_ecc_slowdown.
# This may be replaced when dependencies are built.
