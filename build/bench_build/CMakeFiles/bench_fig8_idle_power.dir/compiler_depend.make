# Empty compiler generated dependencies file for bench_fig8_idle_power.
# This may be replaced when dependencies are built.
