file(REMOVE_RECURSE
  "../bench/bench_idle_modes"
  "../bench/bench_idle_modes.pdb"
  "CMakeFiles/bench_idle_modes.dir/bench_idle_modes.cpp.o"
  "CMakeFiles/bench_idle_modes.dir/bench_idle_modes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_idle_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
