# Empty compiler generated dependencies file for bench_idle_modes.
# This may be replaced when dependencies are built.
