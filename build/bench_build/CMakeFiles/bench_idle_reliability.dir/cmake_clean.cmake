file(REMOVE_RECURSE
  "../bench/bench_idle_reliability"
  "../bench/bench_idle_reliability.pdb"
  "CMakeFiles/bench_idle_reliability.dir/bench_idle_reliability.cpp.o"
  "CMakeFiles/bench_idle_reliability.dir/bench_idle_reliability.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_idle_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
