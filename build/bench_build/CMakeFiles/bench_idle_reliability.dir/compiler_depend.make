# Empty compiler generated dependencies file for bench_idle_reliability.
# This may be replaced when dependencies are built.
