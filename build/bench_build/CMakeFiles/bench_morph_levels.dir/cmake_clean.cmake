file(REMOVE_RECURSE
  "../bench/bench_morph_levels"
  "../bench/bench_morph_levels.pdb"
  "CMakeFiles/bench_morph_levels.dir/bench_morph_levels.cpp.o"
  "CMakeFiles/bench_morph_levels.dir/bench_morph_levels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_morph_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
