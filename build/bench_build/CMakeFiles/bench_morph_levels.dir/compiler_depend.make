# Empty compiler generated dependencies file for bench_morph_levels.
# This may be replaced when dependencies are built.
