file(REMOVE_RECURSE
  "../bench/bench_table1_failure_prob"
  "../bench/bench_table1_failure_prob.pdb"
  "CMakeFiles/bench_table1_failure_prob.dir/bench_table1_failure_prob.cpp.o"
  "CMakeFiles/bench_table1_failure_prob.dir/bench_table1_failure_prob.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_failure_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
