# Empty compiler generated dependencies file for bench_table1_failure_prob.
# This may be replaced when dependencies are built.
