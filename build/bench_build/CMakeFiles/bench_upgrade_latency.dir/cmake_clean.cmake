file(REMOVE_RECURSE
  "../bench/bench_upgrade_latency"
  "../bench/bench_upgrade_latency.pdb"
  "CMakeFiles/bench_upgrade_latency.dir/bench_upgrade_latency.cpp.o"
  "CMakeFiles/bench_upgrade_latency.dir/bench_upgrade_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_upgrade_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
