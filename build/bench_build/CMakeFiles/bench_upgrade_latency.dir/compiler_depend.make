# Empty compiler generated dependencies file for bench_upgrade_latency.
# This may be replaced when dependencies are built.
