file(REMOVE_RECURSE
  "CMakeFiles/cache_filter.dir/cache_filter.cpp.o"
  "CMakeFiles/cache_filter.dir/cache_filter.cpp.o.d"
  "cache_filter"
  "cache_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
