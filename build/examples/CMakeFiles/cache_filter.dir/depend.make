# Empty dependencies file for cache_filter.
# This may be replaced when dependencies are built.
