file(REMOVE_RECURSE
  "CMakeFiles/mecc_sim_cli.dir/mecc_sim_cli.cpp.o"
  "CMakeFiles/mecc_sim_cli.dir/mecc_sim_cli.cpp.o.d"
  "mecc_sim_cli"
  "mecc_sim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecc_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
