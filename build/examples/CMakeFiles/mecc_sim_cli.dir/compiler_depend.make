# Empty compiler generated dependencies file for mecc_sim_cli.
# This may be replaced when dependencies are built.
