file(REMOVE_RECURSE
  "CMakeFiles/refresh_explorer.dir/refresh_explorer.cpp.o"
  "CMakeFiles/refresh_explorer.dir/refresh_explorer.cpp.o.d"
  "refresh_explorer"
  "refresh_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refresh_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
