# Empty dependencies file for refresh_explorer.
# This may be replaced when dependencies are built.
