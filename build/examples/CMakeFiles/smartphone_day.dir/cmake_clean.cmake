file(REMOVE_RECURSE
  "CMakeFiles/smartphone_day.dir/smartphone_day.cpp.o"
  "CMakeFiles/smartphone_day.dir/smartphone_day.cpp.o.d"
  "smartphone_day"
  "smartphone_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartphone_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
