# Empty dependencies file for smartphone_day.
# This may be replaced when dependencies are built.
