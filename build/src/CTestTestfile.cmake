# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("galois")
subdirs("ecc")
subdirs("reliability")
subdirs("dram")
subdirs("power")
subdirs("memctrl")
subdirs("cache")
subdirs("cpu")
subdirs("trace")
subdirs("mecc")
subdirs("baselines")
subdirs("sim")
