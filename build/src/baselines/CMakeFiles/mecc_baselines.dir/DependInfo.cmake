
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/raidr.cpp" "src/baselines/CMakeFiles/mecc_baselines.dir/raidr.cpp.o" "gcc" "src/baselines/CMakeFiles/mecc_baselines.dir/raidr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mecc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/mecc_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/mecc_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/galois/CMakeFiles/mecc_galois.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
