file(REMOVE_RECURSE
  "CMakeFiles/mecc_baselines.dir/raidr.cpp.o"
  "CMakeFiles/mecc_baselines.dir/raidr.cpp.o.d"
  "libmecc_baselines.a"
  "libmecc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
