file(REMOVE_RECURSE
  "libmecc_baselines.a"
)
