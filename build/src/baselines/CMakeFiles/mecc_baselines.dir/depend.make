# Empty dependencies file for mecc_baselines.
# This may be replaced when dependencies are built.
