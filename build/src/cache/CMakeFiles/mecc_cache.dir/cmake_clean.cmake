file(REMOVE_RECURSE
  "CMakeFiles/mecc_cache.dir/llc.cpp.o"
  "CMakeFiles/mecc_cache.dir/llc.cpp.o.d"
  "libmecc_cache.a"
  "libmecc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
