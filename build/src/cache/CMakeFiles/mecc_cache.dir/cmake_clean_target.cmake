file(REMOVE_RECURSE
  "libmecc_cache.a"
)
