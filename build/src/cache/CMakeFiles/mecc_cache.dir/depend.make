# Empty dependencies file for mecc_cache.
# This may be replaced when dependencies are built.
