file(REMOVE_RECURSE
  "CMakeFiles/mecc_common.dir/bitvec.cpp.o"
  "CMakeFiles/mecc_common.dir/bitvec.cpp.o.d"
  "CMakeFiles/mecc_common.dir/stats.cpp.o"
  "CMakeFiles/mecc_common.dir/stats.cpp.o.d"
  "CMakeFiles/mecc_common.dir/table.cpp.o"
  "CMakeFiles/mecc_common.dir/table.cpp.o.d"
  "libmecc_common.a"
  "libmecc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
