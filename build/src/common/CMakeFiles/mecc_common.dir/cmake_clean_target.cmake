file(REMOVE_RECURSE
  "libmecc_common.a"
)
