# Empty compiler generated dependencies file for mecc_common.
# This may be replaced when dependencies are built.
