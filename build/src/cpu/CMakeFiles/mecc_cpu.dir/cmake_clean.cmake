file(REMOVE_RECURSE
  "CMakeFiles/mecc_cpu.dir/core.cpp.o"
  "CMakeFiles/mecc_cpu.dir/core.cpp.o.d"
  "libmecc_cpu.a"
  "libmecc_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecc_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
