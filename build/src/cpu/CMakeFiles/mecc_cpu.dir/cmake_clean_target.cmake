file(REMOVE_RECURSE
  "libmecc_cpu.a"
)
