# Empty dependencies file for mecc_cpu.
# This may be replaced when dependencies are built.
