file(REMOVE_RECURSE
  "CMakeFiles/mecc_dram.dir/device.cpp.o"
  "CMakeFiles/mecc_dram.dir/device.cpp.o.d"
  "CMakeFiles/mecc_dram.dir/timing_checker.cpp.o"
  "CMakeFiles/mecc_dram.dir/timing_checker.cpp.o.d"
  "libmecc_dram.a"
  "libmecc_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecc_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
