file(REMOVE_RECURSE
  "libmecc_dram.a"
)
