# Empty compiler generated dependencies file for mecc_dram.
# This may be replaced when dependencies are built.
