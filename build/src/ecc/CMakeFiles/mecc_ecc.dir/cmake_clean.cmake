file(REMOVE_RECURSE
  "CMakeFiles/mecc_ecc.dir/bch.cpp.o"
  "CMakeFiles/mecc_ecc.dir/bch.cpp.o.d"
  "CMakeFiles/mecc_ecc.dir/secded.cpp.o"
  "CMakeFiles/mecc_ecc.dir/secded.cpp.o.d"
  "libmecc_ecc.a"
  "libmecc_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecc_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
