file(REMOVE_RECURSE
  "libmecc_ecc.a"
)
