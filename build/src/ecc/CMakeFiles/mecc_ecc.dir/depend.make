# Empty dependencies file for mecc_ecc.
# This may be replaced when dependencies are built.
