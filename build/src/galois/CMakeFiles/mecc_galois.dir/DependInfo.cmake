
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/galois/gf.cpp" "src/galois/CMakeFiles/mecc_galois.dir/gf.cpp.o" "gcc" "src/galois/CMakeFiles/mecc_galois.dir/gf.cpp.o.d"
  "/root/repo/src/galois/gf2_poly.cpp" "src/galois/CMakeFiles/mecc_galois.dir/gf2_poly.cpp.o" "gcc" "src/galois/CMakeFiles/mecc_galois.dir/gf2_poly.cpp.o.d"
  "/root/repo/src/galois/gfm_poly.cpp" "src/galois/CMakeFiles/mecc_galois.dir/gfm_poly.cpp.o" "gcc" "src/galois/CMakeFiles/mecc_galois.dir/gfm_poly.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mecc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
