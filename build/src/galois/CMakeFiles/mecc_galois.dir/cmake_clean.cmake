file(REMOVE_RECURSE
  "CMakeFiles/mecc_galois.dir/gf.cpp.o"
  "CMakeFiles/mecc_galois.dir/gf.cpp.o.d"
  "CMakeFiles/mecc_galois.dir/gf2_poly.cpp.o"
  "CMakeFiles/mecc_galois.dir/gf2_poly.cpp.o.d"
  "CMakeFiles/mecc_galois.dir/gfm_poly.cpp.o"
  "CMakeFiles/mecc_galois.dir/gfm_poly.cpp.o.d"
  "libmecc_galois.a"
  "libmecc_galois.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecc_galois.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
