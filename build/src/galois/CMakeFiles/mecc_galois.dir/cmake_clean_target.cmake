file(REMOVE_RECURSE
  "libmecc_galois.a"
)
