# Empty dependencies file for mecc_galois.
# This may be replaced when dependencies are built.
