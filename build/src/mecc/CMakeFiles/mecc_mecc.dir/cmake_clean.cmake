file(REMOVE_RECURSE
  "CMakeFiles/mecc_mecc.dir/line_codec.cpp.o"
  "CMakeFiles/mecc_mecc.dir/line_codec.cpp.o.d"
  "CMakeFiles/mecc_mecc.dir/memory_image.cpp.o"
  "CMakeFiles/mecc_mecc.dir/memory_image.cpp.o.d"
  "libmecc_mecc.a"
  "libmecc_mecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecc_mecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
