file(REMOVE_RECURSE
  "libmecc_mecc.a"
)
