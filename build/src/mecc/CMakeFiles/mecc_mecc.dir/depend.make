# Empty dependencies file for mecc_mecc.
# This may be replaced when dependencies are built.
