file(REMOVE_RECURSE
  "CMakeFiles/mecc_memctrl.dir/controller.cpp.o"
  "CMakeFiles/mecc_memctrl.dir/controller.cpp.o.d"
  "libmecc_memctrl.a"
  "libmecc_memctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecc_memctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
