file(REMOVE_RECURSE
  "libmecc_memctrl.a"
)
