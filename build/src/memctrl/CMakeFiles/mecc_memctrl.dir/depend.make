# Empty dependencies file for mecc_memctrl.
# This may be replaced when dependencies are built.
