file(REMOVE_RECURSE
  "CMakeFiles/mecc_power.dir/idle_modes.cpp.o"
  "CMakeFiles/mecc_power.dir/idle_modes.cpp.o.d"
  "CMakeFiles/mecc_power.dir/power_model.cpp.o"
  "CMakeFiles/mecc_power.dir/power_model.cpp.o.d"
  "libmecc_power.a"
  "libmecc_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecc_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
