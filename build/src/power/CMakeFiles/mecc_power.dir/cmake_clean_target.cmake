file(REMOVE_RECURSE
  "libmecc_power.a"
)
