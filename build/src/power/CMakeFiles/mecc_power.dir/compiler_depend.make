# Empty compiler generated dependencies file for mecc_power.
# This may be replaced when dependencies are built.
