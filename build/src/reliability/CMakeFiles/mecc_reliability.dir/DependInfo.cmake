
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reliability/failure_analysis.cpp" "src/reliability/CMakeFiles/mecc_reliability.dir/failure_analysis.cpp.o" "gcc" "src/reliability/CMakeFiles/mecc_reliability.dir/failure_analysis.cpp.o.d"
  "/root/repo/src/reliability/fault_injection.cpp" "src/reliability/CMakeFiles/mecc_reliability.dir/fault_injection.cpp.o" "gcc" "src/reliability/CMakeFiles/mecc_reliability.dir/fault_injection.cpp.o.d"
  "/root/repo/src/reliability/retention_model.cpp" "src/reliability/CMakeFiles/mecc_reliability.dir/retention_model.cpp.o" "gcc" "src/reliability/CMakeFiles/mecc_reliability.dir/retention_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mecc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/mecc_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/galois/CMakeFiles/mecc_galois.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
