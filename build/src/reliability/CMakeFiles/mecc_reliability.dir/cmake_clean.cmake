file(REMOVE_RECURSE
  "CMakeFiles/mecc_reliability.dir/failure_analysis.cpp.o"
  "CMakeFiles/mecc_reliability.dir/failure_analysis.cpp.o.d"
  "CMakeFiles/mecc_reliability.dir/fault_injection.cpp.o"
  "CMakeFiles/mecc_reliability.dir/fault_injection.cpp.o.d"
  "CMakeFiles/mecc_reliability.dir/retention_model.cpp.o"
  "CMakeFiles/mecc_reliability.dir/retention_model.cpp.o.d"
  "libmecc_reliability.a"
  "libmecc_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecc_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
