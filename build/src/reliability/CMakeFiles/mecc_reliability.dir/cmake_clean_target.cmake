file(REMOVE_RECURSE
  "libmecc_reliability.a"
)
