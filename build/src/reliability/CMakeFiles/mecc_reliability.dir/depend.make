# Empty dependencies file for mecc_reliability.
# This may be replaced when dependencies are built.
