
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/csv.cpp" "src/sim/CMakeFiles/mecc_sim.dir/csv.cpp.o" "gcc" "src/sim/CMakeFiles/mecc_sim.dir/csv.cpp.o.d"
  "/root/repo/src/sim/experiment.cpp" "src/sim/CMakeFiles/mecc_sim.dir/experiment.cpp.o" "gcc" "src/sim/CMakeFiles/mecc_sim.dir/experiment.cpp.o.d"
  "/root/repo/src/sim/options.cpp" "src/sim/CMakeFiles/mecc_sim.dir/options.cpp.o" "gcc" "src/sim/CMakeFiles/mecc_sim.dir/options.cpp.o.d"
  "/root/repo/src/sim/system.cpp" "src/sim/CMakeFiles/mecc_sim.dir/system.cpp.o" "gcc" "src/sim/CMakeFiles/mecc_sim.dir/system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mecc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/mecc_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mecc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/memctrl/CMakeFiles/mecc_memctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/mecc_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/mecc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/mecc/CMakeFiles/mecc_mecc.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/mecc_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/mecc_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/galois/CMakeFiles/mecc_galois.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
