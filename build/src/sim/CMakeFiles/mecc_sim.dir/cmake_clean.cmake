file(REMOVE_RECURSE
  "CMakeFiles/mecc_sim.dir/csv.cpp.o"
  "CMakeFiles/mecc_sim.dir/csv.cpp.o.d"
  "CMakeFiles/mecc_sim.dir/experiment.cpp.o"
  "CMakeFiles/mecc_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/mecc_sim.dir/options.cpp.o"
  "CMakeFiles/mecc_sim.dir/options.cpp.o.d"
  "CMakeFiles/mecc_sim.dir/system.cpp.o"
  "CMakeFiles/mecc_sim.dir/system.cpp.o.d"
  "libmecc_sim.a"
  "libmecc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
