file(REMOVE_RECURSE
  "libmecc_sim.a"
)
