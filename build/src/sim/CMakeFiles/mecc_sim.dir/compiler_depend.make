# Empty compiler generated dependencies file for mecc_sim.
# This may be replaced when dependencies are built.
