file(REMOVE_RECURSE
  "CMakeFiles/mecc_trace.dir/benchmarks.cpp.o"
  "CMakeFiles/mecc_trace.dir/benchmarks.cpp.o.d"
  "CMakeFiles/mecc_trace.dir/file_trace.cpp.o"
  "CMakeFiles/mecc_trace.dir/file_trace.cpp.o.d"
  "CMakeFiles/mecc_trace.dir/generator.cpp.o"
  "CMakeFiles/mecc_trace.dir/generator.cpp.o.d"
  "libmecc_trace.a"
  "libmecc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mecc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
