file(REMOVE_RECURSE
  "libmecc_trace.a"
)
