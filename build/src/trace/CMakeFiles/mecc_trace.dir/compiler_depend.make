# Empty compiler generated dependencies file for mecc_trace.
# This may be replaced when dependencies are built.
