file(REMOVE_RECURSE
  "CMakeFiles/test_bch_grid.dir/ecc/bch_grid_test.cpp.o"
  "CMakeFiles/test_bch_grid.dir/ecc/bch_grid_test.cpp.o.d"
  "test_bch_grid"
  "test_bch_grid.pdb"
  "test_bch_grid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bch_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
