# Empty dependencies file for test_bch_grid.
# This may be replaced when dependencies are built.
