file(REMOVE_RECURSE
  "CMakeFiles/test_controller_fuzz.dir/memctrl/controller_fuzz_test.cpp.o"
  "CMakeFiles/test_controller_fuzz.dir/memctrl/controller_fuzz_test.cpp.o.d"
  "test_controller_fuzz"
  "test_controller_fuzz.pdb"
  "test_controller_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_controller_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
