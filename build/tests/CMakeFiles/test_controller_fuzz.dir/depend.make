# Empty dependencies file for test_controller_fuzz.
# This may be replaced when dependencies are built.
