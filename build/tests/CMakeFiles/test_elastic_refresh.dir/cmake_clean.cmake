file(REMOVE_RECURSE
  "CMakeFiles/test_elastic_refresh.dir/memctrl/elastic_refresh_test.cpp.o"
  "CMakeFiles/test_elastic_refresh.dir/memctrl/elastic_refresh_test.cpp.o.d"
  "test_elastic_refresh"
  "test_elastic_refresh.pdb"
  "test_elastic_refresh[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_elastic_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
