# Empty compiler generated dependencies file for test_elastic_refresh.
# This may be replaced when dependencies are built.
