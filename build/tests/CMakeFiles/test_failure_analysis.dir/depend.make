# Empty dependencies file for test_failure_analysis.
# This may be replaced when dependencies are built.
