file(REMOVE_RECURSE
  "CMakeFiles/test_file_trace.dir/trace/file_trace_test.cpp.o"
  "CMakeFiles/test_file_trace.dir/trace/file_trace_test.cpp.o.d"
  "test_file_trace"
  "test_file_trace.pdb"
  "test_file_trace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_file_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
