file(REMOVE_RECURSE
  "CMakeFiles/test_gf2_poly.dir/galois/gf2_poly_test.cpp.o"
  "CMakeFiles/test_gf2_poly.dir/galois/gf2_poly_test.cpp.o.d"
  "test_gf2_poly"
  "test_gf2_poly.pdb"
  "test_gf2_poly[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gf2_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
