# Empty dependencies file for test_gf2_poly.
# This may be replaced when dependencies are built.
