file(REMOVE_RECURSE
  "CMakeFiles/test_gf_all_m.dir/galois/gf_all_m_test.cpp.o"
  "CMakeFiles/test_gf_all_m.dir/galois/gf_all_m_test.cpp.o.d"
  "test_gf_all_m"
  "test_gf_all_m.pdb"
  "test_gf_all_m[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gf_all_m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
