# Empty compiler generated dependencies file for test_gf_all_m.
# This may be replaced when dependencies are built.
