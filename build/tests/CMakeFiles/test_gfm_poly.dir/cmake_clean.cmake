file(REMOVE_RECURSE
  "CMakeFiles/test_gfm_poly.dir/galois/gfm_poly_test.cpp.o"
  "CMakeFiles/test_gfm_poly.dir/galois/gfm_poly_test.cpp.o.d"
  "test_gfm_poly"
  "test_gfm_poly.pdb"
  "test_gfm_poly[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gfm_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
