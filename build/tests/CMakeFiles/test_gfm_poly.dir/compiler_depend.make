# Empty compiler generated dependencies file for test_gfm_poly.
# This may be replaced when dependencies are built.
