file(REMOVE_RECURSE
  "CMakeFiles/test_hiecc.dir/baselines/hiecc_test.cpp.o"
  "CMakeFiles/test_hiecc.dir/baselines/hiecc_test.cpp.o.d"
  "test_hiecc"
  "test_hiecc.pdb"
  "test_hiecc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hiecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
