# Empty dependencies file for test_hiecc.
# This may be replaced when dependencies are built.
