file(REMOVE_RECURSE
  "CMakeFiles/test_idle_modes.dir/power/idle_modes_test.cpp.o"
  "CMakeFiles/test_idle_modes.dir/power/idle_modes_test.cpp.o.d"
  "test_idle_modes"
  "test_idle_modes.pdb"
  "test_idle_modes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_idle_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
