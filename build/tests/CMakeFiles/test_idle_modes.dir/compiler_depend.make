# Empty compiler generated dependencies file for test_idle_modes.
# This may be replaced when dependencies are built.
