# Empty compiler generated dependencies file for test_line_codec.
# This may be replaced when dependencies are built.
