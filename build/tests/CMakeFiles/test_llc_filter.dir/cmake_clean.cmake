file(REMOVE_RECURSE
  "CMakeFiles/test_llc_filter.dir/cache/llc_filter_test.cpp.o"
  "CMakeFiles/test_llc_filter.dir/cache/llc_filter_test.cpp.o.d"
  "test_llc_filter"
  "test_llc_filter.pdb"
  "test_llc_filter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_llc_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
