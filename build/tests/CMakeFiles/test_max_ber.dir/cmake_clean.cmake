file(REMOVE_RECURSE
  "CMakeFiles/test_max_ber.dir/reliability/max_ber_test.cpp.o"
  "CMakeFiles/test_max_ber.dir/reliability/max_ber_test.cpp.o.d"
  "test_max_ber"
  "test_max_ber.pdb"
  "test_max_ber[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_max_ber.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
