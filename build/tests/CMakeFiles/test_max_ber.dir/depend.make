# Empty dependencies file for test_max_ber.
# This may be replaced when dependencies are built.
