# Empty compiler generated dependencies file for test_mdt.
# This may be replaced when dependencies are built.
