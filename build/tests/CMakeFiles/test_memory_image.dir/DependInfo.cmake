
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mecc/memory_image_test.cpp" "tests/CMakeFiles/test_memory_image.dir/mecc/memory_image_test.cpp.o" "gcc" "tests/CMakeFiles/test_memory_image.dir/mecc/memory_image_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mecc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/mecc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/mecc_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mecc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/memctrl/CMakeFiles/mecc_memctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/mecc_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mecc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/mecc_power.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/mecc_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/mecc/CMakeFiles/mecc_mecc.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/mecc_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/galois/CMakeFiles/mecc_galois.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mecc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
