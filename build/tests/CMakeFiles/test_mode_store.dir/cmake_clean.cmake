file(REMOVE_RECURSE
  "CMakeFiles/test_mode_store.dir/mecc/mode_store_test.cpp.o"
  "CMakeFiles/test_mode_store.dir/mecc/mode_store_test.cpp.o.d"
  "test_mode_store"
  "test_mode_store.pdb"
  "test_mode_store[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mode_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
