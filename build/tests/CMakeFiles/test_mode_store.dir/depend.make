# Empty dependencies file for test_mode_store.
# This may be replaced when dependencies are built.
