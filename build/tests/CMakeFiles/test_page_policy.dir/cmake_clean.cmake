file(REMOVE_RECURSE
  "CMakeFiles/test_page_policy.dir/memctrl/page_policy_test.cpp.o"
  "CMakeFiles/test_page_policy.dir/memctrl/page_policy_test.cpp.o.d"
  "test_page_policy"
  "test_page_policy.pdb"
  "test_page_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_page_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
