# Empty compiler generated dependencies file for test_page_policy.
# This may be replaced when dependencies are built.
