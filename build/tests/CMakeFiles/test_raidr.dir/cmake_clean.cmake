file(REMOVE_RECURSE
  "CMakeFiles/test_raidr.dir/baselines/raidr_test.cpp.o"
  "CMakeFiles/test_raidr.dir/baselines/raidr_test.cpp.o.d"
  "test_raidr"
  "test_raidr.pdb"
  "test_raidr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raidr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
