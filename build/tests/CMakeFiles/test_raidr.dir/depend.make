# Empty dependencies file for test_raidr.
# This may be replaced when dependencies are built.
