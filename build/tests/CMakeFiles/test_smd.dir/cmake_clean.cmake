file(REMOVE_RECURSE
  "CMakeFiles/test_smd.dir/mecc/smd_test.cpp.o"
  "CMakeFiles/test_smd.dir/mecc/smd_test.cpp.o.d"
  "test_smd"
  "test_smd.pdb"
  "test_smd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
