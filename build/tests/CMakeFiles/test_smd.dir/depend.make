# Empty dependencies file for test_smd.
# This may be replaced when dependencies are built.
