// Demonstrates the LLC module on a raw (pre-cache) access stream: the
// 1 MB Table II cache filters CPU accesses into the post-LLC traffic the
// main simulation replays, producing the miss stream, writebacks, and
// the flush-on-idle-entry behavior (S III-B: caches are flushed before
// the processor is switched off).
#include <cstdio>

#include "cache/llc.h"
#include "common/rng.h"
#include "common/table.h"

int main() {
  using namespace mecc;

  std::printf("LLC as a traffic filter (1 MB, 16-way, 64 B lines)\n");
  std::printf("==================================================\n\n");

  TextTable t({"working set", "accesses", "LLC miss rate", "writebacks",
               "post-LLC MPKI*"});
  // Sweep working-set sizes through the 1 MB cache: a loop blocked under
  // the LLC size produces almost no memory traffic; beyond it, traffic
  // grows toward the raw access rate. (*assuming 10 accesses per kilo
  // instruction of CPU work.)
  for (const double ws_mb : {0.25, 0.5, 1.0, 2.0, 8.0, 64.0}) {
    cache::Llc llc(1 << 20, 16);
    Rng rng(7);
    const auto lines = static_cast<std::uint64_t>(ws_mb * (1 << 20) / 64);
    std::uint64_t writebacks = 0;
    const std::uint64_t kAccesses = 400'000;
    for (std::uint64_t i = 0; i < kAccesses; ++i) {
      // 70/30 read/write mix with some spatial locality.
      const bool is_write = rng.chance(0.3);
      const Address addr = rng.chance(0.5)
                               ? (i % lines) * 64           // streaming
                               : rng.next_below(lines) * 64; // random
      if (llc.access(addr, is_write).writeback) ++writebacks;
    }
    t.add_row({TextTable::num(ws_mb, 2) + " MB", std::to_string(kAccesses),
               TextTable::pct(llc.miss_rate(), 1).substr(1),
               std::to_string(writebacks),
               TextTable::num(llc.miss_rate() * 10.0, 2)});
  }
  std::printf("%s", t.render().c_str());

  // Idle entry: flush the dirty contents (these become memory writes that
  // MECC re-encodes with strong ECC before self-refresh).
  cache::Llc llc(1 << 20, 16);
  Rng rng(8);
  for (int i = 0; i < 50000; ++i) {
    (void)llc.access(rng.next_below(16384) * 64, rng.chance(0.3));
  }
  const auto dirty = llc.flush();
  std::printf("\nIdle entry: cache flush wrote back %zu dirty lines"
              " (%.0f KB) before self-refresh.\n",
              dirty.size(), static_cast<double>(dirty.size()) * 64 / 1024);
  return 0;
}
