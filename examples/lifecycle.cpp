// The Fig. 4 lifecycle, live: one app used in bursts on a single System.
//
//   wake -> active burst (demand ECC-Downgrade) -> idle entry
//   (MDT-guided ECC-Upgrade, 1 s self-refresh) -> wake -> ...
//
// Shows the per-burst IPC (the first accesses after every wake pay the
// one-time ECC-6 decode), the upgrade walk on every idle entry, and the
// idle-power saving versus a baseline system doing the same pattern.
#include <cstdio>

#include "sim/experiment.h"
#include "sim/system.h"

int main() {
  using namespace mecc;
  using namespace mecc::sim;

  const auto& app = trace::benchmark("sphinx3");
  const InstCount kBurst = 2'000'000;
  const double kIdleSeconds = 60.0;
  const int kCycles = 4;

  SystemConfig mecc_cfg;
  mecc_cfg.policy = EccPolicy::kMecc;
  mecc_cfg.instructions = kBurst;
  SystemConfig base_cfg = mecc_cfg;
  base_cfg.policy = EccPolicy::kNoEcc;

  System mecc(app, mecc_cfg);
  System base(app, base_cfg);

  std::printf("sphinx3 in %d bursts of %llu instructions, %g s idle "
              "between (MECC vs no-ECC baseline)\n\n",
              kCycles, static_cast<unsigned long long>(kBurst),
              kIdleSeconds);
  std::printf("%-7s %10s %10s %12s %14s %12s %14s\n", "burst", "base IPC",
              "MECC IPC", "norm IPC", "ECC-6 decodes", "upgrade ms",
              "idle mJ saved");

  double total_idle_saved = 0.0;
  for (int i = 0; i < kCycles; ++i) {
    const RunResult rb = base.run_period(kBurst);
    const RunResult rm = mecc.run_period(kBurst);
    const IdleReport ib = base.idle_period(kIdleSeconds);
    const IdleReport im = mecc.idle_period(kIdleSeconds);
    const double saved = ib.idle_energy_mj - im.idle_energy_mj;
    total_idle_saved += saved;
    std::printf("%-7d %10.3f %10.3f %12.3f %14llu %12.1f %14.1f\n", i + 1,
                rb.ipc, rm.ipc, rm.ipc / rb.ipc,
                static_cast<unsigned long long>(rm.strong_decodes),
                im.upgrade_seconds * 1e3, saved);
  }

  std::printf("\nEvery wake repeats the pattern: a burst of ECC-6 decodes"
              " while the working set downgrades, then SECDED-speed"
              " operation.\n");
  std::printf("Idle energy saved over the session: %.0f mJ (the paper's"
              " ~43%% idle-power reduction, every idle period).\n",
              total_idle_saved);
  return 0;
}
