// mecc_sim: command-line driver for the full simulator.
//
//   mecc_sim_cli --benchmark=libquantum --policy=mecc --instructions=20000000
//   mecc_sim_cli --trace=captured.trc --policy=ecc6 --decode-cycles=45
//   mecc_sim_cli --benchmark=astar --dump-trace=astar.trc --records=100000
//   mecc_sim_cli --list
//
// Flags:
//   --benchmark=NAME      workload profile (default: sphinx3)
//   --trace=FILE          replay a USIMM-style trace file instead
//   --policy=P            baseline | secded | ecc6 | mecc (default: mecc)
//   --instructions=N      active-period length (default: 20M)
//   --decode-cycles=N     strong-ECC decode latency (default: 30)
//   --strong-t=N          strong-ECC correction strength (default: 6)
//   --smd                 enable Selective Memory Downgrade
//   --no-mdt              disable Memory Downgrade Tracking
//   --seed=N              RNG seed
//   --csv=FILE            write the run's metrics to a CSV file
//   --suite               run all 28 benchmarks (pairs well with --csv)
//   --dump-trace=FILE     write the synthetic trace to FILE and exit
//   --records=N           records to dump (default: 100000)
//   --list                list available benchmark profiles and exit
#include <cstdio>
#include <cstring>
#include <string>

#include "common/table.h"
#include "power/power_model.h"
#include "sim/csv.h"
#include "sim/experiment.h"
#include "trace/file_trace.h"

namespace {

using namespace mecc;

[[nodiscard]] std::string flag_value(int argc, char** argv,
                                     const std::string& name,
                                     const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return fallback;
}

[[nodiscard]] bool flag_set(int argc, char** argv, const std::string& name) {
  const std::string want = "--" + name;
  for (int i = 1; i < argc; ++i) {
    if (want == argv[i]) return true;
  }
  return false;
}

void list_benchmarks() {
  TextTable t({"benchmark", "class", "MPKI", "IPC", "footprint MB"});
  for (const auto& b : trace::all_benchmarks()) {
    t.add_row({std::string(b.name), trace::mpki_class_name(b.klass),
               TextTable::num(b.mpki, 1), TextTable::num(b.paper_ipc, 3),
               TextTable::num(b.footprint_mb, 1)});
  }
  t.print("Available benchmark profiles (Table III)");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mecc::sim;

  if (flag_set(argc, argv, "list")) {
    list_benchmarks();
    return 0;
  }
  if (flag_set(argc, argv, "help") || flag_set(argc, argv, "-h")) {
    std::printf("see the header of examples/mecc_sim_cli.cpp for flags\n");
    return 0;
  }

  const std::string bench_name =
      flag_value(argc, argv, "benchmark", "sphinx3");
  const trace::BenchmarkProfile& profile = trace::benchmark(bench_name);

  const std::string dump = flag_value(argc, argv, "dump-trace", "");
  if (!dump.empty()) {
    const auto count = static_cast<std::size_t>(
        std::stoull(flag_value(argc, argv, "records", "100000")));
    trace::GeneratorSource src(
        profile, trace::GeneratorConfig{
                     .seed = std::stoull(flag_value(argc, argv, "seed", "1"))});
    trace::write_trace_file(dump, trace::capture(src, count));
    std::printf("wrote %zu records of %s to %s\n", count,
                profile.name.data(), dump.c_str());
    return 0;
  }

  SystemConfig cfg;
  cfg.instructions =
      std::stoull(flag_value(argc, argv, "instructions", "20000000"));
  cfg.seed = std::stoull(flag_value(argc, argv, "seed", "1"));
  cfg.ecc6_decode_cycles =
      std::stoull(flag_value(argc, argv, "decode-cycles", "30"));
  cfg.strong_ecc_t = std::stoull(flag_value(argc, argv, "strong-t", "6"));
  cfg.mecc_use_smd = flag_set(argc, argv, "smd");
  cfg.mecc_use_mdt = !flag_set(argc, argv, "no-mdt");
  cfg.trace_file = flag_value(argc, argv, "trace", "");

  const std::string policy_s = flag_value(argc, argv, "policy", "mecc");
  EccPolicy policy = EccPolicy::kMecc;
  if (policy_s == "baseline") policy = EccPolicy::kNoEcc;
  else if (policy_s == "secded") policy = EccPolicy::kSecded;
  else if (policy_s == "ecc6") policy = EccPolicy::kEcc6;
  else if (policy_s != "mecc") {
    std::fprintf(stderr, "unknown policy '%s'\n", policy_s.c_str());
    return 1;
  }

  const std::string csv_path = flag_value(argc, argv, "csv", "");
  if (flag_set(argc, argv, "suite")) {
    std::printf("running all 28 benchmarks under %s...\n",
                policy_name(policy).c_str());
    cfg.policy = policy;
    const auto results = run_suite(policy, cfg);
    TextTable t({"benchmark", "IPC", "MPKI", "power mW"});
    for (const auto& res : results) {
      t.add_row({res.benchmark, TextTable::num(res.ipc),
                 TextTable::num(res.measured_mpki, 1),
                 TextTable::num(res.avg_power_mw, 1)});
    }
    t.print("Suite results");
    if (!csv_path.empty()) {
      write_results_csv(csv_path, results);
      std::printf("wrote %zu rows to %s\n", results.size(),
                  csv_path.c_str());
    }
    return 0;
  }

  std::printf("simulating %s under %s (%llu instructions)...\n",
              cfg.trace_file.empty() ? profile.name.data()
                                     : cfg.trace_file.c_str(),
              policy_name(policy).c_str(),
              static_cast<unsigned long long>(cfg.instructions));
  const RunResult r = run_benchmark(profile, policy, cfg);

  TextTable t({"metric", "value"});
  t.add_row({"IPC", TextTable::num(r.ipc)});
  t.add_row({"cycles", std::to_string(r.cpu_cycles)});
  t.add_row({"simulated seconds", TextTable::num(r.seconds, 4)});
  t.add_row({"MPKI", TextTable::num(r.measured_mpki, 2)});
  t.add_row({"memory reads / writes",
             std::to_string(r.reads) + " / " + std::to_string(r.writes)});
  t.add_row({"row hits / misses / conflicts",
             std::to_string(r.stats.counter("memctrl.row_hits")) + " / " +
                 std::to_string(r.stats.counter("memctrl.row_misses")) +
                 " / " +
                 std::to_string(r.stats.counter("memctrl.row_conflicts"))});
  t.add_row({"power-down entries",
             std::to_string(r.stats.counter("memctrl.pd_entries"))});
  t.add_row({"avg memory power", TextTable::num(r.avg_power_mw, 2) + " mW"});
  t.add_row({"memory energy", TextTable::num(r.energy.total_mj(), 3) + " mJ"});
  t.add_row({"EDP", TextTable::num(r.edp_mj_s, 5) + " mJ*s"});
  if (policy == EccPolicy::kMecc) {
    t.add_row({"strong (ECC-6) decodes", std::to_string(r.strong_decodes)});
    t.add_row({"weak (SECDED) decodes", std::to_string(r.weak_decodes)});
    t.add_row({"ECC-Downgrades", std::to_string(r.downgrades)});
    t.add_row({"MDT regions / tracked MB",
               std::to_string(r.mdt_marked_regions) + " / " +
                   TextTable::num(
                       static_cast<double>(r.mdt_tracked_bytes) / (1 << 20),
                       1)});
    if (cfg.mecc_use_smd) {
      t.add_row({"time downgrade disabled",
                 TextTable::pct(r.frac_downgrade_disabled, 1).substr(1)});
    }
  }
  t.print("Run report");

  if (!csv_path.empty()) {
    write_results_csv(csv_path, {r});
    std::printf("wrote metrics to %s\n", csv_path.c_str());
  }

  const mecc::power::PowerModel pm;
  std::printf("\nidle-mode power if this device now sleeps: %.2f mW"
              " (baseline 64 ms: %.2f mW)\n",
              pm.idle_power(policy == EccPolicy::kNoEcc ||
                                    policy == EccPolicy::kSecded
                                ? 0.064
                                : 1.0)
                  .total_mw(),
              pm.idle_power(0.064).total_mw());
  return 0;
}
