// Quickstart: the three layers of the library in ~80 lines.
//
//  1. Bit-level: encode a 64 B line with Morphable ECC's spare-bit
//     layout, corrupt it, and decode it back.
//  2. Analytics: how strong must ECC be to refresh every 1 s?
//  3. Full system: simulate one benchmark under MECC and compare
//     against the no-ECC baseline.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart
#include <cstdio>

#include "mecc/line_codec.h"
#include "reliability/failure_analysis.h"
#include "reliability/fault_injection.h"
#include "reliability/retention_model.h"
#include "sim/experiment.h"

int main() {
  using namespace mecc;

  // ---- 1. Bit-level: store a line strong, flip 6 bits, recover it ----
  std::printf("== 1. Morphable line codec ==\n");
  morph::LineCodec codec;
  Rng rng(1);
  BitVec data(512);
  for (std::size_t i = 0; i < 512; ++i) data.set(i, rng.chance(0.5));

  BitVec stored = codec.store(data, morph::LineMode::kStrong);
  std::printf("stored 64B line + %zu spare bits (4 mode + 60 BCH)\n",
              morph::kSpareBits);
  reliability::FaultInjector injector(2);
  injector.inject_exact(stored, 6);  // a full ECC-6 load of errors
  const morph::LineDecodeResult r = codec.load(stored);
  std::printf("injected 6 errors -> decoded ok=%d, corrected=%zu, "
              "data intact=%d\n",
              r.ok, r.corrected_bits, r.data == data);

  // ---- 2. Analytics: why ECC-6 for a 1 s refresh period ----
  std::printf("\n== 2. Refresh-rate reliability analytics ==\n");
  const reliability::RetentionModel retention;
  const double ber = retention.bit_failure_probability(1.0);
  std::printf("raw bit error rate at 1 s refresh: %.2e\n", ber);
  const std::size_t t = reliability::required_ecc_strength(
      reliability::kTable1LineBits, reliability::kTable1NumLines, ber, 1e-6);
  std::printf("ECC strength for <1e-6 system failures: ECC-%zu "
              "(+1 margin -> ECC-6)\n",
              t);

  // ---- 3. Full system: MECC vs baseline on one workload ----
  std::printf("\n== 3. Full-system simulation (libquantum, 4M instr) ==\n");
  sim::SystemConfig cfg;
  cfg.instructions = 4'000'000;
  const auto& bench = trace::benchmark("libquantum");
  const sim::RunResult base =
      sim::run_benchmark(bench, sim::EccPolicy::kNoEcc, cfg);
  const sim::RunResult ecc6 =
      sim::run_benchmark(bench, sim::EccPolicy::kEcc6, cfg);
  const sim::RunResult mecc =
      sim::run_benchmark(bench, sim::EccPolicy::kMecc, cfg);
  std::printf("IPC: baseline %.3f | always-ECC-6 %.3f (%.1f%% slower) | "
              "MECC %.3f (%.1f%% slower)\n",
              base.ipc, ecc6.ipc, (1.0 - ecc6.ipc / base.ipc) * 100.0,
              mecc.ipc, (1.0 - mecc.ipc / base.ipc) * 100.0);
  std::printf("(short demo slice; MECC's one-time downgrade cost shrinks "
              "further over longer runs - see bench_fig13)\n");
  std::printf("MECC downgraded %llu lines; MDT tracked %.1f MB\n",
              static_cast<unsigned long long>(mecc.downgrades),
              static_cast<double>(mecc.mdt_tracked_bytes) / (1 << 20));

  const power::PowerModel pm;
  std::printf("idle power: %.2f mW @64ms -> %.2f mW @1s (MECC idle mode)\n",
              pm.idle_power(0.064).total_mw(), pm.idle_power(1.0).total_mw());
  return 0;
}
