// Refresh-rate explorer: for a range of refresh periods, derive the raw
// bit error rate from the retention model, compute the analytic system
// failure probability at each ECC strength, and *verify with live fault
// injection through the real codecs* that the chosen strength actually
// survives the predicted error rate.
//
// This is the tool a memory-system designer would use to pick the
// (refresh period, ECC strength) operating point; the paper's choice -
// ECC-6 at 1 s - falls out of it.
#include <cstdio>

#include "common/table.h"
#include "ecc/bch.h"
#include "ecc/secded.h"
#include "reliability/failure_analysis.h"
#include "reliability/fault_injection.h"
#include "reliability/retention_model.h"

int main() {
  using namespace mecc;
  using namespace mecc::reliability;

  const RetentionModel retention;
  std::printf("Refresh period vs required ECC strength (1 GB memory, "
              "target < 1e-6 system failures)\n\n");

  TextTable t({"refresh period", "raw BER", "required ECC",
               "refresh power vs 64ms"});
  for (double period : {0.064, 0.128, 0.256, 0.512, 1.0, 2.0}) {
    const double ber = retention.bit_failure_probability(period);
    const std::size_t need =
        required_ecc_strength(kTable1LineBits, kTable1NumLines, ber, 1e-6);
    t.add_row({TextTable::num(period, 3) + " s", TextTable::sci(ber),
               "ECC-" + std::to_string(need),
               TextTable::num(0.064 / period, 3) + "x"});
  }
  std::printf("%s", t.render().c_str());
  std::printf("\nThe paper's operating point: 1 s -> ECC-5 + 1 soft-error"
              " margin = ECC-6.\n\n");

  // Live validation: push each codec through its predicted regime.
  std::printf("Live fault injection through the real codecs\n");
  std::printf("--------------------------------------------\n");
  struct Probe {
    const char* what;
    const ecc::Code* code;
    double ber;
    std::size_t trials;
  };
  const ecc::Secded secded(512);
  const ecc::Bch ecc2(10, 2, 512);
  const ecc::Bch ecc6(10, 6, 512);
  const double ber_1s = retention.bit_failure_probability(1.0);

  TextTable v({"codec", "BER", "trials", "lines lost", "verdict"});
  for (const Probe p : {
           Probe{"SECDED @ 64ms-BER", &secded, 1e-9, 20000},
           Probe{"SECDED @ 1s-BER", &secded, ber_1s, 20000},
           Probe{"BCH t=2 @ 1s-BER", &ecc2, ber_1s, 20000},
           Probe{"BCH t=6 @ 1s-BER", &ecc6, ber_1s, 20000},
           Probe{"BCH t=6 @ 30x 1s-BER", &ecc6, 30 * ber_1s, 5000},
       }) {
    const auto r = measure_line_failures(*p.code, p.ber, p.trials, 99);
    // SECDED at the 1 s BER loses lines at ~1.6e-4 (Table I) - visible in
    // 20 k trials; ECC-6 must stay clean.
    v.add_row({p.what, TextTable::sci(p.ber), std::to_string(p.trials),
               std::to_string(r.failures),
               r.failures == 0 ? "SAFE" : "DATA LOSS"});
  }
  std::printf("%s", v.render().c_str());
  std::printf("\nSECDED alone cannot hold a 1 s refresh period; ECC-6 can"
              " - exactly the paper's motivation for morphing.\n");
  return 0;
}
