// A day in the life of a smartphone's memory system (the paper's Fig. 1
// usage pattern, end to end).
//
// Simulates a sequence of short active bursts (different apps) separated
// by long idle periods, with the full MECC lifecycle at each boundary:
// wake -> demand ECC-Downgrade during the burst -> idle entry with
// MDT-guided ECC-Upgrade -> 1 s self-refresh. Reports where the energy
// goes for Baseline vs MECC.
#include <cstdio>
#include <string>
#include <vector>

#include "mecc/engine.h"
#include "power/power_model.h"
#include "sim/experiment.h"

int main() {
  using namespace mecc;
  using namespace mecc::sim;

  std::printf("A day with the phone: 6 app bursts, 95%% idle overall\n");
  std::printf("======================================================\n\n");

  // The bursts: app-like workloads from the suite.
  const std::vector<std::pair<std::string, double>> sessions = {
      {"h264ref", 180.0},    // video call, 3 min
      {"astar", 120.0},      // navigation, 2 min
      {"bzip2", 60.0},       // app install, 1 min
      {"sphinx3", 90.0},     // voice assistant
      {"povray", 150.0},     // gaming-ish rendering
      {"xalancbmk", 120.0},  // web browsing
  };

  SystemConfig cfg;
  cfg.instructions = 2'000'000;

  const power::PowerModel pm;
  const double idle_base_mw = pm.idle_power(0.064).total_mw();
  const double idle_mecc_mw = pm.idle_power(1.0).total_mw();

  // MECC engine persists across the day: MDT state carries from burst to
  // idle transition.
  morph::EngineConfig ec;
  morph::Engine engine(ec);

  double active_seconds = 0.0;
  double base_active_mj = 0.0;
  double mecc_active_mj = 0.0;
  double upgrade_total_ms = 0.0;

  std::printf("%-12s %8s %10s %12s %14s %12s\n", "burst", "secs",
              "base mW", "MECC mW", "downgrades", "upgrade ms");
  for (const auto& [name, seconds] : sessions) {
    const auto& b = trace::benchmark(name);
    const RunResult base = run_benchmark(b, EccPolicy::kNoEcc, cfg);
    const RunResult mecc = run_benchmark(b, EccPolicy::kMecc, cfg);

    // Scale the measured slice power to the burst duration.
    base_active_mj += base.avg_power_mw * seconds;
    mecc_active_mj += mecc.avg_power_mw * seconds;
    active_seconds += seconds;

    // Mirror the burst's downgrades into the persistent engine, then take
    // the idle transition: MDT-guided ECC-Upgrade.
    engine.wake(0);
    for (std::uint64_t i = 0; i < mecc.mdt_marked_regions; ++i) {
      (void)engine.on_read(i << 20);  // one line per touched 1 MB region
    }
    const morph::UpgradeReport up = engine.enter_idle();
    upgrade_total_ms += up.upgrade_seconds * 1e3;

    std::printf("%-12s %8.0f %10.1f %12.1f %14llu %12.1f\n", name.c_str(),
                seconds, base.avg_power_mw, mecc.avg_power_mw,
                static_cast<unsigned long long>(mecc.downgrades),
                up.upgrade_seconds * 1e3);
  }

  // 95% idle: idle time = 19x active time (paper S V-D).
  const double idle_seconds = active_seconds * 19.0;
  const double base_idle_mj = idle_base_mw * idle_seconds;
  const double mecc_idle_mj = idle_mecc_mw * idle_seconds;

  std::printf("\nTotals over %.0f s active + %.0f s idle:\n", active_seconds,
              idle_seconds);
  std::printf("  Baseline: %8.0f mJ active + %8.0f mJ idle = %8.0f mJ\n",
              base_active_mj, base_idle_mj, base_active_mj + base_idle_mj);
  std::printf("  MECC    : %8.0f mJ active + %8.0f mJ idle = %8.0f mJ\n",
              mecc_active_mj, mecc_idle_mj, mecc_active_mj + mecc_idle_mj);
  const double saving = 1.0 - (mecc_active_mj + mecc_idle_mj) /
                                  (base_active_mj + base_idle_mj);
  std::printf("  Memory energy saved by MECC: %.1f%% (paper: ~15%%)\n",
              saving * 100.0);
  std::printf("  Total ECC-Upgrade time across 6 idle entries: %.0f ms"
              " (invisible in minutes-long idle periods)\n",
              upgrade_total_ms);
  return 0;
}
