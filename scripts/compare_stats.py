#!/usr/bin/env python3
"""Diff two --out=FILE.json bench emissions with tolerances.

Usage:
    scripts/compare_stats.py REF.json NEW.json [--rtol=1e-9] [--atol=1e-12]

Comparison rules (docs/STATS.md):
  * schema_version must match exactly (exit 2 on mismatch: the files are
    not comparable, not merely different).
  * The structure must match: same bench name, same suite tags in the
    same order, same benchmarks per suite, same stat/scalar keys.
  * Integer fields (counters, instructions, cycles, distribution counts)
    compare exactly.
  * Floating-point fields (gauges, scalars, IPC, energies, distribution
    sum/min/max) compare with |a - b| <= atol + rtol * max(|a|, |b|);
    null (serialized non-finite) only equals null.

Exit codes: 0 = match, 1 = differences found, 2 = usage/schema error.
"""

import json
import sys

EXACT_RUN_FIELDS = (
    "benchmark",
    "instructions",
    "cpu_cycles",
    "mem_cycles",
    "reads",
    "writes",
    "downgrades",
    "strong_decodes",
    "weak_decodes",
    "mdt_tracked_bytes",
    "mdt_marked_regions",
)


class Comparator:
    def __init__(self, rtol, atol):
        self.rtol = rtol
        self.atol = atol
        self.diffs = []

    def diff(self, path, ref, new):
        self.diffs.append(f"{path}: ref={ref!r} new={new!r}")

    def close(self, a, b):
        return abs(a - b) <= self.atol + self.rtol * max(abs(a), abs(b))

    def num(self, path, ref, new):
        """Tolerant float comparison; None (JSON null) only equals None."""
        if ref is None or new is None:
            if ref is not new:
                self.diff(path, ref, new)
            return
        if not self.close(float(ref), float(new)):
            self.diff(path, ref, new)

    def exact(self, path, ref, new):
        if ref != new:
            self.diff(path, ref, new)

    def mapping(self, path, ref, new, cmp):
        if sorted(ref) != sorted(new):
            self.diff(f"{path} keys", sorted(ref), sorted(new))
            return
        for key in ref:
            cmp(f"{path}.{key}", ref[key], new[key])

    def dist(self, path, ref, new):
        self.exact(f"{path}.count", ref.get("count"), new.get("count"))
        for field in ("sum", "min", "max"):
            self.num(f"{path}.{field}", ref.get(field), new.get(field))

    def stats(self, path, ref, new):
        self.mapping(f"{path}.counters", ref.get("counters", {}),
                     new.get("counters", {}), self.exact)
        self.mapping(f"{path}.gauges", ref.get("gauges", {}),
                     new.get("gauges", {}), self.num)
        self.mapping(f"{path}.dists", ref.get("dists", {}),
                     new.get("dists", {}), self.dist)

    def run(self, path, ref, new):
        for field in EXACT_RUN_FIELDS:
            if field in ref or field in new:
                self.exact(f"{path}.{field}", ref.get(field), new.get(field))
        for field, value in ref.items():
            if field in EXACT_RUN_FIELDS or field not in new:
                continue
            p = f"{path}.{field}"
            if field == "stats":
                self.stats(p, value, new[field])
            elif field == "energy":
                self.mapping(p, value, new[field], self.num)
            elif field == "checkpoints":
                if len(value) != len(new[field]):
                    self.diff(f"{p} length", len(value), len(new[field]))
                else:
                    for i, (r, n) in enumerate(zip(value, new[field])):
                        self.mapping(f"{p}[{i}]", r, n, self.num)
            elif isinstance(value, (int, float)) or value is None:
                self.num(p, value, new[field])
            else:
                self.exact(p, value, new[field])
        missing = sorted(set(ref) ^ set(new))
        if missing:
            self.diff(f"{path} fields", sorted(ref), sorted(new))

    def report(self, ref, new):
        self.exact("bench", ref.get("bench"), new.get("bench"))
        self.mapping("options", ref.get("options", {}),
                     new.get("options", {}), self.exact)
        self.mapping("scalars", ref.get("scalars", {}),
                     new.get("scalars", {}), self.num)
        ref_suites = ref.get("suites", [])
        new_suites = new.get("suites", [])
        ref_tags = [s.get("tag") for s in ref_suites]
        new_tags = [s.get("tag") for s in new_suites]
        if ref_tags != new_tags:
            self.diff("suite tags", ref_tags, new_tags)
            return
        for rs, ns in zip(ref_suites, new_suites):
            tag = rs.get("tag", "?")
            rruns, nruns = rs.get("runs", []), ns.get("runs", [])
            if len(rruns) != len(nruns):
                self.diff(f"suites[{tag}] run count", len(rruns), len(nruns))
                continue
            for i, (rr, nr) in enumerate(zip(rruns, nruns)):
                name = rr.get("benchmark", str(i))
                self.run(f"suites[{tag}].runs[{name}]", rr, nr)


def main(argv):
    rtol, atol = 1e-9, 1e-12
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--rtol="):
            rtol = float(arg.split("=", 1)[1])
        elif arg.startswith("--atol="):
            atol = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    docs = []
    for path in paths:
        try:
            with open(path, encoding="utf-8") as f:
                docs.append(json.load(f))
        except (OSError, json.JSONDecodeError) as e:
            print(f"compare_stats: cannot read {path}: {e}", file=sys.stderr)
            return 2
    ref, new = docs

    ref_ver = ref.get("schema_version")
    new_ver = new.get("schema_version")
    if ref_ver is None or ref_ver != new_ver:
        print(f"compare_stats: schema_version mismatch: "
              f"{ref_ver} vs {new_ver}", file=sys.stderr)
        return 2

    cmp = Comparator(rtol, atol)
    cmp.report(ref, new)
    if cmp.diffs:
        print(f"compare_stats: {len(cmp.diffs)} difference(s) between "
              f"{paths[0]} and {paths[1]}:")
        for d in cmp.diffs[:50]:
            print(f"  {d}")
        if len(cmp.diffs) > 50:
            print(f"  ... and {len(cmp.diffs) - 50} more")
        return 1
    print(f"compare_stats: {paths[0]} and {paths[1]} match "
          f"(rtol={rtol}, atol={atol})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
