#!/usr/bin/env python3
"""Terminal viewer / validator for the mecc-telemetry-v1 fleet feed.

The fleet orchestrator (`bench_fleet_campaign --telemetry-out=FILE.jsonl`)
appends one compact-JSON snapshot per publish. This tool either renders
the feed like `top` (default: print the latest snapshot; --follow tails
the file and redraws) or checks feed integrity (--validate).

Validation rules (docs/OBSERVABILITY.md):
  * every line is valid JSON with schema == "mecc-telemetry-v1" and the
    full required key set;
  * t_s is nondecreasing WITHIN a segment. A t_s decrease marks a resume
    boundary (the orchestrator was killed and restarted; the hub's clock
    and monotone device clamp restart with it) — monotonicity checks
    restart there;
  * devices_done is nondecreasing within a segment and never exceeds
    devices_total; coverage stays in [0, 1];
  * with --expect-final, the last line must have final == true (the
    campaign completed and published its closing snapshot).

Exit status: 0 clean, 1 validation failure, 2 usage/IO error.
"""

import argparse
import json
import sys
import time

SCHEMA = "mecc-telemetry-v1"

REQUIRED_KEYS = [
    "schema",
    "t_s",
    "devices_total",
    "devices_done",
    "shards_total",
    "shards_done",
    "shards_degraded",
    "shards_running",
    "shards_pending",
    "coverage",
    "throughput_devices_per_s",
    "eta_s",
    "due_events",
    "ce_events",
    "energy_mj_per_day_sum",
    "sample_count",
    "due_per_year_p50",
    "due_per_year_p99",
    "due_per_year_p999",
    "energy_mj_per_day_p50",
    "energy_mj_per_day_p99",
    "retries",
    "workers_crashed",
    "final",
]


def parse_line(line, lineno):
    """Returns (snapshot, error): one of the two is None."""
    try:
        snap = json.loads(line)
    except json.JSONDecodeError as e:
        return None, "line %d: not valid JSON (%s)" % (lineno, e)
    if not isinstance(snap, dict):
        return None, "line %d: not a JSON object" % lineno
    if snap.get("schema") != SCHEMA:
        return None, "line %d: schema %r != %r" % (
            lineno, snap.get("schema"), SCHEMA)
    missing = [k for k in REQUIRED_KEYS if k not in snap]
    if missing:
        return None, "line %d: missing keys %s" % (lineno, ", ".join(missing))
    return snap, None


def validate(path, expect_final):
    failures = []
    snaps = []
    segments = 1
    prev = None
    with open(path, "r", encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            raw = raw.rstrip("\n")
            if not raw:
                failures.append("line %d: empty line" % lineno)
                continue
            snap, err = parse_line(raw, lineno)
            if err:
                failures.append(err)
                continue
            if snap["coverage"] < 0.0 or snap["coverage"] > 1.0:
                failures.append("line %d: coverage %r outside [0, 1]"
                                % (lineno, snap["coverage"]))
            if snap["devices_done"] > snap["devices_total"]:
                failures.append(
                    "line %d: devices_done %d > devices_total %d"
                    % (lineno, snap["devices_done"], snap["devices_total"]))
            if prev is not None:
                if snap["t_s"] < prev["t_s"]:
                    # Resume boundary: the orchestrator restarted, its
                    # hub clock and monotone clamp restarted with it.
                    segments += 1
                elif snap["devices_done"] < prev["devices_done"]:
                    failures.append(
                        "line %d: devices_done stepped back %d -> %d "
                        "within a segment (t_s %g -> %g)"
                        % (lineno, prev["devices_done"], snap["devices_done"],
                           prev["t_s"], snap["t_s"]))
            prev = snap
            snaps.append(snap)
    if not snaps:
        failures.append("feed is empty")
    if expect_final and snaps and not snaps[-1]["final"]:
        failures.append("last line has final == false but the campaign "
                        "was expected to have completed")
    return snaps, segments, failures


def fmt_duration(seconds):
    if seconds < 0:
        return "?"
    seconds = int(seconds)
    if seconds >= 3600:
        return "%dh%02dm" % (seconds // 3600, (seconds % 3600) // 60)
    if seconds >= 60:
        return "%dm%02ds" % (seconds // 60, seconds % 60)
    return "%ds" % seconds


def render(snap):
    total = max(snap["devices_total"], 1)
    frac = snap["devices_done"] / total
    bar_w = 32
    bar = "#" * int(frac * bar_w + 0.5)
    bar = bar.ljust(bar_w, ".")
    lines = [
        "mecc fleet  [%s] %5.1f%%  %d/%d devices%s" % (
            bar, 100.0 * frac, snap["devices_done"], snap["devices_total"],
            "  (final)" if snap["final"] else ""),
        "  shards   : %d/%d done, %d running, %d pending, %d degraded" % (
            snap["shards_done"], snap["shards_total"], snap["shards_running"],
            snap["shards_pending"], snap["shards_degraded"]),
        "  rate     : %.0f devices/s | eta %s | elapsed %s" % (
            snap["throughput_devices_per_s"], fmt_duration(snap["eta_s"]),
            fmt_duration(snap["t_s"])),
        "  health   : %d retries, %d workers crashed" % (
            snap["retries"], snap["workers_crashed"]),
        "  errors   : %d DUE, %d CE | DUE/yr p50 %.3g p99 %.3g p99.9 %.3g" % (
            snap["due_events"], snap["ce_events"], snap["due_per_year_p50"],
            snap["due_per_year_p99"], snap["due_per_year_p999"]),
        "  energy   : mJ/day p50 %.4g p99 %.4g (%d devices sampled)" % (
            snap["energy_mj_per_day_p50"], snap["energy_mj_per_day_p99"],
            snap["sample_count"]),
    ]
    return "\n".join(lines)


def tail_lines(path, state):
    """Yields complete new lines since the last call; state is a dict
    carrying the byte offset and the partial-line buffer."""
    try:
        with open(path, "rb") as f:
            f.seek(state["offset"])
            chunk = f.read()
    except OSError:
        return []
    state["offset"] += len(chunk)
    state["buf"] += chunk
    lines = []
    while True:
        nl = state["buf"].find(b"\n")
        if nl < 0:
            break
        lines.append(state["buf"][:nl].decode("utf-8", "replace"))
        state["buf"] = state["buf"][nl + 1:]
    return lines


def main():
    ap = argparse.ArgumentParser(
        description="viewer/validator for the mecc-telemetry-v1 fleet feed")
    ap.add_argument("feed", help="telemetry JSONL feed file (--telemetry-out)")
    ap.add_argument("--validate", action="store_true",
                    help="check feed integrity instead of rendering")
    ap.add_argument("--expect-final", action="store_true",
                    help="with --validate: require the last snapshot to "
                         "carry final == true")
    ap.add_argument("--follow", action="store_true",
                    help="keep tailing the feed and redraw on new snapshots "
                         "(stops once a final snapshot arrives)")
    ap.add_argument("--interval", type=float, default=0.2,
                    help="poll interval for --follow (seconds)")
    args = ap.parse_args()

    if args.validate:
        try:
            snaps, segments, failures = validate(args.feed, args.expect_final)
        except OSError as e:
            print("error: %s" % e, file=sys.stderr)
            return 2
        for f in failures:
            print("validate: FAIL: %s" % f, file=sys.stderr)
        if failures:
            return 1
        print("validate: ok: %d snapshots, %d segment%s, final=%s" % (
            len(snaps), segments, "s" if segments != 1 else "",
            str(snaps[-1]["final"]).lower()))
        return 0

    state = {"offset": 0, "buf": b""}
    last = None
    rendered_lines = 0
    while True:
        for raw in tail_lines(args.feed, state):
            snap, err = parse_line(raw, 0)
            if snap is not None:
                last = snap
        if last is not None:
            out = render(last)
            if args.follow and sys.stdout.isatty() and rendered_lines:
                sys.stdout.write("\x1b[%dF\x1b[J" % rendered_lines)
            sys.stdout.write(out + "\n")
            sys.stdout.flush()
            rendered_lines = out.count("\n") + 1
        if not args.follow or (last is not None and last["final"]):
            break
        time.sleep(args.interval)
    if last is None:
        print("error: no snapshots in %s" % args.feed, file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
