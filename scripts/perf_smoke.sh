#!/usr/bin/env bash
# Fast-forward performance smoke (docs/PERFORMANCE.md): runs the small
# 28-benchmark sweep with --fast-forward=on and =off at --jobs=1, takes
# the best of N repeats of each, and writes a merged report with the
# wall_mips speedup ratio. The committed snapshot lives at BENCH_perf.json
# (regenerate with: scripts/perf_smoke.sh --out=BENCH_perf.json).
#
# Numbers are host-dependent observability, never a correctness gate:
# tier1.sh runs this non-gating (`|| true`) and ignores the ratio.
#
#   scripts/perf_smoke.sh [--out=FILE] [--instructions=N] [--repeats=N]
set -euo pipefail

cd "$(dirname "$0")/.."

out="build/BENCH_perf.json"
instructions=2000000
repeats=3
for arg in "$@"; do
  case "$arg" in
    --out=*) out="${arg#--out=}" ;;
    --instructions=*) instructions="${arg#--instructions=}" ;;
    --repeats=*) repeats="${arg#--repeats=}" ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

bench="build/bench/bench_table3_workloads"
if [[ ! -x "$bench" ]]; then
  echo "perf_smoke: $bench not built (run cmake --build build first)" >&2
  exit 1
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

for mode in on off; do
  for ((i = 0; i < repeats; ++i)); do
    "$bench" --instructions="$instructions" --seed=1 --jobs=1 \
      --fast-forward="$mode" --out="$tmpdir/out_${mode}_${i}.json" \
      --perf-out="$tmpdir/perf_${mode}_${i}.json" > /dev/null 2>&1
  done
done

# Self-profiler leg (docs/OBSERVABILITY.md): interleaved
# unprofiled/profiled PAIRS of the ff=on sweep. The overhead estimate
# is the median of per-pair wall ratios — on a host with several
# percent run-to-run noise, back-to-back pairing cancels slow drift and
# the median kills outliers, where "one profiled run vs the unprofiled
# best" folds that noise in as pure upward bias. Host-dependent and
# non-gating like the rest of this file. What IS gated here is
# byte-identity: profiling must not perturb --out.
for ((i = 0; i < repeats; ++i)); do
  "$bench" --instructions="$instructions" --seed=1 --jobs=1 \
    --fast-forward=on --out="$tmpdir/out_pair_${i}.json" \
    --perf-out="$tmpdir/perf_pair_${i}.json" > /dev/null 2>&1
  "$bench" --instructions="$instructions" --seed=1 --jobs=1 \
    --fast-forward=on --profile="$tmpdir/profile_${i}.json" \
    --out="$tmpdir/out_prof_${i}.json" \
    --perf-out="$tmpdir/perf_prof_${i}.json" > /dev/null 2>&1
  if ! cmp -s "$tmpdir/out_on_0.json" "$tmpdir/out_prof_${i}.json"; then
    echo "perf_smoke: --profile perturbed the simulated output" >&2
    exit 1
  fi
done

# Channel-scaling leg (docs/SCALING.md): the per-channel fast-forward
# speedup at 2/4/8 channels. The PR gate is >= 3x at 4 channels; like
# the single-channel numbers above, the recorded values are
# host-dependent observability.
for ch in 2 4 8; do
  for mode in on off; do
    for ((i = 0; i < repeats; ++i)); do
      "$bench" --instructions="$instructions" --seed=1 --jobs=1 \
        --channels="$ch" --ranks=2 --fast-forward="$mode" \
        --out="$tmpdir/out_ch${ch}_${mode}_${i}.json" \
        --perf-out="$tmpdir/perf_ch${ch}_${mode}_${i}.json" \
        > /dev/null 2>&1
    done
  done
  # ff on/off must agree on every simulated byte at every geometry.
  if ! cmp -s "$tmpdir/out_ch${ch}_on_0.json" \
       "$tmpdir/out_ch${ch}_off_0.json"; then
    echo "perf_smoke: fast-forward on/off outputs differ at ${ch}ch" >&2
    exit 1
  fi
done

# Codec throughput leg (docs/PERFORMANCE.md): lines/sec of the
# word-parallel ECC codecs vs the retained scalar references. Like the
# wall-clock sweep above, purely observational — the numbers land in the
# report, the differential *correctness* gate is test_codec_equivalence.
codec_bench="build/bench/bench_ecc_codec"
codec_json="$tmpdir/codec_throughput.json"
if [[ -x "$codec_bench" ]]; then
  "$codec_bench" --throughput --seed=1 --perf-out="$codec_json" > /dev/null
else
  echo "perf_smoke: $codec_bench not built; skipping codec leg" >&2
  codec_json=""
fi

# Refresh-scheduling leg (docs/SCHEDULING.md): the per-bank / DARP /
# SARP sweep's latency scalars. Deterministic w.r.t. --jobs, so run
# parallel; observational like the rest of this report (the correctness
# gate is the pinned-reference diff in tier1.sh).
refresh_bench="build/bench/bench_refresh_parallelism"
refresh_json="$tmpdir/refresh_parallelism.json"
if [[ -x "$refresh_bench" ]]; then
  "$refresh_bench" --instructions="$instructions" --seed=1 --jobs=4 \
    --out="$refresh_json" > /dev/null
else
  echo "perf_smoke: $refresh_bench not built; skipping refresh leg" >&2
  refresh_json=""
fi

# Fleet campaign leg (docs/FLEET.md): devices/sec throughput of the
# multi-process orchestrator on a small fleet. Observational like the
# rest of this report (the crash-safety correctness gate is the
# kill-resume byte comparison in tier1.sh).
fleet_bench="build/bench/bench_fleet_campaign"
fleet_json="$tmpdir/fleet_perf.json"
if [[ -x "$fleet_bench" ]]; then
  "$fleet_bench" --fleet-devices=2000 --fleet-devices-per-shard=250 \
    --fleet-lines-per-device=4096 --seed=1 --jobs=4 \
    --fleet-state-dir="$tmpdir/fleet_state" \
    --perf-out="$fleet_json" > /dev/null
else
  echo "perf_smoke: $fleet_bench not built; skipping fleet leg" >&2
  fleet_json=""
fi

# Correctness side-check while we are here: on/off must agree on every
# simulated byte (the perf files differ, the --out files must not).
if ! cmp -s "$tmpdir/out_on_0.json" "$tmpdir/out_off_0.json"; then
  echo "perf_smoke: fast-forward on/off outputs differ" >&2
  exit 1
fi

python3 - "$out" "$instructions" "$repeats" "$tmpdir" "$codec_json" \
  "$refresh_json" "$fleet_json" <<'EOF'
import json
import sys

out_path, instructions, repeats, tmpdir, codec_json, refresh_json, \
    fleet_json = sys.argv[1:8]
instructions = int(instructions)
repeats = int(repeats)

def best(mode, prefix="perf"):
    picks = []
    for i in range(repeats):
        with open(f"{tmpdir}/{prefix}_{mode}_{i}.json") as f:
            suite = json.load(f)["suites"][0]
        picks.append((suite["wall_seconds"], suite["wall_mips"]))
    picks.sort()
    return {"wall_seconds": picks[0][0], "wall_mips": picks[0][1]}

on = best("on")
off = best("off")
report = {
    "schema": "mecc-perf-smoke-v1",
    "generated_by": "scripts/perf_smoke.sh",
    "bench": "table3_workloads",
    "instructions": instructions,
    "seed": 1,
    "jobs": 1,
    "repeats": repeats,
    "fast_forward_on": on,
    "fast_forward_off": off,
    "speedup_wall_mips": round(on["wall_mips"] / off["wall_mips"], 3),
}

# Per-channel fast-forward scaling (docs/SCALING.md): the event-driven
# skip must keep its advantage as the channel count (and so the fold
# over per-channel next_event bounds) grows. Gate: >= 3x at 4 channels.
report["channel_scaling"] = {}
for ch in (2, 4, 8):
    ch_on = best("on", prefix=f"perf_ch{ch}")
    ch_off = best("off", prefix=f"perf_ch{ch}")
    report["channel_scaling"][f"{ch}ch"] = {
        "ranks": 2,
        "fast_forward_on": ch_on,
        "fast_forward_off": ch_off,
        "speedup_wall_mips": round(ch_on["wall_mips"] / ch_off["wall_mips"],
                                   3),
    }

# Self-profiler breakdown + overhead (docs/OBSERVABILITY.md): median
# of per-pair (profiled / unprofiled-run-just-before-it) wall ratios.
# Residual noise can still push it below zero on a quiet host; the
# <= 2% target is documentation, not a gate. The phase breakdown comes
# from the fastest profiled repeat.
ratios = []
prof_picks = []
for i in range(repeats):
    with open(f"{tmpdir}/perf_pair_{i}.json") as f:
        pair_wall = json.load(f)["suites"][0]["wall_seconds"]
    with open(f"{tmpdir}/perf_prof_{i}.json") as f:
        prof_wall_i = json.load(f)["suites"][0]["wall_seconds"]
    ratios.append(prof_wall_i / pair_wall)
    prof_picks.append((prof_wall_i, i))
ratios.sort()
median_ratio = ratios[len(ratios) // 2] if len(ratios) % 2 else \
    (ratios[len(ratios) // 2 - 1] + ratios[len(ratios) // 2]) / 2
prof_picks.sort()
prof_wall, prof_best_i = prof_picks[0]
with open(f"{tmpdir}/profile_{prof_best_i}.json") as f:
    profile = json.load(f)
phases = sorted((e for e in profile["entries"]),
                key=lambda e: e["est_ns"], reverse=True)
report["profiler"] = {
    "wall_seconds": prof_wall,
    "overhead_median_paired": round(median_ratio - 1.0, 4),
    "spans_dropped": profile["spans_dropped"],
    "phases": [
        {"name": f"{e['component']}.{e['phase']}", "calls": e["calls"],
         "est_ms": round(e["est_ns"] / 1e6, 3)}
        for e in phases[:8]
    ],
}

if codec_json:
    with open(codec_json) as f:
        codec = json.load(f)
    report["ecc_codec"] = {
        "schema": codec["schema"],
        "entries": codec["entries"],
    }

if refresh_json:
    with open(refresh_json) as f:
        refresh = json.load(f)
    report["refresh_scheduling"] = refresh.get("scalars", {})

if fleet_json:
    with open(fleet_json) as f:
        fleet = json.load(f)
    report["fleet_campaign"] = {
        "devices": fleet["devices"],
        "jobs": fleet["jobs"],
        "wall_seconds": fleet["wall_seconds"],
        "fleet_devices_per_sec": fleet["fleet_devices_per_sec"],
    }

with open(out_path, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
print(f"perf_smoke: ff=on {on['wall_seconds']:.3f}s, "
      f"ff=off {off['wall_seconds']:.3f}s, "
      f"speedup {report['speedup_wall_mips']:.2f}x -> {out_path}")
for ch, entry in report["channel_scaling"].items():
    print(f"perf_smoke: {ch} x 2r fast-forward speedup "
          f"{entry['speedup_wall_mips']:.2f}x")
prof = report["profiler"]
top = prof["phases"][0]["name"] if prof["phases"] else "none"
print(f"perf_smoke: profiler overhead "
      f"{100 * prof['overhead_median_paired']:.2f}% "
      f"(median of paired runs, target <= 2%), hottest phase {top}")
for e in report.get("ecc_codec", {}).get("entries", []):
    if "speedup" in e:
        print(f"perf_smoke: codec {e['name']}: "
              f"{e['lines_per_sec']:.0f} lines/s "
              f"({e['speedup']:.2f}x over scalar)")
fleet = report.get("fleet_campaign")
if fleet is not None:
    print(f"perf_smoke: fleet campaign {fleet['fleet_devices_per_sec']:.0f} "
          f"devices/s across {fleet['jobs']} worker processes")
darp_2x = report.get("refresh_scheduling", {}).get(
    "darp_read_latency_reduction_2x")
if darp_2x is not None:
    print(f"perf_smoke: darp read-latency reduction at 2x refresh "
          f"rate: {100 * darp_2x:.2f}%")
EOF
