#!/usr/bin/env bash
# Tier-1 verify (ROADMAP.md): configure, build and run the full test
# suite, parallel everywhere.
#
#   scripts/tier1.sh           # standard RelWithDebInfo verify
#   scripts/tier1.sh --tsan    # additionally build with -DMECC_TSAN=ON
#                              # into build-tsan/ and run the thread-pool
#                              # + parallel-runner tests under TSan
set -euo pipefail

cd "$(dirname "$0")/.."

run_tsan=0
for arg in "$@"; do
  case "$arg" in
    --tsan) run_tsan=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

if [[ "$run_tsan" == 1 ]]; then
  cmake -B build-tsan -S . -DMECC_TSAN=ON
  cmake --build build-tsan -j --target test_thread_pool test_parallel_runner
  ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
    -R 'ThreadPool|ParallelRunner'
fi
