#!/usr/bin/env bash
# Tier-1 verify (ROADMAP.md): configure, build and run the full test
# suite, parallel everywhere, then smoke the machine-readable bench
# output (--out=) against the committed reference emission.
#
#   scripts/tier1.sh           # standard RelWithDebInfo verify
#   scripts/tier1.sh --tsan    # additionally build with -DMECC_TSAN=ON
#                              # into build-tsan/ and run the thread-pool
#                              # + parallel-runner + stats/JSON tests
#                              # under TSan
#   scripts/tier1.sh --asan    # additionally build with -DMECC_ASAN=ON
#                              # into build-asan/ and run the reliability
#                              # + fault-campaign tests under ASan+UBSan
set -euo pipefail

cd "$(dirname "$0")/.."

run_tsan=0
run_asan=0
for arg in "$@"; do
  case "$arg" in
    --tsan) run_tsan=1 ;;
    --asan) run_asan=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j "$(nproc)"

# JSON emission smoke (docs/STATS.md): one small pinned suite bench with
# --out=, validate the JSON parses, then tolerance-diff it against the
# committed reference. The pinned knobs MUST match how the reference in
# tests/data/ was generated.
out_json="build/tier1_table3_out.json"
build/bench/bench_table3_workloads --instructions=50000 --seed=1 --jobs=4 \
  --out="$out_json" > /dev/null
python3 -m json.tool "$out_json" > /dev/null
python3 scripts/compare_stats.py \
  tests/data/table3_workloads_small_ref.json "$out_json"

# Fast-forward equivalence smoke (docs/PERFORMANCE.md): the event-driven
# skip engine must reproduce the committed per-cycle reference exactly.
ff_json="build/tier1_table3_ff_out.json"
build/bench/bench_table3_workloads --instructions=50000 --seed=1 --jobs=4 \
  --fast-forward=on --out="$ff_json" > /dev/null
python3 scripts/compare_stats.py \
  tests/data/table3_workloads_small_ref.json "$ff_json"

# Refresh-scheduling smoke (docs/SCHEDULING.md): the per-bank / DARP /
# SARP sweep must match its committed reference, and the event-driven
# core must reproduce the per-cycle schedule byte-for-byte under every
# refresh policy. The pinned knobs MUST match how the reference in
# tests/data/ was generated.
refresh_json="build/tier1_refresh_out.json"
build/bench/bench_refresh_parallelism --instructions=20000 --seed=1 \
  --jobs=4 --fast-forward=off --out="$refresh_json" > /dev/null
python3 scripts/compare_stats.py \
  tests/data/refresh_parallelism_small_ref.json "$refresh_json"
refresh_ff_json="build/tier1_refresh_ff_out.json"
build/bench/bench_refresh_parallelism --instructions=20000 --seed=1 \
  --jobs=4 --fast-forward=on --out="$refresh_ff_json" > /dev/null
cmp "$refresh_json" "$refresh_ff_json"

# Geometry smoke (docs/SCALING.md): the {1,2,4,8}-channel x {1,2}-rank
# sweep must match its committed reference, and the report must be
# byte-identical across --jobs, --fast-forward and --channel-parallel
# (worker count, event skipping and channel-parallel epoch ticking are
# pure implementation details). The pinned knobs MUST match how the
# reference in tests/data/ was generated.
geo_json="build/tier1_geometry_out.json"
build/bench/bench_memsys_geometry --instructions=20000 --seed=1 \
  --jobs=4 --out="$geo_json" > /dev/null
python3 -m json.tool "$geo_json" > /dev/null
python3 scripts/compare_stats.py \
  tests/data/memsys_geometry_small_ref.json "$geo_json"
geo_alt_json="build/tier1_geometry_alt_out.json"
build/bench/bench_memsys_geometry --instructions=20000 --seed=1 \
  --jobs=1 --fast-forward=off --out="$geo_alt_json" > /dev/null
cmp "$geo_json" "$geo_alt_json"
build/bench/bench_memsys_geometry --instructions=20000 --seed=1 \
  --jobs=4 --channel-parallel=4 --out="$geo_alt_json" > /dev/null
cmp "$geo_json" "$geo_alt_json"

# Observability smoke (docs/OBSERVABILITY.md): a small traced+metered
# fault-campaign run, then Perfetto-format validation + summary and the
# metrics JSONL schema check. Per-variant files derive from the base
# paths (trace.ladder_full.json etc.).
trace_base="build/tier1_trace.json"
metrics_base="build/tier1_metrics.jsonl"
build/bench/bench_fault_campaign --instructions=500 --seed=1 \
  --trace="$trace_base" --metrics-out="$metrics_base" \
  --metrics-interval=100000 > /dev/null
python3 scripts/trace_summary.py \
  build/tier1_trace.ladder_full.json \
  build/tier1_trace.ladder_retry_only.json \
  build/tier1_trace.ladder_no_scrub.json
python3 scripts/trace_summary.py --metrics \
  build/tier1_metrics.ladder_full.jsonl \
  build/tier1_metrics.ladder_retry_only.jsonl \
  build/tier1_metrics.ladder_no_scrub.jsonl

# Self-profiler smoke (docs/OBSERVABILITY.md): --profile must emit a
# parseable mecc-profile-v1 report and must not perturb a single
# simulated byte — the --out of a profiled run is compared against the
# unprofiled reference emission generated above with the same knobs.
profile_json="build/tier1_profile.json"
profile_out="build/tier1_profile_out.json"
build/bench/bench_table3_workloads --instructions=50000 --seed=1 --jobs=4 \
  --profile="$profile_json" --out="$profile_out" > /dev/null
python3 -m json.tool "$profile_json" > /dev/null
grep -q 'mecc-profile-v1' "$profile_json"
cmp "$out_json" "$profile_out"

# Counter-audit gate (docs/OBSERVABILITY.md): the event trace and the
# stats snapshot must agree on every invariant family across the
# policy x geometry matrix, and the self-test — one deliberately
# miscounted stat — must fail with exit 1 naming the skewed key.
build/bench/bench_stat_audit --instructions=20000 --seed=1 \
  --out=build/tier1_audit_out.json > /dev/null
python3 -m json.tool build/tier1_audit_out.json > /dev/null
audit_rc=0
build/bench/bench_stat_audit --audit-selftest=dram.activates \
  > build/tier1_audit_selftest.log 2>&1 || audit_rc=$?
if [[ "$audit_rc" != 1 ]]; then
  echo "tier1: audit selftest exited $audit_rc, expected 1" >&2
  exit 1
fi
grep -q 'dram.activates' build/tier1_audit_selftest.log

# Shared-flag strip smoke (regression for the bench_ecc_codec leak):
# every SimOptions flag must pass through the bench without reaching
# benchmark::Initialize, which exits non-zero on flags it does not
# recognize. The bench main derives its strip set from parse_options'
# consumed report, so this invocation fails the instant a newly added
# shared flag is not reported consumed.
build/bench/bench_ecc_codec \
  --instructions=1000 --seed=1 --jobs=1 --ber=0.001 \
  --channels=2 --ranks=2 --interleave=line --streams=1 \
  --channel-parallel=0 \
  --fast-forward=on --trace=build/tier1_codec_trace.json \
  --trace-categories=dram --trace-limit=1000 \
  --metrics-out=build/tier1_codec_metrics.jsonl \
  --metrics-interval=100000 --metrics-keys=power \
  --out=build/tier1_codec_out.json \
  --perf-out=build/tier1_codec_perf.json \
  --benchmark_filter=BM_SecdedEncode64 > /dev/null
python3 -m json.tool build/tier1_codec_out.json > /dev/null
# --list-stats short-circuits before the benchmark suite; it must exit 0.
build/bench/bench_ecc_codec --list-stats > /dev/null

# Codec differential gate: the word-parallel SECDED/BCH hot paths must
# be bit-identical to the retained scalar references (already covered by
# ctest above via test_codec_equivalence; re-run standalone so a filtered
# ctest invocation can never silently skip it).
build/tests/test_codec_equivalence --gtest_brief=1 > /dev/null

# Fleet orchestrator crash-safety smoke (docs/FLEET.md): run an
# uninterrupted reference campaign, then a campaign whose orchestrator
# hard-exits mid-run (orch-exit selftest: _exit(137) with no cleanup,
# the moral equivalent of kill -9) with a worker-crash injection on top,
# then --resume it at different parallelism. The resumed aggregate must
# match the reference byte for byte. The killed + resumed runs stream
# the mecc-telemetry-v1 feed (docs/OBSERVABILITY.md) while the
# reference runs with telemetry off, so the final cmp doubles as the
# telemetry byte-identity gate; the feed itself must validate with a
# resume boundary and a closing final snapshot.
fleet_flags=(--fleet-devices=2000 --fleet-devices-per-shard=250
  --fleet-lines-per-device=4096 --seed=1 --fleet-backoff-s=0.01)
fleet_feed="build/tier1_fleet_feed.jsonl"
rm -rf build/tier1_fleet_ref build/tier1_fleet_kill
rm -f "$fleet_feed"
build/bench/bench_fleet_campaign "${fleet_flags[@]}" --jobs=3 \
  --fleet-state-dir=build/tier1_fleet_ref \
  --out=build/tier1_fleet_out.json > /dev/null
python3 -m json.tool build/tier1_fleet_out.json > /dev/null
fleet_rc=0
build/bench/bench_fleet_campaign "${fleet_flags[@]}" --jobs=2 \
  --fleet-state-dir=build/tier1_fleet_kill \
  --telemetry-out="$fleet_feed" \
  --fleet-selftest=orch-exit@3,crash@1:1 > /dev/null || fleet_rc=$?
if [[ "$fleet_rc" != 137 ]]; then
  echo "tier1: fleet orch-exit selftest exited $fleet_rc, expected 137" >&2
  exit 1
fi
build/bench/bench_fleet_campaign "${fleet_flags[@]}" --jobs=4 \
  --resume=build/tier1_fleet_kill \
  --telemetry-out="$fleet_feed" > /dev/null
python3 scripts/mecc_top.py "$fleet_feed" --validate --expect-final
cmp build/tier1_fleet_ref/aggregate.jsonl build/tier1_fleet_kill/aggregate.jsonl

# Wall-clock report (non-gating: host-dependent numbers, never a
# pass/fail signal; the committed snapshot is BENCH_perf.json).
scripts/perf_smoke.sh --repeats=1 --instructions=500000 || true

if [[ "$run_tsan" == 1 ]]; then
  cmake -B build-tsan -S . -DMECC_TSAN=ON
  cmake --build build-tsan -j --target test_thread_pool \
    test_parallel_runner test_run_json test_stats \
    test_golden_vectors test_codec_property test_fast_forward \
    test_trace test_observability test_codec_equivalence \
    test_refresh_policy test_fleet_orchestrator \
    test_telemetry test_profile test_stat_audit
  ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
    -R 'ThreadPool|ParallelRunner|RunJson|StatSet|StatRegistry|Distribution|QuantileSketch|GoldenVectors|CodecProperty|FastForward|Tracer|MetricsSampler|Observability|CodecEquivalence|PerBankRefresh|DarpRefresh|SarpRefresh|Fleet|Telemetry|ProgressRecord|ProgressTailer|SnapshotJson|HostProfiler|StatAudit'
fi

if [[ "$run_asan" == 1 ]]; then
  cmake -B build-asan -S . -DMECC_ASAN=ON
  cmake --build build-asan -j --target test_fault_injection \
    test_memory_image test_shadow_memory test_due_policy \
    test_fault_campaign test_line_codec test_bitvec test_fast_forward \
    test_json test_trace test_observability test_codec_equivalence \
    test_refresh_policy test_controller_fuzz test_elastic_refresh \
    test_fleet_orchestrator test_stats \
    test_telemetry test_profile test_stat_audit
  ctest --test-dir build-asan --output-on-failure -j "$(nproc)" \
    -R 'FaultInjector|MonteCarlo|MemoryImage|ShadowMemory|DuePolicy|FaultCampaign|LineCodec|BitVec|FastForward|JsonEscape|JsonWriter|Tracer|MetricsSampler|Observability|CodecEquivalence|PerBankRefresh|DarpRefresh|SarpRefresh|ElasticRefresh|ControllerFuzz|ControllerStress|Fleet|StatSet|StatRegistry|Distribution|QuantileSketch|Telemetry|ProgressRecord|ProgressTailer|SnapshotJson|HostProfiler|StatAudit'
fi
