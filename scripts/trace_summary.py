#!/usr/bin/env python3
"""Summarize and validate --trace / --metrics-out emissions.

Usage:
    scripts/trace_summary.py TRACE.json [TRACE2.json ...]
    scripts/trace_summary.py --metrics METRICS.jsonl [...]

Trace mode (Chrome/Perfetto trace-event JSON, docs/OBSERVABILITY.md):
  * validates the format Perfetto needs: every event carries name/ph/ts,
    non-metadata events carry cat, 'X' events carry dur, 'i' events a
    scope, 'C' events args.value, and timestamps are monotone per track
    (pid, tid) in file order;
  * prints per-category event counts;
  * prints residency tables for the span tracks: power-state residency
    (dram.power), morph activity (mecc.morph) and epoch composition
    (sim.epoch), as total cycles and share of the traced span.

Metrics mode (--metrics): validates the mecc-metrics-v1 JSONL schema —
a header line with schema/interval/keys, then sample lines with
cycle/window/phase/counters/gauges/dists, cycles non-decreasing,
counters non-negative integers, dists carrying count/sum/min/max — and
prints one summary line per file. Multi-instance keys (docs/SCALING.md:
memctrl.ch0.*, dram.ch1.*, cpu.c0.*, ...) are additionally aggregated
across instances: the final sample's counters are re-grouped with the
instance segment collapsed to '*' and printed as per-component totals.

Exit codes: 0 = all files valid, 1 = validation failure, 2 = usage.
"""

import json
import re
import sys
from collections import defaultdict

# Instance segment in a namespaced stat key: memctrl.ch0.refreshes,
# dram.ch1.r2.reads, cpu.c3.insts (docs/SCALING.md). Collapsing it to
# '*' groups the same stat across replicated components.
INSTANCE_SEG = re.compile(r"\.(?:ch|r|c)\d+(?=\.)")


def collapse_instances(key):
    return INSTANCE_SEG.sub(".*", key)


def fail(path, msg):
    print(f"trace_summary: {path}: {msg}", file=sys.stderr)
    return False


def validate_event(path, i, ev):
    if not isinstance(ev, dict):
        return fail(path, f"traceEvents[{i}] is not an object")
    for field in ("name", "ph"):
        if field not in ev:
            return fail(path, f"traceEvents[{i}] missing '{field}'")
    ph = ev["ph"]
    if ph == "M":  # metadata (track names): no ts/cat required
        return True
    for field in ("ts", "pid", "tid"):
        if field not in ev:
            return fail(path, f"traceEvents[{i}] ({ev['name']}) missing "
                              f"'{field}'")
    if "cat" not in ev:
        return fail(path, f"traceEvents[{i}] ({ev['name']}) missing 'cat'")
    if not isinstance(ev["ts"], int) or ev["ts"] < 0:
        return fail(path, f"traceEvents[{i}] has bad ts {ev['ts']!r}")
    if ph == "X":
        if "dur" not in ev or not isinstance(ev["dur"], int):
            return fail(path, f"traceEvents[{i}] 'X' event missing int dur")
    elif ph == "i":
        if ev.get("s") not in ("t", "p", "g"):
            return fail(path, f"traceEvents[{i}] 'i' event missing scope")
    elif ph == "C":
        if "value" not in ev.get("args", {}):
            return fail(path, f"traceEvents[{i}] 'C' event missing "
                              "args.value")
    else:
        return fail(path, f"traceEvents[{i}] unknown phase {ph!r}")
    return True


def summarize_trace(path):
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return fail(path, f"unreadable: {e}")
    if "traceEvents" not in doc or not isinstance(doc["traceEvents"], list):
        return fail(path, "no traceEvents array")
    events = doc["traceEvents"]

    track_names = {}
    last_ts = {}
    by_category = defaultdict(int)
    residency = defaultdict(lambda: defaultdict(int))  # track -> name -> dur
    lo, hi = None, 0
    for i, ev in enumerate(events):
        if not validate_event(path, i, ev):
            return False
        if ev["ph"] == "M":
            if ev["name"] == "thread_name":
                track_names[(ev.get("pid", 0), ev["tid"])] = \
                    ev["args"]["name"]
            continue
        key = (ev["pid"], ev["tid"])
        if ev["ts"] < last_ts.get(key, 0):
            return fail(path, f"traceEvents[{i}] ts {ev['ts']} goes "
                              f"backwards on track {key}")
        last_ts[key] = ev["ts"]
        by_category[ev["cat"]] += 1
        end = ev["ts"] + ev.get("dur", 0)
        lo = ev["ts"] if lo is None else min(lo, ev["ts"])
        hi = max(hi, end)
        if ev["ph"] == "X":
            residency[track_names.get(key, str(key))][ev["name"]] += \
                ev["dur"]

    span = max(1, hi - (lo or 0))
    n_events = sum(by_category.values())
    dropped = doc.get("otherData", {}).get("dropped_events", 0)
    print(f"{path}: {n_events} events on {len(last_ts)} tracks, "
          f"span {span} cycles, {dropped} dropped")
    for cat in sorted(by_category):
        print(f"  category {cat:<8} {by_category[cat]:>8}")
    for track in sorted(residency):
        print(f"  residency [{track}]")
        for name, dur in sorted(residency[track].items(),
                                key=lambda kv: -kv[1]):
            print(f"    {name:<24} {dur:>12} cycles  "
                  f"{100.0 * dur / span:6.2f}%")
    return True


def summarize_metrics(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = [ln for ln in f.read().splitlines() if ln]
    except OSError as e:
        return fail(path, f"unreadable: {e}")
    if not lines:
        return fail(path, "empty metrics file")
    try:
        header = json.loads(lines[0])
    except ValueError as e:
        return fail(path, f"bad header line: {e}")
    if header.get("schema") != "mecc-metrics-v1":
        return fail(path, f"unexpected schema {header.get('schema')!r}")
    if not isinstance(header.get("interval"), int) or header["interval"] < 1:
        return fail(path, "header missing positive 'interval'")
    if not isinstance(header.get("keys"), list):
        return fail(path, "header missing 'keys' list")

    prev_cycle = -1
    phases = defaultdict(int)
    last_counters = {}
    for n, line in enumerate(lines[1:], start=2):
        try:
            rec = json.loads(line)
        except ValueError as e:
            return fail(path, f"line {n}: bad JSON: {e}")
        for field in ("cycle", "window", "phase", "counters", "gauges",
                      "dists"):
            if field not in rec:
                return fail(path, f"line {n}: missing '{field}'")
        if rec["cycle"] < prev_cycle:
            return fail(path, f"line {n}: cycle {rec['cycle']} goes "
                              "backwards")
        if rec["window"] != rec["cycle"] // header["interval"]:
            return fail(path, f"line {n}: window {rec['window']} does not "
                              f"match cycle/interval")
        prev_cycle = rec["cycle"]
        phases[rec["phase"]] += 1
        for key, v in rec["counters"].items():
            if not isinstance(v, int) or v < 0:
                return fail(path, f"line {n}: counter {key} = {v!r}")
        last_counters = rec["counters"]
        for key, d in rec["dists"].items():
            for field in ("count", "sum", "min", "max"):
                if field not in d:
                    return fail(path, f"line {n}: dist {key} missing "
                                      f"'{field}'")
    phase_list = ", ".join(f"{k}={v}" for k, v in sorted(phases.items()))
    print(f"{path}: {len(lines) - 1} samples to cycle {prev_cycle}, "
          f"interval {header['interval']} ({phase_list})")
    # Cross-instance aggregation over the final (cumulative) sample:
    # only groups that actually span replicated components are printed.
    agg = defaultdict(int)
    members = defaultdict(int)
    for key, v in last_counters.items():
        star = collapse_instances(key)
        if star != key:
            agg[star] += v
            members[star] += 1
    for star in sorted(agg):
        print(f"  aggregate {star:<36} {agg[star]:>14}  "
              f"({members[star]} instances)")
    return True


def main(argv):
    args = argv[1:]
    metrics_mode = False
    if args and args[0] == "--metrics":
        metrics_mode = True
        args = args[1:]
    if not args:
        print(__doc__, file=sys.stderr)
        return 2
    ok = True
    for path in args:
        if metrics_mode:
            ok = summarize_metrics(path) and ok
        else:
            ok = summarize_trace(path) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
