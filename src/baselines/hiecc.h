// Hi-ECC-style coarse-granularity strong ECC (Wilkerson et al., ISCA
// 2010), the paper's closest related work (S VII-C).
//
// Hi-ECC amortizes the strong code over a large block (1 KB) to cut the
// parity storage overhead. The paper's critique: every sub-block access
// must fetch (and on writes, read-modify-write) the whole protected
// block - significant overfetch - and its cache-line-disable trick does
// not transfer to main memory ("holes" in the address space).
//
// This model quantifies that trade-off against MECC's line-granularity
// code that hides entirely in the (72,64) spare space.
#pragma once

#include <cstddef>

#include "common/types.h"

namespace mecc::baselines {

struct GranularityCosts {
  std::size_t block_bytes = 0;     // protection granularity
  std::size_t parity_bits = 0;     // per block
  double storage_overhead = 0.0;   // parity / data
  double read_overfetch = 1.0;     // bytes moved per 64 B read / 64
  double write_amplification = 1.0;  // bytes moved per 64 B write / 64
};

/// Costs of protecting `block_bytes` (a power of two >= 64) with a
/// BCH code correcting `t` errors. The field size m is the smallest
/// with 2^m - 1 >= block bits + t*m.
[[nodiscard]] constexpr GranularityCosts strong_ecc_granularity(
    std::size_t block_bytes, std::size_t t) {
  const std::size_t data_bits = block_bytes * 8;
  unsigned m = 3;
  while (((1ull << m) - 1) < data_bits + t * m) ++m;
  GranularityCosts c;
  c.block_bytes = block_bytes;
  c.parity_bits = t * m;
  c.storage_overhead = static_cast<double>(c.parity_bits) /
                       static_cast<double>(data_bits);
  // A 64 B read must pull the whole block through the decoder.
  c.read_overfetch = static_cast<double>(block_bytes) / kLineBytes;
  // A 64 B write is read-modify-write of the whole block.
  c.write_amplification = 2.0 * static_cast<double>(block_bytes) /
                          kLineBytes;
  return c;
}

}  // namespace mecc::baselines
