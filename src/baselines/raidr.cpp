#include "baselines/raidr.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mecc::baselines {

double RaidrProfile::refresh_ops_per_second(const RaidrConfig& config) const {
  double ops = 0.0;
  for (std::size_t b = 0; b < rows_per_bin.size(); ++b) {
    ops += static_cast<double>(rows_per_bin[b]) / config.bin_periods[b];
  }
  return ops;
}

double RaidrProfile::refresh_reduction(const RaidrConfig& config) const {
  const double all_fast = static_cast<double>(config.num_rows) /
                          config.bin_periods.front();
  return all_fast / refresh_ops_per_second(config);
}

RaidrProfile Raidr::profile(const reliability::RetentionModel& retention,
                            Rng& rng) const {
  assert(!config_.bin_periods.empty());
  RaidrProfile p;
  p.row_bin.resize(config_.num_rows, 0);
  p.rows_per_bin.assign(config_.bin_periods.size(), 0);

  for (std::uint64_t row = 0; row < config_.num_rows; ++row) {
    // The row's weakest cell decides its bin. Sampling every cell is
    // wasteful; sample the minimum directly: P(min < t) =
    // 1 - (1 - F(t))^cells. Equivalently transform one uniform draw
    // through the per-cell quantile at u' = 1-(1-u)^(1/cells); for the
    // tiny tail probabilities here u' ~ u / cells.
    const double u = std::max(rng.next_double(), 1e-18);
    const double per_cell_quantile =
        -std::expm1(std::log1p(-u) / config_.cells_per_row);
    const double weakest_retention =
        retention.retention_for_ber(std::max(per_cell_quantile, 1e-300));

    std::uint32_t bin = 0;
    for (std::size_t b = config_.bin_periods.size(); b-- > 0;) {
      if (weakest_retention >= config_.bin_periods[b] * config_.guard_band) {
        bin = static_cast<std::uint32_t>(b);
        break;
      }
    }
    p.row_bin[row] = bin;
    ++p.rows_per_bin[bin];
  }
  return p;
}

double Raidr::expected_vrt_victim_rows(const RaidrProfile& profile,
                                       double vrt_rate) const {
  // Any cell in a slow-bin row that flips into a low-retention state is
  // an unprotected failure (no ECC in RAIDR).
  double expected = 0.0;
  for (std::size_t b = 1; b < profile.rows_per_bin.size(); ++b) {
    const double rows = static_cast<double>(profile.rows_per_bin[b]);
    const double p_row =
        -std::expm1(config_.cells_per_row * std::log1p(-vrt_rate));
    expected += rows * p_row;
  }
  return expected;
}

double flikker_effective_refresh_rate(double critical_fraction,
                                      double slow_divider) {
  assert(critical_fraction >= 0.0 && critical_fraction <= 1.0);
  assert(slow_divider >= 1.0);
  return critical_fraction + (1.0 - critical_fraction) / slow_divider;
}

}  // namespace mecc::baselines
