// RAIDR-style retention-aware multirate refresh (Liu et al., ISCA 2012),
// the paper's main related-work comparison (S VII-B).
//
// RAIDR profiles each row's retention time and bins rows into refresh-
// rate classes: rows whose weakest cell retains > T get refreshed every
// T. Refresh savings depend on how many rows land in the slow bins.
//
// The paper's critique, which this model reproduces: profiling-based
// schemes assume retention is static, but a small population of cells
// exhibits Variable Retention Time (VRT) and can drop to a low retention
// state *after* profiling - without ECC, any such cell in a slow-bin row
// corrupts data. MECC instead tolerates random failures by construction.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "reliability/retention_model.h"

namespace mecc::baselines {

struct RaidrConfig {
  std::uint64_t num_rows = 64 * 1024;   // 4 banks x 16K rows
  std::uint32_t cells_per_row = 16384 * 8;  // 16 KB rows
  // Refresh-period bins, ascending (seconds). A row goes into the
  // slowest bin whose period is still below its weakest cell's
  // retention time (with the guard band applied).
  std::vector<double> bin_periods = {0.064, 0.256, 1.0};
  // Profiling guard band: a row's weakest cell must retain at least
  // guard * period to use that bin.
  double guard_band = 2.0;
};

struct RaidrProfile {
  std::vector<std::uint32_t> row_bin;      // bin index per row
  std::vector<std::uint64_t> rows_per_bin;

  /// Refresh operations per second, summed over bins (one refresh per
  /// row per period).
  [[nodiscard]] double refresh_ops_per_second(
      const RaidrConfig& config) const;

  /// Reduction versus refreshing every row at the fastest period.
  [[nodiscard]] double refresh_reduction(const RaidrConfig& config) const;
};

class Raidr {
 public:
  explicit Raidr(const RaidrConfig& config) : config_(config) {}

  /// Profiles every row: samples the weakest-cell retention from the
  /// device retention distribution and assigns bins.
  [[nodiscard]] RaidrProfile profile(
      const reliability::RetentionModel& retention, Rng& rng) const;

  /// Expected number of rows that suffer a retention failure after
  /// profiling, if each cell independently enters a low-retention VRT
  /// state with probability `vrt_rate` (retention collapses below the
  /// assigned bin period). Rows in the fastest bin are safe by
  /// construction (JEDEC period).
  [[nodiscard]] double expected_vrt_victim_rows(const RaidrProfile& profile,
                                                double vrt_rate) const;

  [[nodiscard]] const RaidrConfig& config() const { return config_; }

 private:
  RaidrConfig config_;
};

/// Flikker-style critical/non-critical partition (S VII-A): the critical
/// fraction refreshes at the full rate, the rest at `slow_divider` times
/// slower. Returns the *effective* refresh rate relative to refreshing
/// everything at full rate - the paper's Amdahl's-law argument.
[[nodiscard]] double flikker_effective_refresh_rate(double critical_fraction,
                                                    double slow_divider);

}  // namespace mecc::baselines
