#include "cache/llc.h"

#include <stdexcept>

namespace mecc::cache {

Llc::Llc(std::uint64_t capacity_bytes, std::uint32_t associativity)
    : assoc_(associativity) {
  if (associativity == 0 || capacity_bytes % (kLineBytes * associativity)) {
    throw std::invalid_argument("Llc: capacity must be sets*assoc*64B");
  }
  num_sets_ =
      static_cast<std::uint32_t>(capacity_bytes / kLineBytes / associativity);
  ways_.resize(static_cast<std::size_t>(num_sets_) * assoc_);
}

AccessOutcome Llc::access(Address addr, bool is_write) {
  const std::uint32_t set = set_of(addr);
  const std::uint64_t tag = tag_of(addr);
  Way* base = &ways_[static_cast<std::size_t>(set) * assoc_];
  ++stamp_;

  for (std::uint32_t w = 0; w < assoc_; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = stamp_;
      way.dirty |= is_write;
      ++hits_;
      return {.hit = true, .writeback = std::nullopt};
    }
  }

  ++misses_;
  // Choose victim: an invalid way, else true LRU.
  Way* victim = base;
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }

  AccessOutcome out;
  if (victim->valid && victim->dirty) {
    out.writeback = addr_of(set, victim->tag);
    ++writebacks_;
  }
  victim->valid = true;
  victim->dirty = is_write;
  victim->tag = tag;
  victim->lru = stamp_;
  return out;
}

std::vector<Address> Llc::flush() {
  std::vector<Address> dirty;
  for (std::uint32_t set = 0; set < num_sets_; ++set) {
    for (std::uint32_t w = 0; w < assoc_; ++w) {
      Way& way = ways_[static_cast<std::size_t>(set) * assoc_ + w];
      if (way.valid && way.dirty) {
        dirty.push_back(addr_of(set, way.tag));
        ++writebacks_;
      }
      way.valid = false;
      way.dirty = false;
    }
  }
  return dirty;
}

}  // namespace mecc::cache
