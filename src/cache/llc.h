// Set-associative last-level cache (Table II: 1 MB, 64 B lines), LRU,
// write-back / write-allocate.
//
// The main evaluation replays USIMM-style post-LLC traces (see
// src/trace), so this cache sits off the hot path; it is used by the
// raw-access trace path, the cache-filter example, and the tests that
// validate the MPKI characteristics the trace generator targets.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace mecc::cache {

struct AccessOutcome {
  bool hit = false;
  // On a miss that evicts a dirty line, the line to write back.
  std::optional<Address> writeback;
};

class Llc {
 public:
  Llc(std::uint64_t capacity_bytes, std::uint32_t associativity);

  /// Looks up `addr`; on miss, allocates (write-allocate for stores too)
  /// and reports any dirty victim.
  AccessOutcome access(Address addr, bool is_write);

  /// Invalidates everything, returning dirty lines (cache flush on idle
  /// entry: "the OS can turn off the processor chip (after flushing the
  /// caches)", paper S III-B).
  [[nodiscard]] std::vector<Address> flush();

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  /// Dirty lines written back (evictions + flushes).
  [[nodiscard]] std::uint64_t writebacks() const { return writebacks_; }
  [[nodiscard]] double miss_rate() const {
    const std::uint64_t total = hits_ + misses_;
    return total == 0 ? 0.0
                      : static_cast<double>(misses_) /
                            static_cast<double>(total);
  }
  [[nodiscard]] std::uint32_t num_sets() const { return num_sets_; }
  [[nodiscard]] std::uint32_t associativity() const { return assoc_; }

  /// Exports hits/misses/writebacks; surfaces in the System registry
  /// under "trace.llc." when an LlcFilteredSource drives the run.
  void export_stats(StatSet& out) const {
    out.add("hits", hits_);
    out.add("misses", misses_);
    out.add("writebacks", writebacks_);
  }

 private:
  struct Way {
    bool valid = false;
    bool dirty = false;
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // last-use stamp
  };

  [[nodiscard]] std::uint32_t set_of(Address addr) const {
    return static_cast<std::uint32_t>((addr / kLineBytes) % num_sets_);
  }
  [[nodiscard]] std::uint64_t tag_of(Address addr) const {
    return (addr / kLineBytes) / num_sets_;
  }
  [[nodiscard]] Address addr_of(std::uint32_t set, std::uint64_t tag) const {
    return (tag * num_sets_ + set) * kLineBytes;
  }

  std::uint32_t num_sets_;
  std::uint32_t assoc_;
  std::vector<Way> ways_;  // num_sets_ * assoc_, row-major by set
  std::uint64_t stamp_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writebacks_ = 0;
};

}  // namespace mecc::cache
