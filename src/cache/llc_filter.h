// LLC-in-the-loop trace filtering.
//
// Wraps a *CPU-level* access stream (loads/stores before any cache) and
// the Table II 1 MB LLC, emitting the post-LLC memory traffic the rest
// of the simulator consumes: a fill read per miss (write-allocate, so
// store misses fill too) and a write-back per dirty eviction. This is
// how the paper's USIMM traces were produced from SPEC runs; the
// synthetic per-benchmark generators model that post-LLC stream
// directly, and this filter lets users start one level up instead.
#pragma once

#include <deque>

#include "cache/llc.h"
#include "trace/trace_source.h"

namespace mecc::cache {

class LlcFilteredSource final : public trace::TraceSource {
 public:
  /// Takes ownership of neither: `cpu_stream` must outlive this source.
  LlcFilteredSource(trace::TraceSource& cpu_stream,
                    std::uint64_t llc_capacity_bytes = 1 << 20,
                    std::uint32_t llc_associativity = 16)
      : cpu_(cpu_stream), llc_(llc_capacity_bytes, llc_associativity) {}

  /// Next post-LLC memory access. Gaps accumulate all CPU instructions
  /// (including cache-hitting memory instructions) since the previous
  /// emitted access.
  trace::TraceRecord next() override {
    while (true) {
      if (!pending_writebacks_.empty()) {
        const Address wb = pending_writebacks_.front();
        pending_writebacks_.pop_front();
        trace::TraceRecord rec;
        rec.gap = take_gap();
        rec.is_write = true;
        rec.line_addr = wb;
        return rec;
      }
      const trace::TraceRecord cpu = cpu_.next();
      gap_accum_ += cpu.gap + 1;  // the access itself retires too
      ++cpu_accesses_;
      const AccessOutcome out = llc_.access(cpu.line_addr, cpu.is_write);
      if (out.writeback) pending_writebacks_.push_back(*out.writeback);
      if (!out.hit) {
        // Miss: fill read (write-allocate covers stores as well).
        trace::TraceRecord rec;
        rec.gap = take_gap();
        rec.is_write = false;
        rec.line_addr = cpu.line_addr;
        return rec;
      }
      // Pure-hit stretches cannot stall the emitter forever.
      if (gap_accum_ > kMaxGap) {
        trace::TraceRecord rec;
        rec.gap = take_gap();
        rec.is_write = false;
        rec.line_addr = cpu.line_addr;
        return rec;
      }
    }
  }

  /// Flush on idle entry (paper S III-B); returns dirty lines which the
  /// caller writes back before self-refresh.
  [[nodiscard]] std::vector<Address> flush() { return llc_.flush(); }

  [[nodiscard]] const Llc& llc() const { return llc_; }
  [[nodiscard]] std::uint64_t cpu_accesses() const { return cpu_accesses_; }

  /// Surfaces the filter LLC under "llc." ("trace.llc." in the System
  /// registry snapshot).
  void export_stats(StatSet& out) const override {
    StatSet llc_stats;
    llc_.export_stats(llc_stats);
    out.merge("llc.", llc_stats);
    out.add("cpu_accesses", cpu_accesses_);
  }

 private:
  static constexpr std::uint64_t kMaxGap = 1'000'000;

  [[nodiscard]] std::uint32_t take_gap() {
    const auto gap = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(gap_accum_ > 0 ? gap_accum_ - 1 : 0,
                                kMaxGap));
    gap_accum_ = 0;
    return gap;
  }

  trace::TraceSource& cpu_;
  Llc llc_;
  std::deque<Address> pending_writebacks_;
  std::uint64_t gap_accum_ = 0;
  std::uint64_t cpu_accesses_ = 0;
};

}  // namespace mecc::cache
