#include "common/bitvec.h"

#include <bit>
#include <cassert>
#include <cstring>

namespace mecc {

BitVec BitVec::from_bytes(std::span<const std::uint8_t> bytes) {
  BitVec v(bytes.size() * 8);
  if (bytes.empty()) return v;
  if constexpr (std::endian::native == std::endian::little) {
    // LSB-first within each byte and byte i at bits [8i, 8i+8) is exactly
    // the little-endian in-memory layout of the word array.
    std::memcpy(v.words_.data(), bytes.data(), bytes.size());
  } else {
    for (std::size_t i = 0; i < bytes.size(); ++i) {
      v.words_[i >> 3] |= static_cast<std::uint64_t>(bytes[i]) << ((i & 7) * 8);
    }
  }
  return v;
}

BitVec BitVec::from_u64(std::uint64_t value, std::size_t nbits) {
  assert(nbits <= 64);
  BitVec v(nbits);
  if (nbits == 0) return v;
  v.words_[0] = value;
  v.mask_tail();
  return v;
}

std::vector<std::uint8_t> BitVec::to_bytes() const {
  std::vector<std::uint8_t> out((nbits_ + 7) / 8, 0);
  if (out.empty()) return out;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.data(), words_.data(), out.size());
  } else {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = static_cast<std::uint8_t>(words_[i >> 3] >> ((i & 7) * 8));
    }
  }
  return out;
}

void BitVec::clear() {
  for (auto& w : words_) w = 0;
}

std::size_t BitVec::popcount() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool BitVec::parity() const {
  std::uint64_t acc = 0;
  for (auto w : words_) acc ^= w;
  return (std::popcount(acc) & 1) != 0;
}

bool BitVec::masked_parity(std::span<const std::uint64_t> mask) const {
  std::uint64_t acc = 0;
  const std::size_t n = std::min(mask.size(), words_.size());
  for (std::size_t i = 0; i < n; ++i) acc ^= words_[i] & mask[i];
  return (std::popcount(acc) & 1) != 0;
}

bool BitVec::any() const {
  for (auto w : words_) {
    if (w != 0) return true;
  }
  return false;
}

BitVec& BitVec::operator^=(const BitVec& other) {
  assert(nbits_ == other.nbits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

BitVec BitVec::slice(std::size_t pos, std::size_t len) const {
  assert(pos + len <= nbits_);
  BitVec out(len);
  if (len == 0) return out;
  const std::size_t w0 = pos >> 6;
  const unsigned off = pos & 63;
  if (off == 0) {
    for (std::size_t i = 0; i < out.words_.size(); ++i) {
      out.words_[i] = words_[w0 + i];
    }
  } else {
    for (std::size_t i = 0; i < out.words_.size(); ++i) {
      std::uint64_t w = words_[w0 + i] >> off;
      if (w0 + i + 1 < words_.size()) w |= words_[w0 + i + 1] << (64 - off);
      out.words_[i] = w;
    }
  }
  out.mask_tail();
  return out;
}

void BitVec::write_bits(std::size_t pos, std::uint64_t chunk, unsigned nbits) {
  assert(nbits >= 1 && nbits <= 64 && pos + nbits <= nbits_);
  const std::uint64_t mask = nbits == 64 ? ~0ull : (1ull << nbits) - 1;
  chunk &= mask;
  const std::size_t w = pos >> 6;
  const unsigned off = pos & 63;
  words_[w] = (words_[w] & ~(mask << off)) | (chunk << off);
  if (off + nbits > 64) {
    const std::uint64_t hi_mask = mask >> (64 - off);
    words_[w + 1] = (words_[w + 1] & ~hi_mask) | (chunk >> (64 - off));
  }
}

void BitVec::splice(std::size_t pos, const BitVec& src) {
  assert(pos + src.size() <= nbits_);
  const std::size_t len = src.nbits_;
  for (std::size_t i = 0; i < src.words_.size(); ++i) {
    const unsigned nb =
        static_cast<unsigned>(std::min<std::size_t>(64, len - i * 64));
    write_bits(pos + i * 64, src.words_[i], nb);
  }
}

std::size_t BitVec::hamming_distance(const BitVec& other) const {
  assert(nbits_ == other.nbits_);
  std::size_t n = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    n += static_cast<std::size_t>(std::popcount(words_[i] ^ other.words_[i]));
  }
  return n;
}

std::vector<std::size_t> BitVec::set_positions() const {
  std::vector<std::size_t> out;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int b = std::countr_zero(word);
      out.push_back(w * 64 + static_cast<std::size_t>(b));
      word &= word - 1;
    }
  }
  return out;
}

std::string BitVec::to_string() const {
  std::string s;
  s.reserve(nbits_);
  for (std::size_t i = 0; i < nbits_; ++i) s.push_back(get(i) ? '1' : '0');
  return s;
}

void BitVec::mask_tail() {
  const unsigned r = nbits_ & 63;
  if (r != 0) words_.back() &= ~0ull >> (64 - r);
}

}  // namespace mecc
