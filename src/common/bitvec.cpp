#include "common/bitvec.h"

#include <bit>
#include <cassert>

namespace mecc {

BitVec BitVec::from_bytes(std::span<const std::uint8_t> bytes) {
  BitVec v(bytes.size() * 8);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    v.words_[i >> 3] |= static_cast<std::uint64_t>(bytes[i]) << ((i & 7) * 8);
  }
  return v;
}

std::vector<std::uint8_t> BitVec::to_bytes() const {
  std::vector<std::uint8_t> out((nbits_ + 7) / 8, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<std::uint8_t>(words_[i >> 3] >> ((i & 7) * 8));
  }
  return out;
}

void BitVec::clear() {
  for (auto& w : words_) w = 0;
}

std::size_t BitVec::popcount() const {
  std::size_t n = 0;
  for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool BitVec::any() const {
  for (auto w : words_) {
    if (w != 0) return true;
  }
  return false;
}

BitVec& BitVec::operator^=(const BitVec& other) {
  assert(nbits_ == other.nbits_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] ^= other.words_[i];
  return *this;
}

BitVec BitVec::slice(std::size_t pos, std::size_t len) const {
  assert(pos + len <= nbits_);
  BitVec out(len);
  for (std::size_t i = 0; i < len; ++i) out.set(i, get(pos + i));
  return out;
}

void BitVec::splice(std::size_t pos, const BitVec& src) {
  assert(pos + src.size() <= nbits_);
  for (std::size_t i = 0; i < src.size(); ++i) set(pos + i, src.get(i));
}

std::size_t BitVec::hamming_distance(const BitVec& other) const {
  assert(nbits_ == other.nbits_);
  std::size_t n = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    n += static_cast<std::size_t>(std::popcount(words_[i] ^ other.words_[i]));
  }
  return n;
}

std::vector<std::size_t> BitVec::set_positions() const {
  std::vector<std::size_t> out;
  for (std::size_t w = 0; w < words_.size(); ++w) {
    std::uint64_t word = words_[w];
    while (word != 0) {
      const int b = std::countr_zero(word);
      out.push_back(w * 64 + static_cast<std::size_t>(b));
      word &= word - 1;
    }
  }
  return out;
}

std::string BitVec::to_string() const {
  std::string s;
  s.reserve(nbits_);
  for (std::size_t i = 0; i < nbits_; ++i) s.push_back(get(i) ? '1' : '0');
  return s;
}

}  // namespace mecc
