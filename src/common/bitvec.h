// A dynamically sized bit vector backed by 64-bit words.
//
// This is the data plane of the ECC codecs: codewords, data lines and
// syndromes are all BitVec instances. It deliberately supports only the
// operations the codecs need (bit get/set/flip, XOR, popcount, slicing)
// and keeps them branch-light.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mecc {

class BitVec {
 public:
  BitVec() = default;

  /// Creates an all-zero vector of `nbits` bits.
  explicit BitVec(std::size_t nbits)
      : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  /// Builds a vector from raw bytes, LSB-first within each byte.
  static BitVec from_bytes(std::span<const std::uint8_t> bytes);

  /// Builds a vector of `nbits` bits (nbits <= 64) from the low bits of
  /// `value`.
  static BitVec from_u64(std::uint64_t value, std::size_t nbits);

  /// Serializes back to bytes (LSB-first within each byte). Size is
  /// rounded up to whole bytes; trailing pad bits are zero.
  [[nodiscard]] std::vector<std::uint8_t> to_bytes() const;

  [[nodiscard]] std::size_t size() const { return nbits_; }
  [[nodiscard]] bool empty() const { return nbits_ == 0; }

  [[nodiscard]] bool get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }
  void set(std::size_t i, bool v) {
    const std::uint64_t mask = 1ull << (i & 63);
    if (v) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }
  void flip(std::size_t i) { words_[i >> 6] ^= 1ull << (i & 63); }

  /// Sets every bit to zero.
  void clear();

  /// Number of set bits.
  [[nodiscard]] std::size_t popcount() const;

  /// XOR of all bits (word-level fold; the ECC overall-parity hot path).
  [[nodiscard]] bool parity() const;

  /// XOR of all bits of (this AND mask), where `mask` is a word span laid
  /// out like words(); missing trailing mask words are treated as zero.
  /// This is one H-matrix row product in the word-parallel SECDED codec.
  [[nodiscard]] bool masked_parity(std::span<const std::uint64_t> mask) const;

  /// True if any bit is set.
  [[nodiscard]] bool any() const;

  /// XOR-accumulate another vector of the same size into this one.
  BitVec& operator^=(const BitVec& other);
  [[nodiscard]] friend BitVec operator^(BitVec a, const BitVec& b) {
    a ^= b;
    return a;
  }

  [[nodiscard]] bool operator==(const BitVec& other) const = default;

  /// Copies bits [pos, pos+len) into a fresh vector.
  [[nodiscard]] BitVec slice(std::size_t pos, std::size_t len) const;

  /// Writes `src` into this vector starting at bit `pos`.
  void splice(std::size_t pos, const BitVec& src);

  /// Hamming distance to another vector of equal size.
  [[nodiscard]] std::size_t hamming_distance(const BitVec& other) const;

  /// Positions of set bits, ascending.
  [[nodiscard]] std::vector<std::size_t> set_positions() const;

  /// "0101..."-style debug rendering, bit 0 first.
  [[nodiscard]] std::string to_string() const;

  /// Direct word access for hashing / fast scans.
  [[nodiscard]] std::span<const std::uint64_t> words() const { return words_; }

 private:
  /// Overwrites bits [pos, pos+nbits) with the low `nbits` of `chunk`
  /// (nbits in [1, 64]), preserving the surrounding bits.
  void write_bits(std::size_t pos, std::uint64_t chunk, unsigned nbits);

  /// Zeroes the pad bits above nbits_ in the last word. Every public
  /// operation maintains the all-pad-bits-zero invariant (operator== and
  /// the word-level scans rely on it).
  void mask_tail();

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace mecc
