#include "common/fsio.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace mecc {

namespace {

/// Directory part of `path` ("." when there is none), for the
/// post-rename directory fsync.
[[nodiscard]] std::string dir_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

[[nodiscard]] bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool atomic_write_file(const std::string& path, const std::string& contents,
                       const char* what) {
  if (path == "-") {
    std::fwrite(contents.data(), 1, contents.size(), stdout);
    return std::fflush(stdout) == 0;
  }
  // Fixed temp name: only one writer per final path exists at a time
  // (workers own distinct shard files, the orchestrator owns the
  // manifest), and a stale temp from a killed writer is simply
  // overwritten by the next attempt.
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    std::fprintf(stderr, "error: cannot open %s temp file '%s': %s\n", what,
                 tmp.c_str(), std::strerror(errno));
    return false;
  }
  const bool wrote = write_all(fd, contents.data(), contents.size());
  const bool synced = wrote && ::fsync(fd) == 0;
  ::close(fd);
  if (!synced) {
    std::fprintf(stderr, "error: short write to %s file '%s': %s\n", what,
                 tmp.c_str(), std::strerror(errno));
    ::unlink(tmp.c_str());
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    std::fprintf(stderr, "error: cannot rename %s file '%s' -> '%s': %s\n",
                 what, tmp.c_str(), path.c_str(), std::strerror(errno));
    ::unlink(tmp.c_str());
    return false;
  }
  // Make the rename itself durable: fsync the containing directory.
  // Failure here (exotic filesystems refuse O_RDONLY dir fsync) is not
  // fatal — the data file is complete either way.
  const int dfd = ::open(dir_of(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
  return true;
}

bool write_file(const std::string& path, const std::string& contents) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  const bool ok = write_all(fd, contents.data(), contents.size());
  ::close(fd);
  return ok;
}

bool append_file(const std::string& path, const std::string& contents) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return false;
  const bool ok = write_all(fd, contents.data(), contents.size());
  ::close(fd);
  return ok;
}

bool read_file(const std::string& path, std::string* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  out->clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out->append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return true;
}

}  // namespace mecc
