// Durable file output (docs/FLEET.md): every machine-readable artifact
// the simulator leaves behind — bench reports, trace/metrics emissions,
// fleet-campaign checkpoints and shard results — goes through
// atomic_write_file so a crash (including SIGKILL) at any instant leaves
// either the previous complete file or the new complete file on disk,
// never a truncated half-written one that a resume would mis-parse.
#pragma once

#include <string>

namespace mecc {

/// Writes `contents` to `path` via write-to-temp + fsync + atomic
/// rename (+ fsync of the containing directory, so the rename itself is
/// durable). `path` == "-" streams to stdout instead. Returns false
/// with a stderr diagnostic (mentioning `what`, e.g. "--out") on any
/// I/O failure; a failed attempt removes its temp file.
[[nodiscard]] bool atomic_write_file(const std::string& path,
                                     const std::string& contents,
                                     const char* what = "output");

/// Non-durable convenience: truncate-write `contents` to `path` with a
/// plain open/write/close (one mtime bump, no fsync). Used for
/// heartbeat touch files where durability is irrelevant but the
/// write must still be a single syscall-level operation.
[[nodiscard]] bool write_file(const std::string& path,
                              const std::string& contents);

/// Reads the whole file into `out`. Returns false (without a
/// diagnostic — callers decide whether a missing file is an error) when
/// the file cannot be opened or read.
[[nodiscard]] bool read_file(const std::string& path, std::string* out);

/// Appends `contents` to `path` (O_APPEND, created if missing) as a
/// single write() call, so concurrent tailing readers see each record
/// either completely or not at all — the fleet progress streams
/// (docs/OBSERVABILITY.md) append one '\n'-terminated JSONL record per
/// call. Non-durable like write_file (no fsync).
[[nodiscard]] bool append_file(const std::string& path,
                               const std::string& contents);

}  // namespace mecc
