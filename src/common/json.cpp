#include "common/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace mecc {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void JsonWriter::newline_indent() {
  out_.push_back('\n');
  out_.append(stack_.size() * static_cast<std::size_t>(indent_width_), ' ');
}

void JsonWriter::begin_element() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows "key": directly
  }
  if (stack_.empty()) return;  // document root
  Frame& top = stack_.back();
  if (top.members > 0) out_.push_back(',');
  ++top.members;
  newline_indent();
}

void JsonWriter::write_scalar(const std::string& token) {
  begin_element();
  out_ += token;
}

void JsonWriter::begin_object() {
  begin_element();
  out_.push_back('{');
  stack_.push_back({.is_array = false});
}

void JsonWriter::end_object() {
  assert(!stack_.empty() && !stack_.back().is_array);
  const bool had_members = stack_.back().members > 0;
  stack_.pop_back();
  if (had_members) newline_indent();
  out_.push_back('}');
}

void JsonWriter::begin_array() {
  begin_element();
  out_.push_back('[');
  stack_.push_back({.is_array = true});
}

void JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back().is_array);
  const bool had_members = stack_.back().members > 0;
  stack_.pop_back();
  if (had_members) newline_indent();
  out_.push_back(']');
}

void JsonWriter::key(const std::string& k) {
  assert(!stack_.empty() && !stack_.back().is_array && !pending_key_);
  Frame& top = stack_.back();
  if (top.members > 0) out_.push_back(',');
  ++top.members;
  newline_indent();
  out_ += json_escape(k);
  out_ += ": ";
  pending_key_ = true;
}

void JsonWriter::value(const std::string& v) { write_scalar(json_escape(v)); }

void JsonWriter::value(double v) { write_scalar(json_double(v)); }

void JsonWriter::value(std::uint64_t v) { write_scalar(std::to_string(v)); }

void JsonWriter::value(std::int64_t v) { write_scalar(std::to_string(v)); }

void JsonWriter::value(bool v) { write_scalar(v ? "true" : "false"); }

}  // namespace mecc
