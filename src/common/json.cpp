#include "common/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace mecc {

namespace {

// Length of the valid UTF-8 sequence starting at s[i], or 0 if the bytes
// at s[i] are not a valid sequence (bad lead byte, truncated or invalid
// continuation, overlong encoding, surrogate, > U+10FFFF).
std::size_t utf8_sequence_length(const std::string& s, std::size_t i) {
  const auto b = [&](std::size_t k) {
    return static_cast<unsigned char>(s[k]);
  };
  const unsigned char lead = b(i);
  std::size_t len;
  if (lead < 0x80) {
    return 1;
  } else if (lead >= 0xC2 && lead <= 0xDF) {
    len = 2;
  } else if (lead >= 0xE0 && lead <= 0xEF) {
    len = 3;
  } else if (lead >= 0xF0 && lead <= 0xF4) {
    len = 4;
  } else {
    return 0;  // continuation byte, overlong lead C0/C1, or > F4
  }
  if (i + len > s.size()) return 0;
  for (std::size_t k = 1; k < len; ++k) {
    if ((b(i + k) & 0xC0) != 0x80) return 0;
  }
  const unsigned char second = b(i + 1);
  if (lead == 0xE0 && second < 0xA0) return 0;  // overlong 3-byte
  if (lead == 0xED && second > 0x9F) return 0;  // UTF-16 surrogate
  if (lead == 0xF0 && second < 0x90) return 0;  // overlong 4-byte
  if (lead == 0xF4 && second > 0x8F) return 0;  // > U+10FFFF
  return len;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    switch (c) {
      case '"':
        out += "\\\"";
        continue;
      case '\\':
        out += "\\\\";
        continue;
      case '\b':
        out += "\\b";
        continue;
      case '\f':
        out += "\\f";
        continue;
      case '\n':
        out += "\\n";
        continue;
      case '\r':
        out += "\\r";
        continue;
      case '\t':
        out += "\\t";
        continue;
      default:
        break;
    }
    const unsigned char u = static_cast<unsigned char>(c);
    if (u < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", u);
      out += buf;
    } else if (u < 0x80) {
      out.push_back(c);
    } else {
      // Non-ASCII: pass valid UTF-8 through unchanged; a byte that is
      // not part of a valid sequence would make the whole document
      // unparseable, so escape it as its Latin-1 code point instead.
      const std::size_t len = utf8_sequence_length(s, i);
      if (len == 0) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", u);
        out += buf;
      } else {
        out.append(s, i, len);
        i += len - 1;
      }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void JsonWriter::newline_indent() {
  if (indent_width_ < 0) return;  // compact mode: no layout whitespace
  out_.push_back('\n');
  out_.append(stack_.size() * static_cast<std::size_t>(indent_width_), ' ');
}

void JsonWriter::begin_element() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows "key": directly
  }
  if (stack_.empty()) return;  // document root
  Frame& top = stack_.back();
  if (top.members > 0) out_.push_back(',');
  ++top.members;
  newline_indent();
}

void JsonWriter::write_scalar(const std::string& token) {
  begin_element();
  out_ += token;
}

void JsonWriter::begin_object() {
  begin_element();
  out_.push_back('{');
  stack_.push_back({.is_array = false});
}

void JsonWriter::end_object() {
  assert(!stack_.empty() && !stack_.back().is_array);
  const bool had_members = stack_.back().members > 0;
  stack_.pop_back();
  if (had_members) newline_indent();
  out_.push_back('}');
}

void JsonWriter::begin_array() {
  begin_element();
  out_.push_back('[');
  stack_.push_back({.is_array = true});
}

void JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back().is_array);
  const bool had_members = stack_.back().members > 0;
  stack_.pop_back();
  if (had_members) newline_indent();
  out_.push_back(']');
}

void JsonWriter::key(const std::string& k) {
  assert(!stack_.empty() && !stack_.back().is_array && !pending_key_);
  Frame& top = stack_.back();
  if (top.members > 0) out_.push_back(',');
  ++top.members;
  newline_indent();
  out_ += json_escape(k);
  out_ += indent_width_ < 0 ? ":" : ": ";
  pending_key_ = true;
}

void JsonWriter::value(const std::string& v) { write_scalar(json_escape(v)); }

void JsonWriter::value(double v) { write_scalar(json_double(v)); }

void JsonWriter::value(std::uint64_t v) { write_scalar(std::to_string(v)); }

void JsonWriter::value(std::int64_t v) { write_scalar(std::to_string(v)); }

void JsonWriter::value(bool v) { write_scalar(v ? "true" : "false"); }

}  // namespace mecc
