// Minimal streaming JSON writer with stable, deterministic output.
//
// Built for the machine-readable bench emissions (docs/STATS.md): the
// same data always serializes to the same bytes — keys are written in
// the order the caller provides (callers iterate sorted std::maps),
// doubles print with %.17g (round-trip exact), and indentation is
// fixed — so `diff` and scripts/compare_stats.py both work on the
// output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mecc {

/// Escapes and quotes `s` as a JSON string literal. Control characters
/// use the \uXXXX form; valid UTF-8 multi-byte sequences pass through
/// unchanged; bytes that are NOT part of a valid UTF-8 sequence are
/// escaped as \u00XX (their Latin-1 interpretation) so the output is
/// always valid JSON even for arbitrary byte strings.
[[nodiscard]] std::string json_escape(const std::string& s);

/// Formats a double as a JSON number token. %.17g guarantees the bits
/// round-trip; non-finite values (not representable in JSON) become
/// null.
[[nodiscard]] std::string json_double(double v);

class JsonWriter {
 public:
  /// indent_width >= 0: pretty-printed, one member per line. A negative
  /// indent_width selects compact mode — no newlines or indentation —
  /// which is what the JSONL metrics timeline and the trace emitter use
  /// (one record per line).
  explicit JsonWriter(int indent_width = 2) : indent_width_(indent_width) {}

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Object member key; must be followed by a value or container.
  void key(const std::string& k);

  void value(const std::string& v);
  void value(const char* v) { value(std::string(v)); }
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
  void value(bool v);

  /// The serialized document (valid once every container is closed).
  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  struct Frame {
    bool is_array = false;
    std::size_t members = 0;
  };

  /// Comma/newline/indent bookkeeping before an element or key.
  void begin_element();
  void write_scalar(const std::string& token);
  void newline_indent();

  std::string out_;
  std::vector<Frame> stack_;
  int indent_width_;
  bool pending_key_ = false;
};

}  // namespace mecc
