#include "common/profile.h"

#include <time.h>

#include <cstring>

#include "common/json.h"
#include "common/stats.h"

namespace mecc::prof {

std::uint64_t monotonic_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

HostProfiler& HostProfiler::instance() {
  static HostProfiler p;
  return p;
}

std::size_t HostProfiler::slot(const char* component, const char* phase) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = n_slots_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    if (std::strcmp(slots_[i].component, component) == 0 &&
        std::strcmp(slots_[i].phase, phase) == 0) {
      return i;
    }
  }
  if (n >= kMaxSlots) return kMaxSlots - 1;  // overflow bucket: last slot
  slots_[n].component = component;
  slots_[n].phase = phase;
  n_slots_.store(n + 1, std::memory_order_release);
  return n;
}

void HostProfiler::record_span(std::size_t slot, std::uint64_t t0_ns,
                               std::uint64_t dur_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  const Span s{static_cast<std::uint32_t>(slot), t0_ns, dur_ns};
  if (spans_.size() < kSpanRingCap) {
    spans_.push_back(s);
    return;
  }
  spans_[span_head_] = s;
  span_head_ = (span_head_ + 1) % spans_.size();
  ++spans_dropped_;
}

std::vector<PhaseStat> HostProfiler::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = n_slots_.load(std::memory_order_acquire);
  std::vector<PhaseStat> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Slot& s = slots_[i];
    PhaseStat p;
    p.component = s.component;
    p.phase = s.phase;
    p.calls = s.calls.load(std::memory_order_relaxed);
    p.timed = s.timed.load(std::memory_order_relaxed);
    p.measured_ns = s.ns.load(std::memory_order_relaxed);
    out.push_back(std::move(p));
  }
  return out;
}

void HostProfiler::export_stats(StatSet& out) const {
  for (const PhaseStat& p : report()) {
    if (p.calls == 0) continue;
    const std::string key = p.component + "." + p.phase;
    out.add(key + ".calls", p.calls);
    out.add(key + ".est_us", p.est_ns() / 1000);
  }
}

std::string HostProfiler::json() const {
  const std::vector<PhaseStat> stats = report();
  std::vector<Span> spans;
  std::uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    spans.reserve(spans_.size());
    for (std::size_t i = 0; i < spans_.size(); ++i) {
      spans.push_back(spans_[(span_head_ + i) % spans_.size()]);
    }
    dropped = spans_dropped_;
  }
  JsonWriter w(/*indent_width=*/-1);
  w.begin_object();
  w.key("schema");
  w.value("mecc-profile-v1");
  w.key("entries");
  w.begin_array();
  for (const PhaseStat& p : stats) {
    if (p.calls == 0) continue;
    w.begin_object();
    w.key("component");
    w.value(p.component);
    w.key("phase");
    w.value(p.phase);
    w.key("calls");
    w.value(p.calls);
    w.key("timed");
    w.value(p.timed);
    w.key("measured_ns");
    w.value(p.measured_ns);
    w.key("est_ns");
    w.value(p.est_ns());
    w.end_object();
  }
  w.end_array();
  // Perfetto-compatible host-time track: Chrome trace-event 'X' spans,
  // microsecond timestamps relative to the first span, one tid per
  // profiler slot (thread_name metadata names it component.phase).
  w.key("spans_dropped");
  w.value(dropped);
  w.key("traceEvents");
  w.begin_array();
  std::uint64_t t_base = 0;
  for (const Span& s : spans) {
    if (t_base == 0 || s.t0_ns < t_base) t_base = s.t0_ns;
  }
  bool slot_used[kMaxSlots] = {};
  for (const Span& s : spans) slot_used[s.slot] = true;
  for (std::size_t i = 0; i < stats.size(); ++i) {
    if (!slot_used[i]) continue;
    w.begin_object();
    w.key("name");
    w.value("thread_name");
    w.key("ph");
    w.value("M");
    w.key("pid");
    w.value(std::uint64_t{1});
    w.key("tid");
    w.value(static_cast<std::uint64_t>(i));
    w.key("args");
    w.begin_object();
    w.key("name");
    w.value("host." + stats[i].component + "." + stats[i].phase);
    w.end_object();
    w.end_object();
  }
  for (const Span& s : spans) {
    w.begin_object();
    w.key("name");
    if (s.slot < stats.size()) {
      w.value(stats[s.slot].component + "." + stats[s.slot].phase);
    } else {
      w.value("?");
    }
    w.key("cat");
    w.value("host");
    w.key("ph");
    w.value("X");
    w.key("ts");
    w.value((s.t0_ns - t_base) / 1000);
    w.key("dur");
    w.value(s.dur_ns / 1000);
    w.key("pid");
    w.value(std::uint64_t{1});
    w.key("tid");
    w.value(static_cast<std::uint64_t>(s.slot));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

void HostProfiler::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t n = n_slots_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    slots_[i].calls.store(0, std::memory_order_relaxed);
    slots_[i].timed.store(0, std::memory_order_relaxed);
    slots_[i].ns.store(0, std::memory_order_relaxed);
  }
  spans_.clear();
  span_head_ = 0;
  spans_dropped_ = 0;
}

}  // namespace mecc::prof
