// Host-side self-profiler (docs/OBSERVABILITY.md): scoped wall-time
// timers attributing *host* CPU time to component x phase (controller
// tick, fast-forward bound computation, codec batch walks, fleet
// shards). Strictly host-side observability — nothing here may feed a
// simulated stat, so --out JSON stays byte-identical whether the
// profiler is on or off.
//
// Cost model:
//   - disabled (default): coarse scopes are one relaxed atomic load and
//     an untaken branch; hot-loop scopes compile to nothing (the
//     kProfiled=false loop instantiation selects NullScopedTimer). No
//     clock is read anywhere.
//   - enabled: coarse scopes (one per run period / shard) read the
//     monotonic clock twice; hot per-iteration scopes use
//     SampledScopedTimer, whose untimed path is a thread_local counter
//     bump and an untaken branch — no atomics, no clock, not even the
//     enabled() load (the dispatch into the kProfiled loop already
//     tested it). 1 in kSampleStride calls reads the clock and accounts
//     the whole stride block, so calls/est_ns are stride-quantized
//     estimates.
//
// The profiler is process-global (like the console writer): bench
// binaries enable it via --profile=FILE and export the aggregate as a
// `profile.*` stat component plus a Perfetto-compatible host-time track.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace mecc {
class StatSet;
}

namespace mecc::prof {

/// Monotonic host time in nanoseconds (CLOCK_MONOTONIC).
[[nodiscard]] std::uint64_t monotonic_ns();

/// One component x phase aggregate. `timed` of the `calls` invocations
/// actually read the clock; est_ns() scales the measured time back up
/// to the full call count (est == measured for unsampled scopes).
struct PhaseStat {
  std::string component;
  std::string phase;
  std::uint64_t calls = 0;
  std::uint64_t timed = 0;
  std::uint64_t measured_ns = 0;
  [[nodiscard]] std::uint64_t est_ns() const {
    if (timed == 0) return 0;
    return static_cast<std::uint64_t>(
        static_cast<double>(measured_ns) *
        (static_cast<double>(calls) / static_cast<double>(timed)));
  }
};

/// Process-global host-time profiler. Slots are registered once per
/// call site (function-local static) and accounted with per-slot
/// atomics, so concurrent scopes (channel-parallel ticking, fleet
/// supervision) need no lock on the hot path.
class HostProfiler {
 public:
  static HostProfiler& instance();

  /// Fast global gate — one relaxed load, checked before any clock read.
  [[nodiscard]] static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }
  static void set_enabled(bool on) {
    enabled_flag().store(on, std::memory_order_relaxed);
  }

  /// Registers (or finds) the slot for one component x phase pair.
  /// Call once per site and cache the index (function-local static).
  [[nodiscard]] std::size_t slot(const char* component, const char* phase);

  void add(std::size_t slot, std::uint64_t ns) {
    Slot& s = slots_[slot];
    s.calls.fetch_add(1, std::memory_order_relaxed);
    s.timed.fetch_add(1, std::memory_order_relaxed);
    s.ns.fetch_add(ns, std::memory_order_relaxed);
  }
  /// Sampled-path accounting: one timed call stands in for a whole
  /// stride block, so `calls` advances by `stride` and stays an
  /// estimate quantized to the sampling stride.
  void add_sampled(std::size_t slot, std::uint64_t ns, std::uint64_t stride) {
    Slot& s = slots_[slot];
    s.calls.fetch_add(stride, std::memory_order_relaxed);
    s.timed.fetch_add(1, std::memory_order_relaxed);
    s.ns.fetch_add(ns, std::memory_order_relaxed);
  }

  /// Appends one span to the bounded host-time track (oldest dropped
  /// once full). Coarse scopes only — sampled scopes aggregate only.
  void record_span(std::size_t slot, std::uint64_t t0_ns,
                   std::uint64_t dur_ns);

  /// Aggregates, registration order (deterministic given call order).
  [[nodiscard]] std::vector<PhaseStat> report() const;

  /// Merges the aggregates into `out` as `<component>.<phase>.calls` /
  /// `.est_us` counters — the `profile.*` stat component. Host-side
  /// only: callers must never merge this into a --out snapshot.
  void export_stats(StatSet& out) const;

  /// Standalone profile report: schema-versioned JSON with the
  /// aggregate table plus a Chrome/Perfetto trace of the span ring
  /// (one host-time track per component, wall-clock microseconds).
  [[nodiscard]] std::string json() const;

  /// Drops all aggregates and spans (slots stay registered).
  void reset();

 private:
  HostProfiler() = default;

  struct Slot {
    const char* component = nullptr;
    const char* phase = nullptr;
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> timed{0};
    std::atomic<std::uint64_t> ns{0};
  };
  struct Span {
    std::uint32_t slot = 0;
    std::uint64_t t0_ns = 0;
    std::uint64_t dur_ns = 0;
  };

  [[nodiscard]] static std::atomic<bool>& enabled_flag() {
    static std::atomic<bool> flag{false};
    return flag;
  }

  static constexpr std::size_t kMaxSlots = 64;
  static constexpr std::size_t kSpanRingCap = 8192;

  Slot slots_[kMaxSlots];
  std::atomic<std::size_t> n_slots_{0};
  mutable std::mutex mu_;  // slot registration + span ring + readers
  std::vector<Span> spans_;
  std::size_t span_head_ = 0;
  std::uint64_t spans_dropped_ = 0;
};

/// RAII wall-time scope. One relaxed load when the profiler is off.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::size_t slot) : slot_(slot) {
    if (HostProfiler::enabled()) t0_ = monotonic_ns();
  }
  ~ScopedTimer() {
    if (t0_ == 0) return;
    const std::uint64_t dur = monotonic_ns() - t0_;
    HostProfiler& p = HostProfiler::instance();
    p.add(slot_, dur);
    p.record_span(slot_, t0_, dur);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::size_t slot_;
  std::uint64_t t0_ = 0;  // 0 = profiler off at entry
};

/// Sampled scope for per-iteration hot paths: 1 in kSampleStride calls
/// reads the clock and accounts the whole stride block (so calls and
/// est_ns are stride-quantized estimates); the other calls touch only a
/// thread_local counter — no shared atomics, no clock, keeping the
/// per-call overhead in the low single nanoseconds on paths entered
/// millions of times per run. `site_count` is per-thread, so every
/// thread samples its own stream independently. Never records spans.
///
/// There is deliberately NO enabled() check: callers reach this type
/// only through a dispatch that already tested the profiler (the
/// kProfiled template parameter of System::active_loop, selected once
/// per period via std::conditional_t). Constructing one while the
/// profiler is off still samples — route through NullScopedTimer
/// instead.
class SampledScopedTimer {
 public:
  // 1-in-512: the timed path pays two clock reads (~30 ns each) plus
  // three fetch_adds on slot atomics *shared across worker threads* —
  // at --jobs parallelism the cache-line contention, not the clock, is
  // what shows up (measured ~10% wall overhead at stride 64 on the
  // 28-benchmark sweep). Hot paths enter these scopes tens of millions
  // of times per run, so even 1/512 leaves tens of thousands of
  // samples per slot.
  static constexpr std::uint64_t kSampleStride = 512;

  SampledScopedTimer(std::size_t slot, std::uint64_t& site_count) {
    if (site_count++ % kSampleStride != 0) [[likely]] return;
    slot_ = slot;
    t0_ = monotonic_ns();
  }
  ~SampledScopedTimer() {
    if (t0_ == 0) [[likely]] return;
    HostProfiler::instance().add_sampled(slot_, monotonic_ns() - t0_,
                                         kSampleStride);
  }
  SampledScopedTimer(const SampledScopedTimer&) = delete;
  SampledScopedTimer& operator=(const SampledScopedTimer&) = delete;

 private:
  std::size_t slot_ = 0;  // only read when t0_ != 0
  std::uint64_t t0_ = 0;
};

/// No-op stand-in with SampledScopedTimer's constructor shape, for the
/// !kObserved instantiation of templated hot loops (std::conditional_t
/// selects it so the unobserved path compiles to nothing — not even the
/// enabled() load).
struct NullScopedTimer {
  NullScopedTimer(std::size_t, std::uint64_t&) {}
};

// Call-site helpers: register the slot once, then construct the scope.
// Two-level concat so __LINE__ expands before pasting.
//
//   MECC_PROF_SCOPE("sim", "run_period");
//   MECC_PROF_SAMPLED_SCOPE("memctrl", "tick");
#define MECC_PROF_CONCAT_INNER(a, b) a##b
#define MECC_PROF_CONCAT(a, b) MECC_PROF_CONCAT_INNER(a, b)

#define MECC_PROF_SCOPE(component, phase)                                  \
  static const std::size_t MECC_PROF_CONCAT(mecc_prof_slot_, __LINE__) =   \
      ::mecc::prof::HostProfiler::instance().slot(component, phase);       \
  ::mecc::prof::ScopedTimer MECC_PROF_CONCAT(mecc_prof_timer_, __LINE__)(  \
      MECC_PROF_CONCAT(mecc_prof_slot_, __LINE__))

#define MECC_PROF_SAMPLED_SCOPE(component, phase)                          \
  static const std::size_t MECC_PROF_CONCAT(mecc_prof_slot_, __LINE__) =   \
      ::mecc::prof::HostProfiler::instance().slot(component, phase);       \
  static thread_local std::uint64_t MECC_PROF_CONCAT(mecc_prof_count_,     \
                                                     __LINE__) = 0;        \
  ::mecc::prof::SampledScopedTimer MECC_PROF_CONCAT(mecc_prof_timer_,      \
                                                    __LINE__)(             \
      MECC_PROF_CONCAT(mecc_prof_slot_, __LINE__),                         \
      MECC_PROF_CONCAT(mecc_prof_count_, __LINE__))

}  // namespace mecc::prof
