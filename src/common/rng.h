// Deterministic random-number utilities.
//
// Every stochastic component in the simulator (workload generators, fault
// injection) draws from a seeded mt19937_64 so that all tests, examples and
// benches are exactly reproducible run to run.
#pragma once

#include <cstdint>
#include <random>

namespace mecc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, bound). `bound` must be > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) {
    return std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(engine_);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli trial with probability `p`.
  [[nodiscard]] bool chance(double p) { return next_double() < p; }

  /// Geometric inter-arrival sample with mean `mean`. Means <= 1 (where
  /// the success probability p = 1/mean would leave (0, 1], undefined
  /// behavior for std::geometric_distribution) degenerate to the minimum
  /// gap of 1 without touching the engine, so callers can sweep the mean
  /// across 1.0 without losing reproducibility on either side.
  ///
  /// The distribution object is cached across calls with the same mean:
  /// its param_type computes log(1 - p) at construction, which would
  /// otherwise cost a libm log() per sample on top of the one the draw
  /// itself needs. Callers cycle through a handful of means (MPKI phase
  /// multipliers), so caching the last one removes nearly all of them.
  /// Sampling math and engine consumption are unchanged, so the stream
  /// is bit-identical to the uncached version.
  [[nodiscard]] std::uint64_t next_geometric(double mean) {
    if (!(mean > 1.0)) return 1;  // also catches NaN
    if (mean != geom_mean_) {
      geom_mean_ = mean;
      // mean > 1 => p = 1/mean in (0, 1)
      geom_ = std::geometric_distribution<std::uint64_t>(1.0 / mean);
    }
    return geom_(engine_) + 1;
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::geometric_distribution<std::uint64_t> geom_;
  double geom_mean_ = 0.0;
};

}  // namespace mecc
