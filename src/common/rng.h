// Deterministic random-number utilities.
//
// Every stochastic component in the simulator (workload generators, fault
// injection) draws from a seeded mt19937_64 so that all tests, examples and
// benches are exactly reproducible run to run.
#pragma once

#include <cstdint>
#include <random>

namespace mecc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, bound). `bound` must be > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) {
    return std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(engine_);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli trial with probability `p`.
  [[nodiscard]] bool chance(double p) { return next_double() < p; }

  /// Geometric inter-arrival sample with mean `mean`. Means <= 1 (where
  /// the success probability p = 1/mean would leave (0, 1], undefined
  /// behavior for std::geometric_distribution) degenerate to the minimum
  /// gap of 1 without touching the engine, so callers can sweep the mean
  /// across 1.0 without losing reproducibility on either side.
  [[nodiscard]] std::uint64_t next_geometric(double mean) {
    if (!(mean > 1.0)) return 1;  // also catches NaN
    const double p = 1.0 / mean;  // mean > 1 => p in (0, 1)
    std::geometric_distribution<std::uint64_t> d(p);
    return d(engine_) + 1;
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mecc
