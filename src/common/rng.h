// Deterministic random-number utilities.
//
// Every stochastic component in the simulator (workload generators, fault
// injection) draws from a seeded mt19937_64 so that all tests, examples and
// benches are exactly reproducible run to run.
#pragma once

#include <cstdint>
#include <random>

namespace mecc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, bound). `bound` must be > 0.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) {
    return std::uniform_int_distribution<std::uint64_t>(0, bound - 1)(engine_);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Bernoulli trial with probability `p`.
  [[nodiscard]] bool chance(double p) { return next_double() < p; }

  /// Geometric inter-arrival sample with mean `mean` (>= 1).
  [[nodiscard]] std::uint64_t next_geometric(double mean) {
    std::geometric_distribution<std::uint64_t> d(1.0 / mean);
    return d(engine_) + 1;
  }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mecc
