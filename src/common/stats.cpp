#include "common/stats.h"

namespace mecc {

void StatSet::merge(const std::string& prefix, const StatSet& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[prefix + name] += value;
  }
  for (const auto& [name, value] : other.gauges_) {
    gauges_[prefix + name] = value;
  }
}

}  // namespace mecc
