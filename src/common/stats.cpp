#include "common/stats.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mecc {

// ---- QuantileSketch ----

std::int32_t QuantileSketch::bucket_index(double sample) {
  // Underflow bucket for everything without a positive log: negatives,
  // zeros, NaN. INT32_MIN sorts first in the map, so quantile() walks
  // it before any positive bucket.
  if (!(sample > 0.0)) return std::numeric_limits<std::int32_t>::min();
  int exp = 0;
  const double mantissa = std::frexp(sample, &exp);  // in [0.5, 1)
  // Sub-bucket within the octave: log2(mantissa) in [-1, 0).
  const double frac = std::log2(mantissa) + 1.0;  // in [0, 1)
  int sub = static_cast<int>(frac * kBucketsPerOctave);
  if (sub >= kBucketsPerOctave) sub = kBucketsPerOctave - 1;
  return static_cast<std::int32_t>(exp) * kBucketsPerOctave + sub;
}

double QuantileSketch::bucket_value(std::int32_t index) {
  if (index == std::numeric_limits<std::int32_t>::min()) return 0.0;
  // Geometric midpoint of [2^(i/32 - 1), 2^((i+1)/32 - 1)) scaled into
  // the bucket's octave: exp2 of the bucket's center log2.
  const double center =
      (static_cast<double>(index) + 0.5) / kBucketsPerOctave - 1.0;
  return std::exp2(center);
}

void QuantileSketch::record(double sample, std::uint64_t n) {
  if (n == 0) return;
  if (count_ == 0) {
    min_ = sample;
    max_ = sample;
  } else {
    if (sample < min_) min_ = sample;
    if (sample > max_) max_ = sample;
  }
  sum_ += sample * static_cast<double>(n);
  count_ += n;
  buckets_[bucket_index(sample)] += n;
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  sum_ += other.sum_;
  count_ += other.count_;
  for (const auto& [index, n] : other.buckets_) buckets_[index] += n;
}

double QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (!(q > 0.0)) return min();
  if (q >= 1.0) return max();
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (const auto& [index, n] : buckets_) {
    seen += n;
    if (seen >= rank) {
      // Clamp the representative into the observed range so a
      // single-bucket tail never reports beyond the exact extrema.
      const double v = bucket_value(index);
      return v < min_ ? min_ : (v > max_ ? max_ : v);
    }
  }
  return max();  // unreachable: ranks are <= count_
}

void QuantileSketch::restore(
    const std::map<std::int32_t, std::uint64_t>& buckets, std::uint64_t count,
    double sum, double min, double max) {
  buckets_ = buckets;
  count_ = count;
  sum_ = sum;
  min_ = min;
  max_ = max;
}

void Distribution::merge(const Distribution& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  if (other.min < min) min = other.min;
  if (other.max > max) max = other.max;
  sum += other.sum;
  count += other.count;
}

void StatSet::merge(const std::string& prefix, const StatSet& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[prefix + name] += value;
  }
  for (const auto& [name, value] : other.gauges_) {
    gauges_[prefix + name] = value;
  }
  for (const auto& [name, value] : other.dists_) {
    dists_[prefix + name].merge(value);
  }
}

void StatRegistry::register_component(std::string component,
                                      Provider provider) {
  assert(provider);
  for (const auto& [name, _] : providers_) {
    if (name == component) {
      // A duplicate would silently shadow the earlier provider's keys in
      // snapshot() merges — reject loudly in every build type, not just
      // with an assert that vanishes under NDEBUG.
      throw std::logic_error(
          "StatRegistry: duplicate stats component registration: '" +
          component + "'");
    }
  }
  providers_.emplace_back(std::move(component), std::move(provider));
}

StatSet StatRegistry::snapshot() const {
  StatSet merged;
  for (const auto& [name, provider] : providers_) {
    StatSet local;
    provider(local);
    merged.merge(name + ".", local);
  }
  return merged;
}

std::vector<std::string> StatRegistry::components() const {
  std::vector<std::string> names;
  names.reserve(providers_.size());
  for (const auto& [name, _] : providers_) names.push_back(name);
  return names;
}

}  // namespace mecc
