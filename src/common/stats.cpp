#include "common/stats.h"

#include <cassert>
#include <stdexcept>

namespace mecc {

void Distribution::merge(const Distribution& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  if (other.min < min) min = other.min;
  if (other.max > max) max = other.max;
  sum += other.sum;
  count += other.count;
}

void StatSet::merge(const std::string& prefix, const StatSet& other) {
  for (const auto& [name, value] : other.counters_) {
    counters_[prefix + name] += value;
  }
  for (const auto& [name, value] : other.gauges_) {
    gauges_[prefix + name] = value;
  }
  for (const auto& [name, value] : other.dists_) {
    dists_[prefix + name].merge(value);
  }
}

void StatRegistry::register_component(std::string component,
                                      Provider provider) {
  assert(provider);
  for (const auto& [name, _] : providers_) {
    if (name == component) {
      // A duplicate would silently shadow the earlier provider's keys in
      // snapshot() merges — reject loudly in every build type, not just
      // with an assert that vanishes under NDEBUG.
      throw std::logic_error(
          "StatRegistry: duplicate stats component registration: '" +
          component + "'");
    }
  }
  providers_.emplace_back(std::move(component), std::move(provider));
}

StatSet StatRegistry::snapshot() const {
  StatSet merged;
  for (const auto& [name, provider] : providers_) {
    StatSet local;
    provider(local);
    merged.merge(name + ".", local);
  }
  return merged;
}

std::vector<std::string> StatRegistry::components() const {
  std::vector<std::string> names;
  names.reserve(providers_.size());
  for (const auto& [name, _] : providers_) names.push_back(name);
  return names;
}

}  // namespace mecc
