// Lightweight named-counter / gauge registry used by every simulator
// component to expose its activity to the experiment runner.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace mecc {

/// A flat bag of named statistics. Components own a StatSet each; the
/// System merges them for reporting. Deliberately simple: counters are
/// monotonically increasing uint64, gauges are doubles set at will.
class StatSet {
 public:
  void add(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }
  void set_gauge(const std::string& name, double value) {
    gauges_[name] = value;
  }

  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  [[nodiscard]] double gauge(const std::string& name) const {
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const {
    return gauges_;
  }

  /// Adds all entries of `other` into this set, prefixing names.
  void merge(const std::string& prefix, const StatSet& other);

  void reset() {
    counters_.clear();
    gauges_.clear();
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
};

}  // namespace mecc
