// Lightweight named-counter / gauge / distribution registry used by
// every simulator component to expose its activity to the experiment
// runner and the machine-readable bench output (docs/STATS.md).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace mecc {

/// Running summary of a sampled quantity (queue depths, latencies).
/// Stores only the moments, never the samples, so recording is O(1) and
/// the summary is bit-deterministic for a deterministic sample stream.
struct Distribution {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  void record(double sample) {
    if (count == 0) {
      min = sample;
      max = sample;
    } else {
      if (sample < min) min = sample;
      if (sample > max) max = sample;
    }
    sum += sample;
    ++count;
  }

  /// Records the same sample `n` times in O(1). Bit-identical to calling
  /// record(sample) n times as long as every partial sum is exactly
  /// representable (integer-valued samples with sums below 2^53 — queue
  /// depths, per-state cycle counts), which is what the fast-forward
  /// bulk updates feed it.
  void record_n(double sample, std::uint64_t n) {
    if (n == 0) return;
    if (count == 0) {
      min = sample;
      max = sample;
    } else {
      if (sample < min) min = sample;
      if (sample > max) max = sample;
    }
    sum += sample * static_cast<double>(n);
    count += n;
  }

  /// Pools another summary into this one.
  void merge(const Distribution& other);

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  [[nodiscard]] bool operator==(const Distribution&) const = default;
};

/// A flat bag of named statistics. Components own a StatSet each; the
/// System merges them for reporting. Deliberately simple: counters are
/// monotonically increasing uint64, gauges are doubles set at will,
/// distributions are moment summaries (see Distribution).
class StatSet {
 public:
  void add(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }
  void set_gauge(const std::string& name, double value) {
    gauges_[name] = value;
  }
  void record(const std::string& name, double sample) {
    dists_[name].record(sample);
  }
  /// Installs a ready-made summary (components that keep a Distribution
  /// member for hot-path recording export it through here).
  void put_dist(const std::string& name, const Distribution& dist) {
    dists_[name] = dist;
  }

  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  [[nodiscard]] double gauge(const std::string& name) const {
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }
  [[nodiscard]] Distribution dist(const std::string& name) const {
    auto it = dists_.find(name);
    return it == dists_.end() ? Distribution{} : it->second;
  }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Distribution>& dists() const {
    return dists_;
  }

  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && dists_.empty();
  }

  /// Adds all entries of `other` into this set, prefixing names.
  /// Counters add, gauges overwrite, distributions pool.
  void merge(const std::string& prefix, const StatSet& other);

  void reset() {
    counters_.clear();
    gauges_.clear();
    dists_.clear();
  }

  [[nodiscard]] bool operator==(const StatSet&) const = default;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Distribution> dists_;
};

/// Hierarchical stats registry (ISSUE 2 tentpole). The System owns one;
/// each subsystem registers a named provider at construction and
/// snapshot() pulls every provider into one StatSet whose keys follow
/// the `component.stat` convention (docs/STATS.md). Providers run in
/// registration order and components must be distinct, so a snapshot of
/// a deterministic simulation is itself deterministic.
class StatRegistry {
 public:
  /// Fills the component's current statistics (names WITHOUT the
  /// component prefix; the registry prepends "<component>.").
  using Provider = std::function<void(StatSet&)>;

  /// Throws std::logic_error on a duplicate component name: a duplicate
  /// would silently shadow the earlier provider in snapshot().
  void register_component(std::string component, Provider provider);

  /// One merged view of every component, `component.stat`-keyed.
  [[nodiscard]] StatSet snapshot() const;

  /// Component names in registration order.
  [[nodiscard]] std::vector<std::string> components() const;

  void clear() { providers_.clear(); }

 private:
  std::vector<std::pair<std::string, Provider>> providers_;
};

}  // namespace mecc
