// Lightweight named-counter / gauge / distribution registry used by
// every simulator component to expose its activity to the experiment
// runner and the machine-readable bench output (docs/STATS.md).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace mecc {

/// Running summary of a sampled quantity (queue depths, latencies).
/// Stores only the moments, never the samples, so recording is O(1) and
/// the summary is bit-deterministic for a deterministic sample stream.
struct Distribution {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  void record(double sample) {
    if (count == 0) {
      min = sample;
      max = sample;
    } else {
      if (sample < min) min = sample;
      if (sample > max) max = sample;
    }
    sum += sample;
    ++count;
  }

  /// Records the same sample `n` times in O(1). Bit-identical to calling
  /// record(sample) n times as long as every partial sum is exactly
  /// representable (integer-valued samples with sums below 2^53 — queue
  /// depths, per-state cycle counts), which is what the fast-forward
  /// bulk updates feed it.
  void record_n(double sample, std::uint64_t n) {
    if (n == 0) return;
    if (count == 0) {
      min = sample;
      max = sample;
    } else {
      if (sample < min) min = sample;
      if (sample > max) max = sample;
    }
    sum += sample * static_cast<double>(n);
    count += n;
  }

  /// Pools another summary into this one.
  void merge(const Distribution& other);

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }

  [[nodiscard]] bool operator==(const Distribution&) const = default;
};

/// Bounded-memory quantile summary for population percentiles (the
/// fleet campaign's "P99.9 device exceeds X DUEs/year" claims,
/// docs/FLEET.md). Log-spaced histogram: every positive sample lands in
/// one of 32 sub-buckets per octave (relative bucket width ~2.2%), so
/// quantile() is exact to that relative error. Non-positive samples
/// share a dedicated underflow bucket reported as 0. Deterministic and
/// mergeable: buckets are a sorted map of counts, so merge order never
/// changes the result and equal sample multisets serialize identically
/// — which is what lets a resumed campaign reproduce an uninterrupted
/// aggregate byte for byte.
class QuantileSketch {
 public:
  /// Sub-buckets per power of two. 32 keeps the whole double range in
  /// ~2^16 distinct bucket indices while bounding relative error below
  /// 2^(1/32)-1 ~ 2.2%.
  static constexpr int kBucketsPerOctave = 32;

  void record(double sample, std::uint64_t n = 1);
  void merge(const QuantileSketch& other);

  /// Value at cumulative fraction q in [0, 1]: the representative value
  /// (geometric bucket midpoint) of the bucket containing the
  /// ceil(q * count)-th smallest sample. 0 on an empty sketch; q <= 0
  /// returns min(), q >= 1 returns max() (both exact, not bucketed).
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Sorted (bucket index, count) view for serialization; paired with
  /// restore() this round-trips the sketch exactly (plus the exact
  /// min/max/sum carried separately).
  [[nodiscard]] const std::map<std::int32_t, std::uint64_t>& buckets() const {
    return buckets_;
  }
  /// Rebuilds a sketch from serialized state (fleet checkpoint resume).
  void restore(const std::map<std::int32_t, std::uint64_t>& buckets,
               std::uint64_t count, double sum, double min, double max);

  [[nodiscard]] bool operator==(const QuantileSketch&) const = default;

 private:
  [[nodiscard]] static std::int32_t bucket_index(double sample);
  [[nodiscard]] static double bucket_value(std::int32_t index);

  std::map<std::int32_t, std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A flat bag of named statistics. Components own a StatSet each; the
/// System merges them for reporting. Deliberately simple: counters are
/// monotonically increasing uint64, gauges are doubles set at will,
/// distributions are moment summaries (see Distribution).
class StatSet {
 public:
  void add(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }
  void set_gauge(const std::string& name, double value) {
    gauges_[name] = value;
  }
  void record(const std::string& name, double sample) {
    dists_[name].record(sample);
  }
  /// Installs a ready-made summary (components that keep a Distribution
  /// member for hot-path recording export it through here).
  void put_dist(const std::string& name, const Distribution& dist) {
    dists_[name] = dist;
  }

  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  [[nodiscard]] double gauge(const std::string& name) const {
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }
  [[nodiscard]] Distribution dist(const std::string& name) const {
    auto it = dists_.find(name);
    return it == dists_.end() ? Distribution{} : it->second;
  }

  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Distribution>& dists() const {
    return dists_;
  }

  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && dists_.empty();
  }

  /// Adds all entries of `other` into this set, prefixing names.
  /// Counters add, gauges overwrite, distributions pool.
  void merge(const std::string& prefix, const StatSet& other);

  void reset() {
    counters_.clear();
    gauges_.clear();
    dists_.clear();
  }

  [[nodiscard]] bool operator==(const StatSet&) const = default;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Distribution> dists_;
};

/// Hierarchical stats registry (ISSUE 2 tentpole). The System owns one;
/// each subsystem registers a named provider at construction and
/// snapshot() pulls every provider into one StatSet whose keys follow
/// the `component.stat` convention (docs/STATS.md). Providers run in
/// registration order and components must be distinct, so a snapshot of
/// a deterministic simulation is itself deterministic.
class StatRegistry {
 public:
  /// Fills the component's current statistics (names WITHOUT the
  /// component prefix; the registry prepends "<component>.").
  using Provider = std::function<void(StatSet&)>;

  /// Throws std::logic_error on a duplicate component name: a duplicate
  /// would silently shadow the earlier provider in snapshot().
  void register_component(std::string component, Provider provider);

  /// One merged view of every component, `component.stat`-keyed.
  [[nodiscard]] StatSet snapshot() const;

  /// Component names in registration order.
  [[nodiscard]] std::vector<std::string> components() const;

  void clear() { providers_.clear(); }

 private:
  std::vector<std::pair<std::string, Provider>> providers_;
};

}  // namespace mecc
