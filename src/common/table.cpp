#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <sstream>

namespace mecc {

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TextTable::sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

std::string TextTable::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      out << c << std::string(widths[i] - c.size() + 2, ' ');
    }
    out << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

namespace {

std::mutex& console_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

void console_write(const std::string& text) {
  const std::lock_guard<std::mutex> lock(console_mutex());
  std::fflush(stderr);
  std::fwrite(text.data(), 1, text.size(), stdout);
  std::fflush(stdout);
}

void console_write_err(const std::string& text) {
  const std::lock_guard<std::mutex> lock(console_mutex());
  std::fflush(stdout);
  std::fwrite(text.data(), 1, text.size(), stderr);
  std::fflush(stderr);
}

void TextTable::print(const std::string& title) const {
  const std::string banner(title.size(), '=');
  console_write("\n" + title + "\n" + banner + "\n\n" + render());
}

std::string ascii_bar(double value, double max_value, std::size_t width) {
  if (max_value <= 0.0) return std::string();
  double frac = std::clamp(value / max_value, 0.0, 1.0);
  const auto n = static_cast<std::size_t>(frac * static_cast<double>(width));
  return std::string(n, '#');
}

}  // namespace mecc
