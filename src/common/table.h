// Plain-text table formatting for the bench harnesses.
//
// Every bench binary regenerates one of the paper's tables or figures as a
// text table; this helper keeps their output uniform and readable.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mecc {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);
  /// Scientific notation, e.g. "1.8e-02".
  static std::string sci(double v, int precision = 1);
  /// Percent with sign, e.g. "-10.2%".
  static std::string pct(double fraction, int precision = 1);

  /// Renders with aligned columns.
  [[nodiscard]] std::string render() const;

  /// Renders and writes to stdout with a title banner.
  void print(const std::string& title) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a simple horizontal ASCII bar (for figure-style benches).
[[nodiscard]] std::string ascii_bar(double value, double max_value,
                                    std::size_t width = 40);

// ---- single console writer ----
//
// Every human-readable block (tables, banners) and the parallel
// runner's stderr progress lines serialize through one process-wide
// lock, with the *other* stream flushed first and the written stream
// flushed after, so stdout tables and --jobs>1 stderr progress cannot
// tear into each other when both are redirected to one file. The
// --out= JSON emission writes through a separate ofstream and is never
// touched by either.

/// Writes a block to stdout under the console lock.
void console_write(const std::string& text);
/// Writes a block to stderr under the console lock.
void console_write_err(const std::string& text);

}  // namespace mecc
