#include "common/trace.h"

#include <algorithm>
#include <cstdio>

#include "common/fsio.h"
#include "common/json.h"

namespace mecc::tracing {

const char* category_name(Category c) {
  switch (c) {
    case Category::kDram:
      return "dram";
    case Category::kBank:
      return "bank";
    case Category::kPower:
      return "power";
    case Category::kRefresh:
      return "refresh";
    case Category::kQueue:
      return "queue";
    case Category::kMorph:
      return "morph";
    case Category::kSmd:
      return "smd";
    case Category::kDue:
      return "due";
    case Category::kInject:
      return "inject";
    case Category::kEpoch:
      return "epoch";
  }
  return "?";
}

std::optional<std::uint32_t> parse_categories(const std::string& csv) {
  if (csv.empty() || csv == "all") return kAllCategories;
  std::uint32_t mask = 0;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = std::min(csv.find(',', pos), csv.size());
    const std::string name = csv.substr(pos, comma - pos);
    bool found = false;
    for (std::size_t i = 0; i < kNumCategories; ++i) {
      const auto c = static_cast<Category>(i);
      if (name == category_name(c)) {
        mask |= category_bit(c);
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
    pos = comma + 1;
    if (comma == csv.size()) break;
  }
  return mask;
}

std::string track_name(std::uint8_t track) {
  switch (track) {
    case kTrackEpoch:
      return "sim.epoch";
    case kTrackDramCmd:
      return "dram.cmd";
    case kTrackPower:
      return "dram.power";
    case kTrackRefresh:
      return "memctrl.refresh";
    case kTrackQueues:
      return "memctrl.queues";
    case kTrackMorph:
      return "mecc.morph";
    case kTrackSmd:
      return "mecc.smd";
    case kTrackErrors:
      return "errors";
    default:
      return "dram.bank" + std::to_string(track - kTrackBankBase);
  }
}

Tracer::Tracer(const TraceConfig& config) : config_(config) {
  if (config_.limit == 0) config_.limit = 1;
  // Preallocate up to a modest cap; bigger rings grow on demand so a
  // huge --trace-limit does not commit memory it may never use.
  ring_.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(config_.limit, 1u << 16)));
}

void Tracer::push(const TraceEvent& e) {
  if (ring_.size() < config_.limit) {
    ring_.push_back(e);
    return;
  }
  // Ring full: overwrite the oldest retained event.
  ring_[head_] = e;
  head_ = (head_ + 1) % ring_.size();
  ++dropped_;
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::string Tracer::json() const {
  // Chronological append order (ring start at head_), then a stable sort
  // by timestamp: 'X' complete events are recorded at span *end* with an
  // earlier ts, and Perfetto expects per-track monotone timestamps.
  std::vector<const TraceEvent*> events;
  events.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    events.push_back(&ring_[(head_ + i) % ring_.size()]);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     return a->ts < b->ts;
                   });

  bool track_used[256] = {};
  for (const TraceEvent* e : events) track_used[e->track] = true;

  JsonWriter w(/*indent_width=*/-1);
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ns");
  w.key("otherData");
  w.begin_object();
  w.key("clock");
  w.value("cpu-cycles");  // 1 trace time unit == 1 CPU cycle (1.6 GHz)
  w.key("dropped_events");
  w.value(dropped_);
  w.end_object();
  w.key("traceEvents");
  w.begin_array();
  // Track-name metadata first (Perfetto renders these as thread names).
  for (int t = 0; t < 256; ++t) {
    if (!track_used[t]) continue;
    w.begin_object();
    w.key("name");
    w.value("thread_name");
    w.key("ph");
    w.value("M");
    w.key("pid");
    w.value(std::uint64_t{0});
    w.key("tid");
    w.value(static_cast<std::uint64_t>(t));
    w.key("args");
    w.begin_object();
    w.key("name");
    w.value(track_name(static_cast<std::uint8_t>(t)));
    w.end_object();
    w.end_object();
  }
  for (const TraceEvent* e : events) {
    w.begin_object();
    w.key("name");
    w.value(e->name);
    w.key("cat");
    w.value(category_name(e->cat));
    w.key("ph");
    w.value(std::string(1, e->ph));
    w.key("ts");
    w.value(static_cast<std::uint64_t>(e->ts));
    if (e->ph == 'X') {
      w.key("dur");
      w.value(static_cast<std::uint64_t>(e->dur));
    }
    w.key("pid");
    w.value(std::uint64_t{0});
    w.key("tid");
    w.value(static_cast<std::uint64_t>(e->track));
    if (e->ph == 'i') {
      w.key("s");
      w.value("t");
    }
    if (e->ph == 'C' || e->arg_name[0] != nullptr) {
      w.key("args");
      w.begin_object();
      if (e->ph == 'C') {
        w.key("value");
        w.value(e->value);
      }
      for (int a = 0; a < 2; ++a) {
        if (e->arg_name[a] == nullptr) continue;
        w.key(e->arg_name[a]);
        w.value(e->arg_val[a]);
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::string out = w.str();
  out.push_back('\n');
  return out;
}

bool Tracer::write(const std::string& path) const {
  // Durable emission (docs/FLEET.md): a crash mid-write leaves either
  // no trace file or a complete one, never a truncated JSON document.
  return atomic_write_file(path, json(), "--trace");
}

MetricsSampler::MetricsSampler(const MetricsConfig& config,
                               const StatRegistry* registry)
    : config_(config), registry_(registry) {
  if (config_.interval == 0) config_.interval = 1;
  next_ = config_.interval;  // first window boundary
  // Header line: lets consumers validate the schema and recover the
  // window length without out-of-band context.
  JsonWriter w(/*indent_width=*/-1);
  w.begin_object();
  w.key("schema");
  w.value("mecc-metrics-v1");
  w.key("interval");
  w.value(static_cast<std::uint64_t>(config_.interval));
  w.key("keys");
  w.begin_array();
  for (const auto& k : config_.keys) w.value(k);
  w.end_array();
  w.end_object();
  out_ = w.str();
  out_.push_back('\n');
}

bool MetricsSampler::selected(const std::string& key) const {
  if (config_.keys.empty()) return true;
  for (const auto& sel : config_.keys) {
    if (key == sel) return true;
    // Component selector: "dram" matches "dram.reads".
    if (key.size() > sel.size() && key[sel.size()] == '.' &&
        key.compare(0, sel.size(), sel) == 0) {
      return true;
    }
  }
  return false;
}

void MetricsSampler::sample(Cycle now, const char* phase) {
  const StatSet snap = registry_->snapshot();
  JsonWriter w(/*indent_width=*/-1);
  w.begin_object();
  w.key("cycle");
  w.value(static_cast<std::uint64_t>(now));
  w.key("window");
  w.value(static_cast<std::uint64_t>(now / config_.interval));
  w.key("phase");
  w.value(phase);
  w.key("counters");
  w.begin_object();
  for (const auto& [name, v] : snap.counters()) {
    if (!selected(name)) continue;
    w.key(name);
    w.value(v);
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, v] : snap.gauges()) {
    if (!selected(name)) continue;
    w.key(name);
    w.value(v);
  }
  w.end_object();
  w.key("dists");
  w.begin_object();
  for (const auto& [name, d] : snap.dists()) {
    if (!selected(name)) continue;
    w.key(name);
    w.begin_object();
    w.key("count");
    w.value(d.count);
    w.key("sum");
    w.value(d.sum);
    w.key("min");
    w.value(d.min);
    w.key("max");
    w.value(d.max);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  out_ += w.str();
  out_.push_back('\n');
  ++samples_;
  next_ = (now / config_.interval + 1) * config_.interval;
}

bool MetricsSampler::write(const std::string& path) const {
  // Durable emission, same contract as Tracer::write.
  return atomic_write_file(path, out_, "--metrics-out");
}

}  // namespace mecc::tracing
