// Simulator-wide observability (docs/OBSERVABILITY.md): a zero-cost-
// when-disabled, ring-buffered, cycle-stamped structured event tracer
// emitting Chrome/Perfetto trace-event JSON, plus a windowed metrics
// sampler that snapshots StatRegistry keys on a fixed cycle grid into a
// JSONL timeline.
//
// Determinism contract: every emitted byte is a function of simulated
// state only (cycle stamps, counters, static names) — no wall clock, no
// pointers — so traces and timelines are byte-identical across
// --jobs settings and --fast-forward modes (the observability tests
// enforce this).
//
// Cost contract: components hold a `Tracer*` that is null unless the
// run was started with --trace; every hook is a single null-pointer
// check when tracing is off. With tracing on, per-event cost is one
// bounds check and a POD store into a preallocated ring.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace mecc::tracing {

/// Per-component event categories (--trace-categories=LIST filters on
/// these names; docs/OBSERVABILITY.md lists the taxonomy).
enum class Category : std::uint8_t {
  kDram,     // DRAM command stream: ACT/RD/WR/PRE/REF, PD/SR entry+exit
  kBank,     // per-bank row-open spans
  kPower,    // device power-state residency spans
  kRefresh,  // refresh-rate (divider) transitions
  kQueue,    // controller queue-occupancy counters
  kMorph,    // MECC morphs: downgrades, ECC-Upgrade walks, forced upgrades
  kSmd,      // SMD quantum checks and downgrade-enable transitions
  kDue,      // DUE-ladder events: DUEs, retries, escalations
  kInject,   // fault-campaign injections and shadow CE/DUE classifications
  kEpoch,    // lifecycle boundaries: active periods, idle stays, samples
};
inline constexpr std::size_t kNumCategories = 10;
inline constexpr std::uint32_t kAllCategories =
    (1u << kNumCategories) - 1;

[[nodiscard]] const char* category_name(Category c);

[[nodiscard]] constexpr std::uint32_t category_bit(Category c) {
  return 1u << static_cast<std::uint32_t>(c);
}

/// Parses a comma-separated category list ("dram,power,epoch"); "all"
/// or "" selects every category. nullopt on an unknown name.
[[nodiscard]] std::optional<std::uint32_t> parse_categories(
    const std::string& csv);

// Fixed Perfetto track (tid) assignments. Banks get their own tracks at
// kTrackBankBase + bank so row-open spans do not overlap.
inline constexpr std::uint8_t kTrackEpoch = 0;
inline constexpr std::uint8_t kTrackDramCmd = 1;
inline constexpr std::uint8_t kTrackPower = 2;
inline constexpr std::uint8_t kTrackRefresh = 3;
inline constexpr std::uint8_t kTrackQueues = 4;
inline constexpr std::uint8_t kTrackMorph = 5;
inline constexpr std::uint8_t kTrackSmd = 6;
inline constexpr std::uint8_t kTrackErrors = 7;
inline constexpr std::uint8_t kTrackBankBase = 8;

[[nodiscard]] std::string track_name(std::uint8_t track);

struct TraceConfig {
  /// Master switch; a System only constructs a Tracer when set.
  bool enabled = false;
  /// Destination file ("" = in-memory only, e.g. tests via
  /// System::tracer()->json()).
  std::string path;
  /// Bitmask of enabled categories (category_bit / parse_categories).
  std::uint32_t categories = kAllCategories;
  /// Ring capacity in events; the OLDEST events are overwritten once the
  /// ring is full and surface as the dropped() count
  /// (errors.trace_dropped).
  std::uint64_t limit = 1u << 20;
};

/// One recorded event. POD with static-string names only: the hot path
/// never allocates, and the ring is a flat vector.
struct TraceEvent {
  Cycle ts = 0;         // CPU cycles (1 trace "us" == 1 cycle)
  Cycle dur = 0;        // 'X' complete events only
  const char* name = "";
  const char* arg_name[2] = {nullptr, nullptr};
  std::uint64_t arg_val[2] = {0, 0};
  double value = 0.0;   // 'C' counter events only
  Category cat = Category::kEpoch;
  char ph = 'i';        // 'i' instant, 'X' complete, 'C' counter
  std::uint8_t track = kTrackEpoch;
};

class Tracer {
 public:
  explicit Tracer(const TraceConfig& config);

  [[nodiscard]] bool enabled(Category c) const {
    return (config_.categories & category_bit(c)) != 0;
  }

  /// Simulation clock for emitters without a cycle argument of their own
  /// (DuePolicy, ShadowMemory, the MECC engine's access hooks). The
  /// System keeps it current.
  void set_now(Cycle now) { now_ = now; }
  [[nodiscard]] Cycle now() const { return now_; }

  void instant(Category cat, std::uint8_t track, const char* name, Cycle ts,
               const char* a0 = nullptr, std::uint64_t v0 = 0,
               const char* a1 = nullptr, std::uint64_t v1 = 0) {
    if (!enabled(cat)) return;
    push({.ts = ts, .name = name, .arg_name = {a0, a1},
          .arg_val = {v0, v1}, .cat = cat, .ph = 'i', .track = track});
  }

  void complete(Category cat, std::uint8_t track, const char* name, Cycle ts,
                Cycle dur, const char* a0 = nullptr, std::uint64_t v0 = 0) {
    if (!enabled(cat)) return;
    push({.ts = ts, .dur = dur, .name = name, .arg_name = {a0, nullptr},
          .arg_val = {v0, 0}, .cat = cat, .ph = 'X', .track = track});
  }

  void counter(Category cat, std::uint8_t track, const char* name, Cycle ts,
               double value) {
    if (!enabled(cat)) return;
    push({.ts = ts, .name = name, .value = value, .cat = cat, .ph = 'C',
          .track = track});
  }

  /// Events overwritten by the ring (--trace-limit); surfaced by the
  /// System as errors.trace_dropped.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Events currently retained in the ring.
  [[nodiscard]] std::size_t recorded() const { return ring_.size(); }

  /// The full Chrome trace-event document ({"traceEvents": [...]}),
  /// events in chronological order plus track-name metadata. Stable:
  /// equal event streams serialize to equal bytes.
  [[nodiscard]] std::string json() const;

  /// The retained events in chronological append order (ring unrolled
  /// from the oldest retained event). The counter-audit layer
  /// (sim/stat_audit.h) replays these against StatRegistry snapshots;
  /// audits require dropped() == 0 to see the complete stream.
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// Writes json() to `path` ("-" = stdout). False with a stderr
  /// diagnostic when the file cannot be written.
  [[nodiscard]] bool write(const std::string& path) const;

  [[nodiscard]] const TraceConfig& config() const { return config_; }

 private:
  void push(const TraceEvent& e);

  TraceConfig config_;
  std::vector<TraceEvent> ring_;
  std::size_t head_ = 0;  // oldest retained event once the ring wrapped
  std::uint64_t dropped_ = 0;
  Cycle now_ = 0;
};

// ---- windowed metrics timeline (--metrics-out / --metrics-interval) ----

struct MetricsConfig {
  bool enabled = false;
  /// Destination file ("" = in-memory only, e.g. tests via
  /// System::metrics()->jsonl()).
  std::string path;
  /// Window length in CPU cycles; samples land on exact multiples.
  Cycle interval = 1'000'000;
  /// Key selectors: a selector matches a `component.stat` key exactly or
  /// selects a whole component ("dram" matches every dram.*). Empty =
  /// every registered key. --list-stats enumerates the candidates.
  std::vector<std::string> keys;
};

/// Snapshots selected StatRegistry keys into one JSONL line per sample.
/// Fired by the System at every window boundary reached while active
/// (the fast-forward skip bound includes next_sample(), so boundaries
/// are hit exactly in both --fast-forward modes) plus the idle-entry /
/// wake / end-of-run edges. docs/OBSERVABILITY.md documents the window
/// semantics.
class MetricsSampler {
 public:
  MetricsSampler(const MetricsConfig& config, const StatRegistry* registry);

  /// The next window boundary (absolute cycle). run_period samples when
  /// now_ reaches it; fast_forward_active never skips past it.
  [[nodiscard]] Cycle next_sample() const { return next_; }

  /// Takes one snapshot stamped `now`, labeled `phase` ("active",
  /// "idle_enter", "wake", "final"), and advances next_sample() to the
  /// first window boundary strictly after `now`.
  void sample(Cycle now, const char* phase);

  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  [[nodiscard]] const std::string& jsonl() const { return out_; }

  /// Writes jsonl() to `path` ("-" = stdout). False with a stderr
  /// diagnostic on failure.
  [[nodiscard]] bool write(const std::string& path) const;

  [[nodiscard]] const MetricsConfig& config() const { return config_; }

 private:
  [[nodiscard]] bool selected(const std::string& key) const;

  MetricsConfig config_;
  const StatRegistry* registry_;
  Cycle next_;
  std::uint64_t samples_ = 0;
  std::string out_;
};

}  // namespace mecc::tracing
