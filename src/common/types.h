// Core scalar types shared by every subsystem.
#pragma once

#include <cstdint>

namespace mecc {

/// CPU-clock cycle count. The whole simulation is driven in CPU cycles
/// (1.6 GHz); the DRAM bus (200 MHz) ticks every kCpuCyclesPerMemCycle.
using Cycle = std::uint64_t;

/// Physical byte address into the simulated DRAM space.
using Address = std::uint64_t;

/// Retired-instruction count.
using InstCount = std::uint64_t;

/// Ratio of CPU clock (1.6 GHz) to memory bus clock (200 MHz).
inline constexpr Cycle kCpuCyclesPerMemCycle = 8;

/// CPU frequency in Hz (Table II: in-order core at 1.6 GHz).
inline constexpr double kCpuFreqHz = 1.6e9;

/// Memory bus frequency in Hz (Table II: 200 MHz DDR).
inline constexpr double kMemFreqHz = 200.0e6;

/// Cache-line size in bytes (Table II).
inline constexpr std::uint32_t kLineBytes = 64;

/// Simulated main-memory capacity in bytes (Table II: 1 GB LPDDR).
inline constexpr std::uint64_t kMemoryBytes = 1ull << 30;

/// Number of 64 B lines in the 1 GB memory ("16 million lines", paper S III).
inline constexpr std::uint64_t kMemoryLines = kMemoryBytes / kLineBytes;

/// Convert a CPU-cycle count to seconds.
[[nodiscard]] constexpr double cycles_to_seconds(Cycle c) {
  return static_cast<double>(c) / kCpuFreqHz;
}

/// Convert seconds to CPU cycles (rounded down).
[[nodiscard]] constexpr Cycle seconds_to_cycles(double s) {
  return static_cast<Cycle>(s * kCpuFreqHz);
}

}  // namespace mecc
