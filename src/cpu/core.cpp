#include "cpu/core.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace mecc::cpu {

InOrderCore::InOrderCore(const CoreConfig& config, trace::TraceSource& gen,
                         IssueRead issue_read, IssueWrite issue_write)
    : config_(config),
      gen_(gen),
      issue_read_(std::move(issue_read)),
      issue_write_(std::move(issue_write)) {
  assert(config_.base_ipc > 0.0 &&
         config_.base_ipc <= static_cast<double>(config_.width));
  credit_rate_ = static_cast<std::uint64_t>(
      std::llround(config_.base_ipc * static_cast<double>(kCreditOne)));
  credit_rate_ = std::min(credit_rate_, kCreditOne * config_.width);
  assert(credit_rate_ > 0);
}

void InOrderCore::fetch_next_record() {
  current_ = gen_.next();
  gap_remaining_ = current_.gap;
  have_record_ = true;
}

void InOrderCore::on_read_data(std::uint64_t /*tag*/) {
  assert(waiting_for_data_);
  waiting_for_data_ = false;
  // The load itself retires with its data.
  ++retired_;
  have_record_ = false;
}

void InOrderCore::tick_active() {
  ++cycles_;
  if (!have_record_) fetch_next_record();

  // Retry memory issues that found the controller queues full.
  if (read_pending_issue_) {
    if (issue_read_(current_.line_addr, next_tag_)) {
      ++next_tag_;
      ++reads_issued_;
      read_pending_issue_ = false;
      waiting_for_data_ = true;
    } else {
      ++stall_cycles_;
    }
    return;
  }
  if (write_pending_issue_) {
    if (issue_write_(current_.line_addr)) {
      ++writes_issued_;
      ++retired_;  // the store retires on issue
      write_pending_issue_ = false;
      have_record_ = false;
    } else {
      ++stall_cycles_;
      return;
    }
    if (!have_record_) fetch_next_record();
  }

  // Retire non-memory instructions at base_ipc, at most `width` per cycle.
  credit_ += credit_rate_;
  std::uint32_t retired_this_cycle = 0;
  while (credit_ >= kCreditOne && gap_remaining_ > 0 &&
         retired_this_cycle < config_.width) {
    credit_ -= kCreditOne;
    --gap_remaining_;
    ++retired_;
    ++retired_this_cycle;
  }
  // Credit does not bank beyond one cycle's retire width.
  credit_ = std::min(credit_, kCreditOne * config_.width);
  if (gap_remaining_ > 0) return;

  // The memory instruction is at the head: issue it.
  if (current_.is_write) {
    if (issue_write_(current_.line_addr)) {
      ++writes_issued_;
      ++retired_;
      have_record_ = false;
    } else {
      write_pending_issue_ = true;
    }
  } else {
    if (issue_read_(current_.line_addr, next_tag_)) {
      ++next_tag_;
      ++reads_issued_;
      waiting_for_data_ = true;
    } else {
      read_pending_issue_ = true;
    }
  }
}

InOrderCore::GapSim InOrderCore::simulate_gap(Cycle max_cycles,
                                              InstCount inst_budget) const {
  GapSim s{.credit = credit_, .gap_remaining = gap_remaining_};

  while (s.advanced < max_cycles) {
    if (s.credit < kCreditOne) {
      // Closed form: with less than one banked instruction the width
      // cap cannot bind mid-gap (per cycle n = (credit + rate) >> 32
      // <= width because rate <= width), so k cycles accumulate exactly
      //   retired(k) = (credit + k*rate) >> 32,
      //   credit(k)  = (credit + k*rate) mod 2^32,
      // bit-identical to k per-cycle retire loops (each loop subtracts
      // whole kCreditOne units — exact integer arithmetic throughout).
      // Stop with cumulative retire <= min(gap, budget) - 1: the cycle
      // that closes the gap issues the memory access and must run under
      // tick(); the one that reaches the budget stays with run_period.
      std::uint64_t cap = std::min<std::uint64_t>(s.gap_remaining - 1,
                                                  inst_budget - 1);
      cap = std::min<std::uint64_t>(cap, 1ull << 30);  // overflow guard
      std::uint64_t k = ((cap + 1) << kCreditFracBits) - s.credit - 1;
      k /= credit_rate_;
      k = std::min<std::uint64_t>(k, max_cycles - s.advanced);
      if (k == 0) break;
      const std::uint64_t total = s.credit + k * credit_rate_;
      const std::uint64_t insts = total >> kCreditFracBits;
      s.credit = total & (kCreditOne - 1);
      s.advanced += k;
      s.retired += insts;
      s.gap_remaining -= static_cast<std::uint32_t>(insts);
      inst_budget -= insts;
      continue;  // k was capacity-limited; the recompute yields k == 0
    }

    // Banked-credit spill (credit >= 1.0 right after an issue cycle's
    // width clamp, where the cap can bind): replicate tick()'s retire
    // loop op for op, committing a cycle only when it neither closes
    // the gap nor crosses the budget. Each spill cycle either drops the
    // credit (rate < width: toward the closed form above) or leaves it
    // fixed (rate == width), which bulk-repeats below.
    const std::uint64_t before = s.credit;
    std::uint64_t c = s.credit + credit_rate_;
    std::uint32_t n = 0;
    std::uint32_t g = s.gap_remaining;
    while (c >= kCreditOne && g > 0 && n < config_.width) {
      c -= kCreditOne;
      --g;
      ++n;
    }
    if (g == 0) break;  // this cycle would issue the memory access
    if (static_cast<InstCount>(n) >= inst_budget) break;
    s.credit = std::min(c, kCreditOne * config_.width);
    s.gap_remaining = g;
    s.retired += n;
    inst_budget -= n;
    ++s.advanced;
    if (s.credit == before && n > 0) {
      // Fixed point: every further cycle is identical. Bulk-repeat.
      std::uint64_t k = max_cycles - s.advanced;
      k = std::min<std::uint64_t>(
          k, (static_cast<std::uint64_t>(s.gap_remaining) - 1) / n);
      k = std::min<std::uint64_t>(k, (inst_budget - 1) / n);
      const std::uint64_t insts = k * n;
      s.advanced += k;
      s.retired += insts;
      s.gap_remaining -= static_cast<std::uint32_t>(insts);
      inst_budget -= insts;
    }
  }
  return s;
}

Cycle InOrderCore::advance_gap(Cycle max_cycles, InstCount inst_budget) {
  assert(in_pure_gap());
  const GapSim s = simulate_gap(max_cycles, inst_budget);
  credit_ = s.credit;
  gap_remaining_ = s.gap_remaining;
  cycles_ += s.advanced;
  retired_ += s.retired;
  return s.advanced;
}

Cycle InOrderCore::gap_cycles_bound(Cycle max_cycles,
                                    InstCount inst_budget) const {
  assert(in_pure_gap());
  return simulate_gap(max_cycles, inst_budget).advanced;
}

}  // namespace mecc::cpu
