#include "cpu/core.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace mecc::cpu {

InOrderCore::InOrderCore(const CoreConfig& config, trace::TraceSource& gen,
                         IssueRead issue_read, IssueWrite issue_write)
    : config_(config),
      gen_(gen),
      issue_read_(std::move(issue_read)),
      issue_write_(std::move(issue_write)) {
  assert(config_.base_ipc > 0.0 &&
         config_.base_ipc <= static_cast<double>(config_.width));
}

void InOrderCore::fetch_next_record() {
  current_ = gen_.next();
  gap_remaining_ = current_.gap;
  have_record_ = true;
}

void InOrderCore::on_read_data(std::uint64_t /*tag*/) {
  assert(waiting_for_data_);
  waiting_for_data_ = false;
  // The load itself retires with its data.
  ++retired_;
  have_record_ = false;
}

void InOrderCore::tick() {
  ++cycles_;
  if (waiting_for_data_) {
    ++stall_cycles_;
    return;
  }
  if (!have_record_) fetch_next_record();

  // Retry memory issues that found the controller queues full.
  if (read_pending_issue_) {
    if (issue_read_(current_.line_addr, next_tag_)) {
      ++next_tag_;
      ++reads_issued_;
      read_pending_issue_ = false;
      waiting_for_data_ = true;
    } else {
      ++stall_cycles_;
    }
    return;
  }
  if (write_pending_issue_) {
    if (issue_write_(current_.line_addr)) {
      ++writes_issued_;
      ++retired_;  // the store retires on issue
      write_pending_issue_ = false;
      have_record_ = false;
    } else {
      ++stall_cycles_;
      return;
    }
    if (!have_record_) fetch_next_record();
  }

  // Retire non-memory instructions at base_ipc, at most `width` per cycle.
  retire_credit_ += config_.base_ipc;
  std::uint32_t retired_this_cycle = 0;
  while (retire_credit_ >= 1.0 && gap_remaining_ > 0 &&
         retired_this_cycle < config_.width) {
    retire_credit_ -= 1.0;
    --gap_remaining_;
    ++retired_;
    ++retired_this_cycle;
  }
  // Credit does not bank beyond one cycle's retire width.
  retire_credit_ =
      std::min(retire_credit_, static_cast<double>(config_.width));
  if (gap_remaining_ > 0) return;

  // The memory instruction is at the head: issue it.
  if (current_.is_write) {
    if (issue_write_(current_.line_addr)) {
      ++writes_issued_;
      ++retired_;
      have_record_ = false;
    } else {
      write_pending_issue_ = true;
    }
  } else {
    if (issue_read_(current_.line_addr, next_tag_)) {
      ++next_tag_;
      ++reads_issued_;
      waiting_for_data_ = true;
    } else {
      read_pending_issue_ = true;
    }
  }
}

}  // namespace mecc::cpu
