// Trace-driven in-order core (Table II: 1.6 GHz, 2-wide retire).
//
// The core retires non-memory instructions at the benchmark's base rate
// (capped at the 2-wide width), blocks on memory reads until the data —
// including any ECC decode latency — returns, and issues writes into the
// memory controller's write queue without stalling (a store buffer),
// stalling only when that queue is full.
#pragma once

#include <cstdint>
#include <functional>

#include "common/stats.h"
#include "common/types.h"
#include "trace/trace_source.h"

namespace mecc::cpu {

struct CoreConfig {
  double base_ipc = 2.0;    // non-memory retire rate (<= width)
  std::uint32_t width = 2;  // retire width
};

class InOrderCore {
 public:
  /// Attempts to issue a read for `line`; returns false when the memory
  /// controller cannot accept it this cycle (retry next cycle).
  using IssueRead = std::function<bool(Address line, std::uint64_t tag)>;
  /// Same for writes.
  using IssueWrite = std::function<bool(Address line)>;

  InOrderCore(const CoreConfig& config, trace::TraceSource& gen,
              IssueRead issue_read, IssueWrite issue_write);

  /// Advances one CPU cycle.
  void tick();

  /// Memory system callback: the read tagged `tag` has its data (ECC
  /// decode already accounted by the caller's timing).
  void on_read_data(std::uint64_t tag);

  [[nodiscard]] InstCount retired() const { return retired_; }
  [[nodiscard]] Cycle cycles() const { return cycles_; }
  [[nodiscard]] double ipc() const {
    return cycles_ == 0 ? 0.0
                        : static_cast<double>(retired_) /
                              static_cast<double>(cycles_);
  }
  [[nodiscard]] Cycle stall_cycles() const { return stall_cycles_; }
  [[nodiscard]] std::uint64_t reads_issued() const { return reads_issued_; }
  [[nodiscard]] std::uint64_t writes_issued() const { return writes_issued_; }
  [[nodiscard]] bool stalled_on_read() const { return waiting_for_data_; }

  /// Exports retire/stall/issue counters; the System registers this as
  /// the "cpu" StatRegistry component.
  void export_stats(StatSet& out) const {
    out.add("retired_insts", retired_);
    out.add("cycles", cycles_);
    out.add("stall_cycles", stall_cycles_);
    out.add("reads_issued", reads_issued_);
    out.add("writes_issued", writes_issued_);
  }

 private:
  void fetch_next_record();

  CoreConfig config_;
  trace::TraceSource& gen_;
  IssueRead issue_read_;
  IssueWrite issue_write_;

  trace::TraceRecord current_{};
  bool have_record_ = false;
  std::uint32_t gap_remaining_ = 0;
  double retire_credit_ = 0.0;

  bool waiting_for_data_ = false;   // read issued, data not yet back
  bool read_pending_issue_ = false; // read ready but queue was full
  bool write_pending_issue_ = false;

  InstCount retired_ = 0;
  Cycle cycles_ = 0;
  Cycle stall_cycles_ = 0;
  std::uint64_t reads_issued_ = 0;
  std::uint64_t writes_issued_ = 0;
  std::uint64_t next_tag_ = 1;
};

}  // namespace mecc::cpu
