// Trace-driven in-order core (Table II: 1.6 GHz, 2-wide retire).
//
// The core retires non-memory instructions at the benchmark's base rate
// (capped at the 2-wide width), blocks on memory reads until the data —
// including any ECC decode latency — returns, and issues writes into the
// memory controller's write queue without stalling (a store buffer),
// stalling only when that queue is full.
//
// The retire credit is Q32 fixed point (base_ipc quantized to 1/2^32
// instructions per cycle at construction). Integer credit arithmetic
// makes every mid-gap cycle an exact linear recurrence, which is what
// lets advance_gap() collapse whole gaps into a closed form while
// staying bit-identical to the per-cycle loop (docs/PERFORMANCE.md).
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>

#include "common/stats.h"
#include "common/types.h"
#include "trace/trace_source.h"

namespace mecc::cpu {

struct CoreConfig {
  double base_ipc = 2.0;    // non-memory retire rate (<= width)
  std::uint32_t width = 2;  // retire width
};

class InOrderCore {
 public:
  /// Attempts to issue a read for `line`; returns false when the memory
  /// controller cannot accept it this cycle (retry next cycle).
  using IssueRead = std::function<bool(Address line, std::uint64_t tag)>;
  /// Same for writes.
  using IssueWrite = std::function<bool(Address line)>;

  InOrderCore(const CoreConfig& config, trace::TraceSource& gen,
              IssueRead issue_read, IssueWrite issue_write);

  /// Advances one CPU cycle. The stalled-on-read case is inline: the
  /// System's executed-cycle loop ticks every core every cycle, and a
  /// stalled core's tick is just the two stall counters.
  void tick() {
    if (waiting_for_data_) {
      ++cycles_;
      ++stall_cycles_;
      return;
    }
    tick_active();
  }

  /// Memory system callback: the read tagged `tag` has its data (ECC
  /// decode already accounted by the caller's timing).
  void on_read_data(std::uint64_t tag);

  // ---- fast-forward (docs/PERFORMANCE.md) ----
  // While the core is in one of its two "pure" states — stalled on read
  // data, or retiring non-memory gap instructions — tick() touches
  // nothing outside the core, so the System may advance it in bulk
  // instead of cycle by cycle. Both helpers are bit-identical to the
  // equivalent sequence of tick() calls.

  /// The next `n` tick() calls would each just count a stall cycle
  /// (requires stalled_on_read()). Applies all n at once.
  void skip_stalled(Cycle n) {
    assert(waiting_for_data_);
    cycles_ += n;
    stall_cycles_ += n;
  }

  /// True when the next tick() only runs the gap-retire arithmetic: a
  /// record is loaded, its gap is not exhausted, and no memory issue is
  /// pending or outstanding.
  [[nodiscard]] bool in_pure_gap() const {
    return !waiting_for_data_ && !read_pending_issue_ &&
           !write_pending_issue_ && have_record_ && gap_remaining_ > 0;
  }

  /// Advances up to `max_cycles` pure-gap cycles (requires in_pure_gap()),
  /// stopping *before* any cycle that would exhaust the gap (that cycle
  /// issues the memory access and must run through the full loop) or
  /// retire `inst_budget` or more instructions (so run_period's
  /// checkpoint / target crossings still happen under per-cycle control).
  /// Returns the number of cycles advanced.
  Cycle advance_gap(Cycle max_cycles, InstCount inst_budget);

  /// How far advance_gap(max_cycles, inst_budget) would go, without
  /// moving the core. Multi-stream fast-forward folds this over every
  /// gap core to find the largest advance all cores can take together,
  /// then applies it with advance_gap (docs/SCALING.md): for any
  /// m <= gap_cycles_bound(max, b), advance_gap(m, b) advances exactly m.
  [[nodiscard]] Cycle gap_cycles_bound(Cycle max_cycles,
                                       InstCount inst_budget) const;

  [[nodiscard]] InstCount retired() const { return retired_; }
  [[nodiscard]] Cycle cycles() const { return cycles_; }
  [[nodiscard]] double ipc() const {
    return cycles_ == 0 ? 0.0
                        : static_cast<double>(retired_) /
                              static_cast<double>(cycles_);
  }
  [[nodiscard]] Cycle stall_cycles() const { return stall_cycles_; }
  [[nodiscard]] std::uint64_t reads_issued() const { return reads_issued_; }
  [[nodiscard]] std::uint64_t writes_issued() const { return writes_issued_; }
  [[nodiscard]] bool stalled_on_read() const { return waiting_for_data_; }

  /// Exports retire/stall/issue counters; the System registers this as
  /// the "cpu" StatRegistry component.
  void export_stats(StatSet& out) const {
    out.add("retired_insts", retired_);
    out.add("cycles", cycles_);
    out.add("stall_cycles", stall_cycles_);
    out.add("reads_issued", reads_issued_);
    out.add("writes_issued", writes_issued_);
  }

 private:
  /// The non-stalled remainder of tick(): issue retries, fetch, and the
  /// gap-retire arithmetic.
  void tick_active();

  // Q32 retire-credit fixed point: one instruction of credit is
  // kCreditOne; base_ipc is quantized once at construction.
  static constexpr std::uint32_t kCreditFracBits = 32;
  static constexpr std::uint64_t kCreditOne = 1ull << kCreditFracBits;

  /// Pure-gap bulk advance, computed on copies of the retire state so
  /// that advance_gap (applies it) and gap_cycles_bound (just reports
  /// it) share one arithmetic path and cannot drift apart.
  struct GapSim {
    std::uint64_t credit = 0;
    std::uint32_t gap_remaining = 0;
    Cycle advanced = 0;
    InstCount retired = 0;
  };
  [[nodiscard]] GapSim simulate_gap(Cycle max_cycles,
                                    InstCount inst_budget) const;

  void fetch_next_record();

  CoreConfig config_;
  trace::TraceSource& gen_;
  IssueRead issue_read_;
  IssueWrite issue_write_;

  trace::TraceRecord current_{};
  bool have_record_ = false;
  std::uint32_t gap_remaining_ = 0;
  std::uint64_t credit_ = 0;       // Q32 banked retire credit
  std::uint64_t credit_rate_ = 0;  // Q32 base_ipc, in (0, width]

  bool waiting_for_data_ = false;   // read issued, data not yet back
  bool read_pending_issue_ = false; // read ready but queue was full
  bool write_pending_issue_ = false;

  InstCount retired_ = 0;
  Cycle cycles_ = 0;
  Cycle stall_cycles_ = 0;
  std::uint64_t reads_issued_ = 0;
  std::uint64_t writes_issued_ = 0;
  std::uint64_t next_tag_ = 1;
};

}  // namespace mecc::cpu
