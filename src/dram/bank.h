// Per-bank state machine: open row tracking plus the earliest-issue
// timestamps implied by the DRAM timing constraints.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/types.h"
#include "dram/dram_params.h"

namespace mecc::dram {

/// Memory-bus cycle count (the DRAM side of the clock-domain boundary).
using MemCycle = std::uint64_t;

class Bank {
 public:
  explicit Bank(const Timing& t) : t_(&t) {}

  [[nodiscard]] bool row_open() const { return open_row_ >= 0; }
  [[nodiscard]] std::int64_t open_row() const { return open_row_; }

  [[nodiscard]] bool can_activate(MemCycle now) const {
    return !row_open() && now >= ready_act_;
  }
  [[nodiscard]] bool can_column(MemCycle now) const {
    return row_open() && now >= ready_col_;
  }
  [[nodiscard]] bool can_precharge(MemCycle now) const {
    return row_open() && now >= ready_pre_;
  }

  [[nodiscard]] MemCycle ready_act() const { return ready_act_; }
  [[nodiscard]] MemCycle ready_col() const { return ready_col_; }
  [[nodiscard]] MemCycle ready_pre() const { return ready_pre_; }

  void activate(MemCycle now, std::uint32_t row) {
    open_row_ = row;
    ready_col_ = now + t_->tRCD;
    ready_pre_ = now + t_->tRAS;
  }

  /// Issues a read column command; returns the cycle the last data beat
  /// leaves the pins.
  MemCycle read(MemCycle now) {
    const MemCycle done = now + t_->tCL + t_->tBURST;
    ready_pre_ = std::max(ready_pre_, now + t_->tRTP + t_->tBURST);
    ready_col_ = std::max(ready_col_, now + t_->tBURST);
    return done;
  }

  /// Issues a write column command; returns the cycle the write recovery
  /// completes inside the array.
  MemCycle write(MemCycle now) {
    const MemCycle done = now + t_->tCWL + t_->tBURST;
    ready_pre_ = std::max(ready_pre_, done + t_->tWR);
    ready_col_ = std::max(ready_col_, now + t_->tBURST);
    return done;
  }

  void precharge(MemCycle now) {
    open_row_ = -1;
    ready_act_ = now + t_->tRP;
  }

  /// Blocks the bank (e.g. for a refresh) until `until`.
  void block_until(MemCycle until) {
    ready_act_ = std::max(ready_act_, until);
    ready_col_ = std::max(ready_col_, until);
    ready_pre_ = std::max(ready_pre_, until);
  }

  // ---- per-bank refresh window (REFpb, docs/SCHEDULING.md) ----
  // While now < ref_until() a per-bank refresh occupies `ref_subarray()`.
  // Without SARP the whole bank is additionally block_until()-ed; with
  // SARP only activates into the refreshing subarray are held off (the
  // Device's row-aware can_activate checks this window).
  void set_refresh_window(MemCycle until, std::uint32_t subarray) {
    ref_until_ = until;
    ref_subarray_ = subarray;
  }
  [[nodiscard]] MemCycle ref_until() const { return ref_until_; }
  [[nodiscard]] std::uint32_t ref_subarray() const { return ref_subarray_; }

 private:
  const Timing* t_;
  std::int64_t open_row_ = -1;
  MemCycle ready_act_ = 0;
  MemCycle ready_col_ = 0;
  MemCycle ready_pre_ = 0;
  MemCycle ref_until_ = 0;
  std::uint32_t ref_subarray_ = 0;
};

}  // namespace mecc::dram
