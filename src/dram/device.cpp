#include "dram/device.h"

#include <bit>
#include <cassert>
#include <string>

namespace mecc::dram {

const char* power_state_name(PowerState s) {
  switch (s) {
    case PowerState::kPrechargeStandby:
      return "precharge_standby";
    case PowerState::kActiveStandby:
      return "active_standby";
    case PowerState::kPrechargePowerDown:
      return "precharge_power_down";
    case PowerState::kActivePowerDown:
      return "active_power_down";
    case PowerState::kSelfRefresh:
      return "self_refresh";
  }
  return "?";
}

namespace {

void export_counters(const ActivityCounters& c, const std::string& prefix,
                     StatSet& out) {
  out.add(prefix + "activates", c.activates);
  out.add(prefix + "precharges", c.precharges);
  out.add(prefix + "reads", c.reads);
  out.add(prefix + "writes", c.writes);
  out.add(prefix + "refreshes", c.refreshes);
  // Emitted only when per-bank refresh ran: all-bank configurations keep
  // their historical key set (and committed reference JSONs) unchanged.
  if (c.refreshes_pb != 0) {
    out.add(prefix + "refreshes_pb", c.refreshes_pb);
  }
  out.add(prefix + "self_refresh_pulses", c.self_refresh_pulses);
  for (std::size_t i = 0; i < kNumPowerStates; ++i) {
    out.add(prefix + "state_cycles." +
                power_state_name(static_cast<PowerState>(i)),
            c.state_cycles[i]);
  }
}

}  // namespace

void Device::export_stats(StatSet& out) const {
  export_counters(counters_, "", out);
  if (geo_.ranks > 1) {
    for (std::uint32_t r = 0; r < geo_.ranks; ++r) {
      export_counters(rank_counters_[r], "r" + std::to_string(r) + ".", out);
    }
  }
}

Device::Device(const Geometry& geo, const Timing& timing)
    : geo_(geo), timing_(timing) {
  // The flattened bank array is addressed through 32-bit open/refresh
  // masks throughout the controller; the rank power-down mask likewise.
  assert(geo_.ranks >= 1 && geo_.banks >= 1);
  assert(geo_.ranks * geo_.banks <= 32);
  const std::uint32_t total = total_banks();
  banks_.reserve(total);
  for (std::uint32_t i = 0; i < total; ++i) banks_.emplace_back(timing_);
  bank_act_cycle_.assign(total, 0);
  ref_row_.assign(total, 0);
  rank_next_act_allowed_.assign(geo_.ranks, 0);
  rank_act_.assign(static_cast<std::size_t>(geo_.ranks) * kFawWindow, 0);
  act_idx_.assign(geo_.ranks, 0);
  act_count_.assign(geo_.ranks, 0);
  rank_wakeup_ready_.assign(geo_.ranks, 0);
  rank_state_.assign(geo_.ranks, PowerState::kPrechargeStandby);
  rank_counters_.assign(geo_.ranks, ActivityCounters{});
}

namespace {

// Static-lifetime command names (TraceEvent stores const char*; the
// cmd_name() helper returns std::string and cannot back a POD event).
const char* trace_cmd_name(CmdType t) {
  switch (t) {
    case CmdType::kActivate:
      return "ACT";
    case CmdType::kRead:
      return "RD";
    case CmdType::kWrite:
      return "WR";
    case CmdType::kPrecharge:
      return "PRE";
    case CmdType::kRefresh:
      return "REF";
    case CmdType::kPowerDownEnter:
      return "PDE";
    case CmdType::kPowerDownExit:
      return "PDX";
    case CmdType::kSelfRefreshEnter:
      return "SRE";
    case CmdType::kSelfRefreshExit:
      return "SRX";
    case CmdType::kRefreshBank:
      return "REFB";
  }
  return "?";
}

// Static-lifetime power-state names for span events.
const char* trace_state_name(PowerState s) { return power_state_name(s); }

constexpr Cycle to_cpu(MemCycle m) {
  return static_cast<Cycle>(m) * kCpuCyclesPerMemCycle;
}

}  // namespace

void Device::trace_command(CmdType type, std::uint32_t bank,
                           std::uint32_t row, MemCycle now) {
  tracer_->instant(tracing::Category::kDram, tracing::kTrackDramCmd,
                   trace_cmd_name(type), to_cpu(now), "bank", bank, "row",
                   row);
}

void Device::flush_trace(MemCycle now) {
  if (tracer_ == nullptr) return;
  // Close row-open spans for banks still open at end of run.
  std::uint32_t open = open_mask_;
  while (open != 0) {
    const std::uint32_t bank =
        static_cast<std::uint32_t>(std::countr_zero(open));
    open &= open - 1;
    const MemCycle opened = bank_act_cycle_[bank];
    tracer_->complete(
        tracing::Category::kBank,
        static_cast<std::uint8_t>(tracing::kTrackBankBase + bank), "row_open",
        to_cpu(opened), to_cpu(now - opened), "row",
        static_cast<std::uint64_t>(banks_[bank].open_row()));
  }
  // Close the in-flight power-state residency span.
  if (now > trace_state_entered_) {
    tracer_->complete(tracing::Category::kPower, tracing::kTrackPower,
                      trace_state_name(state_), to_cpu(trace_state_entered_),
                      to_cpu(now - trace_state_entered_));
    trace_state_entered_ = now;
  }
}

PowerState Device::compute_rank_state(std::uint32_t rank) const {
  if (in_self_refresh_) return PowerState::kSelfRefresh;
  const bool precharged = rank_open_mask(rank) == 0;
  if (rank_powered_down(rank)) {
    return precharged ? PowerState::kPrechargePowerDown
                      : PowerState::kActivePowerDown;
  }
  return precharged ? PowerState::kPrechargeStandby
                    : PowerState::kActiveStandby;
}

PowerState Device::compute_state() const {
  // Channel-level view for the trace span: powered-down only when every
  // rank is (at ranks=1 this is exactly the rank's own state).
  if (in_self_refresh_) return PowerState::kSelfRefresh;
  const std::uint32_t all = (1u << geo_.ranks) - 1u;
  if (pd_mask_ == all) {
    return all_banks_precharged() ? PowerState::kPrechargePowerDown
                                  : PowerState::kActivePowerDown;
  }
  return all_banks_precharged() ? PowerState::kPrechargeStandby
                                : PowerState::kActiveStandby;
}

void Device::account_to(MemCycle now) {
  assert(now >= state_since_);
  const MemCycle d = now - state_since_;
  if (d != 0) {
    for (std::uint32_t r = 0; r < geo_.ranks; ++r) {
      const auto s = static_cast<std::size_t>(rank_state_[r]);
      counters_.state_cycles[s] += d;
      rank_counters_[r].state_cycles[s] += d;
    }
  }
  state_since_ = now;
}

void Device::refresh_state(MemCycle now) {
  account_to(now);
  for (std::uint32_t r = 0; r < geo_.ranks; ++r) {
    rank_state_[r] = compute_rank_state(r);
  }
  const PowerState next = compute_state();
  if (tracer_ != nullptr && next != state_) {
    // Residency span for the state being left (zero-length stays are
    // elided: several commands in one cycle can bounce the state).
    if (now > trace_state_entered_) {
      tracer_->complete(tracing::Category::kPower, tracing::kTrackPower,
                        trace_state_name(state_),
                        to_cpu(trace_state_entered_),
                        to_cpu(now - trace_state_entered_));
    }
    trace_state_entered_ = now;
  }
  state_ = next;
}

bool Device::can_activate(std::uint32_t bank, MemCycle now) const {
  const std::uint32_t rank = rank_of(bank);
  if (rank_powered_down(rank) || in_self_refresh_ ||
      now < rank_wakeup_ready_[rank]) {
    return false;
  }
  if (!banks_[bank].can_activate(now)) return false;
  if (now < rank_next_act_allowed_[rank]) return false;
  // tFAW: this would be the fifth ACT within the rank's window.
  if (act_count_[rank] < kFawWindow) return true;
  const MemCycle oldest = rank_act_[rank * kFawWindow + act_idx_[rank]];
  return now >= oldest + timing_.tFAW;
}

bool Device::can_activate(std::uint32_t bank, std::uint32_t row,
                          MemCycle now) const {
  if (!can_activate(bank, now)) return false;
  // SARP overlap: the refreshing subarray stays off-limits until the
  // per-bank refresh window closes. (Without SARP block_until already
  // blocks the whole bank, so this check never fires.)
  const Bank& b = banks_[bank];
  return now >= b.ref_until() || subarray_of_row(row) != b.ref_subarray();
}

void Device::activate(std::uint32_t bank, std::uint32_t row, MemCycle now) {
  assert(can_activate(bank, row, now));
  const std::uint32_t rank = rank_of(bank);
  record(CmdType::kActivate, bank, row, now);
  banks_[bank].activate(now, row);
  open_mask_ |= 1u << bank;
  if (tracer_ != nullptr) bank_act_cycle_[bank] = now;
  rank_next_act_allowed_[rank] = now + timing_.tRRD;
  rank_act_[rank * kFawWindow + act_idx_[rank]] = now;
  act_idx_[rank] = (act_idx_[rank] + 1) % kFawWindow;
  ++act_count_[rank];
  ++counters_.activates;
  ++rank_counters_[rank].activates;
  refresh_state(now);
}

bool Device::can_read(std::uint32_t bank, std::uint32_t row,
                      MemCycle now) const {
  const std::uint32_t rank = rank_of(bank);
  if (rank_powered_down(rank) || in_self_refresh_ ||
      now < rank_wakeup_ready_[rank]) {
    return false;
  }
  const Bank& b = banks_[bank];
  if (!b.can_column(now) || b.open_row() != static_cast<std::int64_t>(row)) {
    return false;
  }
  MemCycle bus_ok = bus_ready_;
  if (last_col_was_write_) bus_ok += timing_.tWTR;
  return now >= bus_ok;
}

MemCycle Device::read(std::uint32_t bank, MemCycle now) {
  record(CmdType::kRead, bank, 0, now);
  const MemCycle done = banks_[bank].read(now);
  bus_ready_ = now + timing_.tBURST;
  last_col_was_write_ = false;
  ++counters_.reads;
  ++rank_counters_[rank_of(bank)].reads;
  refresh_state(now);
  return done;
}

bool Device::can_write(std::uint32_t bank, std::uint32_t row,
                       MemCycle now) const {
  const std::uint32_t rank = rank_of(bank);
  if (rank_powered_down(rank) || in_self_refresh_ ||
      now < rank_wakeup_ready_[rank]) {
    return false;
  }
  const Bank& b = banks_[bank];
  if (!b.can_column(now) || b.open_row() != static_cast<std::int64_t>(row)) {
    return false;
  }
  return now >= bus_ready_;
}

MemCycle Device::write(std::uint32_t bank, MemCycle now) {
  record(CmdType::kWrite, bank, 0, now);
  const MemCycle done = banks_[bank].write(now);
  bus_ready_ = now + timing_.tBURST;
  last_col_was_write_ = true;
  ++counters_.writes;
  ++rank_counters_[rank_of(bank)].writes;
  refresh_state(now);
  return done;
}

bool Device::can_precharge(std::uint32_t bank, MemCycle now) const {
  const std::uint32_t rank = rank_of(bank);
  if (rank_powered_down(rank) || in_self_refresh_ ||
      now < rank_wakeup_ready_[rank]) {
    return false;
  }
  return banks_[bank].can_precharge(now);
}

void Device::precharge(std::uint32_t bank, MemCycle now) {
  assert(can_precharge(bank, now));
  record(CmdType::kPrecharge, bank, 0, now);
  if (tracer_ != nullptr && (open_mask_ & (1u << bank)) != 0) {
    const MemCycle opened = bank_act_cycle_[bank];
    tracer_->complete(
        tracing::Category::kBank,
        static_cast<std::uint8_t>(tracing::kTrackBankBase + bank), "row_open",
        to_cpu(opened), to_cpu(now - opened), "row",
        static_cast<std::uint64_t>(banks_[bank].open_row()));
  }
  banks_[bank].precharge(now);
  open_mask_ &= ~(1u << bank);
  ++counters_.precharges;
  ++rank_counters_[rank_of(bank)].precharges;
  refresh_state(now);
}

bool Device::can_refresh(MemCycle now, std::uint32_t rank) const {
  if (rank_powered_down(rank) || in_self_refresh_ ||
      now < rank_wakeup_ready_[rank]) {
    return false;
  }
  if (rank_open_mask(rank) != 0) return false;
  const std::uint32_t base = rank * geo_.banks;
  for (std::uint32_t i = 0; i < geo_.banks; ++i) {
    const Bank& b = banks_[base + i];
    if (now < b.ready_act()) return false;
    if (now < b.ref_until()) return false;  // REFpb window (SARP) open
  }
  return true;
}

void Device::refresh(MemCycle now, std::uint32_t rank) {
  assert(can_refresh(now, rank));
  record(CmdType::kRefresh, rank * geo_.banks, 0, now);
  const std::uint32_t base = rank * geo_.banks;
  for (std::uint32_t i = 0; i < geo_.banks; ++i) {
    banks_[base + i].block_until(now + timing_.tRFC);
  }
  ++counters_.refreshes;
  ++rank_counters_[rank].refreshes;
  refresh_state(now);
}

bool Device::can_refresh_bank(std::uint32_t bank, MemCycle now) const {
  const std::uint32_t rank = rank_of(bank);
  if (rank_powered_down(rank) || in_self_refresh_ ||
      now < rank_wakeup_ready_[rank]) {
    return false;
  }
  const Bank& b = banks_[bank];
  if (now < b.ref_until()) return false;  // previous REFpb still running
  if (!b.row_open()) return now >= b.ready_act();  // precharged, past tRP
  // Row open: legal only under SARP, into a different subarray than the
  // one the open row occupies.
  if (!sarp_overlap_) return false;
  return refresh_subarray(bank) !=
         subarray_of_row(static_cast<std::uint32_t>(b.open_row()));
}

void Device::refresh_bank(std::uint32_t bank, MemCycle now) {
  assert(can_refresh_bank(bank, now));
  record(CmdType::kRefreshBank, bank, ref_row_[bank], now);
  Bank& b = banks_[bank];
  const MemCycle until = now + timing_.tRFCpb;
  b.set_refresh_window(until, refresh_subarray(bank));
  // SARP keeps the rest of the bank usable (the window above holds off
  // activates into the refreshing subarray); otherwise the whole bank is
  // busy for tRFCpb, exactly like the all-bank REF.
  if (!sarp_overlap_) b.block_until(until);
  ref_row_[bank] = (ref_row_[bank] + kRowsPerRefreshCommand) %
                   geo_.rows_per_bank;
  ++counters_.refreshes_pb;
  ++rank_counters_[rank_of(bank)].refreshes_pb;
  refresh_state(now);
}

void Device::enter_power_down(MemCycle now, std::uint32_t rank) {
  assert(!rank_powered_down(rank) && !in_self_refresh_);
  record(CmdType::kPowerDownEnter, rank * geo_.banks, 0, now);
  pd_mask_ |= 1u << rank;
  refresh_state(now);
}

void Device::exit_power_down(MemCycle now, std::uint32_t rank) {
  assert(rank_powered_down(rank));
  record(CmdType::kPowerDownExit, rank * geo_.banks, 0, now);
  pd_mask_ &= ~(1u << rank);
  rank_wakeup_ready_[rank] = now + timing_.tXP;
  refresh_state(now);
}

void Device::enter_self_refresh(MemCycle now, std::uint32_t refresh_divider) {
  assert(pd_mask_ == 0 && !in_self_refresh_);
  assert(all_banks_precharged());
  assert(refresh_divider >= 1);
  record(CmdType::kSelfRefreshEnter, 0, 0, now);
  in_self_refresh_ = true;
  sr_divider_ = refresh_divider;
  sr_entry_time_ = now;
  refresh_state(now);
}

void Device::exit_self_refresh(MemCycle now) {
  assert(in_self_refresh_);
  // Credit the internal refresh pulses performed while asleep: one pulse
  // per (tREFI * divider), in every rank (each refreshes itself).
  const MemCycle stay = now - sr_entry_time_;
  const std::uint64_t pulses =
      stay / (static_cast<MemCycle>(timing_.tREFI) * sr_divider_);
  counters_.self_refresh_pulses += pulses * geo_.ranks;
  for (std::uint32_t r = 0; r < geo_.ranks; ++r) {
    rank_counters_[r].self_refresh_pulses += pulses;
  }
  record(CmdType::kSelfRefreshExit, 0, 0, now);
  in_self_refresh_ = false;
  for (std::uint32_t r = 0; r < geo_.ranks; ++r) {
    rank_wakeup_ready_[r] = now + timing_.tXSR;
  }
  refresh_state(now);
}

MemCycle Device::next_event(MemCycle now) const {
  // Min over every per-bank ready time that is still in the future, plus
  // the per-rank wake-up bounds. A lower bound only: whether anything
  // actually happens then depends on what the controller has queued.
  MemCycle e = static_cast<MemCycle>(-1);
  auto consider = [&](MemCycle t) {
    if (t > now && t < e) e = t;
  };
  for (const auto& b : banks_) {
    consider(b.ready_act());
    consider(b.ready_col());
    consider(b.ready_pre());
  }
  for (std::uint32_t r = 0; r < geo_.ranks; ++r) {
    consider(rank_wakeup_ready_[r]);
  }
  return e <= now ? now + 1 : e;
}

const ActivityCounters& Device::counters(MemCycle now) {
  account_to(now);
  return counters_;
}

}  // namespace mecc::dram
