// The DRAM device side of one channel: M ranks x B banks behind a
// shared data bus, rank-scoped timing constraints (tRRD, tFAW, CKE),
// refresh, power-mode transitions, and the activity / state-residency
// accounting consumed by the power model.
//
// Banks are flattened to one array of ranks*banks entries; the global
// bank index is rank * banks_per_rank + bank (docs/SCALING.md). At
// ranks=1 every per-rank structure degenerates to the historical
// single-rank device bit for bit.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/trace.h"
#include "dram/bank.h"
#include "dram/dram_params.h"
#include "dram/timing_checker.h"

namespace mecc::dram {

/// Power-relevant device states (per Micron TN-46-12 categories).
enum class PowerState : std::uint8_t {
  kPrechargeStandby,    // all banks idle, clock running (IDD2N)
  kActiveStandby,       // some bank open, clock running (IDD3N)
  kPrechargePowerDown,  // CKE low, all banks idle (IDD2P)
  kActivePowerDown,     // CKE low, bank open (IDD3P)
  kSelfRefresh,         // self-refresh mode (IDD8-class)
};
inline constexpr std::size_t kNumPowerStates = 5;

/// Short snake_case name for a power state (stats keys, docs/STATS.md).
[[nodiscard]] const char* power_state_name(PowerState s);

/// Event counters the power model turns into energy. In a multi-rank
/// channel `state_cycles` sums the per-rank residencies (each rank is a
/// physical device drawing its own background current), so background
/// energy stays linear in ranks without the power model knowing the
/// geometry.
struct ActivityCounters {
  std::uint64_t activates = 0;
  std::uint64_t precharges = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t refreshes = 0;           // all-bank auto-refresh commands
  std::uint64_t refreshes_pb = 0;        // per-bank refresh (REFpb) commands
  std::uint64_t self_refresh_pulses = 0; // internal refreshes while in SR
  std::array<std::uint64_t, kNumPowerStates> state_cycles{};  // mem cycles

  /// Counter delta (this - earlier): per-period accounting when one
  /// device lives across several active/idle periods.
  [[nodiscard]] ActivityCounters since(const ActivityCounters& earlier) const {
    ActivityCounters d;
    d.activates = activates - earlier.activates;
    d.precharges = precharges - earlier.precharges;
    d.reads = reads - earlier.reads;
    d.writes = writes - earlier.writes;
    d.refreshes = refreshes - earlier.refreshes;
    d.refreshes_pb = refreshes_pb - earlier.refreshes_pb;
    d.self_refresh_pulses = self_refresh_pulses - earlier.self_refresh_pulses;
    for (std::size_t i = 0; i < kNumPowerStates; ++i) {
      d.state_cycles[i] = state_cycles[i] - earlier.state_cycles[i];
    }
    return d;
  }

  /// Element-wise sum (accumulating per-channel counters system-side).
  void accumulate(const ActivityCounters& o) {
    activates += o.activates;
    precharges += o.precharges;
    reads += o.reads;
    writes += o.writes;
    refreshes += o.refreshes;
    refreshes_pb += o.refreshes_pb;
    self_refresh_pulses += o.self_refresh_pulses;
    for (std::size_t i = 0; i < kNumPowerStates; ++i) {
      state_cycles[i] += o.state_cycles[i];
    }
  }
};

class Device {
 public:
  Device(const Geometry& geo, const Timing& timing);

  [[nodiscard]] const Geometry& geometry() const { return geo_; }
  [[nodiscard]] const Timing& timing() const { return timing_; }

  /// Rank that global bank index `bank` belongs to.
  [[nodiscard]] std::uint32_t rank_of(std::uint32_t bank) const {
    return bank / geo_.banks;
  }
  /// Total banks across all ranks (size of the flattened bank array).
  [[nodiscard]] std::uint32_t total_banks() const {
    return geo_.ranks * geo_.banks;
  }

  // ---- command interface (active operation) ----
  // `bank` is always the global index (rank * banks_per_rank + bank).
  [[nodiscard]] bool can_activate(std::uint32_t bank, MemCycle now) const;
  /// Row-aware variant: additionally holds off activates into the
  /// subarray a per-bank refresh currently occupies (SARP overlap mode;
  /// identical to the row-blind check otherwise). The scheduler knows
  /// the target row, so it uses this one.
  [[nodiscard]] bool can_activate(std::uint32_t bank, std::uint32_t row,
                                  MemCycle now) const;
  void activate(std::uint32_t bank, std::uint32_t row, MemCycle now);

  [[nodiscard]] bool can_read(std::uint32_t bank, std::uint32_t row,
                              MemCycle now) const;
  /// Returns the cycle the last data beat is on the bus.
  MemCycle read(std::uint32_t bank, MemCycle now);

  [[nodiscard]] bool can_write(std::uint32_t bank, std::uint32_t row,
                               MemCycle now) const;
  MemCycle write(std::uint32_t bank, MemCycle now);

  [[nodiscard]] bool can_precharge(std::uint32_t bank, MemCycle now) const;
  void precharge(std::uint32_t bank, MemCycle now);

  /// All-bank auto refresh of one rank; requires every bank of the rank
  /// precharged. The rank's banks are blocked for tRFC.
  [[nodiscard]] bool can_refresh(MemCycle now, std::uint32_t rank = 0) const;
  void refresh(MemCycle now, std::uint32_t rank = 0);

  // ---- per-bank refresh (REFpb, docs/SCHEDULING.md) ----
  /// Whether a per-bank refresh can issue to `bank` now. Without the
  /// SARP overlap the bank must be precharged and past its timing
  /// blocks; with it the bank may also have a row open, provided the
  /// open row's subarray differs from the next refresh target.
  [[nodiscard]] bool can_refresh_bank(std::uint32_t bank, MemCycle now) const;
  /// Issues a per-bank refresh: the device-internal per-bank row counter
  /// advances by kRowsPerRefreshCommand and the bank is busy for tRFCpb
  /// (whole bank without SARP; just the refreshing subarray with it).
  void refresh_bank(std::uint32_t bank, MemCycle now);
  /// Enables the SARP-style subarray access/refresh overlap for REFpb.
  void set_sarp_overlap(bool on) { sarp_overlap_ = on; }
  [[nodiscard]] bool sarp_overlap() const { return sarp_overlap_; }
  /// Subarray the *next* REFpb to `bank` will occupy.
  [[nodiscard]] std::uint32_t refresh_subarray(std::uint32_t bank) const {
    return subarray_of_row(ref_row_[bank]);
  }
  [[nodiscard]] std::uint32_t subarray_of_row(std::uint32_t row) const {
    return row / geo_.rows_per_subarray();
  }

  // ---- power modes ----
  /// Precharge/active power-down entry for one rank (its CKE low). No
  /// commands to that rank until exit; other ranks keep operating.
  void enter_power_down(MemCycle now, std::uint32_t rank = 0);
  /// Exit power-down; commands to the rank legal again after tXP.
  void exit_power_down(MemCycle now, std::uint32_t rank = 0);
  /// Whether any rank is powered down (ranks=1: the historical meaning).
  [[nodiscard]] bool in_power_down() const { return pd_mask_ != 0; }
  [[nodiscard]] bool rank_powered_down(std::uint32_t rank) const {
    return (pd_mask_ & (1u << rank)) != 0;
  }
  /// Bit r set iff rank r is powered down.
  [[nodiscard]] std::uint32_t power_down_mask() const { return pd_mask_; }

  /// Self-refresh entry: whole-channel (every rank together; idle-mode
  /// semantics). All banks must be precharged, no rank powered down.
  /// `refresh_divider` slows the internal refresh rate (the paper's
  /// 4-bit counter: 16 -> 1 s period).
  void enter_self_refresh(MemCycle now, std::uint32_t refresh_divider = 1);
  /// Exit self refresh; commands legal after tXSR. Internal refresh pulses
  /// performed during the stay (per rank) are credited to the counters.
  void exit_self_refresh(MemCycle now);
  [[nodiscard]] bool in_self_refresh() const { return in_self_refresh_; }

  [[nodiscard]] const Bank& bank(std::uint32_t i) const { return banks_[i]; }
  /// Bit i set iff global bank i has an open row. Lets the controller's
  /// bank-scan loops (row close, refresh drain, next_event bounds) visit
  /// only open banks instead of iterating every bank.
  [[nodiscard]] std::uint32_t open_banks() const { return open_mask_; }
  [[nodiscard]] bool all_banks_precharged() const { return open_mask_ == 0; }
  [[nodiscard]] bool rank_banks_precharged(std::uint32_t rank) const {
    return rank_open_mask(rank) == 0;
  }
  /// Power state of one rank (the energy-accounting state).
  [[nodiscard]] PowerState rank_power_state(std::uint32_t rank) const {
    return rank_state_[rank];
  }
  /// Channel-level state (trace spans; ranks=1: the rank's state).
  [[nodiscard]] PowerState power_state() const { return state_; }

  // ---- timing-constraint observers (fast-forward next_event bounds) ----
  // Read-only views of the bus/rank-global constraints, so the memory
  // controller can compute a conservative lower bound on the first cycle
  // any queued command could legally issue (docs/PERFORMANCE.md). None
  // of these have side effects.
  /// Earliest cycle the (channel-wide) data bus accepts another column
  /// command.
  [[nodiscard]] MemCycle bus_ready() const { return bus_ready_; }
  /// Whether the last column command was a write (tWTR applies to reads).
  [[nodiscard]] bool last_col_was_write() const { return last_col_was_write_; }
  /// Earliest cycle tRRD allows another ACT on `rank`.
  [[nodiscard]] MemCycle next_act_allowed(std::uint32_t rank = 0) const {
    return rank_next_act_allowed_[rank];
  }
  /// Earliest cycle tFAW allows another ACT on `rank` (0 until four ACTs
  /// occurred there).
  [[nodiscard]] MemCycle act_faw_bound(std::uint32_t rank = 0) const {
    const RankWindow& w = rank_act_;
    if (act_count_[rank] < kFawWindow) return 0;
    return w[rank * kFawWindow + act_idx_[rank]] + timing_.tFAW;
  }
  /// Earliest cycle any command is legal on `rank` after a power-down /
  /// self-refresh exit (tXP / tXSR).
  [[nodiscard]] MemCycle wakeup_ready(std::uint32_t rank = 0) const {
    return rank_wakeup_ready_[rank];
  }

  /// Fast-forward contract: conservative lower bound, strictly greater
  /// than `now`, on the first cycle any bank-level timing constraint
  /// relevant to a queued command could expire. Pure; the controller
  /// refines it per request with the observers above.
  [[nodiscard]] MemCycle next_event(MemCycle now) const;

  /// Finalizes state-residency accounting up to `now` and returns the
  /// counters. Safe to call repeatedly.
  [[nodiscard]] const ActivityCounters& counters(MemCycle now);

  /// Exports the activity counters into `out` (the System registers
  /// this as the "dram" component of its StatRegistry). Counters are as
  /// of the last counters(now) call — call that first to finalize
  /// state-residency accounting. With ranks>1 additionally emits the
  /// per-rank breakdown under "rK." prefixes.
  void export_stats(StatSet& out) const;

  /// Attaches a command log; every subsequent command is appended (for
  /// the TimingChecker and debugging). Pass nullptr to detach.
  void set_command_log(std::vector<Command>* log) { cmd_log_ = log; }

  /// Attaches the observability tracer (docs/OBSERVABILITY.md): command
  /// instants (dram), power-state residency spans (power), per-bank
  /// row-open spans (bank). Pass nullptr to detach.
  void set_tracer(tracing::Tracer* tracer) { tracer_ = tracer; }

  /// Closes the in-flight power-state and row-open trace spans at `now`
  /// (end of run). No-op without a tracer.
  void flush_trace(MemCycle now);

 private:
  static constexpr std::size_t kFawWindow = 4;
  using RankWindow = std::vector<MemCycle>;  // ranks * kFawWindow ACT times

  void account_to(MemCycle now);
  void refresh_state(MemCycle now);
  [[nodiscard]] PowerState compute_state() const;
  [[nodiscard]] PowerState compute_rank_state(std::uint32_t rank) const;
  [[nodiscard]] std::uint32_t rank_open_mask(std::uint32_t rank) const {
    return (open_mask_ >> (rank * geo_.banks)) &
           ((1u << geo_.banks) - 1u);
  }

  Geometry geo_;
  Timing timing_;
  std::vector<Bank> banks_;      // flattened: ranks * banks entries
  std::uint32_t open_mask_ = 0;  // bit per global bank: row open

  MemCycle bus_ready_ = 0;        // next legal column command (data bus)
  bool last_col_was_write_ = false;

  // Per-rank timing/power state (index: rank).
  std::vector<MemCycle> rank_next_act_allowed_;  // tRRD
  RankWindow rank_act_;                          // last four ACTs (tFAW)
  std::vector<std::size_t> act_idx_;
  std::vector<std::uint64_t> act_count_;  // tFAW binds after four ACTs
  std::vector<MemCycle> rank_wakeup_ready_;
  std::uint32_t pd_mask_ = 0;             // bit per rank: powered down

  bool in_self_refresh_ = false;
  std::uint32_t sr_divider_ = 1;
  MemCycle sr_entry_time_ = 0;

  // Per-bank refresh state: next row each bank's REFpb pointer covers
  // (wraps mod rows_per_bank), and whether SARP overlap is in effect.
  std::vector<std::uint32_t> ref_row_;
  bool sarp_overlap_ = false;

  // Energy accounting: per-rank residency states (all brought to `now`
  // together, so one shared since-stamp suffices) summed into the
  // channel counters, plus the per-rank counter breakdown for stats.
  std::vector<PowerState> rank_state_;
  std::vector<ActivityCounters> rank_counters_;
  PowerState state_ = PowerState::kPrechargeStandby;  // trace-span state
  MemCycle state_since_ = 0;
  ActivityCounters counters_;
  std::vector<Command>* cmd_log_ = nullptr;

  tracing::Tracer* tracer_ = nullptr;
  MemCycle trace_state_entered_ = 0;      // start of current power span
  std::vector<MemCycle> bank_act_cycle_;  // row-open span starts

  void record(CmdType type, std::uint32_t bank, std::uint32_t row,
              MemCycle now) {
    if (cmd_log_ != nullptr) {
      cmd_log_->push_back(
          {.type = type, .bank = bank, .row = row, .cycle = now});
    }
    if (tracer_ != nullptr) trace_command(type, bank, row, now);
  }

  void trace_command(CmdType type, std::uint32_t bank, std::uint32_t row,
                     MemCycle now);
};

}  // namespace mecc::dram
