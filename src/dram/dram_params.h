// DRAM geometry and timing parameters (paper Table II + Micron 1 Gb
// mobile LPDDR datasheet [21] for the values the paper omits).
//
// All timing values are in *memory-bus cycles* (200 MHz, tCK = 5 ns).
// The simulator core runs in CPU cycles (1.6 GHz); the memory controller
// converts at the boundary (8 CPU cycles per memory cycle).
#pragma once

#include <cstdint>

#include "common/types.h"

namespace mecc::dram {

struct Geometry {
  std::uint32_t channels = 1;
  std::uint32_t ranks = 1;
  std::uint32_t banks = 4;
  std::uint32_t rows_per_bank = 16 * 1024;
  // Table II lists 1K columns on a x32 DDR interface; a row buffer holds
  // 16 KB, i.e. 256 cache lines of 64 B. With 4 banks x 16K rows x 16 KB
  // this is exactly the 1 GB capacity of Table II.
  std::uint32_t lines_per_row = 256;
  // Subarrays per bank, for the SARP-style access/refresh overlap
  // (docs/SCHEDULING.md): a per-bank refresh occupies one subarray;
  // demand to the others may proceed. Mobile DRAM mats group into a
  // handful of independently sensed subarray blocks per bank.
  std::uint32_t subarrays_per_bank = 8;

  [[nodiscard]] std::uint32_t rows_per_subarray() const {
    return rows_per_bank / subarrays_per_bank;
  }

  [[nodiscard]] std::uint64_t total_lines() const {
    return static_cast<std::uint64_t>(channels) * ranks * banks *
           rows_per_bank * lines_per_row;
  }
  [[nodiscard]] std::uint64_t capacity_bytes() const {
    return total_lines() * kLineBytes;
  }
};

struct Timing {
  // Core array timing (memory cycles @ 5 ns).
  std::uint32_t tRCD = 3;   // ACT to column command, 15 ns
  std::uint32_t tRP = 3;    // PRE to ACT, 15 ns
  std::uint32_t tCL = 3;    // read column to first data, 15 ns
  std::uint32_t tCWL = 2;   // write column to first data, 10 ns
  std::uint32_t tRAS = 8;   // ACT to PRE, 40 ns
  std::uint32_t tWR = 3;    // write recovery, 15 ns
  std::uint32_t tRTP = 2;   // read to PRE, 10 ns
  std::uint32_t tBURST = 8; // 64 B line over x32 DDR = 16 beats = 8 cycles
  std::uint32_t tWTR = 2;   // write-to-read turnaround
  std::uint32_t tRRD = 2;   // ACT-to-ACT, different banks
  std::uint32_t tFAW = 10;  // four-activate window
  std::uint32_t tRFC = 13;  // refresh command duration, 65 ns
  std::uint32_t tRFCpb = 6; // per-bank refresh duration, 30 ns (LPDDR
                            // tRFCpb is roughly half tRFCab: one bank's
                            // rows instead of all banks' in parallel)
  std::uint32_t tREFI = 1560;  // refresh interval, 7.8 us (distributed AR)
  std::uint32_t tXP = 2;    // power-down exit
  std::uint32_t tCKE = 2;   // power-down entry
  std::uint32_t tXSR = 40;  // self-refresh exit, 200 ns

  [[nodiscard]] std::uint32_t tRC() const { return tRAS + tRP; }
};

/// Rows refreshed per all-bank REF command so the whole device is covered
/// once per 64 ms window: rows_per_bank / (64 ms / tREFI) = 16384 / 8192.
inline constexpr std::uint32_t kRowsPerRefreshCommand = 2;

/// Number of REF commands per 64 ms retention window.
inline constexpr std::uint32_t kRefreshCommandsPerWindow = 8192;

/// JEDEC baseline retention window (64 ms) in memory cycles.
inline constexpr std::uint64_t kRetentionWindowMemCycles =
    static_cast<std::uint64_t>(0.064 * kMemFreqHz);

}  // namespace mecc::dram
