#include "dram/timing_checker.h"

#include <algorithm>
#include <deque>
#include <optional>

namespace mecc::dram {

std::string cmd_name(CmdType t) {
  switch (t) {
    case CmdType::kActivate:
      return "ACT";
    case CmdType::kRead:
      return "RD";
    case CmdType::kWrite:
      return "WR";
    case CmdType::kPrecharge:
      return "PRE";
    case CmdType::kRefresh:
      return "REF";
    case CmdType::kPowerDownEnter:
      return "PDE";
    case CmdType::kPowerDownExit:
      return "PDX";
    case CmdType::kSelfRefreshEnter:
      return "SRE";
    case CmdType::kSelfRefreshExit:
      return "SRX";
    case CmdType::kRefreshBank:
      return "REFB";
  }
  return "?";
}

std::string TimingViolation::to_string() const {
  return rule + ": commands #" + std::to_string(first_index) + " -> #" +
         std::to_string(second_index) + " gap " +
         std::to_string(actual_gap) + " < required " +
         std::to_string(required_gap);
}

namespace {

struct BankState {
  std::optional<std::size_t> last_act;
  std::optional<std::size_t> last_rd;
  std::optional<std::size_t> last_wr;
  std::optional<std::size_t> last_pre;
  std::optional<std::size_t> last_refb;  // per-bank refresh (tRFCpb)
  bool row_open = false;
};

// Rank-scoped rule state (docs/SCALING.md): activates, refreshes and
// power-mode wake-ups on one rank never constrain another; only the
// shared data bus is channel-global.
struct RankState {
  std::optional<std::size_t> last_rank_act;  // tRRD
  std::deque<std::size_t> act_window;        // tFAW
  std::optional<std::size_t> last_ref;       // tRFC
  std::optional<std::size_t> last_wakeup;    // tXP / tXSR
  std::uint64_t wakeup_gap = 0;
};

}  // namespace

std::vector<TimingViolation> TimingChecker::check(
    const std::vector<Command>& log, std::uint32_t num_banks,
    bool sarp_overlap, std::uint32_t banks_per_rank) const {
  std::vector<TimingViolation> out;
  std::vector<BankState> banks(num_banks);
  if (banks_per_rank == 0) banks_per_rank = num_banks;
  std::vector<RankState> ranks((num_banks + banks_per_rank - 1) /
                               banks_per_rank);
  std::optional<std::size_t> last_col;            // data bus (tBURST)
  std::optional<std::size_t> last_wr_any;         // tWTR

  auto require = [&](std::optional<std::size_t> first, std::size_t second,
                     std::uint64_t gap, const char* rule) {
    if (!first) return;
    const std::uint64_t actual = log[second].cycle - log[*first].cycle;
    if (actual < gap) {
      out.push_back({.first_index = *first,
                     .second_index = second,
                     .rule = rule,
                     .required_gap = gap,
                     .actual_gap = actual});
    }
  };

  for (std::size_t i = 0; i < log.size(); ++i) {
    const Command& c = log[i];
    BankState* b = c.bank < num_banks ? &banks[c.bank] : nullptr;
    RankState& rk = ranks[std::min<std::size_t>(c.bank / banks_per_rank,
                                                ranks.size() - 1)];

    // No array command may beat its rank's power-mode wake-up penalty.
    const bool is_array_cmd =
        c.type == CmdType::kActivate || c.type == CmdType::kRead ||
        c.type == CmdType::kWrite || c.type == CmdType::kPrecharge ||
        c.type == CmdType::kRefresh || c.type == CmdType::kRefreshBank;
    if (is_array_cmd) {
      require(rk.last_wakeup, i, rk.wakeup_gap, "tXP/tXSR (wake-up)");
      require(rk.last_ref, i, t_.tRFC, "tRFC");
    }
    // Without the SARP overlap a per-bank refresh occupies its whole
    // bank for tRFCpb; with it, same-bank demand to other subarrays is
    // legal during the window (the subarray-conflict check needs the
    // geometry and lives in Device::can_activate).
    if (!sarp_overlap && b != nullptr &&
        (c.type == CmdType::kActivate || c.type == CmdType::kRead ||
         c.type == CmdType::kWrite || c.type == CmdType::kPrecharge)) {
      require(b->last_refb, i, t_.tRFCpb, "tRFCpb (bank busy after REFB)");
    }

    switch (c.type) {
      case CmdType::kActivate: {
        require(b->last_pre, i, t_.tRP, "tRP");
        require(rk.last_rank_act, i, t_.tRRD, "tRRD");
        if (rk.act_window.size() >= 4) {
          require(rk.act_window.front(), i, t_.tFAW, "tFAW");
          rk.act_window.pop_front();
        }
        rk.act_window.push_back(i);
        rk.last_rank_act = i;
        b->last_act = i;
        b->row_open = true;
        break;
      }
      case CmdType::kRead: {
        require(b->last_act, i, t_.tRCD, "tRCD");
        require(last_col, i, t_.tBURST, "tBURST (data bus)");
        if (last_wr_any) {
          require(last_wr_any, i, t_.tBURST + t_.tWTR, "tWTR");
        }
        b->last_rd = i;
        last_col = i;
        break;
      }
      case CmdType::kWrite: {
        require(b->last_act, i, t_.tRCD, "tRCD");
        require(last_col, i, t_.tBURST, "tBURST (data bus)");
        b->last_wr = i;
        last_col = i;
        last_wr_any = i;
        break;
      }
      case CmdType::kPrecharge: {
        require(b->last_act, i, t_.tRAS, "tRAS");
        require(b->last_rd, i, t_.tBURST + t_.tRTP, "tRTP");
        require(b->last_wr, i, t_.tCWL + t_.tBURST + t_.tWR, "tWR");
        b->last_pre = i;
        b->row_open = false;
        break;
      }
      case CmdType::kRefresh: {
        // The rank's banks must be precharged, past tRP, and past any
        // per-bank refresh still in flight (other ranks are unaffected).
        const std::uint32_t first_bk =
            (c.bank / banks_per_rank) * banks_per_rank;
        const std::uint32_t end_bk =
            std::min(first_bk + banks_per_rank, num_banks);
        for (std::uint32_t bk = first_bk; bk < end_bk; ++bk) {
          if (banks[bk].row_open) {
            out.push_back({.first_index = banks[bk].last_act.value_or(0),
                           .second_index = i,
                           .rule = "REF with open row (bank " +
                                   std::to_string(bk) + ")",
                           .required_gap = 0,
                           .actual_gap = 0});
          }
          require(banks[bk].last_pre, i, t_.tRP, "tRP before REF");
          require(banks[bk].last_refb, i, t_.tRFCpb, "tRFCpb before REF");
        }
        rk.last_ref = i;
        break;
      }
      case CmdType::kRefreshBank: {
        // Back-to-back REFpb to the same bank must be tRFCpb apart.
        require(b->last_refb, i, t_.tRFCpb, "tRFCpb (REFB to REFB)");
        if (!sarp_overlap) {
          // Without SARP the target bank must be precharged and past tRP.
          if (b->row_open) {
            out.push_back({.first_index = b->last_act.value_or(0),
                           .second_index = i,
                           .rule = "REFB with open row (bank " +
                                   std::to_string(c.bank) + ")",
                           .required_gap = 0,
                           .actual_gap = 0});
          }
          require(b->last_pre, i, t_.tRP, "tRP before REFB");
        }
        b->last_refb = i;
        break;
      }
      case CmdType::kPowerDownExit:
        rk.last_wakeup = i;
        rk.wakeup_gap = t_.tXP;
        break;
      case CmdType::kSelfRefreshExit:
        // Self-refresh is device-wide: every rank pays tXSR.
        for (auto& r : ranks) {
          r.last_wakeup = i;
          r.wakeup_gap = t_.tXSR;
        }
        break;
      case CmdType::kPowerDownEnter:
      case CmdType::kSelfRefreshEnter:
        break;
    }
  }
  return out;
}

}  // namespace mecc::dram
