// DRAM command log and JEDEC timing-compliance checker.
//
// The Device can record every command it issues; the TimingChecker then
// replays the log and verifies all pairwise timing constraints (tRCD,
// tRP, tRAS, tCCD/tBURST, tWTR, tWR, tRTP, tRRD, tFAW, tRFC, tXP, tXSR)
// independently of the issue-time logic. Running random traffic through
// the controller and asserting zero violations catches scheduler bugs
// the unit tests cannot see. This mirrors the validation harness real
// memory-controller teams ship with their simulators.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dram/dram_params.h"

namespace mecc::dram {

enum class CmdType : std::uint8_t {
  kActivate,
  kRead,
  kWrite,
  kPrecharge,
  kRefresh,
  kPowerDownEnter,
  kPowerDownExit,
  kSelfRefreshEnter,
  kSelfRefreshExit,
  kRefreshBank,  // per-bank refresh (REFpb, docs/SCHEDULING.md)
};

[[nodiscard]] std::string cmd_name(CmdType t);

struct Command {
  CmdType type = CmdType::kActivate;
  std::uint32_t bank = 0;  // meaningless for rank-level commands
  std::uint32_t row = 0;   // ACT only
  std::uint64_t cycle = 0; // memory cycles
};

struct TimingViolation {
  std::size_t first_index = 0;   // offending earlier command
  std::size_t second_index = 0;  // command issued too soon
  std::string rule;
  std::uint64_t required_gap = 0;
  std::uint64_t actual_gap = 0;

  [[nodiscard]] std::string to_string() const;
};

class TimingChecker {
 public:
  explicit TimingChecker(const Timing& timing) : t_(timing) {}

  /// Replays a command log; returns every violation found (empty = the
  /// schedule is timing-clean). `sarp_overlap` relaxes the per-bank
  /// refresh rules to the SARP contract (docs/SCHEDULING.md): a REFpb
  /// may be issued with a row open in a different subarray and same-bank
  /// commands may proceed during tRFCpb, so the checker only enforces
  /// the REFpb-to-REFpb same-bank gap there. Pass the same value the
  /// controller ran with (ControllerConfig::sarp).
  ///
  /// `banks_per_rank` scopes the rank-level rules (tRRD, tFAW, tRFC,
  /// tXP wake-up, REF all-banks-precharged) to each rank's bank group —
  /// a REF or PDX on rank 0 does not constrain rank 1 (docs/SCALING.md).
  /// Bank ids are global (rank * banks_per_rank + bank), matching the
  /// Device command log. 0 (the default) means all banks are one rank.
  /// The data-bus rules (tBURST, tWTR) stay channel-global: ranks share
  /// the bus. Self-refresh entry/exit is device-wide, so its tXSR
  /// wake-up penalty applies to every rank.
  [[nodiscard]] std::vector<TimingViolation> check(
      const std::vector<Command>& log, std::uint32_t num_banks,
      bool sarp_overlap = false, std::uint32_t banks_per_rank = 0) const;

 private:
  Timing t_;
};

}  // namespace mecc::dram
