#include "ecc/bch.h"

#include <bit>
#include <cassert>
#include <set>
#include <stdexcept>
#include <vector>

namespace mecc::ecc {

using galois::Elem;
using galois::Gf2Poly;
using galois::GfmPoly;

namespace {

/// Per-thread decode scratch: the campaign hot loop decodes millions of
/// lines, so the per-call vectors are reused instead of reallocated.
struct DecodeScratch {
  std::vector<Elem> syn_odd;
  std::vector<Elem> syn;
  std::vector<Elem> chien_terms;
  std::vector<Elem> chien_steps;
  std::vector<std::size_t> error_positions;
};

DecodeScratch& scratch() {
  thread_local DecodeScratch s;
  return s;
}

}  // namespace

Bch::Bch(unsigned m, std::size_t t, std::size_t data_bits)
    : gf_(m), t_(t), k_(data_bits) {
  if (t == 0) throw std::invalid_argument("Bch: t must be >= 1");

  // g(x) = LCM of minimal polynomials of alpha^1 .. alpha^2t. Minimal
  // polynomials repeat across a cyclotomic coset, so collect the distinct
  // ones (it suffices to look at odd powers; even powers share cosets).
  std::set<std::uint64_t> distinct;
  gen_ = Gf2Poly::from_mask(1);  // the constant 1
  for (std::uint32_t i = 1; i <= 2 * t; ++i) {
    const std::uint64_t mp = gf_.minimal_poly(i);
    if (distinct.insert(mp).second) {
      gen_ = gen_ * Gf2Poly::from_mask(mp);
    }
  }
  p_ = static_cast<std::size_t>(gen_.degree());
  if (k_ + p_ > gf_.order()) {
    throw std::invalid_argument("Bch: data does not fit in 2^m - 1 bits");
  }
  n_ = k_ + p_;

  if (p_ <= 63) {
    for (std::size_t j = 0; j <= p_; ++j) {
      if (gen_.coeff(j)) gen_mask_ |= 1ull << j;
    }
  }

  // Syndrome byte tables. polypos maps external codeword bit positions
  // (data first) to polynomial coefficient positions (parity low).
  const auto polypos = [this](std::size_t cwpos) {
    return cwpos < k_ ? p_ + cwpos : cwpos - k_;
  };
  const std::size_t n_bytes = (n_ + 7) / 8;
  syn_tables_.assign(n_bytes * t_ * 256, 0);
  for (std::size_t byte = 0; byte < n_bytes; ++byte) {
    for (std::size_t oi = 0; oi < t_; ++oi) {
      const std::size_t j = 2 * oi + 1;
      Elem basis[8] = {};
      for (unsigned b = 0; b < 8; ++b) {
        const std::size_t cwpos = byte * 8 + b;
        if (cwpos >= n_) break;  // pad bits never contribute
        basis[b] = gf_.alpha_pow(
            static_cast<std::uint32_t>((polypos(cwpos) * j) % gf_.order()));
      }
      // Subset-XOR dynamic program: each value extends the one with its
      // lowest set bit cleared.
      Elem* tbl = &syn_tables_[(byte * t_ + oi) * 256];
      for (unsigned v = 1; v < 256; ++v) {
        tbl[v] = tbl[v & (v - 1)] ^
                 basis[static_cast<unsigned>(std::countr_zero(v))];
      }
    }
  }
}

BitVec Bch::encode(const BitVec& data) const {
  assert(data.size() == k_);
  // Systematic encoding: parity(x) = (data(x) * x^p) mod g(x).
  BitVec cw(n_);
  cw.splice(0, data);
  if (p_ <= 63) {
    // Single-word LFSR division: stream the k + p coefficients of
    // data(x) * x^p, highest first, through the register.
    std::uint64_t rem = 0;
    for (std::size_t i = k_; i-- > 0;) {
      rem = (rem << 1) | static_cast<std::uint64_t>(data.get(i));
      if ((rem >> p_) & 1u) rem ^= gen_mask_;
    }
    for (std::size_t i = 0; i < p_; ++i) {
      rem <<= 1;
      if ((rem >> p_) & 1u) rem ^= gen_mask_;
    }
    cw.splice(k_, BitVec::from_u64(rem, p_));
  } else {
    BitVec shifted(n_);
    shifted.splice(p_, data);
    const Gf2Poly rem = Gf2Poly::from_bits(shifted).mod(gen_);
    for (std::size_t j = 0; j < p_; ++j) {
      cw.set(k_ + j, rem.coeff(j));
    }
  }
  return cw;
}

DecodeResult Bch::decode(const BitVec& codeword) const {
  assert(codeword.size() == codeword_bits());
  DecodeResult res;
  DecodeScratch& sc = scratch();

  // Odd syndromes S_j = r(alpha^j) by table scan of the set bytes; even
  // ones by squaring (S_2j = S_j^2 for GF(2) coefficient polynomials).
  sc.syn_odd.assign(t_, 0);
  const auto words = codeword.words();
  for (std::size_t w = 0; w < words.size(); ++w) {
    std::uint64_t word = words[w];
    while (word != 0) {
      const unsigned byte_in_word =
          static_cast<unsigned>(std::countr_zero(word)) >> 3;
      const unsigned v =
          static_cast<unsigned>((word >> (byte_in_word * 8)) & 0xff);
      const Elem* tbl =
          &syn_tables_[((w * 8 + byte_in_word) * t_) * 256];
      for (std::size_t oi = 0; oi < t_; ++oi) {
        sc.syn_odd[oi] ^= tbl[oi * 256 + v];
      }
      word &= ~(0xffull << (byte_in_word * 8));
    }
  }
  sc.syn.assign(2 * t_ + 1, 0);
  bool any_syndrome = false;
  for (std::size_t j = 1; j <= 2 * t_; ++j) {
    const Elem s = (j & 1) != 0 ? sc.syn_odd[j >> 1]
                                : gf_.mul(sc.syn[j >> 1], sc.syn[j >> 1]);
    sc.syn[j] = s;
    any_syndrome |= (s != 0);
  }
  const std::vector<Elem>& syn = sc.syn;

  if (!any_syndrome) {
    res.status = DecodeStatus::kClean;
    res.data = codeword.slice(0, k_);
    return res;
  }

  // Berlekamp-Massey: find the minimal LFSR (error-locator polynomial
  // lambda) generating the syndrome sequence.
  GfmPoly lambda(std::vector<Elem>{1});
  GfmPoly prev(std::vector<Elem>{1});
  std::size_t L = 0;
  std::size_t shift = 1;
  Elem prev_disc = 1;
  for (std::size_t it = 0; it < 2 * t_; ++it) {
    // Discrepancy d = S[it+1] + sum_{i=1..L} lambda_i * S[it+1-i].
    Elem d = syn[it + 1];
    for (std::size_t i = 1; i <= L; ++i) {
      d = galois::GaloisField::add(
          d, gf_.mul(lambda.coeff(i), syn[it + 1 - i]));
    }
    if (d == 0) {
      ++shift;
    } else if (2 * L <= it) {
      const GfmPoly tmp = lambda;
      lambda = lambda.add(prev.scale(gf_, gf_.div(d, prev_disc)).shift(shift));
      L = it + 1 - L;
      prev = tmp;
      prev_disc = d;
      shift = 1;
    } else {
      lambda = lambda.add(prev.scale(gf_, gf_.div(d, prev_disc)).shift(shift));
      ++shift;
    }
  }

  if (L > t_ || static_cast<std::size_t>(lambda.degree()) != L) {
    res.status = DecodeStatus::kUncorrectable;
    return res;
  }

  // Chien search: position i is in error iff lambda(alpha^-i) == 0.
  // Only positions < n can be in error (roots beyond n would land in the
  // shortened always-zero prefix), and lambda of degree L has at most L
  // roots in the whole field — so scanning [0, n) and demanding exactly
  // L roots is equivalent to the full-field scan, and the scan can stop
  // as soon as the L-th root appears. Terms update incrementally:
  // term_k(i+1) = term_k(i) * alpha^-k.
  sc.chien_terms.assign(L + 1, 0);
  sc.chien_steps.assign(L + 1, 1);
  for (std::size_t c = 0; c <= L; ++c) {
    sc.chien_terms[c] = lambda.coeff(c);
    sc.chien_steps[c] = gf_.alpha_pow(
        gf_.order() - static_cast<std::uint32_t>(c % gf_.order()));
  }
  sc.error_positions.clear();
  for (std::size_t i = 0; i < n_; ++i) {
    Elem sum = 0;
    for (std::size_t c = 0; c <= L; ++c) sum ^= sc.chien_terms[c];
    if (sum == 0) {
      sc.error_positions.push_back(i);
      if (sc.error_positions.size() == L) break;
    }
    for (std::size_t c = 1; c <= L; ++c) {
      sc.chien_terms[c] = gf_.mul(sc.chien_terms[c], sc.chien_steps[c]);
    }
  }
  if (sc.error_positions.size() != L) {
    res.status = DecodeStatus::kUncorrectable;
    return res;
  }

  // Error positions are polynomial positions: [0, p) hit parity bits
  // only; [p, n) map back to data bit pos - p.
  res.status = DecodeStatus::kCorrected;
  res.corrected_bits = sc.error_positions.size();
  res.data = codeword.slice(0, k_);
  for (auto pos : sc.error_positions) {
    if (pos >= p_) res.data.flip(pos - p_);
  }
  return res;
}

std::string Bch::name() const {
  return "BCH(t=" + std::to_string(t_) + ",k=" + std::to_string(k_) +
         ",p=" + std::to_string(p_) + ")";
}

}  // namespace mecc::ecc
