#include "ecc/bch.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>
#include <vector>

namespace mecc::ecc {

using galois::Elem;
using galois::Gf2Poly;
using galois::GfmPoly;

Bch::Bch(unsigned m, std::size_t t, std::size_t data_bits)
    : gf_(m), t_(t), k_(data_bits) {
  if (t == 0) throw std::invalid_argument("Bch: t must be >= 1");

  // g(x) = LCM of minimal polynomials of alpha^1 .. alpha^2t. Minimal
  // polynomials repeat across a cyclotomic coset, so collect the distinct
  // ones (it suffices to look at odd powers; even powers share cosets).
  std::set<std::uint64_t> distinct;
  gen_ = Gf2Poly::from_mask(1);  // the constant 1
  for (std::uint32_t i = 1; i <= 2 * t; ++i) {
    const std::uint64_t mp = gf_.minimal_poly(i);
    if (distinct.insert(mp).second) {
      gen_ = gen_ * Gf2Poly::from_mask(mp);
    }
  }
  p_ = static_cast<std::size_t>(gen_.degree());
  if (k_ + p_ > gf_.order()) {
    throw std::invalid_argument("Bch: data does not fit in 2^m - 1 bits");
  }
}

BitVec Bch::to_poly_coeffs(const BitVec& codeword) const {
  // Polynomial layout: coefficients [0, p) = parity, [p, p + k) = data.
  BitVec poly(p_ + k_);
  for (std::size_t i = 0; i < k_; ++i) poly.set(p_ + i, codeword.get(i));
  for (std::size_t j = 0; j < p_; ++j) poly.set(j, codeword.get(k_ + j));
  return poly;
}

BitVec Bch::encode(const BitVec& data) const {
  assert(data.size() == k_);
  // Systematic encoding: parity(x) = (data(x) * x^p) mod g(x).
  BitVec shifted(p_ + k_);
  shifted.splice(p_, data);
  const Gf2Poly rem = Gf2Poly::from_bits(shifted).mod(gen_);

  BitVec cw(k_ + p_);
  cw.splice(0, data);
  for (std::size_t j = 0; j < p_; ++j) {
    cw.set(k_ + j, rem.coeff(j));
  }
  return cw;
}

DecodeResult Bch::decode(const BitVec& codeword) const {
  assert(codeword.size() == codeword_bits());
  DecodeResult res;
  const BitVec poly = to_poly_coeffs(codeword);
  const std::size_t n = poly.size();

  // Syndromes S_j = r(alpha^j), j = 1 .. 2t. Only the set coefficient
  // positions contribute (r has GF(2) coefficients).
  const auto error_positions_hint = poly.set_positions();
  std::vector<Elem> syn(2 * t_ + 1, 0);
  bool any_syndrome = false;
  for (std::size_t j = 1; j <= 2 * t_; ++j) {
    Elem s = 0;
    for (auto pos : error_positions_hint) {
      s = galois::GaloisField::add(
          s, gf_.alpha_pow(static_cast<std::uint32_t>((pos * j) % gf_.order())));
    }
    syn[j] = s;
    any_syndrome |= (s != 0);
  }

  if (!any_syndrome) {
    res.status = DecodeStatus::kClean;
    res.data = codeword.slice(0, k_);
    return res;
  }

  // Berlekamp-Massey: find the minimal LFSR (error-locator polynomial
  // lambda) generating the syndrome sequence.
  GfmPoly lambda(std::vector<Elem>{1});
  GfmPoly prev(std::vector<Elem>{1});
  std::size_t L = 0;
  std::size_t shift = 1;
  Elem prev_disc = 1;
  for (std::size_t it = 0; it < 2 * t_; ++it) {
    // Discrepancy d = S[it+1] + sum_{i=1..L} lambda_i * S[it+1-i].
    Elem d = syn[it + 1];
    for (std::size_t i = 1; i <= L; ++i) {
      d = galois::GaloisField::add(
          d, gf_.mul(lambda.coeff(i), syn[it + 1 - i]));
    }
    if (d == 0) {
      ++shift;
    } else if (2 * L <= it) {
      const GfmPoly tmp = lambda;
      lambda = lambda.add(prev.scale(gf_, gf_.div(d, prev_disc)).shift(shift));
      L = it + 1 - L;
      prev = tmp;
      prev_disc = d;
      shift = 1;
    } else {
      lambda = lambda.add(prev.scale(gf_, gf_.div(d, prev_disc)).shift(shift));
      ++shift;
    }
  }

  if (L > t_ || static_cast<std::size_t>(lambda.degree()) != L) {
    res.status = DecodeStatus::kUncorrectable;
    return res;
  }

  // Chien search: position i is in error iff lambda(alpha^-i) == 0.
  // Roots landing at i >= n would be inside the shortened (always-zero)
  // prefix, which cannot be in error -> decode failure.
  std::vector<std::size_t> error_positions;
  std::size_t roots_found = 0;
  for (std::uint32_t i = 0; i < gf_.order(); ++i) {
    const Elem x = gf_.alpha_pow((gf_.order() - i) % gf_.order());
    if (lambda.eval(gf_, x) == 0) {
      ++roots_found;
      if (i < n) error_positions.push_back(i);
    }
  }
  if (roots_found != L || error_positions.size() != L) {
    res.status = DecodeStatus::kUncorrectable;
    return res;
  }

  BitVec fixed = poly;
  for (auto pos : error_positions) fixed.flip(pos);

  res.status = DecodeStatus::kCorrected;
  res.corrected_bits = error_positions.size();
  res.data = BitVec(k_);
  for (std::size_t i = 0; i < k_; ++i) res.data.set(i, fixed.get(p_ + i));
  return res;
}

std::string Bch::name() const {
  return "BCH(t=" + std::to_string(t_) + ",k=" + std::to_string(k_) +
         ",p=" + std::to_string(p_) + ")";
}

}  // namespace mecc::ecc
