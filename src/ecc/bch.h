// Binary BCH code, shortened and systematic, correcting up to t errors.
//
// This is the paper's "strong ECC" (S III-E): ECC-6 over a 64-byte line is
// Bch(/*m=*/10, /*t=*/6, /*data_bits=*/512), which needs t*m = 60 parity
// bits - exactly the budget left in the (72,64) spare space after the four
// replicated ECC-mode bits (S III-D).
//
// Encoding is systematic polynomial division by the generator g(x) (the
// LCM of the minimal polynomials of alpha^1 .. alpha^2t). Decoding runs
// syndrome computation, Berlekamp-Massey, and Chien search.
#pragma once

#include <cstddef>

#include "ecc/code.h"
#include "galois/gf.h"
#include "galois/gf2_poly.h"
#include "galois/gfm_poly.h"

namespace mecc::ecc {

class Bch final : public Code {
 public:
  /// GF(2^m), corrects up to `t` errors over `data_bits` data bits.
  /// Requires data_bits + parity <= 2^m - 1. Throws std::invalid_argument
  /// if the code does not fit.
  Bch(unsigned m, std::size_t t, std::size_t data_bits);

  [[nodiscard]] std::size_t data_bits() const override { return k_; }
  [[nodiscard]] std::size_t parity_bits() const override { return p_; }
  [[nodiscard]] std::size_t correct_capability() const override { return t_; }

  /// Codeword layout: bits [0, k) = data, bits [k, k+p) = parity.
  [[nodiscard]] BitVec encode(const BitVec& data) const override;
  [[nodiscard]] DecodeResult decode(const BitVec& codeword) const override;

  [[nodiscard]] std::string name() const override;

  /// The generator polynomial g(x).
  [[nodiscard]] const galois::Gf2Poly& generator() const { return gen_; }

 private:
  // Maps external codeword layout (data first) to polynomial coefficients
  // (parity = low-order coefficients, data above them) and back.
  [[nodiscard]] BitVec to_poly_coeffs(const BitVec& codeword) const;

  galois::GaloisField gf_;
  std::size_t t_;   // correction capability
  std::size_t k_;   // data bits
  std::size_t p_;   // parity bits = deg(g)
  galois::Gf2Poly gen_;
};

}  // namespace mecc::ecc
