// Binary BCH code, shortened and systematic, correcting up to t errors.
//
// This is the paper's "strong ECC" (S III-E): ECC-6 over a 64-byte line is
// Bch(/*m=*/10, /*t=*/6, /*data_bits=*/512), which needs t*m = 60 parity
// bits - exactly the budget left in the (72,64) spare space after the four
// replicated ECC-mode bits (S III-D).
//
// Encoding is systematic polynomial division by the generator g(x) (the
// LCM of the minimal polynomials of alpha^1 .. alpha^2t). Decoding runs
// syndrome computation, Berlekamp-Massey, and Chien search.
//
// The hot paths are word-parallel (docs/PERFORMANCE.md):
//   * encode runs the division as a <= 63-bit LFSR in one machine word
//     (generic Gf2Poly division only when deg g > 63, e.g. t=7 at m=10);
//   * syndromes come from per-(byte position, odd j) contribution tables
//     precomputed at construction — GF(2) linearity lets one 256-entry
//     lookup replace eight alpha_pow multiplies — with even syndromes
//     squared from odd ones (S_2j = S_j^2 in characteristic 2), so the
//     clean-codeword fast path is a table-scan of the set bytes only;
//   * Chien search strides only positions < n with incremental term
//     updates instead of evaluating lambda over the whole field.
// The retained bit-at-a-time oracle lives in ecc/scalar_reference.h; the
// differential suite keeps the two bit-identical.
#pragma once

#include <cstddef>

#include "ecc/code.h"
#include "galois/gf.h"
#include "galois/gf2_poly.h"
#include "galois/gfm_poly.h"

namespace mecc::ecc {

class Bch final : public Code {
 public:
  /// GF(2^m), corrects up to `t` errors over `data_bits` data bits.
  /// Requires data_bits + parity <= 2^m - 1. Throws std::invalid_argument
  /// if the code does not fit.
  Bch(unsigned m, std::size_t t, std::size_t data_bits);

  [[nodiscard]] std::size_t data_bits() const override { return k_; }
  [[nodiscard]] std::size_t parity_bits() const override { return p_; }
  [[nodiscard]] std::size_t correct_capability() const override { return t_; }

  /// Codeword layout: bits [0, k) = data, bits [k, k+p) = parity.
  [[nodiscard]] BitVec encode(const BitVec& data) const override;
  [[nodiscard]] DecodeResult decode(const BitVec& codeword) const override;

  [[nodiscard]] std::string name() const override;

  /// The generator polynomial g(x).
  [[nodiscard]] const galois::Gf2Poly& generator() const { return gen_; }

 private:
  galois::GaloisField gf_;
  std::size_t t_;   // correction capability
  std::size_t k_;   // data bits
  std::size_t p_;   // parity bits = deg(g)
  std::size_t n_;   // codeword bits = k + p
  galois::Gf2Poly gen_;

  // g(x) as a single word for the LFSR encoder; only valid when
  // p_ <= 63 (encode falls back to Gf2Poly division otherwise).
  std::uint64_t gen_mask_ = 0;

  // Syndrome contribution tables, codeword byte layout. For byte
  // position B and odd syndrome index oi (j = 2*oi + 1), entry
  // [(B * t + oi) * 256 + v] is sum over set bits b of v of
  // alpha^(polypos(8B + b) * j), where polypos maps the external
  // codeword layout to polynomial coefficient positions (parity bits
  // are the low-order coefficients, data above them).
  std::vector<galois::Elem> syn_tables_;
};

}  // namespace mecc::ecc
