// Abstract interface for block error-correcting codes.
//
// All codecs in this library are *real*: they produce actual parity bits
// and correct actual bit flips. The performance simulator consumes only
// their modeled latency (latency_model.h), but tests and the fault-
// injection harness exercise the bit-level machinery end to end.
#pragma once

#include <cstddef>
#include <string>

#include "common/bitvec.h"

namespace mecc::ecc {

enum class DecodeStatus {
  kClean,          // no error present
  kCorrected,      // error(s) found and corrected
  kUncorrectable,  // error detected but beyond correction capability
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kClean;
  BitVec data;                    // recovered data bits
  std::size_t corrected_bits = 0; // number of bit positions flipped back
};

class Code {
 public:
  virtual ~Code() = default;

  /// Number of data bits per codeword.
  [[nodiscard]] virtual std::size_t data_bits() const = 0;
  /// Number of parity (check) bits per codeword.
  [[nodiscard]] virtual std::size_t parity_bits() const = 0;
  /// Total codeword length.
  [[nodiscard]] std::size_t codeword_bits() const {
    return data_bits() + parity_bits();
  }
  /// Guaranteed random-error correction capability t.
  [[nodiscard]] virtual std::size_t correct_capability() const = 0;

  /// Encodes `data` (must be data_bits() long) into a codeword.
  [[nodiscard]] virtual BitVec encode(const BitVec& data) const = 0;
  /// Decodes a (possibly corrupted) codeword.
  [[nodiscard]] virtual DecodeResult decode(const BitVec& codeword) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace mecc::ecc
