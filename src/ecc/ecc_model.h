// Timing / energy / area model for the ECC schemes (paper S III-E).
//
// The performance simulator never runs the bit-level codecs on the access
// path; it charges these modeled costs instead. The defaults are the
// paper's: SECDED decodes in 2 CPU cycles (~3K XOR gates), ECC-6 (BCH) in
// 30 cycles (~100K-200K gates, sweepable 15..60 for Fig. 12), and every
// encoder finishes in 1 cycle (a few XOR gate delays).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace mecc::ecc {

/// The ECC protection level a line can be stored with.
enum class Scheme : std::uint8_t {
  kNone = 0,    // no error correction (performance baseline)
  kSecded = 1,  // weak ECC: SEC-DED at line granularity (11 check bits)
  kEcc6 = 2,    // strong ECC: BCH t=6 at line granularity (60 check bits)
};

[[nodiscard]] inline std::string scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kNone:
      return "NoECC";
    case Scheme::kSecded:
      return "SECDED";
    case Scheme::kEcc6:
      return "ECC-6";
  }
  return "?";
}

struct SchemeCosts {
  Cycle decode_cycles = 0;   // added to the read critical path
  Cycle encode_cycles = 0;   // hidden behind the write queue
  double decode_energy_pj = 0.0;
  double encode_energy_pj = 0.0;
  std::uint64_t gate_count = 0;  // logic area, XOR-gate equivalents
};

class EccModel {
 public:
  EccModel() = default;

  /// Overrides the strong-ECC decode latency (Fig. 12 sweep).
  void set_ecc6_decode_cycles(Cycle c) { ecc6_decode_cycles_ = c; }

  /// Modeled decode latency for an arbitrary BCH correction strength t.
  /// Chien-search decoders scale linearly in t (paper S III-E, citing
  /// Chien 1964): 5 cycles per corrected bit reproduces the paper's
  /// 30 cycles at t = 6; t = 1 is the 2-cycle Hamming special case.
  [[nodiscard]] static Cycle decode_cycles_for_strength(std::size_t t) {
    if (t == 0) return 0;
    if (t == 1) return 2;
    return static_cast<Cycle>(5 * t);
  }

  /// Modeled decoder area for strength t (XOR-gate equivalents), linear
  /// in t per the same scaling argument (~150K gates at t = 6).
  [[nodiscard]] static std::uint64_t gates_for_strength(std::size_t t) {
    if (t == 0) return 0;
    if (t == 1) return 3'000;
    return 25'000 * t;
  }

  [[nodiscard]] SchemeCosts costs(Scheme s) const {
    switch (s) {
      case Scheme::kNone:
        return {};
      case Scheme::kSecded:
        // ~3K XOR gates, 2-cycle decode, ~4 pJ per 64 B line.
        return {.decode_cycles = 2,
                .encode_cycles = 1,
                .decode_energy_pj = 4.0,
                .encode_energy_pj = 2.0,
                .gate_count = 3'000};
      case Scheme::kEcc6:
        // ~150K gates, 30-cycle decode default, ~40 pJ per 64 B line.
        return {.decode_cycles = ecc6_decode_cycles_,
                .encode_cycles = 1,
                .decode_energy_pj = 40.0,
                .encode_energy_pj = 6.0,
                .gate_count = 150'000};
    }
    return {};
  }

  [[nodiscard]] Cycle decode_cycles(Scheme s) const {
    return costs(s).decode_cycles;
  }

 private:
  Cycle ecc6_decode_cycles_ = 30;
};

}  // namespace mecc::ecc
