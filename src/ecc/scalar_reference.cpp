// Verbatim copies of the pre-vectorization codec hot paths; see the
// header for why these stay bit-at-a-time.
#include "ecc/scalar_reference.h"

#include <cassert>
#include <set>
#include <stdexcept>

#include "galois/gfm_poly.h"

namespace mecc::ecc::reference {

namespace {

[[nodiscard]] bool is_power_of_two(std::uint32_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

}  // namespace

ScalarSecded::ScalarSecded(std::size_t data_bits) : k_(data_bits) {
  if (data_bits < 4) {
    throw std::invalid_argument("ScalarSecded: data_bits must be >= 4");
  }
  r_ = 1;
  while ((1ull << r_) < k_ + r_ + 1) ++r_;
  if (r_ >= 32) {
    throw std::invalid_argument("ScalarSecded: data_bits too large");
  }

  tags_.resize(k_ + r_);
  tag_to_pos_.assign(1ull << r_, static_cast<std::size_t>(-1));
  std::uint32_t next_tag = 3;
  for (std::size_t i = 0; i < k_; ++i) {
    while (is_power_of_two(next_tag)) ++next_tag;
    tags_[i] = next_tag;
    tag_to_pos_[next_tag] = i;
    ++next_tag;
  }
  for (std::size_t i = 0; i < r_; ++i) {
    tags_[k_ + i] = 1u << i;
    tag_to_pos_[1u << i] = k_ + i;
  }
}

BitVec ScalarSecded::encode(const BitVec& data) const {
  assert(data.size() == k_);
  BitVec cw(k_ + r_ + 1);
  cw.splice(0, data);
  for (std::size_t i = 0; i < r_; ++i) {
    bool p = false;
    for (std::size_t d = 0; d < k_; ++d) {
      if ((tags_[d] >> i) & 1u) p ^= data.get(d);
    }
    cw.set(k_ + i, p);
  }
  bool overall = false;
  for (std::size_t i = 0; i < k_ + r_; ++i) overall ^= cw.get(i);
  cw.set(k_ + r_, overall);
  return cw;
}

std::uint32_t ScalarSecded::syndrome_of(const BitVec& codeword) const {
  std::uint32_t s = 0;
  for (std::size_t i = 0; i < k_ + r_; ++i) {
    if (codeword.get(i)) s ^= tags_[i];
  }
  return s;
}

DecodeResult ScalarSecded::decode(const BitVec& codeword) const {
  assert(codeword.size() == codeword_bits());
  DecodeResult res;
  const std::uint32_t s = syndrome_of(codeword);
  bool parity = false;
  for (std::size_t i = 0; i < codeword.size(); ++i) parity ^= codeword.get(i);

  if (s == 0 && !parity) {
    res.status = DecodeStatus::kClean;
    res.data = codeword.slice(0, k_);
    return res;
  }
  if (s == 0 && parity) {
    res.status = DecodeStatus::kCorrected;
    res.corrected_bits = 1;
    res.data = codeword.slice(0, k_);
    return res;
  }
  if (parity) {
    const std::size_t pos = s < tag_to_pos_.size()
                                ? tag_to_pos_[s]
                                : static_cast<std::size_t>(-1);
    if (pos == static_cast<std::size_t>(-1)) {
      res.status = DecodeStatus::kUncorrectable;
      return res;
    }
    BitVec fixed = codeword;
    fixed.flip(pos);
    res.status = DecodeStatus::kCorrected;
    res.corrected_bits = 1;
    res.data = fixed.slice(0, k_);
    return res;
  }
  res.status = DecodeStatus::kUncorrectable;
  return res;
}

std::string ScalarSecded::name() const {
  return "ScalarSECDED(" + std::to_string(codeword_bits()) + "," +
         std::to_string(k_) + ")";
}

using galois::Elem;
using galois::Gf2Poly;
using galois::GfmPoly;

ScalarBch::ScalarBch(unsigned m, std::size_t t, std::size_t data_bits)
    : gf_(m), t_(t), k_(data_bits) {
  if (t == 0) throw std::invalid_argument("ScalarBch: t must be >= 1");

  std::set<std::uint64_t> distinct;
  gen_ = Gf2Poly::from_mask(1);
  for (std::uint32_t i = 1; i <= 2 * t; ++i) {
    const std::uint64_t mp = gf_.minimal_poly(i);
    if (distinct.insert(mp).second) {
      gen_ = gen_ * Gf2Poly::from_mask(mp);
    }
  }
  p_ = static_cast<std::size_t>(gen_.degree());
  if (k_ + p_ > gf_.order()) {
    throw std::invalid_argument("ScalarBch: data does not fit in 2^m - 1 bits");
  }
}

BitVec ScalarBch::to_poly_coeffs(const BitVec& codeword) const {
  BitVec poly(p_ + k_);
  for (std::size_t i = 0; i < k_; ++i) poly.set(p_ + i, codeword.get(i));
  for (std::size_t j = 0; j < p_; ++j) poly.set(j, codeword.get(k_ + j));
  return poly;
}

BitVec ScalarBch::encode(const BitVec& data) const {
  assert(data.size() == k_);
  BitVec shifted(p_ + k_);
  shifted.splice(p_, data);
  const Gf2Poly rem = Gf2Poly::from_bits(shifted).mod(gen_);

  BitVec cw(k_ + p_);
  cw.splice(0, data);
  for (std::size_t j = 0; j < p_; ++j) {
    cw.set(k_ + j, rem.coeff(j));
  }
  return cw;
}

DecodeResult ScalarBch::decode(const BitVec& codeword) const {
  assert(codeword.size() == codeword_bits());
  DecodeResult res;
  const BitVec poly = to_poly_coeffs(codeword);
  const std::size_t n = poly.size();

  const auto error_positions_hint = poly.set_positions();
  std::vector<Elem> syn(2 * t_ + 1, 0);
  bool any_syndrome = false;
  for (std::size_t j = 1; j <= 2 * t_; ++j) {
    Elem s = 0;
    for (auto pos : error_positions_hint) {
      s = galois::GaloisField::add(
          s, gf_.alpha_pow(static_cast<std::uint32_t>((pos * j) % gf_.order())));
    }
    syn[j] = s;
    any_syndrome |= (s != 0);
  }

  if (!any_syndrome) {
    res.status = DecodeStatus::kClean;
    res.data = codeword.slice(0, k_);
    return res;
  }

  GfmPoly lambda(std::vector<Elem>{1});
  GfmPoly prev(std::vector<Elem>{1});
  std::size_t L = 0;
  std::size_t shift = 1;
  Elem prev_disc = 1;
  for (std::size_t it = 0; it < 2 * t_; ++it) {
    Elem d = syn[it + 1];
    for (std::size_t i = 1; i <= L; ++i) {
      d = galois::GaloisField::add(
          d, gf_.mul(lambda.coeff(i), syn[it + 1 - i]));
    }
    if (d == 0) {
      ++shift;
    } else if (2 * L <= it) {
      const GfmPoly tmp = lambda;
      lambda = lambda.add(prev.scale(gf_, gf_.div(d, prev_disc)).shift(shift));
      L = it + 1 - L;
      prev = tmp;
      prev_disc = d;
      shift = 1;
    } else {
      lambda = lambda.add(prev.scale(gf_, gf_.div(d, prev_disc)).shift(shift));
      ++shift;
    }
  }

  if (L > t_ || static_cast<std::size_t>(lambda.degree()) != L) {
    res.status = DecodeStatus::kUncorrectable;
    return res;
  }

  std::vector<std::size_t> error_positions;
  std::size_t roots_found = 0;
  for (std::uint32_t i = 0; i < gf_.order(); ++i) {
    const Elem x = gf_.alpha_pow((gf_.order() - i) % gf_.order());
    if (lambda.eval(gf_, x) == 0) {
      ++roots_found;
      if (i < n) error_positions.push_back(i);
    }
  }
  if (roots_found != L || error_positions.size() != L) {
    res.status = DecodeStatus::kUncorrectable;
    return res;
  }

  BitVec fixed = poly;
  for (auto pos : error_positions) fixed.flip(pos);

  res.status = DecodeStatus::kCorrected;
  res.corrected_bits = error_positions.size();
  res.data = BitVec(k_);
  for (std::size_t i = 0; i < k_; ++i) res.data.set(i, fixed.get(p_ + i));
  return res;
}

std::string ScalarBch::name() const {
  return "ScalarBCH(t=" + std::to_string(t_) + ",k=" + std::to_string(k_) +
         ",p=" + std::to_string(p_) + ")";
}

}  // namespace mecc::ecc::reference
