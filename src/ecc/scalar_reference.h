// Retained scalar (bit-at-a-time) reference codecs.
//
// These are the pre-vectorization SECDED and BCH implementations, kept
// verbatim as the behavioral oracle: the word-parallel codecs in
// secded.cpp / bch.cpp must reproduce their DecodeResult bit for bit.
// The randomized differential suite (tests/ecc/codec_equivalence_test.cpp)
// cross-checks them on every status / corrected_bits / data field, and
// the bench_ecc_codec --throughput mode measures the vectorized speedup
// against them (the "pre-PR scalar baseline" in BENCH_perf.json).
//
// Deliberately unoptimized — do not touch these when tuning the hot
// paths; their only job is to stay what the codecs used to be.
#pragma once

#include <cstddef>
#include <vector>

#include "ecc/code.h"
#include "galois/gf.h"
#include "galois/gf2_poly.h"

namespace mecc::ecc::reference {

/// Bit-at-a-time extended Hamming SEC-DED (the pre-vectorization Secded).
class ScalarSecded final : public Code {
 public:
  explicit ScalarSecded(std::size_t data_bits);

  [[nodiscard]] std::size_t data_bits() const override { return k_; }
  [[nodiscard]] std::size_t parity_bits() const override { return r_ + 1; }
  [[nodiscard]] std::size_t correct_capability() const override { return 1; }

  [[nodiscard]] BitVec encode(const BitVec& data) const override;
  [[nodiscard]] DecodeResult decode(const BitVec& codeword) const override;

  [[nodiscard]] std::string name() const override;

 private:
  [[nodiscard]] std::uint32_t syndrome_of(const BitVec& codeword) const;

  std::size_t k_;
  std::size_t r_;
  std::vector<std::uint32_t> tags_;
  std::vector<std::size_t> tag_to_pos_;
};

/// Bit-at-a-time binary BCH (the pre-vectorization Bch).
class ScalarBch final : public Code {
 public:
  ScalarBch(unsigned m, std::size_t t, std::size_t data_bits);

  [[nodiscard]] std::size_t data_bits() const override { return k_; }
  [[nodiscard]] std::size_t parity_bits() const override { return p_; }
  [[nodiscard]] std::size_t correct_capability() const override { return t_; }

  [[nodiscard]] BitVec encode(const BitVec& data) const override;
  [[nodiscard]] DecodeResult decode(const BitVec& codeword) const override;

  [[nodiscard]] std::string name() const override;

 private:
  [[nodiscard]] BitVec to_poly_coeffs(const BitVec& codeword) const;

  galois::GaloisField gf_;
  std::size_t t_;
  std::size_t k_;
  std::size_t p_;
  galois::Gf2Poly gen_;
};

}  // namespace mecc::ecc::reference
