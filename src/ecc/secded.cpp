#include "ecc/secded.h"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace mecc::ecc {

namespace {

[[nodiscard]] bool is_power_of_two(std::uint32_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

}  // namespace

Secded::Secded(std::size_t data_bits) : k_(data_bits) {
  if (data_bits < 4) {
    throw std::invalid_argument("Secded: data_bits must be >= 4");
  }
  // Smallest r with 2^r >= k + r + 1 (classic Hamming bound).
  r_ = 1;
  while ((1ull << r_) < k_ + r_ + 1) ++r_;

  // Tags: data bits get the non-power-of-two non-zero values in ascending
  // order; Hamming check bit i gets tag 2^i. The syndrome of a clean word
  // is zero, and a single flipped bit yields exactly its tag.
  tags_.resize(k_ + r_);
  tag_to_pos_.assign(1ull << r_, static_cast<std::size_t>(-1));
  std::uint32_t next_tag = 3;
  for (std::size_t i = 0; i < k_; ++i) {
    while (is_power_of_two(next_tag)) ++next_tag;
    tags_[i] = next_tag;
    tag_to_pos_[next_tag] = i;
    ++next_tag;
  }
  for (std::size_t i = 0; i < r_; ++i) {
    tags_[k_ + i] = 1u << i;
    tag_to_pos_[1u << i] = k_ + i;
  }
}

BitVec Secded::encode(const BitVec& data) const {
  assert(data.size() == k_);
  BitVec cw(k_ + r_ + 1);
  cw.splice(0, data);
  // Hamming check bit i = XOR of data bits whose tag has bit i set.
  for (std::size_t i = 0; i < r_; ++i) {
    bool p = false;
    for (std::size_t d = 0; d < k_; ++d) {
      if ((tags_[d] >> i) & 1u) p ^= data.get(d);
    }
    cw.set(k_ + i, p);
  }
  // Overall parity: make the whole codeword even-weight.
  bool overall = false;
  for (std::size_t i = 0; i < k_ + r_; ++i) overall ^= cw.get(i);
  cw.set(k_ + r_, overall);
  return cw;
}

std::uint32_t Secded::syndrome_of(const BitVec& codeword) const {
  std::uint32_t s = 0;
  for (std::size_t i = 0; i < k_ + r_; ++i) {
    if (codeword.get(i)) s ^= tags_[i];
  }
  return s;
}

DecodeResult Secded::decode(const BitVec& codeword) const {
  assert(codeword.size() == codeword_bits());
  DecodeResult res;
  const std::uint32_t s = syndrome_of(codeword);
  bool parity = false;
  for (std::size_t i = 0; i < codeword.size(); ++i) parity ^= codeword.get(i);

  if (s == 0 && !parity) {
    res.status = DecodeStatus::kClean;
    res.data = codeword.slice(0, k_);
    return res;
  }
  if (s == 0 && parity) {
    // The overall parity bit itself flipped; data is intact.
    res.status = DecodeStatus::kCorrected;
    res.corrected_bits = 1;
    res.data = codeword.slice(0, k_);
    return res;
  }
  if (parity) {
    // Odd number of errors with non-zero syndrome: treat as single error.
    const std::size_t pos = s < tag_to_pos_.size()
                                ? tag_to_pos_[s]
                                : static_cast<std::size_t>(-1);
    if (pos == static_cast<std::size_t>(-1)) {
      res.status = DecodeStatus::kUncorrectable;  // >= 3 errors aliasing
      return res;
    }
    BitVec fixed = codeword;
    fixed.flip(pos);
    res.status = DecodeStatus::kCorrected;
    res.corrected_bits = 1;
    res.data = fixed.slice(0, k_);
    return res;
  }
  // Non-zero syndrome, even parity: double-bit error detected.
  res.status = DecodeStatus::kUncorrectable;
  return res;
}

std::string Secded::name() const {
  return "SECDED(" + std::to_string(codeword_bits()) + "," +
         std::to_string(k_) + ")";
}

}  // namespace mecc::ecc
