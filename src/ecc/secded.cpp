#include "ecc/secded.h"

#include <cassert>
#include <span>
#include <stdexcept>

namespace mecc::ecc {

namespace {

[[nodiscard]] bool is_power_of_two(std::uint32_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

}  // namespace

Secded::Secded(std::size_t data_bits) : k_(data_bits) {
  if (data_bits < 4) {
    throw std::invalid_argument("Secded: data_bits must be >= 4");
  }
  // Smallest r with 2^r >= k + r + 1 (classic Hamming bound). The loop
  // is capped at 32: beyond that the constructor throws anyway, and an
  // uncapped loop would shift past 63 bits for astronomically large k.
  r_ = 1;
  while (r_ < 32 && (1ull << r_) < k_ + r_ + 1) ++r_;
  // Tags are 32-bit and tag_to_pos_ has 2^r entries, so r must stay
  // below 32 — reject before any allocation rather than overflow the
  // tag space on a large-codeword instantiation.
  if (r_ >= 32) {
    throw std::invalid_argument(
        "Secded: data_bits too large (needs >= 32 Hamming bits; the "
        "32-bit tag space supports at most 31)");
  }

  // Tags: data bits get the non-power-of-two non-zero values in ascending
  // order; Hamming check bit i gets tag 2^i. The syndrome of a clean word
  // is zero, and a single flipped bit yields exactly its tag.
  tags_.resize(k_ + r_);
  tag_to_pos_.assign(std::size_t{1} << r_, static_cast<std::size_t>(-1));
  std::uint32_t next_tag = 3;
  for (std::size_t i = 0; i < k_; ++i) {
    while (is_power_of_two(next_tag)) ++next_tag;
    tags_[i] = next_tag;
    tag_to_pos_[next_tag] = i;
    ++next_tag;
  }
  for (std::size_t i = 0; i < r_; ++i) {
    tags_[k_ + i] = std::uint32_t{1} << i;
    tag_to_pos_[std::uint32_t{1} << i] = k_ + i;
  }

  // H-matrix as per-word column masks (one row per tag bit).
  data_words_ = (k_ + 63) / 64;
  cw_words_ = (k_ + r_ + 1 + 63) / 64;
  data_masks_.assign(r_ * data_words_, 0);
  col_masks_.assign(r_ * cw_words_, 0);
  for (std::size_t pos = 0; pos < k_ + r_; ++pos) {
    const std::uint64_t bit = 1ull << (pos & 63);
    for (std::size_t i = 0; i < r_; ++i) {
      if ((tags_[pos] >> i) & 1u) {
        col_masks_[i * cw_words_ + (pos >> 6)] |= bit;
        if (pos < k_) data_masks_[i * data_words_ + (pos >> 6)] |= bit;
      }
    }
  }
}

BitVec Secded::encode(const BitVec& data) const {
  assert(data.size() == k_);
  BitVec cw(k_ + r_ + 1);
  cw.splice(0, data);
  // Hamming check bit i = parity of the data bits selected by mask row i.
  for (std::size_t i = 0; i < r_; ++i) {
    cw.set(k_ + i, data.masked_parity(std::span(
                       data_masks_.data() + i * data_words_, data_words_)));
  }
  // Overall parity: make the whole codeword even-weight. The overall bit
  // itself is still zero here, so cw.parity() covers exactly bits
  // [0, k+r).
  cw.set(k_ + r_, cw.parity());
  return cw;
}

std::uint32_t Secded::syndrome_of(const BitVec& codeword) const {
  std::uint32_t s = 0;
  for (std::size_t i = 0; i < r_; ++i) {
    if (codeword.masked_parity(
            std::span(col_masks_.data() + i * cw_words_, cw_words_))) {
      s |= std::uint32_t{1} << i;
    }
  }
  return s;
}

DecodeResult Secded::decode(const BitVec& codeword) const {
  assert(codeword.size() == codeword_bits());
  DecodeResult res;
  const std::uint32_t s = syndrome_of(codeword);
  const bool parity = codeword.parity();

  if (s == 0 && !parity) {
    res.status = DecodeStatus::kClean;
    res.data = codeword.slice(0, k_);
    return res;
  }
  if (s == 0 && parity) {
    // The overall parity bit itself flipped; data is intact.
    res.status = DecodeStatus::kCorrected;
    res.corrected_bits = 1;
    res.data = codeword.slice(0, k_);
    return res;
  }
  if (parity) {
    // Odd number of errors with non-zero syndrome: treat as single error.
    const std::size_t pos = s < tag_to_pos_.size()
                                ? tag_to_pos_[s]
                                : static_cast<std::size_t>(-1);
    if (pos == static_cast<std::size_t>(-1)) {
      res.status = DecodeStatus::kUncorrectable;  // >= 3 errors aliasing
      return res;
    }
    res.status = DecodeStatus::kCorrected;
    res.corrected_bits = 1;
    res.data = codeword.slice(0, k_);
    if (pos < k_) res.data.flip(pos);  // check-bit errors leave data intact
    return res;
  }
  // Non-zero syndrome, even parity: double-bit error detected.
  res.status = DecodeStatus::kUncorrectable;
  return res;
}

std::string Secded::name() const {
  return "SECDED(" + std::to_string(codeword_bits()) + "," +
         std::to_string(k_) + ")";
}

}  // namespace mecc::ecc
