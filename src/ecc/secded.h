// Extended Hamming SEC-DED code, generic over the data length.
//
// Instantiations used by the paper's design:
//   * Secded(64)  -> the classic (72,64) code: 7 Hamming bits + 1 overall
//     parity = 8 check bits per 64 data bits (S III-C).
//   * Secded(512) -> SECDED at cache-line granularity: 10 Hamming bits +
//     1 overall parity = 11 check bits per 64 B line (S III-D).
//
// The hot paths are word-parallel: the H-matrix is precomputed as 64-bit
// column masks, so each parity/syndrome bit is an AND + XOR-fold +
// popcount-parity over BitVec::words() instead of a bit-at-a-time walk
// (docs/PERFORMANCE.md "Word-parallel codec hot paths"). The retained
// bit-at-a-time oracle lives in ecc/scalar_reference.h; the differential
// suite keeps the two bit-identical.
#pragma once

#include <cstddef>
#include <vector>

#include "ecc/code.h"

namespace mecc::ecc {

class Secded final : public Code {
 public:
  /// Builds a SEC-DED code protecting `data_bits` bits. Throws
  /// std::invalid_argument outside [4, ~2^31): the 32-bit tag space
  /// supports at most 31 Hamming bits (see the constructor's bound).
  explicit Secded(std::size_t data_bits);

  [[nodiscard]] std::size_t data_bits() const override { return k_; }
  [[nodiscard]] std::size_t parity_bits() const override { return r_ + 1; }
  [[nodiscard]] std::size_t correct_capability() const override { return 1; }

  [[nodiscard]] BitVec encode(const BitVec& data) const override;
  [[nodiscard]] DecodeResult decode(const BitVec& codeword) const override;

  [[nodiscard]] std::string name() const override;

 private:
  // Codeword layout: [data bits 0..k-1][hamming bits 0..r-1][overall parity].
  // Each codeword bit is assigned a distinct non-zero "tag"; the syndrome is
  // the XOR of tags of flipped bits, so a single error is located by its tag.
  [[nodiscard]] std::uint32_t syndrome_of(const BitVec& codeword) const;

  std::size_t k_;                     // data bits
  std::size_t r_;                     // hamming check bits
  std::vector<std::uint32_t> tags_;   // tag per codeword bit (ex. parity bit)
  std::vector<std::size_t> tag_to_pos_;  // inverse map: tag -> bit position

  // Word-parallel H-matrix. Row i of data_masks_ (data_words_ words) has
  // bit b of word w set iff tag bit i of data bit 64w+b is set; encode's
  // check bit i is then masked_parity over the data words. col_masks_
  // (cw_words_ words per row) is the same over the first k+r codeword
  // bits for decode's syndrome. The overall-parity bit has no tag and
  // stays zero in every mask.
  std::size_t data_words_;
  std::size_t cw_words_;
  std::vector<std::uint64_t> data_masks_;  // r_ rows * data_words_
  std::vector<std::uint64_t> col_masks_;   // r_ rows * cw_words_
};

}  // namespace mecc::ecc
