#include "galois/gf.h"

#include <cassert>
#include <stdexcept>

namespace mecc::galois {

namespace {

// Standard primitive polynomials over GF(2), indexed by m. Bit k is the
// coefficient of x^k (so the x^m term is always present).
constexpr std::uint32_t kPrimitivePoly[17] = {
    0, 0, 0,
    0b1011,                // m=3 : x^3 + x + 1
    0b10011,               // m=4 : x^4 + x + 1
    0b100101,              // m=5 : x^5 + x^2 + 1
    0b1000011,             // m=6 : x^6 + x + 1
    0b10001001,            // m=7 : x^7 + x^3 + 1
    0b100011101,           // m=8 : x^8 + x^4 + x^3 + x^2 + 1
    0b1000010001,          // m=9 : x^9 + x^4 + 1
    0b10000001001,         // m=10: x^10 + x^3 + 1
    0b100000000101,        // m=11: x^11 + x^2 + 1
    0b1000001010011,       // m=12: x^12 + x^6 + x^4 + x + 1
    0b10000000011011,      // m=13: x^13 + x^4 + x^3 + x + 1
    0b100010001000011,     // m=14: x^14 + x^10 + x^6 + x + 1
    0b1000000000000011,    // m=15: x^15 + x + 1
    0b10001000000001011,   // m=16: x^16 + x^12 + x^3 + x + 1
};

}  // namespace

GaloisField::GaloisField(unsigned m) : m_(m) {
  if (m < 3 || m > 16) {
    throw std::invalid_argument("GaloisField: m must be in [3, 16]");
  }
  size_ = 1u << m;
  prim_poly_ = kPrimitivePoly[m];
  antilog_.resize(order());
  log_.assign(size_, 0);

  Elem x = 1;
  for (std::uint32_t i = 0; i < order(); ++i) {
    antilog_[i] = x;
    log_[x] = i;
    x <<= 1;
    if (x & size_) x ^= prim_poly_;
  }
}

std::uint32_t GaloisField::log(Elem x) const {
  assert(x != 0 && x < size_);
  return log_[x];
}

Elem GaloisField::mul(Elem a, Elem b) const {
  if (a == 0 || b == 0) return 0;
  return antilog_[(log_[a] + log_[b]) % order()];
}

Elem GaloisField::div(Elem a, Elem b) const {
  assert(b != 0);
  if (a == 0) return 0;
  return antilog_[(log_[a] + order() - log_[b]) % order()];
}

Elem GaloisField::inv(Elem a) const {
  assert(a != 0);
  return antilog_[(order() - log_[a]) % order()];
}

Elem GaloisField::pow(Elem a, std::uint64_t e) const {
  if (a == 0) return e == 0 ? 1 : 0;
  const std::uint64_t le = (static_cast<std::uint64_t>(log_[a]) * e) % order();
  return antilog_[le];
}

std::vector<std::uint32_t> GaloisField::cyclotomic_coset(
    std::uint32_t i) const {
  std::vector<std::uint32_t> coset;
  std::uint32_t cur = i % order();
  do {
    coset.push_back(cur);
    cur = static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(cur) * 2) % order());
  } while (cur != i % order());
  return coset;
}

std::uint64_t GaloisField::minimal_poly(std::uint32_t i) const {
  // minimal poly of alpha^i = prod over coset {s} of (x - alpha^s).
  // Compute with coefficients in GF(2^m); the result has GF(2) coefficients.
  const auto coset = cyclotomic_coset(i);
  std::vector<Elem> poly = {1};  // poly[k] = coefficient of x^k, start with 1
  for (auto s : coset) {
    const Elem root = alpha_pow(s);
    std::vector<Elem> next(poly.size() + 1, 0);
    for (std::size_t k = 0; k < poly.size(); ++k) {
      next[k + 1] = add(next[k + 1], poly[k]);        // x * poly
      next[k] = add(next[k], mul(root, poly[k]));     // root * poly
    }
    poly = std::move(next);
  }
  std::uint64_t mask = 0;
  for (std::size_t k = 0; k < poly.size(); ++k) {
    assert(poly[k] == 0 || poly[k] == 1);  // must collapse to GF(2)
    if (poly[k] == 1) mask |= 1ull << k;
  }
  return mask;
}

}  // namespace mecc::galois
