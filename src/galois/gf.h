// Finite-field arithmetic GF(2^m) via log/antilog tables.
//
// This is the arithmetic substrate of the BCH codec (src/ecc/bch.*). Field
// elements are represented as integers in [0, 2^m); 0 is the additive
// identity, alpha (the primitive element) generates the multiplicative
// group of order 2^m - 1.
#pragma once

#include <cstdint>
#include <vector>

namespace mecc::galois {

/// A field element. Only the low m bits are meaningful.
using Elem = std::uint32_t;

class GaloisField {
 public:
  /// Constructs GF(2^m) for m in [3, 16] using a standard primitive
  /// polynomial for that m. Throws std::invalid_argument otherwise.
  explicit GaloisField(unsigned m);

  [[nodiscard]] unsigned m() const { return m_; }
  /// Field size 2^m.
  [[nodiscard]] std::uint32_t size() const { return size_; }
  /// Multiplicative group order 2^m - 1.
  [[nodiscard]] std::uint32_t order() const { return size_ - 1; }
  /// The primitive polynomial, as a bit mask including the x^m term.
  [[nodiscard]] std::uint32_t primitive_poly() const { return prim_poly_; }

  /// alpha^i for i in [0, order).
  [[nodiscard]] Elem alpha_pow(std::uint32_t i) const {
    return antilog_[i % order()];
  }
  /// Discrete log base alpha; undefined for x == 0 (asserted).
  [[nodiscard]] std::uint32_t log(Elem x) const;

  [[nodiscard]] static Elem add(Elem a, Elem b) { return a ^ b; }
  [[nodiscard]] Elem mul(Elem a, Elem b) const;
  [[nodiscard]] Elem div(Elem a, Elem b) const;
  [[nodiscard]] Elem inv(Elem a) const;
  /// a^e with e any non-negative exponent (a may be 0: 0^0 == 1).
  [[nodiscard]] Elem pow(Elem a, std::uint64_t e) const;

  /// Minimal polynomial of alpha^i over GF(2), returned as a GF(2)
  /// coefficient bit mask (bit k = coefficient of x^k).
  [[nodiscard]] std::uint64_t minimal_poly(std::uint32_t i) const;

  /// The cyclotomic coset of i modulo 2^m - 1 (i, 2i, 4i, ... reduced).
  [[nodiscard]] std::vector<std::uint32_t> cyclotomic_coset(
      std::uint32_t i) const;

 private:
  unsigned m_;
  std::uint32_t size_;
  std::uint32_t prim_poly_;
  std::vector<Elem> antilog_;          // antilog_[i] = alpha^i
  std::vector<std::uint32_t> log_;     // log_[x] = i with alpha^i = x
};

}  // namespace mecc::galois
