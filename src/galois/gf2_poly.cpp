#include "galois/gf2_poly.h"

#include <cassert>

namespace mecc::galois {

Gf2Poly Gf2Poly::from_mask(std::uint64_t mask) {
  Gf2Poly p;
  p.bits_ = BitVec(64);
  for (std::size_t k = 0; k < 64; ++k) {
    if ((mask >> k) & 1u) p.bits_.set(k, true);
  }
  p.trim();
  return p;
}

Gf2Poly Gf2Poly::from_bits(const BitVec& bits) {
  Gf2Poly p;
  p.bits_ = bits;
  p.trim();
  return p;
}

Gf2Poly Gf2Poly::monomial(std::size_t k) {
  Gf2Poly p;
  p.bits_ = BitVec(k + 1);
  p.bits_.set(k, true);
  return p;
}

int Gf2Poly::degree() const {
  for (std::size_t i = bits_.size(); i > 0; --i) {
    if (bits_.get(i - 1)) return static_cast<int>(i - 1);
  }
  return -1;
}

void Gf2Poly::set_coeff(std::size_t k, bool v) {
  if (k >= bits_.size()) {
    BitVec grown(k + 1);
    grown.splice(0, bits_);
    bits_ = std::move(grown);
  }
  bits_.set(k, v);
}

Gf2Poly Gf2Poly::operator+(const Gf2Poly& other) const {
  const std::size_t n = std::max(bits_.size(), other.bits_.size());
  Gf2Poly out;
  out.bits_ = BitVec(n);
  out.bits_.splice(0, bits_);
  for (std::size_t k = 0; k < other.bits_.size(); ++k) {
    if (other.bits_.get(k)) out.bits_.flip(k);
  }
  out.trim();
  return out;
}

Gf2Poly Gf2Poly::operator*(const Gf2Poly& other) const {
  const int da = degree();
  const int db = other.degree();
  if (da < 0 || db < 0) return Gf2Poly{};
  Gf2Poly out;
  out.bits_ = BitVec(static_cast<std::size_t>(da + db) + 1);
  for (int i = 0; i <= da; ++i) {
    if (!bits_.get(static_cast<std::size_t>(i))) continue;
    for (int j = 0; j <= db; ++j) {
      if (other.bits_.get(static_cast<std::size_t>(j))) {
        out.bits_.flip(static_cast<std::size_t>(i + j));
      }
    }
  }
  return out;
}

Gf2Poly Gf2Poly::mod(const Gf2Poly& divisor) const {
  const int dd = divisor.degree();
  assert(dd >= 0 && "division by zero polynomial");
  Gf2Poly rem = *this;
  int dr = rem.degree();
  while (dr >= dd) {
    const std::size_t shift = static_cast<std::size_t>(dr - dd);
    for (int k = 0; k <= dd; ++k) {
      if (divisor.bits_.get(static_cast<std::size_t>(k))) {
        rem.bits_.flip(shift + static_cast<std::size_t>(k));
      }
    }
    dr = rem.degree();
  }
  rem.trim();
  return rem;
}

Gf2Poly Gf2Poly::div(const Gf2Poly& divisor) const {
  const int dd = divisor.degree();
  assert(dd >= 0 && "division by zero polynomial");
  Gf2Poly rem = *this;
  int dr = rem.degree();
  if (dr < dd) return Gf2Poly{};
  Gf2Poly quot;
  quot.bits_ = BitVec(static_cast<std::size_t>(dr - dd) + 1);
  while (dr >= dd) {
    const std::size_t shift = static_cast<std::size_t>(dr - dd);
    quot.bits_.set(shift, true);
    for (int k = 0; k <= dd; ++k) {
      if (divisor.bits_.get(static_cast<std::size_t>(k))) {
        rem.bits_.flip(shift + static_cast<std::size_t>(k));
      }
    }
    dr = rem.degree();
  }
  quot.trim();
  return quot;
}

bool Gf2Poly::operator==(const Gf2Poly& other) const {
  const int d = degree();
  if (d != other.degree()) return false;
  for (int k = 0; k <= d; ++k) {
    if (coeff(static_cast<std::size_t>(k)) !=
        other.coeff(static_cast<std::size_t>(k))) {
      return false;
    }
  }
  return true;
}

std::string Gf2Poly::to_string() const {
  const int d = degree();
  if (d < 0) return "0";
  std::string s;
  for (int k = d; k >= 0; --k) {
    if (!coeff(static_cast<std::size_t>(k))) continue;
    if (!s.empty()) s += " + ";
    if (k == 0) {
      s += "1";
    } else if (k == 1) {
      s += "x";
    } else {
      s += "x^" + std::to_string(k);
    }
  }
  return s;
}

void Gf2Poly::trim() {
  const int d = degree();
  BitVec tight(d < 0 ? 0 : static_cast<std::size_t>(d) + 1);
  for (int k = 0; k <= d; ++k) {
    tight.set(static_cast<std::size_t>(k), bits_.get(static_cast<std::size_t>(k)));
  }
  bits_ = std::move(tight);
}

}  // namespace mecc::galois
