// Polynomials over GF(2), arbitrary degree, dense bit representation.
//
// Used for BCH generator-polynomial construction (LCM of minimal
// polynomials) and for systematic encoding (shift-and-mod division).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvec.h"

namespace mecc::galois {

class Gf2Poly {
 public:
  /// The zero polynomial.
  Gf2Poly() = default;

  /// From a coefficient bit mask (bit k = coefficient of x^k); supports
  /// polynomials of degree < 64.
  static Gf2Poly from_mask(std::uint64_t mask);

  /// From a coefficient bit vector (bit k = coefficient of x^k).
  static Gf2Poly from_bits(const BitVec& bits);

  /// x^k.
  static Gf2Poly monomial(std::size_t k);

  /// Degree; -1 for the zero polynomial.
  [[nodiscard]] int degree() const;

  [[nodiscard]] bool is_zero() const { return !bits_.any(); }
  [[nodiscard]] bool coeff(std::size_t k) const {
    return k < bits_.size() && bits_.get(k);
  }
  void set_coeff(std::size_t k, bool v);

  [[nodiscard]] Gf2Poly operator+(const Gf2Poly& other) const;
  [[nodiscard]] Gf2Poly operator*(const Gf2Poly& other) const;
  /// Remainder of this modulo `divisor` (divisor must be non-zero).
  [[nodiscard]] Gf2Poly mod(const Gf2Poly& divisor) const;
  /// Quotient of this / `divisor`.
  [[nodiscard]] Gf2Poly div(const Gf2Poly& divisor) const;

  [[nodiscard]] bool operator==(const Gf2Poly& other) const;

  /// Human-readable, e.g. "x^3 + x + 1".
  [[nodiscard]] std::string to_string() const;

  /// Coefficients as a bit vector sized degree()+1 (empty if zero).
  [[nodiscard]] const BitVec& bits() const { return bits_; }

 private:
  void trim();
  BitVec bits_;  // bit k = coefficient of x^k
};

}  // namespace mecc::galois
