#include "galois/gfm_poly.h"

namespace mecc::galois {

void GfmPoly::set_coeff(std::size_t k, Elem v) {
  if (k >= coeffs_.size()) coeffs_.resize(k + 1, 0);
  coeffs_[k] = v;
  trim();
}

Elem GfmPoly::eval(const GaloisField& gf, Elem x) const {
  Elem acc = 0;
  for (std::size_t i = coeffs_.size(); i > 0; --i) {
    acc = GaloisField::add(gf.mul(acc, x), coeffs_[i - 1]);
  }
  return acc;
}

GfmPoly GfmPoly::add(const GfmPoly& other) const {
  std::vector<Elem> out(std::max(coeffs_.size(), other.coeffs_.size()), 0);
  for (std::size_t k = 0; k < out.size(); ++k) {
    out[k] = GaloisField::add(coeff(k), other.coeff(k));
  }
  return GfmPoly(std::move(out));
}

GfmPoly GfmPoly::mul(const GaloisField& gf, const GfmPoly& other) const {
  if (coeffs_.empty() || other.coeffs_.empty()) return GfmPoly{};
  std::vector<Elem> out(coeffs_.size() + other.coeffs_.size() - 1, 0);
  for (std::size_t i = 0; i < coeffs_.size(); ++i) {
    if (coeffs_[i] == 0) continue;
    for (std::size_t j = 0; j < other.coeffs_.size(); ++j) {
      out[i + j] = GaloisField::add(out[i + j],
                                    gf.mul(coeffs_[i], other.coeffs_[j]));
    }
  }
  return GfmPoly(std::move(out));
}

GfmPoly GfmPoly::scale(const GaloisField& gf, Elem s) const {
  std::vector<Elem> out(coeffs_.size());
  for (std::size_t k = 0; k < out.size(); ++k) out[k] = gf.mul(coeffs_[k], s);
  return GfmPoly(std::move(out));
}

GfmPoly GfmPoly::shift(std::size_t k) const {
  if (coeffs_.empty()) return GfmPoly{};
  std::vector<Elem> out(coeffs_.size() + k, 0);
  for (std::size_t i = 0; i < coeffs_.size(); ++i) out[i + k] = coeffs_[i];
  return GfmPoly(std::move(out));
}

GfmPoly GfmPoly::derivative() const {
  if (coeffs_.size() <= 1) return GfmPoly{};
  std::vector<Elem> out(coeffs_.size() - 1, 0);
  // In characteristic 2, d/dx sum c_k x^k = sum over odd k of c_k x^(k-1).
  for (std::size_t k = 1; k < coeffs_.size(); k += 2) out[k - 1] = coeffs_[k];
  return GfmPoly(std::move(out));
}

void GfmPoly::trim() {
  while (!coeffs_.empty() && coeffs_.back() == 0) coeffs_.pop_back();
}

}  // namespace mecc::galois
