// Polynomials with coefficients in GF(2^m).
//
// Decoder-side algebra for BCH: the error-locator polynomial produced by
// Berlekamp-Massey and evaluated by Chien search lives here.
#pragma once

#include <cstddef>
#include <vector>

#include "galois/gf.h"

namespace mecc::galois {

class GfmPoly {
 public:
  GfmPoly() = default;
  explicit GfmPoly(std::vector<Elem> coeffs) : coeffs_(std::move(coeffs)) {
    trim();
  }

  [[nodiscard]] int degree() const {
    return static_cast<int>(coeffs_.size()) - 1;
  }
  [[nodiscard]] Elem coeff(std::size_t k) const {
    return k < coeffs_.size() ? coeffs_[k] : 0;
  }
  void set_coeff(std::size_t k, Elem v);

  /// Evaluates the polynomial at x (Horner).
  [[nodiscard]] Elem eval(const GaloisField& gf, Elem x) const;

  [[nodiscard]] GfmPoly add(const GfmPoly& other) const;
  [[nodiscard]] GfmPoly mul(const GaloisField& gf, const GfmPoly& other) const;
  /// Scales every coefficient by s.
  [[nodiscard]] GfmPoly scale(const GaloisField& gf, Elem s) const;
  /// Multiplies by x^k.
  [[nodiscard]] GfmPoly shift(std::size_t k) const;

  /// Formal derivative (char 2: even-power terms vanish).
  [[nodiscard]] GfmPoly derivative() const;

  [[nodiscard]] const std::vector<Elem>& coeffs() const { return coeffs_; }

 private:
  void trim();
  std::vector<Elem> coeffs_;  // coeffs_[k] = coefficient of x^k
};

}  // namespace mecc::galois
