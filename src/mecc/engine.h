// The Morphable-ECC policy engine (paper S III, S VI).
//
// Sits beside the memory controller and decides, per access, which
// decoder a line needs and whether the line undergoes ECC-Downgrade; on
// idle entry it drives ECC-Upgrade (optionally narrowed by MDT) and the
// switch to the 1 s self-refresh interval.
#pragma once

#include <cstdint>
#include <optional>

#include "common/stats.h"
#include "common/types.h"
#include "mecc/mdt.h"
#include "mecc/mode_store.h"
#include "mecc/smd.h"

namespace mecc::morph {

struct EngineConfig {
  std::uint64_t memory_lines = kMemoryLines;
  std::uint64_t memory_bytes = kMemoryBytes;

  bool use_mdt = true;
  std::size_t mdt_entries = 1024;

  bool use_smd = false;
  double smd_mpkc_threshold = 2.0;
  Cycle smd_quantum_cycles = 102'400'000;  // 64 ms at 1.6 GHz

  // Idle refresh period = 64 ms * divider (the paper's 4-bit counter: 16).
  std::uint32_t idle_refresh_divider = 16;

  // ECC-Upgrade walk rate: cycles per line converted. The paper's 400 ms
  // for 16 M lines at 1.6 GHz works out to 40 CPU cycles per line.
  Cycle upgrade_cycles_per_line = 40;
};

/// What the memory side must do for one read that just returned.
struct ReadDecision {
  LineMode decode_mode = LineMode::kWeak;  // which decoder the data needs
  bool downgrade = false;  // re-encode weak + write back (off critical path)
};

struct UpgradeReport {
  std::uint64_t lines_upgraded = 0;
  Cycle upgrade_cycles = 0;   // CPU cycles spent converting
  double upgrade_seconds = 0.0;
};

class Engine {
 public:
  explicit Engine(const EngineConfig& config)
      : config_(config),
        modes_(config.memory_lines, LineMode::kStrong),
        mdt_(config.memory_bytes, config.mdt_entries),
        smd_(config.smd_quantum_cycles, config.smd_mpkc_threshold) {}

  /// Per-CPU-cycle housekeeping (SMD quantum checks).
  void tick(Cycle now) {
    if (config_.use_smd) smd_.tick(now);
  }

  /// A read's data arrived from DRAM: which decoder does it need, and
  /// does the line get downgraded?
  [[nodiscard]] ReadDecision on_read(Address line_addr) {
    if (config_.use_smd) smd_.record_access();
    ReadDecision d;
    d.decode_mode = modes_.mode_of(line_addr);
    stats_.add(d.decode_mode == LineMode::kStrong ? "reads_strong"
                                                  : "reads_weak");
    if (d.decode_mode == LineMode::kStrong && downgrade_enabled()) {
      d.downgrade = true;
      modes_.set_mode(line_addr, LineMode::kWeak);
      mdt_.mark(line_addr);
      stats_.add("downgrades");
    }
    return d;
  }

  /// A write is being sent to DRAM. With downgrade enabled the line is
  /// encoded weak (one-cycle encoder); otherwise it is re-encoded with
  /// strong ECC so the 1 s refresh stays safe.
  void on_write(Address line_addr) {
    if (config_.use_smd) smd_.record_access();
    if (downgrade_enabled()) {
      if (modes_.mode_of(line_addr) == LineMode::kStrong) {
        mdt_.mark(line_addr);
        stats_.add("downgrades_on_write");
      }
      modes_.set_mode(line_addr, LineMode::kWeak);
    } else {
      modes_.set_mode(line_addr, LineMode::kStrong);
    }
  }

  /// Idle entry: ECC-Upgrade everything MDT says was downgraded (or the
  /// whole memory without MDT), then the DRAM can drop to the 1 s rate.
  UpgradeReport enter_idle() {
    UpgradeReport r;
    r.lines_upgraded = config_.use_mdt
                           ? mdt_.lines_to_upgrade()
                           : config_.memory_lines;
    r.upgrade_cycles = r.lines_upgraded * config_.upgrade_cycles_per_line;
    r.upgrade_seconds = cycles_to_seconds(r.upgrade_cycles);
    modes_.set_all(LineMode::kStrong);
    mdt_.reset();
    stats_.add("idle_entries");
    stats_.add("lines_upgraded", r.lines_upgraded);
    return r;
  }

  /// Wake from idle: with SMD, downgrade starts disabled and must earn
  /// its way on via the traffic check.
  void wake(Cycle now) {
    if (config_.use_smd) smd_.reset(now);
    stats_.add("wakeups");
  }

  /// DUE ladder rung 2 (memctrl/due_policy.h): immediately re-protect
  /// every line with strong ECC and clear the MDT, exactly like an idle
  /// entry but driven by the error handler rather than the lifecycle.
  void force_upgrade() {
    modes_.set_all(LineMode::kStrong);
    mdt_.reset();
    stats_.add("forced_upgrades");
  }

  /// DUE ladder rung 3: latch (or clear) the refresh fallback. While
  /// degraded both the active and the idle refresh divider pin to 1
  /// (the JEDEC 64 ms rate) — the paper's refresh savings are abandoned
  /// so reliability never depends on ECC strength again. Downgrade
  /// itself may continue: weak ECC at 64 ms is the safe baseline.
  void set_degraded(bool degraded) {
    if (degraded && !degraded_) stats_.add("degraded_latches");
    degraded_ = degraded;
  }
  [[nodiscard]] bool degraded() const { return degraded_; }

  /// Refresh divider to use while asleep: the configured idle divider,
  /// unless the DUE ladder latched the 64 ms fallback.
  [[nodiscard]] std::uint32_t idle_refresh_divider() const {
    return degraded_ ? 1 : config_.idle_refresh_divider;
  }

  /// ECC-Downgrade is active (always, unless SMD is holding it off).
  [[nodiscard]] bool downgrade_enabled() const {
    return !config_.use_smd || smd_.downgrade_enabled();
  }

  /// Refresh divider the memory controller should run with right now:
  /// 1 (64 ms) in normal active mode, the idle divider while SMD keeps
  /// the memory fully ECC-6 protected.
  [[nodiscard]] std::uint32_t active_refresh_divider() const {
    if (degraded_) return 1;
    return downgrade_enabled() ? 1 : config_.idle_refresh_divider;
  }

  [[nodiscard]] const ModeStore& modes() const { return modes_; }
  [[nodiscard]] const Mdt& mdt() const { return mdt_; }
  [[nodiscard]] const Smd& smd() const { return smd_; }
  [[nodiscard]] const StatSet& stats() const { return stats_; }
  [[nodiscard]] const EngineConfig& config() const { return config_; }

 private:
  EngineConfig config_;
  ModeStore modes_;
  Mdt mdt_;
  Smd smd_;
  StatSet stats_;
  bool degraded_ = false;  // DUE ladder refresh fallback latch
};

}  // namespace mecc::morph
