// The Morphable-ECC policy engine (paper S III, S VI).
//
// Sits beside the memory controller and decides, per access, which
// decoder a line needs and whether the line undergoes ECC-Downgrade; on
// idle entry it drives ECC-Upgrade (optionally narrowed by MDT) and the
// switch to the 1 s self-refresh interval.
#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>

#include "common/stats.h"
#include "common/trace.h"
#include "common/types.h"
#include "mecc/mdt.h"
#include "mecc/mode_store.h"
#include "mecc/smd.h"

namespace mecc::morph {

struct EngineConfig {
  std::uint64_t memory_lines = kMemoryLines;
  std::uint64_t memory_bytes = kMemoryBytes;

  bool use_mdt = true;
  std::size_t mdt_entries = 1024;

  bool use_smd = false;
  double smd_mpkc_threshold = 2.0;
  Cycle smd_quantum_cycles = 102'400'000;  // 64 ms at 1.6 GHz

  // Idle refresh period = 64 ms * divider (the paper's 4-bit counter: 16).
  std::uint32_t idle_refresh_divider = 16;

  // ECC-Upgrade walk rate: cycles per line converted. The paper's 400 ms
  // for 16 M lines at 1.6 GHz works out to 40 CPU cycles per line.
  Cycle upgrade_cycles_per_line = 40;
};

/// What the memory side must do for one read that just returned.
struct ReadDecision {
  LineMode decode_mode = LineMode::kWeak;  // which decoder the data needs
  bool downgrade = false;  // re-encode weak + write back (off critical path)
};

struct UpgradeReport {
  std::uint64_t lines_upgraded = 0;
  Cycle upgrade_cycles = 0;   // CPU cycles spent converting
  double upgrade_seconds = 0.0;
};

class Engine {
 public:
  explicit Engine(const EngineConfig& config)
      : config_(config),
        modes_(config.memory_lines, LineMode::kStrong),
        mdt_(config.memory_bytes, config.mdt_entries),
        smd_(config.smd_quantum_cycles, config.smd_mpkc_threshold) {}

  /// Per-CPU-cycle housekeeping (SMD quantum checks).
  void tick(Cycle now) {
    if (!config_.use_smd) return;
    if (tracer_ == nullptr) {
      smd_.tick(now);
      return;
    }
    // A quantum check runs exactly when downgrade is off and the check
    // boundary arrives (smd.h); bracket it to trace the decision. The
    // fast-forward bound (next_event) guarantees the boundary cycle is
    // executed in both modes, so the event lands identically.
    const bool check_due = !smd_.downgrade_enabled() && now >= smd_.next_check();
    smd_.tick(now);
    if (check_due) {
      tracer_->instant(tracing::Category::kSmd, tracing::kTrackSmd,
                       smd_.downgrade_enabled() ? "smd_downgrade_on"
                                                : "smd_quantum",
                       now);
    }
  }

  /// Fast-forward contract (docs/PERFORMANCE.md): a conservative lower
  /// bound, strictly greater than `now`, on the first cycle at which
  /// tick() could do anything. No side effects. Cycle(-1) = never: the
  /// engine only acts again in response to accesses or lifecycle calls.
  [[nodiscard]] Cycle next_event(Cycle now) const {
    if (!config_.use_smd || smd_.downgrade_enabled()) {
      return static_cast<Cycle>(-1);
    }
    return std::max(now + 1, smd_.next_check());
  }

  /// A read's data arrived from DRAM: which decoder does it need, and
  /// does the line get downgraded?
  [[nodiscard]] ReadDecision on_read(Address line_addr) {
    if (config_.use_smd) smd_.record_access();
    ReadDecision d;
    d.decode_mode = modes_.mode_of(line_addr);
    ++(d.decode_mode == LineMode::kStrong ? reads_strong_ : reads_weak_);
    if (d.decode_mode == LineMode::kStrong && downgrade_enabled()) {
      d.downgrade = true;
      modes_.set_mode(line_addr, LineMode::kWeak);
      mdt_.mark(line_addr);
      ++downgrades_;
      if (tracer_ != nullptr) {
        tracer_->instant(tracing::Category::kMorph, tracing::kTrackMorph,
                         "downgrade", tracer_->now(), "line", line_addr);
      }
    }
    return d;
  }

  /// A write is being sent to DRAM. With downgrade enabled the line is
  /// encoded weak (one-cycle encoder); otherwise it is re-encoded with
  /// strong ECC so the 1 s refresh stays safe.
  void on_write(Address line_addr) {
    if (config_.use_smd) smd_.record_access();
    if (downgrade_enabled()) {
      if (modes_.mode_of(line_addr) == LineMode::kStrong) {
        mdt_.mark(line_addr);
        ++downgrades_on_write_;
        if (tracer_ != nullptr) {
          tracer_->instant(tracing::Category::kMorph, tracing::kTrackMorph,
                           "downgrade_on_write", tracer_->now(), "line",
                           line_addr);
        }
      }
      modes_.set_mode(line_addr, LineMode::kWeak);
    } else {
      modes_.set_mode(line_addr, LineMode::kStrong);
    }
  }

  /// Idle entry: ECC-Upgrade everything MDT says was downgraded (or the
  /// whole memory without MDT), then the DRAM can drop to the 1 s rate.
  UpgradeReport enter_idle() {
    UpgradeReport r;
    r.lines_upgraded = config_.use_mdt
                           ? mdt_.lines_to_upgrade()
                           : config_.memory_lines;
    r.upgrade_cycles = r.lines_upgraded * config_.upgrade_cycles_per_line;
    r.upgrade_seconds = cycles_to_seconds(r.upgrade_cycles);
    modes_.set_all(LineMode::kStrong);
    mdt_.reset();
    ++idle_entries_;
    lines_upgraded_ += r.lines_upgraded;
    if (tracer_ != nullptr) {
      // The upgrade walk as a span starting at idle entry.
      tracer_->complete(tracing::Category::kMorph, tracing::kTrackMorph,
                        "ecc_upgrade", tracer_->now(), r.upgrade_cycles,
                        "lines", r.lines_upgraded);
    }
    return r;
  }

  /// Wake from idle: with SMD, downgrade starts disabled and must earn
  /// its way on via the traffic check.
  void wake(Cycle now) {
    if (config_.use_smd) smd_.reset(now);
    ++wakeups_;
    if (tracer_ != nullptr) {
      tracer_->instant(tracing::Category::kMorph, tracing::kTrackMorph,
                       "wake", now);
    }
  }

  /// DUE ladder rung 2 (memctrl/due_policy.h): immediately re-protect
  /// every line with strong ECC and clear the MDT, exactly like an idle
  /// entry but driven by the error handler rather than the lifecycle.
  void force_upgrade() {
    modes_.set_all(LineMode::kStrong);
    mdt_.reset();
    ++forced_upgrades_;
    if (tracer_ != nullptr) {
      tracer_->instant(tracing::Category::kMorph, tracing::kTrackMorph,
                       "force_upgrade", tracer_->now());
    }
  }

  /// DUE ladder rung 3: latch (or clear) the refresh fallback. While
  /// degraded both the active and the idle refresh divider pin to 1
  /// (the JEDEC 64 ms rate) — the paper's refresh savings are abandoned
  /// so reliability never depends on ECC strength again. Downgrade
  /// itself may continue: weak ECC at 64 ms is the safe baseline.
  void set_degraded(bool degraded) {
    if (degraded && !degraded_) {
      ++degraded_latches_;
      if (tracer_ != nullptr) {
        tracer_->instant(tracing::Category::kMorph, tracing::kTrackMorph,
                         "degraded_latch", tracer_->now());
      }
    }
    degraded_ = degraded;
  }
  [[nodiscard]] bool degraded() const { return degraded_; }

  /// Refresh divider to use while asleep: the configured idle divider,
  /// unless the DUE ladder latched the 64 ms fallback.
  [[nodiscard]] std::uint32_t idle_refresh_divider() const {
    return degraded_ ? 1 : config_.idle_refresh_divider;
  }

  /// ECC-Downgrade is active (always, unless SMD is holding it off).
  [[nodiscard]] bool downgrade_enabled() const {
    return !config_.use_smd || smd_.downgrade_enabled();
  }

  /// Refresh divider the memory controller should run with right now:
  /// 1 (64 ms) in normal active mode, the idle divider while SMD keeps
  /// the memory fully ECC-6 protected.
  [[nodiscard]] std::uint32_t active_refresh_divider() const {
    if (degraded_) return 1;
    return downgrade_enabled() ? 1 : config_.idle_refresh_divider;
  }

  [[nodiscard]] const ModeStore& modes() const { return modes_; }
  [[nodiscard]] const Mdt& mdt() const { return mdt_; }
  [[nodiscard]] const Smd& smd() const { return smd_; }
  /// Counter view (tests). Rebuilt on demand: the counters live in
  /// plain members because the per-access string-keyed map lookups were
  /// hot under fast-forward (on_read/on_write run once per memory
  /// access).
  [[nodiscard]] const StatSet& stats() const {
    stats_cache_.reset();
    export_stats(stats_cache_);
    return stats_cache_;
  }

  /// Folds the member counters into `out` under the historical StatSet
  /// names; a key exists iff its event ever happened, exactly as
  /// first-increment insertion behaved (lines_upgraded is emitted with
  /// every idle entry, even when the MDT had nothing to upgrade).
  void export_stats(StatSet& out) const {
    const auto put = [&out](const char* name, std::uint64_t v) {
      if (v != 0) out.add(name, v);
    };
    put("reads_strong", reads_strong_);
    put("reads_weak", reads_weak_);
    put("downgrades", downgrades_);
    put("downgrades_on_write", downgrades_on_write_);
    if (idle_entries_ != 0) {
      out.add("idle_entries", idle_entries_);
      out.add("lines_upgraded", lines_upgraded_);
    }
    put("wakeups", wakeups_);
    put("forced_upgrades", forced_upgrades_);
    put("degraded_latches", degraded_latches_);
  }

  [[nodiscard]] const EngineConfig& config() const { return config_; }

  /// Attaches the observability tracer (docs/OBSERVABILITY.md): morph
  /// events (downgrades, upgrade walks, forced upgrades, degraded latch)
  /// and SMD quantum decisions. Pass nullptr to detach.
  void set_tracer(tracing::Tracer* tracer) { tracer_ = tracer; }

 private:
  EngineConfig config_;
  tracing::Tracer* tracer_ = nullptr;
  ModeStore modes_;
  Mdt mdt_;
  Smd smd_;
  std::uint64_t reads_strong_ = 0;
  std::uint64_t reads_weak_ = 0;
  std::uint64_t downgrades_ = 0;
  std::uint64_t downgrades_on_write_ = 0;
  std::uint64_t idle_entries_ = 0;
  std::uint64_t lines_upgraded_ = 0;
  std::uint64_t wakeups_ = 0;
  std::uint64_t forced_upgrades_ = 0;
  std::uint64_t degraded_latches_ = 0;
  mutable StatSet stats_cache_;  // materialized by stats()
  bool degraded_ = false;  // DUE ladder refresh fallback latch
};

}  // namespace mecc::morph
