#include "mecc/line_codec.h"

#include <cassert>

namespace mecc::morph {

namespace {

// Stored-word layout offsets.
constexpr std::size_t kModeOffset = kDataBits;            // bits 512..515
constexpr std::size_t kCodeOffset = kDataBits + kModeReplicas;  // 516..575
constexpr std::size_t kCodeSpaceBits = kSpareBits - kModeReplicas;  // 60

}  // namespace

LineCodec::LineCodec() : secded_(kDataBits), bch_(10, 6, kDataBits) {
  assert(secded_.parity_bits() == 11);
  assert(bch_.parity_bits() == kCodeSpaceBits);
}

BitVec LineCodec::store(const BitVec& data, LineMode mode) const {
  assert(data.size() == kDataBits);
  BitVec stored(kStoredBits);
  stored.splice(0, data);
  const bool mode_bit = (mode == LineMode::kStrong);
  for (std::size_t r = 0; r < kModeReplicas; ++r) {
    stored.set(kModeOffset + r, mode_bit);
  }
  if (mode == LineMode::kStrong) {
    const BitVec cw = bch_.encode(data);  // [data | 60 parity]
    stored.splice(kCodeOffset, cw.slice(kDataBits, bch_.parity_bits()));
  } else {
    const BitVec cw = secded_.encode(data);  // [data | 11 check]
    stored.splice(kCodeOffset, cw.slice(kDataBits, secded_.parity_bits()));
    // Bits beyond the SEC-DED check bits stay zero (unused, Fig. 6-ii).
  }
  return stored;
}

LineDecodeResult LineCodec::try_mode(const BitVec& stored,
                                     LineMode mode) const {
  LineDecodeResult res;
  res.mode = mode;
  const ecc::Code& code = (mode == LineMode::kStrong)
                              ? static_cast<const ecc::Code&>(bch_)
                              : static_cast<const ecc::Code&>(secded_);
  BitVec cw(code.codeword_bits());
  cw.splice(0, stored.slice(0, kDataBits));
  cw.splice(kDataBits, stored.slice(kCodeOffset, code.parity_bits()));
  const ecc::DecodeResult d = code.decode(cw);
  if (d.status == ecc::DecodeStatus::kUncorrectable) return res;
  res.ok = true;
  res.corrected_bits = d.corrected_bits;
  res.data = d.data;
  return res;
}

LineDecodeResult LineCodec::load(const BitVec& stored) const {
  assert(stored.size() == kStoredBits);
  std::size_t votes = 0;
  for (std::size_t r = 0; r < kModeReplicas; ++r) {
    votes += stored.get(kModeOffset + r) ? 1 : 0;
  }

  if (votes == 0 || votes == kModeReplicas) {
    // Unanimous mode bits: decode directly.
    return try_mode(stored,
                    votes == 0 ? LineMode::kWeak : LineMode::kStrong);
  }

  // Replica mismatch: try both decoders; the one that yields a valid
  // decode identifies the true mode. Strong mode is attempted first —
  // mode-bit flips happen during the long-refresh idle period, when every
  // line is ECC-6 protected.
  LineDecodeResult strong = try_mode(stored, LineMode::kStrong);
  strong.mode_bits_disagreed = true;
  if (strong.ok) return strong;
  LineDecodeResult weak = try_mode(stored, LineMode::kWeak);
  weak.mode_bits_disagreed = true;
  return weak;
}

std::vector<LineDecodeResult> LineCodec::load_batch(
    std::span<const BitVec> stored) const {
  std::vector<LineDecodeResult> out;
  out.reserve(stored.size());
  for (const BitVec& line : stored) out.push_back(load(line));
  return out;
}

}  // namespace mecc::morph
