// Bit-level MECC line layout (paper S III-D, Fig. 6).
//
// A (72,64)-style memory gives every 64 B line 64 spare bits. MECC packs:
//   [ 4 x replicated ECC-mode bit | 60 bits of code space ]
// When the line is in *weak* mode the code space holds an 11-bit SEC-DED
// over the 512 data bits (bits 15..63 unused); in *strong* mode it holds
// the 60 parity bits of BCH t=6. No extra storage beyond the standard
// (72,64) provisioning is needed — that is the paper's key storage claim.
//
// The replicated mode bits are themselves subject to retention errors; on
// a replica mismatch the decoder falls back to trial decoding with both
// codes (S III-D "we try both SECDED and ECC-6 decoder").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bitvec.h"
#include "ecc/bch.h"
#include "ecc/ecc_model.h"
#include "ecc/secded.h"

namespace mecc::morph {

inline constexpr std::size_t kDataBits = 512;   // 64 B line
inline constexpr std::size_t kSpareBits = 64;   // (72,64) spare space
inline constexpr std::size_t kStoredBits = kDataBits + kSpareBits;  // 576
inline constexpr std::size_t kModeReplicas = 4;

enum class LineMode : std::uint8_t { kWeak = 0, kStrong = 1 };

struct LineDecodeResult {
  bool ok = false;              // data recovered
  LineMode mode = LineMode::kWeak;
  bool mode_bits_disagreed = false;  // trial decoding was needed
  std::size_t corrected_bits = 0;
  BitVec data;                  // 512 bits when ok
};

class LineCodec {
 public:
  LineCodec();

  /// Encodes 512 data bits into the 576-bit stored word with the given
  /// protection mode.
  [[nodiscard]] BitVec store(const BitVec& data, LineMode mode) const;

  /// Decodes a (possibly corrupted) 576-bit stored word.
  [[nodiscard]] LineDecodeResult load(const BitVec& stored) const;

  /// Batch decode for whole-region walks (shadow-memory scrub passes and
  /// ECC-Upgrade sweeps): decodes every stored word in order. One entry
  /// point lets the walks amortize codec scratch reuse and gives future
  /// cross-line SIMD a single seam; results match per-line load exactly.
  [[nodiscard]] std::vector<LineDecodeResult> load_batch(
      std::span<const BitVec> stored) const;

  [[nodiscard]] const ecc::Secded& weak_code() const { return secded_; }
  [[nodiscard]] const ecc::Bch& strong_code() const { return bch_; }

 private:
  [[nodiscard]] LineDecodeResult try_mode(const BitVec& stored,
                                          LineMode mode) const;

  ecc::Secded secded_;  // SECDED(523,512): 11 check bits
  ecc::Bch bch_;        // BCH t=6 over 512 bits: 60 parity bits
};

}  // namespace mecc::morph
