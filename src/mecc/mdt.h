// Memory Downgrade Tracking (paper S VI-A, Fig. 15).
//
// A table of single-bit entries, one per memory region (default 1 K
// entries over 1 GB -> 1 MB regions, 128 bytes of storage). A region's
// bit is set when any line in it undergoes ECC-Downgrade; on idle entry
// only the marked regions need ECC-Upgrade, and the table is reset once
// the upgrade completes.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace mecc::morph {

class Mdt {
 public:
  Mdt(std::uint64_t memory_bytes, std::size_t num_entries = 1024)
      : region_bytes_(memory_bytes / num_entries),
        bits_(num_entries, false) {}

  /// Records that a line in the region containing `addr` was downgraded.
  void mark(Address addr) {
    const std::size_t r = region_of(addr);
    if (!bits_[r]) {
      bits_[r] = true;
      ++marked_;
    }
  }

  [[nodiscard]] bool is_marked(Address addr) const {
    return bits_[region_of(addr)];
  }

  /// Number of regions that contain downgraded lines.
  [[nodiscard]] std::size_t marked_regions() const { return marked_; }
  [[nodiscard]] std::size_t num_entries() const { return bits_.size(); }
  [[nodiscard]] std::uint64_t region_bytes() const { return region_bytes_; }

  /// Memory the ECC-Upgrade walk must touch (bytes), as estimated by the
  /// table (Fig. 11's y-axis).
  [[nodiscard]] std::uint64_t tracked_bytes() const {
    return static_cast<std::uint64_t>(marked_) * region_bytes_;
  }
  /// Lines the ECC-Upgrade walk must touch.
  [[nodiscard]] std::uint64_t lines_to_upgrade() const {
    return tracked_bytes() / kLineBytes;
  }

  /// Hardware cost of the table (bits / 8).
  [[nodiscard]] std::size_t storage_bytes() const {
    return (bits_.size() + 7) / 8;
  }

  /// Reset after the ECC-Upgrade completes.
  void reset() {
    bits_.assign(bits_.size(), false);
    marked_ = 0;
  }

 private:
  [[nodiscard]] std::size_t region_of(Address addr) const {
    return static_cast<std::size_t>((addr / region_bytes_) % bits_.size());
  }

  std::uint64_t region_bytes_;
  std::vector<bool> bits_;
  std::size_t marked_ = 0;
};

}  // namespace mecc::morph
