#include "mecc/memory_image.h"

namespace mecc::morph {

MemoryImage::MemoryImage(std::size_t num_lines) {
  lines_.reserve(num_lines);
  const BitVec zero(kDataBits);
  for (std::size_t i = 0; i < num_lines; ++i) {
    lines_.push_back(codec_.store(zero, LineMode::kStrong));
  }
}

void MemoryImage::write_line(std::size_t index, const BitVec& data,
                             LineMode mode) {
  lines_[index] = codec_.store(data, mode);
  ++stats_.writes;
}

std::optional<BitVec> MemoryImage::read_line(std::size_t index,
                                             bool downgrade) {
  ++stats_.reads;
  const LineDecodeResult r = codec_.load(lines_[index]);
  if (!r.ok) {
    ++stats_.uncorrectable;
    return std::nullopt;
  }
  stats_.corrected_bits += r.corrected_bits;
  if (r.mode_bits_disagreed) ++stats_.mode_bit_repairs;

  if (r.corrected_bits > 0 || r.mode_bits_disagreed) {
    // Scrub: write the corrected contents back in the same mode.
    lines_[index] = codec_.store(r.data, r.mode);
  }
  if (downgrade && r.mode == LineMode::kStrong) {
    lines_[index] = codec_.store(r.data, LineMode::kWeak);
    ++stats_.downgrades;
  }
  return r.data;
}

void MemoryImage::upgrade_all() {
  const std::vector<LineDecodeResult> decoded = codec_.load_batch(lines_);
  for (std::size_t i = 0; i < lines_.size(); ++i) {
    const LineDecodeResult& r = decoded[i];
    if (!r.ok) {
      ++stats_.uncorrectable;
      continue;
    }
    if (r.mode == LineMode::kWeak) {
      lines_[i] = codec_.store(r.data, LineMode::kStrong);
      ++stats_.upgrades;
    } else if (r.corrected_bits > 0) {
      lines_[i] = codec_.store(r.data, LineMode::kStrong);  // scrub
    }
    stats_.corrected_bits += r.corrected_bits;
  }
}

ScrubReport MemoryImage::scrub_all() {
  ScrubReport rep;
  const std::vector<LineDecodeResult> decoded = codec_.load_batch(lines_);
  for (std::size_t i = 0; i < lines_.size(); ++i) {
    const LineDecodeResult& r = decoded[i];
    ++rep.lines;
    if (!r.ok) {
      ++rep.uncorrectable;
      ++stats_.uncorrectable;
      continue;
    }
    rep.corrected_bits += r.corrected_bits;
    stats_.corrected_bits += r.corrected_bits;
    if (r.mode_bits_disagreed) ++stats_.mode_bit_repairs;
    if (r.corrected_bits > 0 || r.mode_bits_disagreed) {
      lines_[i] = codec_.store(r.data, r.mode);
      ++rep.repaired_lines;
    }
  }
  return rep;
}

std::uint64_t MemoryImage::inject_retention_errors(
    double ber, reliability::FaultInjector& injector) {
  std::uint64_t flipped = 0;
  for (auto& line : lines_) {
    flipped += injector.inject(line, ber);
  }
  return flipped;
}

LineMode MemoryImage::stored_mode(std::size_t index) const {
  std::size_t votes = 0;
  for (std::size_t r = 0; r < kModeReplicas; ++r) {
    votes += lines_[index].get(kDataBits + r) ? 1 : 0;
  }
  return votes >= 2 ? LineMode::kStrong : LineMode::kWeak;
}

}  // namespace mecc::morph
