// Functional MECC memory image: actually stores the 576-bit lines
// (512 data + 4 replicated mode bits + 60 code bits) and runs the real
// codecs on every access.
//
// This is the bit-accurate companion to the timing simulator: it proves
// the full MECC data path — store weak/strong, retention-error
// injection during a long-refresh idle period, wake-up reads with
// demand ECC-Downgrade, idle-entry ECC-Upgrade — preserves data.
// It is used by the reliability integration tests and the
// idle-reliability bench, at a small line count (the timing simulator
// never moves real data, as in USIMM).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitvec.h"
#include "mecc/line_codec.h"
#include "reliability/fault_injection.h"

namespace mecc::morph {

struct ImageStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t downgrades = 0;
  std::uint64_t upgrades = 0;
  std::uint64_t corrected_bits = 0;
  std::uint64_t mode_bit_repairs = 0;   // trial decodes that succeeded
  std::uint64_t uncorrectable = 0;      // data loss events
};

/// Outcome of one MemoryImage::scrub_all pass (the DUE ladder's second
/// rung: decode every line and rewrite the ones that needed repair).
struct ScrubReport {
  std::uint64_t lines = 0;            // lines visited
  std::uint64_t repaired_lines = 0;   // rewritten after a correction
  std::uint64_t corrected_bits = 0;
  std::uint64_t uncorrectable = 0;    // lines the scrub could not recover
};

class MemoryImage {
 public:
  /// A small memory of `num_lines` 64 B lines, all initialized to zero
  /// and stored with strong ECC (the post-idle state).
  explicit MemoryImage(std::size_t num_lines);

  [[nodiscard]] std::size_t num_lines() const { return lines_.size(); }

  /// Writes 512 bits of data to a line with the given protection mode.
  void write_line(std::size_t index, const BitVec& data, LineMode mode);

  /// Reads a line: decodes with the mode the stored bits indicate (trial
  /// decoding on replica mismatch). If `downgrade` and the line was
  /// strong, re-encodes it weak (the MECC active-mode read path).
  /// Returns the recovered data, or nullopt on an uncorrectable line.
  [[nodiscard]] std::optional<BitVec> read_line(std::size_t index,
                                                bool downgrade);

  /// ECC-Upgrade: re-encodes every weak line with strong ECC (decoding
  /// first, so accumulated correctable errors are scrubbed).
  void upgrade_all();

  /// Scrub pass: decodes every line in place and rewrites the ones that
  /// accumulated correctable errors (mode preserved). Uncorrectable
  /// lines are left untouched and reported.
  ScrubReport scrub_all();

  /// Injects uniform random bit flips at `ber` over every stored line
  /// (one idle period's worth of retention errors at a slowed refresh).
  /// Returns the number of bits flipped.
  std::uint64_t inject_retention_errors(double ber,
                                        reliability::FaultInjector& injector);

  /// Flips one stored bit of a line directly (targeted fault injection,
  /// e.g. a VRT cell dropping its charge).
  void flip_stored_bit(std::size_t index, std::size_t bit) {
    lines_[index].flip(bit);
  }

  /// The current protection mode a line's stored replicas indicate.
  [[nodiscard]] LineMode stored_mode(std::size_t index) const;

  /// The raw 576 stored bits of a line (codeword inspection / targeted
  /// corruption in tests and the fault-campaign shadow).
  [[nodiscard]] const BitVec& stored_bits(std::size_t index) const {
    return lines_[index];
  }

  [[nodiscard]] const ImageStats& stats() const { return stats_; }

 private:
  LineCodec codec_;
  std::vector<BitVec> lines_;  // each 576 bits
  ImageStats stats_;
};

}  // namespace mecc::morph
