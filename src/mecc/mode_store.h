// Per-line ECC-mode tracking for the whole memory (the simulator-side
// mirror of the ECC-mode bits stored in each line's spare space).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "mecc/line_codec.h"

namespace mecc::morph {

class ModeStore {
 public:
  /// All lines start in `initial` mode (strong after an idle period).
  explicit ModeStore(std::uint64_t num_lines,
                     LineMode initial = LineMode::kStrong)
      : num_lines_(num_lines),
        weak_bits_((num_lines + 63) / 64, 0),
        weak_count_(0) {
    if (initial == LineMode::kWeak) set_all(LineMode::kWeak);
  }

  [[nodiscard]] LineMode mode_of(Address line_addr) const {
    const std::uint64_t i = index(line_addr);
    return ((weak_bits_[i >> 6] >> (i & 63)) & 1u) ? LineMode::kWeak
                                                   : LineMode::kStrong;
  }

  void set_mode(Address line_addr, LineMode mode) {
    const std::uint64_t i = index(line_addr);
    const std::uint64_t mask = 1ull << (i & 63);
    const bool was_weak = (weak_bits_[i >> 6] & mask) != 0;
    const bool now_weak = (mode == LineMode::kWeak);
    if (was_weak == now_weak) return;
    if (now_weak) {
      weak_bits_[i >> 6] |= mask;
      ++weak_count_;
    } else {
      weak_bits_[i >> 6] &= ~mask;
      --weak_count_;
    }
  }

  void set_all(LineMode mode) {
    const bool weak = (mode == LineMode::kWeak);
    for (auto& w : weak_bits_) w = weak ? ~0ull : 0ull;
    weak_count_ = weak ? num_lines_ : 0;
  }

  /// Number of lines currently in weak (downgraded) mode.
  [[nodiscard]] std::uint64_t weak_lines() const { return weak_count_; }
  [[nodiscard]] std::uint64_t num_lines() const { return num_lines_; }
  [[nodiscard]] bool all_strong() const { return weak_count_ == 0; }

 private:
  [[nodiscard]] std::uint64_t index(Address line_addr) const {
    return (line_addr / kLineBytes) % num_lines_;
  }

  std::uint64_t num_lines_;
  std::vector<std::uint64_t> weak_bits_;  // 1 = weak (downgraded)
  std::uint64_t weak_count_;
};

}  // namespace mecc::morph
