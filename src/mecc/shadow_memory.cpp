#include "mecc/shadow_memory.h"

#include <limits>

namespace mecc::morph {

namespace {

constexpr std::size_t kNoSlot = std::numeric_limits<std::size_t>::max();

/// splitmix64 finalizer: decorrelates per-address pattern seeds.
[[nodiscard]] std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

ShadowMemory::ShadowMemory(const ShadowConfig& config)
    : config_(config),
      image_(config.capacity_lines),
      injector_(config.seed) {
  if (config_.sample_stride == 0) config_.sample_stride = 1;
  slots_.reserve(config_.capacity_lines);
  slot_addr_.reserve(config_.capacity_lines);
}

BitVec ShadowMemory::expected_data(Address line_addr) const {
  Rng rng(mix(config_.seed ^ mix(line_addr)));
  BitVec d(kDataBits);
  for (std::size_t i = 0; i < kDataBits; ++i) d.set(i, rng.chance(0.5));
  return d;
}

std::size_t ShadowMemory::slot_of(Address line_addr) const {
  if (!sampled(line_addr)) return kNoSlot;
  const auto it = slots_.find(line_addr);
  return it == slots_.end() ? kNoSlot : it->second;
}

void ShadowMemory::on_write(Address line_addr, LineMode mode) {
  if (!sampled(line_addr)) return;
  auto it = slots_.find(line_addr);
  if (it == slots_.end()) {
    if (slots_.size() >= config_.capacity_lines) return;
    it = slots_.emplace(line_addr, slots_.size()).first;
    slot_addr_.push_back(line_addr);
  }
  image_.write_line(it->second, expected_data(line_addr), mode);
  stats_.add("shadow_writes");
}

ShadowReadOutcome ShadowMemory::on_read(Address line_addr, bool downgrade) {
  ShadowReadOutcome o;
  const std::size_t slot = slot_of(line_addr);
  if (slot == kNoSlot) return o;
  o.shadowed = true;
  stats_.add("shadow_reads");

  if (config_.transient_read_ber > 0.0) {
    // Decode a scratch copy carrying this read's transient noise.
    // Read-path glitches can corrupt the data this read returns (or trip
    // a DUE a retry then cures with fresh independent noise) but they
    // are never written into the array: persisting a decode derived from
    // read-path noise would let a noise-hit mode replica plus a lucky
    // SEC-DED trial decode silently rewrite a strong line as weak.
    BitVec noisy = image_.stored_bits(slot);
    const std::size_t flips =
        injector_.inject(noisy, config_.transient_read_ber);
    stats_.add("transient_bits", flips);
    const LineDecodeResult r = codec_.load(noisy);
    if (!r.ok) {
      o.due = true;
      stats_.add("due");
      if (tracer_ != nullptr) {
        tracer_->instant(tracing::Category::kInject, tracing::kTrackErrors,
                         "shadow_due", tracer_->now(), "line", line_addr);
      }
      return o;
    }
    o.corrected_bits = r.corrected_bits;
    o.mode_repaired = r.mode_bits_disagreed;
    if (r.corrected_bits > 0 || r.mode_bits_disagreed) {
      stats_.add("ce");
      stats_.add("ce_bits", r.corrected_bits);
      if (r.mode_bits_disagreed) stats_.add("mode_repairs");
      if (tracer_ != nullptr) {
        tracer_->instant(tracing::Category::kInject, tracing::kTrackErrors,
                         "shadow_ce", tracer_->now(), "line", line_addr,
                         "bits", r.corrected_bits);
      }
    }
    if (r.data != expected_data(line_addr)) {
      o.silent_corruption = true;
      stats_.add("silent");
      if (tracer_ != nullptr) {
        tracer_->instant(tracing::Category::kInject, tracing::kTrackErrors,
                         "silent_corruption", tracer_->now(), "line",
                         line_addr);
      }
    }
    // Demand scrub of the *array* content (noise-free): persistent
    // correctable errors are cleaned up exactly as on a noiseless read.
    // (If noise cancellation made the scratch decode succeed where the
    // array alone cannot, the array keeps its errors for a later rung.)
    (void)image_.read_line(slot, downgrade);
    return o;
  }

  const ImageStats before = image_.stats();
  const std::optional<BitVec> data = image_.read_line(slot, downgrade);
  const ImageStats& after = image_.stats();
  o.corrected_bits =
      static_cast<std::size_t>(after.corrected_bits - before.corrected_bits);
  o.mode_repaired = after.mode_bit_repairs != before.mode_bit_repairs;

  if (!data.has_value()) {
    o.due = true;
    stats_.add("due");
    if (tracer_ != nullptr) {
      tracer_->instant(tracing::Category::kInject, tracing::kTrackErrors,
                       "shadow_due", tracer_->now(), "line", line_addr);
    }
    return o;
  }
  if (o.corrected_bits > 0 || o.mode_repaired) {
    stats_.add("ce");
    stats_.add("ce_bits", o.corrected_bits);
    if (o.mode_repaired) stats_.add("mode_repairs");
    if (tracer_ != nullptr) {
      tracer_->instant(tracing::Category::kInject, tracing::kTrackErrors,
                       "shadow_ce", tracer_->now(), "line", line_addr,
                       "bits", o.corrected_bits);
    }
  }
  if (*data != expected_data(line_addr)) {
    o.silent_corruption = true;
    stats_.add("silent");
    if (tracer_ != nullptr) {
      tracer_->instant(tracing::Category::kInject, tracing::kTrackErrors,
                       "silent_corruption", tracer_->now(), "line",
                       line_addr);
    }
  }
  return o;
}

std::uint64_t ShadowMemory::inject_retention_errors(double ber) {
  const std::uint64_t flipped = image_.inject_retention_errors(ber, injector_);
  stats_.add("injections");
  stats_.add("injected_bits", flipped);
  if (tracer_ != nullptr) {
    tracer_->instant(tracing::Category::kInject, tracing::kTrackErrors,
                     "inject_retention", tracer_->now(), "bits", flipped);
  }
  return flipped;
}

ScrubReport ShadowMemory::scrub() {
  const ScrubReport rep = image_.scrub_all();
  stats_.add("scrub_repaired_lines", rep.repaired_lines);
  stats_.add("scrub_uncorrectable", rep.uncorrectable);
  return rep;
}

std::uint64_t ShadowMemory::force_upgrade() {
  std::uint64_t restored = 0;
  for (std::size_t slot = 0; slot < slot_addr_.size(); ++slot) {
    const std::optional<BitVec> data =
        image_.read_line(slot, /*downgrade=*/false);
    if (data.has_value()) {
      image_.write_line(slot, *data, LineMode::kStrong);
    } else {
      // Uncorrectable: reconstruct from the known-good pattern, modeling
      // a clean-copy refetch (page-cache reload / remap) after the DUE
      // was reported upstream.
      image_.write_line(slot, expected_data(slot_addr_[slot]),
                        LineMode::kStrong);
      ++restored;
    }
  }
  stats_.add("restored_lines", restored);
  return restored;
}

}  // namespace mecc::morph
