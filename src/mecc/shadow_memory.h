// Sampled-set functional shadow memory for fault-injection campaigns.
//
// The timing simulator (sim::System) never moves real data; this shadow
// attaches a small bit-accurate MemoryImage to a sampled subset of the
// simulated address space so that every shadowed read/write flows
// through the real LineCodec. Each shadowed line stores a deterministic
// per-address data pattern, which lets the shadow classify every decode
// as clean / corrected (CE) / detected-uncorrectable (DUE) / *silent*
// corruption (decode claimed success but returned wrong data).
//
// Retention errors injected between accesses (idle periods at a slowed
// refresh) are persistent stored-bit flips; an optional transient read
// noise models read-path glitches that a controller retry genuinely
// cures — the first rung of the DUE degradation ladder
// (memctrl/due_policy.h). See docs/RELIABILITY.md.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/trace.h"
#include "common/types.h"
#include "mecc/memory_image.h"
#include "reliability/fault_injection.h"

namespace mecc::morph {

struct ShadowConfig {
  /// Maximum number of distinct line addresses the shadow tracks; the
  /// first `capacity_lines` sampled addresses written get a slot,
  /// later ones pass through unshadowed.
  std::size_t capacity_lines = 4096;
  /// Sample every `sample_stride`-th line address (1 = every line the
  /// capacity can hold). Must be >= 1.
  Address sample_stride = 1;
  /// Per-read transient bit error rate applied to a scratch copy of the
  /// stored word (never persisted): models read-path glitches, so a
  /// controller retry can succeed where the first decode failed.
  double transient_read_ber = 0.0;
  /// Seed for the shadow's fault injector and the per-address data
  /// patterns.
  std::uint64_t seed = 1;
};

/// Classification of one shadowed read.
struct ShadowReadOutcome {
  bool shadowed = false;        // address had a shadow slot
  bool due = false;             // detected-uncorrectable decode
  bool silent_corruption = false;  // decode "ok" but data mismatched
  std::size_t corrected_bits = 0;  // CE work the decoder performed
  bool mode_repaired = false;      // trial decode fixed the mode replicas
};

class ShadowMemory {
 public:
  explicit ShadowMemory(const ShadowConfig& config);

  /// True when `line_addr` is in the sampled set (it may still lack a
  /// slot if capacity was exhausted before its first write).
  [[nodiscard]] bool sampled(Address line_addr) const {
    return line_addr % config_.sample_stride == 0;
  }

  /// A write to `line_addr` with the given protection mode. Allocates a
  /// slot on first touch (while capacity lasts) and stores the
  /// deterministic per-address pattern through the real codec.
  void on_write(Address line_addr, LineMode mode);

  /// A read of `line_addr`: decodes the stored word (plus transient
  /// read noise) with the real codec and classifies the outcome.
  /// `downgrade` mirrors the MECC active-mode read path.
  [[nodiscard]] ShadowReadOutcome on_read(Address line_addr, bool downgrade);

  /// Re-decodes a line after a DUE with fresh transient noise (the
  /// controller retry). Identical classification to on_read.
  [[nodiscard]] ShadowReadOutcome retry_read(Address line_addr) {
    return on_read(line_addr, /*downgrade=*/false);
  }

  /// Injects one slowed-refresh period's worth of persistent retention
  /// errors into every stored codeword. Returns bits flipped.
  std::uint64_t inject_retention_errors(double ber);

  /// ECC-Upgrade mirror (MECC idle entry): every weak line re-encoded
  /// strong, correctable errors scrubbed along the way.
  void upgrade_all() { image_.upgrade_all(); }

  /// DUE ladder rung 2: scrub pass over the whole shadowed set.
  ScrubReport scrub();

  /// DUE ladder rung 3: force ECC-Upgrade of the shadowed region,
  /// reconstructing uncorrectable lines from their known-good pattern
  /// (modeling a clean-copy refetch / page repair). Returns the number
  /// of lines that needed reconstruction.
  std::uint64_t force_upgrade();

  [[nodiscard]] std::size_t tracked_lines() const { return slots_.size(); }
  [[nodiscard]] const MemoryImage& image() const { return image_; }

  /// Counters under the names docs/RELIABILITY.md documents
  /// (shadow_reads, shadow_writes, ce, ce_bits, due, silent, ...).
  void export_stats(StatSet& out) const { out.merge("", stats_); }

  /// The deterministic data pattern `line_addr` is expected to hold.
  [[nodiscard]] BitVec expected_data(Address line_addr) const;

  /// Attaches the observability tracer (docs/OBSERVABILITY.md):
  /// retention-error injections and CE/DUE/silent read classifications
  /// on the inject category. Pass nullptr to detach.
  void set_tracer(tracing::Tracer* tracer) { tracer_ = tracer; }

 private:
  /// Slot for `line_addr`, or npos when unsampled / out of capacity.
  [[nodiscard]] std::size_t slot_of(Address line_addr) const;

  ShadowConfig config_;
  LineCodec codec_;  // scratch decodes for transient-noise reads
  MemoryImage image_;
  std::unordered_map<Address, std::size_t> slots_;
  std::vector<Address> slot_addr_;  // slot -> address (scrub accounting)
  reliability::FaultInjector injector_;
  StatSet stats_;
  tracing::Tracer* tracer_ = nullptr;
};

}  // namespace mecc::morph
