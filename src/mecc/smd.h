// Selective Memory Downgrade (paper S VI-B, Fig. 14).
//
// When the system wakes from idle, ECC-Downgrade starts *disabled* and
// the refresh interval stays at 1 s. Every quantum (64 ms, ~100 M CPU
// cycles) the memory traffic of the previous quantum is checked; once
// the traffic (misses per kilo-cycle, MPKC) exceeds the threshold,
// ECC-Downgrade is enabled for the rest of the active period. Hardware
// cost: two registers (an access counter and the last check time).
#pragma once

#include <cstdint>

#include "common/types.h"

namespace mecc::morph {

class Smd {
 public:
  /// `quantum_cycles`: check period in CPU cycles (paper: 64 ms ~ 100 M
  /// cycles at 1.6 GHz; scaled runs scale it with the slice).
  /// `mpkc_threshold`: enable ECC-Downgrade above this misses-per-kilo-
  /// cycle traffic (paper: 2).
  Smd(Cycle quantum_cycles, double mpkc_threshold)
      : quantum_cycles_(quantum_cycles), threshold_(mpkc_threshold) {}

  /// Called on every memory access (the counter register).
  void record_access() { ++accesses_in_quantum_; }

  /// Called every CPU cycle; performs the periodic check.
  void tick(Cycle now) {
    if (enabled_ || now < next_check_) return;
    const double mpkc = static_cast<double>(accesses_in_quantum_) * 1000.0 /
                        static_cast<double>(quantum_cycles_);
    if (mpkc > threshold_) {
      enabled_ = true;
      enabled_at_ = now;
    }
    accesses_in_quantum_ = 0;
    next_check_ = now + quantum_cycles_;
  }

  /// Re-arm on wake from idle: ECC-Downgrade starts disabled.
  void reset(Cycle now) {
    enabled_ = false;
    accesses_in_quantum_ = 0;
    next_check_ = now + quantum_cycles_;
    enabled_at_ = 0;
  }

  [[nodiscard]] bool downgrade_enabled() const { return enabled_; }
  /// Cycle at which downgrade switched on (0 when still disabled).
  [[nodiscard]] Cycle enabled_at() const { return enabled_at_; }
  /// Cycle of the next quantum check: tick(now) is a no-op for every
  /// now < next_check() (the fast-forward next_event contract).
  [[nodiscard]] Cycle next_check() const { return next_check_; }
  [[nodiscard]] double threshold() const { return threshold_; }
  [[nodiscard]] Cycle quantum_cycles() const { return quantum_cycles_; }

 private:
  Cycle quantum_cycles_;
  double threshold_;
  bool enabled_ = false;
  std::uint64_t accesses_in_quantum_ = 0;
  Cycle next_check_ = 0;
  Cycle enabled_at_ = 0;
};

}  // namespace mecc::morph
