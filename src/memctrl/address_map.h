// Physical address to DRAM coordinate mapping.
//
// Open-page friendly layout: consecutive cache lines fill a row, then
// rotate across banks, then advance the row. Sequential streams therefore
// enjoy row-buffer hits while independent streams spread over banks.
#pragma once

#include <cassert>
#include <cstdint>

#include "common/types.h"
#include "dram/dram_params.h"

namespace mecc::memctrl {

struct DramCoord {
  std::uint32_t bank = 0;
  std::uint32_t row = 0;
  std::uint32_t col = 0;  // line index within the row
};

class AddressMap {
 public:
  explicit AddressMap(const dram::Geometry& geo) : geo_(geo) {}

  [[nodiscard]] DramCoord decode(Address byte_addr) const {
    const std::uint64_t line = (byte_addr / kLineBytes) % geo_.total_lines();
    DramCoord c;
    c.col = static_cast<std::uint32_t>(line % geo_.lines_per_row);
    c.bank = static_cast<std::uint32_t>((line / geo_.lines_per_row) %
                                        geo_.banks);
    c.row = static_cast<std::uint32_t>(line /
                                       (static_cast<std::uint64_t>(
                                            geo_.lines_per_row) *
                                        geo_.banks));
    assert(c.row < geo_.rows_per_bank);
    return c;
  }

  [[nodiscard]] Address encode(const DramCoord& c) const {
    const std::uint64_t line =
        (static_cast<std::uint64_t>(c.row) * geo_.banks + c.bank) *
            geo_.lines_per_row +
        c.col;
    return line * kLineBytes;
  }

 private:
  dram::Geometry geo_;
};

}  // namespace mecc::memctrl
