// Physical address to DRAM coordinate mapping.
//
// Generalized over N channels x M ranks x B banks (docs/SCALING.md).
// Three interleave granularities pick where the channel bits sit:
//
//   kLine    — consecutive cache lines rotate across channels first,
//              then fill a row, then rotate banks/ranks, then advance
//              the row. Sequential streams spread evenly over channels
//              and still enjoy row-buffer hits (a row's lines live in
//              the same physical row of every channel).
//   kRow     — a whole row's worth of lines stays on one channel;
//              consecutive rows rotate across channels. Maximizes
//              per-channel row-hit runs, sacrifices channel-level
//              parallelism for a single sequential stream.
//   kBankXor — kLine layout, but the channel is permuted by the low
//              row bits (XOR for power-of-two channel counts, modular
//              add otherwise), breaking the channel-stride resonance
//              of power-of-two strided streams.
//
// At 1 channel x 1 rank every mode degenerates to the original
// single-channel map (col, then bank, then row), so existing pinned
// references stay byte-identical.
#pragma once

#include <cassert>
#include <cstdint>
#include <string_view>

#include "common/types.h"
#include "dram/dram_params.h"

namespace mecc::memctrl {

struct DramCoord {
  std::uint32_t channel = 0;
  std::uint32_t rank = 0;
  std::uint32_t bank = 0;
  std::uint32_t row = 0;
  std::uint32_t col = 0;  // line index within the row
};

enum class Interleave : std::uint8_t { kLine, kRow, kBankXor };

[[nodiscard]] constexpr const char* interleave_name(Interleave m) {
  switch (m) {
    case Interleave::kLine: return "line";
    case Interleave::kRow: return "row";
    case Interleave::kBankXor: return "bank-xor";
  }
  return "?";
}

/// Parses "line" / "row" / "bank-xor"; returns false on anything else.
[[nodiscard]] inline bool parse_interleave(std::string_view s,
                                           Interleave* out) {
  if (s == "line") { *out = Interleave::kLine; return true; }
  if (s == "row") { *out = Interleave::kRow; return true; }
  if (s == "bank-xor") { *out = Interleave::kBankXor; return true; }
  return false;
}

class AddressMap {
 public:
  explicit AddressMap(const dram::Geometry& geo,
                      Interleave mode = Interleave::kLine)
      : geo_(geo), mode_(mode) {
    // decode() runs on every enqueue; with power-of-two geometry (the
    // Table II device and every stock config) the 64-bit divisions
    // reduce to shifts and masks. Non-power-of-two geometries (exercised
    // by some unit tests) keep the generic path.
    const auto pow2 = [](std::uint64_t v) { return (v & (v - 1)) == 0; };
    if (pow2(geo_.total_lines()) && pow2(geo_.lines_per_row) &&
        pow2(geo_.banks) && pow2(geo_.ranks) && pow2(geo_.channels)) {
      shifts_valid_ = true;
      line_mask_ = geo_.total_lines() - 1;
      ch_mask_ = geo_.channels - 1;
      ch_shift_ = log2u(geo_.channels);
      col_mask_ = geo_.lines_per_row - 1;
      bank_mask_ = geo_.banks - 1;
      rank_mask_ = geo_.ranks - 1;
      lpr_shift_ = log2u(geo_.lines_per_row);
      bank_shift_ = lpr_shift_ + log2u(geo_.banks);
      rank_shift_ = bank_shift_ + log2u(geo_.ranks);
    }
  }

  [[nodiscard]] Interleave mode() const { return mode_; }

  [[nodiscard]] DramCoord decode(Address byte_addr) const {
    DramCoord c;
    if (shifts_valid_) {
      const std::uint64_t line = (byte_addr / kLineBytes) & line_mask_;
      std::uint64_t l2 = 0;  // line index within the channel
      if (mode_ == Interleave::kRow) {
        // col | channel | bank | rank | row (low to high)
        c.col = static_cast<std::uint32_t>(line & col_mask_);
        const std::uint64_t t = line >> lpr_shift_;
        c.channel = static_cast<std::uint32_t>(t & ch_mask_);
        l2 = ((t >> ch_shift_) << lpr_shift_) | c.col;
      } else {
        // channel | col | bank | rank | row (low to high)
        c.channel = static_cast<std::uint32_t>(line & ch_mask_);
        l2 = line >> ch_shift_;
        c.col = static_cast<std::uint32_t>(l2 & col_mask_);
      }
      c.bank = static_cast<std::uint32_t>((l2 >> lpr_shift_) & bank_mask_);
      c.rank = static_cast<std::uint32_t>((l2 >> bank_shift_) & rank_mask_);
      c.row = static_cast<std::uint32_t>(l2 >> rank_shift_);
      if (mode_ == Interleave::kBankXor) {
        c.channel = static_cast<std::uint32_t>(
            (c.channel ^ c.row) & ch_mask_);
      }
      assert(c.row < geo_.rows_per_bank);
      return c;
    }
    const std::uint64_t line = (byte_addr / kLineBytes) % geo_.total_lines();
    std::uint64_t l2 = 0;
    if (mode_ == Interleave::kRow) {
      c.col = static_cast<std::uint32_t>(line % geo_.lines_per_row);
      const std::uint64_t t = line / geo_.lines_per_row;
      c.channel = static_cast<std::uint32_t>(t % geo_.channels);
      l2 = (t / geo_.channels) * geo_.lines_per_row + c.col;
    } else {
      c.channel = static_cast<std::uint32_t>(line % geo_.channels);
      l2 = line / geo_.channels;
      c.col = static_cast<std::uint32_t>(l2 % geo_.lines_per_row);
    }
    const std::uint64_t banks_blk = l2 / geo_.lines_per_row;
    c.bank = static_cast<std::uint32_t>(banks_blk % geo_.banks);
    c.rank = static_cast<std::uint32_t>((banks_blk / geo_.banks) %
                                        geo_.ranks);
    c.row = static_cast<std::uint32_t>(banks_blk /
                                       (static_cast<std::uint64_t>(
                                            geo_.banks) *
                                        geo_.ranks));
    if (mode_ == Interleave::kBankXor) {
      // row is a pure function of l2 (independent of the base channel),
      // so permuting the channel by it keeps the map bijective.
      c.channel = static_cast<std::uint32_t>(
          (c.channel + c.row) % geo_.channels);
    }
    assert(c.row < geo_.rows_per_bank);
    return c;
  }

  [[nodiscard]] Address encode(const DramCoord& c) const {
    std::uint64_t ch = c.channel;
    if (mode_ == Interleave::kBankXor) {
      ch = shifts_valid_
               ? ((ch ^ c.row) & ch_mask_)
               : (ch + geo_.channels - (c.row % geo_.channels)) %
                     geo_.channels;
    }
    const std::uint64_t l2 =
        ((static_cast<std::uint64_t>(c.row) * geo_.ranks + c.rank) *
             geo_.banks +
         c.bank) *
            geo_.lines_per_row +
        c.col;
    std::uint64_t line = 0;
    if (mode_ == Interleave::kRow) {
      const std::uint64_t t =
          (l2 / geo_.lines_per_row) * geo_.channels + ch;
      line = t * geo_.lines_per_row + c.col;
    } else {
      line = l2 * geo_.channels + ch;
    }
    return line * kLineBytes;
  }

 private:
  [[nodiscard]] static std::uint32_t log2u(std::uint64_t v) {
    std::uint32_t s = 0;
    while ((1ull << s) < v) ++s;
    return s;
  }

  dram::Geometry geo_;
  Interleave mode_ = Interleave::kLine;
  bool shifts_valid_ = false;
  std::uint64_t line_mask_ = 0;
  std::uint64_t ch_mask_ = 0;
  std::uint64_t col_mask_ = 0;
  std::uint64_t bank_mask_ = 0;
  std::uint64_t rank_mask_ = 0;
  std::uint32_t ch_shift_ = 0;
  std::uint32_t lpr_shift_ = 0;
  std::uint32_t bank_shift_ = 0;
  std::uint32_t rank_shift_ = 0;
};

}  // namespace mecc::memctrl
