// Physical address to DRAM coordinate mapping.
//
// Open-page friendly layout: consecutive cache lines fill a row, then
// rotate across banks, then advance the row. Sequential streams therefore
// enjoy row-buffer hits while independent streams spread over banks.
#pragma once

#include <cassert>
#include <cstdint>

#include "common/types.h"
#include "dram/dram_params.h"

namespace mecc::memctrl {

struct DramCoord {
  std::uint32_t bank = 0;
  std::uint32_t row = 0;
  std::uint32_t col = 0;  // line index within the row
};

class AddressMap {
 public:
  explicit AddressMap(const dram::Geometry& geo) : geo_(geo) {
    // decode() runs on every enqueue; with power-of-two geometry (the
    // Table II device and every stock config) the five 64-bit divisions
    // reduce to shifts and masks. Non-power-of-two geometries (exercised
    // by some unit tests) keep the generic path.
    const auto pow2 = [](std::uint64_t v) { return (v & (v - 1)) == 0; };
    if (pow2(geo_.total_lines()) && pow2(geo_.lines_per_row) &&
        pow2(geo_.banks)) {
      shifts_valid_ = true;
      line_mask_ = geo_.total_lines() - 1;
      col_mask_ = geo_.lines_per_row - 1;
      bank_mask_ = geo_.banks - 1;
      lpr_shift_ = log2u(geo_.lines_per_row);
      row_shift_ = lpr_shift_ + log2u(geo_.banks);
    }
  }

  [[nodiscard]] DramCoord decode(Address byte_addr) const {
    DramCoord c;
    if (shifts_valid_) {
      const std::uint64_t line = (byte_addr / kLineBytes) & line_mask_;
      c.col = static_cast<std::uint32_t>(line & col_mask_);
      c.bank = static_cast<std::uint32_t>((line >> lpr_shift_) & bank_mask_);
      c.row = static_cast<std::uint32_t>(line >> row_shift_);
      assert(c.row < geo_.rows_per_bank);
      return c;
    }
    const std::uint64_t line = (byte_addr / kLineBytes) % geo_.total_lines();
    c.col = static_cast<std::uint32_t>(line % geo_.lines_per_row);
    c.bank = static_cast<std::uint32_t>((line / geo_.lines_per_row) %
                                        geo_.banks);
    c.row = static_cast<std::uint32_t>(line /
                                       (static_cast<std::uint64_t>(
                                            geo_.lines_per_row) *
                                        geo_.banks));
    assert(c.row < geo_.rows_per_bank);
    return c;
  }

  [[nodiscard]] Address encode(const DramCoord& c) const {
    const std::uint64_t line =
        (static_cast<std::uint64_t>(c.row) * geo_.banks + c.bank) *
            geo_.lines_per_row +
        c.col;
    return line * kLineBytes;
  }

 private:
  [[nodiscard]] static std::uint32_t log2u(std::uint64_t v) {
    std::uint32_t s = 0;
    while ((1ull << s) < v) ++s;
    return s;
  }

  dram::Geometry geo_;
  bool shifts_valid_ = false;
  std::uint64_t line_mask_ = 0;
  std::uint64_t col_mask_ = 0;
  std::uint64_t bank_mask_ = 0;
  std::uint32_t lpr_shift_ = 0;
  std::uint32_t row_shift_ = 0;
};

}  // namespace mecc::memctrl
