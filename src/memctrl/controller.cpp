#include "memctrl/controller.h"

#include <algorithm>

namespace mecc::memctrl {

Controller::Controller(dram::Device& device, const ControllerConfig& config)
    : device_(device), config_(config), map_(device.geometry()) {
  next_refresh_ = device_.timing().tREFI;
}

bool Controller::enqueue_read(Address line_addr, std::uint64_t id,
                              dram::MemCycle now) {
  if (read_q_.size() >= config_.read_queue_size) return false;
  // Write-to-read forwarding: a pending write to the same line can serve
  // the read directly from the queue.
  for (const auto& w : write_q_) {
    if (w.line_addr == line_addr) {
      in_flight_.push_back({ReadCompletion{
          .id = id, .line_addr = line_addr, .done = now + 1,
          .forwarded = true}});
      stats_.add("reads_forwarded");
      return true;
    }
  }
  MemRequest r;
  r.type = ReqType::kRead;
  r.line_addr = line_addr;
  r.id = id;
  r.arrive = now;
  const DramCoord c = map_.decode(line_addr);
  r.bank = c.bank;
  r.row = c.row;
  r.col = c.col;
  read_q_.push_back(r);
  stats_.add("reads_enqueued");
  return true;
}

bool Controller::enqueue_write(Address line_addr, dram::MemCycle now) {
  if (write_q_.size() >= config_.write_queue_size) return false;
  // Coalesce with an existing pending write to the same line.
  for (const auto& w : write_q_) {
    if (w.line_addr == line_addr) {
      stats_.add("writes_coalesced");
      return true;
    }
  }
  MemRequest r;
  r.type = ReqType::kWrite;
  r.line_addr = line_addr;
  r.arrive = now;
  const DramCoord c = map_.decode(line_addr);
  r.bank = c.bank;
  r.row = c.row;
  r.col = c.col;
  write_q_.push_back(r);
  stats_.add("writes_enqueued");
  return true;
}

void Controller::manage_refresh(dram::MemCycle now) {
  if (!config_.refresh_enabled) return;
  const dram::MemCycle interval =
      static_cast<dram::MemCycle>(device_.timing().tREFI) *
      config_.refresh_divider;
  // Accrue refresh debt for every interval boundary passed.
  while (now >= next_refresh_) {
    ++refresh_debt_;
    next_refresh_ += interval;
  }
  if (refresh_debt_ == 0) {
    refresh_urgent_ = false;
    return;
  }

  // Elastic refresh: while demand traffic is pending and the postpone
  // budget isn't exhausted, let reads/writes go first.
  if (config_.elastic_refresh &&
      refresh_debt_ < config_.max_postponed_refreshes &&
      (!read_q_.empty() || !write_q_.empty())) {
    refresh_urgent_ = false;
    return;
  }
  // A due refresh now outranks demand traffic: the scheduler must stop
  // opening new rows so the banks can drain to the all-precharged state.
  refresh_urgent_ = true;

  // Refresh is due: get the device out of power-down, close open rows and
  // issue the REF command with priority over regular traffic.
  if (device_.in_power_down()) {
    device_.exit_power_down(now);
    stats_.add("pd_exits_for_refresh");
    return;
  }
  if (device_.can_refresh(now)) {
    device_.refresh(now);
    stats_.add("refreshes");
    --refresh_debt_;
    refresh_urgent_ = refresh_debt_ > 0;
    return;
  }
  for (std::uint32_t b = 0; b < device_.geometry().banks; ++b) {
    if (device_.bank(b).row_open() && device_.can_precharge(b, now)) {
      device_.precharge(b, now);
      stats_.add("precharges_for_refresh");
      return;
    }
  }
}

bool Controller::row_still_needed(std::uint32_t bank, std::int64_t row) const {
  auto needs = [&](const std::deque<MemRequest>& q) {
    return std::any_of(q.begin(), q.end(), [&](const MemRequest& r) {
      return r.bank == bank && static_cast<std::int64_t>(r.row) == row;
    });
  };
  return needs(read_q_) || needs(write_q_);
}

bool Controller::try_issue_column(std::deque<MemRequest>& q,
                                  dram::MemCycle now) {
  // FR-FCFS stage 1: oldest request whose row is open and can issue now.
  for (auto it = q.begin(); it != q.end(); ++it) {
    if (it->type == ReqType::kRead) {
      if (device_.can_read(it->bank, it->row, now)) {
        const dram::MemCycle done = device_.read(it->bank, now);
        in_flight_.push_back({ReadCompletion{
            .id = it->id, .line_addr = it->line_addr, .done = done,
            .forwarded = false}});
        stats_.add("row_hits");
        stats_.add("read_latency_mem_cycles", done - it->arrive);
        q.erase(it);
        return true;
      }
    } else {
      if (device_.can_write(it->bank, it->row, now)) {
        device_.write(it->bank, now);
        stats_.add("row_hits");
        q.erase(it);
        return true;
      }
    }
  }
  return false;
}

bool Controller::try_prepare_row(std::deque<MemRequest>& q,
                                 dram::MemCycle now) {
  // FR-FCFS stage 2: for the oldest request whose row is not open,
  // precharge a conflicting row or activate the needed one.
  for (auto& r : q) {
    const dram::Bank& bank = device_.bank(r.bank);
    if (bank.row_open() &&
        bank.open_row() != static_cast<std::int64_t>(r.row)) {
      // Oldest-first: close the conflicting row unless an *older* request
      // (already scanned without issuing) still wants it, in which case
      // stage 1 will reach it once the bank timing allows.
      if (!row_still_needed(r.bank, bank.open_row()) &&
          device_.can_precharge(r.bank, now)) {
        device_.precharge(r.bank, now);
        stats_.add("row_conflicts");
        return true;
      }
      continue;  // bank busy or row still wanted; look at other requests
    }
    if (!bank.row_open() && !refresh_urgent_ &&
        device_.can_activate(r.bank, now)) {
      device_.activate(r.bank, r.row, now);
      stats_.add("row_misses");
      return true;
    }
  }
  return false;
}

void Controller::manage_power_down(dram::MemCycle now, bool did_work) {
  if (did_work || !read_q_.empty() || !write_q_.empty()) {
    last_activity_ = now;
    if (device_.in_power_down()) {
      device_.exit_power_down(now);
      stats_.add("pd_exits");
    }
    return;
  }
  if (device_.in_power_down() || device_.in_self_refresh()) return;
  if (now - last_activity_ < config_.power_down_idle_threshold) return;
  // Aggressive power-down: close open rows first so we land in the deeper
  // precharge power-down state.
  for (std::uint32_t b = 0; b < device_.geometry().banks; ++b) {
    if (device_.bank(b).row_open()) {
      if (device_.can_precharge(b, now)) {
        device_.precharge(b, now);
      }
      return;  // try again next cycle
    }
  }
  // Leave headroom for pending or imminent refresh so we don't thrash.
  if (config_.refresh_enabled &&
      (refresh_debt_ > 0 ||
       next_refresh_ <= now + device_.timing().tXP)) {
    return;
  }
  device_.enter_power_down(now);
  stats_.add("pd_entries");
}

void Controller::schedule(dram::MemCycle now) {
  // Write drain hysteresis.
  if (write_q_.size() >= config_.write_drain_high) draining_writes_ = true;
  if (write_q_.size() <= config_.write_drain_low) draining_writes_ = false;

  const bool prefer_writes = draining_writes_ || read_q_.empty();
  bool did_work = false;
  if (prefer_writes) {
    did_work = try_issue_column(write_q_, now) ||
               try_issue_column(read_q_, now) ||
               try_prepare_row(write_q_, now) ||
               try_prepare_row(read_q_, now);
  } else {
    did_work = try_issue_column(read_q_, now) ||
               try_prepare_row(read_q_, now) ||
               try_issue_column(write_q_, now);
  }
  if (!did_work) did_work = try_close_unneeded_row(now);
  manage_power_down(now, did_work);
}

bool Controller::try_close_unneeded_row(dram::MemCycle now) {
  // Closed-page: proactively close rows nobody queued for, so the next
  // miss to the bank skips the conflict precharge.
  if (config_.page_policy != PagePolicy::kClosed) return false;
  if (device_.in_power_down() || device_.in_self_refresh()) return false;
  for (std::uint32_t b = 0; b < device_.geometry().banks; ++b) {
    const dram::Bank& bank = device_.bank(b);
    if (bank.row_open() && !row_still_needed(b, bank.open_row()) &&
        device_.can_precharge(b, now)) {
      device_.precharge(b, now);
      stats_.add("closed_page_precharges");
      return true;
    }
  }
  return false;
}

void Controller::tick(dram::MemCycle now) {
  // Per-cycle queue-occupancy integral (members, not StatSet lookups:
  // this runs every memory cycle).
  read_q_depth_.record(static_cast<double>(read_q_.size()));
  write_q_depth_.record(static_cast<double>(write_q_.size()));
  manage_refresh(now);
  if ((read_q_.empty() && write_q_.empty())) {
    const bool closed = try_close_unneeded_row(now);
    manage_power_down(now, closed);
    return;
  }
  if (device_.in_power_down()) {
    device_.exit_power_down(now);
    stats_.add("pd_exits");
    return;
  }
  schedule(now);
}

std::vector<ReadCompletion> Controller::collect_completions(
    dram::MemCycle now) {
  std::vector<ReadCompletion> done;
  auto it = in_flight_.begin();
  while (it != in_flight_.end()) {
    if (it->completion.done <= now) {
      done.push_back(it->completion);
      it = in_flight_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(done.begin(), done.end(),
            [](const ReadCompletion& a, const ReadCompletion& b) {
              return a.done < b.done;
            });
  return done;
}

}  // namespace mecc::memctrl
