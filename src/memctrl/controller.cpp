#include "memctrl/controller.h"

#include <cassert>
#include <algorithm>
#include <bit>

namespace {
// Ascending-bank-order iteration over the open-row bitmask: same visit
// order as the plain 0..banks loop it replaces, but only open banks.
inline std::uint32_t lowest_bank(std::uint32_t mask) {
  return static_cast<std::uint32_t>(std::countr_zero(mask));
}

inline mecc::Cycle to_cpu(mecc::dram::MemCycle m) {
  return static_cast<mecc::Cycle>(m) * mecc::kCpuCyclesPerMemCycle;
}
}  // namespace

namespace mecc::memctrl {

void Controller::trace_queue_depths(dram::MemCycle now) {
  tracer_->counter(tracing::Category::kQueue, tracing::kTrackQueues,
                   "read_q", to_cpu(now),
                   static_cast<double>(read_q_.size()));
  tracer_->counter(tracing::Category::kQueue, tracing::kTrackQueues,
                   "write_q", to_cpu(now),
                   static_cast<double>(write_q_.size()));
}

void Controller::trace_power_event(const char* name, dram::MemCycle now) {
  tracer_->instant(tracing::Category::kPower, tracing::kTrackPower, name,
                   to_cpu(now));
}

void Controller::trace_divider_change(std::uint32_t from, std::uint32_t to) {
  tracer_->instant(tracing::Category::kRefresh, tracing::kTrackRefresh,
                   "refresh_divider", tracer_->now(), "from", from, "to", to);
  tracer_->counter(tracing::Category::kRefresh, tracing::kTrackRefresh,
                   "divider", tracer_->now(), static_cast<double>(to));
}

Controller::Controller(dram::Device& device, const ControllerConfig& config)
    : device_(device), config_(config),
      map_(device.geometry(), config.interleave) {
  // DARP/SARP are per-bank refinements; they mean nothing under the
  // rank-wide REF command.
  if (config_.refresh_granularity == RefreshGranularity::kAllBank) {
    config_.darp = false;
    config_.sarp = false;
  }
  device_.set_sarp_overlap(config_.sarp);
  const std::uint32_t banks = device_.total_banks();  // global banks
  const std::uint32_t ranks = device_.geometry().ranks;
  const dram::MemCycle trefi = device_.timing().tREFI;
  // All-bank: one REF schedule per rank, staggered by tREFI/ranks so
  // the command bus sees an even cadence (rank 0 keeps the historical
  // first due time of exactly tREFI; the divider applies from the first
  // accrual on).
  rank_next_refresh_.resize(ranks);
  rank_refresh_debt_.assign(ranks, 0);
  for (std::uint32_t r = 0; r < ranks; ++r) {
    rank_next_refresh_[r] =
        trefi * static_cast<dram::MemCycle>(ranks + r) / ranks;
  }
  next_refresh_ = rank_next_refresh_[0];
  if (config_.refresh_granularity == RefreshGranularity::kPerBank) {
    // Stagger the first due times across the first tREFI so the channel
    // sees an even REFpb cadence from the start (same convention as the
    // all-bank schedule above).
    bank_next_refresh_.resize(banks);
    bank_refresh_debt_.assign(banks, 0);
    for (std::uint32_t b = 0; b < banks; ++b) {
      bank_next_refresh_[b] =
          static_cast<dram::MemCycle>(b + 1) * trefi / banks;
    }
    next_refresh_ = bank_next_refresh_[0];
  }
  // Bounded queues: reserve once so the hot path never reallocates.
  read_q_.reserve(config_.read_queue_size);
  write_q_.reserve(config_.write_queue_size);
  bank_queued_.assign(banks, 0);
  rank_queued_.assign(ranks, 0);
  open_row_demand_.assign(banks, 0);
  open_row_demand_reads_.assign(banks, 0);
  last_rank_activity_.assign(ranks, 0);
}

void Controller::resync_refresh(dram::MemCycle now) {
  refresh_urgent_mask_ = 0;
  const dram::MemCycle interval = refresh_interval();
  const std::uint32_t ranks = device_.geometry().ranks;
  for (std::uint32_t r = 0; r < ranks; ++r) {
    rank_refresh_debt_[r] = 0;
    rank_next_refresh_[r] =
        now + interval * static_cast<dram::MemCycle>(ranks + r) / ranks;
  }
  total_ab_debt_ = 0;
  if (config_.refresh_granularity == RefreshGranularity::kPerBank) {
    // The device refreshed itself during the self-refresh stay: clear
    // every bank's debt and restart the stagger from `now` (leaving the
    // old due times in place replayed the whole pre-SR schedule as an
    // immediate REFpb burst on exit).
    const std::uint32_t banks = device_.total_banks();
    for (std::uint32_t b = 0; b < banks; ++b) {
      bank_refresh_debt_[b] = 0;
      bank_next_refresh_[b] =
          now + static_cast<dram::MemCycle>(b + 1) * interval / banks;
    }
    total_refresh_debt_ = 0;
    refresh_rr_ = 0;
    refresh_block_mask_ = 0;
    next_refresh_ = bank_next_refresh_[0];
    return;
  }
  next_refresh_ = rank_next_refresh_[0];
}

void Controller::recount_open_row_demand(std::uint32_t bank,
                                         std::uint32_t row) {
  std::uint32_t reads = 0;
  std::uint32_t writes = 0;
  for (const auto& r : read_q_) {
    reads += static_cast<std::uint32_t>(r.bank == bank && r.row == row);
  }
  for (const auto& r : write_q_) {
    writes += static_cast<std::uint32_t>(r.bank == bank && r.row == row);
  }
  matched_total_ += reads + writes - open_row_demand_[bank];
  open_row_demand_[bank] = reads + writes;
  open_row_demand_reads_[bank] = reads;
}

bool Controller::enqueue_read(Address line_addr, std::uint64_t id,
                              dram::MemCycle now) {
  if (read_q_.size() >= config_.read_queue_size) return false;
  // Write-to-read forwarding: a pending write to the same line can serve
  // the read directly from the queue (via the write-line index).
  if (write_line_pending(line_addr)) {
    in_flight_.push_back({ReadCompletion{
        .id = id, .line_addr = line_addr, .done = now + 1,
        .forwarded = true}});
    ++reads_forwarded_;
    return true;
  }
  MemRequest r;
  r.type = ReqType::kRead;
  r.line_addr = line_addr;
  r.id = id;
  r.arrive = now;
  const DramCoord c = map_.decode(line_addr);
  r.bank = c.rank * device_.geometry().banks + c.bank;  // global bank
  r.row = c.row;
  r.col = c.col;
  read_q_.push_back(r);
  index_insert(r);
  ++reads_enqueued_;
  if (tracer_ != nullptr) trace_queue_depths(now);
  return true;
}

bool Controller::enqueue_write(Address line_addr, dram::MemCycle now) {
  if (write_q_.size() >= config_.write_queue_size) return false;
  // Coalesce with an existing pending write to the same line.
  if (write_line_pending(line_addr)) {
    ++writes_coalesced_;
    return true;
  }
  MemRequest r;
  r.type = ReqType::kWrite;
  r.line_addr = line_addr;
  r.arrive = now;
  const DramCoord c = map_.decode(line_addr);
  r.bank = c.rank * device_.geometry().banks + c.bank;  // global bank
  r.row = c.row;
  r.col = c.col;
  write_q_.push_back(r);
  index_insert(r);
  ++writes_enqueued_;
  if (tracer_ != nullptr) trace_queue_depths(now);
  return true;
}

void Controller::manage_refresh(dram::MemCycle now) {
  if (!config_.refresh_enabled) return;
  if (config_.refresh_granularity == RefreshGranularity::kPerBank) {
    manage_refresh_per_bank(now);
    return;
  }
  if (now < next_refresh_ && total_ab_debt_ == 0) {
    // Common case (no boundary crossed, no debt): skip the interval
    // arithmetic entirely — this runs on every memory tick.
    refresh_urgent_mask_ = 0;
    return;
  }
  const dram::MemCycle interval = refresh_interval();
  const std::uint32_t ranks = device_.geometry().ranks;
  // Accrue each rank's refresh debt for every interval boundary passed,
  // and refresh the cached minimum due time.
  if (now >= next_refresh_) {
    dram::MemCycle min_due = kNoMemEvent;
    for (std::uint32_t r = 0; r < ranks; ++r) {
      while (now >= rank_next_refresh_[r]) {
        ++rank_refresh_debt_[r];
        ++total_ab_debt_;
        rank_next_refresh_[r] += interval;
      }
      min_due = std::min(min_due, rank_next_refresh_[r]);
    }
    next_refresh_ = min_due;
  }
  if (total_ab_debt_ == 0) {
    refresh_urgent_mask_ = 0;
    return;
  }

  // Elastic refresh: while demand traffic is pending and a rank's
  // postpone budget isn't exhausted, let reads/writes go first. Ranks
  // with an unpostponed REF due outrank demand: the scheduler must stop
  // opening new rows there so the banks drain to all-precharged. One
  // refresh action (PD exit / REF / drain precharge) per tick, lowest
  // owing rank first — the command bus carries one command per cycle.
  const bool demand_pending = !read_q_.empty() || !write_q_.empty();
  refresh_urgent_mask_ = 0;
  int act_rank = -1;
  for (std::uint32_t r = 0; r < ranks; ++r) {
    if (rank_refresh_debt_[r] == 0) continue;
    if (config_.elastic_refresh &&
        rank_refresh_debt_[r] < config_.max_postponed_refreshes &&
        demand_pending) {
      continue;  // postponed
    }
    refresh_urgent_mask_ |= 1u << r;
    if (act_rank < 0) act_rank = static_cast<int>(r);
  }
  if (act_rank < 0) return;
  const std::uint32_t r = static_cast<std::uint32_t>(act_rank);

  // Refresh is due: get the rank out of power-down, close its open rows
  // and issue the REF command with priority over regular traffic.
  if (device_.rank_powered_down(r)) {
    device_.exit_power_down(now, r);
    ++pd_exits_for_refresh_;
    if (tracer_ != nullptr) trace_power_event("pd_exit_refresh", now);
    return;
  }
  if (device_.can_refresh(now, r)) {
    device_.refresh(now, r);
    ++refreshes_;
    --rank_refresh_debt_[r];
    --total_ab_debt_;
    if (rank_refresh_debt_[r] == 0) refresh_urgent_mask_ &= ~(1u << r);
    return;
  }
  const std::uint32_t banks = device_.geometry().banks;
  const std::uint32_t rank_open =
      (device_.open_banks() >> (r * banks)) & ((1u << banks) - 1u);
  for (std::uint32_t m = rank_open; m != 0; m &= m - 1) {
    const std::uint32_t b = r * banks + lowest_bank(m);
    if (device_.can_precharge(b, now)) {
      device_.precharge(b, now);
      clear_open_row_demand(b);
      ++precharges_for_refresh_;
      return;
    }
  }
}

int Controller::pull_in_candidate(dram::MemCycle now) const {
  // A pull-in spends future budget, so it is only legal with zero debt
  // outstanding anywhere (otherwise it would reorder past due work).
  if (!config_.darp || total_refresh_debt_ != 0) return -1;
  if (device_.in_self_refresh()) return -1;
  const dram::MemCycle horizon =
      now + static_cast<dram::MemCycle>(config_.max_postponed_refreshes) *
                refresh_interval();
  const std::uint32_t banks = device_.total_banks();
  for (std::uint32_t i = 0; i < banks; ++i) {
    const std::uint32_t b = (refresh_rr_ + i) % banks;
    if (device_.rank_powered_down(device_.rank_of(b))) continue;  // asleep
    if (bank_queued_[b] != 0) continue;        // demand wants this bank
    if (bank_next_refresh_[b] > horizon) continue;  // budget exhausted
    if (!device_.can_refresh_bank(b, now)) continue;
    return static_cast<int>(b);
  }
  return -1;
}

int Controller::pull_in_candidate_rank(std::uint32_t rank,
                                       dram::MemCycle now) const {
  if (!config_.darp || total_refresh_debt_ != 0) return -1;
  if (device_.in_self_refresh() || device_.rank_powered_down(rank)) return -1;
  const dram::MemCycle horizon =
      now + static_cast<dram::MemCycle>(config_.max_postponed_refreshes) *
                refresh_interval();
  const std::uint32_t banks = device_.geometry().banks;
  for (std::uint32_t i = 0; i < banks; ++i) {
    const std::uint32_t b = rank * banks + i;
    if (bank_queued_[b] != 0) continue;
    if (bank_next_refresh_[b] > horizon) continue;
    if (!device_.can_refresh_bank(b, now)) continue;
    return static_cast<int>(b);
  }
  return -1;
}

std::uint32_t Controller::rank_pb_debt(std::uint32_t rank) const {
  const std::uint32_t banks = device_.geometry().banks;
  std::uint32_t d = 0;
  for (std::uint32_t i = 0; i < banks; ++i) {
    d += bank_refresh_debt_[rank * banks + i];
  }
  return d;
}

dram::MemCycle Controller::rank_pb_next_refresh(std::uint32_t rank) const {
  const std::uint32_t banks = device_.geometry().banks;
  dram::MemCycle m = kNoMemEvent;
  for (std::uint32_t i = 0; i < banks; ++i) {
    m = std::min(m, bank_next_refresh_[rank * banks + i]);
  }
  return m;
}

void Controller::issue_bank_refresh(std::uint32_t bank, dram::MemCycle now,
                                    bool pull_in) {
  const bool row_was_open = device_.bank(bank).row_open();
  device_.refresh_bank(bank, now);
  ++refreshes_pb_;
  if (row_was_open) ++sarp_overlap_refreshes_;
  if (pull_in) {
    // Ahead-of-schedule refresh: no debt to settle; the bank's next due
    // time simply moves out one period.
    ++refresh_pull_ins_;
    bank_next_refresh_[bank] += refresh_interval();
    recompute_next_refresh();
    if (tracer_ != nullptr) {
      tracer_->instant(tracing::Category::kRefresh, tracing::kTrackRefresh,
                       "refresh_pull_in", to_cpu(now), "bank", bank);
    }
    return;
  }
  --bank_refresh_debt_[bank];
  --total_refresh_debt_;
  refresh_rr_ = (bank + 1) % device_.total_banks();
}

void Controller::manage_refresh_per_bank(dram::MemCycle now) {
  refresh_block_mask_ = 0;
  if (now < next_refresh_ && total_refresh_debt_ == 0) {
    // Nothing due. DARP may still pull a refresh into an idle bank of
    // an awake rank ahead of schedule (one per cycle), banking budget
    // for later.
    if (config_.darp && !device_.in_self_refresh()) {
      const int b = pull_in_candidate(now);
      if (b >= 0) {
        issue_bank_refresh(static_cast<std::uint32_t>(b), now,
                           /*pull_in=*/true);
      }
    }
    return;
  }

  // Accrue per-bank debt for every per-bank period boundary passed. A
  // boundary crossed while the bank still owes a refresh is a postpone
  // (DARP and elastic deliberately let these happen, bounded below).
  const std::uint32_t banks = device_.total_banks();
  const dram::MemCycle interval = refresh_interval();
  if (now >= next_refresh_) {
    for (std::uint32_t b = 0; b < banks; ++b) {
      while (now >= bank_next_refresh_[b]) {
        if (bank_refresh_debt_[b] > 0) ++refresh_postpones_;
        ++bank_refresh_debt_[b];
        ++total_refresh_debt_;
        bank_next_refresh_[b] += interval;
      }
    }
    recompute_next_refresh();
  }

  // Pick the target bank under the configured policy.
  const bool demand_pending = !read_q_.empty() || !write_q_.empty();
  int target = -1;
  if (config_.darp) {
    // DARP: a bank at the postpone cap must refresh first (its budget
    // is gone); otherwise refresh out of round-robin order into a bank
    // demand is not waiting on.
    for (std::uint32_t i = 0; i < banks && target < 0; ++i) {
      const std::uint32_t b = (refresh_rr_ + i) % banks;
      if (bank_refresh_debt_[b] >= config_.max_postponed_refreshes) {
        target = static_cast<int>(b);
      }
    }
    for (std::uint32_t i = 0; i < banks && target < 0; ++i) {
      const std::uint32_t b = (refresh_rr_ + i) % banks;
      if (bank_refresh_debt_[b] > 0 && bank_queued_[b] == 0) {
        target = static_cast<int>(b);
      }
    }
  } else if (config_.elastic_refresh && demand_pending) {
    // Elastic x per-bank: postpone everything while demand is pending,
    // unless some bank has exhausted its postpone budget.
    for (std::uint32_t i = 0; i < banks && target < 0; ++i) {
      const std::uint32_t b = (refresh_rr_ + i) % banks;
      if (bank_refresh_debt_[b] >= config_.max_postponed_refreshes) {
        target = static_cast<int>(b);
      }
    }
  } else {
    // Strict: oldest-due bank in round-robin order.
    for (std::uint32_t i = 0; i < banks && target < 0; ++i) {
      const std::uint32_t b = (refresh_rr_ + i) % banks;
      if (bank_refresh_debt_[b] > 0) target = static_cast<int>(b);
    }
  }
  if (target < 0) return;  // every debt is postponable right now
  const std::uint32_t b = static_cast<std::uint32_t>(target);

  // The target's REFpb outranks demand to that bank (only): hold off
  // new ACTs into it, wake its rank, drain its row, issue.
  refresh_block_mask_ = 1u << b;
  const std::uint32_t target_rank = device_.rank_of(b);
  if (device_.rank_powered_down(target_rank)) {
    device_.exit_power_down(now, target_rank);
    ++pd_exits_for_refresh_;
    if (tracer_ != nullptr) trace_power_event("pd_exit_refresh", now);
    return;
  }
  if (device_.can_refresh_bank(b, now)) {
    issue_bank_refresh(b, now, /*pull_in=*/false);
    refresh_block_mask_ = 0;
    return;
  }
  const dram::Bank& bank = device_.bank(b);
  if (bank.row_open() && now >= bank.ref_until() &&
      device_.can_precharge(b, now)) {
    device_.precharge(b, now);
    clear_open_row_demand(b);
    ++precharges_for_refresh_;
  }
}

bool Controller::row_still_needed(std::uint32_t bank, std::int64_t row) const {
  if (row < 0) return false;
  // Callers only ever ask about the bank's currently open row, which is
  // exactly what open_row_demand_ tracks.
  assert(row == device_.bank(bank).open_row());
  return open_row_demand_[bank] != 0;
}

bool Controller::try_issue_column(std::vector<MemRequest>& q,
                                  dram::MemCycle now) {
  // FR-FCFS stage 1: oldest request whose row is open and can issue now.
  for (auto it = q.begin(); it != q.end(); ++it) {
    if (it->type == ReqType::kRead) {
      if (device_.can_read(it->bank, it->row, now)) {
        const dram::MemCycle done = device_.read(it->bank, now);
        in_flight_.push_back({ReadCompletion{
            .id = it->id, .line_addr = it->line_addr, .done = done,
            .forwarded = false}});
        ++row_hits_;
        read_latency_mem_cycles_ += done - it->arrive;
        work_rank_ = static_cast<int>(device_.rank_of(it->bank));
        index_erase(*it);
        q.erase(it);
        if (tracer_ != nullptr) trace_queue_depths(now);
        return true;
      }
    } else {
      if (device_.can_write(it->bank, it->row, now)) {
        device_.write(it->bank, now);
        ++row_hits_;
        work_rank_ = static_cast<int>(device_.rank_of(it->bank));
        index_erase(*it);
        q.erase(it);
        if (tracer_ != nullptr) trace_queue_depths(now);
        return true;
      }
    }
  }
  return false;
}

bool Controller::try_prepare_row(std::vector<MemRequest>& q,
                                 dram::MemCycle now) {
  // FR-FCFS stage 2: for the oldest request whose row is not open,
  // precharge a conflicting row or activate the needed one.
  for (auto& r : q) {
    const dram::Bank& bank = device_.bank(r.bank);
    if (bank.row_open() &&
        bank.open_row() != static_cast<std::int64_t>(r.row)) {
      // Oldest-first: close the conflicting row unless an *older* request
      // (already scanned without issuing) still wants it, in which case
      // stage 1 will reach it once the bank timing allows.
      if (!row_still_needed(r.bank, bank.open_row()) &&
          device_.can_precharge(r.bank, now)) {
        device_.precharge(r.bank, now);
        clear_open_row_demand(r.bank);
        ++row_conflicts_;
        work_rank_ = static_cast<int>(device_.rank_of(r.bank));
        return true;
      }
      continue;  // bank busy or row still wanted; look at other requests
    }
    if (!bank.row_open() &&
        (refresh_urgent_mask_ & (1u << device_.rank_of(r.bank))) == 0 &&
        (refresh_block_mask_ & (1u << r.bank)) == 0 &&
        device_.can_activate(r.bank, r.row, now)) {
      device_.activate(r.bank, r.row, now);
      recount_open_row_demand(r.bank, r.row);
      ++row_misses_;
      work_rank_ = static_cast<int>(device_.rank_of(r.bank));
      return true;
    }
  }
  return false;
}

void Controller::manage_power_down(dram::MemCycle now, bool did_work) {
  // Per rank: a rank is busy when it issued this tick's command or has
  // demand queued; busy ranks stay awake (activity stamp refreshed),
  // idle ranks walk the entry ladder independently — other ranks'
  // traffic no longer keeps an idle rank out of power-down.
  const std::uint32_t ranks = device_.geometry().ranks;
  const std::uint32_t banks = device_.geometry().banks;
  const bool per_bank =
      config_.refresh_granularity == RefreshGranularity::kPerBank;
  for (std::uint32_t r = 0; r < ranks; ++r) {
    const bool busy =
        (did_work && work_rank_ == static_cast<int>(r)) ||
        rank_queued_[r] != 0;
    if (busy) {
      last_rank_activity_[r] = now;
      if (device_.rank_powered_down(r)) {
        device_.exit_power_down(now, r);
        ++pd_exits_;
        if (tracer_ != nullptr) trace_power_event("pd_exit", now);
      }
      continue;
    }
    if (device_.rank_powered_down(r) || device_.in_self_refresh()) continue;
    if (now - last_rank_activity_[r] < config_.power_down_idle_threshold) {
      continue;
    }
    // Aggressive power-down: close the rank's open rows first so it
    // lands in the deeper precharge power-down state.
    const std::uint32_t open =
        (device_.open_banks() >> (r * banks)) & ((1u << banks) - 1u);
    if (open != 0) {
      const std::uint32_t b = r * banks + lowest_bank(open);
      if (device_.can_precharge(b, now)) {
        device_.precharge(b, now);
        clear_open_row_demand(b);
      }
      continue;  // try again next cycle
    }
    // Leave headroom for the rank's pending or imminent refresh so we
    // don't thrash.
    if (config_.refresh_enabled) {
      const std::uint32_t debt =
          per_bank ? rank_pb_debt(r) : rank_refresh_debt_[r];
      const dram::MemCycle due =
          per_bank ? rank_pb_next_refresh(r) : rank_next_refresh_[r];
      if (debt > 0 || due <= now + device_.timing().tXP) continue;
    }
    // DARP banks refresh budget while idle: stay awake while a pull-in
    // into this rank is still possible, then power down for the periods
    // just covered.
    if (config_.darp && pull_in_candidate_rank(r, now) >= 0) continue;
    device_.enter_power_down(now, r);
    ++pd_entries_;
    if (tracer_ != nullptr) trace_power_event("pd_enter", now);
  }
}

void Controller::schedule(dram::MemCycle now) {
  // Write drain hysteresis.
  if (write_q_.size() >= config_.write_drain_high) draining_writes_ = true;
  if (write_q_.size() <= config_.write_drain_low) draining_writes_ = false;

  // No queued request targets any open row: stage 1 cannot issue a
  // column, so skip its queue scans outright (common while rows are
  // closed after power-down or a conflict chain).
  const bool col_possible = matched_total_ != 0;
  const bool prefer_writes = draining_writes_ || read_q_.empty();
  bool did_work = false;
  if (prefer_writes) {
    did_work = (col_possible && (try_issue_column(write_q_, now) ||
                                 try_issue_column(read_q_, now))) ||
               try_prepare_row(write_q_, now) ||
               try_prepare_row(read_q_, now);
  } else {
    did_work = (col_possible && try_issue_column(read_q_, now)) ||
               try_prepare_row(read_q_, now) ||
               (col_possible && try_issue_column(write_q_, now));
  }
  if (!did_work) did_work = try_close_unneeded_row(now);
  manage_power_down(now, did_work);
}

bool Controller::try_close_unneeded_row(dram::MemCycle now) {
  // Closed-page: proactively close rows nobody queued for, so the next
  // miss to the bank skips the conflict precharge. Banks of powered-down
  // ranks keep no rows open, and can_precharge rejects them anyway.
  if (config_.page_policy != PagePolicy::kClosed) return false;
  if (device_.in_self_refresh()) return false;
  for (std::uint32_t m = device_.open_banks(); m != 0; m &= m - 1) {
    const std::uint32_t b = lowest_bank(m);
    if (device_.rank_powered_down(device_.rank_of(b))) continue;
    const dram::Bank& bank = device_.bank(b);
    if (!row_still_needed(b, bank.open_row()) &&
        device_.can_precharge(b, now)) {
      device_.precharge(b, now);
      clear_open_row_demand(b);
      ++closed_page_precharges_;
      work_rank_ = static_cast<int>(device_.rank_of(b));
      return true;
    }
  }
  return false;
}

void Controller::tick(dram::MemCycle now) {
  // Per-cycle queue-occupancy integral (members, not StatSet lookups:
  // this runs every memory cycle).
  read_q_depth_.record(static_cast<double>(read_q_.size()));
  write_q_depth_.record(static_cast<double>(write_q_.size()));
  work_rank_ = -1;
  manage_refresh(now);
  if ((read_q_.empty() && write_q_.empty())) {
    const bool closed = try_close_unneeded_row(now);
    manage_power_down(now, closed);
    return;
  }
  // Wake one powered-down rank with queued demand per tick (lowest
  // first); scheduling resumes once every demanded rank is awake.
  for (std::uint32_t r = 0; r < device_.geometry().ranks; ++r) {
    if (rank_queued_[r] != 0 && device_.rank_powered_down(r)) {
      device_.exit_power_down(now, r);
      ++pd_exits_;
      if (tracer_ != nullptr) trace_power_event("pd_exit", now);
      return;
    }
  }
  schedule(now);
}

dram::MemCycle Controller::earliest_issue_bound() const {
  // For every queued request, the earliest cycle its next-step command
  // (column, conflict precharge, or activate) could clear the DRAM
  // timing constraints. Scheduling order, refresh urgency, and
  // row_still_needed holds can only push the real issue *later*, so the
  // minimum over requests is a valid lower bound.
  //
  // A request's bound depends only on its bank's state, whether its row
  // matches that bank's open row, and read-vs-write (tWTR) — all of
  // which the per-bank demand counters track — so the minimum is taken
  // bankwise in O(banks) instead of rescanning both queues. This runs
  // on nearly every fast-forward attempt (docs/PERFORMANCE.md).
  dram::MemCycle e = kNoMemEvent;
  const dram::Timing& t = device_.timing();
  const dram::MemCycle bus = device_.bus_ready();
  const dram::MemCycle read_bus =
      device_.last_col_was_write() ? bus + t.tWTR : bus;
  const std::uint32_t total = device_.total_banks();
  for (std::uint32_t b = 0; b < total; ++b) {
    if (bank_queued_[b] == 0) continue;
    const std::uint32_t rank = device_.rank_of(b);
    const dram::Bank& bank = device_.bank(b);
    dram::MemCycle c;
    if (bank.row_open()) {
      const std::uint32_t matched = open_row_demand_[b];
      const std::uint32_t matched_reads = open_row_demand_reads_[b];
      c = kNoMemEvent;
      if (matched_reads != 0) {
        c = std::max(bank.ready_col(), read_bus);
      }
      if (matched != matched_reads) {  // matched writes
        c = std::min(c, std::max(bank.ready_col(), bus));
      }
      if (matched != bank_queued_[b]) {  // conflicts: precharge next
        c = std::min(c, bank.ready_pre());
      }
    } else {
      c = std::max(bank.ready_act(),
                   std::max(device_.next_act_allowed(rank),
                            device_.act_faw_bound(rank)));
    }
    c = std::max(c, device_.wakeup_ready(rank));
    if (c < e) e = c;
  }
  if (config_.page_policy == PagePolicy::kClosed) {
    // Closed-page also proactively precharges rows nobody queued for.
    for (std::uint32_t m = device_.open_banks(); m != 0; m &= m - 1) {
      const std::uint32_t b = lowest_bank(m);
      const dram::Bank& bank = device_.bank(b);
      e = std::min(e, std::max(bank.ready_pre(),
                               device_.wakeup_ready(device_.rank_of(b))));
    }
  }
  return e;
}

dram::MemCycle Controller::next_event(dram::MemCycle now) const {
  dram::MemCycle e = kNoMemEvent;
  const bool queues_empty = read_q_.empty() && write_q_.empty();
  if (config_.refresh_enabled &&
      config_.refresh_granularity == RefreshGranularity::kPerBank) {
    const std::uint32_t total = device_.total_banks();
    if (total_refresh_debt_ > 0) {
      // Actionable iff manage_refresh_per_bank would pick a target (the
      // conditions below are exactly its selection criteria); then it
      // drives work tick by tick until the debt postpones or clears.
      bool actionable;
      if (config_.darp) {
        actionable = false;
        for (std::uint32_t b = 0; b < total && !actionable; ++b) {
          actionable = bank_refresh_debt_[b] > 0 &&
                       (bank_queued_[b] == 0 ||
                        bank_refresh_debt_[b] >=
                            config_.max_postponed_refreshes);
        }
      } else if (config_.elastic_refresh && !queues_empty) {
        actionable = false;
        for (std::uint32_t b = 0; b < total && !actionable; ++b) {
          actionable =
              bank_refresh_debt_[b] >= config_.max_postponed_refreshes;
        }
      } else {
        actionable = true;
      }
      if (actionable) return now + 1;
    }
    e = std::min(e, next_refresh_);  // earliest per-bank accrual boundary
    if (config_.darp && total_refresh_debt_ == 0 &&
        !device_.in_self_refresh()) {
      // Pull-in eligibility: idle bank b enters the pull-in horizon at
      // due_b - cap*interval; from then on the pass may act any cycle
      // (device acceptance can only delay it, so this stays a valid
      // conservative bound). Banks of powered-down ranks are skipped by
      // the pull-in pass until demand or debt wakes the rank, both of
      // which are bounded elsewhere.
      const dram::MemCycle span =
          static_cast<dram::MemCycle>(config_.max_postponed_refreshes) *
          refresh_interval();
      for (std::uint32_t b = 0; b < total; ++b) {
        if (bank_queued_[b] != 0) continue;
        if (device_.rank_powered_down(device_.rank_of(b))) continue;
        const dram::MemCycle due = bank_next_refresh_[b];
        e = std::min(e, due > now + span ? due - span : now + 1);
      }
    }
  } else if (config_.refresh_enabled) {
    for (std::uint32_t r = 0; r < device_.geometry().ranks; ++r) {
      if (rank_refresh_debt_[r] == 0) continue;
      const bool postponed =
          config_.elastic_refresh &&
          rank_refresh_debt_[r] < config_.max_postponed_refreshes &&
          !queues_empty;
      // Unpostponed refresh debt drives work (power-down exits,
      // precharges, the REF itself) tick by tick until it clears.
      if (!postponed) return now + 1;
    }
    e = std::min(e, next_refresh_);  // next debt accrual boundary (any rank)
  }
  const bool per_bank =
      config_.refresh_granularity == RefreshGranularity::kPerBank;
  const std::uint32_t banks = device_.geometry().banks;
  for (std::uint32_t r = 0; r < device_.geometry().ranks; ++r) {
    if (rank_queued_[r] != 0) {
      if (device_.rank_powered_down(r)) return now + 1;  // tick wakes it
      continue;  // demand: earliest_issue_bound below covers it
    }
    if (device_.rank_powered_down(r) || device_.in_self_refresh()) continue;
    // Idle-rank machinery: close the rank's open rows, then enter
    // power-down (other ranks may be serving demand meanwhile).
    const std::uint32_t open =
        (device_.open_banks() >> (r * banks)) & ((1u << banks) - 1u);
    for (std::uint32_t m = open; m != 0; m &= m - 1) {
      const dram::Bank& bank = device_.bank(r * banks + lowest_bank(m));
      e = std::min(e, std::max(bank.ready_pre(), device_.wakeup_ready(r)));
    }
    if (open == 0) {
      const dram::MemCycle entry =
          std::max(now + 1,
                   last_rank_activity_[r] + config_.power_down_idle_threshold);
      if (!config_.refresh_enabled) {
        e = std::min(e, entry);
      } else if ((per_bank ? rank_pb_debt(r) : rank_refresh_debt_[r]) == 0) {
        // Power-down entry leaves headroom for the rank's imminent
        // refresh: blocked at cycle t when its next due <= t + tXP.
        // With debt outstanding the rank stays awake until it clears,
        // which the refresh/issue bounds above already cover.
        const dram::MemCycle due =
            per_bank ? rank_pb_next_refresh(r) : rank_next_refresh_[r];
        const dram::MemCycle xp = device_.timing().tXP;
        const dram::MemCycle cutoff = due > xp ? due - xp : 0;
        if (entry < cutoff) e = std::min(e, entry);
        // Otherwise entry stays blocked until after the refresh, whose
        // boundary is already in e.
      }
    }
  }
  if (!queues_empty) e = std::min(e, earliest_issue_bound());
  return e == kNoMemEvent ? e : std::max(e, now + 1);
}

const std::vector<ReadCompletion>& Controller::collect_completions(
    dram::MemCycle now) {
  completed_.clear();
  auto it = in_flight_.begin();
  while (it != in_flight_.end()) {
    if (it->completion.done <= now) {
      completed_.push_back(it->completion);
      it = in_flight_.erase(it);
    } else {
      ++it;
    }
  }
  if (completed_.size() > 1) {
    std::sort(completed_.begin(), completed_.end(),
              [](const ReadCompletion& a, const ReadCompletion& b) {
                return a.done < b.done;
              });
  }
  return completed_;
}

void Controller::export_counters(StatSet& out) const {
  // Each key appears only when its event happened at least once — the
  // same presence the old first-increment StatSet insertion produced
  // (every site incremented by a nonzero delta: read_latency_mem_cycles
  // accrues alongside a row_hit with done > arrive).
  const auto put = [&out](const char* name, std::uint64_t v) {
    if (v != 0) out.add(name, v);
  };
  put("reads_enqueued", reads_enqueued_);
  put("reads_forwarded", reads_forwarded_);
  put("writes_enqueued", writes_enqueued_);
  put("writes_coalesced", writes_coalesced_);
  put("row_hits", row_hits_);
  put("row_misses", row_misses_);
  put("row_conflicts", row_conflicts_);
  put("read_latency_mem_cycles", read_latency_mem_cycles_);
  put("refreshes", refreshes_);
  put("refreshes_pb", refreshes_pb_);
  put("refresh_pull_ins", refresh_pull_ins_);
  put("refresh_postpones", refresh_postpones_);
  put("sarp_overlap_refreshes", sarp_overlap_refreshes_);
  put("precharges_for_refresh", precharges_for_refresh_);
  put("closed_page_precharges", closed_page_precharges_);
  put("pd_entries", pd_entries_);
  put("pd_exits", pd_exits_);
  put("pd_exits_for_refresh", pd_exits_for_refresh_);
}

}  // namespace mecc::memctrl
