// The memory controller: read/write transaction queues, FR-FCFS command
// scheduling, distributed auto-refresh, write-to-read forwarding, and the
// aggressive power-down policy the paper's baseline uses ("the scheduler
// issues a power-down command whenever it is possible", S IV-A).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "dram/device.h"
#include "memctrl/address_map.h"
#include "memctrl/request.h"

namespace mecc::memctrl {

/// Row-buffer management policy.
enum class PagePolicy : std::uint8_t {
  kOpen,    // leave rows open for locality (default; Table II workloads)
  kClosed,  // precharge as soon as no queued request wants the row
};

struct ControllerConfig {
  PagePolicy page_policy = PagePolicy::kOpen;
  std::size_t read_queue_size = 32;
  std::size_t write_queue_size = 32;
  // Write drain hysteresis: start draining when the write queue reaches
  // the high watermark, stop at the low one.
  std::size_t write_drain_high = 24;
  std::size_t write_drain_low = 8;
  // Enter power-down after this many idle memory cycles (aggressive).
  dram::MemCycle power_down_idle_threshold = 4;
  // Auto-refresh enable and rate divider (1 = 64 ms retention; MECC's SMD
  // mode keeps the divider at 16 even while active).
  bool refresh_enabled = true;
  std::uint32_t refresh_divider = 1;
  // Elastic refresh: postpone due REF commands while demand traffic is
  // pending, up to the JEDEC limit of 8 outstanding, and catch up when
  // the bus quiets down. Off by default (the paper's baseline refreshes
  // strictly on schedule).
  bool elastic_refresh = false;
  std::uint32_t max_postponed_refreshes = 8;
};

class Controller {
 public:
  Controller(dram::Device& device, const ControllerConfig& config);

  /// Enqueues a line-granularity read; false when the queue is full.
  [[nodiscard]] bool enqueue_read(Address line_addr, std::uint64_t id,
                                  dram::MemCycle now);
  /// Enqueues a line-granularity write (write-back or ECC re-encode
  /// traffic); false when the queue is full.
  [[nodiscard]] bool enqueue_write(Address line_addr, dram::MemCycle now);

  /// Advances the controller by one memory cycle.
  void tick(dram::MemCycle now);

  /// Drains and returns reads completed up to now.
  [[nodiscard]] std::vector<ReadCompletion> collect_completions(
      dram::MemCycle now);

  [[nodiscard]] std::size_t read_queue_depth() const {
    return read_q_.size();
  }
  [[nodiscard]] std::size_t write_queue_depth() const {
    return write_q_.size();
  }
  [[nodiscard]] bool idle() const {
    return read_q_.empty() && write_q_.empty() && in_flight_.empty();
  }

  void set_refresh_divider(std::uint32_t divider) {
    config_.refresh_divider = divider;
  }
  void set_refresh_enabled(bool enabled) {
    config_.refresh_enabled = enabled;
  }

  /// Re-aligns the refresh schedule after a self-refresh stay (the
  /// device refreshed itself; accumulated debt does not apply).
  void resync_refresh(dram::MemCycle now) {
    next_refresh_ =
        now + static_cast<dram::MemCycle>(device_.timing().tREFI) *
                  config_.refresh_divider;
    refresh_debt_ = 0;
    refresh_urgent_ = false;
  }

  [[nodiscard]] const StatSet& stats() const { return stats_; }
  [[nodiscard]] const ControllerConfig& config() const { return config_; }

  /// Exports counters (FR-FCFS decisions, refresh activity, queue
  /// events) plus the per-tick queue-occupancy distributions; the
  /// System registers this as the "memctrl" StatRegistry component.
  void export_stats(StatSet& out) const {
    out.merge("", stats_);
    out.put_dist("read_queue_depth", read_q_depth_);
    out.put_dist("write_queue_depth", write_q_depth_);
  }

 private:
  struct InFlight {
    ReadCompletion completion;
  };

  /// True if any queued request targets this bank's open row.
  void schedule(dram::MemCycle now);
  [[nodiscard]] bool try_issue_column(std::deque<MemRequest>& q,
                                      dram::MemCycle now);
  [[nodiscard]] bool try_prepare_row(std::deque<MemRequest>& q,
                                     dram::MemCycle now);
  void manage_power_down(dram::MemCycle now, bool did_work);
  void manage_refresh(dram::MemCycle now);
  [[nodiscard]] bool try_close_unneeded_row(dram::MemCycle now);
  [[nodiscard]] bool row_still_needed(std::uint32_t bank,
                                      std::int64_t row) const;

  dram::Device& device_;
  ControllerConfig config_;
  AddressMap map_;

  std::deque<MemRequest> read_q_;
  std::deque<MemRequest> write_q_;
  std::vector<InFlight> in_flight_;

  bool draining_writes_ = false;
  dram::MemCycle next_refresh_ = 0;
  std::uint32_t refresh_debt_ = 0;
  bool refresh_urgent_ = false;  // block new ACTs until the REF goes out
  dram::MemCycle last_activity_ = 0;
  StatSet stats_;
  Distribution read_q_depth_;   // sampled every tick
  Distribution write_q_depth_;
};

}  // namespace mecc::memctrl
