// The memory controller: read/write transaction queues, FR-FCFS command
// scheduling, distributed auto-refresh, write-to-read forwarding, and the
// aggressive power-down policy the paper's baseline uses ("the scheduler
// issues a power-down command whenever it is possible", S IV-A).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "common/trace.h"
#include "dram/device.h"
#include "memctrl/address_map.h"
#include "memctrl/request.h"

namespace mecc::memctrl {

/// "No event pending" sentinel for the fast-forward next_event bounds.
inline constexpr dram::MemCycle kNoMemEvent = static_cast<dram::MemCycle>(-1);

/// Row-buffer management policy.
enum class PagePolicy : std::uint8_t {
  kOpen,    // leave rows open for locality (default; Table II workloads)
  kClosed,  // precharge as soon as no queued request wants the row
};

/// Refresh command granularity (docs/SCHEDULING.md). All-bank is the
/// paper's baseline (one REF blocks the whole rank for tRFC); per-bank
/// issues staggered REFpb commands, one bank at a time, each blocking
/// only that bank for tRFCpb.
enum class RefreshGranularity : std::uint8_t {
  kAllBank,
  kPerBank,
};

struct ControllerConfig {
  PagePolicy page_policy = PagePolicy::kOpen;
  std::size_t read_queue_size = 32;
  std::size_t write_queue_size = 32;
  // Write drain hysteresis: start draining when the write queue reaches
  // the high watermark, stop at the low one.
  std::size_t write_drain_high = 24;
  std::size_t write_drain_low = 8;
  // Enter power-down after this many idle memory cycles (aggressive).
  dram::MemCycle power_down_idle_threshold = 4;
  // Auto-refresh enable and rate divider (1 = 64 ms retention; MECC's SMD
  // mode keeps the divider at 16 even while active).
  bool refresh_enabled = true;
  std::uint32_t refresh_divider = 1;
  // Elastic refresh: postpone due REF commands while demand traffic is
  // pending, up to the JEDEC limit of 8 outstanding, and catch up when
  // the bus quiets down. Off by default (the paper's baseline refreshes
  // strictly on schedule).
  bool elastic_refresh = false;
  std::uint32_t max_postponed_refreshes = 8;
  // Per-bank refresh and its scheduling refinements (docs/SCHEDULING.md).
  // DARP-style dynamic scheduling refreshes banks out of round-robin
  // order into banks with no queued demand, postpones a busy bank's
  // refresh up to max_postponed_refreshes periods, and pulls refreshes
  // in ahead of schedule (same budget) while a bank idles. SARP-style
  // overlap additionally lets demand to the non-refreshing subarrays of
  // a bank proceed during tRFCpb. Both imply per-bank granularity; the
  // constructor drops them when refresh_granularity is all-bank.
  RefreshGranularity refresh_granularity = RefreshGranularity::kAllBank;
  bool darp = false;
  bool sarp = false;
  // Address interleave mode for the controller's internal decode; must
  // match the system-level routing map (docs/SCALING.md).
  Interleave interleave = Interleave::kLine;
};

class Controller {
 public:
  Controller(dram::Device& device, const ControllerConfig& config);

  /// Enqueues a line-granularity read; false when the queue is full.
  [[nodiscard]] bool enqueue_read(Address line_addr, std::uint64_t id,
                                  dram::MemCycle now);
  /// Enqueues a line-granularity write (write-back or ECC re-encode
  /// traffic); false when the queue is full.
  [[nodiscard]] bool enqueue_write(Address line_addr, dram::MemCycle now);

  /// Advances the controller by one memory cycle.
  void tick(dram::MemCycle now);

  // ---- fast-forward (docs/PERFORMANCE.md) ----

  /// Conservative lower bound, strictly greater than `now`, on the first
  /// memory cycle at which tick() could do anything beyond the per-tick
  /// queue-depth sampling (which skip_ticks() bulk-applies). kNoMemEvent
  /// when the controller is fully quiescent (empty queues, no refresh).
  /// No side effects; landing on a cycle where nothing issues after all
  /// is harmless — the caller just recomputes the bound.
  [[nodiscard]] dram::MemCycle next_event(dram::MemCycle now) const;

  /// Earliest `done` cycle among in-flight reads (kNoMemEvent if none):
  /// the System must not skip past it, or completions would be collected
  /// — and their ECC decode timed — later than in the per-cycle loop.
  /// Inline: the fast-forward fold queries it once per channel on every
  /// executed cycle, and in_flight_ holds at most a handful of entries.
  [[nodiscard]] dram::MemCycle next_completion_ready() const {
    dram::MemCycle e = kNoMemEvent;
    for (const auto& f : in_flight_) e = std::min(e, f.completion.done);
    return e;
  }

  /// Bulk-applies the only per-tick side effect of `n` skipped no-op
  /// ticks: the queue-depth occupancy samples (queue sizes cannot change
  /// during a skip, so all n samples equal the current depths).
  void skip_ticks(dram::MemCycle n) {
    read_q_depth_.record_n(static_cast<double>(read_q_.size()), n);
    write_q_depth_.record_n(static_cast<double>(write_q_.size()), n);
  }

  /// Whether any issued read is still in flight; callers use this to
  /// skip collect_completions() on the (common) ticks with nothing to
  /// drain.
  [[nodiscard]] bool has_in_flight() const { return !in_flight_.empty(); }

  /// Drains and returns reads completed up to now. The returned
  /// reference stays valid until the next call (reused buffer: this runs
  /// on every executed memory tick).
  [[nodiscard]] const std::vector<ReadCompletion>& collect_completions(
      dram::MemCycle now);

  [[nodiscard]] std::size_t read_queue_depth() const {
    return read_q_.size();
  }
  [[nodiscard]] std::size_t write_queue_depth() const {
    return write_q_.size();
  }
  [[nodiscard]] bool idle() const {
    return read_q_.empty() && write_q_.empty() && in_flight_.empty();
  }

  /// Called from the System's per-cycle loop: the no-change early-out
  /// keeps it a compare per cycle, and the trace emission stays
  /// out-of-line so the hot loop body does not grow.
  void set_refresh_divider(std::uint32_t divider) {
    if (divider == config_.refresh_divider) return;
    if (tracer_ != nullptr) {
      trace_divider_change(config_.refresh_divider, divider);
    }
    config_.refresh_divider = divider;
  }
  void set_refresh_enabled(bool enabled) {
    if (tracer_ != nullptr && enabled != config_.refresh_enabled) {
      tracer_->instant(tracing::Category::kRefresh, tracing::kTrackRefresh,
                       enabled ? "refresh_enabled" : "refresh_disabled",
                       tracer_->now());
    }
    config_.refresh_enabled = enabled;
  }

  /// Attaches the observability tracer (docs/OBSERVABILITY.md):
  /// refresh-rate transitions (refresh), power-down entry/exit instants
  /// (power), queue-occupancy counters on every enqueue/issue edge
  /// (queue). Pass nullptr to detach.
  void set_tracer(tracing::Tracer* tracer) { tracer_ = tracer; }

  /// Re-aligns the refresh schedule after a self-refresh stay (the
  /// device refreshed itself; accumulated debt — all-bank *and*
  /// per-bank — does not apply, and the per-bank stagger restarts from
  /// `now`).
  void resync_refresh(dram::MemCycle now);

  // ---- refresh-schedule observers (tests/memctrl) ----
  /// Outstanding refresh debt across the channel: per-(global-)bank
  /// total in per-bank mode, the summed per-rank all-bank debt
  /// otherwise.
  [[nodiscard]] std::uint32_t pending_refresh_debt() const {
    return config_.refresh_granularity == RefreshGranularity::kPerBank
               ? total_refresh_debt_
               : total_ab_debt_;
  }
  [[nodiscard]] std::uint32_t refresh_debt(std::uint32_t bank) const {
    return bank_refresh_debt_[bank];
  }
  [[nodiscard]] dram::MemCycle bank_next_refresh(std::uint32_t bank) const {
    return bank_next_refresh_[bank];
  }
  /// All-bank mode: rank r's next REF due time.
  [[nodiscard]] dram::MemCycle rank_next_refresh(std::uint32_t rank) const {
    return rank_next_refresh_[rank];
  }

  /// Conservative lower bound on the `done` cycle of any read column
  /// that has NOT yet issued: future scheduling cannot create a
  /// completion earlier than this. kNoMemEvent when no read is queued
  /// (nothing new can complete until another enqueue). Used to size
  /// channel-parallel execution spans (docs/SCALING.md).
  [[nodiscard]] dram::MemCycle earliest_new_completion_bound() const {
    if (read_q_.empty()) return kNoMemEvent;
    const dram::MemCycle b = earliest_issue_bound();
    if (b == kNoMemEvent) return kNoMemEvent;
    return b + device_.timing().tCL + device_.timing().tBURST;
  }

  /// Counter view (tests). Rebuilt on demand: the counters themselves
  /// live in plain members because a string-keyed map lookup per DRAM
  /// command dominated the scheduler hot path.
  [[nodiscard]] const StatSet& stats() const {
    stats_cache_.reset();
    export_counters(stats_cache_);
    return stats_cache_;
  }
  [[nodiscard]] const ControllerConfig& config() const { return config_; }

  /// Exports counters (FR-FCFS decisions, refresh activity, queue
  /// events) plus the per-tick queue-occupancy distributions; the
  /// System registers this as the "memctrl" StatRegistry component.
  void export_stats(StatSet& out) const {
    export_counters(out);
    out.put_dist("read_queue_depth", read_q_depth_);
    out.put_dist("write_queue_depth", write_q_depth_);
  }

 private:
  struct InFlight {
    ReadCompletion completion;
  };

  /// True if any queued request targets this bank's open row.
  void schedule(dram::MemCycle now);
  [[nodiscard]] bool try_issue_column(std::vector<MemRequest>& q,
                                      dram::MemCycle now);
  [[nodiscard]] bool try_prepare_row(std::vector<MemRequest>& q,
                                     dram::MemCycle now);
  void manage_power_down(dram::MemCycle now, bool did_work);
  void manage_refresh(dram::MemCycle now);
  /// Per-bank refresh pass: accrues per-bank debt at each bank's own
  /// period boundary, picks a target bank per the configured policy
  /// (strict round-robin / elastic / DARP), and issues REFpb with
  /// priority over demand to that bank. Also drives DARP pull-ins.
  void manage_refresh_per_bank(dram::MemCycle now);
  /// Bank a DARP pull-in could refresh right now (-1 if none): no
  /// outstanding debt anywhere, the bank has no queued demand, its next
  /// due time is within max_postponed_refreshes periods, its rank is
  /// awake, and the device accepts a REFpb to it.
  [[nodiscard]] int pull_in_candidate(dram::MemCycle now) const;
  /// Same, restricted to `rank`'s banks (per-rank power-down decisions).
  [[nodiscard]] int pull_in_candidate_rank(std::uint32_t rank,
                                           dram::MemCycle now) const;
  /// Per-bank mode: rank r's outstanding debt / earliest due time
  /// across its banks (per-rank power-down headroom checks).
  [[nodiscard]] std::uint32_t rank_pb_debt(std::uint32_t rank) const;
  [[nodiscard]] dram::MemCycle rank_pb_next_refresh(std::uint32_t rank) const;
  /// Issues the REFpb to `bank` and settles the schedule: debt-- (or,
  /// for a pull-in, due time += one period) and counters.
  void issue_bank_refresh(std::uint32_t bank, dram::MemCycle now,
                          bool pull_in);
  [[nodiscard]] dram::MemCycle refresh_interval() const {
    return static_cast<dram::MemCycle>(device_.timing().tREFI) *
           config_.refresh_divider;
  }
  /// next_refresh_ caches the earliest per-bank due time in per-bank
  /// mode; recompute after any due-time move.
  void recompute_next_refresh() {
    dram::MemCycle m = bank_next_refresh_[0];
    for (const dram::MemCycle d : bank_next_refresh_) m = std::min(m, d);
    next_refresh_ = m;
  }
  /// Out-of-line trace emission for refresh-divider moves (cold path;
  /// see set_refresh_divider).
  void trace_divider_change(std::uint32_t from, std::uint32_t to);
  [[nodiscard]] bool try_close_unneeded_row(dram::MemCycle now);
  [[nodiscard]] bool row_still_needed(std::uint32_t bank,
                                      std::int64_t row) const;

  /// Conservative earliest cycle any queued request could issue a
  /// column, precharge, or activate (see next_event).
  [[nodiscard]] dram::MemCycle earliest_issue_bound() const;

  /// Folds the member counters into `out` under the historical StatSet
  /// names, preserving key presence (a key exists iff its event ever
  /// happened, exactly as first-increment insertion behaved).
  void export_counters(StatSet& out) const;

  // Demand index so row_still_needed is O(1) instead of re-scanning both
  // queues per scheduling decision, and earliest_issue_bound is O(banks)
  // instead of O(queued requests). The scheduler only ever asks about a
  // bank's *currently open* row, so per-bank counters suffice: they are
  // kept exact by the enqueue/dequeue hooks below plus a recount on ACT
  // (recount_open_row_demand) and a reset on every PRE
  // (clear_open_row_demand). Reads are counted separately because their
  // issue bound differs from writes' (tWTR after a write burst).
  void index_insert(const MemRequest& r) {
    ++bank_queued_[r.bank];
    ++rank_queued_[device_.rank_of(r.bank)];
    const dram::Bank& b = device_.bank(r.bank);
    if (b.open_row() == static_cast<std::int64_t>(r.row)) {
      ++open_row_demand_[r.bank];
      ++matched_total_;
      if (r.type == ReqType::kRead) ++open_row_demand_reads_[r.bank];
    }
    if (r.type == ReqType::kWrite) write_lines_.push_back(r.line_addr);
  }
  void index_erase(const MemRequest& r) {
    --bank_queued_[r.bank];
    --rank_queued_[device_.rank_of(r.bank)];
    const dram::Bank& b = device_.bank(r.bank);
    if (b.open_row() == static_cast<std::int64_t>(r.row)) {
      --open_row_demand_[r.bank];
      --matched_total_;
      if (r.type == ReqType::kRead) --open_row_demand_reads_[r.bank];
    }
    if (r.type == ReqType::kWrite) {
      for (auto& a : write_lines_) {
        if (a == r.line_addr) {
          a = write_lines_.back();
          write_lines_.pop_back();
          break;
        }
      }
    }
  }
  [[nodiscard]] bool write_line_pending(Address line_addr) const {
    for (const Address a : write_lines_) {
      if (a == line_addr) return true;
    }
    return false;
  }
  /// Rebuilds the open-row demand counters for `bank` after an ACT
  /// opened `row` (O(queued requests), and ACTs are far rarer than
  /// lookups).
  void recount_open_row_demand(std::uint32_t bank, std::uint32_t row);
  /// Drops `bank`'s open-row demand after a PRE closed its row.
  void clear_open_row_demand(std::uint32_t bank) {
    matched_total_ -= open_row_demand_[bank];
    open_row_demand_[bank] = 0;
    open_row_demand_reads_[bank] = 0;
  }

  dram::Device& device_;
  ControllerConfig config_;
  AddressMap map_;

  std::vector<MemRequest> read_q_;
  std::vector<MemRequest> write_q_;
  std::vector<InFlight> in_flight_;
  // Queue indexes (only ever used for point lookups, so their layout
  // cannot perturb determinism). write_lines_ mirrors the write queue's
  // line addresses (coalescing keeps it duplicate-free) for the
  // forwarding/coalescing lookups; it is a flat unsorted vector rather
  // than a hash set because the queue is bounded at ~32 entries — a
  // contiguous scan beats hashing plus a node malloc/free per write.
  // open_row_demand_ counts queued requests per bank targeting that
  // bank's open row, for O(1) row_still_needed without any scan.
  std::vector<Address> write_lines_;
  // Per-(global-)bank / per-rank demand counters.
  std::vector<std::uint32_t> bank_queued_;           // queued reqs per bank
  std::vector<std::uint32_t> rank_queued_;           // ...summed per rank
  std::vector<std::uint32_t> open_row_demand_;       // ...targeting open row
  std::vector<std::uint32_t> open_row_demand_reads_; // ...that are reads
  std::uint32_t matched_total_ = 0;  // sum of open_row_demand_

  bool draining_writes_ = false;
  // All-bank refresh schedule, one per rank (each rank takes its own
  // REF command, staggered by interval/ranks). next_refresh_ caches the
  // minimum due time across ranks (per-bank: across banks) for the
  // per-tick early-out. refresh_urgent_mask_ holds one bit per rank:
  // new ACTs into a rank owing an unpostponed REF are held off until
  // its banks drain.
  dram::MemCycle next_refresh_ = 0;
  std::vector<dram::MemCycle> rank_next_refresh_;
  std::vector<std::uint32_t> rank_refresh_debt_;
  std::uint32_t total_ab_debt_ = 0;        // sum of rank_refresh_debt_
  std::uint32_t refresh_urgent_mask_ = 0;  // bit per rank
  // Per-bank refresh schedule (refresh_granularity == kPerBank): each
  // global bank's next due time (staggered by tREFI*divider/G so the
  // channel sees one REFpb per tREFI/G on average, G = ranks*banks),
  // its outstanding debt, and the round-robin cursor.
  // refresh_block_mask_ plays refresh_urgent_mask_'s role bankwise:
  // while the pass is draining one bank for its REFpb, only ACTs into
  // *that* bank are held off.
  std::vector<dram::MemCycle> bank_next_refresh_;
  std::vector<std::uint32_t> bank_refresh_debt_;
  std::uint32_t total_refresh_debt_ = 0;  // sum of bank_refresh_debt_
  std::uint32_t refresh_rr_ = 0;          // round-robin start bank
  std::uint32_t refresh_block_mask_ = 0;  // bit per global bank
  // Power-down bookkeeping, per rank: last cycle the rank did work or
  // had demand queued, and the rank that issued this tick's command
  // (-1 if none) so manage_power_down only refreshes that rank's
  // activity stamp.
  std::vector<dram::MemCycle> last_rank_activity_;
  int work_rank_ = -1;

  // Hot-path event counters (see stats()/export_counters).
  std::uint64_t reads_enqueued_ = 0;
  std::uint64_t reads_forwarded_ = 0;
  std::uint64_t writes_enqueued_ = 0;
  std::uint64_t writes_coalesced_ = 0;
  std::uint64_t row_hits_ = 0;
  std::uint64_t row_misses_ = 0;
  std::uint64_t row_conflicts_ = 0;
  std::uint64_t read_latency_mem_cycles_ = 0;
  std::uint64_t refreshes_ = 0;
  std::uint64_t refreshes_pb_ = 0;
  std::uint64_t refresh_pull_ins_ = 0;
  std::uint64_t refresh_postpones_ = 0;
  std::uint64_t sarp_overlap_refreshes_ = 0;
  std::uint64_t precharges_for_refresh_ = 0;
  std::uint64_t closed_page_precharges_ = 0;
  std::uint64_t pd_entries_ = 0;
  std::uint64_t pd_exits_ = 0;
  std::uint64_t pd_exits_for_refresh_ = 0;

  mutable StatSet stats_cache_;  // materialized by stats()
  std::vector<ReadCompletion> completed_;  // collect_completions buffer
  Distribution read_q_depth_;   // sampled every tick
  Distribution write_q_depth_;

  tracing::Tracer* tracer_ = nullptr;
  /// Queue-depth counter samples on enqueue/issue edges (depths only
  /// change on those events, so edge sampling loses nothing and stays
  /// identical across fast-forward modes).
  void trace_queue_depths(dram::MemCycle now);
  void trace_power_event(const char* name, dram::MemCycle now);
};

}  // namespace mecc::memctrl
