#include "memctrl/due_policy.h"

namespace mecc::memctrl {

const char* due_action_name(DueAction a) {
  switch (a) {
    case DueAction::kNone:
      return "none";
    case DueAction::kScrub:
      return "scrub";
    case DueAction::kForceUpgrade:
      return "force_upgrade";
    case DueAction::kRefreshFallback:
      return "refresh_fallback";
  }
  return "?";
}

DueAction DuePolicy::escalate() {
  const DueAction action = escalate_impl();
  if (tracer_ != nullptr) {
    tracer_->instant(tracing::Category::kDue, tracing::kTrackErrors,
                     due_action_name(action), tracer_->now(), "level",
                     level_);
  }
  return action;
}

DueAction DuePolicy::escalate_impl() {
  if (level_ < 1) {
    level_ = 1;
    if (config_.scrub_enabled) {
      stats_.add("scrubs");
      return DueAction::kScrub;
    }
  }
  if (level_ < 2) {
    level_ = 2;
    if (config_.upgrade_enabled) {
      stats_.add("forced_upgrades");
      return DueAction::kForceUpgrade;
    }
  }
  if (level_ < 3) {
    level_ = 3;
    if (config_.fallback_enabled) {
      degraded_ = true;
      stats_.add("refresh_fallbacks");
      return DueAction::kRefreshFallback;
    }
  }
  return DueAction::kNone;
}

}  // namespace mecc::memctrl
