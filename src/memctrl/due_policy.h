// Detected-uncorrectable-error (DUE) handling policy: the graceful
// degradation ladder a controller climbs when ECC gives up on a line.
//
//   rung 0  retry the read (cures transient read-path glitches)
//   rung 1  scrub pass over the protected region (clears CE buildup
//           before it turns into more DUEs)
//   rung 2  force ECC-Upgrade of the region (re-encode everything
//           strong; unrecoverable lines are reconstructed upstream)
//   rung 3  fall back to the 64 ms refresh divider and latch `degraded`
//           (give up on refresh savings, never on data)
//
// The ladder is monotone and latching: every *unrecovered* DUE climbs
// one rung, disabled rungs are skipped, and once `degraded` is latched
// the memory stays at the JEDEC refresh rate until the host intervenes.
// The policy itself is a pure state machine — the System wires each
// action to the shadow memory / MECC engine / controller — so it is
// unit-testable and reusable by other memory-side agents.
#pragma once

#include <cstdint>

#include "common/stats.h"
#include "common/trace.h"

namespace mecc::memctrl {

struct DuePolicyConfig {
  /// Read retries attempted before escalating (rung 0).
  unsigned max_retries = 1;
  /// Individual rungs can be disabled to study partial ladders.
  bool scrub_enabled = true;
  bool upgrade_enabled = true;
  bool fallback_enabled = true;
};

/// What the controller must do next for an unrecovered DUE.
enum class DueAction : std::uint8_t {
  kNone,             // ladder exhausted (already degraded)
  kScrub,            // run a scrub pass
  kForceUpgrade,     // force ECC-Upgrade of the region
  kRefreshFallback,  // drop to the 64 ms divider, latch degraded
};

[[nodiscard]] const char* due_action_name(DueAction a);

class DuePolicy {
 public:
  explicit DuePolicy(const DuePolicyConfig& config) : config_(config) {}

  [[nodiscard]] const DuePolicyConfig& config() const { return config_; }

  /// A decode corrected `bits` flipped bits (CE bookkeeping).
  void on_ce(std::size_t bits) {
    stats_.add("ce");
    stats_.add("ce_bits", bits);
    if (tracer_ != nullptr) {
      tracer_->instant(tracing::Category::kDue, tracing::kTrackErrors, "ce",
                       tracer_->now(), "bits", bits);
    }
  }

  /// A decode returned data that failed an integrity check (shadow
  /// campaigns only; real hardware cannot see these).
  void on_silent_corruption() {
    stats_.add("silent");
    if (tracer_ != nullptr) {
      tracer_->instant(tracing::Category::kDue, tracing::kTrackErrors,
                       "silent", tracer_->now());
    }
  }

  /// A decode reported uncorrectable.
  void on_due() {
    stats_.add("due");
    if (tracer_ != nullptr) {
      tracer_->instant(tracing::Category::kDue, tracing::kTrackErrors, "due",
                       tracer_->now(), "level", level_);
    }
  }

  /// One retry finished. Returns through to the caller's loop.
  void on_retry(bool success) {
    stats_.add("retries");
    if (success) stats_.add("retry_success");
    if (tracer_ != nullptr) {
      tracer_->instant(tracing::Category::kDue, tracing::kTrackErrors,
                       "retry", tracer_->now(), "success",
                       success ? 1u : 0u);
    }
  }

  /// Retries are exhausted and the DUE stands: climb the ladder one
  /// rung and return the escalation action to execute.
  [[nodiscard]] DueAction escalate();

  /// True once the refresh fallback latched; the memory must run at the
  /// 64 ms divider from here on.
  [[nodiscard]] bool degraded() const { return degraded_; }

  /// Current rung (0 = nothing escalated yet), for observability.
  [[nodiscard]] unsigned level() const { return level_; }

  /// Counters (due, retries, retry_success, scrubs, forced_upgrades,
  /// refresh_fallbacks, ce, ce_bits, silent) plus the `degraded` and
  /// `escalation_level` gauges.
  void export_stats(StatSet& out) const {
    out.merge("", stats_);
    out.set_gauge("degraded", degraded_ ? 1.0 : 0.0);
    out.set_gauge("escalation_level", static_cast<double>(level_));
  }

  /// Attaches the observability tracer (docs/OBSERVABILITY.md): DUE
  /// instants and ladder escalations on the errors track. Pass nullptr
  /// to detach.
  void set_tracer(tracing::Tracer* tracer) { tracer_ = tracer; }

 private:
  [[nodiscard]] DueAction escalate_impl();

  DuePolicyConfig config_;
  unsigned level_ = 0;  // 0 none, 1 scrubbed, 2 upgraded, 3 degraded
  bool degraded_ = false;
  StatSet stats_;
  tracing::Tracer* tracer_ = nullptr;
};

}  // namespace mecc::memctrl
