// Memory transaction types shared by the controller, CPU model and MECC
// engine.
#pragma once

#include <cstdint>

#include "common/types.h"
#include "dram/bank.h"

namespace mecc::memctrl {

enum class ReqType : std::uint8_t { kRead, kWrite };

struct MemRequest {
  ReqType type = ReqType::kRead;
  Address line_addr = 0;       // byte address, line aligned
  std::uint64_t id = 0;        // caller's tag, returned on completion
  dram::MemCycle arrive = 0;   // enqueue time (memory cycles)

  // Decoded DRAM coordinates (filled by the controller). `bank` is the
  // global bank index within the channel: rank * banks_per_rank + bank,
  // matching dram::Device's flattened bank array.
  std::uint32_t bank = 0;
  std::uint32_t row = 0;
  std::uint32_t col = 0;
};

/// Completion record handed back to the CPU side.
struct ReadCompletion {
  std::uint64_t id = 0;
  Address line_addr = 0;
  dram::MemCycle done = 0;     // last data beat, memory cycles
  bool forwarded = false;      // served from the write queue
};

}  // namespace mecc::memctrl
