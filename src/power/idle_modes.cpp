#include "power/idle_modes.h"

namespace mecc::power {

std::vector<IdleModeOption> idle_mode_options(const PowerModel& pm,
                                              double capacity_mb,
                                              const IdleModeParams& params) {
  std::vector<IdleModeOption> out;

  const IdlePower sr64 = pm.idle_power(0.064);
  out.push_back({.name = "Self Refresh (64 ms)",
                 .power_mw = sr64.total_mw(),
                 .usable_capacity_fraction = 1.0,
                 .wakeup_seconds = params.sr_exit_seconds,
                 .state_preserved = true});

  // PASR: only the retained fraction is refreshed; the rest of the
  // array's contents are lost. Background control logic stays powered,
  // the array-dependent share of background scales with the fraction
  // (we attribute half of background to the array).
  const double f = params.pasr_retained_fraction;
  const double pasr_bg = sr64.background_mw * (0.5 + 0.5 * f);
  out.push_back({.name = "PASR (keep " +
                         std::to_string(static_cast<int>(f * 100)) + "%)",
                 .power_mw = sr64.refresh_mw * f + pasr_bg,
                 .usable_capacity_fraction = f,
                 .wakeup_seconds = params.sr_exit_seconds,
                 .state_preserved = false});

  // Deep Power Down: nothing refreshed, nothing retained; wake-up must
  // restore state from flash at mobile-storage bandwidth.
  const PowerParams& pp = pm.params();
  out.push_back({.name = "Deep Power Down",
                 .power_mw = pp.vdd * params.dpd_current_ma,
                 .usable_capacity_fraction = 0.0,
                 .wakeup_seconds =
                     capacity_mb / params.flash_restore_mb_per_s,
                 .state_preserved = false});

  const IdlePower mecc = pm.idle_power(params.mecc_refresh_period_s);
  out.push_back({.name = "MECC (ECC-6, 1 s SR)",
                 .power_mw = mecc.total_mw(),
                 .usable_capacity_fraction = 1.0,
                 .wakeup_seconds = params.sr_exit_seconds,
                 .state_preserved = true});
  return out;
}

}  // namespace mecc::power
