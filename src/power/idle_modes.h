// Idle-mode alternatives for the memory system (paper S II-A): Auto/Self
// Refresh, Partial Array Self Refresh, Deep Power Down - and MECC's slow
// self-refresh. Each option trades idle power against usable capacity
// and wake-up cost; MECC's pitch is PASR/DPD-class power at full
// capacity and instant wake-up.
#pragma once

#include <string>
#include <vector>

#include "power/power_model.h"

namespace mecc::power {

struct IdleModeOption {
  std::string name;
  double power_mw = 0.0;
  double usable_capacity_fraction = 1.0;  // contents retained
  double wakeup_seconds = 0.0;            // until memory is usable again
  bool state_preserved = true;
};

struct IdleModeParams {
  // Deep Power Down residual current (Micron: ~10 uA class).
  double dpd_current_ma = 0.010;
  // Flash restore bandwidth for rebuilding memory contents after DPD
  // (paper S I: 32-64 MB/s on mobile flash).
  double flash_restore_mb_per_s = 48.0;
  // Self-refresh exit is sub-microsecond; the dominant wake cost for SR
  // modes is negligible at user timescale.
  double sr_exit_seconds = 200e-9;
  // MECC: ECC-Upgrade happens on *idle entry*, not on wake, so wake-up
  // is the same SR exit; the 1 s period requires the ECC provisioning.
  double mecc_refresh_period_s = 1.0;
  // PASR: fraction of the array kept alive.
  double pasr_retained_fraction = 0.25;
};

/// Builds the S II-A comparison for a memory of `capacity_mb`.
[[nodiscard]] std::vector<IdleModeOption> idle_mode_options(
    const PowerModel& pm, double capacity_mb,
    const IdleModeParams& params = IdleModeParams{});

}  // namespace mecc::power
