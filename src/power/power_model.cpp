#include "power/power_model.h"

#include <cassert>

namespace mecc::power {

PowerModel::PowerModel(const PowerParams& params, const dram::Timing& timing,
                       std::uint32_t banks, std::uint32_t devices)
    : params_(params), timing_(timing), banks_(banks), devices_(devices),
      tck_s_(1.0 / kMemFreqHz) {
  assert(banks_ >= 1);
  assert(devices_ >= 1);
}

double PowerModel::energy_act_pre_nj() const {
  // Energy of an ACT/PRE pair above the background current, spread over
  // tRC (TN-46-03 scheme).
  const double trc_s = timing_.tRC() * tck_s_;
  const double tras_s = timing_.tRAS * tck_s_;
  const double bg_ma =
      (params_.idd3n_ma * tras_s + params_.idd2n_ma * (trc_s - tras_s)) /
      trc_s;
  return params_.vdd * (params_.idd0_ma - bg_ma) * 1e-3 * trc_s * 1e9;
}

double PowerModel::energy_read_nj() const {
  const double burst_s = timing_.tBURST * tck_s_;
  return params_.vdd * (params_.idd4_ma - params_.idd3n_ma) * 1e-3 * burst_s *
         1e9;
}

double PowerModel::energy_write_nj() const {
  // LPDDR IDD4W is close to IDD4R; the paper's Table IV lists one IDD4.
  return energy_read_nj();
}

double PowerModel::energy_refresh_cmd_nj() const {
  const double trfc_s = timing_.tRFC * tck_s_;
  return params_.vdd * (params_.idd5_ma - params_.idd2n_ma) * 1e-3 * trfc_s *
         1e9;
}

double PowerModel::energy_refresh_pb_cmd_nj() const {
  return energy_refresh_cmd_nj() / static_cast<double>(banks_);
}

double PowerModel::background_power_mw(dram::PowerState state) const {
  using dram::PowerState;
  switch (state) {
    case PowerState::kPrechargeStandby:
      return params_.vdd * params_.idd2n_ma;
    case PowerState::kActiveStandby:
      return params_.vdd * params_.idd3n_ma;
    case PowerState::kPrechargePowerDown:
      return params_.vdd * params_.idd2p_ma;
    case PowerState::kActivePowerDown:
      return params_.vdd * params_.idd3p_ma;
    case PowerState::kSelfRefresh:
      // Idle mode is computed analytically by idle_power(); during active
      // operation a short self-refresh stay is charged at the 64 ms rate.
      return params_.vdd * params_.idd8_ma;
  }
  return 0.0;
}

ActiveEnergy PowerModel::active_energy(
    const dram::ActivityCounters& counters) const {
  ActiveEnergy e;
  std::uint64_t total_cycles = 0;
  for (std::size_t s = 0; s < dram::kNumPowerStates; ++s) {
    const double secs = static_cast<double>(counters.state_cycles[s]) * tck_s_;
    e.background_mj +=
        background_power_mw(static_cast<dram::PowerState>(s)) * secs;
    total_cycles += counters.state_cycles[s];
  }
  // state_cycles sum per-device residencies (each rank of each channel
  // accounts its own background current), so the wall-clock seconds of
  // the interval are the total divided by the device count.
  e.seconds = static_cast<double>(total_cycles) * tck_s_ /
              static_cast<double>(devices_);
  e.activate_mj = static_cast<double>(counters.activates) *
                  energy_act_pre_nj() * 1e-6;
  e.read_mj = static_cast<double>(counters.reads) * energy_read_nj() * 1e-6;
  e.write_mj = static_cast<double>(counters.writes) * energy_write_nj() * 1e-6;
  e.refresh_mj = static_cast<double>(counters.refreshes) *
                     energy_refresh_cmd_nj() * 1e-6 +
                 static_cast<double>(counters.refreshes_pb) *
                     energy_refresh_pb_cmd_nj() * 1e-6;
  return e;
}

IdlePower PowerModel::idle_power(double refresh_period_s) const {
  assert(refresh_period_s > 0.0);
  // Every device (channel x rank) self-refreshes independently in idle.
  const double total_at_64ms_mw =
      params_.vdd * params_.idd8_ma * static_cast<double>(devices_);
  const double refresh_at_64ms_mw =
      total_at_64ms_mw * params_.self_refresh_refresh_share;
  IdlePower p;
  p.background_mw = total_at_64ms_mw - refresh_at_64ms_mw;
  p.refresh_mw = refresh_at_64ms_mw * (0.064 / refresh_period_s);
  return p;
}

double PowerModel::refresh_ops_per_second(double refresh_period_s) const {
  assert(refresh_period_s > 0.0);
  // All rows once per period, kRowsPerRefreshCommand rows per pulse,
  // in every device.
  return dram::kRefreshCommandsPerWindow * (0.064 / refresh_period_s) /
         0.064 * static_cast<double>(devices_);
}

}  // namespace mecc::power
