// Micron-style (TN-46-03 / TN-46-12) DRAM power calculator.
//
// Two halves, matching how the paper evaluates power:
//   * Active mode: event energies (ACT/PRE pair, read burst, write burst,
//     auto-refresh command) plus state-residency background power, driven
//     by the Device's ActivityCounters.
//   * Idle mode (Eq. 1): P_idle = P_refresh(period) + P_background, where
//     refresh power scales linearly with the refresh rate. The 64 ms
//     anchor point is VDD * IDD8 split by the calibrated refresh share.
#pragma once

#include "common/types.h"
#include "dram/device.h"
#include "power/power_params.h"

namespace mecc::power {

/// Idle (self-refresh) power split, in milliwatts.
struct IdlePower {
  double refresh_mw = 0.0;
  double background_mw = 0.0;
  [[nodiscard]] double total_mw() const { return refresh_mw + background_mw; }
};

/// Active-mode energy breakdown, in millijoules, over an interval.
struct ActiveEnergy {
  double background_mj = 0.0;
  double activate_mj = 0.0;
  double read_mj = 0.0;
  double write_mj = 0.0;
  double refresh_mj = 0.0;
  double ecc_mj = 0.0;  // encoder/decoder energy (filled in by the system)
  double seconds = 0.0;

  [[nodiscard]] double total_mj() const {
    return background_mj + activate_mj + read_mj + write_mj + refresh_mj +
           ecc_mj;
  }
  [[nodiscard]] double average_power_mw() const {
    return seconds > 0.0 ? total_mj() / seconds : 0.0;
  }
};

class PowerModel {
 public:
  /// `banks` sizes the per-bank refresh command energy (a REFpb covers
  /// 1/banks of the cells an all-bank REF does). `devices` is the number
  /// of physical DRAM devices behind the model (channels x ranks): idle
  /// self-refresh power and refresh ops scale linearly with it, and it
  /// normalizes the wall-clock seconds recovered from state-residency
  /// counters that sum per-device cycles (docs/SCALING.md). Default 1
  /// keeps the historical single-channel behavior.
  explicit PowerModel(const PowerParams& params = PowerParams{},
                      const dram::Timing& timing = dram::Timing{},
                      std::uint32_t banks = dram::Geometry{}.banks,
                      std::uint32_t devices = 1);

  // ---- event energies (nanojoules) ----
  [[nodiscard]] double energy_act_pre_nj() const;
  [[nodiscard]] double energy_read_nj() const;
  [[nodiscard]] double energy_write_nj() const;
  [[nodiscard]] double energy_refresh_cmd_nj() const;
  /// Per-bank refresh (REFpb): same rows-per-command charge in one bank
  /// instead of all of them, so 1/banks of the all-bank command energy —
  /// `banks` REFpb per tREFI costs what one REF does, keeping per-bank
  /// refresh energy equal to all-bank at the same rate.
  [[nodiscard]] double energy_refresh_pb_cmd_nj() const;

  /// Background power for a device state (milliwatts).
  [[nodiscard]] double background_power_mw(dram::PowerState state) const;

  /// Converts the device's activity counters over `elapsed_mem_cycles`
  /// into an active-mode energy breakdown.
  [[nodiscard]] ActiveEnergy active_energy(
      const dram::ActivityCounters& counters) const;

  /// Idle-mode power at a given self-refresh period (seconds). The
  /// refresh component scales as 64 ms / period (paper: 1 s -> 16x less).
  [[nodiscard]] IdlePower idle_power(double refresh_period_s) const;

  /// Refresh operations per second in idle mode at `refresh_period_s`
  /// (the Fig. 8-left "refresh power" proxy is proportional to this).
  [[nodiscard]] double refresh_ops_per_second(double refresh_period_s) const;

  [[nodiscard]] const PowerParams& params() const { return params_; }

 private:
  PowerParams params_;
  dram::Timing timing_;
  std::uint32_t banks_;
  std::uint32_t devices_;
  double tck_s_;  // memory-cycle duration in seconds
};

}  // namespace mecc::power
