// Memory power parameters.
//
// Table IV of the paper provides VDD, IDD0, IDD2P, IDD3P, IDD4, IDD5 and
// IDD8; the remaining values (IDD2N, IDD3N) come from the Micron 1 Gb
// mobile LPDDR datasheet the paper cites [21], and the idle-mode refresh
// share is calibrated to Fig. 8 (refresh is just under half of idle
// power at the 64 ms refresh period).
#pragma once

namespace mecc::power {

struct PowerParams {
  // ---- Table IV ----
  double vdd = 1.7;          // operating voltage (V)
  double idd0_ma = 95.0;     // one-bank active-precharge current
  double idd2p_ma = 0.6;     // precharge power-down standby
  double idd3p_ma = 3.0;     // active power-down standby
  double idd4_ma = 135.0;    // burst read/write, one bank active
  double idd5_ma = 100.0;    // auto refresh
  double idd8_ma = 1.3;      // self refresh (total, at 64 ms internal rate)

  // ---- Micron datasheet values the paper omits ----
  double idd2n_ma = 12.0;    // precharge standby, clock running
  double idd3n_ma = 20.0;    // active standby, clock running

  // ---- calibration ----
  // Fraction of self-refresh (idle) power spent on refresh at the 64 ms
  // period. Fig. 8 shows refresh at just under half of idle power, and the
  // text's "overall power reduction is about 43%" pins it at ~0.46
  // (0.46 * 15/16 = 0.43).
  double self_refresh_refresh_share = 0.46;
};

}  // namespace mecc::power
