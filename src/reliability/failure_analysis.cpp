#include "reliability/failure_analysis.h"

#include <cmath>
#include <stdexcept>

namespace mecc::reliability {

double binomial_pmf(std::size_t n, std::size_t k, double p) {
  if (k > n) return 0.0;
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == n ? 1.0 : 0.0;
  const double logc = std::lgamma(static_cast<double>(n) + 1) -
                      std::lgamma(static_cast<double>(k) + 1) -
                      std::lgamma(static_cast<double>(n - k) + 1);
  const double logp = logc + static_cast<double>(k) * std::log(p) +
                      static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(logp);
}

double line_failure_probability(std::size_t line_bits, std::size_t correct_t,
                                double ber) {
  if (ber <= 0.0) return 0.0;
  if (ber >= 1.0) return correct_t < line_bits ? 1.0 : 0.0;
  // P(fail) = 1 - sum_{k<=t} pmf(k). For the tiny-p regime that subtraction
  // cancels, so sum the tail directly: sum_{k=t+1..n} pmf(k). The tail
  // decays geometrically, so stop once terms become negligible.
  double tail = 0.0;
  for (std::size_t k = correct_t + 1; k <= line_bits; ++k) {
    const double term = binomial_pmf(line_bits, k, ber);
    tail += term;
    if (term < tail * 1e-18 && k > correct_t + 3) break;
  }
  return tail;
}

double system_failure_probability(double p_line, std::uint64_t num_lines) {
  if (p_line <= 0.0) return 0.0;
  if (p_line >= 1.0) return 1.0;
  return -std::expm1(static_cast<double>(num_lines) * std::log1p(-p_line));
}

double max_tolerable_ber(std::size_t line_bits, std::size_t correct_t,
                         std::uint64_t num_lines, double target) {
  if (target <= 0.0) throw std::invalid_argument("target must be > 0");
  auto meets = [&](double ber) {
    return system_failure_probability(
               line_failure_probability(line_bits, correct_t, ber),
               num_lines) < target;
  };
  if (!meets(1e-15)) return 0.0;
  double lo = 1e-15;  // meets the target
  double hi = 0.5;    // assumed not to (checked below)
  if (meets(hi)) return hi;
  // Bisect in log space: ~60 iterations pin ber to float precision.
  for (int it = 0; it < 200; ++it) {
    const double mid = std::sqrt(lo * hi);
    if (meets(mid)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::size_t required_ecc_strength(std::size_t line_bits,
                                  std::uint64_t num_lines, double ber,
                                  double target) {
  if (target <= 0.0) throw std::invalid_argument("target must be > 0");
  for (std::size_t t = 0; t <= line_bits; ++t) {
    const double ps =
        system_failure_probability(line_failure_probability(line_bits, t, ber),
                                   num_lines);
    if (ps < target) return t;
  }
  return line_bits;  // unreachable for sane inputs
}

}  // namespace mecc::reliability
