// Analytic line / system failure probabilities (paper Table I).
//
// Model (paper S II-C): bit errors are uniform and independent at rate
// `ber`; a line protected with ECC-K fails when more than K of its bits
// flip; a system fails when any of its lines fails. Everything is
// computed in the log domain so that probabilities down to ~1e-300 stay
// exact-ish (Table I spans 1.2e-16).
#pragma once

#include <cstddef>
#include <cstdint>

namespace mecc::reliability {

/// P(X == k) for X ~ Binomial(n, p), computed via lgamma.
[[nodiscard]] double binomial_pmf(std::size_t n, std::size_t k, double p);

/// P(X > t) for X ~ Binomial(n, p): probability that a line with n bits
/// and correction capability t fails.
[[nodiscard]] double line_failure_probability(std::size_t line_bits,
                                              std::size_t correct_t,
                                              double ber);

/// 1 - (1 - p_line)^num_lines without catastrophic cancellation.
[[nodiscard]] double system_failure_probability(double p_line,
                                                std::uint64_t num_lines);

/// Minimal ECC correction capability t such that the system failure
/// probability is below `target` (paper: 1e-6 -> t = 5, +1 soft-error
/// margin -> ECC-6).
[[nodiscard]] std::size_t required_ecc_strength(std::size_t line_bits,
                                                std::uint64_t num_lines,
                                                double ber, double target);

/// Inverse of required_ecc_strength: the highest raw BER a line with
/// `correct_t` retention-error correction can tolerate while keeping the
/// system failure probability below `target`. (The caller reserves the
/// paper's +1 soft-error margin by passing correct_t = provisioned - 1.)
/// Returns 0 when even BER -> 0 cannot meet the target.
[[nodiscard]] double max_tolerable_ber(std::size_t line_bits,
                                       std::size_t correct_t,
                                       std::uint64_t num_lines,
                                       double target);

/// Paper constants for Table I: a 64 B line plus its 8 B ECC space is
/// 576 bits, and the 1 GB memory has 2^24 lines.
inline constexpr std::size_t kTable1LineBits = 576;
inline constexpr std::uint64_t kTable1NumLines = 1ull << 24;

}  // namespace mecc::reliability
