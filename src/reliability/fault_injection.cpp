#include "reliability/fault_injection.h"

#include <random>
#include <set>

namespace mecc::reliability {

std::size_t FaultInjector::inject(BitVec& word, double ber) {
  if (ber <= 0.0 || word.empty()) return 0;
  if (ber >= 1.0) {
    inject_exact(word, word.size());
    return word.size();
  }
  std::binomial_distribution<std::size_t> dist(word.size(), ber);
  const std::size_t count = dist(rng_.engine());
  inject_exact(word, count);
  return count;
}

void FaultInjector::inject_exact(BitVec& word, std::size_t count) {
  if (count >= word.size()) {
    // Saturate: every bit flips exactly once. Rejection sampling below
    // would never terminate past the word length (and crawl near it).
    for (std::size_t i = 0; i < word.size(); ++i) word.flip(i);
    return;
  }
  std::set<std::size_t> flipped;
  while (flipped.size() < count) {
    const std::size_t pos = rng_.next_below(word.size());
    if (flipped.insert(pos).second) word.flip(pos);
  }
}

MonteCarloResult measure_line_failures(const ecc::Code& code, double ber,
                                       std::size_t trials,
                                       std::uint64_t seed) {
  FaultInjector injector(seed);
  MonteCarloResult result;
  result.trials = trials;
  BitVec data(code.data_bits());
  for (std::size_t t = 0; t < trials; ++t) {
    for (std::size_t i = 0; i < data.size(); ++i) {
      data.set(i, injector.rng().chance(0.5));
    }
    BitVec cw = code.encode(data);
    result.total_injected_bits += injector.inject(cw, ber);
    const ecc::DecodeResult r = code.decode(cw);
    switch (r.status) {
      case ecc::DecodeStatus::kClean:
      case ecc::DecodeStatus::kCorrected:
        result.total_corrected_bits += r.corrected_bits;
        if (r.data != data) {
          ++result.failures;
          ++result.miscorrections;
        }
        break;
      case ecc::DecodeStatus::kUncorrectable:
        ++result.failures;
        ++result.detected;
        break;
    }
  }
  return result;
}

}  // namespace mecc::reliability
