// Fault injection: uniform independent bit flips on stored codewords, plus
// a Monte-Carlo harness that drives a real codec end-to-end and measures
// empirical line failure rates (cross-check for Table I's analytics and a
// correctness workout for the codecs under realistic error patterns).
#pragma once

#include <cstddef>

#include "common/bitvec.h"
#include "common/rng.h"
#include "ecc/code.h"

namespace mecc::reliability {

class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

  /// Flips each bit of `word` independently with probability `ber`.
  /// Returns the number of bits flipped. Uses binomial count + positions
  /// so it stays O(flips) even for long words at low BER. `ber >= 1`
  /// deterministically flips every bit; `ber <= 0` flips none.
  std::size_t inject(BitVec& word, double ber);

  /// Flips exactly `count` distinct random bits. A `count` exceeding the
  /// word length saturates to flipping every bit (deterministically,
  /// without consuming RNG state for the full-word case).
  void inject_exact(BitVec& word, std::size_t count);

  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

struct MonteCarloResult {
  std::size_t trials = 0;
  std::size_t failures = 0;        // decode returned wrong data or gave up
  std::size_t miscorrections = 0;  // decode returned wrong data silently
  std::size_t detected = 0;        // decode flagged uncorrectable
  std::size_t total_injected_bits = 0;
  std::size_t total_corrected_bits = 0;

  [[nodiscard]] double failure_rate() const {
    return trials == 0 ? 0.0
                       : static_cast<double>(failures) /
                             static_cast<double>(trials);
  }
};

/// Runs `trials` rounds of encode -> inject(ber) -> decode against `code`
/// with random data, and tallies outcomes.
[[nodiscard]] MonteCarloResult measure_line_failures(const ecc::Code& code,
                                                     double ber,
                                                     std::size_t trials,
                                                     std::uint64_t seed);

}  // namespace mecc::reliability
