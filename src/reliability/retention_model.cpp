#include "reliability/retention_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mecc::reliability {

RetentionModel::RetentionModel(double p_at_64ms, double p_at_1s) {
  if (p_at_64ms <= 0 || p_at_1s <= 0 || p_at_64ms >= p_at_1s) {
    throw std::invalid_argument(
        "RetentionModel: need 0 < p(64ms) < p(1s)");
  }
  const double lt0 = std::log10(0.064);
  slope_ = (std::log10(p_at_1s) - std::log10(p_at_64ms)) / (0.0 - lt0);
  intercept_ = std::log10(p_at_1s);
}

double RetentionModel::bit_failure_probability(double retention_s) const {
  if (retention_s <= 0) return 0.0;
  const double lp = intercept_ + slope_ * std::log10(retention_s);
  return std::clamp(std::pow(10.0, lp), 0.0, 1.0);
}

double RetentionModel::retention_for_ber(double ber) const {
  if (ber <= 0) throw std::invalid_argument("retention_for_ber: ber <= 0");
  return std::pow(10.0, (std::log10(ber) - intercept_) / slope_);
}

double RetentionModel::sample_retention_seconds(Rng& rng) const {
  // Inverse-CDF sampling of the tail; u is the cell's failure quantile.
  const double u = rng.next_double();
  const double t = retention_for_ber(std::max(u, 1e-300));
  return std::min(t, 100.0);
}

}  // namespace mecc::reliability
