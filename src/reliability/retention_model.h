// DRAM cell retention-time model (paper Fig. 2, derived from Kim & Lee,
// "A new investigation of data retention time in truly nanoscaled DRAMs",
// 60 nm technology).
//
// The paper reads two anchor points off that distribution:
//   * at the JEDEC 64 ms refresh period the bit failure probability is
//     ~1e-9 (weak bits below this are repaired at test time), and
//   * at a 1 second refresh period it is 10^-4.5 (the default "raw BER"
//     used throughout the evaluation).
// Between and beyond the anchors the cumulative failure probability is
// log-log linear, which matches the straight-line tail of Fig. 2.
#pragma once

#include "common/rng.h"

namespace mecc::reliability {

class RetentionModel {
 public:
  /// Paper default raw BER at the 1 s refresh period: 10^-4.5.
  static constexpr double kDefaultBerAt1s = 3.16227766016838e-5;

  /// Anchors: failure probability at 64 ms and at 1 s. Defaults are the
  /// paper's values.
  explicit RetentionModel(double p_at_64ms = 1e-9,
                          double p_at_1s = kDefaultBerAt1s);

  /// Cumulative probability that a cell's retention time is below
  /// `retention_s` seconds, i.e. the raw bit error rate when the refresh
  /// period equals `retention_s`. Clamped to [0, 1].
  [[nodiscard]] double bit_failure_probability(double retention_s) const;

  /// Inverse: the refresh period (seconds) at which the bit error rate
  /// reaches `ber`.
  [[nodiscard]] double retention_for_ber(double ber) const;

  /// Samples one cell's retention time (seconds) from the distribution
  /// tail. Cells outside the modeled tail get a large sentinel (100 s).
  [[nodiscard]] double sample_retention_seconds(Rng& rng) const;

 private:
  double slope_;      // d log10(P) / d log10(t)
  double intercept_;  // log10(P) at t = 1 s
};

}  // namespace mecc::reliability
