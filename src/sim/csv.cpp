#include "sim/csv.h"

#include <fstream>
#include <stdexcept>

namespace mecc::sim {

std::string results_csv_header() {
  return "benchmark,policy,instructions,cycles,ipc,seconds,mpki,reads,"
         "writes,strong_decodes,weak_decodes,downgrades,energy_mj,"
         "avg_power_mw,edp_mj_s,mdt_regions,mdt_tracked_bytes,"
         "frac_downgrade_disabled";
}

void write_results_csv(const std::string& path,
                       const std::vector<RunResult>& results) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_results_csv: cannot open " + path);
  }
  out << results_csv_header() << '\n';
  for (const auto& r : results) {
    out << r.benchmark << ',' << policy_name(r.policy) << ','
        << r.instructions << ',' << r.cpu_cycles << ',' << r.ipc << ','
        << r.seconds << ',' << r.measured_mpki << ',' << r.reads << ','
        << r.writes << ',' << r.strong_decodes << ',' << r.weak_decodes
        << ',' << r.downgrades << ',' << r.energy.total_mj() << ','
        << r.avg_power_mw << ',' << r.edp_mj_s << ',' << r.mdt_marked_regions
        << ',' << r.mdt_tracked_bytes << ',' << r.frac_downgrade_disabled
        << '\n';
  }
}

}  // namespace mecc::sim
