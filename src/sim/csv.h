// CSV export of run results, for plotting outside the text tables.
#pragma once

#include <string>
#include <vector>

#include "sim/system.h"

namespace mecc::sim {

/// Writes one row per RunResult with a fixed header. Throws
/// std::runtime_error if the file cannot be opened.
void write_results_csv(const std::string& path,
                       const std::vector<RunResult>& results);

/// The column header written by write_results_csv.
[[nodiscard]] std::string results_csv_header();

}  // namespace mecc::sim
