#include "sim/experiment.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>

#include "common/table.h"
#include "ecc/ecc_model.h"
#include "sim/thread_pool.h"

namespace mecc::sim {

RunResult run_benchmark(const trace::BenchmarkProfile& profile,
                        EccPolicy policy, SystemConfig config) {
  config.policy = policy;
  const auto t0 = std::chrono::steady_clock::now();
  System system(profile, config);
  RunResult r = system.run();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - t0;
  r.wall_seconds = elapsed.count();
  r.wall_mips = r.wall_seconds > 0.0
                    ? static_cast<double>(r.instructions) /
                          (r.wall_seconds * 1e6)
                    : 0.0;
  return r;
}

ProgressFn stderr_progress() {
  return [](const RunResult& r, std::size_t done, std::size_t total) {
    // Through the single console writer (common/table.h) so --jobs>1
    // progress lines never tear into stdout tables.
    char buf[256];
    std::snprintf(buf, sizeof buf, "[%zu/%zu] %s/%s done in %.1fs\n", done,
                  total, policy_name(r.policy).c_str(), r.benchmark.c_str(),
                  r.wall_seconds);
    console_write_err(buf);
  };
}

std::string per_run_path(const std::string& base, const std::string& tag) {
  if (base.empty() || base == "-") return base;
  const std::size_t slash = base.find_last_of('/');
  const std::size_t dot = base.find_last_of('.');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return base + "." + tag;
  }
  return base.substr(0, dot) + "." + tag + base.substr(dot);
}

std::vector<RunResult> run_jobs(const std::vector<SuiteJob>& jobs,
                                unsigned n_threads,
                                const ProgressFn& progress) {
  std::vector<RunResult> results(jobs.size());
  if (n_threads == 0) n_threads = ThreadPool::default_thread_count();

  // Multi-run job sets with observability enabled get one trace/metrics
  // file per run ("i<index>-<benchmark>" tag); the derivation depends
  // only on the job list, so jobs=1 and jobs=8 write identical files.
  const auto job_config = [&jobs](std::size_t i) {
    SystemConfig c = jobs[i].config;
    if (jobs.size() > 1 && (c.trace.enabled || c.metrics.enabled)) {
      const std::string tag = "i" + std::to_string(i) + "-" +
                              std::string(jobs[i].profile->name);
      c.trace.path = per_run_path(c.trace.path, tag);
      c.metrics.path = per_run_path(c.metrics.path, tag);
    }
    return c;
  };

  if (n_threads <= 1 || jobs.size() <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      results[i] =
          run_benchmark(*jobs[i].profile, jobs[i].policy, job_config(i));
      if (progress) progress(results[i], i + 1, jobs.size());
    }
    return results;
  }

  // Each task writes only results[i]; the mutex guards nothing but the
  // progress counter/callback, so the simulated output cannot depend on
  // scheduling.
  std::mutex progress_mutex;
  std::size_t completed = 0;
  ThreadPool pool(n_threads > jobs.size()
                      ? static_cast<unsigned>(jobs.size())
                      : n_threads);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    pool.submit([&, i] {
      results[i] =
          run_benchmark(*jobs[i].profile, jobs[i].policy, job_config(i));
      if (progress) {
        const std::lock_guard<std::mutex> lock(progress_mutex);
        ++completed;
        progress(results[i], completed, jobs.size());
      }
    });
  }
  pool.wait_idle();
  return results;
}

std::vector<RunResult> run_suite(EccPolicy policy,
                                 const SystemConfig& config) {
  // Through run_jobs at n_threads=1 so the serial suite shares the
  // per-run trace/metrics path derivation with the parallel runner.
  return run_suite_parallel(policy, config, 1);
}

std::vector<RunResult> run_suite_parallel(EccPolicy policy,
                                          const SystemConfig& config,
                                          unsigned n_threads,
                                          const ProgressFn& progress) {
  const auto benchmarks = trace::all_benchmarks();
  std::vector<SuiteJob> jobs(benchmarks.size());
  for (std::size_t i = 0; i < benchmarks.size(); ++i) {
    jobs[i].profile = &benchmarks[i];
    jobs[i].policy = policy;
    jobs[i].config = config;
    jobs[i].config.seed = suite_seed(config.seed, i);
  }
  return run_jobs(jobs, n_threads, progress);
}

bool same_simulated_result(const RunResult& a, const RunResult& b) {
  if (a.benchmark != b.benchmark || a.policy != b.policy) return false;
  if (a.instructions != b.instructions || a.cpu_cycles != b.cpu_cycles)
    return false;
  if (a.ipc != b.ipc || a.seconds != b.seconds ||
      a.measured_mpki != b.measured_mpki)
    return false;
  if (a.reads != b.reads || a.writes != b.writes ||
      a.strong_decodes != b.strong_decodes ||
      a.weak_decodes != b.weak_decodes || a.downgrades != b.downgrades)
    return false;
  if (a.energy.background_mj != b.energy.background_mj ||
      a.energy.activate_mj != b.energy.activate_mj ||
      a.energy.read_mj != b.energy.read_mj ||
      a.energy.write_mj != b.energy.write_mj ||
      a.energy.refresh_mj != b.energy.refresh_mj ||
      a.energy.ecc_mj != b.energy.ecc_mj ||
      a.energy.seconds != b.energy.seconds)
    return false;
  if (a.avg_power_mw != b.avg_power_mw || a.edp_mj_s != b.edp_mj_s)
    return false;
  if (a.mdt_marked_regions != b.mdt_marked_regions ||
      a.mdt_tracked_bytes != b.mdt_tracked_bytes ||
      a.frac_downgrade_disabled != b.frac_downgrade_disabled)
    return false;
  if (a.checkpoints.size() != b.checkpoints.size()) return false;
  for (std::size_t i = 0; i < a.checkpoints.size(); ++i) {
    if (a.checkpoints[i].instructions != b.checkpoints[i].instructions ||
        a.checkpoints[i].cycles != b.checkpoints[i].cycles)
      return false;
  }
  // Covers counters, gauges AND distribution summaries.
  return a.stats == b.stats;
}

double geomean(const std::vector<double>& values) {
  double log_sum = 0.0;
  std::size_t n = 0;
  for (double v : values) {
    if (v <= 0.0) continue;  // no information on a log scale; skip
    log_sum += std::log(v);
    ++n;
  }
  if (n == 0) return 0.0;
  return std::exp(log_sum / static_cast<double>(n));
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

std::vector<IdleSchemeReport> analyze_idle(const power::PowerModel& pm) {
  std::vector<IdleSchemeReport> out;
  auto make = [&](const std::string& name, double period) {
    IdleSchemeReport r;
    r.scheme = name;
    r.refresh_period_s = period;
    r.refresh_ops_per_s = pm.refresh_ops_per_second(period);
    r.power = pm.idle_power(period);
    return r;
  };
  out.push_back(make("Baseline", 0.064));
  out.push_back(make("MECC", 1.0));
  out.push_back(make("ECC-6", 1.0));
  return out;
}

EnergyMix compose_energy(double active_power_mw, double active_seconds,
                         double idle_power_mw, double idle_share) {
  EnergyMix m;
  m.active_power_mw = active_power_mw;
  m.idle_power_mw = idle_power_mw;
  m.active_seconds = active_seconds;
  m.idle_seconds = active_seconds * idle_share / (1.0 - idle_share);
  return m;
}

double normalized(double value, double base) {
  return base == 0.0 ? 0.0 : value / base;
}

BreakEven mecc_break_even(const power::PowerModel& pm, std::uint64_t lines,
                          Cycle upgrade_cycles_per_line) {
  BreakEven b;
  b.lines_upgraded = lines;
  // Per line: read the line, ECC-6 decode, re-encode, write it back.
  const ecc::EccModel ecc;
  const auto strong = ecc.costs(ecc::Scheme::kEcc6);
  const double per_line_nj = pm.energy_read_nj() + pm.energy_write_nj() +
                             pm.energy_act_pre_nj() +
                             (strong.decode_energy_pj +
                              strong.encode_energy_pj) * 1e-3;
  b.upgrade_energy_mj = static_cast<double>(lines) * per_line_nj * 1e-6;
  b.upgrade_seconds = cycles_to_seconds(lines * upgrade_cycles_per_line);
  b.idle_saving_mw =
      pm.idle_power(0.064).total_mw() - pm.idle_power(1.0).total_mw();
  b.break_even_seconds =
      b.idle_saving_mw > 0.0 ? b.upgrade_energy_mj / b.idle_saving_mw : 0.0;
  return b;
}

}  // namespace mecc::sim
