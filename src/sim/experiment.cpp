#include "sim/experiment.h"

#include <cmath>

#include "ecc/ecc_model.h"

namespace mecc::sim {

RunResult run_benchmark(const trace::BenchmarkProfile& profile,
                        EccPolicy policy, SystemConfig config) {
  config.policy = policy;
  System system(profile, config);
  return system.run();
}

std::vector<RunResult> run_suite(EccPolicy policy,
                                 const SystemConfig& config) {
  std::vector<RunResult> results;
  results.reserve(trace::all_benchmarks().size());
  for (const auto& b : trace::all_benchmarks()) {
    results.push_back(run_benchmark(b, policy, config));
  }
  return results;
}

double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

std::vector<IdleSchemeReport> analyze_idle(const power::PowerModel& pm) {
  std::vector<IdleSchemeReport> out;
  auto make = [&](const std::string& name, double period) {
    IdleSchemeReport r;
    r.scheme = name;
    r.refresh_period_s = period;
    r.refresh_ops_per_s = pm.refresh_ops_per_second(period);
    r.power = pm.idle_power(period);
    return r;
  };
  out.push_back(make("Baseline", 0.064));
  out.push_back(make("MECC", 1.0));
  out.push_back(make("ECC-6", 1.0));
  return out;
}

EnergyMix compose_energy(double active_power_mw, double active_seconds,
                         double idle_power_mw, double idle_share) {
  EnergyMix m;
  m.active_power_mw = active_power_mw;
  m.idle_power_mw = idle_power_mw;
  m.active_seconds = active_seconds;
  m.idle_seconds = active_seconds * idle_share / (1.0 - idle_share);
  return m;
}

double normalized(double value, double base) {
  return base == 0.0 ? 0.0 : value / base;
}

BreakEven mecc_break_even(const power::PowerModel& pm, std::uint64_t lines,
                          Cycle upgrade_cycles_per_line) {
  BreakEven b;
  b.lines_upgraded = lines;
  // Per line: read the line, ECC-6 decode, re-encode, write it back.
  const ecc::EccModel ecc;
  const auto strong = ecc.costs(ecc::Scheme::kEcc6);
  const double per_line_nj = pm.energy_read_nj() + pm.energy_write_nj() +
                             pm.energy_act_pre_nj() +
                             (strong.decode_energy_pj +
                              strong.encode_energy_pj) * 1e-3;
  b.upgrade_energy_mj = static_cast<double>(lines) * per_line_nj * 1e-6;
  b.upgrade_seconds = cycles_to_seconds(lines * upgrade_cycles_per_line);
  b.idle_saving_mw =
      pm.idle_power(0.064).total_mw() - pm.idle_power(1.0).total_mw();
  b.break_even_seconds =
      b.idle_saving_mw > 0.0 ? b.upgrade_energy_mj / b.idle_saving_mw : 0.0;
  return b;
}

}  // namespace mecc::sim
