// Shared experiment plumbing for the bench harnesses: batch runs over the
// 28-benchmark suite, idle-mode analysis (Fig. 8), active/idle energy
// composition (Fig. 10), and small numeric helpers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "power/power_model.h"
#include "sim/system.h"
#include "trace/benchmarks.h"

namespace mecc::sim {

/// Runs one benchmark under one policy with the given base config
/// (policy/seed fields are overwritten per call).
[[nodiscard]] RunResult run_benchmark(const trace::BenchmarkProfile& profile,
                                      EccPolicy policy,
                                      SystemConfig config);

/// Runs the whole 28-benchmark suite under one policy.
[[nodiscard]] std::vector<RunResult> run_suite(EccPolicy policy,
                                               const SystemConfig& config);

/// Geometric mean (for normalized-IPC "ALL" bars; values must be > 0).
[[nodiscard]] double geomean(const std::vector<double>& values);
/// Arithmetic mean.
[[nodiscard]] double mean(const std::vector<double>& values);

// ---- idle mode (Figs. 8, 10) ----

struct IdleSchemeReport {
  std::string scheme;
  double refresh_period_s = 0.064;
  double refresh_ops_per_s = 0.0;
  power::IdlePower power;
};

/// Baseline (64 ms), MECC and ECC-6 (both 1 s) idle-mode analysis.
[[nodiscard]] std::vector<IdleSchemeReport> analyze_idle(
    const power::PowerModel& pm);

struct EnergyMix {
  double active_power_mw = 0.0;
  double idle_power_mw = 0.0;
  double active_seconds = 0.0;
  double idle_seconds = 0.0;
  [[nodiscard]] double active_mj() const {
    return active_power_mw * active_seconds;
  }
  [[nodiscard]] double idle_mj() const { return idle_power_mw * idle_seconds; }
  [[nodiscard]] double total_mj() const { return active_mj() + idle_mj(); }
};

/// Composes active + idle energy with the paper's 95%-idle usage mix
/// (S V-D): idle time = active time * idle_share / (1 - idle_share).
[[nodiscard]] EnergyMix compose_energy(double active_power_mw,
                                       double active_seconds,
                                       double idle_power_mw,
                                       double idle_share = 0.95);

/// Normalized value helper (returns 0 when the base is 0).
[[nodiscard]] double normalized(double value, double base);

// ---- MECC idle break-even analysis (extension) ----

struct BreakEven {
  std::uint64_t lines_upgraded = 0;
  double upgrade_energy_mj = 0.0;   // ECC-Upgrade walk (read+code+write)
  double upgrade_seconds = 0.0;
  double idle_saving_mw = 0.0;      // P_idle(64 ms) - P_idle(1 s)
  // Idle must last at least this long for the upgrade to pay for itself.
  double break_even_seconds = 0.0;
};

/// How long an idle period must last before MECC's idle-entry
/// ECC-Upgrade energy is recouped by the slower refresh. `lines` is the
/// number of lines the upgrade walk touches (MDT-bounded footprint).
[[nodiscard]] BreakEven mecc_break_even(const power::PowerModel& pm,
                                        std::uint64_t lines,
                                        Cycle upgrade_cycles_per_line = 40);

}  // namespace mecc::sim
