// Shared experiment plumbing for the bench harnesses: batch runs over the
// 28-benchmark suite, idle-mode analysis (Fig. 8), active/idle energy
// composition (Fig. 10), and small numeric helpers.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "power/power_model.h"
#include "sim/system.h"
#include "trace/benchmarks.h"

namespace mecc::sim {

/// Runs one benchmark under one policy with the given base config
/// (the policy field is overwritten per call; the seed is used as-is).
/// Also stamps the host-side wall_seconds / wall_mips observability
/// fields of the result.
[[nodiscard]] RunResult run_benchmark(const trace::BenchmarkProfile& profile,
                                      EccPolicy policy,
                                      SystemConfig config);

// ---- suite runners (serial and parallel) ----
//
// Both runners seed every run deterministically from the *suite* seed:
// benchmark i runs with config.seed replaced by
// suite_seed(config.seed, i). Each System owns all of its mutable state
// (its GeneratorSource's Rng included — there is no global RNG or shared
// mutable static anywhere on the simulation path), so runs are fully
// independent and the parallel runner is bit-identical to the serial one
// for every simulated field regardless of thread count or scheduling.
// Results always come back in canonical trace::all_benchmarks() order.

/// Per-run seed derivation shared by run_suite and run_suite_parallel:
/// gives every benchmark of a suite its own deterministic RNG stream.
[[nodiscard]] constexpr std::uint64_t suite_seed(std::uint64_t base_seed,
                                                 std::size_t benchmark_index) {
  return base_seed + static_cast<std::uint64_t>(benchmark_index);
}

/// Derives a per-run output path from a base path by inserting ".tag"
/// before the extension ("trace.json" + "i3-mcf" -> "trace.i3-mcf.json";
/// no extension -> appended). "" and "-" pass through unchanged. Used by
/// run_jobs so multi-run sweeps with --trace/--metrics-out enabled write
/// one file per run instead of clobbering a single path; the tag depends
/// only on the job index and benchmark name, never on thread count or
/// scheduling, so the file set is identical at any --jobs value.
[[nodiscard]] std::string per_run_path(const std::string& base,
                                       const std::string& tag);

/// Invoked (under a lock, in completion order) as parallel runs finish:
/// (result, completed_so_far, total).
using ProgressFn =
    std::function<void(const RunResult&, std::size_t, std::size_t)>;

/// A stderr progress printer: "[12/28] ECC-6/mcf done in 3.1s".
[[nodiscard]] ProgressFn stderr_progress();

/// One unit of parallel work: one benchmark under one policy/config.
/// The config's seed is used as-is (callers building suite jobs apply
/// suite_seed themselves).
struct SuiteJob {
  const trace::BenchmarkProfile* profile = nullptr;
  EccPolicy policy = EccPolicy::kNoEcc;
  SystemConfig config;
};

/// Runs an arbitrary job list (e.g. a policy x latency x benchmark cross
/// product) on `n_threads` workers; results come back indexed exactly
/// like `jobs`. n_threads == 0 means ThreadPool::default_thread_count();
/// n_threads == 1 runs inline on the calling thread.
[[nodiscard]] std::vector<RunResult> run_jobs(const std::vector<SuiteJob>& jobs,
                                              unsigned n_threads,
                                              const ProgressFn& progress = {});

/// Runs the whole 28-benchmark suite under one policy, serially.
[[nodiscard]] std::vector<RunResult> run_suite(EccPolicy policy,
                                               const SystemConfig& config);

/// Parallel run_suite: shards the 28 benchmarks across `n_threads`
/// workers (0 = hardware concurrency, 1 = serial) and returns exactly
/// run_suite(policy, config) — see the determinism note above.
[[nodiscard]] std::vector<RunResult> run_suite_parallel(
    EccPolicy policy, const SystemConfig& config, unsigned n_threads,
    const ProgressFn& progress = {});

/// True when every *simulated* field of the two results is bit-identical
/// (counters, IPC, energy, checkpoints, merged stats). Host-side
/// observability (wall_seconds / wall_mips) is deliberately excluded —
/// it differs run to run by construction.
[[nodiscard]] bool same_simulated_result(const RunResult& a,
                                         const RunResult& b);

/// Geometric mean (for normalized-IPC "ALL" bars). Non-positive values
/// carry no information on a log scale and would poison the whole bar
/// with NaN/-inf (normalized() legitimately returns 0 for a zero base),
/// so they are skipped; all-non-positive input yields 0.
[[nodiscard]] double geomean(const std::vector<double>& values);
/// Arithmetic mean.
[[nodiscard]] double mean(const std::vector<double>& values);

// ---- idle mode (Figs. 8, 10) ----

struct IdleSchemeReport {
  std::string scheme;
  double refresh_period_s = 0.064;
  double refresh_ops_per_s = 0.0;
  power::IdlePower power;
};

/// Baseline (64 ms), MECC and ECC-6 (both 1 s) idle-mode analysis.
[[nodiscard]] std::vector<IdleSchemeReport> analyze_idle(
    const power::PowerModel& pm);

struct EnergyMix {
  double active_power_mw = 0.0;
  double idle_power_mw = 0.0;
  double active_seconds = 0.0;
  double idle_seconds = 0.0;
  [[nodiscard]] double active_mj() const {
    return active_power_mw * active_seconds;
  }
  [[nodiscard]] double idle_mj() const { return idle_power_mw * idle_seconds; }
  [[nodiscard]] double total_mj() const { return active_mj() + idle_mj(); }
};

/// Composes active + idle energy with the paper's 95%-idle usage mix
/// (S V-D): idle time = active time * idle_share / (1 - idle_share).
[[nodiscard]] EnergyMix compose_energy(double active_power_mw,
                                       double active_seconds,
                                       double idle_power_mw,
                                       double idle_share = 0.95);

/// Normalized value helper (returns 0 when the base is 0).
[[nodiscard]] double normalized(double value, double base);

// ---- MECC idle break-even analysis (extension) ----

struct BreakEven {
  std::uint64_t lines_upgraded = 0;
  double upgrade_energy_mj = 0.0;   // ECC-Upgrade walk (read+code+write)
  double upgrade_seconds = 0.0;
  double idle_saving_mw = 0.0;      // P_idle(64 ms) - P_idle(1 s)
  // Idle must last at least this long for the upgrade to pay for itself.
  double break_even_seconds = 0.0;
};

/// How long an idle period must last before MECC's idle-entry
/// ECC-Upgrade energy is recouped by the slower refresh. `lines` is the
/// number of lines the upgrade walk touches (MDT-bounded footprint).
[[nodiscard]] BreakEven mecc_break_even(const power::PowerModel& pm,
                                        std::uint64_t lines,
                                        Cycle upgrade_cycles_per_line = 40);

}  // namespace mecc::sim
