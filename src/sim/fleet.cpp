#include "sim/fleet.h"

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string_view>

#include "common/fsio.h"
#include "common/json.h"
#include "common/profile.h"
#include "power/power_model.h"
#include "sim/telemetry.h"
#include "reliability/failure_analysis.h"
#include "reliability/retention_model.h"

namespace mecc::sim::fleet {

namespace {

// ---- time -----------------------------------------------------------

[[nodiscard]] double mono_s() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

void sleep_s(double seconds) {
  if (seconds <= 0.0) return;
  timespec ts{};
  ts.tv_sec = static_cast<time_t>(seconds);
  ts.tv_nsec = static_cast<long>((seconds - static_cast<double>(ts.tv_sec)) *
                                 1e9);
  ::nanosleep(&ts, nullptr);
}

// ---- hashing / mixing -----------------------------------------------

[[nodiscard]] std::uint64_t mix64(std::uint64_t x) {
  // splitmix64 finalizer (Steele et al.): a full-avalanche bijection.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

[[nodiscard]] std::uint64_t fnv1a(std::uint64_t h, std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (8 * i)) & 0xffull;
    h *= 0x100000001b3ull;
  }
  return h;
}

constexpr std::uint64_t kFnvBasis = 0xcbf29ce484222325ull;

[[nodiscard]] std::uint64_t double_bits(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

[[nodiscard]] double bits_double(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

// ---- shared model singletons ----------------------------------------

[[nodiscard]] const reliability::RetentionModel& retention_model() {
  static const reliability::RetentionModel model;
  return model;
}

[[nodiscard]] const power::PowerModel& power_model() {
  static const power::PowerModel model;
  return model;
}

/// Mean active-mode device power (mW) by workload class: DRAM active
/// power plus the Table III access intensity scaled into the SoC+DRAM
/// draw of a phone actively running that class of workload. Model
/// constants of the fleet population, not measurements.
[[nodiscard]] double active_power_mw(trace::MpkiClass klass) {
  switch (klass) {
    case trace::MpkiClass::kLow:
      return 180.0;
    case trace::MpkiClass::kMed:
      return 260.0;
    case trace::MpkiClass::kHigh:
      return 380.0;
  }
  return 260.0;
}

// ---- tiny strict scanners for our own JSON output -------------------
//
// The repo has a JSON *writer* only. Fleet checkpoint files are written
// exclusively by this module with a fixed key order and no
// brace/bracket characters inside string values, so parsing is a strict
// scan keyed on the serializer's exact output. Anything that does not
// scan cleanly is treated as absent and the orchestrator re-runs the
// shard (or rejects the manifest) — never a guess.

[[nodiscard]] bool scan_number_token(const std::string& doc,
                                     const std::string& key,
                                     std::string* token) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = doc.find(needle);
  if (pos == std::string::npos) return false;
  std::size_t begin = pos + needle.size();
  std::size_t end = begin;
  static constexpr std::string_view kNum = "-+.0123456789eE";
  while (end < doc.size() && kNum.find(doc[end]) != std::string_view::npos) {
    ++end;
  }
  if (end == begin) return false;
  *token = doc.substr(begin, end - begin);
  return true;
}

[[nodiscard]] bool scan_u64(const std::string& doc, const std::string& key,
                            std::uint64_t* out) {
  std::string token;
  if (!scan_number_token(doc, key, &token)) return false;
  char* endp = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(token.c_str(), &endp, 10);
  if (errno != 0 || endp == token.c_str() || *endp != '\0') return false;
  *out = v;
  return true;
}

[[nodiscard]] bool scan_double(const std::string& doc, const std::string& key,
                               double* out) {
  std::string token;
  if (!scan_number_token(doc, key, &token)) return false;
  char* endp = nullptr;
  const double v = std::strtod(token.c_str(), &endp);
  if (endp == token.c_str() || *endp != '\0') return false;
  *out = v;
  return true;
}

/// Extracts the balanced {...} or [...] slice of `"key":` (inclusive of
/// the delimiters). Depth-counts both brace kinds; valid because no
/// string value this module writes contains one.
[[nodiscard]] bool scan_slice(const std::string& doc, const std::string& key,
                              char open, std::string* out) {
  const std::string needle = "\"" + key + "\":" + open;
  const std::size_t pos = doc.find(needle);
  if (pos == std::string::npos) return false;
  const std::size_t begin = pos + needle.size() - 1;
  int depth = 0;
  for (std::size_t i = begin; i < doc.size(); ++i) {
    const char c = doc[i];
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      --depth;
      if (depth == 0) {
        *out = doc.substr(begin, i - begin + 1);
        return true;
      }
    }
  }
  return false;
}

void sketch_json(JsonWriter& w, const QuantileSketch& s) {
  w.begin_object();
  w.key("count");
  w.value(s.count());
  w.key("sum");
  w.value(s.sum());
  w.key("min");
  w.value(s.min());
  w.key("max");
  w.value(s.max());
  // min/max/sum are also carried as raw bit patterns: %.17g round-trips
  // every finite double, but byte-identical resume must not hinge on
  // the C library's strtod corner cases.
  w.key("min_bits");
  w.value(double_bits(s.min()));
  w.key("max_bits");
  w.value(double_bits(s.max()));
  w.key("sum_bits");
  w.value(double_bits(s.sum()));
  w.key("buckets");
  w.begin_array();
  for (const auto& [index, n] : s.buckets()) {
    w.begin_array();
    w.value(static_cast<std::int64_t>(index));
    w.value(n);
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

[[nodiscard]] bool scan_sketch(const std::string& doc, const std::string& key,
                               QuantileSketch* out) {
  std::string slice;
  if (!scan_slice(doc, key, '{', &slice)) return false;
  std::uint64_t count = 0;
  std::uint64_t min_bits = 0;
  std::uint64_t max_bits = 0;
  std::uint64_t sum_bits = 0;
  if (!scan_u64(slice, "count", &count) ||
      !scan_u64(slice, "min_bits", &min_bits) ||
      !scan_u64(slice, "max_bits", &max_bits) ||
      !scan_u64(slice, "sum_bits", &sum_bits)) {
    return false;
  }
  std::string buckets_slice;
  if (!scan_slice(slice, "buckets", '[', &buckets_slice)) return false;
  std::map<std::int32_t, std::uint64_t> buckets;
  const char* p = buckets_slice.c_str() + 1;  // past the outer '['
  for (;;) {
    while (*p == ',' || *p == ' ') ++p;
    if (*p == ']' || *p == '\0') break;
    if (*p != '[') return false;
    ++p;
    char* endp = nullptr;
    const long long index = std::strtoll(p, &endp, 10);
    if (endp == p || *endp != ',') return false;
    p = endp + 1;
    const unsigned long long n = std::strtoull(p, &endp, 10);
    if (endp == p || *endp != ']') return false;
    p = endp + 1;
    buckets[static_cast<std::int32_t>(index)] = n;
  }
  out->restore(buckets, count, bits_double(sum_bits), bits_double(min_bits),
               bits_double(max_bits));
  return true;
}

[[nodiscard]] std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

[[nodiscard]] std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

// ---- worker argv parsing helpers ------------------------------------

[[nodiscard]] bool eat_prefix(const char* arg, const char* prefix,
                              const char** rest) {
  const std::size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) return false;
  *rest = arg + n;
  return true;
}

[[nodiscard]] bool parse_u64_arg(const char* s, std::uint64_t* out) {
  char* endp = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &endp, 10);
  if (errno != 0 || endp == s || *endp != '\0') return false;
  *out = v;
  return true;
}

[[nodiscard]] bool parse_double_arg(const char* s, double* out) {
  char* endp = nullptr;
  const double v = std::strtod(s, &endp);
  if (endp == s || *endp != '\0') return false;
  *out = v;
  return true;
}

[[nodiscard]] std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (n <= 0) return "";
  buf[n] = '\0';
  return buf;
}

/// mkdir -p: creates every missing component; returns false only when a
/// component cannot be created (and does not already exist as a dir).
[[nodiscard]] bool mkdir_p(const std::string& path) {
  if (path.empty()) return false;
  std::string cur;
  std::size_t i = 0;
  while (i < path.size()) {
    std::size_t next = path.find('/', i);
    if (next == std::string::npos) next = path.size();
    cur.append(path, i, next - i + 1);
    i = next + 1;
    if (cur == "/" || cur.empty()) continue;
    if (::mkdir(cur.c_str(), 0755) != 0 && errno != EEXIST) return false;
  }
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

constexpr const char* kManifestSchema = "mecc-fleet-manifest-v1";
constexpr const char* kShardSchema = "mecc-fleet-shard-v1";
constexpr const char* kAggregateSchema = "mecc-fleet-aggregate-v1";
constexpr const char* kModelVersion = "fleet-model-v1";

/// The fingerprinted (population-defining) half of the config as a
/// compact JSON object. Byte-compared against the manifest on resume.
[[nodiscard]] std::string fingerprint_json(const FleetConfig& cfg) {
  JsonWriter w(-1);
  w.begin_object();
  w.key("model_version");
  w.value(kModelVersion);
  w.key("devices");
  w.value(cfg.devices);
  w.key("devices_per_shard");
  w.value(cfg.devices_per_shard);
  w.key("seed");
  w.value(cfg.seed);
  w.key("lines_per_device");
  w.value(cfg.model.lines_per_device);
  w.key("horizon_days");
  w.value(cfg.model.horizon_days);
  w.key("mean_active_share");
  w.value(cfg.model.mean_active_share);
  w.key("active_share_sigma");
  w.value(cfg.model.active_share_sigma);
  w.key("burst_seconds");
  w.value(cfg.model.burst_seconds);
  w.key("temp_min_c");
  w.value(cfg.model.temp_min_c);
  w.key("temp_max_c");
  w.value(cfg.model.temp_max_c);
  w.key("temp_ref_c");
  w.value(cfg.model.temp_ref_c);
  w.key("strong_refresh_s");
  w.value(cfg.model.strong_refresh_s);
  w.end_object();
  return w.str();
}

[[nodiscard]] std::uint64_t shard_begin(const FleetConfig& cfg,
                                        std::uint64_t shard) {
  return shard * cfg.devices_per_shard;
}

[[nodiscard]] std::uint64_t shard_end(const FleetConfig& cfg,
                                      std::uint64_t shard) {
  return std::min((shard + 1) * cfg.devices_per_shard, cfg.devices);
}

}  // namespace

// ---- CounterRng ------------------------------------------------------

CounterRng::CounterRng(std::uint64_t seed, std::uint64_t stream)
    : key_(mix64(mix64(seed) ^
                 (stream * 0xd1342543de82ef95ull + 0x2545f4914f6cdd1dull))) {}

std::uint64_t CounterRng::bits(std::uint64_t counter) const {
  return mix64(key_ ^ mix64(counter + 0x632be59bd9b4e019ull));
}

double CounterRng::uniform(std::uint64_t counter) const {
  // 53 top bits -> [0, 1) with full double mantissa resolution.
  return static_cast<double>(bits(counter) >> 11) * 0x1.0p-53;
}

double CounterRng::normal(std::uint64_t counter) const {
  double u1 = uniform(counter);
  const double u2 = uniform(counter + 1);
  if (u1 <= 0.0) u1 = 0x1.0p-53;  // log(0) guard
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  const double r = std::sqrt(-2.0 * std::log(u1));
  return r * std::cos(kTwoPi * u2);
}

std::uint64_t CounterRng::poisson(double lambda, std::uint64_t counter) const {
  if (!(lambda > 0.0)) return 0;
  if (lambda < 64.0) {
    // Knuth's product method; consumes one counter per event + 1.
    const double limit = std::exp(-lambda);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      p *= uniform(counter++);
      ++k;
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation for large lambda (relative error < 1/sqrt(64)
  // on the tail shape — fine for population aggregates).
  const double v = lambda + std::sqrt(lambda) * normal(counter);
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(v));
}

// ---- selftest spec ---------------------------------------------------

bool parse_selftest(const std::string& spec, SelftestSpec* out,
                    std::string* error) {
  *out = SelftestSpec{};
  std::size_t i = 0;
  while (i < spec.size()) {
    std::size_t end = spec.find(',', i);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(i, end - i);
    i = end + 1;
    if (entry.empty()) continue;
    const std::size_t at = entry.find('@');
    if (at == std::string::npos) {
      *error = "selftest entry missing '@': " + entry;
      return false;
    }
    const std::string kind = entry.substr(0, at);
    const std::string rest = entry.substr(at + 1);
    const std::size_t colon = rest.find(':');
    std::uint64_t a = 0;
    std::uint64_t b = 1;
    if (!parse_u64_arg(rest.substr(0, colon).c_str(), &a) ||
        (colon != std::string::npos &&
         !parse_u64_arg(rest.substr(colon + 1).c_str(), &b))) {
      *error = "selftest entry has a malformed number: " + entry;
      return false;
    }
    if (kind == "crash") {
      out->crash[a] = static_cast<unsigned>(b);
    } else if (kind == "dirty") {
      out->dirty[a] = static_cast<unsigned>(b);
    } else if (kind == "hang") {
      out->hang[a] = static_cast<unsigned>(b);
    } else if (kind == "slow") {
      if (colon == std::string::npos) {
        *error = "selftest slow@S:MS needs a millisecond count: " + entry;
        return false;
      }
      out->slow_ms[a] = static_cast<unsigned>(b);
    } else if (kind == "orch-exit") {
      if (a == 0) {
        *error = "selftest orch-exit@K needs K >= 1";
        return false;
      }
      out->orch_exit_after = a;
    } else {
      *error = "unknown selftest kind: " + kind;
      return false;
    }
  }
  return true;
}

// ---- fleet sampling & simulation ------------------------------------

std::uint64_t shard_count(const FleetConfig& cfg) {
  if (cfg.devices == 0 || cfg.devices_per_shard == 0) return 0;
  return (cfg.devices + cfg.devices_per_shard - 1) / cfg.devices_per_shard;
}

DeviceSample sample_device(const FleetConfig& cfg, std::uint64_t device) {
  const CounterRng rng(cfg.seed, device);
  DeviceSample s;
  s.device = device;
  // Workload class by the Table III benchmark shares (7/10/11 of 28).
  const double uc = rng.uniform(0);
  if (uc < 7.0 / 28.0) {
    s.klass = trace::MpkiClass::kLow;
  } else if (uc < 17.0 / 28.0) {
    s.klass = trace::MpkiClass::kMed;
  } else {
    s.klass = trace::MpkiClass::kHigh;
  }
  // Fig. 1 duty cycle: lognormal around the mean active share, with the
  // -sigma^2/2 correction so the population mean stays at the knob.
  const double sigma = cfg.model.active_share_sigma;
  const double z = rng.normal(1);  // consumes counters 1, 2
  s.active_share = std::clamp(
      cfg.model.mean_active_share * std::exp(sigma * z - 0.5 * sigma * sigma),
      0.002, 0.8);
  s.wakeups_per_day = s.active_share * 86400.0 / cfg.model.burst_seconds;
  s.temperature_c = cfg.model.temp_min_c +
                    (cfg.model.temp_max_c - cfg.model.temp_min_c) *
                        rng.uniform(3);
  // Retention halves per +10 C above the reference temperature, so a
  // device at T sees the BER a nominal device would see at a refresh
  // period stretched by 2^((T - ref)/10).
  const double temp_factor =
      std::exp2((s.temperature_c - cfg.model.temp_ref_c) / 10.0);
  s.ber = retention_model().bit_failure_probability(
      cfg.model.strong_refresh_s * temp_factor);
  return s;
}

DeviceResult simulate_device(const FleetConfig& cfg,
                             const DeviceSample& sample) {
  const CounterRng rng(cfg.seed, sample.device);
  DeviceResult r;
  // Reliability: every idle->active wake-up sweeps (reads) the sampled
  // line set; a line with > 6 flipped bits is a DUE (paper ECC-6 strong
  // mode), a line with 1..6 is a corrected error.
  const double p_due = reliability::line_failure_probability(
      reliability::kTable1LineBits, 6, sample.ber);
  const double p_any =
      -std::expm1(static_cast<double>(reliability::kTable1LineBits) *
                  std::log1p(-sample.ber));
  const double p_ce = std::max(0.0, p_any - p_due);
  const double lines = static_cast<double>(cfg.model.lines_per_device);
  const double sweeps = sample.wakeups_per_day * cfg.model.horizon_days;
  // Disjoint counter ranges: sampling used 0..3, DUE draws start at
  // 2^20, CE draws at 2^21 (Knuth's method consumes a variable count).
  r.due_events = rng.poisson(p_due * lines * sweeps, 1ull << 20);
  r.ce_events = rng.poisson(p_ce * lines * sweeps, 1ull << 21);
  r.due_per_year = p_due * lines * sample.wakeups_per_day * 365.0;
  // Energy: class-dependent active power while awake, Eq. 1 idle
  // self-refresh power (at the strong-mode period) while asleep.
  const double active_s = sample.active_share * 86400.0;
  const double idle_s = 86400.0 - active_s;
  const double idle_mw =
      power_model().idle_power(cfg.model.strong_refresh_s).total_mw();
  r.energy_mj_per_day = active_power_mw(sample.klass) * active_s +
                        idle_mw * idle_s;  // mW * s = mJ
  return r;
}

ShardResult run_shard(
    const FleetConfig& cfg, std::uint64_t shard,
    const std::function<void(std::uint64_t devices_done,
                             const ShardResult& partial)>& progress) {
  MECC_PROF_SCOPE("fleet", "shard");
  ShardResult r;
  r.shard = shard;
  r.digest = fnv1a(kFnvBasis, shard);
  const std::uint64_t begin = shard_begin(cfg, shard);
  const std::uint64_t end = shard_end(cfg, shard);
  for (std::uint64_t device = begin; device < end; ++device) {
    const DeviceSample s = sample_device(cfg, device);
    const DeviceResult d = simulate_device(cfg, s);
    ++r.devices;
    r.due_events += d.due_events;
    r.ce_events += d.ce_events;
    r.energy_mj_per_day_sum += d.energy_mj_per_day;
    r.due_rate.record(d.due_per_year);
    r.energy.record(d.energy_mj_per_day);
    r.digest = fnv1a(r.digest, device);
    r.digest = fnv1a(r.digest, d.due_events);
    r.digest = fnv1a(r.digest, d.ce_events);
    r.digest = fnv1a(r.digest, double_bits(d.energy_mj_per_day));
    r.digest = fnv1a(r.digest, double_bits(d.due_per_year));
    if (progress && ((device - begin) & 255u) == 255u) {
      progress(device - begin + 1, r);
    }
  }
  if (progress) progress(end - begin, r);
  return r;
}

std::string shard_result_json(const ShardResult& r) {
  JsonWriter w(-1);
  w.begin_object();
  w.key("schema");
  w.value(kShardSchema);
  w.key("shard");
  w.value(r.shard);
  w.key("devices");
  w.value(r.devices);
  w.key("due_events");
  w.value(r.due_events);
  w.key("ce_events");
  w.value(r.ce_events);
  w.key("energy_mj_per_day_sum");
  w.value(r.energy_mj_per_day_sum);
  w.key("energy_sum_bits");
  w.value(double_bits(r.energy_mj_per_day_sum));
  w.key("digest");
  w.value(r.digest);
  w.key("due_rate");
  sketch_json(w, r.due_rate);
  w.key("energy");
  sketch_json(w, r.energy);
  w.end_object();
  return w.str();
}

bool parse_shard_result(const std::string& doc, ShardResult* r) {
  if (doc.find(std::string("\"schema\":\"") + kShardSchema + "\"") ==
      std::string::npos) {
    return false;
  }
  ShardResult parsed;
  std::uint64_t energy_sum_bits = 0;
  if (!scan_u64(doc, "shard", &parsed.shard) ||
      !scan_u64(doc, "devices", &parsed.devices) ||
      !scan_u64(doc, "due_events", &parsed.due_events) ||
      !scan_u64(doc, "ce_events", &parsed.ce_events) ||
      !scan_u64(doc, "energy_sum_bits", &energy_sum_bits) ||
      !scan_u64(doc, "digest", &parsed.digest) ||
      !scan_sketch(doc, "due_rate", &parsed.due_rate) ||
      !scan_sketch(doc, "energy", &parsed.energy)) {
    return false;
  }
  parsed.energy_mj_per_day_sum = bits_double(energy_sum_bits);
  *r = std::move(parsed);
  return true;
}

bool heartbeat_advanced(bool read_ok, const std::string& value,
                        std::string* last_value) {
  // A failed or empty read is a worker mid-rewrite (truncate-write) or
  // not yet started — no evidence either way, so leave *last_value
  // alone; otherwise the stored "" would make the next real value look
  // like progress even from a genuinely hung worker.
  if (!read_ok || value.empty()) return false;
  if (value == *last_value) return false;
  *last_value = value;
  return true;
}

// ---- CampaignOutcome -------------------------------------------------

void CampaignOutcome::to_stats(StatSet& s) const {
  s.add("devices_simulated", devices_simulated);
  s.add("shards_total", shards_total);
  s.add("shards_done", shards_done);
  s.add("shards_degraded", shards_degraded);
  s.add("shards_retried", retries);
  s.add("workers_crashed", workers_crashed);
  s.add("workers_dirty", workers_dirty);
  s.add("workers_hung_killed", workers_hung_killed);
  s.add("workers_deadline_killed", workers_deadline_killed);
  s.add("due_events", due_events);
  s.add("ce_events", ce_events);
  s.set_gauge("coverage", coverage());
  s.set_gauge("energy_mj_per_day_sum", energy_mj_per_day_sum);
  s.set_gauge("due_per_year_p50", due_rate.quantile(0.50));
  s.set_gauge("due_per_year_p99", due_rate.quantile(0.99));
  s.set_gauge("due_per_year_p999", due_rate.quantile(0.999));
  s.set_gauge("energy_mj_per_day_p50", energy.quantile(0.50));
  s.set_gauge("energy_mj_per_day_p99", energy.quantile(0.99));
  s.set_gauge("energy_mj_per_day_p999", energy.quantile(0.999));
  Distribution due_dist;
  due_dist.count = due_rate.count();
  due_dist.sum = due_rate.sum();
  due_dist.min = due_rate.min();
  due_dist.max = due_rate.max();
  s.put_dist("due_per_year", due_dist);
  Distribution energy_dist;
  energy_dist.count = energy.count();
  energy_dist.sum = energy.sum();
  energy_dist.min = energy.min();
  energy_dist.max = energy.max();
  s.put_dist("energy_mj_per_day", energy_dist);
}

// ---- Orchestrator ----------------------------------------------------

struct Orchestrator::Running {
  pid_t pid = -1;
  std::uint64_t shard = 0;
  unsigned attempt = 0;
  double start_time = 0.0;
  double last_hb_time = 0.0;
  std::string last_hb_value;
};

struct Orchestrator::PendingShard {
  std::uint64_t shard = 0;
  unsigned attempt = 0;
  double not_before = 0.0;
};

Orchestrator::Orchestrator(FleetConfig cfg) : cfg_(std::move(cfg)) {}

// Out of line: the Running/PendingShard vectors need complete types.
Orchestrator::~Orchestrator() = default;

std::string Orchestrator::shard_file(std::uint64_t shard) const {
  return cfg_.state_dir + "/shard_" + fmt_u64(shard) + ".json";
}

std::string Orchestrator::heartbeat_file(std::uint64_t shard) const {
  return cfg_.state_dir + "/hb_" + fmt_u64(shard);
}

std::string Orchestrator::manifest_json() const {
  JsonWriter w(-1);
  w.begin_object();
  w.key("schema");
  w.value(kManifestSchema);
  w.key("ops");
  w.begin_object();
  w.key("retries");
  w.value(retries_);
  w.key("workers_crashed");
  w.value(crashed_);
  w.key("workers_dirty");
  w.value(dirty_);
  w.key("workers_hung_killed");
  w.value(hung_killed_);
  w.key("workers_deadline_killed");
  w.value(deadline_killed_);
  w.end_object();
  w.key("shards");
  w.begin_array();
  // done_ and degraded_ are emitted in shard order (map order; the
  // degraded list is kept sorted) so the manifest is deterministic for
  // a given campaign state.
  auto degraded = degraded_;
  std::sort(degraded.begin(), degraded.end());
  auto d_it = degraded.begin();
  for (const auto& [shard, result] : done_) {
    while (d_it != degraded.end() && *d_it < shard) {
      w.begin_object();
      w.key("shard");
      w.value(*d_it);
      w.key("state");
      w.value("degraded");
      w.key("attempts");
      w.value(attempts_.count(*d_it) ? attempts_.at(*d_it) : 0u);
      w.end_object();
      ++d_it;
    }
    w.begin_object();
    w.key("shard");
    w.value(shard);
    w.key("state");
    w.value("done");
    w.key("attempts");
    w.value(attempts_.count(shard) ? attempts_.at(shard) : 1u);
    w.key("digest");
    w.value(result.digest);
    w.end_object();
  }
  for (; d_it != degraded.end(); ++d_it) {
    w.begin_object();
    w.key("shard");
    w.value(*d_it);
    w.key("state");
    w.value("degraded");
    w.key("attempts");
    w.value(attempts_.count(*d_it) ? attempts_.at(*d_it) : 0u);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  // The fingerprint object is spliced in as the serializer produced it
  // so that resume can compare slices byte for byte.
  std::string doc = w.str();
  const std::string anchor = "\"ops\":";
  const std::size_t pos = doc.find(anchor);
  doc.insert(pos, "\"fingerprint\":" + fingerprint_json(cfg_) + ",");
  return doc;
}

bool Orchestrator::save_manifest() {
  return atomic_write_file(cfg_.state_dir + "/manifest.json",
                           manifest_json() + "\n", "fleet manifest");
}

bool Orchestrator::load_manifest(std::string* error) {
  const std::string path = cfg_.state_dir + "/manifest.json";
  std::string doc;
  if (!read_file(path, &doc)) {
    *error = "--resume: cannot read " + path;
    return false;
  }
  if (doc.find(std::string("\"schema\":\"") + kManifestSchema + "\"") ==
      std::string::npos) {
    *error = "--resume: " + path + " is not a " + kManifestSchema +
             " document";
    return false;
  }
  std::string fingerprint;
  if (!scan_slice(doc, "fingerprint", '{', &fingerprint) ||
      fingerprint != fingerprint_json(cfg_)) {
    *error =
        "--resume: campaign fingerprint mismatch (the checkpoint in " +
        cfg_.state_dir +
        " was produced by a different fleet config/seed/model); refusing "
        "to mix populations";
    return false;
  }
  std::string ops;
  if (scan_slice(doc, "ops", '{', &ops)) {
    (void)scan_u64(ops, "retries", &retries_);
    (void)scan_u64(ops, "workers_crashed", &crashed_);
    (void)scan_u64(ops, "workers_dirty", &dirty_);
    (void)scan_u64(ops, "workers_hung_killed", &hung_killed_);
    (void)scan_u64(ops, "workers_deadline_killed", &deadline_killed_);
  }
  std::string shards;
  if (!scan_slice(doc, "shards", '[', &shards)) {
    *error = "--resume: " + path + " has no shards array";
    return false;
  }
  std::size_t pos = 0;
  while ((pos = shards.find("{\"shard\":", pos)) != std::string::npos) {
    const std::string entry =
        shards.substr(pos, shards.find('}', pos) - pos + 1);
    pos += entry.size();
    std::uint64_t shard = 0;
    std::uint64_t attempts = 0;
    if (!scan_u64(entry, "shard", &shard)) continue;
    (void)scan_u64(entry, "attempts", &attempts);
    attempts_[shard] = static_cast<unsigned>(attempts);
    if (entry.find("\"state\":\"done\"") == std::string::npos) {
      // Degraded shards get a fresh retry budget on resume: the
      // campaign is being given another chance, so give its failed
      // shards one too.
      attempts_[shard] = 0;
      continue;
    }
    std::string shard_doc;
    ShardResult result;
    if (shard >= shard_count(cfg_) ||
        !read_file(shard_file(shard), &shard_doc) ||
        !parse_shard_result(shard_doc, &result) || result.shard != shard ||
        result.devices !=
            shard_end(cfg_, shard) - shard_begin(cfg_, shard)) {
      std::fprintf(stderr,
                   "[fleet] resume: shard %llu is marked done but its "
                   "result file is missing or corrupt; re-running it\n",
                   static_cast<unsigned long long>(shard));
      attempts_[shard] = 0;
      continue;
    }
    done_.emplace(shard, std::move(result));
  }
  return true;
}

bool Orchestrator::spawn_worker(const PendingShard& p, Running* out) {
  const std::string exe =
      cfg_.worker_exe.empty() ? self_exe_path() : cfg_.worker_exe;
  if (exe.empty()) return false;
  std::vector<std::string> args = {
      exe,
      "--fleet-worker",
      "--fleet-shard=" + fmt_u64(p.shard),
      "--fleet-attempt=" + fmt_u64(p.attempt),
      "--fleet-state-dir=" + cfg_.state_dir,
      "--fleet-devices=" + fmt_u64(cfg_.devices),
      "--fleet-devices-per-shard=" + fmt_u64(cfg_.devices_per_shard),
      "--fleet-seed=" + fmt_u64(cfg_.seed),
      "--fleet-lines-per-device=" + fmt_u64(cfg_.model.lines_per_device),
      "--fleet-horizon-days=" + fmt_double(cfg_.model.horizon_days),
      "--fleet-active-share=" + fmt_double(cfg_.model.mean_active_share),
      "--fleet-active-share-sigma=" +
          fmt_double(cfg_.model.active_share_sigma),
      "--fleet-burst-seconds=" + fmt_double(cfg_.model.burst_seconds),
      "--fleet-temp-min=" + fmt_double(cfg_.model.temp_min_c),
      "--fleet-temp-max=" + fmt_double(cfg_.model.temp_max_c),
      "--fleet-temp-ref=" + fmt_double(cfg_.model.temp_ref_c),
      "--fleet-refresh-s=" + fmt_double(cfg_.model.strong_refresh_s),
      "--fleet-heartbeat-interval-s=" +
          fmt_double(cfg_.heartbeat_interval_s),
  };
  if (!cfg_.selftest.empty()) {
    args.push_back("--fleet-selftest=" + cfg_.selftest);
  }
  if (cfg_.dashboard || !cfg_.telemetry_out.empty()) {
    args.push_back("--fleet-progress=1");
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (auto& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    ::execv(exe.c_str(), argv.data());
    // exec failed: nothing sane to do in the child but report and die
    // with the shell's "cannot execute" status.
    std::fprintf(stderr, "error: cannot exec fleet worker '%s': %s\n",
                 exe.c_str(), std::strerror(errno));
    ::_exit(127);
  }
  const double now = mono_s();
  out->pid = pid;
  out->shard = p.shard;
  out->attempt = p.attempt;
  out->start_time = now;
  out->last_hb_time = now;
  out->last_hb_value.clear();
  return true;
}

void Orchestrator::record_failure(std::uint64_t shard, unsigned attempt,
                                  const char* reason) {
  if (attempt < cfg_.max_retries) {
    ++retries_;
    const double delay = cfg_.backoff_base_s * std::ldexp(1.0, attempt);
    backoff_s_.push_back(delay);
    pending_.push_back({shard, attempt + 1, mono_s() + delay});
    std::fprintf(stderr,
                 "[fleet] shard %llu attempt %u failed (%s); retrying in "
                 "%.3f s\n",
                 static_cast<unsigned long long>(shard), attempt, reason,
                 delay);
  } else {
    attempts_[shard] = attempt + 1;
    degraded_.push_back(shard);
    std::fprintf(stderr,
                 "[fleet] shard %llu failed (%s) after %u attempts; marking "
                 "degraded — campaign continues with reduced coverage\n",
                 static_cast<unsigned long long>(shard), reason, attempt + 1);
    if (!save_manifest()) {
      std::fprintf(stderr, "[fleet] warning: manifest checkpoint failed\n");
    }
  }
}

void Orchestrator::fill_outcome(CampaignOutcome* out) const {
  out->shards_total = shards_;
  out->shards_done = done_.size();
  out->shards_degraded = degraded_.size();
  out->retries = retries_;
  out->workers_crashed = crashed_;
  out->workers_dirty = dirty_;
  out->workers_hung_killed = hung_killed_;
  out->workers_deadline_killed = deadline_killed_;
  out->backoff_s = backoff_s_;
  for (const auto& [shard, r] : done_) {
    out->devices_simulated += r.devices;
    out->due_events += r.due_events;
    out->ce_events += r.ce_events;
    out->energy_mj_per_day_sum += r.energy_mj_per_day_sum;
    out->due_rate.merge(r.due_rate);
    out->energy.merge(r.energy);
  }
}

void Orchestrator::finish_interrupted(int sig, CampaignOutcome* out) {
  for (const auto& r : running_) {
    ::kill(r.pid, SIGKILL);
    int status = 0;
    ::waitpid(r.pid, &status, 0);
  }
  running_.clear();
  (void)save_manifest();
  fill_outcome(out);
  out->completed = false;
  out->exit_code = 128 + sig;
  out->error = "interrupted by signal " + std::to_string(sig) +
               "; campaign state checkpointed for --resume";
}

CampaignOutcome Orchestrator::run() {
  CampaignOutcome out;
  auto fail = [&out](int code, std::string message) {
    out.completed = false;
    out.exit_code = code;
    out.error = std::move(message);
    return out;
  };
  if (cfg_.state_dir.empty()) {
    return fail(2, "fleet: --fleet-state-dir is required");
  }
  if (cfg_.devices == 0 || cfg_.devices_per_shard == 0) {
    return fail(2, "fleet: devices and devices-per-shard must be >= 1");
  }
  if (cfg_.jobs == 0) cfg_.jobs = 1;
  std::string selftest_error;
  if (!parse_selftest(cfg_.selftest, &selftest_, &selftest_error)) {
    return fail(2, "fleet: " + selftest_error);
  }
  shards_ = shard_count(cfg_);
  if (!mkdir_p(cfg_.state_dir)) {
    return fail(1, "fleet: cannot create state dir " + cfg_.state_dir);
  }
  if (cfg_.resume) {
    std::string error;
    if (!load_manifest(&error)) return fail(2, error);
    degraded_.clear();  // resumed campaigns retry degraded shards
  }
  if (!save_manifest()) {
    return fail(1, "fleet: cannot write the campaign manifest");
  }
  for (std::uint64_t s = 0; s < shards_; ++s) {
    if (done_.count(s)) continue;
    pending_.push_back({s, attempts_.count(s) ? attempts_[s] : 0u, 0.0});
  }

  // Live telemetry hub (docs/OBSERVABILITY.md): purely observational —
  // it tails the worker progress streams and writes its own feed file /
  // stderr dashboard, so checkpoints and the aggregate stay untouched.
  TelemetryHub hub(TelemetryHub::Config{cfg_.state_dir, cfg_.telemetry_out,
                                        cfg_.dashboard,
                                        cfg_.telemetry_interval_s,
                                        cfg_.devices, shards_});
  auto publish = [&](bool final_snapshot) {
    TelemetryHub::CompletedAggregate agg;
    agg.shards_done = done_.size();
    agg.shards_degraded = degraded_.size();
    QuantileSketch due_rate;
    QuantileSketch energy;
    for (const auto& [shard, r] : done_) {
      agg.devices_done += r.devices;
      agg.due_events += r.due_events;
      agg.ce_events += r.ce_events;
      agg.energy_mj_per_day_sum += r.energy_mj_per_day_sum;
      due_rate.merge(r.due_rate);
      energy.merge(r.energy);
    }
    agg.due_rate = &due_rate;
    agg.energy = &energy;
    agg.retries = retries_;
    agg.workers_crashed = crashed_;
    hub.publish(mono_s(), agg, running_.size(), pending_.size(),
                final_snapshot);
  };

  MECC_PROF_SCOPE("fleet", "supervise");
  while (done_.size() + degraded_.size() < shards_) {
    if (cfg_.interrupt != nullptr && *cfg_.interrupt != 0) {
      finish_interrupted(static_cast<int>(*cfg_.interrupt), &out);
      return out;
    }
    const double now = mono_s();
    // Spawn into free slots: lowest-numbered ready shard first, so the
    // schedule is a work-queue (idle slot pulls the next shard) and
    // backoff delays are honored.
    while (running_.size() < cfg_.jobs) {
      std::size_t best = pending_.size();
      for (std::size_t i = 0; i < pending_.size(); ++i) {
        if (pending_[i].not_before > now) continue;
        if (best == pending_.size() ||
            pending_[i].shard < pending_[best].shard) {
          best = i;
        }
      }
      if (best == pending_.size()) break;
      const PendingShard p = pending_[best];
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(best));
      Running r;
      if (!spawn_worker(p, &r)) {
        record_failure(p.shard, p.attempt, "spawn failed");
        continue;
      }
      running_.push_back(std::move(r));
    }
    // Reap finished workers and watchdog the live ones.
    for (std::size_t i = 0; i < running_.size();) {
      Running& r = running_[i];
      int status = 0;
      const pid_t got = ::waitpid(r.pid, &status, WNOHANG);
      if (got == 0) {
        // Still running: a worker is "hung" when its heartbeat stops
        // advancing, "slow" when the heartbeat still moves — only the
        // former is killed before the hard deadline.
        std::string hb;
        const bool ok = read_file(heartbeat_file(r.shard), &hb);
        if (heartbeat_advanced(ok, hb, &r.last_hb_value)) {
          r.last_hb_time = now;
        }
        const bool hung = now - r.last_hb_time > cfg_.heartbeat_timeout_s;
        const bool over_deadline =
            now - r.start_time > cfg_.shard_deadline_s;
        if (hung || over_deadline) {
          ::kill(r.pid, SIGKILL);
          int st = 0;
          ::waitpid(r.pid, &st, 0);
          if (hung) {
            ++hung_killed_;
          } else {
            ++deadline_killed_;
          }
          record_failure(r.shard, r.attempt,
                         hung ? "heartbeat stopped" : "deadline exceeded");
          hub.retire_shard(r.shard);
          running_.erase(running_.begin() +
                         static_cast<std::ptrdiff_t>(i));
          continue;
        }
        ++i;
        continue;
      }
      // Exited (or waitpid failed, which we treat as a lost worker).
      const std::uint64_t shard = r.shard;
      const unsigned attempt = r.attempt;
      // Pick up any progress records the worker appended right before
      // exiting, then drop its live partial: its contribution now comes
      // from done_/degraded accounting (the monotone clamp in the hub
      // keeps the published device count from stepping backwards).
      hub.poll_shard(shard);
      hub.retire_shard(shard);
      running_.erase(running_.begin() + static_cast<std::ptrdiff_t>(i));
      if (got < 0 || (WIFSIGNALED(status) != 0)) {
        ++crashed_;
        record_failure(shard, attempt, "worker killed by a signal");
        continue;
      }
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        ++dirty_;
        record_failure(shard, attempt, "worker exited nonzero");
        continue;
      }
      std::string doc;
      ShardResult result;
      if (!read_file(shard_file(shard), &doc) ||
          !parse_shard_result(doc, &result) || result.shard != shard ||
          result.devices != shard_end(cfg_, shard) - shard_begin(cfg_, shard)) {
        ++dirty_;
        record_failure(shard, attempt, "worker left no usable result");
        continue;
      }
      done_.emplace(shard, std::move(result));
      attempts_[shard] = attempt + 1;
      ::unlink(heartbeat_file(shard).c_str());
      if (!save_manifest()) {
        finish_interrupted(0, &out);
        out.exit_code = 1;
        out.error = "fleet: manifest checkpoint failed; aborting";
        return out;
      }
      ++completions_this_process_;
      if (selftest_.orch_exit_after != 0 &&
          completions_this_process_ == selftest_.orch_exit_after) {
        // Simulated kill -9 of the whole orchestrator process group:
        // no cleanup, no flush, no aggregate — the next run must
        // reconstruct everything from the durable checkpoint alone.
        for (const auto& live : running_) ::kill(live.pid, SIGKILL);
        std::_Exit(137);
      }
    }
    if (hub.enabled()) {
      for (const auto& live : running_) hub.poll_shard(live.shard);
      if (hub.due(mono_s())) publish(false);
    }
    sleep_s(0.002);
  }
  publish(true);

  fill_outcome(&out);
  out.completed = true;
  out.exit_code = 0;
  if (!save_manifest()) {
    out.exit_code = 1;
    out.error = "fleet: final manifest write failed";
  }
  return out;
}

std::string Orchestrator::aggregate_jsonl() const {
  std::string doc;
  {
    JsonWriter w(-1);
    w.begin_object();
    w.key("schema");
    w.value(kAggregateSchema);
    w.key("devices");
    w.value(cfg_.devices);
    w.key("devices_per_shard");
    w.value(cfg_.devices_per_shard);
    w.key("shards");
    w.value(shards_);
    w.key("seed");
    w.value(cfg_.seed);
    w.key("model");
    w.begin_object();
    w.key("lines_per_device");
    w.value(cfg_.model.lines_per_device);
    w.key("horizon_days");
    w.value(cfg_.model.horizon_days);
    w.key("mean_active_share");
    w.value(cfg_.model.mean_active_share);
    w.key("active_share_sigma");
    w.value(cfg_.model.active_share_sigma);
    w.key("burst_seconds");
    w.value(cfg_.model.burst_seconds);
    w.key("temp_min_c");
    w.value(cfg_.model.temp_min_c);
    w.key("temp_max_c");
    w.value(cfg_.model.temp_max_c);
    w.key("temp_ref_c");
    w.value(cfg_.model.temp_ref_c);
    w.key("strong_refresh_s");
    w.value(cfg_.model.strong_refresh_s);
    w.end_object();
    w.end_object();
    doc += w.str();
    doc += '\n';
  }
  CampaignOutcome merged;
  fill_outcome(&merged);
  for (std::uint64_t s = 0; s < shards_; ++s) {
    JsonWriter w(-1);
    w.begin_object();
    w.key("shard");
    w.value(s);
    const auto it = done_.find(s);
    if (it == done_.end()) {
      w.key("degraded");
      w.value(true);
    } else {
      const ShardResult& r = it->second;
      w.key("devices");
      w.value(r.devices);
      w.key("due_events");
      w.value(r.due_events);
      w.key("ce_events");
      w.value(r.ce_events);
      w.key("energy_mj_per_day_sum");
      w.value(r.energy_mj_per_day_sum);
      w.key("digest");
      w.value(r.digest);
    }
    w.end_object();
    doc += w.str();
    doc += '\n';
  }
  {
    JsonWriter w(-1);
    w.begin_object();
    w.key("fleet");
    w.begin_object();
    w.key("devices_simulated");
    w.value(merged.devices_simulated);
    w.key("coverage");
    w.value(merged.coverage());
    w.key("shards_degraded");
    w.value(merged.shards_degraded);
    w.key("due_events");
    w.value(merged.due_events);
    w.key("ce_events");
    w.value(merged.ce_events);
    w.key("energy_mj_per_day_sum");
    w.value(merged.energy_mj_per_day_sum);
    w.key("due_per_year_mean");
    w.value(merged.due_rate.mean());
    w.key("due_per_year_p50");
    w.value(merged.due_rate.quantile(0.50));
    w.key("due_per_year_p99");
    w.value(merged.due_rate.quantile(0.99));
    w.key("due_per_year_p999");
    w.value(merged.due_rate.quantile(0.999));
    w.key("due_per_year_max");
    w.value(merged.due_rate.max());
    w.key("energy_mj_per_day_mean");
    w.value(merged.energy.mean());
    w.key("energy_mj_per_day_p50");
    w.value(merged.energy.quantile(0.50));
    w.key("energy_mj_per_day_p99");
    w.value(merged.energy.quantile(0.99));
    w.key("energy_mj_per_day_p999");
    w.value(merged.energy.quantile(0.999));
    w.key("energy_mj_per_day_max");
    w.value(merged.energy.max());
    w.end_object();
    w.end_object();
    doc += w.str();
    doc += '\n';
  }
  return doc;
}

bool Orchestrator::write_aggregate(const std::string& path) const {
  return atomic_write_file(path, aggregate_jsonl(), "fleet aggregate");
}

// ---- worker process entry -------------------------------------------

bool is_fleet_worker_invocation(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fleet-worker") == 0) return true;
  }
  return false;
}

int worker_main(int argc, char** argv) {
  FleetConfig cfg;
  std::uint64_t shard = ~0ull;
  std::uint64_t attempt = 0;
  bool emit_progress = false;
  auto usage_error = [](const char* arg) {
    std::fprintf(stderr, "error: bad fleet worker argument '%s'\n", arg);
    return 2;
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* v = nullptr;
    if (std::strcmp(arg, "--fleet-worker") == 0) {
      continue;
    } else if (eat_prefix(arg, "--fleet-shard=", &v)) {
      if (!parse_u64_arg(v, &shard)) return usage_error(arg);
    } else if (eat_prefix(arg, "--fleet-attempt=", &v)) {
      if (!parse_u64_arg(v, &attempt)) return usage_error(arg);
    } else if (eat_prefix(arg, "--fleet-state-dir=", &v)) {
      cfg.state_dir = v;
    } else if (eat_prefix(arg, "--fleet-devices=", &v)) {
      if (!parse_u64_arg(v, &cfg.devices)) return usage_error(arg);
    } else if (eat_prefix(arg, "--fleet-devices-per-shard=", &v)) {
      if (!parse_u64_arg(v, &cfg.devices_per_shard)) return usage_error(arg);
    } else if (eat_prefix(arg, "--fleet-seed=", &v)) {
      if (!parse_u64_arg(v, &cfg.seed)) return usage_error(arg);
    } else if (eat_prefix(arg, "--fleet-lines-per-device=", &v)) {
      if (!parse_u64_arg(v, &cfg.model.lines_per_device)) {
        return usage_error(arg);
      }
    } else if (eat_prefix(arg, "--fleet-horizon-days=", &v)) {
      if (!parse_double_arg(v, &cfg.model.horizon_days)) {
        return usage_error(arg);
      }
    } else if (eat_prefix(arg, "--fleet-active-share=", &v)) {
      if (!parse_double_arg(v, &cfg.model.mean_active_share)) {
        return usage_error(arg);
      }
    } else if (eat_prefix(arg, "--fleet-active-share-sigma=", &v)) {
      if (!parse_double_arg(v, &cfg.model.active_share_sigma)) {
        return usage_error(arg);
      }
    } else if (eat_prefix(arg, "--fleet-burst-seconds=", &v)) {
      if (!parse_double_arg(v, &cfg.model.burst_seconds)) {
        return usage_error(arg);
      }
    } else if (eat_prefix(arg, "--fleet-temp-min=", &v)) {
      if (!parse_double_arg(v, &cfg.model.temp_min_c)) return usage_error(arg);
    } else if (eat_prefix(arg, "--fleet-temp-max=", &v)) {
      if (!parse_double_arg(v, &cfg.model.temp_max_c)) return usage_error(arg);
    } else if (eat_prefix(arg, "--fleet-temp-ref=", &v)) {
      if (!parse_double_arg(v, &cfg.model.temp_ref_c)) return usage_error(arg);
    } else if (eat_prefix(arg, "--fleet-refresh-s=", &v)) {
      if (!parse_double_arg(v, &cfg.model.strong_refresh_s)) {
        return usage_error(arg);
      }
    } else if (eat_prefix(arg, "--fleet-heartbeat-interval-s=", &v)) {
      if (!parse_double_arg(v, &cfg.heartbeat_interval_s)) {
        return usage_error(arg);
      }
    } else if (eat_prefix(arg, "--fleet-progress=", &v)) {
      std::uint64_t flag = 0;
      if (!parse_u64_arg(v, &flag)) return usage_error(arg);
      emit_progress = flag != 0;
    } else if (eat_prefix(arg, "--fleet-selftest=", &v)) {
      cfg.selftest = v;
    } else if (eat_prefix(arg, "--fleet-", &v)) {
      return usage_error(arg);  // unknown --fleet-* flag: refuse loudly
    }
    // Non --fleet-* arguments are ignored: the hosting binary may have
    // its own flags on the command line.
  }
  if (shard == ~0ull || cfg.state_dir.empty() ||
      shard >= shard_count(cfg)) {
    std::fprintf(stderr,
                 "error: fleet worker needs --fleet-shard and "
                 "--fleet-state-dir within a valid campaign\n");
    return 2;
  }
  SelftestSpec selftest;
  std::string selftest_error;
  if (!parse_selftest(cfg.selftest, &selftest, &selftest_error)) {
    std::fprintf(stderr, "error: %s\n", selftest_error.c_str());
    return 2;
  }

  const std::string hb_path = cfg.state_dir + "/hb_" + fmt_u64(shard);
  std::uint64_t hb_counter = 0;
  auto heartbeat = [&] {
    ++hb_counter;
    (void)write_file(hb_path, fmt_u64(hb_counter));
  };
  heartbeat();

  // Failure injection (docs/FLEET.md). Injected behaviors never touch
  // the shard computation itself, so any attempt that completes writes
  // the same bytes.
  if (const auto it = selftest.crash.find(shard);
      it != selftest.crash.end() && attempt < it->second) {
    (void)::raise(SIGKILL);  // simulated kill -9 of this worker
  }
  if (const auto it = selftest.dirty.find(shard);
      it != selftest.dirty.end() && attempt < it->second) {
    return 3;
  }
  if (const auto it = selftest.hang.find(shard);
      it != selftest.hang.end() && attempt < it->second) {
    for (;;) sleep_s(3600.0);  // heartbeat never advances again
  }
  if (const auto it = selftest.slow_ms.find(shard);
      it != selftest.slow_ms.end()) {
    // Slow but alive: keep heartbeating through the sleep; the
    // watchdog must NOT kill this worker before the hard deadline.
    double remaining = static_cast<double>(it->second) * 1e-3;
    while (remaining > 0.0) {
      const double slice = std::min(remaining, cfg.heartbeat_interval_s);
      sleep_s(slice);
      remaining -= slice;
      heartbeat();
    }
  }

  // Telemetry progress stream (docs/OBSERVABILITY.md): one record at
  // heartbeat cadence plus a final `done` record, each a single
  // append_file() so the orchestrator's tailer never sees a torn line.
  const std::uint64_t devices_in_shard =
      shard_end(cfg, shard) - shard_begin(cfg, shard);
  auto emit = [&](const ShardResult& partial, std::uint64_t devices_done,
                  bool done) {
    if (!emit_progress) return;
    ShardProgress p;
    p.shard = shard;
    p.attempt = attempt;
    p.devices_total = devices_in_shard;
    p.devices_done = devices_done;
    p.done = done;
    p.due_events = partial.due_events;
    p.ce_events = partial.ce_events;
    p.energy_mj_per_day_sum = partial.energy_mj_per_day_sum;
    p.due_rate = partial.due_rate;
    p.energy = partial.energy;
    (void)append_file(progress_file(cfg.state_dir, shard),
                      progress_record_json(p) + "\n");
  };

  double last_hb = mono_s();
  const ShardResult result =
      run_shard(cfg, shard, [&](std::uint64_t devices_done,
                                const ShardResult& partial) {
        const double now = mono_s();
        if (now - last_hb >= cfg.heartbeat_interval_s) {
          last_hb = now;
          heartbeat();
          emit(partial, devices_done, false);
        }
      });
  const std::string path =
      cfg.state_dir + "/shard_" + fmt_u64(shard) + ".json";
  if (!atomic_write_file(path, shard_result_json(result) + "\n",
                         "fleet shard result")) {
    return 1;
  }
  emit(result, devices_in_shard, true);
  return 0;
}

}  // namespace mecc::sim::fleet
