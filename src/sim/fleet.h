// Fleet-scale Monte-Carlo campaign orchestrator (ROADMAP item 2,
// docs/FLEET.md): turns the per-device reliability/energy numbers into
// population-level claims ("P99.9 device exceeds X DUEs/year") by
// sampling a device fleet — per-device workload mix (Table III class
// shares), Fig. 1 active/idle duty cycle, temperature/retention
// variation, BER — and sharding the device list across supervised
// worker *processes*.
//
// This extends the sim/thread_pool.h work model one level up: where the
// ThreadPool shards independent System runs across threads in one
// process, the fleet Orchestrator shards independent device ranges
// across child processes sharing one ready-queue (idle worker slots
// pull the next pending shard; retried shards re-enter the queue with
// exponential backoff), and supervises them: per-shard deadline
// timeouts with SIGKILL, a heartbeat watchdog that distinguishes hung
// workers from merely slow ones, crash/nonzero-exit detection with
// bounded retries, and — when a shard exhausts its retry budget —
// graceful degradation (the campaign completes with an explicit
// coverage stat instead of dying).
//
// Crash safety: campaign state (completed shard ids + per-shard result
// digests + supervision counters) is checkpointed to state_dir via
// write-temp + fsync + atomic-rename (common/fsio.h) on every shard
// completion, and every per-device draw comes from a counter-based RNG
// substream keyed by (seed, device id) — independent of shard
// assignment, retry count, or scheduling — so a campaign resumed after
// a kill -9 of any worker or of the orchestrator itself emits an
// aggregate JSONL byte-identical to an uninterrupted run.
#pragma once

#include <csignal>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"
#include "trace/benchmarks.h"

namespace mecc::sim::fleet {

/// Counter-based RNG: a stateless splitmix64-style mix of
/// (seed, stream, counter). Device i draws from stream i, so its values
/// depend only on (seed, i, counter) — never on which shard or worker
/// process evaluates it, which is the property the byte-identical
/// resume contract rests on.
class CounterRng {
 public:
  CounterRng(std::uint64_t seed, std::uint64_t stream);

  [[nodiscard]] std::uint64_t bits(std::uint64_t counter) const;
  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform(std::uint64_t counter) const;
  /// Standard normal via Box-Muller over counters (counter, counter+1).
  [[nodiscard]] double normal(std::uint64_t counter) const;
  /// Poisson(lambda) sample. Consumes a variable number of counters
  /// starting at `counter`; each device owns its whole stream, so
  /// counter-space collisions across devices cannot happen.
  [[nodiscard]] std::uint64_t poisson(double lambda,
                                      std::uint64_t counter) const;

 private:
  std::uint64_t key_;
};

/// Population-model knobs. Part of the checkpoint fingerprint: a resume
/// with any of these changed is rejected rather than silently mixing
/// two different populations in one aggregate.
struct FleetModel {
  /// Sampled-set lines per device the DUE/CE math is scaled by
  /// (a full device is kMemoryLines; sampling keeps shards cheap).
  std::uint64_t lines_per_device = 1u << 20;
  /// Campaign horizon the event draws cover.
  double horizon_days = 365.0;
  /// Mean Fig. 1 active duty cycle (paper S V-D: 95% idle).
  double mean_active_share = 0.05;
  /// Lognormal sigma of the per-device duty-cycle draw.
  double active_share_sigma = 0.35;
  /// Mean active-burst length (Fig. 1: ~2 min bursts); sets how many
  /// idle->active wake-ups (and thus wake-up read sweeps) a day holds.
  double burst_seconds = 120.0;
  /// Device temperature range, uniform across the fleet.
  double temp_min_c = 25.0;
  double temp_max_c = 55.0;
  /// Retention halves per +10 C above this reference temperature.
  double temp_ref_c = 45.0;
  /// MECC strong-mode idle self-refresh period (paper: 1 s).
  double strong_refresh_s = 1.0;
};

/// Worker self-test failure injection (docs/FLEET.md), parsed from a
/// comma-separated spec: "crash@S:N" (shard S kills itself with SIGKILL
/// on attempts < N), "dirty@S:N" (exits 3), "hang@S:N" (stops
/// heartbeating forever), "slow@S:MS" (sleeps MS milliseconds while
/// heartbeating — must NOT be killed before the deadline), and
/// "orch-exit@K" (the orchestrator hard-exits — _exit(137), no cleanup,
/// simulating kill -9 — right after its K-th shard completion in this
/// process). Injection never touches shard *results*, only process
/// behavior, so retried/resumed campaigns stay byte-identical.
struct SelftestSpec {
  std::map<std::uint64_t, unsigned> crash;  // shard -> attempts affected
  std::map<std::uint64_t, unsigned> dirty;
  std::map<std::uint64_t, unsigned> hang;
  std::map<std::uint64_t, unsigned> slow_ms;  // shard -> sleep millis
  std::uint64_t orch_exit_after = 0;          // 0 = off
};

/// Parses the selftest spec; returns false with *error on a malformed
/// entry. An empty spec parses to the all-off default.
[[nodiscard]] bool parse_selftest(const std::string& spec, SelftestSpec* out,
                                  std::string* error);

struct FleetConfig {
  std::uint64_t devices = 100'000;
  std::uint64_t devices_per_shard = 10'000;
  std::uint64_t seed = 1;
  FleetModel model{};

  // ---- orchestration-only knobs (not fingerprinted; a resume may
  // change them without affecting the aggregate) ----
  unsigned jobs = 2;             // concurrent worker processes
  unsigned max_retries = 2;      // R: re-queue budget per shard
  double shard_deadline_s = 300.0;     // hard per-attempt wall limit
  double heartbeat_timeout_s = 30.0;   // hung-worker detection
  double heartbeat_interval_s = 1.0;   // worker heartbeat cadence
  double backoff_base_s = 0.05;        // retry delay = base * 2^attempt
  std::string state_dir;         // checkpoint directory (required)
  std::string worker_exe;        // "" = /proc/self/exe
  std::string selftest;          // failure-injection spec ("" = off)
  bool resume = false;           // require an existing manifest
  /// Live telemetry (docs/OBSERVABILITY.md): strictly host-side — the
  /// dashboard draws to stderr and the feed is its own JSONL file, so
  /// neither can perturb the checkpoint or the aggregate bytes.
  bool dashboard = false;           // in-terminal rolling dashboard
  std::string telemetry_out;        // "" = no mecc-telemetry-v1 feed
  double telemetry_interval_s = 0.5;  // min seconds between snapshots
  /// When set, the orchestrator polls this flag (a signal handler's
  /// sig_atomic_t) between supervision steps: nonzero -> kill workers,
  /// checkpoint, and return with exit_code = 128 + value.
  const volatile std::sig_atomic_t* interrupt = nullptr;
};

/// ceil(devices / devices_per_shard).
[[nodiscard]] std::uint64_t shard_count(const FleetConfig& cfg);

/// One sampled device: everything the per-device simulation depends on.
struct DeviceSample {
  std::uint64_t device = 0;
  trace::MpkiClass klass = trace::MpkiClass::kLow;  // workload mix
  double active_share = 0.05;    // Fig. 1 duty cycle
  double wakeups_per_day = 36.0; // idle->active transitions (wake sweeps)
  double temperature_c = 45.0;
  double ber = 0.0;              // raw BER at the strong idle refresh
};

[[nodiscard]] DeviceSample sample_device(const FleetConfig& cfg,
                                         std::uint64_t device);

/// Per-device Monte-Carlo outcome over the campaign horizon.
struct DeviceResult {
  double energy_mj_per_day = 0.0;
  double due_per_year = 0.0;     // expected DUEs/year (analytic rate)
  std::uint64_t due_events = 0;  // sampled events over horizon_days
  std::uint64_t ce_events = 0;
};

[[nodiscard]] DeviceResult simulate_device(const FleetConfig& cfg,
                                           const DeviceSample& sample);

/// Aggregate of one shard's device range. digest is an FNV-1a hash over
/// every per-device outcome, so two evaluations of the same shard can
/// be compared cheaply and a resumed campaign can verify checkpointed
/// results came from the same (config, shard).
struct ShardResult {
  std::uint64_t shard = 0;
  std::uint64_t devices = 0;
  std::uint64_t due_events = 0;
  std::uint64_t ce_events = 0;
  double energy_mj_per_day_sum = 0.0;
  QuantileSketch due_rate;  // per-device expected DUEs/year
  QuantileSketch energy;    // per-device energy mJ/day
  std::uint64_t digest = 0;
};

/// Computes shard `shard` in-process. `progress` (may be empty) is
/// invoked every few hundred devices with the device count completed so
/// far and the shard's running partial aggregate — the worker's
/// heartbeat and telemetry-stream hook.
[[nodiscard]] ShardResult run_shard(
    const FleetConfig& cfg, std::uint64_t shard,
    const std::function<void(std::uint64_t devices_done,
                             const ShardResult& partial)>& progress = {});

/// Single-line compact JSON for a shard result / its exact inverse.
/// parse_shard_result accepts exactly the serializer's output; anything
/// else returns false and the orchestrator simply re-runs the shard.
[[nodiscard]] std::string shard_result_json(const ShardResult& r);
[[nodiscard]] bool parse_shard_result(const std::string& doc, ShardResult* r);

/// Heartbeat-reader hardening (docs/FLEET.md): workers rewrite their
/// heartbeat file with a plain truncate-write, so the supervisor can
/// race it and read an empty or partially written value. Returns true
/// (and updates *last_value) only on a successful, non-empty read that
/// differs from the previous value — a failed/empty/truncated read is
/// "no change", never progress, so a worker cannot dodge the hung
/// watchdog by being observed mid-write.
[[nodiscard]] bool heartbeat_advanced(bool read_ok, const std::string& value,
                                      std::string* last_value);

/// Everything the supervision run produced. Split in two: the
/// *population aggregate* (deterministic, lands in the aggregate JSONL)
/// and the *supervision/ops counters* (wall-clock dependent — retries,
/// kills, backoff — reported via fleet.* stats but never part of the
/// byte-compared aggregate).
struct CampaignOutcome {
  bool completed = false;  // every shard reached done or degraded
  int exit_code = 0;       // 0 done; 128+sig interrupted; 1/2 errors
  std::string error;       // non-empty on config/manifest errors

  // Population aggregate (shard-order merge of completed shards).
  std::uint64_t shards_total = 0;
  std::uint64_t shards_done = 0;
  std::uint64_t shards_degraded = 0;
  std::uint64_t devices_simulated = 0;
  std::uint64_t due_events = 0;
  std::uint64_t ce_events = 0;
  double energy_mj_per_day_sum = 0.0;
  QuantileSketch due_rate;
  QuantileSketch energy;

  // Supervision/ops (cumulative across resumes via the manifest).
  std::uint64_t retries = 0;          // re-queues after any failure
  std::uint64_t workers_crashed = 0;  // killed by a signal
  std::uint64_t workers_dirty = 0;    // nonzero exit status
  std::uint64_t workers_hung_killed = 0;      // heartbeat watchdog
  std::uint64_t workers_deadline_killed = 0;  // hard deadline
  std::vector<double> backoff_s;  // scheduled retry delays, issue order

  [[nodiscard]] double coverage() const {
    return shards_total == 0
               ? 0.0
               : static_cast<double>(shards_done) /
                     static_cast<double>(shards_total);
  }
  /// Fills the `fleet` stats component (register via
  /// StatRegistry::register_component("fleet", ...) or merge directly).
  void to_stats(StatSet& s) const;
};

/// The campaign driver. Construct with a validated config, call run().
class Orchestrator {
 public:
  explicit Orchestrator(FleetConfig cfg);
  ~Orchestrator();  // out of line: members hold nested incomplete types
  Orchestrator(const Orchestrator&) = delete;
  Orchestrator& operator=(const Orchestrator&) = delete;

  /// Runs (or resumes) the campaign to completion, interruption, or
  /// error. Safe to call once per instance.
  [[nodiscard]] CampaignOutcome run();

  /// The aggregate JSONL document for the finished campaign: header
  /// line, one line per shard in shard-id order, fleet footer line.
  /// Byte-identical for equal (fingerprinted config, completed-shard
  /// results) regardless of --jobs, retries, or interruptions.
  [[nodiscard]] std::string aggregate_jsonl() const;

  /// Durably writes aggregate_jsonl() to `path` ("-" = stdout).
  [[nodiscard]] bool write_aggregate(const std::string& path) const;

 private:
  struct Running;
  struct PendingShard;

  [[nodiscard]] bool load_manifest(std::string* error);
  [[nodiscard]] bool save_manifest();
  [[nodiscard]] std::string manifest_json() const;
  [[nodiscard]] std::string shard_file(std::uint64_t shard) const;
  [[nodiscard]] std::string heartbeat_file(std::uint64_t shard) const;
  [[nodiscard]] bool spawn_worker(const PendingShard& p, Running* out);
  void record_failure(std::uint64_t shard, unsigned attempt,
                      const char* reason);
  void finish_interrupted(int sig, CampaignOutcome* out);
  void fill_outcome(CampaignOutcome* out) const;

  FleetConfig cfg_;
  SelftestSpec selftest_;
  std::uint64_t shards_ = 0;

  // Campaign state (mirrors the manifest).
  std::map<std::uint64_t, ShardResult> done_;
  std::map<std::uint64_t, unsigned> attempts_;  // per-shard attempts used
  std::vector<std::uint64_t> degraded_;
  std::uint64_t retries_ = 0;
  std::uint64_t crashed_ = 0;
  std::uint64_t dirty_ = 0;
  std::uint64_t hung_killed_ = 0;
  std::uint64_t deadline_killed_ = 0;
  std::vector<double> backoff_s_;

  std::vector<PendingShard> pending_;
  std::vector<Running> running_;
  std::uint64_t completions_this_process_ = 0;
};

/// True when argv contains --fleet-worker: the process was spawned by
/// an Orchestrator (or a test) to compute exactly one shard.
[[nodiscard]] bool is_fleet_worker_invocation(int argc, char** argv);

/// Worker-process entry point: parses the --fleet-* argv the
/// orchestrator passed, applies any selftest injection, computes the
/// shard (heartbeating throughout), durably writes the result file, and
/// returns the process exit code. Binaries that can host fleet workers
/// (bench_fleet_campaign, test_fleet_orchestrator) call this from
/// main() before anything else when is_fleet_worker_invocation().
[[nodiscard]] int worker_main(int argc, char** argv);

}  // namespace mecc::sim::fleet
