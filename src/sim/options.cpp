#include "sim/options.h"

#include <cstdlib>
#include <string>

#include "sim/thread_pool.h"

namespace mecc::sim {

namespace {

[[nodiscard]] bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  out = v;
  return true;
}

}  // namespace

SimOptions parse_options(int argc, char** argv,
                         InstCount default_instructions) {
  SimOptions opts;
  opts.instructions = default_instructions;
  opts.jobs = ThreadPool::default_thread_count();

  if (const char* env = std::getenv("MECC_INSTRUCTIONS")) {
    std::uint64_t v = 0;
    if (parse_u64(env, v) && v > 0) opts.instructions = v;
  }
  if (const char* env = std::getenv("MECC_SEED")) {
    std::uint64_t v = 0;
    if (parse_u64(env, v)) opts.seed = v;
  }
  if (const char* env = std::getenv("MECC_JOBS")) {
    std::uint64_t v = 0;
    if (parse_u64(env, v) && v > 0) opts.jobs = static_cast<unsigned>(v);
  }
  if (const char* env = std::getenv("MECC_OUT")) {
    opts.out = env;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string inst_prefix = "--instructions=";
    const std::string seed_prefix = "--seed=";
    const std::string jobs_prefix = "--jobs=";
    const std::string out_prefix = "--out=";
    std::uint64_t v = 0;
    if (arg.rfind(inst_prefix, 0) == 0 &&
        parse_u64(arg.substr(inst_prefix.size()), v) && v > 0) {
      opts.instructions = v;
    } else if (arg.rfind(seed_prefix, 0) == 0 &&
               parse_u64(arg.substr(seed_prefix.size()), v)) {
      opts.seed = v;
    } else if (arg.rfind(jobs_prefix, 0) == 0 &&
               parse_u64(arg.substr(jobs_prefix.size()), v) && v > 0) {
      opts.jobs = static_cast<unsigned>(v);
    } else if (arg.rfind(out_prefix, 0) == 0) {
      opts.out = arg.substr(out_prefix.size());
    }
  }
  return opts;
}

}  // namespace mecc::sim
