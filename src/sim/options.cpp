#include "sim/options.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "sim/system.h"
#include "sim/thread_pool.h"
#include "trace/benchmarks.h"

namespace mecc::sim {

namespace {

[[nodiscard]] bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
  // strtoull silently wraps an explicit minus sign; reject it.
  if (s.front() == '-') return false;
  out = v;
  return true;
}

[[nodiscard]] bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
  out = v;
  return true;
}

/// One recognized numeric knob, applied identically to the flag and the
/// environment spelling. Returns false with `*error` set on a malformed
/// or out-of-range value.
struct Setter {
  const char* what;  // e.g. "--jobs / MECC_JOBS"
  bool (*apply)(const std::string& value, SimOptions& opts);
  const char* constraint;  // e.g. "a positive integer"
};

[[nodiscard]] bool apply_or_error(const Setter& setter,
                                  const std::string& value, SimOptions& opts,
                                  std::string* error) {
  if (setter.apply(value, opts)) return true;
  if (error) {
    *error = std::string("invalid value '") + value + "' for " + setter.what +
             ": expected " + setter.constraint;
  }
  return false;
}

constexpr Setter kInstructions{
    "--instructions / MECC_INSTRUCTIONS",
    [](const std::string& v, SimOptions& o) {
      std::uint64_t x = 0;
      if (!parse_u64(v, x) || x == 0) return false;
      o.instructions = x;
      return true;
    },
    "a positive integer"};

constexpr Setter kSeed{"--seed / MECC_SEED",
                       [](const std::string& v, SimOptions& o) {
                         std::uint64_t x = 0;
                         if (!parse_u64(v, x)) return false;
                         o.seed = x;
                         return true;
                       },
                       "an unsigned integer"};

constexpr Setter kJobs{
    "--jobs / MECC_JOBS",
    [](const std::string& v, SimOptions& o) {
      std::uint64_t x = 0;
      if (!parse_u64(v, x) || x == 0 ||
          x > std::numeric_limits<unsigned>::max()) {
        return false;
      }
      o.jobs = static_cast<unsigned>(x);
      return true;
    },
    "a positive integer"};

constexpr Setter kBer{"--ber / MECC_BER",
                      [](const std::string& v, SimOptions& o) {
                        double x = 0.0;
                        if (!parse_double(v, x) || !(x >= 0.0) || x > 1.0) {
                          return false;
                        }
                        o.ber = x;
                        return true;
                      },
                      "a bit error rate in [0, 1]"};

constexpr Setter kFastForward{
    "--fast-forward / MECC_FAST_FORWARD",
    [](const std::string& v, SimOptions& o) {
      if (v == "on" || v == "1" || v == "true") {
        o.fast_forward = true;
        return true;
      }
      if (v == "off" || v == "0" || v == "false") {
        o.fast_forward = false;
        return true;
      }
      return false;
    },
    "on|off (also 1|0, true|false)"};

constexpr Setter kRefreshPolicy{
    "--refresh-policy / MECC_REFRESH_POLICY",
    [](const std::string& v, SimOptions& o) {
      if (v == "strict") {
        o.refresh_policy = RefreshPolicyOption::kStrict;
      } else if (v == "elastic") {
        o.refresh_policy = RefreshPolicyOption::kElastic;
      } else if (v == "darp") {
        o.refresh_policy = RefreshPolicyOption::kDarp;
      } else if (v == "darp-sarp") {
        o.refresh_policy = RefreshPolicyOption::kDarpSarp;
      } else {
        return false;
      }
      return true;
    },
    "strict|elastic|darp|darp-sarp"};

constexpr Setter kRefreshGranularity{
    "--refresh-granularity / MECC_REFRESH_GRANULARITY",
    [](const std::string& v, SimOptions& o) {
      if (v == "all-bank") {
        o.refresh_granularity = RefreshGranularityOption::kAllBank;
      } else if (v == "per-bank") {
        o.refresh_granularity = RefreshGranularityOption::kPerBank;
      } else {
        return false;
      }
      return true;
    },
    "all-bank|per-bank"};

constexpr Setter kChannels{
    "--channels / MECC_CHANNELS",
    [](const std::string& v, SimOptions& o) {
      std::uint64_t x = 0;
      if (!parse_u64(v, x) || x == 0 || x > 64) return false;
      o.channels = static_cast<std::uint32_t>(x);
      return true;
    },
    "a channel count in [1, 64]"};

constexpr Setter kRanks{"--ranks / MECC_RANKS",
                        [](const std::string& v, SimOptions& o) {
                          std::uint64_t x = 0;
                          if (!parse_u64(v, x) || x == 0 || x > 8) {
                            return false;
                          }
                          o.ranks = static_cast<std::uint32_t>(x);
                          return true;
                        },
                        "a rank count in [1, 8]"};

constexpr Setter kInterleave{
    "--interleave / MECC_INTERLEAVE",
    [](const std::string& v, SimOptions& o) {
      return memctrl::parse_interleave(v, &o.interleave);
    },
    "line|row|bank-xor"};

constexpr Setter kStreams{"--streams / MECC_STREAMS",
                          [](const std::string& v, SimOptions& o) {
                            std::uint64_t x = 0;
                            if (!parse_u64(v, x) || x == 0 || x > 64) {
                              return false;
                            }
                            o.streams = static_cast<std::uint32_t>(x);
                            return true;
                          },
                          "a stream count in [1, 64]"};

constexpr Setter kChannelParallel{
    "--channel-parallel / MECC_CHANNEL_PARALLEL",
    [](const std::string& v, SimOptions& o) {
      std::uint64_t x = 0;
      if (!parse_u64(v, x) || x > 1024) return false;
      o.channel_parallel = static_cast<unsigned>(x);
      return true;
    },
    "a thread count in [0, 1024] (0 = serial)"};

constexpr Setter kOut{"--out / MECC_OUT",
                      [](const std::string& v, SimOptions& o) {
                        if (v.empty()) return false;
                        o.out = v;
                        return true;
                      },
                      "a file path (or '-' for stdout)"};

constexpr Setter kPerfOut{"--perf-out / MECC_PERF_OUT",
                          [](const std::string& v, SimOptions& o) {
                            if (v.empty()) return false;
                            o.perf_out = v;
                            return true;
                          },
                          "a file path"};

constexpr Setter kTrace{"--trace / MECC_TRACE",
                        [](const std::string& v, SimOptions& o) {
                          if (v.empty()) return false;
                          o.trace = v;
                          return true;
                        },
                        "a file path (or '-' for stdout)"};

constexpr Setter kTraceCategories{
    "--trace-categories / MECC_TRACE_CATEGORIES",
    [](const std::string& v, SimOptions& o) {
      if (!tracing::parse_categories(v).has_value()) return false;
      o.trace_categories = v;
      return true;
    },
    "a comma-separated category list "
    "(dram,bank,power,refresh,queue,morph,smd,due,inject,epoch; or 'all')"};

constexpr Setter kTraceLimit{"--trace-limit / MECC_TRACE_LIMIT",
                             [](const std::string& v, SimOptions& o) {
                               std::uint64_t x = 0;
                               if (!parse_u64(v, x) || x == 0) return false;
                               o.trace_limit = x;
                               return true;
                             },
                             "a positive event count"};

constexpr Setter kMetricsOut{"--metrics-out / MECC_METRICS_OUT",
                             [](const std::string& v, SimOptions& o) {
                               if (v.empty()) return false;
                               o.metrics_out = v;
                               return true;
                             },
                             "a file path (or '-' for stdout)"};

constexpr Setter kMetricsInterval{
    "--metrics-interval / MECC_METRICS_INTERVAL",
    [](const std::string& v, SimOptions& o) {
      std::uint64_t x = 0;
      if (!parse_u64(v, x) || x == 0) return false;
      o.metrics_interval = x;
      return true;
    },
    "a positive cycle count"};

constexpr Setter kMetricsKeys{"--metrics-keys / MECC_METRICS_KEYS",
                              [](const std::string& v, SimOptions& o) {
                                if (v.empty()) return false;
                                o.metrics_keys = v;
                                return true;
                              },
                              "a comma-separated stat-key list "
                              "(see --list-stats)"};

constexpr Setter kProfile{"--profile / MECC_PROFILE",
                          [](const std::string& v, SimOptions& o) {
                            if (v.empty()) return false;
                            o.profile = v;
                            return true;
                          },
                          "a file path (or \"-\" for stdout)"};

[[nodiscard]] std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = std::min(csv.find(',', pos), csv.size());
    if (comma > pos) out.push_back(csv.substr(pos, comma - pos));
    if (comma == csv.size()) break;
    pos = comma + 1;
  }
  return out;
}

}  // namespace

void apply_refresh_options(const SimOptions& opts,
                           memctrl::ControllerConfig& cfg) {
  using memctrl::RefreshGranularity;
  cfg.refresh_granularity =
      opts.refresh_granularity == RefreshGranularityOption::kPerBank
          ? RefreshGranularity::kPerBank
          : RefreshGranularity::kAllBank;
  cfg.elastic_refresh = opts.refresh_policy == RefreshPolicyOption::kElastic;
  cfg.darp = opts.refresh_policy == RefreshPolicyOption::kDarp ||
             opts.refresh_policy == RefreshPolicyOption::kDarpSarp;
  cfg.sarp = opts.refresh_policy == RefreshPolicyOption::kDarpSarp;
  // DARP schedules REFpb commands; it cannot run under the rank-wide
  // REF, so the policy pulls the granularity along with it.
  if (cfg.darp) cfg.refresh_granularity = RefreshGranularity::kPerBank;
}

void apply_geometry_options(const SimOptions& opts, SystemConfig& cfg) {
  if (opts.channels != 0) cfg.geometry.channels = opts.channels;
  cfg.geometry.ranks = opts.ranks;
  cfg.interleave = opts.interleave;
  cfg.streams = opts.streams;
  cfg.channel_threads = opts.channel_parallel;
}

tracing::TraceConfig trace_config_from(const SimOptions& opts) {
  tracing::TraceConfig c;
  c.enabled = !opts.trace.empty();
  c.path = opts.trace;
  // parse_options validated the list; an embedder-supplied bad list
  // falls back to all categories rather than silently tracing nothing.
  c.categories = tracing::parse_categories(opts.trace_categories)
                     .value_or(tracing::kAllCategories);
  c.limit = opts.trace_limit;
  return c;
}

tracing::MetricsConfig metrics_config_from(const SimOptions& opts) {
  tracing::MetricsConfig c;
  c.enabled = !opts.metrics_out.empty();
  c.path = opts.metrics_out;
  c.interval = opts.metrics_interval;
  c.keys = split_csv(opts.metrics_keys);
  return c;
}

void print_registered_stats() {
  // Build the most fully-featured System shape (MECC + SMD + fault
  // campaign + tracer) and run a tiny active/idle/active lifecycle so
  // that event-gated counters materialize (the exporters only emit keys
  // whose events happened; docs/STATS.md).
  SystemConfig cfg;
  cfg.policy = EccPolicy::kMecc;
  cfg.instructions = 20'000;
  cfg.mecc_use_smd = true;
  cfg.smd_quantum_cycles = 4'000;
  cfg.fault.enabled = true;
  cfg.fault.ber_override = 1e-4;
  cfg.fault.transient_read_ber = 1e-4;
  cfg.trace.enabled = true;
  cfg.trace.limit = 16;  // tiny ring: errors.trace_dropped materializes
  const trace::BenchmarkProfile& profile = trace::all_benchmarks()[0];
  System sys(profile, cfg);
  (void)sys.run_period(10'000);
  (void)sys.idle_period(1.0);
  (void)sys.run_period(10'000);
  const StatSet snap = sys.registry().snapshot();

  std::map<std::string, const char*> keys;
  for (const auto& [name, _] : snap.counters()) keys[name] = "counter";
  for (const auto& [name, _] : snap.gauges()) keys[name] = "gauge";
  for (const auto& [name, _] : snap.dists()) keys[name] = "dist";
  std::printf("# registered stat keys (component.stat), by kind; pass\n");
  std::printf("# these (or bare component names) to --metrics-keys\n");
  for (const auto& [name, kind] : keys) {
    std::printf("%-7s %s\n", kind, name.c_str());
  }
}

std::optional<SimOptions> parse_options_checked(int argc, char** argv,
                                                InstCount default_instructions,
                                                std::string* error,
                                                std::vector<bool>* consumed) {
  SimOptions opts;
  opts.instructions = default_instructions;
  opts.jobs = ThreadPool::default_thread_count();
  if (consumed) consumed->assign(static_cast<std::size_t>(argc), false);

  const struct {
    const char* env;
    const char* flag;  // including the trailing '='
    const Setter& setter;
  } knobs[] = {
      {"MECC_INSTRUCTIONS", "--instructions=", kInstructions},
      {"MECC_SEED", "--seed=", kSeed},
      {"MECC_JOBS", "--jobs=", kJobs},
      {"MECC_BER", "--ber=", kBer},
      {"MECC_OUT", "--out=", kOut},
      {"MECC_PERF_OUT", "--perf-out=", kPerfOut},
      {"MECC_FAST_FORWARD", "--fast-forward=", kFastForward},
      {"MECC_REFRESH_POLICY", "--refresh-policy=", kRefreshPolicy},
      {"MECC_REFRESH_GRANULARITY", "--refresh-granularity=",
       kRefreshGranularity},
      {"MECC_CHANNELS", "--channels=", kChannels},
      {"MECC_RANKS", "--ranks=", kRanks},
      {"MECC_INTERLEAVE", "--interleave=", kInterleave},
      {"MECC_STREAMS", "--streams=", kStreams},
      {"MECC_CHANNEL_PARALLEL", "--channel-parallel=", kChannelParallel},
      {"MECC_TRACE", "--trace=", kTrace},
      {"MECC_TRACE_CATEGORIES", "--trace-categories=", kTraceCategories},
      {"MECC_TRACE_LIMIT", "--trace-limit=", kTraceLimit},
      {"MECC_METRICS_OUT", "--metrics-out=", kMetricsOut},
      {"MECC_METRICS_INTERVAL", "--metrics-interval=", kMetricsInterval},
      {"MECC_METRICS_KEYS", "--metrics-keys=", kMetricsKeys},
      {"MECC_PROFILE", "--profile=", kProfile},
  };

  for (const auto& knob : knobs) {
    if (const char* env = std::getenv(knob.env)) {
      if (!apply_or_error(knob.setter, env, opts, error)) return std::nullopt;
    }
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-stats") {
      opts.list_stats = true;
      if (consumed) (*consumed)[static_cast<std::size_t>(i)] = true;
      continue;
    }
    for (const auto& knob : knobs) {
      const std::string prefix = knob.flag;
      if (arg.rfind(prefix, 0) != 0) continue;
      // Mark before validating: a recognized-but-malformed value is
      // still ours (the caller fails anyway), never a leftover flag.
      if (consumed) (*consumed)[static_cast<std::size_t>(i)] = true;
      if (!apply_or_error(knob.setter, arg.substr(prefix.size()), opts,
                          error)) {
        return std::nullopt;
      }
      break;
    }
    // Anything else: ignored (google-benchmark flags etc.).
  }
  return opts;
}

SimOptions parse_options(int argc, char** argv,
                         InstCount default_instructions,
                         std::vector<bool>* consumed) {
  std::string error;
  const std::optional<SimOptions> opts =
      parse_options_checked(argc, argv, default_instructions, &error,
                            consumed);
  if (!opts.has_value()) {
    std::fprintf(stderr, "%s: error: %s\n", argc > 0 ? argv[0] : "mecc",
                 error.c_str());
    std::exit(2);
  }
  if (opts->list_stats) {
    print_registered_stats();
    std::exit(0);
  }
  return *opts;
}

}  // namespace mecc::sim
