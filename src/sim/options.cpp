#include "sim/options.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

#include "sim/thread_pool.h"

namespace mecc::sim {

namespace {

[[nodiscard]] bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
  // strtoull silently wraps an explicit minus sign; reject it.
  if (s.front() == '-') return false;
  out = v;
  return true;
}

[[nodiscard]] bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0' || errno == ERANGE) return false;
  out = v;
  return true;
}

/// One recognized numeric knob, applied identically to the flag and the
/// environment spelling. Returns false with `*error` set on a malformed
/// or out-of-range value.
struct Setter {
  const char* what;  // e.g. "--jobs / MECC_JOBS"
  bool (*apply)(const std::string& value, SimOptions& opts);
  const char* constraint;  // e.g. "a positive integer"
};

[[nodiscard]] bool apply_or_error(const Setter& setter,
                                  const std::string& value, SimOptions& opts,
                                  std::string* error) {
  if (setter.apply(value, opts)) return true;
  if (error) {
    *error = std::string("invalid value '") + value + "' for " + setter.what +
             ": expected " + setter.constraint;
  }
  return false;
}

constexpr Setter kInstructions{
    "--instructions / MECC_INSTRUCTIONS",
    [](const std::string& v, SimOptions& o) {
      std::uint64_t x = 0;
      if (!parse_u64(v, x) || x == 0) return false;
      o.instructions = x;
      return true;
    },
    "a positive integer"};

constexpr Setter kSeed{"--seed / MECC_SEED",
                       [](const std::string& v, SimOptions& o) {
                         std::uint64_t x = 0;
                         if (!parse_u64(v, x)) return false;
                         o.seed = x;
                         return true;
                       },
                       "an unsigned integer"};

constexpr Setter kJobs{
    "--jobs / MECC_JOBS",
    [](const std::string& v, SimOptions& o) {
      std::uint64_t x = 0;
      if (!parse_u64(v, x) || x == 0 ||
          x > std::numeric_limits<unsigned>::max()) {
        return false;
      }
      o.jobs = static_cast<unsigned>(x);
      return true;
    },
    "a positive integer"};

constexpr Setter kBer{"--ber / MECC_BER",
                      [](const std::string& v, SimOptions& o) {
                        double x = 0.0;
                        if (!parse_double(v, x) || !(x >= 0.0) || x > 1.0) {
                          return false;
                        }
                        o.ber = x;
                        return true;
                      },
                      "a bit error rate in [0, 1]"};

constexpr Setter kFastForward{
    "--fast-forward / MECC_FAST_FORWARD",
    [](const std::string& v, SimOptions& o) {
      if (v == "on" || v == "1" || v == "true") {
        o.fast_forward = true;
        return true;
      }
      if (v == "off" || v == "0" || v == "false") {
        o.fast_forward = false;
        return true;
      }
      return false;
    },
    "on|off (also 1|0, true|false)"};

constexpr Setter kOut{"--out / MECC_OUT",
                      [](const std::string& v, SimOptions& o) {
                        if (v.empty()) return false;
                        o.out = v;
                        return true;
                      },
                      "a file path (or '-' for stdout)"};

constexpr Setter kPerfOut{"--perf-out / MECC_PERF_OUT",
                          [](const std::string& v, SimOptions& o) {
                            if (v.empty()) return false;
                            o.perf_out = v;
                            return true;
                          },
                          "a file path"};

}  // namespace

std::optional<SimOptions> parse_options_checked(int argc, char** argv,
                                                InstCount default_instructions,
                                                std::string* error) {
  SimOptions opts;
  opts.instructions = default_instructions;
  opts.jobs = ThreadPool::default_thread_count();

  const struct {
    const char* env;
    const char* flag;  // including the trailing '='
    const Setter& setter;
  } knobs[] = {
      {"MECC_INSTRUCTIONS", "--instructions=", kInstructions},
      {"MECC_SEED", "--seed=", kSeed},
      {"MECC_JOBS", "--jobs=", kJobs},
      {"MECC_BER", "--ber=", kBer},
      {"MECC_OUT", "--out=", kOut},
      {"MECC_PERF_OUT", "--perf-out=", kPerfOut},
      {"MECC_FAST_FORWARD", "--fast-forward=", kFastForward},
  };

  for (const auto& knob : knobs) {
    if (const char* env = std::getenv(knob.env)) {
      if (!apply_or_error(knob.setter, env, opts, error)) return std::nullopt;
    }
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    for (const auto& knob : knobs) {
      const std::string prefix = knob.flag;
      if (arg.rfind(prefix, 0) != 0) continue;
      if (!apply_or_error(knob.setter, arg.substr(prefix.size()), opts,
                          error)) {
        return std::nullopt;
      }
      break;
    }
    // Anything else: ignored (google-benchmark flags etc.).
  }
  return opts;
}

SimOptions parse_options(int argc, char** argv,
                         InstCount default_instructions) {
  std::string error;
  const std::optional<SimOptions> opts =
      parse_options_checked(argc, argv, default_instructions, &error);
  if (!opts.has_value()) {
    std::fprintf(stderr, "%s: error: %s\n", argc > 0 ? argv[0] : "mecc",
                 error.c_str());
    std::exit(2);
  }
  return *opts;
}

}  // namespace mecc::sim
