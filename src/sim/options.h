// Command-line / environment knobs shared by the bench and example
// binaries, mainly the slice length (all paper-shape results hold at the
// default scaled slice; longer runs sharpen them).
//
//   --instructions=N   instructions per active period (default per binary)
//   --seed=N           RNG seed
//   MECC_INSTRUCTIONS / MECC_SEED environment variables as fallbacks.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace mecc::sim {

struct SimOptions {
  InstCount instructions = 20'000'000;
  std::uint64_t seed = 1;
};

/// Parses argv/env; unknown arguments are ignored (benches accept the
/// google-benchmark flags too).
[[nodiscard]] SimOptions parse_options(int argc, char** argv,
                                       InstCount default_instructions);

}  // namespace mecc::sim
