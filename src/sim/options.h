// Command-line / environment knobs shared by the bench and example
// binaries, mainly the slice length (all paper-shape results hold at the
// default scaled slice; longer runs sharpen them).
//
//   --instructions=N   instructions per active period (default per binary)
//   --seed=N           RNG seed
//   --jobs=N           worker threads for suite sweeps (default: hardware
//                      concurrency; 1 = serial, the pre-parallel behavior)
//   --out=FILE.json    machine-readable report (docs/STATS.md); "-" for
//                      stdout. Empty (default) = no JSON emission.
//   MECC_INSTRUCTIONS / MECC_SEED / MECC_JOBS / MECC_OUT environment
//   variables as fallbacks.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace mecc::sim {

struct SimOptions {
  InstCount instructions = 20'000'000;
  std::uint64_t seed = 1;
  // Worker threads for run_suite_parallel / run_jobs. parse_options
  // resolves this to >= 1 (hardware concurrency unless overridden).
  unsigned jobs = 0;
  // Destination for the schema-versioned JSON report ("" = off).
  std::string out;
};

/// Parses argv/env; unknown arguments are ignored (benches accept the
/// google-benchmark flags too).
[[nodiscard]] SimOptions parse_options(int argc, char** argv,
                                       InstCount default_instructions);

}  // namespace mecc::sim
