// Command-line / environment knobs shared by the bench and example
// binaries, mainly the slice length (all paper-shape results hold at the
// default scaled slice; longer runs sharpen them).
//
//   --instructions=N   instructions per active period (default per binary)
//   --seed=N           RNG seed
//   --jobs=N           worker threads for suite sweeps (default: hardware
//                      concurrency; 1 = serial, the pre-parallel behavior)
//   --ber=X            raw bit error rate override in [0, 1] for the
//                      fault-campaign benches (default: bench-specific)
//   --out=FILE.json    machine-readable report (docs/STATS.md); "-" for
//                      stdout. Omitted (default) = no JSON emission.
//   --perf-out=FILE.json
//                      host-side wall-clock report (wall_seconds /
//                      wall_mips per run and per suite) — the
//                      observability deliberately excluded from --out
//                      so that file stays bit-identical across hosts
//                      (docs/PERFORMANCE.md). Omitted = no emission.
//   --fast-forward=on|off
//                      event-driven cycle skipping (docs/PERFORMANCE.md).
//                      Default on; off selects the bit-identical
//                      per-cycle reference loop.
//   --refresh-policy=strict|elastic|darp|darp-sarp
//                      refresh scheduling policy (docs/SCHEDULING.md).
//                      Default strict (refresh exactly on schedule);
//                      darp and darp-sarp imply per-bank granularity.
//   --refresh-granularity=all-bank|per-bank
//                      refresh command granularity (docs/SCHEDULING.md).
//                      Default all-bank (the paper's baseline REF).
//   --channels=N       memory channels (docs/SCALING.md). Default: the
//                      binary's own default — single-config benches use
//                      1, geometry sweeps use their full grid and treat
//                      the flag as a restriction.
//   --ranks=N          ranks per channel (default 1).
//   --interleave=line|row|bank-xor
//                      channel/rank interleaving of the physical line
//                      address (docs/SCALING.md). Default line.
//   --streams=N        independent request streams / cores (default 1;
//                      ignored under --trace-file replay).
//   --channel-parallel=N
//                      worker threads for channel-parallel epoch ticking
//                      (docs/SCALING.md). Default 0 = serial channel
//                      order; any N is bit-identical to 0.
//   --trace=FILE.json  Chrome/Perfetto trace-event output
//                      (docs/OBSERVABILITY.md); "-" for stdout.
//                      Omitted (default) = tracing off.
//   --trace-categories=LIST
//                      comma-separated category filter (dram,bank,power,
//                      refresh,queue,morph,smd,due,inject,epoch; "all").
//   --trace-limit=N    trace ring capacity in events; the oldest events
//                      are dropped once full (errors.trace_dropped).
//   --metrics-out=FILE.jsonl
//                      windowed StatRegistry timeline
//                      (docs/OBSERVABILITY.md); "-" for stdout. Omitted
//                      (default) = metrics off.
//   --metrics-interval=CYCLES
//                      metrics window length in CPU cycles.
//   --metrics-keys=LIST
//                      comma-separated stat-key selectors (exact
//                      `component.stat` keys or whole components);
//                      default all keys. See --list-stats.
//   --list-stats       dump every registered stat key and exit.
//   --profile=FILE.json
//                      host-side self-profiler report (component x phase
//                      wall time + Perfetto host-time track,
//                      docs/OBSERVABILITY.md); "-" for stdout. Omitted
//                      (default) = profiler off, zero overhead.
//   MECC_INSTRUCTIONS / MECC_SEED / MECC_JOBS / MECC_BER / MECC_OUT /
//   MECC_PERF_OUT / MECC_FAST_FORWARD / MECC_REFRESH_POLICY /
//   MECC_REFRESH_GRANULARITY / MECC_CHANNELS / MECC_RANKS /
//   MECC_INTERLEAVE / MECC_STREAMS / MECC_CHANNEL_PARALLEL / MECC_TRACE /
//   MECC_TRACE_CATEGORIES / MECC_TRACE_LIMIT / MECC_METRICS_OUT /
//   MECC_METRICS_INTERVAL / MECC_METRICS_KEYS / MECC_PROFILE environment
//   variables as fallbacks.
//
// Unknown flags are ignored (benches accept the google-benchmark flags
// too), but a *recognized* flag with a malformed or out-of-range value
// (--jobs=abc, --instructions=0, --ber=-1, an empty --out=) is a hard
// error: parse_options prints a diagnostic and exits non-zero rather
// than silently running with a default the user did not ask for.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/trace.h"
#include "common/types.h"
#include "memctrl/address_map.h"

namespace mecc::memctrl {
struct ControllerConfig;
}

namespace mecc::sim {

struct SystemConfig;

/// --refresh-policy= values (docs/SCHEDULING.md). Strict is the paper's
/// baseline: refresh exactly on schedule, demand waits.
enum class RefreshPolicyOption : std::uint8_t {
  kStrict,
  kElastic,
  kDarp,
  kDarpSarp,
};

/// --refresh-granularity= values: rank-wide REF vs staggered REFpb.
enum class RefreshGranularityOption : std::uint8_t {
  kAllBank,
  kPerBank,
};

struct SimOptions {
  InstCount instructions = 20'000'000;
  std::uint64_t seed = 1;
  // Worker threads for run_suite_parallel / run_jobs. parse_options
  // resolves this to >= 1 (hardware concurrency unless overridden).
  unsigned jobs = 0;
  // Raw BER override for fault-campaign benches; < 0 = not set.
  double ber = -1.0;
  // Destination for the schema-versioned JSON report ("" = off).
  std::string out;
  // Destination for the wall-clock perf report ("" = off).
  std::string perf_out;
  // Event-driven fast-forward; off = per-cycle reference loop.
  bool fast_forward = true;
  // Refresh scheduling policy and command granularity
  // (docs/SCHEDULING.md); apply_refresh_options maps these onto a
  // ControllerConfig.
  RefreshPolicyOption refresh_policy = RefreshPolicyOption::kStrict;
  RefreshGranularityOption refresh_granularity =
      RefreshGranularityOption::kAllBank;

  // Memory-system geometry (docs/SCALING.md). channels == 0 means "not
  // set on the command line": single-config benches fall back to 1 via
  // apply_geometry_options, geometry sweeps run their full grid.
  std::uint32_t channels = 0;
  std::uint32_t ranks = 1;
  memctrl::Interleave interleave = memctrl::Interleave::kLine;
  std::uint32_t streams = 1;
  // Worker threads for channel-parallel epoch ticking (0 = serial
  // channel order; any value is bit-identical to serial).
  unsigned channel_parallel = 0;

  // Observability (docs/OBSERVABILITY.md).
  std::string trace;             // trace destination ("" = tracing off)
  std::string trace_categories;  // category filter csv ("" = all)
  std::uint64_t trace_limit = 1u << 20;  // ring capacity in events
  std::string metrics_out;       // metrics JSONL destination ("" = off)
  Cycle metrics_interval = 1'000'000;    // window length in CPU cycles
  std::string metrics_keys;      // stat-key selector csv ("" = all)
  bool list_stats = false;       // dump registered stat keys and exit
  // Host-side self-profiler report destination ("" = profiler off);
  // like --perf-out this is wall-clock data and never part of --out.
  std::string profile;
};

/// Maps the refresh knobs onto a ControllerConfig: granularity first,
/// then the policy (elastic_refresh / darp / sarp flags; darp and
/// darp-sarp force per-bank granularity, which they require).
void apply_refresh_options(const SimOptions& opts,
                           memctrl::ControllerConfig& cfg);

/// Maps the geometry knobs onto a SystemConfig: channels (unset leaves
/// the config's own default alone), ranks, interleave, request streams
/// and the channel-parallel thread count.
void apply_geometry_options(const SimOptions& opts, SystemConfig& cfg);

/// The SystemConfig::trace block the options select (parse_options
/// already validated the category list).
[[nodiscard]] tracing::TraceConfig trace_config_from(const SimOptions& opts);

/// The SystemConfig::metrics block the options select.
[[nodiscard]] tracing::MetricsConfig metrics_config_from(
    const SimOptions& opts);

/// Prints every stat key a representative System registers (the
/// --list-stats introspection behind choosing --metrics-keys).
void print_registered_stats();

/// Parses argv/env without exiting: returns the options, or nullopt
/// with `*error` describing the first malformed recognized value.
///
/// When `consumed` is non-null it is resized to argc and consumed[i] is
/// set iff argv[i] was a recognized SimOptions flag. Binaries that pass
/// leftover argv to another parser (bench_ecc_codec hands it to
/// google-benchmark) must derive their strip set from this instead of
/// hard-coding a flag list — a hard-coded list silently desynchronizes
/// the next time a shared flag is added, and the downstream parser then
/// rejects the leaked flag and exits non-zero.
[[nodiscard]] std::optional<SimOptions> parse_options_checked(
    int argc, char** argv, InstCount default_instructions,
    std::string* error, std::vector<bool>* consumed = nullptr);

/// parse_options_checked, with the standard bench-binary error policy:
/// on a malformed value, print the diagnostic to stderr and exit(2).
[[nodiscard]] SimOptions parse_options(int argc, char** argv,
                                       InstCount default_instructions,
                                       std::vector<bool>* consumed = nullptr);

}  // namespace mecc::sim
