// Command-line / environment knobs shared by the bench and example
// binaries, mainly the slice length (all paper-shape results hold at the
// default scaled slice; longer runs sharpen them).
//
//   --instructions=N   instructions per active period (default per binary)
//   --seed=N           RNG seed
//   --jobs=N           worker threads for suite sweeps (default: hardware
//                      concurrency; 1 = serial, the pre-parallel behavior)
//   --ber=X            raw bit error rate override in [0, 1] for the
//                      fault-campaign benches (default: bench-specific)
//   --out=FILE.json    machine-readable report (docs/STATS.md); "-" for
//                      stdout. Omitted (default) = no JSON emission.
//   --perf-out=FILE.json
//                      host-side wall-clock report (wall_seconds /
//                      wall_mips per run and per suite) — the
//                      observability deliberately excluded from --out
//                      so that file stays bit-identical across hosts
//                      (docs/PERFORMANCE.md). Omitted = no emission.
//   --fast-forward=on|off
//                      event-driven cycle skipping (docs/PERFORMANCE.md).
//                      Default on; off selects the bit-identical
//                      per-cycle reference loop.
//   MECC_INSTRUCTIONS / MECC_SEED / MECC_JOBS / MECC_BER / MECC_OUT /
//   MECC_PERF_OUT / MECC_FAST_FORWARD environment variables as
//   fallbacks.
//
// Unknown flags are ignored (benches accept the google-benchmark flags
// too), but a *recognized* flag with a malformed or out-of-range value
// (--jobs=abc, --instructions=0, --ber=-1, an empty --out=) is a hard
// error: parse_options prints a diagnostic and exits non-zero rather
// than silently running with a default the user did not ask for.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/types.h"

namespace mecc::sim {

struct SimOptions {
  InstCount instructions = 20'000'000;
  std::uint64_t seed = 1;
  // Worker threads for run_suite_parallel / run_jobs. parse_options
  // resolves this to >= 1 (hardware concurrency unless overridden).
  unsigned jobs = 0;
  // Raw BER override for fault-campaign benches; < 0 = not set.
  double ber = -1.0;
  // Destination for the schema-versioned JSON report ("" = off).
  std::string out;
  // Destination for the wall-clock perf report ("" = off).
  std::string perf_out;
  // Event-driven fast-forward; off = per-cycle reference loop.
  bool fast_forward = true;
};

/// Parses argv/env without exiting: returns the options, or nullopt
/// with `*error` describing the first malformed recognized value.
[[nodiscard]] std::optional<SimOptions> parse_options_checked(
    int argc, char** argv, InstCount default_instructions,
    std::string* error);

/// parse_options_checked, with the standard bench-binary error policy:
/// on a malformed value, print the diagnostic to stderr and exit(2).
[[nodiscard]] SimOptions parse_options(int argc, char** argv,
                                       InstCount default_instructions);

}  // namespace mecc::sim
