#include "sim/run_json.h"

#include <cstdio>

#include "common/fsio.h"

namespace mecc::sim {

void stat_set_json(JsonWriter& w, const StatSet& s) {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, value] : s.counters()) {
    w.key(name);
    w.value(value);
  }
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, value] : s.gauges()) {
    w.key(name);
    w.value(value);
  }
  w.end_object();
  w.key("dists");
  w.begin_object();
  for (const auto& [name, d] : s.dists()) {
    w.key(name);
    w.begin_object();
    w.key("count");
    w.value(d.count);
    w.key("sum");
    w.value(d.sum);
    w.key("min");
    w.value(d.min);
    w.key("max");
    w.value(d.max);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

void run_result_json(JsonWriter& w, const RunResult& r) {
  w.begin_object();
  w.key("benchmark");
  w.value(r.benchmark);
  w.key("policy");
  w.value(policy_name(r.policy));
  w.key("instructions");
  w.value(static_cast<std::uint64_t>(r.instructions));
  w.key("cpu_cycles");
  w.value(static_cast<std::uint64_t>(r.cpu_cycles));
  w.key("ipc");
  w.value(r.ipc);
  w.key("seconds");
  w.value(r.seconds);
  w.key("measured_mpki");
  w.value(r.measured_mpki);
  w.key("reads");
  w.value(r.reads);
  w.key("writes");
  w.value(r.writes);
  w.key("strong_decodes");
  w.value(r.strong_decodes);
  w.key("weak_decodes");
  w.value(r.weak_decodes);
  w.key("downgrades");
  w.value(r.downgrades);
  w.key("energy");
  w.begin_object();
  w.key("background_mj");
  w.value(r.energy.background_mj);
  w.key("activate_mj");
  w.value(r.energy.activate_mj);
  w.key("read_mj");
  w.value(r.energy.read_mj);
  w.key("write_mj");
  w.value(r.energy.write_mj);
  w.key("refresh_mj");
  w.value(r.energy.refresh_mj);
  w.key("ecc_mj");
  w.value(r.energy.ecc_mj);
  w.key("total_mj");
  w.value(r.energy.total_mj());
  w.key("seconds");
  w.value(r.energy.seconds);
  w.end_object();
  w.key("avg_power_mw");
  w.value(r.avg_power_mw);
  w.key("edp_mj_s");
  w.value(r.edp_mj_s);
  w.key("mdt_marked_regions");
  w.value(r.mdt_marked_regions);
  w.key("mdt_tracked_bytes");
  w.value(r.mdt_tracked_bytes);
  w.key("frac_downgrade_disabled");
  w.value(r.frac_downgrade_disabled);
  w.key("checkpoints");
  w.begin_array();
  for (const auto& cp : r.checkpoints) {
    w.begin_object();
    w.key("instructions");
    w.value(static_cast<std::uint64_t>(cp.instructions));
    w.key("cycles");
    w.value(static_cast<std::uint64_t>(cp.cycles));
    w.end_object();
  }
  w.end_array();
  w.key("stats");
  stat_set_json(w, r.stats);
  w.end_object();
}

std::string bench_report_json(const BenchReport& report) {
  JsonWriter w;
  w.begin_object();
  w.key("schema_version");
  w.value(kStatsSchemaVersion);
  w.key("bench");
  w.value(report.bench);
  w.key("options");
  w.begin_object();
  w.key("instructions");
  w.value(static_cast<std::uint64_t>(report.instructions));
  w.key("seed");
  w.value(report.seed);
  w.end_object();
  w.key("scalars");
  w.begin_object();
  for (const auto& [name, value] : report.scalars) {
    w.key(name);
    w.value(value);
  }
  w.end_object();
  w.key("suites");
  w.begin_array();
  for (const auto& [tag, runs] : report.suites) {
    w.begin_object();
    w.key("tag");
    w.value(tag);
    w.key("runs");
    w.begin_array();
    for (const auto& r : runs) run_result_json(w, r);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

bool write_bench_report(const BenchReport& report, const std::string& path) {
  // Durable emission (docs/FLEET.md): temp + fsync + atomic rename, so
  // an interrupted bench never leaves a truncated report behind that a
  // resume or a downstream diff would mis-parse.
  return atomic_write_file(path, bench_report_json(report), "--out");
}

}  // namespace mecc::sim
