// Machine-readable bench output (ISSUE 2): every bench binary can
// serialize its RunResults plus the full StatRegistry snapshot as
// stable, schema-versioned JSON via --out=FILE.json, and
// scripts/compare_stats.py diffs two emissions with tolerances.
//
// Determinism contract: the JSON for a run contains only *simulated*
// fields — host-side wall-clock observability (wall_seconds/wall_mips)
// is deliberately excluded — so for a fixed seed the emission is
// byte-identical run to run and across --jobs settings (the property
// tests/sim/run_json_test.cpp and the tier-1 compare enforce).
//
// Schema (docs/STATS.md documents it in full):
//   { "schema_version": N, "bench": "...",
//     "options": {"instructions": N, "seed": N},
//     "scalars": {...}, "suites": [{"tag": "...", "runs": [RunResult...]}] }
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/json.h"
#include "sim/system.h"

namespace mecc::sim {

/// Bumped whenever the JSON layout changes shape; compare_stats.py
/// refuses to diff mismatched versions.
inline constexpr int kStatsSchemaVersion = 1;

/// Serializes a StatSet as {"counters": {...}, "gauges": {...},
/// "dists": {name: {count, sum, min, max}}} (keys sorted — StatSet is
/// map-backed).
void stat_set_json(JsonWriter& w, const StatSet& s);

/// Serializes every simulated field of a RunResult, including the full
/// registry snapshot under "stats". Excludes wall_seconds / wall_mips
/// (see the determinism contract above).
void run_result_json(JsonWriter& w, const RunResult& r);

/// Everything one bench binary emits: suite sweeps (tag -> runs) plus
/// free-form named scalars for analytic benches.
struct BenchReport {
  std::string bench;             // e.g. "fig7_performance"
  InstCount instructions = 0;    // slice length the sweeps used (0: n/a)
  std::uint64_t seed = 0;
  std::vector<std::pair<std::string, std::vector<RunResult>>> suites;
  std::vector<std::pair<std::string, double>> scalars;
};

/// The full schema-versioned document, stable byte-for-byte for equal
/// inputs.
[[nodiscard]] std::string bench_report_json(const BenchReport& report);

/// Writes bench_report_json to `path` ("-" = stdout). Returns false
/// (with a stderr diagnostic) when the file cannot be written.
[[nodiscard]] bool write_bench_report(const BenchReport& report,
                                      const std::string& path);

}  // namespace mecc::sim
