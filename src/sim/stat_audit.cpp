#include "sim/stat_audit.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>

#include "common/trace.h"
#include "trace/benchmarks.h"

namespace mecc::sim {

namespace {

// Aggregated view of one replayed trace: instant counts by
// (category, name), power-span residency sums by state name, and the
// queue-counter positive-edge sums (enqueue events).
struct Replay {
  std::map<std::pair<int, std::string>, std::uint64_t> instants;
  std::map<std::string, std::uint64_t> power_span_cpu_cycles;
  std::uint64_t read_q_enqueues = 0;
  std::uint64_t write_q_enqueues = 0;
};

[[nodiscard]] Replay replay_events(
    const std::vector<tracing::TraceEvent>& events) {
  Replay rp;
  // Queues start empty, so the first counter sample's positive delta is
  // measured against 0.
  std::int64_t last_read_q = 0;
  std::int64_t last_write_q = 0;
  for (const tracing::TraceEvent& e : events) {
    switch (e.ph) {
      case 'i':
        ++rp.instants[{static_cast<int>(e.cat), e.name}];
        break;
      case 'X':
        if (e.cat == tracing::Category::kPower) {
          rp.power_span_cpu_cycles[e.name] += e.dur;
        }
        break;
      case 'C': {
        if (e.cat != tracing::Category::kQueue) break;
        const auto cur = static_cast<std::int64_t>(std::llround(e.value));
        if (std::string_view(e.name) == "read_q") {
          if (cur > last_read_q) {
            rp.read_q_enqueues += static_cast<std::uint64_t>(cur - last_read_q);
          }
          last_read_q = cur;
        } else if (std::string_view(e.name) == "write_q") {
          if (cur > last_write_q) {
            rp.write_q_enqueues +=
                static_cast<std::uint64_t>(cur - last_write_q);
          }
          last_write_q = cur;
        }
        break;
      }
      default:
        break;
    }
  }
  return rp;
}

[[nodiscard]] std::uint64_t instant_count(const Replay& rp,
                                          tracing::Category cat,
                                          const char* name) {
  const auto it = rp.instants.find({static_cast<int>(cat), name});
  return it == rp.instants.end() ? 0 : it->second;
}

// Failure accumulation with the stat key in every message (the
// self-test greps for the skewed key by name).
struct Auditor {
  AuditResult result;

  void check_eq(const std::string& key, std::uint64_t stat_value,
                std::uint64_t trace_value, const std::string& trace_what) {
    ++result.checks;
    if (stat_value == trace_value) return;
    result.ok = false;
    result.failures.push_back(
        "stat '" + key + "' = " + std::to_string(stat_value) + " but " +
        trace_what + " = " + std::to_string(trace_value));
  }

  void check_range(const std::string& key, std::uint64_t value,
                   std::uint64_t lo, std::uint64_t hi,
                   const std::string& what) {
    ++result.checks;
    if (value >= lo && value <= hi) return;
    result.ok = false;
    result.failures.push_back("'" + key + "': " + what + " = " +
                              std::to_string(value) + " outside [" +
                              std::to_string(lo) + ", " + std::to_string(hi) +
                              "]");
  }
};

// Sum of one per-channel counter over every channel component
// ("dram.activates" single-channel, "dram.chK.activates" otherwise).
// Rank-suffixed duplicates ("dram.r0.activates") are deliberately NOT
// summed — they re-count the same commands per rank.
[[nodiscard]] std::uint64_t sum_channels(const StatSet& snap,
                                         const std::string& component,
                                         std::uint32_t channels,
                                         const std::string& stat) {
  if (channels <= 1) return snap.counter(component + "." + stat);
  std::uint64_t total = 0;
  for (std::uint32_t c = 0; c < channels; ++c) {
    total += snap.counter(component + ".ch" + std::to_string(c) + "." + stat);
  }
  return total;
}

// Display key for the family: the literal key single-channel (so the
// self-test failure names exactly the skewed key), the ch* pattern
// otherwise.
[[nodiscard]] std::string family_key(const std::string& component,
                                     std::uint32_t channels,
                                     const std::string& stat) {
  return channels <= 1 ? component + "." + stat
                       : component + ".ch*." + stat;
}

}  // namespace

AuditResult audit_system_run(const AuditOptions& opts) {
  SystemConfig cfg = opts.config;
  // Force the drop-free in-memory tracer: the audit needs the COMPLETE
  // event stream (a wrapped ring would fail every count), across every
  // category it replays.
  cfg.trace.enabled = true;
  cfg.trace.path.clear();
  cfg.trace.categories = tracing::kAllCategories;
  cfg.trace.limit = std::max<std::uint64_t>(cfg.trace.limit, 1u << 22);
  cfg.metrics.enabled = false;

  const trace::BenchmarkProfile* profile = nullptr;
  if (!opts.benchmark.empty()) {
    profile = &trace::benchmark(opts.benchmark);
  } else {
    for (const trace::BenchmarkProfile& p : trace::all_benchmarks()) {
      if (profile == nullptr || p.mpki > profile->mpki) profile = &p;
    }
  }

  System sys(*profile, cfg);
  // Full lifecycle: active -> idle (self-refresh entry/exit, fault
  // injection) -> active again, then close the in-flight spans so the
  // residency integral is complete up to the snapshot.
  (void)sys.run_period(cfg.instructions);
  (void)sys.idle_period(opts.idle_seconds);
  (void)sys.run_period(cfg.instructions / 4 + 1);
  sys.flush_observability();

  Auditor a;
  if (sys.tracer()->dropped() != 0) {
    a.result.ok = false;
    a.result.failures.push_back(
        "trace ring dropped " + std::to_string(sys.tracer()->dropped()) +
        " events ('trace.dropped_events' nonzero); the audit needs the "
        "complete stream — raise the trace limit");
    return std::move(a.result);
  }

  StatSet snap = sys.registry().snapshot();
  if (!opts.skew_key.empty()) snap.add(opts.skew_key, 1);

  const std::vector<tracing::TraceEvent> events = sys.tracer()->events();
  const Replay rp = replay_events(events);
  a.result.events_replayed = events.size();

  const std::uint32_t channels = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(cfg.geometry.channels));
  const std::uint32_t ranks =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(cfg.geometry.ranks));
  using tracing::Category;

  // ---- DRAM command stream vs. device counters (1:1 by design) ----
  const struct {
    const char* instant;
    const char* stat;
  } kDramPairs[] = {
      {"ACT", "activates"}, {"RD", "reads"},      {"WR", "writes"},
      {"PRE", "precharges"}, {"REF", "refreshes"}, {"REFB", "refreshes_pb"},
  };
  for (const auto& p : kDramPairs) {
    a.check_eq(family_key("dram", channels, p.stat),
               sum_channels(snap, "dram", channels, p.stat),
               instant_count(rp, Category::kDram, p.instant),
               std::string("the trace carries ") + p.instant + " instants");
  }
  // The controller-side issue counters must agree with the same command
  // instants (the controller is the only REF/REFB issuer).
  a.check_eq(family_key("memctrl", channels, "refreshes"),
             sum_channels(snap, "memctrl", channels, "refreshes"),
             instant_count(rp, Category::kDram, "REF"),
             "the trace carries REF instants");
  a.check_eq(family_key("memctrl", channels, "refreshes_pb"),
             sum_channels(snap, "memctrl", channels, "refreshes_pb"),
             instant_count(rp, Category::kDram, "REFB"),
             "the trace carries REFB instants");

  // ---- power management commands ----
  // PD entry is controller-only, so it pairs exactly; PD *exit* can also
  // come from the idle-entry drain (System wakes powered-down ranks
  // directly), so the instants bound the counters from above, with the
  // slack bounded by the rank population per idle period.
  const std::uint64_t pde = instant_count(rp, Category::kDram, "PDE");
  const std::uint64_t pdx = instant_count(rp, Category::kDram, "PDX");
  a.check_eq(family_key("memctrl", channels, "pd_entries"),
             sum_channels(snap, "memctrl", channels, "pd_entries"), pde,
             "the trace carries PDE instants");
  const std::uint64_t pd_exits_counted =
      sum_channels(snap, "memctrl", channels, "pd_exits") +
      sum_channels(snap, "memctrl", channels, "pd_exits_for_refresh");
  a.check_range(family_key("memctrl", channels, "pd_exits"), pdx,
                pd_exits_counted,
                pd_exits_counted +
                    static_cast<std::uint64_t>(channels) * ranks,
                "PDX instants (counted exits + idle-entry direct exits)");
  a.check_range(family_key("memctrl", channels, "pd_entries"), pde, pdx,
                pdx + static_cast<std::uint64_t>(channels) * ranks,
                "PDE instants (every entry exits or is still down)");
  // Exactly one idle period: every channel enters and leaves self
  // refresh exactly once.
  a.check_eq("dram self-refresh entries (SRE)", channels,
             instant_count(rp, Category::kDram, "SRE"),
             "the trace carries SRE instants");
  a.check_eq("dram self-refresh exits (SRX)", channels,
             instant_count(rp, Category::kDram, "SRX"),
             "the trace carries SRX instants");

  // ---- queue-depth counter edges vs. enqueue counters ----
  // Single-channel only: multiple controllers interleave on one counter
  // track and the per-channel deltas become inseparable.
  if (channels == 1) {
    a.check_eq("memctrl.reads_enqueued",
               snap.counter("memctrl.reads_enqueued"), rp.read_q_enqueues,
               "the read_q counter edges sum to");
    a.check_eq("memctrl.writes_enqueued",
               snap.counter("memctrl.writes_enqueued"), rp.write_q_enqueues,
               "the write_q counter edges sum to");
  }

  // ---- power-state residency spans vs. state_cycles counters ----
  // Span durations are CPU cycles; state_cycles are memory cycles and
  // accumulate once per RANK per elapsed cycle. Single-rank: exact
  // per-state equality. Multi-rank: the channel-level span is exact for
  // self_refresh (all ranks share it) and the grand total integrates to
  // ranks x the span total; the per-state split differs whenever ranks
  // disagree (one powered down, one active).
  static constexpr const char* kStates[] = {
      "precharge_standby", "active_standby", "precharge_power_down",
      "active_power_down", "self_refresh"};
  auto span_cycles = [&rp](const char* state) -> std::uint64_t {
    const auto it = rp.power_span_cpu_cycles.find(state);
    return it == rp.power_span_cpu_cycles.end() ? 0 : it->second;
  };
  if (ranks == 1) {
    for (const char* s : kStates) {
      const std::string stat = std::string("state_cycles.") + s;
      a.check_eq(family_key("dram", channels, stat),
                 sum_channels(snap, "dram", channels, stat) *
                     kCpuCyclesPerMemCycle,
                 span_cycles(s),
                 std::string("the '") + s + "' residency spans sum to");
    }
  } else {
    a.check_eq(family_key("dram", channels, "state_cycles.self_refresh"),
               sum_channels(snap, "dram", channels,
                            "state_cycles.self_refresh") *
                   kCpuCyclesPerMemCycle,
               span_cycles("self_refresh") * ranks,
               "ranks x the self_refresh residency spans sum to");
    std::uint64_t stat_total = 0;
    std::uint64_t span_total = 0;
    for (const char* s : kStates) {
      stat_total +=
          sum_channels(snap, "dram", channels, std::string("state_cycles.") + s);
      span_total += span_cycles(s);
    }
    a.check_eq(family_key("dram", channels, "state_cycles.*"),
               stat_total * kCpuCyclesPerMemCycle, span_total * ranks,
               "ranks x the total residency spans sum to");
  }

  // ---- fault-campaign error instants vs. errors.* counters ----
  // The errors component merges the shadow memory's counters with the
  // DUE policy's; each side's instants are distinct (kInject shadow_*
  // vs. kDue names), so the sums pair exactly. Audited unconditionally:
  // without a fault campaign both sides must be zero, and a key that
  // materializes with no matching instant is exactly the kind of
  // miscount this layer exists to catch.
  {
    a.check_eq("errors.due", snap.counter("errors.due"),
               instant_count(rp, Category::kInject, "shadow_due") +
                   instant_count(rp, Category::kDue, "due"),
               "the trace carries shadow_due + due instants");
    a.check_eq("errors.ce", snap.counter("errors.ce"),
               instant_count(rp, Category::kInject, "shadow_ce") +
                   instant_count(rp, Category::kDue, "ce"),
               "the trace carries shadow_ce + ce instants");
    a.check_eq("errors.silent", snap.counter("errors.silent"),
               instant_count(rp, Category::kInject, "silent_corruption") +
                   instant_count(rp, Category::kDue, "silent"),
               "the trace carries silent_corruption + silent instants");
    a.check_eq("errors.retries", snap.counter("errors.retries"),
               instant_count(rp, Category::kDue, "retry"),
               "the trace carries retry instants");
    a.check_eq("errors.injections", snap.counter("errors.injections"),
               instant_count(rp, Category::kInject, "inject_retention"),
               "the trace carries inject_retention instants");
  }

  return std::move(a.result);
}

}  // namespace mecc::sim
