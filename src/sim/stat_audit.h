// Counter-audit layer (docs/OBSERVABILITY.md): replays the event trace
// of a finished System run against a StatRegistry snapshot and checks
// that the two observability surfaces agree — every DRAM command
// instant must match its counter bump 1:1, queue-depth counter edges
// must sum to the enqueue counters, power-state residency spans must
// integrate to the state_cycles counters, and fault-campaign error
// instants must match the errors.* counters. A silent divergence
// between the trace and the stats means one of them is lying about the
// simulation; the audit turns that into a hard failure naming the key.
//
// The audit is strictly host-side: it builds its own System with the
// in-memory tracer forced on, so it never perturbs a measurement run.
// bench_stat_audit runs it over the policy x geometry matrix in tier 1;
// AuditOptions::skew_key is the self-test hook (deliberately miscount
// one stat; the audit must fail and name it).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/system.h"

namespace mecc::sim {

struct AuditOptions {
  /// Simulation shape to audit. Trace settings are overridden (the
  /// audit forces an in-memory, all-category, drop-free tracer);
  /// everything else — policy, geometry, refresh scheduling, fault
  /// campaign, fast_forward — is audited as configured.
  SystemConfig config{};
  /// Benchmark profile name (trace::benchmark); "" picks the
  /// highest-MPKI profile so the trace has dense command traffic.
  std::string benchmark;
  /// Idle-period length between the two active periods, so the audit
  /// covers the self-refresh entry/exit path and (for fault campaigns)
  /// the retention-injection instants.
  double idle_seconds = 0.02;
  /// Self-test fault injection: add +1 to this snapshot key before
  /// checking, so the audit MUST fail and its failure message MUST
  /// contain this key ("" = no injection).
  std::string skew_key;
};

struct AuditResult {
  bool ok = true;
  /// Human-readable inconsistencies, each naming the stat key involved.
  std::vector<std::string> failures;
  std::uint64_t checks = 0;           // invariants evaluated
  std::uint64_t events_replayed = 0;  // trace events consumed
};

/// Runs one active/idle/active lifecycle under `opts` and audits the
/// trace against the final stats snapshot. See AuditResult.
[[nodiscard]] AuditResult audit_system_run(const AuditOptions& opts);

}  // namespace mecc::sim
