#include "sim/system.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <iostream>
#include <type_traits>

#include "common/profile.h"
#include "trace/file_trace.h"

namespace mecc::sim {

std::string policy_name(EccPolicy p) {
  switch (p) {
    case EccPolicy::kNoEcc:
      return "Baseline";
    case EccPolicy::kSecded:
      return "SECDED";
    case EccPolicy::kEcc6:
      return "ECC-6";
    case EccPolicy::kMecc:
      return "MECC";
  }
  return "?";
}

namespace {

/// Backs the non-memory retire rate out of the paper's baseline IPC:
/// 1/ipc_base = 1/ipc_paper - read_pki/1000 * nominal_read_latency.
[[nodiscard]] double calibrate_base_ipc(const trace::BenchmarkProfile& p,
                                        double nominal_read_latency) {
  const double read_pki = p.mpki * p.read_fraction;
  const double cpi_target = 1.0 / p.paper_ipc;
  const double cpi_mem = read_pki / 1000.0 * nominal_read_latency;
  const double cpi_base = cpi_target - cpi_mem;
  if (cpi_base <= 0.5) return 2.0;  // memory-bound: retire at full width
  return std::min(2.0, 1.0 / cpi_base);
}

/// Minimum channel-parallel span worth dispatching to the pool: shorter
/// spans lose more to submit/wait_idle latency than they gain.
constexpr dram::MemCycle kMinSpanTicks = 32;

}  // namespace

System::System(const trace::BenchmarkProfile& profile,
               const SystemConfig& config)
    : profile_(profile),
      config_(config),
      base_ipc_(calibrate_base_ipc(profile,
                                   config.calibration_read_latency_cycles)),
      route_(config.geometry, config.interleave),
      power_model_(config.power, config.timing, config.geometry.banks,
                   config.geometry.channels * config.geometry.ranks) {
  if (config.trace_file.empty()) {
    // K streams: each core gets its own generator, decorrelated by seed
    // and placed in its own line-aligned slice of physical memory, so
    // streams contend for channels/banks without sharing footprints.
    // Stream 0's generator is parameterized exactly like the historical
    // single-stream one (base 0, the run seed).
    const std::uint32_t streams = std::max<std::uint32_t>(1, config.streams);
    const Address stream_stride =
        config.geometry.capacity_bytes() / streams / kLineBytes * kLineBytes;
    for (std::uint32_t k = 0; k < streams; ++k) {
      sources_.push_back(std::make_unique<trace::GeneratorSource>(
          profile,
          trace::GeneratorConfig{
              .footprint_scale =
                  config.footprint_scale != 0.0
                      ? config.footprint_scale
                      : static_cast<double>(config.instructions) / 4e9,
              .phase_length_insts = config.phase_length_insts != 0
                                        ? config.phase_length_insts
                                        : std::max<std::uint64_t>(
                                              1, config.instructions / 8),
              .base_addr = stream_stride * k,
              .seed = config.seed + 0x9E3779B97F4A7C15ull * k,
          }));
    }
  } else {
    // Trace replay is inherently one request stream.
    sources_.push_back(std::make_unique<trace::FileTrace>(config.trace_file));
  }
  init_engine_and_core();
}

System::System(const trace::BenchmarkProfile& profile,
               const SystemConfig& config,
               std::unique_ptr<trace::TraceSource> source)
    : profile_(profile),
      config_(config),
      base_ipc_(calibrate_base_ipc(profile,
                                   config.calibration_read_latency_cycles)),
      route_(config.geometry, config.interleave),
      power_model_(config.power, config.timing, config.geometry.banks,
                   config.geometry.channels * config.geometry.ranks) {
  // An injected source is one stream by construction.
  sources_.push_back(std::move(source));
  init_engine_and_core();
}

void System::init_engine_and_core() {
  const SystemConfig& config = config_;
  assert(config.geometry.channels >= 1);
  memctrl::ControllerConfig ctrl_config = config.controller;
  ctrl_config.interleave = config.interleave;
  for (std::uint32_t i = 0; i < config.geometry.channels; ++i) {
    channels_.push_back(std::make_unique<Channel>(config.geometry,
                                                  config.timing, ctrl_config));
  }
  ff_bounds_.resize(channels_.size());
  if (config.channel_threads > 0 && channels_.size() > 1) {
    channel_pool_ = std::make_unique<ThreadPool>(config.channel_threads);
  }
  if (config.trace.enabled) {
    tracer_ = std::make_unique<tracing::Tracer>(config.trace);
    for (auto& ch : channels_) {
      ch->device.set_tracer(tracer_.get());
      ch->controller.set_tracer(tracer_.get());
    }
  }
  ecc_model_.set_ecc6_decode_cycles(
      config.strong_ecc_t == 6
          ? config.ecc6_decode_cycles
          : ecc::EccModel::decode_cycles_for_strength(config.strong_ecc_t));

  if (config.policy == EccPolicy::kMecc) {
    morph::EngineConfig ec;
    ec.memory_lines = config.geometry.total_lines();
    ec.memory_bytes = config.geometry.capacity_bytes();
    ec.use_mdt = config.mecc_use_mdt;
    ec.mdt_entries = config.mdt_entries;
    ec.use_smd = config.mecc_use_smd;
    ec.smd_mpkc_threshold = config.smd_mpkc_threshold;
    ec.smd_quantum_cycles = config.smd_quantum_cycles;
    engine_ = std::make_unique<morph::Engine>(ec);
    engine_->set_tracer(tracer_.get());
  }

  if (config.fault.enabled && config.policy != EccPolicy::kNoEcc) {
    morph::ShadowConfig sc;
    sc.capacity_lines = config.fault.shadow_lines;
    sc.sample_stride = config.fault.sample_stride;
    sc.transient_read_ber = config.fault.transient_read_ber;
    // Decorrelated from the trace generator's stream but still fully
    // determined by the run seed.
    sc.seed = config.seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull;
    shadow_ = std::make_unique<morph::ShadowMemory>(sc);
    due_policy_ = std::make_unique<memctrl::DuePolicy>(config.fault.due);
    shadow_->set_tracer(tracer_.get());
    due_policy_->set_tracer(tracer_.get());
  }

  for (std::size_t k = 0; k < sources_.size(); ++k) {
    cores_.push_back(std::make_unique<cpu::InOrderCore>(
        cpu::CoreConfig{.base_ipc = base_ipc_, .width = 2}, *sources_[k],
        [this, k](Address line, std::uint64_t tag) {
          const dram::MemCycle now =
              cores_[k]->cycles() / kCpuCyclesPerMemCycle;
          return channel_of(line).enqueue_read(
              line, (static_cast<std::uint64_t>(k) << kStreamTagShift) | tag,
              now);
        },
        [this, k](Address line) {
          const dram::MemCycle now =
              cores_[k]->cycles() / kCpuCyclesPerMemCycle;
          if (!channel_of(line).enqueue_write(line, now)) return false;
          if (engine_) engine_->on_write(line);
          shadow_write(line);
          return true;
        }));
  }
  register_stats();
  if (config.metrics.enabled) {
    metrics_ =
        std::make_unique<tracing::MetricsSampler>(config.metrics, &registry_);
  }
}

void System::register_stats() {
  // Every subsystem registers into the System's registry (ISSUE 2
  // tentpole); snapshot() keys follow docs/STATS.md. Registration order
  // is fixed so snapshots are deterministic. Single-instance shapes keep
  // the historical unsuffixed names; multi-channel / multi-stream
  // instances are namespaced per docs/SCALING.md ("dram.ch1.",
  // "cpu.c1.", ...).
  const bool multi_ch = channels_.size() > 1;
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    Channel* ch = channels_[i].get();
    registry_.register_component(
        multi_ch ? "dram.ch" + std::to_string(i) : std::string("dram"),
        [ch](StatSet& s) { ch->device.export_stats(s); });
  }
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    Channel* ch = channels_[i].get();
    registry_.register_component(
        multi_ch ? "memctrl.ch" + std::to_string(i) : std::string("memctrl"),
        [ch](StatSet& s) { ch->controller.export_stats(s); });
  }
  const bool multi_core = cores_.size() > 1;
  for (std::size_t k = 0; k < cores_.size(); ++k) {
    cpu::InOrderCore* core = cores_[k].get();
    registry_.register_component(
        multi_core ? "cpu.c" + std::to_string(k) : std::string("cpu"),
        [core](StatSet& s) { core->export_stats(s); });
  }
  for (std::size_t k = 0; k < sources_.size(); ++k) {
    trace::TraceSource* src = sources_[k].get();
    // The first trace component additionally surfaces the tracer's
    // ring-buffer drop count as trace.dropped_events (nonzero only, so
    // healthy snapshots keep the committed reference key set): a
    // truncated trace must never be mistaken for a complete one.
    const bool carries_drop_count = k == 0;
    registry_.register_component(
        multi_core ? "trace.c" + std::to_string(k) : std::string("trace"),
        [src, carries_drop_count, this](StatSet& s) {
          src->export_stats(s);
          if (carries_drop_count && tracer_ && tracer_->dropped() > 0) {
            s.add("dropped_events", tracer_->dropped());
          }
        });
  }
  if (engine_) {
    registry_.register_component(
        "mecc", [this](StatSet& s) { engine_->export_stats(s); });
  }
  // "errors" is registered unconditionally: without a fault campaign or
  // trace drops the provider emits nothing, so healthy snapshots keep
  // the key set the committed reference JSONs were built with.
  registry_.register_component("errors", [this](StatSet& s) {
    if (due_policy_) due_policy_->export_stats(s);
    if (shadow_) shadow_->export_stats(s);
    if (tracer_ && tracer_->dropped() > 0) {
      s.add("trace_dropped", tracer_->dropped());
    }
  });
  registry_.register_component("sim", [this](StatSet& s) {
    // Only materialized on failure, so healthy snapshots keep the key
    // set the committed reference JSONs were built with.
    if (drain_guard_exhausted_ > 0) {
      s.add("drain_guard_exhausted", drain_guard_exhausted_);
    }
  });
  registry_.register_component("power", [this](StatSet& s) {
    s.set_gauge("background_mj", cumulative_energy_.background_mj);
    s.set_gauge("activate_mj", cumulative_energy_.activate_mj);
    s.set_gauge("read_mj", cumulative_energy_.read_mj);
    s.set_gauge("write_mj", cumulative_energy_.write_mj);
    s.set_gauge("refresh_mj", cumulative_energy_.refresh_mj);
    s.set_gauge("ecc_mj", cumulative_energy_.ecc_mj);
    s.set_gauge("total_mj", cumulative_energy_.total_mj());
    s.set_gauge("seconds", cumulative_energy_.seconds);
  });
}

void System::flush_observability() {
  // Close the in-flight device spans (row_open, power-state residency)
  // at the current cycle so the trace is complete up to now_. The
  // counter-audit layer calls this before reading tracer()->events();
  // the destructor calls it again before writing files (a second flush
  // only re-closes spans still open since this call).
  for (auto& ch : channels_) {
    ch->device.flush_trace(now_ / kCpuCyclesPerMemCycle);
  }
  if (tracer_) tracer_->set_now(now_);
}

System::~System() {
  if (!tracer_ && !metrics_) return;
  // Close the in-flight device spans first so the final metrics sample
  // sees any resulting ring drops, then take the end-of-run edge sample
  // and write the output files.
  flush_observability();
  if (metrics_) metrics_->sample(now_, "final");
  if (tracer_ && !config_.trace.path.empty()) {
    (void)tracer_->write(config_.trace.path);
  }
  if (metrics_ && !config_.metrics.path.empty()) {
    (void)metrics_->write(config_.metrics.path);
  }
  if (tracer_ && tracer_->dropped() > 0) {
    std::fprintf(stderr,
                 "warning: trace ring dropped %llu events "
                 "(trace.dropped_events); the trace is truncated — raise "
                 "--trace-limit for a complete stream\n",
                 static_cast<unsigned long long>(tracer_->dropped()));
  }
}

Cycle System::decode_latency(Address line_addr, bool forwarded,
                             bool& downgraded) {
  downgraded = false;
  // Forwarded reads were served from the controller's write queue: the
  // data never traversed an ECC decoder.
  if (forwarded) return 0;
  switch (config_.policy) {
    case EccPolicy::kNoEcc:
      return 0;
    case EccPolicy::kSecded:
      ++weak_decodes_;
      return ecc_model_.decode_cycles(ecc::Scheme::kSecded);
    case EccPolicy::kEcc6:
      ++strong_decodes_;
      return ecc_model_.decode_cycles(ecc::Scheme::kEcc6);
    case EccPolicy::kMecc: {
      const morph::ReadDecision d = engine_->on_read(line_addr);
      if (d.downgrade) {
        pending_downgrade_writes_.push_back(line_addr);
        downgraded = true;
      }
      if (d.decode_mode == morph::LineMode::kStrong) {
        ++strong_decodes_;
        return ecc_model_.decode_cycles(ecc::Scheme::kEcc6);
      }
      ++weak_decodes_;
      return ecc_model_.decode_cycles(ecc::Scheme::kSecded);
    }
  }
  return 0;
}

void System::shadow_write(Address line_addr) {
  if (!shadow_) return;
  morph::LineMode mode = morph::LineMode::kWeak;
  switch (config_.policy) {
    case EccPolicy::kNoEcc:  // shadow never built for kNoEcc
    case EccPolicy::kSecded:
      mode = morph::LineMode::kWeak;
      break;
    case EccPolicy::kEcc6:
      mode = morph::LineMode::kStrong;
      break;
    case EccPolicy::kMecc:
      // engine_->on_write already ran: the mode store holds the mode the
      // write was actually encoded with.
      mode = engine_->modes().mode_of(line_addr);
      break;
  }
  shadow_->on_write(line_addr, mode);
}

void System::shadow_read(Address line_addr, bool downgraded) {
  if (!shadow_) return;
  const morph::ShadowReadOutcome o = shadow_->on_read(line_addr, downgraded);
  if (!o.shadowed) return;
  if (o.corrected_bits > 0 || o.mode_repaired) {
    due_policy_->on_ce(o.corrected_bits);
  }
  if (o.silent_corruption) due_policy_->on_silent_corruption();
  if (!o.due) return;

  // DUE: retry the read (rung 0 — cures transient read-path glitches),
  // then climb the degradation ladder.
  due_policy_->on_due();
  bool recovered = false;
  for (unsigned i = 0;
       i < due_policy_->config().max_retries && !recovered; ++i) {
    const morph::ShadowReadOutcome r = shadow_->retry_read(line_addr);
    recovered = !r.due;
    due_policy_->on_retry(recovered);
  }
  if (recovered) return;
  switch (due_policy_->escalate()) {
    case memctrl::DueAction::kScrub:
      (void)shadow_->scrub();
      break;
    case memctrl::DueAction::kForceUpgrade:
      (void)shadow_->force_upgrade();
      if (engine_) engine_->force_upgrade();
      break;
    case memctrl::DueAction::kRefreshFallback:
      if (engine_) engine_->set_degraded(true);
      for (auto& ch : channels_) ch->controller.set_refresh_divider(1);
      invalidate_ff_bounds();  // the refresh schedule just changed
      break;
    case memctrl::DueAction::kNone:
      break;  // ladder exhausted; the DUE was reported upstream
  }
}

void System::handle_completion(const memctrl::ReadCompletion& c, Cycle now) {
  const Cycle data_at_cpu = c.done * kCpuCyclesPerMemCycle;
  bool downgraded = false;
  const Cycle ready = std::max(now, data_at_cpu) +
                      decode_latency(c.line_addr, c.forwarded, downgraded);
  // Forwarded reads never left the controller, so the stored codeword
  // was not decoded and the shadow stays out of the loop.
  if (shadow_ && !c.forwarded) shadow_read(c.line_addr, downgraded);
  pending_data_.push_back({.ready = ready, .tag = c.id, .seq = pending_seq_++});
  std::push_heap(pending_data_.begin(), pending_data_.end(), PendingAfter{});
}

RunResult System::run() { return run_period(config_.instructions); }

void System::sync_refresh_divider() {
  const std::uint32_t divider = engine_->active_refresh_divider();
  if (divider == channels_[0]->controller.config().refresh_divider) return;
  for (auto& ch : channels_) ch->controller.set_refresh_divider(divider);
  invalidate_ff_bounds();  // the refresh schedule just changed
}

bool System::try_channel_span() {
  // Preconditions: unobserved run (the caller is the !kObserved loop;
  // this re-check keeps the contract local), every core stalled on read
  // data, nothing pending system-side. Then until the earliest cycle any
  // channel could deliver a completion — in-flight (next_completion_ready)
  // or still queued (earliest_new_completion_bound) — the channels share
  // no state at all, so they tick concurrently, each with its own
  // event-driven inner skip, bit-identical to the serial channel order.
  if (tracer_ || metrics_) return false;
  for (const auto& c : cores_) {
    if (!c->stalled_on_read()) return false;
  }
  if (!pending_data_.empty() || !pending_downgrade_writes_.empty()) {
    return false;
  }
  const Cycle cur = now_;
  const dram::MemCycle mem_cur = cur / kCpuCyclesPerMemCycle;
  dram::MemCycle t_end = memctrl::kNoMemEvent;
  unsigned busy = 0;
  for (const auto& ch : channels_) {
    const memctrl::Controller& ctrl = ch->controller;
    if (!ctrl.idle()) ++busy;
    const dram::MemCycle done = ctrl.next_completion_ready();
    if (done != memctrl::kNoMemEvent) t_end = std::min(t_end, done);
    const dram::MemCycle fresh = ctrl.earliest_new_completion_bound();
    if (fresh != memctrl::kNoMemEvent) t_end = std::min(t_end, fresh);
  }
  // Every core is stalled, so some channel must eventually complete a
  // read; a kNoMemEvent fold here means an inconsistent state — leave
  // it to the serial path.
  if (t_end == memctrl::kNoMemEvent) return false;
  if (engine_) {
    // The span skips engine ticks: stay strictly below its next event
    // (T_end * 8 <= next_event <=> T_end <= next_event / 8).
    t_end = std::min<dram::MemCycle>(
        t_end, engine_->next_event(cur) / kCpuCyclesPerMemCycle);
  }
  if (busy < 2) return false;  // nothing to overlap
  if (t_end <= mem_cur + 1 || t_end - mem_cur - 1 < kMinSpanTicks) {
    return false;
  }

  // Execute memory ticks (mem_cur, t_end) concurrently, one task per
  // channel. Inside the span no completion becomes ready (t_end is a
  // lower bound on all of them), so collect_completions stays unneeded
  // and each channel's state is private to its task.
  const dram::MemCycle last = t_end - 1;  // last mem tick of the span
  for (auto& chp : channels_) {
    Channel* ch = chp.get();
    channel_pool_->submit([ch, mem_cur, last]() {
      memctrl::Controller& ctrl = ch->controller;
      dram::MemCycle m = mem_cur;
      while (m < last) {
        ++m;
        ctrl.tick(m);
        if (m >= last) break;
        // Per-channel event-driven skip, same contract as the serial
        // fast-forward: next_event is conservative and skip_ticks
        // bulk-applies the only per-tick side effect.
        dram::MemCycle nxt = ctrl.next_event(m);
        if (nxt == memctrl::kNoMemEvent || nxt > last) nxt = last;
        if (nxt > m + 1) {
          ctrl.skip_ticks(nxt - 1 - m);
          m = nxt - 1;
        }
      }
    });
  }
  channel_pool_->wait_idle();

  // Land on the last CPU cycle before mem tick t_end: the serial loop's
  // next iteration executes exactly cycle t_end * 8, where the first
  // completion can be collected.
  const Cycle new_now =
      static_cast<Cycle>(t_end) * kCpuCyclesPerMemCycle - 1;
  for (auto& c : cores_) c->skip_stalled(new_now - cur);
  now_ = new_now;
  invalidate_ff_bounds();  // idle channels' refreshes may have fired in-span
  return true;
}

template <bool kObserved, bool kProfiled>
void System::fast_forward_active(InstCount inst_boundary) {
  // Host-profiler attribution of the bound fold (docs/OBSERVABILITY.md):
  // sampled, and only in the profiled instantiations — the others
  // compile this to nothing (profiler-on runs are routed to a
  // kProfiled loop by run_period).
  static const std::size_t prof_slot =
      prof::HostProfiler::instance().slot("sim", "ff_bound");
  static thread_local std::uint64_t prof_calls = 0;
  std::conditional_t<kProfiled, prof::SampledScopedTimer,
                     prof::NullScopedTimer>
      prof_scope(prof_slot, prof_calls);
  // A crossing is already pending (duplicate checkpoint thresholds):
  // leave this iteration fully to the per-cycle loop.
  if (inst_boundary <= total_retired()) return;
  // Every core must be in a pure state; one impure core forces the
  // per-cycle loop for all of them (they share the clock).
  bool any_gap = false;
  for (const auto& c : cores_) {
    if (c->stalled_on_read()) continue;
    if (!c->in_pure_gap()) return;
    any_gap = true;
  }

  const Cycle cur = now_;
  constexpr Cycle kNoEvent = static_cast<Cycle>(-1);
  Cycle limit = kNoEvent;  // first cycle > cur where anything could act
  // Bounds are folded in cheapest-first: once any of them pins the limit
  // to the very next cycle no skip is possible, so bail before paying
  // for the more expensive scans (notably controller next_event).
  if constexpr (kObserved) {
    if (metrics_) {
      // The sampler fires at exact window boundaries even mid-skip
      // (docs/OBSERVABILITY.md): never jump past the next one.
      limit = metrics_->next_sample();
      if (limit <= cur + 1) return;
    }
  }
  if (!pending_data_.empty()) {
    limit = std::min(limit, pending_data_.front().ready);
    if (limit <= cur + 1) return;
  }

  // Memory-side events, converted from memory ticks back to the CPU
  // cycle at which run_period services them (cycle % 8 == 0).
  const dram::MemCycle mem_cur = cur / kCpuCyclesPerMemCycle;
  if (!pending_downgrade_writes_.empty()) {
    // The drain retries at every memory tick until the queue has room.
    limit = std::min(limit, (mem_cur + 1) * kCpuCyclesPerMemCycle);
    if (limit <= cur + 1) return;
  }
  if (engine_) {
    limit = std::min(limit, engine_->next_event(cur));
    if (limit <= cur + 1) return;
  }
  // Single pass per channel: completion bound, then the next_event bound.
  // A channel with a valid cached bound has no demand at all (the cache
  // condition below), so its completion query is skipped outright — the
  // whole fold is O(busy channels), not O(channels).
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const memctrl::Controller& ctrl = channels_[i]->controller;
    FfBound& cb = ff_bounds_[i];
    dram::MemCycle mem_event;
    if (cb.valid &&
        (cb.value == memctrl::kNoMemEvent || mem_cur < cb.value)) {
      mem_event = cb.value;
    } else {
      const dram::MemCycle done = ctrl.next_completion_ready();
      if (done != memctrl::kNoMemEvent) {
        limit = std::min(limit,
                         std::max(done, mem_cur + 1) * kCpuCyclesPerMemCycle);
        if (limit <= cur + 1) return;
      }
      mem_event = ctrl.next_event(mem_cur);
      // Cacheable only for a channel with no demand at all: then ticks
      // strictly before the bound are state no-ops (the fast-forward
      // contract), so the absolute value stays correct until execution
      // reaches it or an enqueue/divider change invalidates it.
      cb.value = mem_event;
      cb.valid = ctrl.read_queue_depth() == 0 &&
                 ctrl.write_queue_depth() == 0 && !ctrl.has_in_flight();
    }
    if (mem_event != memctrl::kNoMemEvent) {
      limit = std::min(limit, mem_event * kCpuCyclesPerMemCycle);
      if (limit <= cur + 1) return;
    }
  }

  Cycle max_skip;
  if (limit == kNoEvent) {
    if (!any_gap) return;  // nothing can ever wake the cores (unreachable)
    // Fully quiescent memory system; the cores retire autonomously.
    // Advance in large slabs and recompute.
    max_skip = 1'000'000;
  } else {
    if (limit <= cur + 1) return;  // something may act next cycle
    max_skip = limit - cur - 1;
  }

  if (cores_.size() == 1) {
    cpu::InOrderCore& core = *cores_[0];
    Cycle advanced;
    if (core.stalled_on_read()) {
      advanced = max_skip;
      core.skip_stalled(advanced);
    } else {
      advanced = core.advance_gap(max_skip, inst_boundary - core.retired());
      if (advanced == 0) return;
    }
    now_ = cur + advanced;
  } else {
    // Multi-stream: every core advances the SAME number of cycles (one
    // shared clock). Gap cores first bound the advance by their own
    // pure horizon and a per-core instruction budget — remaining/K, so
    // the total crossing cannot happen mid-skip no matter how the
    // retirement distributes across cores — then the folded minimum is
    // applied to all of them.
    const InstCount remaining = inst_boundary - total_retired();
    const InstCount per_core =
        remaining / static_cast<InstCount>(cores_.size());
    if (per_core == 0) return;  // boundary too close for a joint skip
    for (const auto& c : cores_) {
      if (c->stalled_on_read()) continue;
      max_skip = std::min(max_skip, c->gap_cycles_bound(max_skip, per_core));
      if (max_skip == 0) return;
    }
    for (const auto& c : cores_) {
      if (c->stalled_on_read()) {
        c->skip_stalled(max_skip);
      } else {
        // The fold above guarantees the full advance for every gap core.
        const Cycle adv = c->advance_gap(max_skip, per_core);
        assert(adv == max_skip);
        (void)adv;
      }
    }
    now_ = cur + max_skip;
  }
  // Bulk-apply the skipped memory ticks' queue-depth samples.
  const dram::MemCycle skipped = now_ / kCpuCyclesPerMemCycle - mem_cur;
  for (auto& ch : channels_) ch->controller.skip_ticks(skipped);
}

template <bool kObserved, bool kProfiled>
void System::active_loop(InstCount target,
                         const std::vector<InstCount>& checkpoints,
                         std::size_t& next_cp, InstCount snap_retired,
                         RunResult& r, Cycle period_begin) {
  while (total_retired() < target) {
    if (config_.fast_forward) {
      if constexpr (!kObserved) {
        // Channel-parallel span first: it needs all-stalled cores and
        // covers the whole window up to the next completion, which the
        // serial fold below would otherwise walk alone.
        if (channel_pool_) (void)try_channel_span();
      }
      // Absolute retired count the skip must stay strictly below: the
      // period target, or the next checkpoint crossing if one is nearer.
      InstCount boundary = target;
      if (next_cp < checkpoints.size()) {
        boundary = std::min(boundary, snap_retired + checkpoints[next_cp]);
      }
      fast_forward_active<kObserved, kProfiled>(boundary);
    }
    ++now_;
    const Cycle cycle = now_;
    if constexpr (kObserved) {
      if (tracer_) tracer_->set_now(cycle);
      // Window-boundary metrics sample, taken before this cycle's
      // component ticks: identical registry contents in per-cycle and
      // fast-forward modes (the skip bound above lands execution on the
      // boundary cycle exactly).
      if (metrics_ && cycle >= metrics_->next_sample()) {
        metrics_->sample(cycle, "active");
      }
    }
    if (engine_) {
      engine_->tick(cycle);
      if constexpr (kObserved) {
        // Divider transitions (SMD enable, degraded latch) land on the
        // cycle the engine changed state — executed in both fast-forward
        // modes — not on the next mode-dependent memory-cycle boundary.
        sync_refresh_divider();
      }
    }

    if (cycle % kCpuCyclesPerMemCycle == 0) {
      const dram::MemCycle mem_now = cycle / kCpuCyclesPerMemCycle;
      // ECC-Downgrade write-backs go out as soon as the owning channel's
      // write queue has room (off the critical path).
      while (!pending_downgrade_writes_.empty() &&
             channel_of(pending_downgrade_writes_.back())
                 .enqueue_write(pending_downgrade_writes_.back(), mem_now)) {
        pending_downgrade_writes_.pop_back();
        ++downgrades_issued_;
      }
      if constexpr (!kObserved) {
        // Without a tracer the divider sync point is unobservable, and
        // the controllers only read it inside tick(): the memory-cycle
        // boundary is the cheapest equivalent spot.
        if (engine_) sync_refresh_divider();
      }
      for (std::size_t i = 0; i < channels_.size(); ++i) {
        Channel& ch = *channels_[i];
        // Elide the tick for a channel whose cached fast-forward bound
        // proves this cycle is a state no-op (no demand, next event
        // strictly ahead): identical to the full-span skip the fold
        // would have taken, minus the fold. Only fast_forward_active /
        // try_channel_span ever validate a bound, so per-cycle mode
        // always takes the tick.
        const FfBound& cb = ff_bounds_[i];
        if (cb.valid &&
            (cb.value == memctrl::kNoMemEvent || mem_now < cb.value)) {
          ch.controller.skip_ticks(1);
          continue;
        }
        {
          // Sampled host-time attribution of the controller tick, in
          // the profiled instantiations only (same seam as ff_bound).
          static const std::size_t prof_slot =
              prof::HostProfiler::instance().slot("memctrl", "tick");
          static thread_local std::uint64_t prof_calls = 0;
          std::conditional_t<kProfiled, prof::SampledScopedTimer,
                             prof::NullScopedTimer>
              prof_scope(prof_slot, prof_calls);
          ch.controller.tick(mem_now);
        }
        if (ch.controller.has_in_flight()) {
          for (const auto& c : ch.controller.collect_completions(mem_now)) {
            handle_completion(c, cycle);
          }
        }
      }
    }

    // Deliver data whose (transfer + ECC decode) time has elapsed.
    // (ready, seq)-ordered heap pops; each in-order core has at most one
    // read outstanding, routed back by the stream id in the tag's high
    // bits.
    while (!pending_data_.empty() && pending_data_.front().ready <= cycle) {
      const std::uint64_t tag = pending_data_.front().tag;
      std::pop_heap(pending_data_.begin(), pending_data_.end(),
                    PendingAfter{});
      pending_data_.pop_back();
      cores_[tag >> kStreamTagShift]->on_read_data(tag);
    }

    for (auto& c : cores_) c->tick();

    if (next_cp < checkpoints.size() &&
        total_retired() - snap_retired >= checkpoints[next_cp]) {
      r.checkpoints.push_back(
          {.instructions = checkpoints[next_cp],
           .cycles = cycle - period_begin});
      ++next_cp;
    }
  }
}

RunResult System::run_period(InstCount instructions) {
  MECC_PROF_SCOPE("sim", "run_period");
  RunResult r;
  r.benchmark = std::string(profile_.name);
  r.policy = config_.policy;

  // Snapshot for per-period deltas (Fig. 4 lifecycle: a System may run
  // several active periods separated by idle_period calls).
  PeriodSnapshot snap;
  snap.retired = total_retired();
  snap.core_cycles = cores_[0]->cycles();
  for (const auto& c : cores_) {
    snap.reads += c->reads_issued();
    snap.writes += c->writes_issued();
  }
  snap.strong_decodes = strong_decodes_;
  snap.weak_decodes = weak_decodes_;
  snap.downgrades = downgrades_issued_;
  const dram::MemCycle mem_begin = now_ / kCpuCyclesPerMemCycle;
  for (auto& ch : channels_) {
    snap.counters.accumulate(ch->device.counters(mem_begin));
  }
  const Cycle period_begin = now_;
  // Sync the engine's refresh divider at the period boundary (and after
  // every engine tick below) rather than at memory-cycle boundaries:
  // engine transitions happen at cycles both --fast-forward modes
  // execute, so divider trace events carry mode-independent stamps.
  if (tracer_) tracer_->set_now(period_begin);
  if (engine_) sync_refresh_divider();

  std::vector<InstCount> checkpoints = config_.checkpoint_insts;
  std::sort(checkpoints.begin(), checkpoints.end());
  std::size_t next_cp = 0;

  const InstCount target = snap.retired + instructions;
  // Four instantiations: observability (tracer/metrics) and the
  // self-profiler select independently, so a --profile run without a
  // tracer keeps the lean loop plus sampled scopes (docs/PERFORMANCE.md
  // overhead budget). All four produce identical simulated state, so
  // --out stays byte-equal.
  const bool profiled = prof::HostProfiler::enabled();
  if (tracer_ || metrics_) {
    if (profiled) {
      active_loop<true, true>(target, checkpoints, next_cp, snap.retired, r,
                              period_begin);
    } else {
      active_loop<true, false>(target, checkpoints, next_cp, snap.retired, r,
                               period_begin);
    }
  } else if (profiled) {
    active_loop<false, true>(target, checkpoints, next_cp, snap.retired, r,
                             period_begin);
  } else {
    active_loop<false, false>(target, checkpoints, next_cp, snap.retired, r,
                              period_begin);
  }

  const Cycle period_cycles = now_ - period_begin;
  if (tracer_) {
    tracer_->complete(tracing::Category::kEpoch, tracing::kTrackEpoch,
                      "active", period_begin, period_cycles, "instructions",
                      total_retired() - snap.retired);
  }
  r.instructions = total_retired() - snap.retired;
  r.cpu_cycles = period_cycles;
  r.ipc = static_cast<double>(r.instructions) /
          static_cast<double>(period_cycles);
  r.seconds = cycles_to_seconds(period_cycles);
  std::uint64_t reads_now = 0;
  std::uint64_t writes_now = 0;
  for (const auto& c : cores_) {
    reads_now += c->reads_issued();
    writes_now += c->writes_issued();
  }
  r.reads = reads_now - snap.reads;
  r.writes = writes_now - snap.writes;
  r.measured_mpki = static_cast<double>(r.reads + r.writes) * 1000.0 /
                    static_cast<double>(r.instructions);
  r.strong_decodes = strong_decodes_ - snap.strong_decodes;
  r.weak_decodes = weak_decodes_ - snap.weak_decodes;
  r.downgrades = downgrades_issued_ - snap.downgrades;

  // ---- energy accounting (this period's counter deltas, summed over
  // channels; each channel's device sums its ranks' residencies and the
  // power model divides the total by channels * ranks for seconds) ----
  const dram::MemCycle mem_now = now_ / kCpuCyclesPerMemCycle;
  dram::ActivityCounters end_counters;
  for (auto& ch : channels_) {
    end_counters.accumulate(ch->device.counters(mem_now));
  }
  r.energy = power_model_.active_energy(end_counters.since(snap.counters));
  const auto weak_costs = ecc_model_.costs(ecc::Scheme::kSecded);
  const auto strong_costs = ecc_model_.costs(ecc::Scheme::kEcc6);
  double ecc_pj = 0.0;
  ecc_pj +=
      static_cast<double>(r.weak_decodes) * weak_costs.decode_energy_pj;
  ecc_pj +=
      static_cast<double>(r.strong_decodes) * strong_costs.decode_energy_pj;
  const double encode_pj =
      (config_.policy == EccPolicy::kEcc6) ? strong_costs.encode_energy_pj
                                           : weak_costs.encode_energy_pj;
  if (config_.policy != EccPolicy::kNoEcc) {
    ecc_pj += static_cast<double>(r.writes + r.downgrades) * encode_pj;
  }
  r.energy.ecc_mj = ecc_pj * 1e-9;
  r.avg_power_mw = r.energy.average_power_mw();
  r.edp_mj_s = r.energy.total_mj() * r.seconds;

  // ---- MECC observability ----
  if (engine_) {
    r.mdt_marked_regions = engine_->mdt().marked_regions();
    r.mdt_tracked_bytes = engine_->mdt().tracked_bytes();
    if (config_.mecc_use_smd) {
      if (!engine_->smd().downgrade_enabled()) {
        r.frac_downgrade_disabled = 1.0;
      } else {
        // Fraction of *this period* spent with downgrade disabled.
        const Cycle on_at = engine_->smd().enabled_at();
        const Cycle disabled =
            on_at > period_begin ? on_at - period_begin : 0;
        r.frac_downgrade_disabled =
            std::min(1.0, static_cast<double>(disabled) /
                              static_cast<double>(period_cycles));
      }
    }
  }

  // Fold this period's energy into the lifetime totals the "power"
  // registry component reports, then snapshot the whole registry.
  cumulative_energy_.background_mj += r.energy.background_mj;
  cumulative_energy_.activate_mj += r.energy.activate_mj;
  cumulative_energy_.read_mj += r.energy.read_mj;
  cumulative_energy_.write_mj += r.energy.write_mj;
  cumulative_energy_.refresh_mj += r.energy.refresh_mj;
  cumulative_energy_.ecc_mj += r.energy.ecc_mj;
  cumulative_energy_.seconds += r.energy.seconds;

  // Fault campaign, SMD scenario: an active period that ended with the
  // refresh divider slowed (downgrade held off, memory kept all-strong
  // at the idle rate) accumulates retention errors while awake too —
  // modeled as one injection at that divider's BER per period.
  if (shadow_ && engine_ && engine_->active_refresh_divider() > 1) {
    const double ber =
        config_.fault.ber_override >= 0.0
            ? config_.fault.ber_override
            : retention_.bit_failure_probability(
                  0.064 * engine_->active_refresh_divider());
    (void)shadow_->inject_retention_errors(ber);
  }

  r.stats = registry_.snapshot();
  return r;
}

IdleReport System::idle_period(double seconds) {
  MECC_PROF_SCOPE("sim", "idle_period");
  IdleReport rep;
  rep.idle_seconds = seconds;

  // Drain outstanding memory work (writes, in-flight reads) on every
  // channel before the transition; cap the drain generously.
  dram::MemCycle mem_now = now_ / kCpuCyclesPerMemCycle;
  const dram::MemCycle drain_deadline = mem_now + 200'000;
  while (!all_channels_idle() && mem_now < drain_deadline) {
    ++mem_now;
    if (tracer_) tracer_->set_now(mem_now * kCpuCyclesPerMemCycle);
    for (auto& ch : channels_) {
      ch->controller.tick(mem_now);
      for (const auto& c : ch->controller.collect_completions(mem_now)) {
        handle_completion(c, mem_now * kCpuCyclesPerMemCycle);
      }
    }
    if (!config_.fast_forward || all_channels_idle()) continue;
    // Event-driven drain: jump to the next tick where ANY controller
    // could issue, refresh, or complete a read (same bounds as
    // fast_forward_active; the cores are out of the picture here).
    // Already-idle channels still fold their next_event so their
    // refresh schedules keep firing exactly as in the per-cycle drain.
    dram::MemCycle nxt = memctrl::kNoMemEvent;
    for (auto& ch : channels_) {
      dram::MemCycle e = ch->controller.next_event(mem_now);
      const dram::MemCycle done = ch->controller.next_completion_ready();
      if (done != memctrl::kNoMemEvent) {
        e = std::min(e, std::max(done, mem_now + 1));
      }
      nxt = std::min(nxt, e);
    }
    if (nxt > drain_deadline) nxt = drain_deadline;  // covers kNoMemEvent
    if (nxt > mem_now + 1) {
      for (auto& ch : channels_) {
        ch->controller.skip_ticks(nxt - 1 - mem_now);
      }
      mem_now = nxt - 1;
    }
  }
  if (!all_channels_idle()) {
    // The memory system failed to drain within the cap. Fail loudly —
    // a silent force-clear here masks scheduler livelocks — but still
    // complete the transition so long campaigns degrade gracefully.
    ++drain_guard_exhausted_;
    std::size_t reads_left = 0;
    std::size_t writes_left = 0;
    for (const auto& ch : channels_) {
      reads_left += ch->controller.read_queue_depth();
      writes_left += ch->controller.write_queue_depth();
    }
    std::cerr << "mecc: idle_period drain guard exhausted after 200000 "
                 "memory cycles (" << reads_left << " reads / " << writes_left
              << " writes still queued or in flight); forcing the idle "
                 "transition\n";
  }
  now_ = mem_now * kCpuCyclesPerMemCycle;
  while (!pending_data_.empty()) {
    const std::uint64_t tag = pending_data_.front().tag;
    std::pop_heap(pending_data_.begin(), pending_data_.end(), PendingAfter{});
    pending_data_.pop_back();
    cores_[tag >> kStreamTagShift]->on_read_data(tag);
  }
  if (tracer_) tracer_->set_now(now_);
  if (metrics_) metrics_->sample(now_, "idle_enter");

  // ECC-Upgrade (MECC) and the idle refresh rate.
  std::uint32_t divider = 1;
  if (engine_) {
    const morph::UpgradeReport up = engine_->enter_idle();
    rep.lines_upgraded = up.lines_upgraded;
    rep.upgrade_seconds = up.upgrade_seconds;
    now_ += up.upgrade_cycles;
    if (shadow_) {
      // Functional ECC-Upgrade mirror: the codec batch walk is the
      // dominant cold host cost, so it gets its own profile phase.
      MECC_PROF_SCOPE("mecc", "codec_batch");
      shadow_->upgrade_all();
    }
    divider = engine_->idle_refresh_divider();  // 1 once degraded
  } else if (config_.policy == EccPolicy::kEcc6) {
    // Always-strong systems also sleep at 1 s — unless the DUE ladder
    // latched the 64 ms fallback.
    divider = (due_policy_ && due_policy_->degraded()) ? 1 : 16;
  }
  rep.refresh_period_s = 0.064 * divider;

  // Wake every powered-down rank, precharge everything and enter self
  // refresh (whole-channel, every channel together).
  mem_now = now_ / kCpuCyclesPerMemCycle;
  for (auto& ch : channels_) {
    for (std::uint32_t rank = 0; rank < ch->device.geometry().ranks;
         ++rank) {
      if (ch->device.rank_powered_down(rank)) {
        ch->device.exit_power_down(mem_now, rank);
      }
    }
  }
  mem_now += config_.timing.tXP;
  const auto all_precharged = [this]() {
    for (const auto& ch : channels_) {
      if (!ch->device.all_banks_precharged()) return false;
    }
    return true;
  };
  int guard = 0;
  while (!all_precharged() && guard++ < 1000) {
    for (auto& ch : channels_) {
      for (std::uint32_t b = 0; b < ch->device.total_banks(); ++b) {
        if (ch->device.bank(b).row_open() &&
            ch->device.can_precharge(b, mem_now)) {
          ch->device.precharge(b, mem_now);
        }
      }
    }
    ++mem_now;
  }
  std::uint64_t pulses_before = 0;
  for (auto& ch : channels_) {
    pulses_before += ch->device.counters(mem_now).self_refresh_pulses;
  }
  for (auto& ch : channels_) {
    ch->device.enter_self_refresh(mem_now, divider);
  }
  const Cycle sleep_begin = mem_now * kCpuCyclesPerMemCycle;
  now_ = mem_now * kCpuCyclesPerMemCycle + seconds_to_cycles(seconds);
  mem_now = now_ / kCpuCyclesPerMemCycle;
  if (tracer_) tracer_->set_now(now_);
  for (auto& ch : channels_) ch->device.exit_self_refresh(mem_now);
  if (tracer_) {
    tracer_->complete(tracing::Category::kEpoch, tracing::kTrackEpoch,
                      "idle", sleep_begin, now_ - sleep_begin,
                      "refresh_divider", divider);
  }
  std::uint64_t pulses_after = 0;
  for (auto& ch : channels_) {
    pulses_after += ch->device.counters(mem_now).self_refresh_pulses;
  }
  rep.refresh_pulses = pulses_after - pulses_before;
  rep.idle_energy_mj =
      power_model_.idle_power(rep.refresh_period_s).total_mw() * seconds;

  // Fault campaign: one idle period's worth of retention errors lands in
  // the stored codewords, at the BER the retention model assigns to the
  // refresh period this sleep actually used (or the configured override).
  // At the nominal 64 ms period — including after the DUE ladder's
  // refresh fallback latched — cells hold their charge and nothing is
  // injected: degradation trades the refresh savings for correctness.
  if (shadow_ && rep.refresh_period_s > 0.064) {
    const double ber =
        config_.fault.ber_override >= 0.0
            ? config_.fault.ber_override
            : retention_.bit_failure_probability(rep.refresh_period_s);
    rep.injected_ber = ber;
    rep.injected_bits = shadow_->inject_retention_errors(ber);
  }

  // Wake up: refresh schedules restart, SMD re-arms.
  for (auto& ch : channels_) ch->controller.resync_refresh(mem_now);
  invalidate_ff_bounds();  // schedules resynced, SR state cycled
  if (engine_) engine_->wake(now_);
  if (metrics_) metrics_->sample(now_, "wake");
  return rep;
}

}  // namespace mecc::sim
