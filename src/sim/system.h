// Full-system simulation: in-order core -> MECC engine -> memory
// controller -> LPDDR device, with Micron-style power accounting.
//
// One System instance simulates one *active period* of one benchmark
// under one ECC policy. Idle-mode power and the idle-entry ECC-Upgrade
// are analytic (paper Eq. 1) and exposed via the MECC engine and
// PowerModel; see sim/experiment.h for the idle/active composition used
// by Figs. 8-10.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/trace.h"
#include "common/types.h"
#include "cpu/core.h"
#include "dram/device.h"
#include "ecc/ecc_model.h"
#include "mecc/engine.h"
#include "mecc/shadow_memory.h"
#include "memctrl/address_map.h"
#include "memctrl/controller.h"
#include "memctrl/due_policy.h"
#include "power/power_model.h"
#include "sim/thread_pool.h"
#include "reliability/retention_model.h"
#include "trace/benchmarks.h"
#include "trace/trace_source.h"

namespace mecc::sim {

enum class EccPolicy : std::uint8_t { kNoEcc, kSecded, kEcc6, kMecc };

[[nodiscard]] std::string policy_name(EccPolicy p);

/// Fault-campaign knobs: attach a sampled-set functional shadow memory
/// (morph::ShadowMemory) to the System so idle periods at a slowed
/// refresh inject real retention errors into stored codewords, every
/// shadowed access runs through the real LineCodec, and DUEs climb the
/// memctrl::DuePolicy degradation ladder. docs/RELIABILITY.md.
struct FaultCampaignConfig {
  bool enabled = false;  // requires an ECC policy (not kNoEcc)
  /// Shadowed-line capacity and address sampling (see ShadowConfig).
  std::size_t shadow_lines = 4096;
  Address sample_stride = 1;
  /// Idle-period BER override; < 0 derives the BER from the
  /// RetentionModel at the effective idle refresh period.
  double ber_override = -1.0;
  /// Per-read transient bit error rate (read-path glitches a controller
  /// retry can cure). 0 = persistent retention errors only.
  double transient_read_ber = 0.0;
  /// DUE escalation ladder configuration.
  memctrl::DuePolicyConfig due{};
};

struct SystemConfig {
  EccPolicy policy = EccPolicy::kNoEcc;
  InstCount instructions = 20'000'000;

  // Scaled-slice knobs (DESIGN.md S3). 0 = auto: footprints shrink by the
  // same factor as the instruction slice (instructions / 4e9), preserving
  // the paper's first-touch-per-access and downgrade-traffic ratios at
  // any slice length.
  double footprint_scale = 0.0;
  // MPKI phase segment length; 0 = auto (instructions / 8, so every run
  // sees the full phase schedule regardless of slice length).
  std::uint64_t phase_length_insts = 0;

  Cycle ecc6_decode_cycles = 30;   // Fig. 12 sweeps 15..60

  // Event-driven fast-forward (docs/PERFORMANCE.md): when every
  // component is provably quiescent, run_period jumps straight to the
  // next event instead of ticking cycle by cycle. Bit-identical to the
  // per-cycle reference loop (--fast-forward=off keeps that loop as an
  // escape hatch and for the equivalence tests).
  bool fast_forward = true;

  // Strong-ECC correction strength for MECC / always-strong runs. 6 is
  // the paper's choice; other values exercise the closing claim that
  // MECC morphs between arbitrary ECC levels (decode latency then follows
  // EccModel::decode_cycles_for_strength, and ecc6_decode_cycles is
  // ignored).
  std::size_t strong_ecc_t = 6;

  // MECC options.
  bool mecc_use_mdt = true;
  std::size_t mdt_entries = 1024;
  bool mecc_use_smd = false;
  double smd_mpkc_threshold = 2.0;
  Cycle smd_quantum_cycles = 1'024'000;  // 64 ms / 100 (scaled)

  // Record cumulative cycles when retiring past these instruction counts
  // (Fig. 13 transition study).
  std::vector<InstCount> checkpoint_insts;

  std::uint64_t seed = 1;

  // Replay a USIMM-style trace file instead of the synthetic generator
  // (the profile then only supplies base_ipc calibration).
  std::string trace_file;

  dram::Geometry geometry{};
  dram::Timing timing{};
  memctrl::ControllerConfig controller{};
  power::PowerParams power{};
  FaultCampaignConfig fault{};

  // Observability (docs/OBSERVABILITY.md): event tracing and the
  // windowed metrics timeline. Both default-disabled; when disabled the
  // hooks cost one null check each.
  tracing::TraceConfig trace{};
  tracing::MetricsConfig metrics{};

  // Nominal read latency used to back out each benchmark's non-memory
  // retire rate from its Table III IPC.
  double calibration_read_latency_cycles = 140.0;

  // ---- multi-channel / multi-rank / multi-stream shape ----
  // (docs/SCALING.md). geometry.channels x geometry.ranks size the
  // memory system; these knobs pick the routing and the request load.
  // All defaults reproduce the historical 1-channel single-stream
  // System bit for bit.
  //
  // Channel/rank/bank interleave for the system-level router (also
  // copied into every controller's internal decode map).
  memctrl::Interleave interleave = memctrl::Interleave::kLine;
  // Independent request streams: K in-order cores, each with its own
  // decorrelated generator over its own slice of physical memory, all
  // retiring on one shared clock. Trace-file replay forces 1.
  std::uint32_t streams = 1;
  // >0: during unobserved fast-forward runs, tick independent channels
  // in parallel on a pool of this many threads over provably
  // synchronization-free spans (bit-identical to the serial order).
  unsigned channel_threads = 0;
};

struct Checkpoint {
  InstCount instructions = 0;
  Cycle cycles = 0;
  [[nodiscard]] double ipc() const {
    return cycles == 0 ? 0.0
                       : static_cast<double>(instructions) /
                             static_cast<double>(cycles);
  }
};

/// Outcome of one idle period (the Fig. 4 right-hand state).
struct IdleReport {
  std::uint64_t lines_upgraded = 0;   // ECC-Upgrade walk on entry
  double upgrade_seconds = 0.0;
  double idle_seconds = 0.0;          // time asleep in self refresh
  double idle_energy_mj = 0.0;        // refresh + background while asleep
  std::uint64_t refresh_pulses = 0;   // internal SR refreshes performed
  double refresh_period_s = 0.064;    // effective period while asleep

  // Fault campaign (when SystemConfig::fault.enabled): retention errors
  // injected into the shadow memory during this idle period.
  std::uint64_t injected_bits = 0;
  double injected_ber = 0.0;
};

struct RunResult {
  std::string benchmark;
  EccPolicy policy = EccPolicy::kNoEcc;
  InstCount instructions = 0;
  Cycle cpu_cycles = 0;
  double ipc = 0.0;
  double seconds = 0.0;
  double measured_mpki = 0.0;

  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t strong_decodes = 0;  // reads decoded with ECC-6
  std::uint64_t weak_decodes = 0;
  std::uint64_t downgrades = 0;      // ECC-Downgrade write-backs generated

  power::ActiveEnergy energy;        // memory energy over the run
  double avg_power_mw = 0.0;
  double edp_mj_s = 0.0;             // energy-delay product

  // MECC observability.
  std::uint64_t mdt_marked_regions = 0;
  std::uint64_t mdt_tracked_bytes = 0;
  double frac_downgrade_disabled = 0.0;  // SMD: share of run disabled

  std::vector<Checkpoint> checkpoints;
  // Snapshot of the System's StatRegistry: every component's counters /
  // gauges / distributions under hierarchical `component.stat` keys
  // (dram., memctrl., cpu., mecc., power., trace. — docs/STATS.md).
  // Cumulative over the System's lifetime, like the registry itself.
  StatSet stats;

  // Host-side observability, stamped by sim::run_benchmark: wall-clock
  // time of the run and retired-instruction throughput (million retired
  // instructions per wall second). NOT part of the simulated output —
  // excluded from sim::same_simulated_result and different run to run.
  double wall_seconds = 0.0;
  double wall_mips = 0.0;
};

class System {
 public:
  System(const trace::BenchmarkProfile& profile, const SystemConfig& config);

  /// Injects a custom trace source (e.g. an LLC-filtered CPU stream or a
  /// programmatic capture) instead of the config-selected one. The
  /// profile still supplies the base-IPC calibration.
  System(const trace::BenchmarkProfile& profile, const SystemConfig& config,
         std::unique_ptr<trace::TraceSource> source);

  ~System();

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  /// Simulates one active period of `config.instructions` instructions.
  /// Equivalent to run_period(config.instructions).
  [[nodiscard]] RunResult run();

  /// Simulates an *additional* active period (Fig. 4 lifecycle: call
  /// run_period / idle_period alternately on one System). The result
  /// covers just this period.
  [[nodiscard]] RunResult run_period(InstCount instructions);

  /// Transitions to idle: MECC performs the (MDT-guided) ECC-Upgrade and
  /// drops to the 1 s self-refresh period; other policies self-refresh
  /// at 64 ms. The device sleeps for `seconds`, then wakes (SMD re-arms).
  [[nodiscard]] IdleReport idle_period(double seconds);

  /// The MECC engine (valid only for EccPolicy::kMecc; null otherwise).
  [[nodiscard]] morph::Engine* engine() { return engine_.get(); }

  /// The fault-campaign shadow memory and DUE policy (valid only when
  /// SystemConfig::fault.enabled with an ECC policy; null otherwise).
  [[nodiscard]] morph::ShadowMemory* shadow() { return shadow_.get(); }
  [[nodiscard]] memctrl::DuePolicy* due_policy() { return due_policy_.get(); }

  /// Non-memory retire rate backed out of the paper IPC (exposed for
  /// tests / Table III reporting).
  [[nodiscard]] double base_ipc() const { return base_ipc_; }

  /// The unified stats registry every subsystem registers into at
  /// construction (docs/STATS.md). RunResult.stats carries snapshot();
  /// tests and embedders can also snapshot mid-run.
  [[nodiscard]] const StatRegistry& registry() const { return registry_; }

  /// The event tracer (null unless SystemConfig::trace.enabled). The
  /// trace file is written at destruction; tests can read json() any
  /// time.
  [[nodiscard]] tracing::Tracer* tracer() { return tracer_.get(); }

  /// The windowed metrics sampler (null unless
  /// SystemConfig::metrics.enabled). The JSONL file is written at
  /// destruction; tests can read jsonl() any time.
  [[nodiscard]] tracing::MetricsSampler* metrics() { return metrics_.get(); }

  /// Closes the in-flight trace spans (row_open, power-state residency)
  /// at the current cycle. The counter-audit layer (sim/stat_audit.h)
  /// calls this before replaying tracer()->events() against a stats
  /// snapshot; a no-op without a tracer. Idempotent at a fixed cycle.
  void flush_observability();

 private:
  struct PendingData {
    Cycle ready = 0;
    std::uint64_t tag = 0;
    std::uint64_t seq = 0;  // arrival order, ties broken FIFO
  };
  // Heap comparator: pending_data_ is a min-heap on (ready, seq), so
  // delivery pops the earliest-ready (then oldest) entry in O(log n)
  // instead of the old erase-from-the-middle linear scan.
  struct PendingAfter {
    [[nodiscard]] bool operator()(const PendingData& a,
                                  const PendingData& b) const {
      return a.ready != b.ready ? a.ready > b.ready : a.seq > b.seq;
    }
  };

  /// One memory channel: a Device and the Controller that owns it. The
  /// Device carries the FULL geometry (it never consults
  /// geometry.channels internally), so the controller's AddressMap
  /// decodes routed *global* addresses to the right rank/bank/row/col
  /// without any channel-id plumbing.
  struct Channel {
    dram::Device device;
    memctrl::Controller controller;
    Channel(const dram::Geometry& g, const dram::Timing& t,
            const memctrl::ControllerConfig& c)
        : device(g, t), controller(device, c) {}
  };

  // Read tags carry the issuing stream in the high bits (stream 0's tags
  // are unchanged, so single-stream traces stay byte-identical).
  static constexpr std::uint32_t kStreamTagShift = 48;

  void init_engine_and_core();
  void register_stats();
  void handle_completion(const memctrl::ReadCompletion& c, Cycle now);
  /// Controller owning `line` under the system-level interleave. Any
  /// enqueue invalidates the channel's cached fast-forward bound.
  [[nodiscard]] memctrl::Controller& channel_of(Address line) {
    const std::uint32_t ch = route_.decode(line).channel;
    ff_bounds_[ch].valid = false;
    return channels_[ch]->controller;
  }
  [[nodiscard]] InstCount total_retired() const {
    InstCount t = 0;
    for (const auto& c : cores_) t += c->retired();
    return t;
  }
  [[nodiscard]] bool all_channels_idle() const {
    for (const auto& ch : channels_) {
      if (!ch->controller.idle()) return false;
    }
    return true;
  }
  /// Channel-parallel fast-forward span (docs/SCALING.md): when every
  /// core is stalled on read data and nothing is pending system-side,
  /// the earliest cycle ANY channel can deliver a completion bounds a
  /// span inside which the channels share no state at all — so they
  /// tick concurrently on channel_pool_, bit-identically to the serial
  /// order. Returns true when a span was executed (now_ advanced).
  bool try_channel_span();
  /// Propagates the engine's active refresh divider to every controller
  /// (requires engine_). Pure no-op — and no cache invalidation — when
  /// the divider is already current.
  void sync_refresh_divider();
  /// Fast-forward step (docs/PERFORMANCE.md): called at the top of the
  /// run_period loop. When the core is in a pure state (stalled on read
  /// data or retiring gap instructions) this computes the minimum of
  /// every component's next_event bound and advances now_ — with the
  /// bulk-equivalent counter updates — to just before it. No-op when any
  /// component might act on the very next cycle. `inst_boundary` is the
  /// absolute retired-instruction count (period target or next
  /// checkpoint crossing) the skip must stay strictly below, so those
  /// crossings still happen under per-cycle control. kObserved mirrors
  /// active_loop's: only the observed instantiation folds the metrics
  /// window boundary into the skip bound; kProfiled adds the sampled
  /// host-time scope.
  template <bool kObserved, bool kProfiled>
  void fast_forward_active(InstCount inst_boundary);
  /// The run_period inner loop, compiled per (kObserved, kProfiled):
  /// kObserved=true carries the tracer clock, windowed metrics samples
  /// and the per-cycle refresh-divider sync (mode-independent trace
  /// stamps); kProfiled=true carries only the self-profiler's sampled
  /// scopes, so a --profile run without a tracer/metrics sink keeps the
  /// lean loop (per-cycle observability checks and the 8x-denser
  /// divider sync would dwarf the scopes' own cost). The <false, false>
  /// instantiation is statically free of all of it — the
  /// zero-cost-when-off contract in docs/OBSERVABILITY.md is held by
  /// the compiler, not by per-cycle null checks.
  template <bool kObserved, bool kProfiled>
  void active_loop(InstCount target, const std::vector<InstCount>& checkpoints,
                   std::size_t& next_cp, InstCount snap_retired, RunResult& r,
                   Cycle period_begin);
  [[nodiscard]] Cycle decode_latency(Address line_addr, bool forwarded,
                                     bool& downgraded);
  // Fault-campaign hooks (no-ops when the shadow is disabled).
  void shadow_write(Address line_addr);
  void shadow_read(Address line_addr, bool downgraded);

  trace::BenchmarkProfile profile_;
  SystemConfig config_;
  double base_ipc_;

  // Channels in index order; all per-tick iteration is in this fixed
  // order, so multi-channel execution stays deterministic.
  std::vector<std::unique_ptr<Channel>> channels_;
  memctrl::AddressMap route_;  // system-level channel routing
  std::vector<std::unique_ptr<trace::TraceSource>> sources_;
  std::vector<std::unique_ptr<cpu::InOrderCore>> cores_;
  std::unique_ptr<ThreadPool> channel_pool_;  // channel-parallel spans
  std::unique_ptr<morph::Engine> engine_;
  ecc::EccModel ecc_model_;
  power::PowerModel power_model_;

  // Fault campaign (SystemConfig::fault.enabled): functional shadow +
  // DUE degradation ladder + the retention model the idle-period BER is
  // drawn from.
  std::unique_ptr<morph::ShadowMemory> shadow_;
  std::unique_ptr<memctrl::DuePolicy> due_policy_;
  reliability::RetentionModel retention_;

  StatRegistry registry_;
  power::ActiveEnergy cumulative_energy_;  // across all active periods

  // Observability (created in init_engine_and_core when enabled; every
  // component holds a raw Tracer* that stays null otherwise).
  std::unique_ptr<tracing::Tracer> tracer_;
  std::unique_ptr<tracing::MetricsSampler> metrics_;

  // Cached per-channel next_event bound for the fast-forward fold. For
  // a channel with empty queues and nothing in flight, next_event(now)
  // is an absolute cycle (or kNoMemEvent) that stays correct until
  // execution reaches it — ticks strictly before the bound are state
  // no-ops for such a channel, which is exactly the fast-forward
  // contract — or until the System perturbs the channel from outside:
  // an enqueue (channel_of), a refresh-divider change, resync, or the
  // idle_period machinery, all of which invalidate. Busy channels are
  // never cached. Cuts the fold from O(channels) next_event scans per
  // skip to one scan per *busy* channel (docs/SCALING.md).
  struct FfBound {
    dram::MemCycle value = 0;
    bool valid = false;
  };
  std::vector<FfBound> ff_bounds_;
  void invalidate_ff_bounds() {
    for (auto& b : ff_bounds_) b.valid = false;
  }

  std::vector<PendingData> pending_data_;  // min-heap, see PendingAfter
  std::uint64_t pending_seq_ = 0;
  std::vector<Address> pending_downgrade_writes_;
  // idle_period drain-guard trips (exported as sim.drain_guard_exhausted
  // only when nonzero, so healthy snapshots keep their key set).
  std::uint64_t drain_guard_exhausted_ = 0;
  std::uint64_t strong_decodes_ = 0;
  std::uint64_t weak_decodes_ = 0;
  std::uint64_t downgrades_issued_ = 0;

  // Multi-period state (Fig. 4 lifecycle).
  Cycle now_ = 0;  // absolute CPU cycles, including idle jumps
  struct PeriodSnapshot {
    InstCount retired = 0;
    Cycle core_cycles = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t strong_decodes = 0;
    std::uint64_t weak_decodes = 0;
    std::uint64_t downgrades = 0;
    dram::ActivityCounters counters;
  };
  PeriodSnapshot period_start_;
};

}  // namespace mecc::sim
