#include "sim/telemetry.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/fsio.h"
#include "common/json.h"

namespace mecc::sim::fleet {

namespace {

void sketch_json(JsonWriter& w, const QuantileSketch& s) {
  w.begin_object();
  w.key("count");
  w.value(s.count());
  w.key("sum");
  w.value(s.sum());
  w.key("min");
  w.value(s.min());
  w.key("max");
  w.value(s.max());
  w.key("b");
  w.begin_array();
  for (const auto& [index, n] : s.buckets()) {
    w.begin_array();
    w.value(static_cast<std::int64_t>(index));
    w.value(n);
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

/// Position just past "\"key\":" in doc, from `from`; npos when absent.
[[nodiscard]] std::size_t find_key(const std::string& doc,
                                   const std::string& key,
                                   std::size_t from = 0) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = doc.find(needle, from);
  return pos == std::string::npos ? std::string::npos : pos + needle.size();
}

[[nodiscard]] bool scan_u64(const std::string& doc, const std::string& key,
                            std::uint64_t* out, std::size_t from = 0) {
  const std::size_t pos = find_key(doc, key, from);
  if (pos == std::string::npos) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(doc.c_str() + pos, &end, 10);
  if (end == doc.c_str() + pos || errno != 0) return false;
  *out = v;
  return true;
}

[[nodiscard]] bool scan_double(const std::string& doc, const std::string& key,
                               double* out, std::size_t from = 0) {
  const std::size_t pos = find_key(doc, key, from);
  if (pos == std::string::npos) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(doc.c_str() + pos, &end);
  if (end == doc.c_str() + pos || errno != 0) return false;
  *out = v;
  return true;
}

/// Parses the sketch object serialized by sketch_json at "key": {...}.
/// Sketch objects contain no nested objects, so the first '}' after the
/// key closes it.
[[nodiscard]] bool scan_sketch(const std::string& doc, const std::string& key,
                               QuantileSketch* out, std::size_t from = 0) {
  const std::size_t pos = find_key(doc, key, from);
  if (pos == std::string::npos) return false;
  const std::size_t close = doc.find('}', pos);
  if (close == std::string::npos) return false;
  const std::string obj = doc.substr(pos, close - pos + 1);
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  if (!scan_u64(obj, "count", &count) || !scan_double(obj, "sum", &sum) ||
      !scan_double(obj, "min", &min) || !scan_double(obj, "max", &max)) {
    return false;
  }
  std::size_t p = find_key(obj, "b");
  if (p == std::string::npos || p >= obj.size() || obj[p] != '[') {
    return false;
  }
  ++p;  // past the outer '['
  std::map<std::int32_t, std::uint64_t> buckets;
  while (p < obj.size() && obj[p] != ']') {
    if (obj[p] == ',') {
      ++p;
      continue;
    }
    if (obj[p] != '[') return false;
    ++p;
    errno = 0;
    char* end = nullptr;
    const long idx = std::strtol(obj.c_str() + p, &end, 10);
    if (end == obj.c_str() + p || errno != 0) return false;
    p = static_cast<std::size_t>(end - obj.c_str());
    if (p >= obj.size() || obj[p] != ',') return false;
    ++p;
    const unsigned long long n = std::strtoull(obj.c_str() + p, &end, 10);
    if (end == obj.c_str() + p || errno != 0) return false;
    p = static_cast<std::size_t>(end - obj.c_str());
    if (p >= obj.size() || obj[p] != ']') return false;
    ++p;
    buckets[static_cast<std::int32_t>(idx)] = n;
  }
  if (p >= obj.size()) return false;
  out->restore(buckets, count, sum, min, max);
  return true;
}

}  // namespace

std::string progress_file(const std::string& state_dir, std::uint64_t shard) {
  return state_dir + "/progress_" + std::to_string(shard) + ".jsonl";
}

std::string progress_record_json(const ShardProgress& p) {
  JsonWriter w(-1);
  w.begin_object();
  w.key("schema");
  w.value(kProgressSchema);
  w.key("shard");
  w.value(p.shard);
  w.key("attempt");
  w.value(p.attempt);
  w.key("devices_total");
  w.value(p.devices_total);
  w.key("devices_done");
  w.value(p.devices_done);
  w.key("done");
  w.value(std::uint64_t{p.done ? 1u : 0u});
  w.key("due_events");
  w.value(p.due_events);
  w.key("ce_events");
  w.value(p.ce_events);
  w.key("energy_sum");
  w.value(p.energy_mj_per_day_sum);
  w.key("due_rate");
  sketch_json(w, p.due_rate);
  w.key("energy");
  sketch_json(w, p.energy);
  w.end_object();
  return w.str();
}

bool parse_progress_record(const std::string& line, ShardProgress* out) {
  if (line.find(std::string("\"schema\":\"") + kProgressSchema + "\"") ==
      std::string::npos) {
    return false;
  }
  ShardProgress p;
  std::uint64_t done = 0;
  if (!scan_u64(line, "shard", &p.shard) ||
      !scan_u64(line, "attempt", &p.attempt) ||
      !scan_u64(line, "devices_total", &p.devices_total) ||
      !scan_u64(line, "devices_done", &p.devices_done) ||
      !scan_u64(line, "done", &done) ||
      !scan_u64(line, "due_events", &p.due_events) ||
      !scan_u64(line, "ce_events", &p.ce_events) ||
      !scan_double(line, "energy_sum", &p.energy_mj_per_day_sum) ||
      !scan_sketch(line, "due_rate", &p.due_rate) ||
      !scan_sketch(line, "energy", &p.energy)) {
    return false;
  }
  p.done = done != 0;
  // Accept exactly the serializer's output, nothing weaker: the scans
  // above locate fields by key, so a truncation that drops only the
  // record's closing brace would still scan clean. Doubles print
  // %.17g (round-trip exact), so re-serializing the parsed record
  // reproduces an untorn line byte for byte.
  if (progress_record_json(p) != line) return false;
  *out = std::move(p);
  return true;
}

std::vector<std::string> ProgressTailer::poll() {
  std::vector<std::string> lines;
  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) return lines;
  char buf[1 << 14];
  for (;;) {
    const ssize_t n = ::pread(fd, buf, sizeof buf,
                              static_cast<off_t>(offset_));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    offset_ += static_cast<std::uint64_t>(n);
    partial_.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = partial_.find('\n', start);
    if (nl == std::string::npos) break;
    lines.push_back(partial_.substr(start, nl - start));
    start = nl + 1;
  }
  partial_.erase(0, start);
  return lines;
}

std::string snapshot_json(const FleetSnapshot& s) {
  JsonWriter w(-1);
  w.begin_object();
  w.key("schema");
  w.value(kTelemetrySchema);
  w.key("t_s");
  w.value(s.t_s);
  w.key("devices_total");
  w.value(s.devices_total);
  w.key("devices_done");
  w.value(s.devices_done);
  w.key("shards_total");
  w.value(s.shards_total);
  w.key("shards_done");
  w.value(s.shards_done);
  w.key("shards_degraded");
  w.value(s.shards_degraded);
  w.key("shards_running");
  w.value(s.shards_running);
  w.key("shards_pending");
  w.value(s.shards_pending);
  w.key("coverage");
  w.value(s.coverage);
  w.key("throughput_devices_per_s");
  w.value(s.throughput_devices_per_s);
  w.key("eta_s");
  w.value(s.eta_s);
  w.key("due_events");
  w.value(s.due_events);
  w.key("ce_events");
  w.value(s.ce_events);
  w.key("energy_mj_per_day_sum");
  w.value(s.energy_mj_per_day_sum);
  w.key("sample_count");
  w.value(s.due_rate.count());
  w.key("due_per_year_p50");
  w.value(s.due_rate.quantile(0.50));
  w.key("due_per_year_p99");
  w.value(s.due_rate.quantile(0.99));
  w.key("due_per_year_p999");
  w.value(s.due_rate.quantile(0.999));
  w.key("energy_mj_per_day_p50");
  w.value(s.energy.quantile(0.50));
  w.key("energy_mj_per_day_p99");
  w.value(s.energy.quantile(0.99));
  w.key("retries");
  w.value(s.retries);
  w.key("workers_crashed");
  w.value(s.workers_crashed);
  w.key("final");
  w.value(s.final_snapshot);
  w.end_object();
  return w.str();
}

std::string render_dashboard(const FleetSnapshot& s) {
  char line[256];
  std::string out;
  const double device_frac =
      s.devices_total == 0
          ? 0.0
          : static_cast<double>(s.devices_done) /
                static_cast<double>(s.devices_total);
  constexpr int kBarWidth = 24;
  const int filled = static_cast<int>(device_frac * kBarWidth + 0.5);
  std::string bar;
  for (int i = 0; i < kBarWidth; ++i) bar += i < filled ? '#' : '.';
  std::snprintf(line, sizeof line,
                "mecc fleet  [%s] %5.1f%%  %llu/%llu devices%s\n",
                bar.c_str(), 100.0 * device_frac,
                static_cast<unsigned long long>(s.devices_done),
                static_cast<unsigned long long>(s.devices_total),
                s.final_snapshot ? "  (final)" : "");
  out += line;
  std::snprintf(line, sizeof line,
                "  shards %llu/%llu done, %llu running, %llu pending, "
                "%llu degraded | retries %llu, crashed %llu\n",
                static_cast<unsigned long long>(s.shards_done),
                static_cast<unsigned long long>(s.shards_total),
                static_cast<unsigned long long>(s.shards_running),
                static_cast<unsigned long long>(s.shards_pending),
                static_cast<unsigned long long>(s.shards_degraded),
                static_cast<unsigned long long>(s.retries),
                static_cast<unsigned long long>(s.workers_crashed));
  out += line;
  if (s.eta_s >= 0.0) {
    std::snprintf(line, sizeof line,
                  "  %.0f devices/s | eta %.1fs | elapsed %.1fs | due %llu "
                  "(p99 %.3g/yr) | ce %llu\n",
                  s.throughput_devices_per_s, s.eta_s, s.t_s,
                  static_cast<unsigned long long>(s.due_events),
                  s.due_rate.quantile(0.99),
                  static_cast<unsigned long long>(s.ce_events));
  } else {
    std::snprintf(line, sizeof line,
                  "  warming up | elapsed %.1fs | due %llu | ce %llu\n",
                  s.t_s, static_cast<unsigned long long>(s.due_events),
                  static_cast<unsigned long long>(s.ce_events));
  }
  out += line;
  return out;
}

void TelemetryHub::poll_shard(std::uint64_t shard) {
  if (!enabled()) return;
  auto [it, inserted] = tailers_.try_emplace(
      shard, ProgressTailer(progress_file(cfg_.state_dir, shard)));
  for (const std::string& line : it->second.poll()) {
    ShardProgress p;
    if (!parse_progress_record(line, &p) || p.shard != shard) continue;
    ShardProgress& slot = live_[shard];
    // Attempts are ordered: a newer attempt always replaces the slot
    // (its walk restarted, so a lower devices_done is legitimate), the
    // same attempt only ever advances, and a killed attempt's record
    // that flushes late is ignored outright — it describes work the
    // retry has already replaced.
    if (p.attempt > slot.attempt ||
        (p.attempt == slot.attempt && p.devices_done >= slot.devices_done)) {
      slot = std::move(p);
    }
  }
}

void TelemetryHub::retire_shard(std::uint64_t shard) { live_.erase(shard); }

void TelemetryHub::publish(double now_s, const CompletedAggregate& done,
                           std::uint64_t shards_running,
                           std::uint64_t shards_pending,
                           bool final_snapshot) {
  if (!enabled()) return;
  if (start_s_ < 0.0) start_s_ = now_s;
  FleetSnapshot s;
  s.t_s = now_s - start_s_;
  s.devices_total = cfg_.devices_total;
  s.shards_total = cfg_.shards_total;
  s.shards_done = done.shards_done;
  s.shards_degraded = done.shards_degraded;
  s.shards_running = shards_running;
  s.shards_pending = shards_pending;
  s.coverage = cfg_.shards_total == 0
                   ? 0.0
                   : static_cast<double>(done.shards_done) /
                         static_cast<double>(cfg_.shards_total);
  s.due_events = done.due_events;
  s.ce_events = done.ce_events;
  s.energy_mj_per_day_sum = done.energy_mj_per_day_sum;
  s.retries = done.retries;
  s.workers_crashed = done.workers_crashed;
  if (done.due_rate != nullptr) s.due_rate = *done.due_rate;
  if (done.energy != nullptr) s.energy = *done.energy;
  std::uint64_t devices = done.devices_done;
  for (const auto& [shard, p] : live_) {
    devices += p.devices_done;
    s.due_events += p.due_events;
    s.ce_events += p.ce_events;
    s.energy_mj_per_day_sum += p.energy_mj_per_day_sum;
    s.due_rate.merge(p.due_rate);
    s.energy.merge(p.energy);
  }
  // Monotone, clamped: a killed worker's lost partial progress or a
  // racing final record must never move the published number backwards
  // or past the fleet size.
  monotone_devices_done_ = std::max(monotone_devices_done_, devices);
  s.devices_done = std::min(monotone_devices_done_, cfg_.devices_total);

  if (s.t_s > last_rate_t_s_ && s.devices_done >= last_rate_devices_) {
    const double inst =
        static_cast<double>(s.devices_done - last_rate_devices_) /
        (s.t_s - last_rate_t_s_);
    ewma_rate_ = ewma_rate_ == 0.0 ? inst : 0.4 * inst + 0.6 * ewma_rate_;
  }
  last_rate_t_s_ = s.t_s;
  last_rate_devices_ = s.devices_done;
  s.throughput_devices_per_s = ewma_rate_;
  if (ewma_rate_ > 1e-9 && s.devices_total >= s.devices_done) {
    s.eta_s = static_cast<double>(s.devices_total - s.devices_done) /
              ewma_rate_;
  }
  s.final_snapshot = final_snapshot;

  if (!cfg_.feed_path.empty()) {
    // Telemetry must never kill a campaign, but an unwritable feed
    // shouldn't fail silently either: warn once and keep going.
    if (!append_file(cfg_.feed_path, snapshot_json(s) + "\n") &&
        !feed_warned_) {
      feed_warned_ = true;
      std::fprintf(stderr,
                   "warning: cannot append --telemetry-out feed '%s'\n",
                   cfg_.feed_path.c_str());
    }
  }
  if (cfg_.dashboard) {
    const std::string panel = render_dashboard(s);
    const int lines =
        static_cast<int>(std::count(panel.begin(), panel.end(), '\n'));
    if (::isatty(2) != 0) {
      // In-place refresh: cursor up over the previous panel, clear each
      // line as it is redrawn.
      if (dashboard_lines_ > 0) {
        std::fprintf(stderr, "\x1b[%dF", dashboard_lines_);
      }
      std::string cleared;
      std::size_t start = 0;
      for (;;) {
        const std::size_t nl = panel.find('\n', start);
        if (nl == std::string::npos) break;
        cleared += "\x1b[K" + panel.substr(start, nl - start + 1);
        start = nl + 1;
      }
      std::fputs(cleared.c_str(), stderr);
      dashboard_lines_ = lines;
    } else {
      // Not a terminal: one compact status line per publish.
      std::fprintf(stderr,
                   "[fleet] %llu/%llu devices, %llu/%llu shards done%s\n",
                   static_cast<unsigned long long>(s.devices_done),
                   static_cast<unsigned long long>(s.devices_total),
                   static_cast<unsigned long long>(s.shards_done),
                   static_cast<unsigned long long>(s.shards_total),
                   s.final_snapshot ? " (final)" : "");
    }
  }
  last_snapshot_ = s;
  last_publish_s_ = now_s;
}

}  // namespace mecc::sim::fleet
