// Live fleet telemetry hub (docs/OBSERVABILITY.md): workers append
// progress/metric records to per-shard JSONL streams; the orchestrator
// tails those streams incrementally, folds partial QuantileSketches and
// coverage/throughput/ETA into a rolling FleetSnapshot, and serves it
// as an in-terminal dashboard (--fleet-dashboard) plus a
// machine-readable feed (--telemetry-out=FILE.jsonl, consumed by
// scripts/mecc_top.py).
//
// Everything in this header is strictly host-side observability: the
// progress streams and the feed live next to (never inside) the
// checkpointed artifacts, so the aggregate JSONL and every --out file
// stay byte-identical whether telemetry is on or off.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/stats.h"

namespace mecc::sim::fleet {

inline constexpr char kProgressSchema[] = "mecc-fleet-progress-v1";
inline constexpr char kTelemetrySchema[] = "mecc-telemetry-v1";

/// The progress stream of one shard: state_dir/progress_<shard>.jsonl.
/// Append-only across attempts; each record is one append_file() call.
[[nodiscard]] std::string progress_file(const std::string& state_dir,
                                        std::uint64_t shard);

/// One worker progress record: the shard's running partial aggregate.
/// Workers emit one at heartbeat cadence plus a final `done` record.
struct ShardProgress {
  std::uint64_t shard = 0;
  std::uint64_t attempt = 0;
  std::uint64_t devices_total = 0;  // devices in this shard
  std::uint64_t devices_done = 0;
  bool done = false;
  std::uint64_t due_events = 0;
  std::uint64_t ce_events = 0;
  double energy_mj_per_day_sum = 0.0;
  QuantileSketch due_rate;  // partial per-device DUEs/year
  QuantileSketch energy;    // partial per-device energy mJ/day
};

/// Single-line compact JSON for a progress record / its inverse.
/// parse accepts exactly the serializer's output; a torn or foreign
/// line returns false and the hub simply skips it.
[[nodiscard]] std::string progress_record_json(const ShardProgress& p);
[[nodiscard]] bool parse_progress_record(const std::string& line,
                                         ShardProgress* out);

/// Incremental JSONL tailer: remembers its byte offset and hands out
/// only complete ('\n'-terminated) lines appended since the last poll.
/// A trailing partial line is buffered until its terminator arrives, so
/// a record raced mid-append is delivered whole on a later poll, never
/// torn.
class ProgressTailer {
 public:
  explicit ProgressTailer(std::string path) : path_(std::move(path)) {}

  /// Complete new lines (without their '\n'), oldest first. Empty when
  /// the file is missing or nothing complete arrived.
  [[nodiscard]] std::vector<std::string> poll();

 private:
  std::string path_;
  std::uint64_t offset_ = 0;
  std::string partial_;
};

/// One rolling view of the whole campaign.
struct FleetSnapshot {
  double t_s = 0.0;  // seconds since the hub's first publish
  std::uint64_t devices_total = 0;
  std::uint64_t devices_done = 0;  // completed shards + live partials
  std::uint64_t shards_total = 0;
  std::uint64_t shards_done = 0;
  std::uint64_t shards_degraded = 0;
  std::uint64_t shards_running = 0;
  std::uint64_t shards_pending = 0;
  double coverage = 0.0;  // shards_done / shards_total
  double throughput_devices_per_s = 0.0;  // EWMA
  double eta_s = -1.0;                    // < 0: unknown yet
  std::uint64_t due_events = 0;
  std::uint64_t ce_events = 0;
  double energy_mj_per_day_sum = 0.0;
  QuantileSketch due_rate;  // completed shards + live partials
  QuantileSketch energy;
  std::uint64_t retries = 0;
  std::uint64_t workers_crashed = 0;
  bool final_snapshot = false;
};

/// One mecc-telemetry-v1 feed line (compact JSON, no trailing newline).
[[nodiscard]] std::string snapshot_json(const FleetSnapshot& s);

/// Multi-line text panel for the in-terminal dashboard.
[[nodiscard]] std::string render_dashboard(const FleetSnapshot& s);

/// The orchestrator-side aggregation hub. The orchestrator owns shard
/// lifecycle (done/degraded/pending accounting); the hub owns the
/// stream tailers, the live partials, the EWMA throughput/ETA, the
/// feed file and the dashboard rendering.
class TelemetryHub {
 public:
  struct Config {
    std::string state_dir;
    std::string feed_path;  // "" = no machine-readable feed
    bool dashboard = false;
    double interval_s = 0.5;  // min seconds between publishes
    std::uint64_t devices_total = 0;
    std::uint64_t shards_total = 0;
  };

  /// Everything the orchestrator already knows from completed shards;
  /// the hub adds the live partial streams on top.
  struct CompletedAggregate {
    std::uint64_t shards_done = 0;
    std::uint64_t shards_degraded = 0;
    std::uint64_t devices_done = 0;
    std::uint64_t due_events = 0;
    std::uint64_t ce_events = 0;
    double energy_mj_per_day_sum = 0.0;
    const QuantileSketch* due_rate = nullptr;  // may be null (empty)
    const QuantileSketch* energy = nullptr;
    std::uint64_t retries = 0;
    std::uint64_t workers_crashed = 0;
  };

  explicit TelemetryHub(Config cfg) : cfg_(std::move(cfg)) {}

  [[nodiscard]] bool enabled() const {
    return cfg_.dashboard || !cfg_.feed_path.empty();
  }
  /// True once interval_s elapsed since the last publish.
  [[nodiscard]] bool due(double now_s) const {
    return enabled() && now_s - last_publish_s_ >= cfg_.interval_s;
  }

  /// Tails the shard's progress stream and ingests any new records.
  void poll_shard(std::uint64_t shard);

  /// Drops the shard's live partial (its contribution now comes from
  /// the orchestrator's completed/failed accounting). The tailer stays,
  /// so a retried shard's new records are picked up from where the
  /// stream left off.
  void retire_shard(std::uint64_t shard);

  /// Builds a snapshot from `done` + the live partials, appends it to
  /// the feed, and redraws the dashboard. The published devices_done is
  /// clamped monotone (a lost worker's partial progress never makes the
  /// number go backwards) and never exceeds devices_total.
  void publish(double now_s, const CompletedAggregate& done,
               std::uint64_t shards_running, std::uint64_t shards_pending,
               bool final_snapshot);

  /// The snapshot assembled by the last publish (tests/inspection).
  [[nodiscard]] const FleetSnapshot& last_snapshot() const {
    return last_snapshot_;
  }

 private:
  Config cfg_;
  std::map<std::uint64_t, ProgressTailer> tailers_;
  std::map<std::uint64_t, ShardProgress> live_;
  FleetSnapshot last_snapshot_;
  double start_s_ = -1.0;
  double last_publish_s_ = -1e300;
  double last_rate_t_s_ = 0.0;
  std::uint64_t last_rate_devices_ = 0;
  std::uint64_t monotone_devices_done_ = 0;
  double ewma_rate_ = 0.0;
  int dashboard_lines_ = 0;
  bool feed_warned_ = false;  // one warning per hub for a dead feed path
};

}  // namespace mecc::sim::fleet
