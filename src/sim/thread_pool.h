// Minimal fixed-size worker pool (std::thread + work queue) backing the
// parallel experiment runner. Deliberately tiny: no futures, no task
// priorities, no dynamic resizing — submit() enqueues a closure, the
// workers drain the queue, wait_idle() blocks until everything submitted
// so far has finished. Determinism is the caller's job: tasks must write
// disjoint state (e.g. results[i] per task) and derive any randomness
// from per-task seeds, never from shared RNG state.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace mecc::sim {

class ThreadPool {
 public:
  /// Spawns `n_threads` workers (clamped to >= 1).
  explicit ThreadPool(unsigned n_threads) {
    if (n_threads == 0) n_threads = 1;
    workers_.reserve(n_threads);
    for (unsigned i = 0; i < n_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  /// Drains the queue, then joins all workers.
  ~ThreadPool() {
    wait_idle();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Never blocks (unbounded queue).
  void submit(std::function<void()> task) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.push(std::move(task));
    }
    work_cv_.notify_one();
  }

  /// Blocks until the queue is empty and no task is executing.
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// hardware_concurrency with a floor of 1 (the standard allows 0).
  [[nodiscard]] static unsigned default_thread_count() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ with a drained queue
        task = std::move(queue_.front());
        queue_.pop();
        ++in_flight_;
      }
      task();
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        --in_flight_;
        if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: "there may be work"
  std::condition_variable idle_cv_;  // wait_idle: "everything finished"
  std::queue<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace mecc::sim
