// Minimal fixed-size worker pool (std::thread + work queue) backing the
// parallel experiment runner. Deliberately tiny: no futures, no task
// priorities, no dynamic resizing — submit() enqueues a closure, the
// workers drain the queue, wait_idle() blocks until everything submitted
// so far has finished. Determinism is the caller's job: tasks must write
// disjoint state (e.g. results[i] per task) and derive any randomness
// from per-task seeds, never from shared RNG state.
//
// Exception contract: a task that throws no longer kills the process
// (the old behavior: the exception escaped worker_loop and hit
// std::terminate) and is never silently lost — the pool captures the
// FIRST exception thrown by any task, keeps draining the remaining
// work, and wait_idle() rethrows it to the caller once everything
// submitted so far has finished. Later exceptions are counted
// (task_failures()) but not retained. cancel() is the matching
// cancellation token: it discards tasks still queued (checked between
// jobs; the task currently executing always finishes) so a caller that
// has seen one failure can stop paying for the rest of the batch.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace mecc::sim {

class ThreadPool {
 public:
  /// Spawns `n_threads` workers (clamped to >= 1).
  explicit ThreadPool(unsigned n_threads) {
    if (n_threads == 0) n_threads = 1;
    workers_.reserve(n_threads);
    for (unsigned i = 0; i < n_threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  /// Drains the queue, then joins all workers. Never throws: a pending
  /// captured exception dies with the pool (callers that care call
  /// wait_idle() first, which is where the rethrow contract lives).
  ~ThreadPool() {
    wait_drained();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues one task. Never blocks (unbounded queue). Tasks submitted
  /// after cancel() are discarded like already-queued ones.
  void submit(std::function<void()> task) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (cancelled_) return;
      queue_.push(std::move(task));
    }
    work_cv_.notify_one();
  }

  /// Blocks until the queue is empty and no task is executing, then
  /// rethrows the first exception any task threw since the last
  /// wait_idle() (clearing it, so the pool is reusable afterwards).
  void wait_idle() {
    wait_drained();
    std::exception_ptr first;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      std::swap(first, first_exception_);
    }
    if (first) std::rethrow_exception(first);
  }

  /// Cancellation token: discards every task still queued and makes
  /// further submit() calls no-ops. The task currently executing on
  /// each worker finishes normally — cancellation is checked *between*
  /// jobs, never mid-job. Captured exceptions are unaffected.
  void cancel() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      cancelled_ = true;
      std::queue<std::function<void()>> drop;
      queue_.swap(drop);
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
    work_cv_.notify_all();
  }

  [[nodiscard]] bool cancelled() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return cancelled_;
  }

  /// Tasks that exited via an exception since construction (the first
  /// one is also retained for wait_idle() to rethrow).
  [[nodiscard]] std::size_t task_failures() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return task_failures_;
  }

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// hardware_concurrency with a floor of 1 (the standard allows 0).
  [[nodiscard]] static unsigned default_thread_count() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

 private:
  /// wait_idle without the rethrow — the destructor's noexcept drain.
  void wait_drained() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  }

  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ with a drained queue
        task = std::move(queue_.front());
        queue_.pop();
        ++in_flight_;
      }
      std::exception_ptr error;
      try {
        task();
      } catch (...) {
        error = std::current_exception();
      }
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (error) {
          ++task_failures_;
          if (!first_exception_) first_exception_ = error;
        }
        --in_flight_;
        if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
      }
    }
  }

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;  // workers: "there may be work"
  std::condition_variable idle_cv_;  // wait_idle: "everything finished"
  std::queue<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  bool cancelled_ = false;
  std::size_t task_failures_ = 0;
  std::exception_ptr first_exception_;
  std::vector<std::thread> workers_;
};

}  // namespace mecc::sim
