#include "trace/benchmarks.h"

#include <array>
#include <stdexcept>

namespace mecc::trace {

std::string mpki_class_name(MpkiClass c) {
  switch (c) {
    case MpkiClass::kLow:
      return "Low-MPKI";
    case MpkiClass::kMed:
      return "Med-MPKI";
    case MpkiClass::kHigh:
      return "High-MPKI";
  }
  return "?";
}

namespace {

using K = MpkiClass;

// Per-benchmark values are chosen to be characteristic of the SPEC2006
// workload (libquantum: extreme streaming read MPKI; lbm: write-heavy
// streaming; omnetpp/xalancbmk: pointer-chasing with poor row locality)
// while each class *average* reproduces Table III exactly; the unit test
// trace/benchmarks_test.cpp pins those averages.
constexpr std::array<BenchmarkProfile, 28> kBenchmarks = {{
    // ---- Low-MPKI (avg: MPKI 0.3, IPC 1.514, footprint 26 MB) ----
    {"povray", K::kLow, 0.10, 1.800, 6.0, 0.75, 0.60},
    {"tonto", K::kLow, 0.15, 1.500, 20.0, 0.70, 0.55},
    {"wrf", K::kLow, 0.55, 1.148, 78.0, 0.70, 0.70},
    {"gamess", K::kLow, 0.05, 1.900, 4.0, 0.75, 0.50},
    {"hmmer", K::kLow, 0.10, 1.450, 10.0, 0.80, 0.60},
    {"sjeng", K::kLow, 0.45, 1.250, 40.0, 0.70, 0.35},
    {"h264ref", K::kLow, 0.70, 1.550, 24.0, 0.75, 0.65},
    // ---- Med-MPKI (avg: MPKI 4.7, IPC 0.887, footprint 96.4 MB) ----
    {"namd", K::kMed, 1.10, 1.400, 44.0, 0.75, 0.60},
    {"gobmk", K::kMed, 1.30, 1.150, 28.0, 0.70, 0.40},
    {"gromacs", K::kMed, 1.60, 1.150, 16.0, 0.70, 0.55},
    {"perlbench", K::kMed, 2.20, 1.200, 60.0, 0.70, 0.45},
    {"astar", K::kMed, 4.60, 0.750, 84.0, 0.70, 0.30},
    {"bzip2", K::kMed, 4.20, 0.900, 120.0, 0.65, 0.55},
    {"dealII", K::kMed, 5.60, 0.800, 96.0, 0.70, 0.50},
    {"soplex", K::kMed, 9.60, 0.450, 220.0, 0.75, 0.55},
    {"cactusADM", K::kMed, 8.20, 0.500, 180.0, 0.65, 0.60},
    {"calculix", K::kMed, 8.60, 0.570, 116.0, 0.65, 0.55},
    // ---- High-MPKI (avg: MPKI 23.5, IPC 0.359, footprint 259.1 MB) ----
    {"gcc", K::kHigh, 12.00, 0.550, 110.0, 0.70, 0.45},
    {"zeusmp", K::kHigh, 14.00, 0.500, 200.0, 0.65, 0.60},
    {"omnetpp", K::kHigh, 16.00, 0.420, 160.0, 0.70, 0.25},
    {"sphinx3", K::kHigh, 17.00, 0.450, 190.0, 0.80, 0.55},
    {"milc", K::kHigh, 20.00, 0.360, 340.0, 0.70, 0.50},
    {"xalancbmk", K::kHigh, 18.00, 0.400, 200.0, 0.75, 0.30},
    {"leslie3d", K::kHigh, 22.00, 0.330, 310.0, 0.70, 0.65},
    {"libquantum", K::kHigh, 33.00, 0.250, 120.0, 0.95, 0.85},
    {"GemsFDTD", K::kHigh, 30.00, 0.240, 420.0, 0.80, 0.70},
    {"lbm", K::kHigh, 40.00, 0.210, 400.0, 0.50, 0.80},
    {"bwaves", K::kHigh, 36.50, 0.239, 400.1, 0.85, 0.75},
}};

}  // namespace

std::span<const BenchmarkProfile> all_benchmarks() { return kBenchmarks; }

const BenchmarkProfile& benchmark(std::string_view name) {
  for (const auto& b : kBenchmarks) {
    if (b.name == name) return b;
  }
  throw std::out_of_range("unknown benchmark: " + std::string(name));
}

std::size_t count_in_class(MpkiClass c) {
  std::size_t n = 0;
  for (const auto& b : kBenchmarks) {
    if (b.klass == c) ++n;
  }
  return n;
}

}  // namespace mecc::trace
