// The 28 SPEC CPU2006 workloads of the paper's evaluation (Table III,
// Fig. 7), modeled as parameterized synthetic trace generators.
//
// SPEC binaries/traces are proprietary, so each benchmark is described by
// the characteristics the paper's methodology actually depends on
// ("for our studies we simply need memory access patterns", S IV-B):
// memory intensity (MPKI), baseline IPC, footprint, read share and
// row-buffer locality. Class averages match Table III exactly:
//   Low-MPKI  (7 benchmarks):  IPC 1.514, MPKI 0.3,  footprint 26 MB
//   Med-MPKI  (10 benchmarks): IPC 0.887, MPKI 4.7,  footprint 96.4 MB
//   High-MPKI (11 benchmarks): IPC 0.359, MPKI 23.5, footprint 259.1 MB
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace mecc::trace {

enum class MpkiClass : std::uint8_t { kLow, kMed, kHigh };

[[nodiscard]] std::string mpki_class_name(MpkiClass c);

struct BenchmarkProfile {
  std::string_view name;
  MpkiClass klass;
  double mpki;           // post-LLC memory accesses per kilo-instruction
  double paper_ipc;      // Table III baseline IPC (no ECC latency)
  double footprint_mb;   // unique 4 KB pages touched, in MB
  double read_fraction;  // share of memory accesses that are reads
  double row_locality;   // P(next access continues the current stream)
};

/// All 28 profiles in the paper's Fig. 7 x-axis order.
[[nodiscard]] std::span<const BenchmarkProfile> all_benchmarks();

/// Lookup by name; throws std::out_of_range for unknown names.
[[nodiscard]] const BenchmarkProfile& benchmark(std::string_view name);

/// The per-class subsets.
[[nodiscard]] std::size_t count_in_class(MpkiClass c);

}  // namespace mecc::trace
