#include "trace/file_trace.h"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mecc::trace {

FileTrace::FileTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("FileTrace: cannot open " + path);
  }
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    // Strip comments and blank lines.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::uint64_t gap = 0;
    std::string type;
    std::string addr;
    if (!(fields >> gap)) continue;  // blank line
    if (!(fields >> type >> addr) || (type != "R" && type != "W")) {
      throw std::runtime_error("FileTrace: malformed record at " + path +
                               ":" + std::to_string(lineno));
    }
    TraceRecord rec;
    rec.gap = static_cast<std::uint32_t>(gap);
    rec.is_write = (type == "W");
    rec.line_addr = std::stoull(addr, nullptr, 16) & ~static_cast<Address>(
                                                         kLineBytes - 1);
    records_.push_back(rec);
  }
  if (records_.empty()) {
    throw std::runtime_error("FileTrace: no records in " + path);
  }
}

FileTrace::FileTrace(std::vector<TraceRecord> records)
    : records_(std::move(records)) {
  if (records_.empty()) {
    throw std::runtime_error("FileTrace: no records");
  }
}

TraceRecord FileTrace::next() {
  const TraceRecord rec = records_[pos_];
  if (++pos_ == records_.size()) {
    pos_ = 0;
    ++laps_;
  }
  return rec;
}

void write_trace_file(const std::string& path,
                      const std::vector<TraceRecord>& records) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("write_trace_file: cannot open " + path);
  }
  out << "# gap R|W line_address (USIMM-style)\n";
  for (const auto& r : records) {
    out << r.gap << ' ' << (r.is_write ? 'W' : 'R') << " 0x" << std::hex
        << r.line_addr << std::dec << '\n';
  }
}

std::vector<TraceRecord> capture(TraceSource& source, std::size_t count) {
  std::vector<TraceRecord> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(source.next());
  return out;
}

}  // namespace mecc::trace
