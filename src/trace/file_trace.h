// USIMM-style trace file support.
//
// Format: one access per line, whitespace separated:
//     <gap> <R|W> <hex line address>
// e.g. "42 R 0x1fc0" - 42 non-memory instructions, then a read of the
// line at 0x1fc0. Lines starting with '#' are comments. The reader
// loops the file to provide an infinite stream (with a configurable
// address offset per lap to avoid artificial re-use, off by default).
#pragma once

#include <string>
#include <vector>

#include "trace/trace_source.h"

namespace mecc::trace {

class FileTrace final : public TraceSource {
 public:
  /// Loads a trace file fully into memory. Throws std::runtime_error on
  /// unreadable files or malformed records.
  explicit FileTrace(const std::string& path);

  /// Builds directly from records (testing / programmatic capture).
  explicit FileTrace(std::vector<TraceRecord> records);

  TraceRecord next() override;

  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] std::uint64_t laps() const { return laps_; }

 private:
  std::vector<TraceRecord> records_;
  std::size_t pos_ = 0;
  std::uint64_t laps_ = 0;
};

/// Serializes records in the file format (the inverse of FileTrace).
void write_trace_file(const std::string& path,
                      const std::vector<TraceRecord>& records);

/// Convenience: captures `count` records from any source (e.g. to dump a
/// synthetic benchmark to a file other tools can consume).
[[nodiscard]] std::vector<TraceRecord> capture(TraceSource& source,
                                               std::size_t count);

}  // namespace mecc::trace
