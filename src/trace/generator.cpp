#include "trace/generator.h"

#include <algorithm>
#include <cmath>

namespace mecc::trace {

TraceGenerator::TraceGenerator(const BenchmarkProfile& profile,
                               const GeneratorConfig& config)
    : profile_(profile), config_(config), rng_(config.seed) {
  const double bytes =
      profile.footprint_mb * 1024.0 * 1024.0 * config.footprint_scale;
  footprint_lines_ = std::max<std::uint64_t>(
      64, static_cast<std::uint64_t>(bytes / kLineBytes));
  phase_offset_ = static_cast<std::size_t>(config.seed % 4);
  stream_line_ = rng_.next_below(footprint_lines_);
}

double TraceGenerator::phase_multiplier() const {
  const std::uint64_t segment = insts_generated_ / config_.phase_length_insts;
  return kPhaseSchedule[(segment + phase_offset_) % 4];
}

TraceRecord TraceGenerator::next() {
  TraceRecord rec;

  // Gap targeting the phase-adjusted MPKI: one access per
  // (1000 / effective_mpki) instructions on average, including the memory
  // instruction itself. The mean only changes at phase-segment
  // boundaries, so it is recomputed per segment, not per access.
  const std::uint64_t segment = insts_generated_ / config_.phase_length_insts;
  if (segment != cached_segment_ || cached_mean_ == 0.0) {
    cached_segment_ = segment;
    const double effective_mpki =
        std::max(0.01, profile_.mpki * phase_multiplier());
    cached_mean_ = 1000.0 / effective_mpki;
  }
  const double mean_insts_per_access = cached_mean_;
  const std::uint64_t total =
      std::max<std::uint64_t>(1, rng_.next_geometric(mean_insts_per_access));
  rec.gap = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      total - 1, 1'000'000));
  insts_generated_ += rec.gap + 1;

  // Address: continue the sequential stream with P(row_locality), else
  // jump somewhere else in the footprint.
  if (rng_.chance(profile_.row_locality)) {
    stream_line_ = (stream_line_ + 1) % footprint_lines_;
  } else {
    stream_line_ = rng_.next_below(footprint_lines_);
  }
  rec.line_addr =
      config_.base_addr + stream_line_ * static_cast<Address>(kLineBytes);

  rec.is_write = rng_.chance(1.0 - profile_.read_fraction);
  return rec;
}

}  // namespace mecc::trace
