// Synthetic USIMM-style trace generator.
//
// Produces an infinite stream of post-LLC memory accesses, each preceded
// by a gap of non-memory instructions, parameterized by a
// BenchmarkProfile. The stream reproduces the characteristics the
// paper's evaluation is sensitive to:
//   * memory intensity (geometric gaps targeting the profile's MPKI),
//   * phase behavior (the MPKI multiplier steps through a fixed schedule
//     so that traffic-threshold mechanisms like SMD see time-varying
//     MPKC, as real SPEC phases do),
//   * footprint (addresses cycle over footprint_mb, optionally scaled
//     when a scaled instruction slice is simulated),
//   * row-buffer locality (sequential runs vs random jumps), and
//   * read/write mix.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/types.h"
#include "trace/benchmarks.h"

namespace mecc::trace {

struct TraceRecord {
  std::uint32_t gap = 0;     // non-memory instructions before this access
  bool is_write = false;
  Address line_addr = 0;     // 64 B aligned
};

struct GeneratorConfig {
  // Footprint scaling for scaled instruction slices (keeps the
  // first-touch-per-instruction rate of the full-length run; DESIGN.md §3).
  double footprint_scale = 1.0;
  // Instructions per MPKI phase segment.
  std::uint64_t phase_length_insts = 4'000'000;
  // Placement of the footprint in physical memory.
  Address base_addr = 0;
  std::uint64_t seed = 1;
};

class TraceGenerator {
 public:
  TraceGenerator(const BenchmarkProfile& profile,
                 const GeneratorConfig& config);

  /// Next access in the stream.
  TraceRecord next();

  /// Lines in the (scaled) footprint.
  [[nodiscard]] std::uint64_t footprint_lines() const {
    return footprint_lines_;
  }
  /// Current MPKI phase multiplier (for tests).
  [[nodiscard]] double phase_multiplier() const;

 private:
  static constexpr double kPhaseSchedule[4] = {0.4, 1.3, 0.7, 1.6};

  BenchmarkProfile profile_;
  GeneratorConfig config_;
  Rng rng_;
  std::uint64_t footprint_lines_;
  std::uint64_t insts_generated_ = 0;
  std::uint64_t stream_line_ = 0;  // current sequential-stream position
  std::size_t phase_offset_;
  std::uint64_t cached_segment_ = 0;  // phase segment cached_mean_ is for
  double cached_mean_ = 0.0;          // 0 = not yet computed
};

}  // namespace mecc::trace
