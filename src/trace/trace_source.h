// Abstract source of memory-access records.
//
// The simulator consumes TraceSource; the two implementations are the
// synthetic per-benchmark generator (generator.h) and a USIMM-style
// trace-file reader (file_trace.h), so users can replay their own
// captured traces through the full system.
#pragma once

#include "common/stats.h"
#include "trace/generator.h"

namespace mecc::trace {

class TraceSource {
 public:
  virtual ~TraceSource() = default;
  /// Next access; sources are infinite (file readers loop).
  virtual TraceRecord next() = 0;

  /// Source-side observability (e.g. the LLC filter's hit/miss/writeback
  /// counters); the System registers this as the "trace" component of
  /// its StatRegistry. Default: nothing to report.
  virtual void export_stats(StatSet& out) const { (void)out; }
};

/// Adapter exposing TraceGenerator through the TraceSource interface.
class GeneratorSource final : public TraceSource {
 public:
  GeneratorSource(const BenchmarkProfile& profile,
                  const GeneratorConfig& config)
      : gen_(profile, config) {}

  TraceRecord next() override { return gen_.next(); }

  [[nodiscard]] TraceGenerator& generator() { return gen_; }

 private:
  TraceGenerator gen_;
};

}  // namespace mecc::trace
