#include "baselines/hiecc.h"

#include <gtest/gtest.h>

namespace mecc::baselines {
namespace {

TEST(HiEcc, LineGranularityMatchesMeccNumbers) {
  // 64 B, t = 6: m = 10, 60 parity bits - the paper's ECC-6 layout.
  constexpr auto c = strong_ecc_granularity(64, 6);
  EXPECT_EQ(c.parity_bits, 60u);
  EXPECT_NEAR(c.storage_overhead, 60.0 / 512.0, 1e-12);
  EXPECT_DOUBLE_EQ(c.read_overfetch, 1.0);
  EXPECT_DOUBLE_EQ(c.write_amplification, 2.0);
}

TEST(HiEcc, KilobyteGranularityCutsStorageButOverfetches) {
  // 1 KB, t = 6 (Hi-ECC's design point): m = 14 -> 84 parity bits.
  constexpr auto hiecc = strong_ecc_granularity(1024, 6);
  EXPECT_EQ(hiecc.parity_bits, 84u);
  constexpr auto mecc = strong_ecc_granularity(64, 6);
  // ~11x less parity per data bit...
  EXPECT_GT(mecc.storage_overhead / hiecc.storage_overhead, 10.0);
  // ...but 16x read overfetch and 32x write traffic per 64 B access.
  EXPECT_DOUBLE_EQ(hiecc.read_overfetch, 16.0);
  EXPECT_DOUBLE_EQ(hiecc.write_amplification, 32.0);
}

TEST(HiEcc, OverheadMonotonicallyFallsWithBlockSize) {
  double prev = 1.0;
  for (std::size_t block : {64u, 128u, 256u, 512u, 1024u, 4096u}) {
    const auto c = strong_ecc_granularity(block, 6);
    EXPECT_LT(c.storage_overhead, prev);
    prev = c.storage_overhead;
  }
}

TEST(HiEcc, OverfetchScalesLinearly) {
  for (std::size_t block : {64u, 256u, 2048u}) {
    const auto c = strong_ecc_granularity(block, 4);
    EXPECT_DOUBLE_EQ(c.read_overfetch,
                     static_cast<double>(block) / 64.0);
  }
}

TEST(HiEcc, FieldSizePickedMinimal) {
  // 64 B: m = 10 (1023 >= 512 + 60); 65 B-equivalent would bump m.
  constexpr auto c64 = strong_ecc_granularity(64, 6);
  EXPECT_EQ(c64.parity_bits / 6, 10u);
  constexpr auto c128 = strong_ecc_granularity(128, 6);
  EXPECT_EQ(c128.parity_bits / 6, 11u);  // 2047 >= 1024 + 66
}

}  // namespace
}  // namespace mecc::baselines
