#include "baselines/raidr.h"

#include <gtest/gtest.h>

#include <numeric>

namespace mecc::baselines {
namespace {

TEST(Flikker, EffectiveRateFollowsAmdahl) {
  // Paper S VII-A: one quarter critical at rate 1, the rest at 1/16 ->
  // effective rate ~ 1/3.
  const double rate = flikker_effective_refresh_rate(0.25, 16.0);
  EXPECT_NEAR(rate, 0.25 + 0.75 / 16.0, 1e-12);
  EXPECT_NEAR(rate, 1.0 / 3.0, 0.05);
}

TEST(Flikker, ZeroCriticalMatchesSlowRate) {
  EXPECT_NEAR(flikker_effective_refresh_rate(0.0, 16.0), 1.0 / 16.0, 1e-12);
  EXPECT_NEAR(flikker_effective_refresh_rate(1.0, 16.0), 1.0, 1e-12);
}

TEST(Flikker, MeccBeatsAnyNonTrivialPartition) {
  // MECC slows the *entire* memory 16x in idle mode; Flikker with any
  // critical region cannot reach that.
  const double mecc_rate = 1.0 / 16.0;
  for (double crit : {0.05, 0.1, 0.25, 0.5}) {
    EXPECT_GT(flikker_effective_refresh_rate(crit, 16.0), mecc_rate);
  }
}

class RaidrTest : public ::testing::Test {
 protected:
  RaidrConfig cfg_;
  reliability::RetentionModel retention_;
};

TEST_F(RaidrTest, ProfileCoversAllRows) {
  Raidr raidr(cfg_);
  Rng rng(1);
  const RaidrProfile p = raidr.profile(retention_, rng);
  EXPECT_EQ(p.row_bin.size(), cfg_.num_rows);
  const std::uint64_t total = std::accumulate(p.rows_per_bin.begin(),
                                              p.rows_per_bin.end(), 0ull);
  EXPECT_EQ(total, cfg_.num_rows);
}

TEST_F(RaidrTest, OneSecondBinIsEssentiallyEmpty) {
  // With the Fig. 2 distribution, P(cell < 2 s) ~ 4.3e-4, so the weakest
  // of a 16 KB row's 131072 cells essentially never retains 2 s:
  // P(row makes the 1 s bin) ~ e^-56. RAIDR without ECC cannot reach the
  // 1 s refresh period on this technology - exactly the paper's argument
  // for tolerating failures with strong ECC instead of avoiding them.
  Raidr raidr(cfg_);
  Rng rng(2);
  const RaidrProfile p = raidr.profile(retention_, rng);
  EXPECT_LT(p.rows_per_bin.back(), 5u);
  // The 256 ms bin does catch a large share (P(weakest >= 512 ms) ~ 0.7).
  const double mid_share = static_cast<double>(p.rows_per_bin[1]) /
                           static_cast<double>(cfg_.num_rows);
  EXPECT_GT(mid_share, 0.5);
  EXPECT_LT(mid_share, 0.9);
}

TEST_F(RaidrTest, RefreshReductionBetween1andBinRatio) {
  Raidr raidr(cfg_);
  Rng rng(3);
  const RaidrProfile p = raidr.profile(retention_, rng);
  const double reduction = p.refresh_reduction(cfg_);
  EXPECT_GE(reduction, 1.0);
  EXPECT_LE(reduction, 1.0 / 0.064);  // can't beat all-rows-at-1s... (15.6x)
}

TEST_F(RaidrTest, AllRowsFastBinMeansNoSavings) {
  RaidrProfile p;
  p.rows_per_bin = {cfg_.num_rows, 0, 0};
  p.row_bin.assign(cfg_.num_rows, 0);
  EXPECT_NEAR(p.refresh_reduction(cfg_), 1.0, 1e-12);
}

TEST_F(RaidrTest, VrtVictimsScaleWithSlowRows) {
  Raidr raidr(cfg_);
  RaidrProfile all_fast;
  all_fast.rows_per_bin = {cfg_.num_rows, 0, 0};
  EXPECT_DOUBLE_EQ(raidr.expected_vrt_victim_rows(all_fast, 1e-9), 0.0);

  RaidrProfile all_slow;
  all_slow.rows_per_bin = {0, 0, cfg_.num_rows};
  const double victims = raidr.expected_vrt_victim_rows(all_slow, 1e-9);
  // 64K rows x 131072 cells x 1e-9 ~ 8.6 expected victim rows.
  EXPECT_NEAR(victims, 64.0 * 1024 * 131072 * 1e-9, 1.0);
  EXPECT_GT(victims, 1.0);  // data loss without ECC - the paper's point
}

TEST_F(RaidrTest, VrtVictimsMonotonicInRate) {
  Raidr raidr(cfg_);
  RaidrProfile p;
  p.rows_per_bin = {0, cfg_.num_rows / 2, cfg_.num_rows / 2};
  double prev = 0.0;
  for (double rate : {1e-12, 1e-10, 1e-8}) {
    const double v = raidr.expected_vrt_victim_rows(p, rate);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST_F(RaidrTest, DeterministicProfileForSameSeed) {
  Raidr raidr(cfg_);
  Rng rng1(7);
  Rng rng2(7);
  const RaidrProfile a = raidr.profile(retention_, rng1);
  const RaidrProfile b = raidr.profile(retention_, rng2);
  EXPECT_EQ(a.rows_per_bin, b.rows_per_bin);
}

}  // namespace
}  // namespace mecc::baselines
