#include "cache/llc_filter.h"

#include <gtest/gtest.h>

#include "sim/system.h"
#include "trace/benchmarks.h"

namespace mecc::cache {
namespace {

/// A scripted CPU-level source for deterministic filter tests.
class ScriptedSource final : public trace::TraceSource {
 public:
  explicit ScriptedSource(std::vector<trace::TraceRecord> script)
      : script_(std::move(script)) {}
  trace::TraceRecord next() override {
    const trace::TraceRecord r = script_[pos_ % script_.size()];
    ++pos_;
    return r;
  }

 private:
  std::vector<trace::TraceRecord> script_;
  std::size_t pos_ = 0;
};

trace::TraceRecord rec(std::uint32_t gap, bool write, Address addr) {
  return {.gap = gap, .is_write = write, .line_addr = addr};
}

TEST(LlcFilter, MissEmitsFillRead) {
  ScriptedSource cpu({rec(10, false, 0x1000)});
  LlcFilteredSource filt(cpu, 1 << 14, 4);
  const trace::TraceRecord out = filt.next();
  EXPECT_FALSE(out.is_write);  // fill read
  EXPECT_EQ(out.line_addr, 0x1000u);
  EXPECT_EQ(out.gap, 10u);
}

TEST(LlcFilter, StoreMissAlsoFills) {
  ScriptedSource cpu({rec(3, true, 0x2000)});
  LlcFilteredSource filt(cpu, 1 << 14, 4);
  const trace::TraceRecord out = filt.next();
  EXPECT_FALSE(out.is_write);  // write-allocate: fill read first
  EXPECT_EQ(out.line_addr, 0x2000u);
}

TEST(LlcFilter, HitsAccumulateIntoGap) {
  // Two lines, second access hits; the emitted stream shows the hit's
  // instructions folded into the following miss's gap.
  ScriptedSource cpu({rec(4, false, 0x0), rec(5, false, 0x0),
                      rec(6, false, 0x40000)});
  LlcFilteredSource filt(cpu, 1 << 14, 4);
  const trace::TraceRecord first = filt.next();
  EXPECT_EQ(first.line_addr, 0x0u);
  const trace::TraceRecord second = filt.next();
  EXPECT_EQ(second.line_addr, 0x40000u);
  // gap = (5 + 1 hit access) + 6 = 12.
  EXPECT_EQ(second.gap, 12u);
}

TEST(LlcFilter, DirtyEvictionEmitsWriteback) {
  // Direct-mapped 2-line cache: write line A, then fill two conflicting
  // lines to evict it.
  ScriptedSource cpu({rec(0, true, 0 * 64), rec(0, false, 2 * 64),
                      rec(0, false, 4 * 64), rec(0, false, 6 * 64)});
  LlcFilteredSource filt(cpu, 2 * 64, 1);
  std::vector<trace::TraceRecord> out;
  for (int i = 0; i < 5; ++i) out.push_back(filt.next());
  bool saw_writeback = false;
  for (const auto& r : out) {
    if (r.is_write && r.line_addr == 0) saw_writeback = true;
  }
  EXPECT_TRUE(saw_writeback);
}

TEST(LlcFilter, SmallWorkingSetProducesFewMemoryAccesses) {
  // CPU stream confined to 256 KB inside a 1 MB LLC: after the cold
  // fills, the filter must emit (almost) nothing per CPU access.
  trace::BenchmarkProfile tiny = trace::benchmark("gamess");
  trace::GeneratorSource cpu(tiny, trace::GeneratorConfig{
                                       .footprint_scale = 0.0625,  // 256 KB
                                       .seed = 3});
  LlcFilteredSource filt(cpu);
  for (int i = 0; i < 5000; ++i) (void)filt.next();  // warm + measure
  EXPECT_GT(filt.llc().hits(), filt.llc().misses() * 5);
}

TEST(LlcFilter, DrivesTheFullSystem) {
  // End-to-end: CPU-level stream -> LLC filter -> full timing simulation
  // under MECC. The post-LLC traffic the System sees is read-heavy
  // (fills) with write-backs - the mix the paper's traces have.
  const auto& profile = trace::benchmark("soplex");
  auto cpu = std::make_unique<trace::GeneratorSource>(
      profile, trace::GeneratorConfig{.footprint_scale = 0.01, .seed = 7});
  // Keep the CPU source alive alongside the filter.
  static std::unique_ptr<trace::GeneratorSource> cpu_keeper;
  cpu_keeper = std::move(cpu);
  auto filtered =
      std::make_unique<LlcFilteredSource>(*cpu_keeper, 1 << 18, 16);

  sim::SystemConfig cfg;
  cfg.instructions = 300'000;
  cfg.policy = sim::EccPolicy::kMecc;
  sim::System system(profile, cfg, std::move(filtered));
  const sim::RunResult r = system.run();
  EXPECT_GT(r.reads, 0u);
  EXPECT_GT(r.writes, 0u);          // write-backs made it to memory
  EXPECT_GT(r.reads, r.writes);     // fill reads dominate
  EXPECT_GT(r.downgrades, 0u);      // MECC engaged on the filtered stream
  EXPECT_GT(r.ipc, 0.0);
}

}  // namespace
}  // namespace mecc::cache
