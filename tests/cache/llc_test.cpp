#include "cache/llc.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mecc::cache {
namespace {

TEST(Llc, GeometryTable2) {
  // Table II: 1 MB, 64 B lines. With 16 ways -> 1024 sets.
  const Llc llc(1 << 20, 16);
  EXPECT_EQ(llc.num_sets(), 1024u);
  EXPECT_EQ(llc.associativity(), 16u);
}

TEST(Llc, RejectsBadGeometry) {
  EXPECT_THROW(Llc(1000, 4), std::invalid_argument);
  EXPECT_THROW(Llc(1 << 20, 0), std::invalid_argument);
}

TEST(Llc, ColdMissThenHit) {
  Llc llc(1 << 20, 16);
  EXPECT_FALSE(llc.access(0x1000, false).hit);
  EXPECT_TRUE(llc.access(0x1000, false).hit);
  EXPECT_TRUE(llc.access(0x1020, false).hit);  // same line
  EXPECT_EQ(llc.misses(), 1u);
  EXPECT_EQ(llc.hits(), 2u);
}

TEST(Llc, LruEvictsLeastRecentlyUsed) {
  Llc llc(4 * 64 * 2, 2);  // 4 sets, 2 ways
  // Fill set 0 (lines map to set via line index % 4).
  const Address a = 0 * 64;       // set 0
  const Address b = 4 * 64;       // set 0
  const Address c = 8 * 64;       // set 0
  EXPECT_FALSE(llc.access(a, false).hit);
  EXPECT_FALSE(llc.access(b, false).hit);
  EXPECT_TRUE(llc.access(a, false).hit);   // a most recent
  EXPECT_FALSE(llc.access(c, false).hit);  // evicts b
  EXPECT_TRUE(llc.access(a, false).hit);
  EXPECT_FALSE(llc.access(b, false).hit);  // b was evicted
}

TEST(Llc, DirtyEvictionReportsWriteback) {
  Llc llc(2 * 64 * 1, 1);  // 2 sets, direct-mapped
  const Address a = 0;
  const Address conflict = 2 * 64;  // same set as a
  EXPECT_FALSE(llc.access(a, true).hit);  // dirty
  const auto out = llc.access(conflict, false);
  EXPECT_FALSE(out.hit);
  ASSERT_TRUE(out.writeback.has_value());
  EXPECT_EQ(*out.writeback, a);
}

TEST(Llc, CleanEvictionHasNoWriteback) {
  Llc llc(2 * 64 * 1, 1);
  EXPECT_FALSE(llc.access(0, false).hit);
  const auto out = llc.access(2 * 64, false);
  EXPECT_FALSE(out.writeback.has_value());
}

TEST(Llc, WriteHitMarksDirty) {
  Llc llc(2 * 64 * 1, 1);
  (void)llc.access(0, false);
  (void)llc.access(0, true);  // hit, now dirty
  const auto out = llc.access(2 * 64, false);
  ASSERT_TRUE(out.writeback.has_value());
}

TEST(Llc, FlushReturnsAllDirtyLinesAndEmptiesCache) {
  Llc llc(1 << 14, 4);
  (void)llc.access(0x0000, true);
  (void)llc.access(0x4000, true);
  (void)llc.access(0x8000, false);
  auto dirty = llc.flush();
  EXPECT_EQ(dirty.size(), 2u);
  // Everything misses after the flush.
  EXPECT_FALSE(llc.access(0x0000, false).hit);
  EXPECT_FALSE(llc.access(0x8000, false).hit);
}

TEST(Llc, WorkingSetSmallerThanCacheHasNoCapacityMisses) {
  Llc llc(1 << 20, 16);
  Rng rng(5);
  // 8K lines = 512 KB working set in a 1 MB cache.
  std::vector<Address> lines;
  for (int i = 0; i < 8192; ++i) lines.push_back(static_cast<Address>(i) * 64);
  for (auto a : lines) (void)llc.access(a, false);  // cold misses
  const std::uint64_t cold = llc.misses();
  for (int i = 0; i < 100000; ++i) {
    (void)llc.access(lines[rng.next_below(lines.size())], false);
  }
  EXPECT_EQ(llc.misses(), cold);  // everything hits
}

TEST(Llc, WorkingSetLargerThanCacheThrashes) {
  Llc llc(1 << 20, 16);
  Rng rng(6);
  // 64K lines = 4 MB working set in a 1 MB cache, random access.
  const std::uint64_t span = 65536;
  for (int i = 0; i < 100000; ++i) {
    (void)llc.access(rng.next_below(span) * 64, false);
  }
  EXPECT_GT(llc.miss_rate(), 0.5);
}

}  // namespace
}  // namespace mecc::cache
