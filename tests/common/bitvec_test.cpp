#include "common/bitvec.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mecc {
namespace {

TEST(BitVec, StartsAllZero) {
  BitVec v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_FALSE(v.any());
  EXPECT_EQ(v.popcount(), 0u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVec, SetGetFlip) {
  BitVec v(70);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(69, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(69));
  EXPECT_EQ(v.popcount(), 4u);
  v.flip(63);
  EXPECT_FALSE(v.get(63));
  v.flip(63);
  EXPECT_TRUE(v.get(63));
  v.set(64, false);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVec, ClearZeroesEverything) {
  BitVec v(130);
  for (std::size_t i = 0; i < 130; i += 3) v.set(i, true);
  EXPECT_TRUE(v.any());
  v.clear();
  EXPECT_FALSE(v.any());
  EXPECT_EQ(v.size(), 130u);
}

TEST(BitVec, XorIsBitwise) {
  BitVec a(65);
  BitVec b(65);
  a.set(1, true);
  a.set(64, true);
  b.set(1, true);
  b.set(2, true);
  const BitVec c = a ^ b;
  EXPECT_FALSE(c.get(1));
  EXPECT_TRUE(c.get(2));
  EXPECT_TRUE(c.get(64));
  EXPECT_EQ(c.popcount(), 2u);
}

TEST(BitVec, XorWithSelfIsZero) {
  BitVec a(512);
  Rng rng(7);
  for (std::size_t i = 0; i < 512; ++i) a.set(i, rng.chance(0.5));
  const BitVec z = a ^ a;
  EXPECT_FALSE(z.any());
}

TEST(BitVec, SliceAndSpliceRoundTrip) {
  BitVec v(200);
  Rng rng(11);
  for (std::size_t i = 0; i < 200; ++i) v.set(i, rng.chance(0.5));
  const BitVec mid = v.slice(50, 100);
  EXPECT_EQ(mid.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(mid.get(i), v.get(50 + i));

  BitVec w(200);
  w.splice(50, mid);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(w.get(50 + i), v.get(50 + i));
  EXPECT_EQ(w.slice(0, 50).popcount(), 0u);
}

TEST(BitVec, HammingDistanceCountsDiffs) {
  BitVec a(128);
  BitVec b(128);
  EXPECT_EQ(a.hamming_distance(b), 0u);
  b.set(0, true);
  b.set(127, true);
  EXPECT_EQ(a.hamming_distance(b), 2u);
  a.set(0, true);
  EXPECT_EQ(a.hamming_distance(b), 1u);
}

TEST(BitVec, SetPositionsAscending) {
  BitVec v(300);
  v.set(3, true);
  v.set(64, true);
  v.set(299, true);
  const auto pos = v.set_positions();
  ASSERT_EQ(pos.size(), 3u);
  EXPECT_EQ(pos[0], 3u);
  EXPECT_EQ(pos[1], 64u);
  EXPECT_EQ(pos[2], 299u);
}

TEST(BitVec, BytesRoundTrip) {
  std::vector<std::uint8_t> bytes = {0x01, 0x80, 0xff, 0x00, 0xa5};
  const BitVec v = BitVec::from_bytes(bytes);
  EXPECT_EQ(v.size(), 40u);
  EXPECT_TRUE(v.get(0));     // 0x01 LSB
  EXPECT_TRUE(v.get(15));    // 0x80 MSB of byte 1
  EXPECT_FALSE(v.get(14));
  EXPECT_EQ(v.to_bytes(), bytes);
}

TEST(BitVec, EqualityComparesContent) {
  BitVec a(64);
  BitVec b(64);
  EXPECT_EQ(a, b);
  a.set(5, true);
  EXPECT_NE(a, b);
  b.set(5, true);
  EXPECT_EQ(a, b);
}

TEST(BitVec, ToStringLsbFirst) {
  BitVec v(4);
  v.set(0, true);
  v.set(3, true);
  EXPECT_EQ(v.to_string(), "1001");
}

// --- word-level fast paths, cross-checked against per-bit loops -------

BitVec random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.chance(0.5));
  return v;
}

TEST(BitVec, SliceMatchesBitLoopAtEveryOffset) {
  const BitVec v = random_vec(260, 21);
  for (std::size_t pos = 0; pos < 140; ++pos) {
    for (std::size_t len : {std::size_t{1}, std::size_t{63}, std::size_t{64},
                            std::size_t{65}, std::size_t{120}}) {
      const BitVec s = v.slice(pos, len);
      ASSERT_EQ(s.size(), len);
      for (std::size_t i = 0; i < len; ++i) {
        ASSERT_EQ(s.get(i), v.get(pos + i)) << "pos=" << pos << " len=" << len
                                            << " i=" << i;
      }
      // Pad bits must be zero or operator== / word scans break.
      BitVec copy = s;
      copy.clear();
      for (std::size_t i = 0; i < len; ++i) copy.set(i, s.get(i));
      ASSERT_EQ(copy, s);
    }
  }
}

TEST(BitVec, SpliceMatchesBitLoopAtEveryOffset) {
  const BitVec src = random_vec(130, 22);
  for (std::size_t pos = 0; pos < 120; ++pos) {
    BitVec a = random_vec(260, 23);
    BitVec b = a;
    a.splice(pos, src);
    for (std::size_t i = 0; i < src.size(); ++i) b.set(pos + i, src.get(i));
    ASSERT_EQ(a, b) << "pos=" << pos;
  }
}

TEST(BitVec, ParityMatchesPopcount) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const BitVec v = random_vec(127 + seed, 100 + seed);
    EXPECT_EQ(v.parity(), (v.popcount() & 1u) != 0);
  }
}

TEST(BitVec, MaskedParityMatchesBitLoop) {
  Rng rng(31);
  const BitVec v = random_vec(200, 32);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint64_t> mask(4);
    for (auto& w : mask) {
      w = rng.engine()();
    }
    bool expect = false;
    for (std::size_t i = 0; i < v.size(); ++i) {
      const bool mbit = (mask[i >> 6] >> (i & 63)) & 1u;
      expect ^= mbit && v.get(i);
    }
    EXPECT_EQ(v.masked_parity(mask), expect);
  }
}

TEST(BitVec, MaskedParityIgnoresMaskBeyondSize) {
  BitVec v(65);
  v.set(64, true);
  // Mask longer than the vector: the tail words contribute nothing.
  std::vector<std::uint64_t> mask = {0, ~0ull, ~0ull, ~0ull};
  EXPECT_TRUE(v.masked_parity(mask));
  std::vector<std::uint64_t> shorter = {~0ull};  // shorter than the vector
  EXPECT_FALSE(v.masked_parity(shorter));
}

TEST(BitVec, FromU64KeepsLowBits) {
  const BitVec v = BitVec::from_u64(0xdeadbeefcafe1234ull, 48);
  EXPECT_EQ(v.size(), 48u);
  for (std::size_t i = 0; i < 48; ++i) {
    EXPECT_EQ(v.get(i), ((0xdeadbeefcafe1234ull >> i) & 1u) != 0);
  }
  // Bits at and above nbits are dropped, keeping the pad invariant.
  BitVec copy(48);
  for (std::size_t i = 0; i < 48; ++i) copy.set(i, v.get(i));
  EXPECT_EQ(copy, v);
}

TEST(BitVec, BytesRoundTripWide) {
  Rng rng(44);
  std::vector<std::uint8_t> bytes(72);  // 576 bits, the MECC line size
  for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
  const BitVec v = BitVec::from_bytes(bytes);
  EXPECT_EQ(v.size(), 576u);
  for (std::size_t i = 0; i < 576; ++i) {
    EXPECT_EQ(v.get(i), ((bytes[i / 8] >> (i % 8)) & 1u) != 0);
  }
  EXPECT_EQ(v.to_bytes(), bytes);
}

}  // namespace
}  // namespace mecc
