#include "common/bitvec.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mecc {
namespace {

TEST(BitVec, StartsAllZero) {
  BitVec v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_FALSE(v.any());
  EXPECT_EQ(v.popcount(), 0u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVec, SetGetFlip) {
  BitVec v(70);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(69, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(69));
  EXPECT_EQ(v.popcount(), 4u);
  v.flip(63);
  EXPECT_FALSE(v.get(63));
  v.flip(63);
  EXPECT_TRUE(v.get(63));
  v.set(64, false);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.popcount(), 3u);
}

TEST(BitVec, ClearZeroesEverything) {
  BitVec v(130);
  for (std::size_t i = 0; i < 130; i += 3) v.set(i, true);
  EXPECT_TRUE(v.any());
  v.clear();
  EXPECT_FALSE(v.any());
  EXPECT_EQ(v.size(), 130u);
}

TEST(BitVec, XorIsBitwise) {
  BitVec a(65);
  BitVec b(65);
  a.set(1, true);
  a.set(64, true);
  b.set(1, true);
  b.set(2, true);
  const BitVec c = a ^ b;
  EXPECT_FALSE(c.get(1));
  EXPECT_TRUE(c.get(2));
  EXPECT_TRUE(c.get(64));
  EXPECT_EQ(c.popcount(), 2u);
}

TEST(BitVec, XorWithSelfIsZero) {
  BitVec a(512);
  Rng rng(7);
  for (std::size_t i = 0; i < 512; ++i) a.set(i, rng.chance(0.5));
  const BitVec z = a ^ a;
  EXPECT_FALSE(z.any());
}

TEST(BitVec, SliceAndSpliceRoundTrip) {
  BitVec v(200);
  Rng rng(11);
  for (std::size_t i = 0; i < 200; ++i) v.set(i, rng.chance(0.5));
  const BitVec mid = v.slice(50, 100);
  EXPECT_EQ(mid.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(mid.get(i), v.get(50 + i));

  BitVec w(200);
  w.splice(50, mid);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(w.get(50 + i), v.get(50 + i));
  EXPECT_EQ(w.slice(0, 50).popcount(), 0u);
}

TEST(BitVec, HammingDistanceCountsDiffs) {
  BitVec a(128);
  BitVec b(128);
  EXPECT_EQ(a.hamming_distance(b), 0u);
  b.set(0, true);
  b.set(127, true);
  EXPECT_EQ(a.hamming_distance(b), 2u);
  a.set(0, true);
  EXPECT_EQ(a.hamming_distance(b), 1u);
}

TEST(BitVec, SetPositionsAscending) {
  BitVec v(300);
  v.set(3, true);
  v.set(64, true);
  v.set(299, true);
  const auto pos = v.set_positions();
  ASSERT_EQ(pos.size(), 3u);
  EXPECT_EQ(pos[0], 3u);
  EXPECT_EQ(pos[1], 64u);
  EXPECT_EQ(pos[2], 299u);
}

TEST(BitVec, BytesRoundTrip) {
  std::vector<std::uint8_t> bytes = {0x01, 0x80, 0xff, 0x00, 0xa5};
  const BitVec v = BitVec::from_bytes(bytes);
  EXPECT_EQ(v.size(), 40u);
  EXPECT_TRUE(v.get(0));     // 0x01 LSB
  EXPECT_TRUE(v.get(15));    // 0x80 MSB of byte 1
  EXPECT_FALSE(v.get(14));
  EXPECT_EQ(v.to_bytes(), bytes);
}

TEST(BitVec, EqualityComparesContent) {
  BitVec a(64);
  BitVec b(64);
  EXPECT_EQ(a, b);
  a.set(5, true);
  EXPECT_NE(a, b);
  b.set(5, true);
  EXPECT_EQ(a, b);
}

TEST(BitVec, ToStringLsbFirst) {
  BitVec v(4);
  v.set(0, true);
  v.set(3, true);
  EXPECT_EQ(v.to_string(), "1001");
}

}  // namespace
}  // namespace mecc
