#include "common/json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace mecc {
namespace {

TEST(JsonEscape, PlainStringsPassThroughQuoted) {
  EXPECT_EQ(json_escape(""), "\"\"");
  EXPECT_EQ(json_escape("dram.acts"), "\"dram.acts\"");
  EXPECT_EQ(json_escape("a b c 0-9 _~!"), "\"a b c 0-9 _~!\"");
}

TEST(JsonEscape, QuotesAndBackslashes) {
  EXPECT_EQ(json_escape("say \"hi\""), "\"say \\\"hi\\\"\"");
  EXPECT_EQ(json_escape("C:\\path\\file"), "\"C:\\\\path\\\\file\"");
  EXPECT_EQ(json_escape("\\\""), "\"\\\\\\\"\"");
}

TEST(JsonEscape, NamedControlCharacters) {
  EXPECT_EQ(json_escape("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(json_escape("a\tb"), "\"a\\tb\"");
  EXPECT_EQ(json_escape("a\rb"), "\"a\\rb\"");
  EXPECT_EQ(json_escape("a\bb"), "\"a\\bb\"");
  EXPECT_EQ(json_escape("a\fb"), "\"a\\fb\"");
}

TEST(JsonEscape, EveryRemainingControlCharacterUsesUForm) {
  // All of 0x00..0x1F must be escaped — a raw control byte inside a
  // string literal is invalid JSON. The five named ones are covered
  // above; everything else gets \u00XX.
  for (int c = 0; c < 0x20; ++c) {
    if (c == 0x08 || c == 0x09 || c == 0x0A || c == 0x0C || c == 0x0D)
      continue;
    const std::string out = json_escape(std::string(1, static_cast<char>(c)));
    char expect[8];
    std::snprintf(expect, sizeof expect, "\\u%04x", c);
    EXPECT_EQ(out, std::string("\"") + expect + "\"")
        << "control byte " << c;
  }
}

TEST(JsonEscape, ValidUtf8PassesThroughUnchanged) {
  // 2-, 3- and 4-byte sequences: é, €, 𝄞.
  EXPECT_EQ(json_escape("caf\xC3\xA9"), "\"caf\xC3\xA9\"");
  EXPECT_EQ(json_escape("\xE2\x82\xAC"), "\"\xE2\x82\xAC\"");
  EXPECT_EQ(json_escape("\xF0\x9D\x84\x9E"), "\"\xF0\x9D\x84\x9E\"");
}

TEST(JsonEscape, InvalidBytesAreEscapedNotLeaked) {
  // Lone continuation byte.
  EXPECT_EQ(json_escape("\x80"), "\"\\u0080\"");
  // Invalid lead bytes (0xC0/0xC1 are always-overlong; 0xFF is not a
  // lead at all).
  EXPECT_EQ(json_escape("\xC0\xAF"), "\"\\u00c0\\u00af\"");
  EXPECT_EQ(json_escape("\xFF"), "\"\\u00ff\"");
  // Truncated sequence at end of string.
  EXPECT_EQ(json_escape("a\xE2\x82"), "\"a\\u00e2\\u0082\"");
  // Lead followed by a non-continuation byte.
  EXPECT_EQ(json_escape("\xC3(x"), "\"\\u00c3(x\"");
}

TEST(JsonEscape, OverlongSurrogateAndOutOfRangeAreRejected) {
  // Overlong 3-byte encoding of '/' (E0 80 AF).
  EXPECT_EQ(json_escape("\xE0\x80\xAF"), "\"\\u00e0\\u0080\\u00af\"");
  // UTF-16 surrogate half U+D800 (ED A0 80) — not a Unicode scalar.
  EXPECT_EQ(json_escape("\xED\xA0\x80"), "\"\\u00ed\\u00a0\\u0080\"");
  // Above U+10FFFF (F4 90 80 80).
  EXPECT_EQ(json_escape("\xF4\x90\x80\x80"),
            "\"\\u00f4\\u0090\\u0080\\u0080\"");
}

TEST(JsonEscape, MixedValidAndInvalidBytes) {
  EXPECT_EQ(json_escape("ok\xC3\xA9\xFF\"end\n"),
            "\"ok\xC3\xA9\\u00ff\\\"end\\n\"");
}

TEST(JsonWriter, PrettyModeMatchesExistingEmissions) {
  JsonWriter w(2);
  w.begin_object();
  w.key("a");
  w.value(std::uint64_t{1});
  w.key("b");
  w.begin_array();
  w.value(2.5);
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(), "{\n  \"a\": 1,\n  \"b\": [\n    2.5\n  ]\n}");
}

TEST(JsonWriter, CompactModeHasNoWhitespace) {
  JsonWriter w(-1);
  w.begin_object();
  w.key("cycle");
  w.value(std::uint64_t{100});
  w.key("phase");
  w.value("active");
  w.key("counters");
  w.begin_object();
  w.key("dram.acts");
  w.value(std::uint64_t{7});
  w.end_object();
  w.key("list");
  w.begin_array();
  w.value(true);
  w.value(false);
  w.end_array();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"cycle\":100,\"phase\":\"active\","
            "\"counters\":{\"dram.acts\":7},\"list\":[true,false]}");
}

TEST(JsonWriter, CompactStringsStillEscape) {
  JsonWriter w(-1);
  w.begin_object();
  w.key("k\n");
  w.value("v\"");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"k\\n\":\"v\\\"\"}");
}

}  // namespace
}  // namespace mecc
