// Host-side self-profiler suite (docs/OBSERVABILITY.md): the disabled
// path records nothing, enabled scopes aggregate per component x phase,
// sampled scopes count every call but time only 1-in-stride, and the
// exports (profile.* stats, mecc-profile-v1 JSON) carry the aggregates.
//
// HostProfiler is process-global, so every test uses its own unique
// phase names and restores the disabled default before returning.
#include "common/profile.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"

namespace mecc::prof {
namespace {

/// RAII: enable/disable around a test body, reset aggregates both ways.
class ProfilerGuard {
 public:
  explicit ProfilerGuard(bool on) {
    HostProfiler::instance().reset();
    HostProfiler::set_enabled(on);
  }
  ~ProfilerGuard() {
    HostProfiler::set_enabled(false);
    HostProfiler::instance().reset();
  }
};

[[nodiscard]] PhaseStat find_phase(const char* component, const char* phase) {
  for (const PhaseStat& p : HostProfiler::instance().report()) {
    if (p.component == component && p.phase == phase) return p;
  }
  return PhaseStat{};
}

/// Burns wall time until the monotonic clock visibly advances, so a
/// timed scope is guaranteed a nonzero duration on any clock
/// granularity.
void spin_one_tick() {
  const std::uint64_t t0 = monotonic_ns();
  while (monotonic_ns() == t0) {
  }
}

TEST(HostProfiler, DisabledScopeRecordsNothing) {
  ProfilerGuard guard(/*on=*/false);
  const std::size_t slot = HostProfiler::instance().slot("test", "off");
  for (int i = 0; i < 5; ++i) {
    ScopedTimer t(slot);
    spin_one_tick();
  }
  const PhaseStat p = find_phase("test", "off");
  EXPECT_EQ(p.calls, 0u);
  EXPECT_EQ(p.timed, 0u);
  EXPECT_EQ(p.measured_ns, 0u);
  EXPECT_EQ(p.est_ns(), 0u);
}

TEST(HostProfiler, EnabledScopeAccumulatesWallTime) {
  ProfilerGuard guard(/*on=*/true);
  const std::size_t slot = HostProfiler::instance().slot("test", "on");
  for (int i = 0; i < 3; ++i) {
    ScopedTimer t(slot);
    spin_one_tick();
  }
  const PhaseStat p = find_phase("test", "on");
  EXPECT_EQ(p.calls, 3u);
  EXPECT_EQ(p.timed, 3u);
  EXPECT_GT(p.measured_ns, 0u);
  // Unsampled scopes: the estimate IS the measurement.
  EXPECT_EQ(p.est_ns(), p.measured_ns);
}

TEST(HostProfiler, SampledScopeTimesOneInStrideAndQuantizesCalls) {
  ProfilerGuard guard(/*on=*/true);
  const std::size_t slot = HostProfiler::instance().slot("test", "sampled");
  std::uint64_t site_count = 0;
  constexpr std::uint64_t kStride = SampledScopedTimer::kSampleStride;
  constexpr std::uint64_t kCalls = 2 * kStride + 2;
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    SampledScopedTimer t(slot, site_count);
    if (i % kStride == 0) spin_one_tick();
  }
  EXPECT_EQ(site_count, kCalls);
  const PhaseStat p = find_phase("test", "sampled");
  // Calls 0, kStride, 2*kStride read the clock; each stands in for a
  // full stride block, so the reported call count is quantized.
  EXPECT_EQ(p.timed, 3u);
  EXPECT_EQ(p.calls, 3 * kStride);
  EXPECT_GT(p.measured_ns, 0u);
  // est_ns scales the sampled time back up to the full block count.
  EXPECT_EQ(p.est_ns(), p.measured_ns * kStride);
}

TEST(HostProfiler, ExportStatsEmitsProfileComponentKeys) {
  ProfilerGuard guard(/*on=*/true);
  const std::size_t slot = HostProfiler::instance().slot("test", "export");
  {
    ScopedTimer t(slot);
    spin_one_tick();
  }
  StatSet out;
  HostProfiler::instance().export_stats(out);
  EXPECT_EQ(out.counter("test.export.calls"), 1u);
  // Zero-call slots (registered but never entered) are skipped.
  const std::size_t idle =
      HostProfiler::instance().slot("test", "never_entered");
  (void)idle;
  StatSet again;
  HostProfiler::instance().export_stats(again);
  EXPECT_EQ(again.counter("test.never_entered.calls"), 0u);
}

TEST(HostProfiler, JsonReportCarriesSchemaAndSpans) {
  ProfilerGuard guard(/*on=*/true);
  const std::size_t slot = HostProfiler::instance().slot("test", "json");
  {
    ScopedTimer t(slot);
    spin_one_tick();
  }
  const std::string doc = HostProfiler::instance().json();
  EXPECT_NE(doc.find("\"schema\":\"mecc-profile-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"component\":\"test\""), std::string::npos);
  EXPECT_NE(doc.find("\"phase\":\"json\""), std::string::npos);
  // The Perfetto track: one 'X' span plus its thread_name metadata.
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("host.test.json"), std::string::npos);
  EXPECT_EQ(doc.back(), '\n');
}

TEST(HostProfiler, ResetDropsAggregatesButKeepsSlots) {
  ProfilerGuard guard(/*on=*/true);
  const std::size_t slot = HostProfiler::instance().slot("test", "reset");
  {
    ScopedTimer t(slot);
    spin_one_tick();
  }
  ASSERT_EQ(find_phase("test", "reset").calls, 1u);
  HostProfiler::instance().reset();
  const PhaseStat p = find_phase("test", "reset");
  // Slot still registered (component/phase resolve) with zeroed counts.
  EXPECT_EQ(p.component, "test");
  EXPECT_EQ(p.calls, 0u);
  EXPECT_EQ(p.measured_ns, 0u);
  // And the slot index stays stable across the reset.
  EXPECT_EQ(HostProfiler::instance().slot("test", "reset"), slot);
}

TEST(HostProfiler, NullScopedTimerIsAnInertStandIn) {
  // The !kObserved template instantiation constructs this with the
  // SampledScopedTimer shape; it must accept it and do nothing.
  std::uint64_t site_count = 7;
  NullScopedTimer t(0, site_count);
  EXPECT_EQ(site_count, 7u);
}

}  // namespace
}  // namespace mecc::prof
