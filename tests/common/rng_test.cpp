#include "common/rng.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace mecc {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_below(1'000'000), b.next_below(1'000'000));
  }
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(13), 13u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextGeometricIsAtLeastOne) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.next_geometric(5.0), 1u);
  }
}

// Regression: mean < 1 used to produce p = 1/mean > 1, undefined
// behavior for std::geometric_distribution. Means <= 1 (and NaN) must
// degenerate to the minimum gap of 1.
TEST(Rng, NextGeometricBoundaryMeans) {
  Rng rng(11);
  EXPECT_EQ(rng.next_geometric(0.25), 1u);
  EXPECT_EQ(rng.next_geometric(0.999), 1u);
  EXPECT_EQ(rng.next_geometric(1.0), 1u);
  EXPECT_EQ(rng.next_geometric(0.0), 1u);
  EXPECT_EQ(rng.next_geometric(-3.0), 1u);
  EXPECT_EQ(rng.next_geometric(std::numeric_limits<double>::quiet_NaN()),
            1u);
}

// Degenerate means must not advance the engine, so a sweep crossing 1.0
// stays reproducible on the > 1 side.
TEST(Rng, DegenerateMeanDoesNotPerturbStream) {
  Rng with_degenerate(5);
  Rng without(5);
  (void)with_degenerate.next_geometric(0.5);  // no engine draw
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(with_degenerate.next_geometric(20.0),
              without.next_geometric(20.0));
  }
}

TEST(Rng, GeometricMeanRoughlyMatches) {
  Rng rng(1);
  const double mean = 50.0;
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.next_geometric(mean));
  }
  // X ~ Geometric(1/mean) has E[X] = mean - 1; we return X + 1.
  EXPECT_NEAR(sum / n, mean, mean * 0.1);
}

}  // namespace
}  // namespace mecc
