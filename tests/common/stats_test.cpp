#include "common/stats.h"

#include <gtest/gtest.h>

namespace mecc {
namespace {

TEST(StatSet, CountersAccumulate) {
  StatSet s;
  EXPECT_EQ(s.counter("reads"), 0u);
  s.add("reads");
  s.add("reads", 4);
  EXPECT_EQ(s.counter("reads"), 5u);
}

TEST(StatSet, GaugesOverwrite) {
  StatSet s;
  s.set_gauge("ipc", 1.0);
  s.set_gauge("ipc", 0.5);
  EXPECT_DOUBLE_EQ(s.gauge("ipc"), 0.5);
  EXPECT_DOUBLE_EQ(s.gauge("missing"), 0.0);
}

TEST(StatSet, MergePrefixesNames) {
  StatSet child;
  child.add("acts", 10);
  child.set_gauge("power_mw", 42.0);
  StatSet parent;
  parent.add("dram.acts", 1);
  parent.merge("dram.", child);
  EXPECT_EQ(parent.counter("dram.acts"), 11u);
  EXPECT_DOUBLE_EQ(parent.gauge("dram.power_mw"), 42.0);
}

TEST(StatSet, ResetClears) {
  StatSet s;
  s.add("x", 3);
  s.set_gauge("g", 1.0);
  s.reset();
  EXPECT_EQ(s.counter("x"), 0u);
  EXPECT_DOUBLE_EQ(s.gauge("g"), 0.0);
  EXPECT_TRUE(s.counters().empty());
}

}  // namespace
}  // namespace mecc
