#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace mecc {
namespace {

TEST(StatSet, CountersAccumulate) {
  StatSet s;
  EXPECT_EQ(s.counter("reads"), 0u);
  s.add("reads");
  s.add("reads", 4);
  EXPECT_EQ(s.counter("reads"), 5u);
}

TEST(StatSet, GaugesOverwrite) {
  StatSet s;
  s.set_gauge("ipc", 1.0);
  s.set_gauge("ipc", 0.5);
  EXPECT_DOUBLE_EQ(s.gauge("ipc"), 0.5);
  EXPECT_DOUBLE_EQ(s.gauge("missing"), 0.0);
}

TEST(StatSet, MergePrefixesNames) {
  StatSet child;
  child.add("acts", 10);
  child.set_gauge("power_mw", 42.0);
  StatSet parent;
  parent.add("dram.acts", 1);
  parent.merge("dram.", child);
  EXPECT_EQ(parent.counter("dram.acts"), 11u);
  EXPECT_DOUBLE_EQ(parent.gauge("dram.power_mw"), 42.0);
}

TEST(StatSet, ResetClears) {
  StatSet s;
  s.add("x", 3);
  s.set_gauge("g", 1.0);
  s.record("d", 2.0);
  s.reset();
  EXPECT_EQ(s.counter("x"), 0u);
  EXPECT_DOUBLE_EQ(s.gauge("g"), 0.0);
  EXPECT_TRUE(s.counters().empty());
  EXPECT_TRUE(s.empty());
}

TEST(Distribution, RecordTracksMoments) {
  Distribution d;
  EXPECT_EQ(d.count, 0u);
  EXPECT_DOUBLE_EQ(d.mean(), 0.0);
  d.record(4.0);
  d.record(-2.0);
  d.record(10.0);
  EXPECT_EQ(d.count, 3u);
  EXPECT_DOUBLE_EQ(d.sum, 12.0);
  EXPECT_DOUBLE_EQ(d.min, -2.0);
  EXPECT_DOUBLE_EQ(d.max, 10.0);
  EXPECT_DOUBLE_EQ(d.mean(), 4.0);
}

TEST(Distribution, MergePoolsSummaries) {
  Distribution a;
  a.record(1.0);
  a.record(3.0);
  Distribution b;
  b.record(-5.0);
  Distribution empty;

  a.merge(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_DOUBLE_EQ(a.min, -5.0);
  EXPECT_DOUBLE_EQ(a.max, 3.0);
  EXPECT_DOUBLE_EQ(a.sum, -1.0);

  // Merging an empty summary is the identity, in both directions.
  Distribution before = a;
  a.merge(empty);
  EXPECT_EQ(a, before);
  empty.merge(a);
  EXPECT_EQ(empty, a);
}

TEST(StatSet, DistributionsMergeWithPrefix) {
  StatSet child;
  child.record("queue_depth", 2.0);
  child.record("queue_depth", 6.0);
  StatSet parent;
  parent.record("memctrl.queue_depth", 1.0);
  parent.merge("memctrl.", child);
  const Distribution d = parent.dist("memctrl.queue_depth");
  EXPECT_EQ(d.count, 3u);
  EXPECT_DOUBLE_EQ(d.min, 1.0);
  EXPECT_DOUBLE_EQ(d.max, 6.0);
}

TEST(StatRegistry, SnapshotMergesProvidersUnderComponentPrefix) {
  StatRegistry reg;
  std::uint64_t reads = 3;
  reg.register_component("dram", [&](StatSet& s) { s.add("acts", reads); });
  reg.register_component("cpu", [](StatSet& s) {
    s.set_gauge("ipc", 0.75);
    s.record("stall", 4.0);
  });

  const StatSet snap = reg.snapshot();
  EXPECT_EQ(snap.counter("dram.acts"), 3u);
  EXPECT_DOUBLE_EQ(snap.gauge("cpu.ipc"), 0.75);
  EXPECT_EQ(snap.dist("cpu.stall").count, 1u);

  // Providers are pull-based: a later snapshot sees updated state.
  reads = 10;
  EXPECT_EQ(reg.snapshot().counter("dram.acts"), 10u);

  const auto names = reg.components();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "dram");
  EXPECT_EQ(names[1], "cpu");
}

TEST(StatRegistry, DuplicateComponentRegistrationThrows) {
  StatRegistry reg;
  reg.register_component("dram", [](StatSet& s) { s.add("acts", 1); });
  // A second provider under the same prefix would silently double every
  // key it emits; it must be rejected loudly (and not only in debug
  // builds — release builds throw too).
  try {
    reg.register_component("dram", [](StatSet& s) { s.add("acts", 9); });
    FAIL() << "duplicate registration was accepted";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("dram"), std::string::npos)
        << "error should name the offending component: " << e.what();
  }
  // The registry is untouched by the rejected registration.
  EXPECT_EQ(reg.components().size(), 1u);
  EXPECT_EQ(reg.snapshot().counter("dram.acts"), 1u);
}

TEST(StatRegistry, SnapshotsAreRepeatable) {
  StatRegistry reg;
  reg.register_component("a", [](StatSet& s) { s.add("n", 2); });
  reg.register_component("b", [](StatSet& s) { s.set_gauge("g", 1.5); });
  EXPECT_EQ(reg.snapshot(), reg.snapshot());
  reg.clear();
  EXPECT_TRUE(reg.snapshot().empty());
  EXPECT_TRUE(reg.components().empty());
}


TEST(QuantileSketch, EmptySketchReportsZeros) {
  QuantileSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(QuantileSketch, QuantilesWithinRelativeBucketError) {
  // 1..10000 uniformly: every quantile must land within the 2^(1/32)-1
  // (~2.2%) relative bucket width of the exact order statistic.
  QuantileSketch s;
  for (int i = 1; i <= 10000; ++i) s.record(static_cast<double>(i));
  const double tol = 0.023;
  for (double q : {0.01, 0.25, 0.5, 0.9, 0.99, 0.999}) {
    const double exact = q * 10000.0;
    const double got = s.quantile(q);
    EXPECT_NEAR(got / exact, 1.0, tol) << "q=" << q;
  }
  // Extremes are exact, not bucketed.
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10000.0);
}

TEST(QuantileSketch, NonPositiveSamplesShareTheUnderflowBucket) {
  QuantileSketch s;
  s.record(-3.0);
  s.record(0.0);
  s.record(8.0);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  // Rank 1 and 2 fall in the underflow bucket, reported as its
  // representative 0 clamped to the observed min.
  EXPECT_LE(s.quantile(0.3), 0.0);
  EXPECT_GT(s.quantile(0.999), 1.0);
}

TEST(QuantileSketch, MergeIsOrderInvariant) {
  QuantileSketch a;
  QuantileSketch b;
  QuantileSketch all;
  for (int i = 0; i < 1000; ++i) {
    const double v = 0.5 + static_cast<double>((i * 37) % 97);
    (i % 2 == 0 ? a : b).record(v);
    all.record(v);
  }
  QuantileSketch ab = a;
  ab.merge(b);
  QuantileSketch ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab, all);  // equal sample multisets => identical sketches
}

TEST(QuantileSketch, RecordNMatchesRepeatedRecord) {
  QuantileSketch bulk;
  bulk.record(3.25, 5);
  QuantileSketch loop;
  for (int i = 0; i < 5; ++i) loop.record(3.25);
  EXPECT_EQ(bulk, loop);
}

TEST(QuantileSketch, RestoreRoundTripsExactly) {
  QuantileSketch s;
  for (int i = 1; i <= 257; ++i) s.record(static_cast<double>(i) * 0.37);
  QuantileSketch restored;
  restored.restore(s.buckets(), s.count(), s.sum(), s.min(), s.max());
  EXPECT_EQ(s, restored);
  EXPECT_DOUBLE_EQ(s.quantile(0.99), restored.quantile(0.99));
}

// ---- streaming-merge properties (telemetry hub, docs/OBSERVABILITY.md)
//
// The live fleet dashboard folds partial per-shard sketches into a
// rolling population snapshot in *arrival* order, which changes from
// poll to poll; the aggregate must not depend on it.

namespace {

/// Deterministic spread of positive samples for shard `k`.
[[nodiscard]] QuantileSketch shard_sketch(int k, int samples) {
  QuantileSketch s;
  std::uint64_t x = 0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(k + 1);
  for (int i = 0; i < samples; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const double v =
        static_cast<double>(x % 100'000) / 997.0 + 1e-3 * (k + 1);
    s.record(v);
  }
  return s;
}

}  // namespace

TEST(QuantileSketch, IncrementalMergeMatchesOneShot) {
  // 8 shard sketches of uneven sizes, folded one at a time (the
  // streaming path) vs all at once into a fresh sketch.
  std::vector<QuantileSketch> shards;
  QuantileSketch one_shot;
  for (int k = 0; k < 8; ++k) {
    shards.push_back(shard_sketch(k, 50 + 37 * k));
    one_shot.merge(shards.back());
  }
  QuantileSketch incremental;
  for (const auto& s : shards) incremental.merge(s);
  EXPECT_EQ(incremental, one_shot);
  EXPECT_DOUBLE_EQ(incremental.quantile(0.5), one_shot.quantile(0.5));
  EXPECT_DOUBLE_EQ(incremental.quantile(0.999), one_shot.quantile(0.999));
}

TEST(QuantileSketch, MergeIsAssociativeAndOrderIndependent) {
  // Buckets, count, min, and max are exactly order-independent (integer
  // counts in a sorted map, min/max folds). `sum` is a floating-point
  // accumulation, so reordering may move it by an ulp — byte-identity of
  // fleet aggregates comes from merging in shard-id order, not from
  // sum being associative. Assert exactly what the sketch guarantees.
  std::vector<QuantileSketch> shards;
  for (int k = 0; k < 6; ++k) shards.push_back(shard_sketch(k, 64 + 11 * k));
  // Left fold in index order.
  QuantileSketch left;
  for (const auto& s : shards) left.merge(s);
  // Reverse order.
  QuantileSketch rev;
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) rev.merge(*it);
  // Pairwise tree: (0+1) + (2+3) + (4+5).
  QuantileSketch tree;
  for (int k = 0; k < 6; k += 2) {
    QuantileSketch pair = shards[static_cast<std::size_t>(k)];
    pair.merge(shards[static_cast<std::size_t>(k + 1)]);
    tree.merge(pair);
  }
  for (const QuantileSketch* other : {&rev, &tree}) {
    EXPECT_EQ(left.buckets(), other->buckets());
    EXPECT_EQ(left.count(), other->count());
    EXPECT_EQ(left.min(), other->min());
    EXPECT_EQ(left.max(), other->max());
    EXPECT_NEAR(left.sum(), other->sum(), 16 * std::abs(left.sum()) *
                                              std::numeric_limits<double>::epsilon());
    EXPECT_DOUBLE_EQ(left.quantile(0.5), other->quantile(0.5));
    EXPECT_DOUBLE_EQ(left.quantile(0.99), other->quantile(0.99));
  }
}

TEST(QuantileSketch, RestoreThenMergeMatchesDirectMerge) {
  // The telemetry hub merges sketches that round-tripped through the
  // progress-record JSON (buckets + moments): restoring before merging
  // must land on the same aggregate as merging the originals.
  const QuantileSketch a = shard_sketch(1, 123);
  const QuantileSketch b = shard_sketch(2, 321);
  QuantileSketch direct = a;
  direct.merge(b);
  QuantileSketch ra;
  ra.restore(a.buckets(), a.count(), a.sum(), a.min(), a.max());
  QuantileSketch rb;
  rb.restore(b.buckets(), b.count(), b.sum(), b.min(), b.max());
  QuantileSketch via_restore = ra;
  via_restore.merge(rb);
  EXPECT_EQ(direct, via_restore);
  EXPECT_DOUBLE_EQ(direct.quantile(0.99), via_restore.quantile(0.99));
}

}  // namespace
}  // namespace mecc
