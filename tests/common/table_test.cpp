#include "common/table.h"

#include <gtest/gtest.h>

namespace mecc {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "2.5"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Header line and separator precede rows.
  EXPECT_LT(out.find("name"), out.find("----"));
  EXPECT_LT(out.find("----"), out.find("longer"));
}

TEST(TextTable, NumberFormatting) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::sci(0.018, 1), "1.8e-02");
  EXPECT_EQ(TextTable::pct(-0.102, 1), "-10.2%");
  EXPECT_EQ(TextTable::pct(0.01, 1), "+1.0%");
}

TEST(AsciiBar, ScalesWithValue) {
  EXPECT_EQ(ascii_bar(0.0, 1.0, 10), "");
  EXPECT_EQ(ascii_bar(1.0, 1.0, 10), "##########");
  EXPECT_EQ(ascii_bar(0.5, 1.0, 10), "#####");
  EXPECT_EQ(ascii_bar(2.0, 1.0, 10), "##########");  // clamped
  EXPECT_EQ(ascii_bar(1.0, 0.0, 10), "");            // degenerate max
}

}  // namespace
}  // namespace mecc
