#include "common/trace.h"

#include <gtest/gtest.h>

#include <string>

namespace mecc::tracing {
namespace {

TraceConfig small_config(std::uint64_t limit,
                         std::uint32_t categories = kAllCategories) {
  TraceConfig c;
  c.enabled = true;
  c.categories = categories;
  c.limit = limit;
  return c;
}

TEST(ParseCategories, EmptyAndAllSelectEverything) {
  EXPECT_EQ(parse_categories(""), kAllCategories);
  EXPECT_EQ(parse_categories("all"), kAllCategories);
}

TEST(ParseCategories, SingleAndCsvLists) {
  EXPECT_EQ(parse_categories("dram"), category_bit(Category::kDram));
  EXPECT_EQ(parse_categories("dram,power,epoch"),
            category_bit(Category::kDram) | category_bit(Category::kPower) |
                category_bit(Category::kEpoch));
}

TEST(ParseCategories, EveryNameRoundTrips) {
  for (std::size_t i = 0; i < kNumCategories; ++i) {
    const Category c = static_cast<Category>(i);
    const auto mask = parse_categories(category_name(c));
    ASSERT_TRUE(mask.has_value()) << category_name(c);
    EXPECT_EQ(*mask, category_bit(c));
  }
}

TEST(ParseCategories, UnknownNameIsAnError) {
  EXPECT_FALSE(parse_categories("dram,banana").has_value());
  EXPECT_FALSE(parse_categories("DRAM").has_value());  // case-sensitive
}

TEST(Tracer, CategoryFilterDropsDisabledEvents) {
  Tracer t(small_config(64, category_bit(Category::kDram)));
  t.instant(Category::kDram, kTrackDramCmd, "ACT", 10);
  t.instant(Category::kMorph, kTrackMorph, "downgrade", 11);
  t.counter(Category::kQueue, kTrackQueues, "read_q", 12, 1.0);
  EXPECT_EQ(t.recorded(), 1u);
  EXPECT_EQ(t.dropped(), 0u);  // filtered != dropped
  const std::string j = t.json();
  EXPECT_NE(j.find("\"ACT\""), std::string::npos);
  EXPECT_EQ(j.find("downgrade"), std::string::npos);
  EXPECT_EQ(j.find("read_q"), std::string::npos);
}

TEST(Tracer, RingKeepsTheNewestEventsAndCountsDrops) {
  Tracer t(small_config(4));
  for (std::uint64_t i = 0; i < 10; ++i) {
    t.instant(Category::kDram, kTrackDramCmd, "RD", i, "n", i);
  }
  EXPECT_EQ(t.recorded(), 4u);
  EXPECT_EQ(t.dropped(), 6u);
  const std::string j = t.json();
  // Newest four (ts 6..9) survive; oldest six are gone.
  EXPECT_EQ(j.find("\"ts\":5"), std::string::npos);
  EXPECT_NE(j.find("\"ts\":6"), std::string::npos);
  EXPECT_NE(j.find("\"ts\":9"), std::string::npos);
  EXPECT_NE(j.find("\"dropped_events\":6"), std::string::npos);
}

TEST(Tracer, JsonIsChronologicalPerTrack) {
  Tracer t(small_config(8));
  t.instant(Category::kDram, kTrackDramCmd, "b", 20);
  t.instant(Category::kDram, kTrackDramCmd, "a", 5);
  t.instant(Category::kDram, kTrackDramCmd, "c", 20);
  const std::string j = t.json();
  const std::size_t a = j.find("\"a\"");
  const std::size_t b = j.find("\"b\"");
  const std::size_t c = j.find("\"c\"");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  ASSERT_NE(c, std::string::npos);
  EXPECT_LT(a, b);  // sorted by ts
  EXPECT_LT(b, c);  // equal ts keeps emission order (stable sort)
}

TEST(Tracer, EventShapesMatchTheTraceEventFormat) {
  Tracer t(small_config(16));
  t.instant(Category::kDue, kTrackErrors, "due", 100, "level", 2);
  t.complete(Category::kEpoch, kTrackEpoch, "active", 50, 75,
             "instructions", 1234);
  t.counter(Category::kQueue, kTrackQueues, "read_q", 60, 3.0);
  const std::string j = t.json();
  // Instant: phase 'i', explicit thread scope, args present.
  EXPECT_NE(j.find("\"name\":\"due\",\"cat\":\"due\",\"ph\":\"i\",\"ts\":100"),
            std::string::npos);
  EXPECT_NE(j.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(j.find("\"level\":2"), std::string::npos);
  // Complete: phase 'X' with dur.
  EXPECT_NE(j.find("\"ph\":\"X\",\"ts\":50,\"dur\":75"), std::string::npos);
  EXPECT_NE(j.find("\"instructions\":1234"), std::string::npos);
  // Counter: phase 'C' with args.value.
  EXPECT_NE(j.find("\"ph\":\"C\",\"ts\":60"), std::string::npos);
  EXPECT_NE(j.find("\"value\":3"), std::string::npos);
  // Track-name metadata only for tracks actually used.
  EXPECT_NE(j.find("\"sim.epoch\""), std::string::npos);
  EXPECT_NE(j.find("\"errors\""), std::string::npos);
  EXPECT_EQ(j.find("\"dram.cmd\""), std::string::npos);
}

TEST(Tracer, EqualStreamsSerializeToEqualBytes) {
  const auto emit = [](Tracer& t) {
    t.instant(Category::kDram, kTrackDramCmd, "ACT", 1, "bank", 3);
    t.counter(Category::kQueue, kTrackQueues, "read_q", 2, 1.0);
    t.complete(Category::kPower, kTrackPower, "precharge_standby", 0, 7);
  };
  Tracer a(small_config(16));
  Tracer b(small_config(16));
  emit(a);
  emit(b);
  EXPECT_EQ(a.json(), b.json());
}

TEST(MetricsSampler, SamplesOnTheWindowGridAndAtEdges) {
  StatRegistry reg;
  std::uint64_t reads = 0;
  reg.register_component("dram", [&](StatSet& s) { s.add("reads", reads); });

  MetricsConfig cfg;
  cfg.enabled = true;
  cfg.interval = 100;
  MetricsSampler m(cfg, &reg);
  EXPECT_EQ(m.next_sample(), 100u);

  reads = 7;
  m.sample(100, "active");
  EXPECT_EQ(m.next_sample(), 200u);
  reads = 9;
  m.sample(250, "idle_enter");  // off-grid edge sample
  EXPECT_EQ(m.next_sample(), 300u);
  EXPECT_EQ(m.samples(), 2u);

  const std::string& out = m.jsonl();
  EXPECT_NE(out.find("\"schema\":\"mecc-metrics-v1\""), std::string::npos);
  EXPECT_NE(out.find("\"interval\":100"), std::string::npos);
  EXPECT_NE(out.find("\"cycle\":100,\"window\":1,\"phase\":\"active\""),
            std::string::npos);
  EXPECT_NE(out.find("\"cycle\":250,\"window\":2,\"phase\":\"idle_enter\""),
            std::string::npos);
  EXPECT_NE(out.find("\"dram.reads\":7"), std::string::npos);
  EXPECT_NE(out.find("\"dram.reads\":9"), std::string::npos);
}

TEST(MetricsSampler, KeySelectorsFilterExactAndByComponent) {
  StatRegistry reg;
  reg.register_component("dram", [](StatSet& s) {
    s.add("reads", 1);
    s.add("writes", 2);
  });
  reg.register_component("cpu", [](StatSet& s) {
    s.add("cycles", 3);
    s.set_gauge("ipc", 0.5);
  });

  MetricsConfig cfg;
  cfg.enabled = true;
  cfg.interval = 10;
  cfg.keys = {"dram.reads", "cpu"};  // one exact key + a whole component
  MetricsSampler m(cfg, &reg);
  m.sample(10, "active");
  const std::string& out = m.jsonl();
  EXPECT_NE(out.find("\"dram.reads\":1"), std::string::npos);
  EXPECT_EQ(out.find("dram.writes"), std::string::npos);
  EXPECT_NE(out.find("\"cpu.cycles\":3"), std::string::npos);
  EXPECT_NE(out.find("\"cpu.ipc\":0.5"), std::string::npos);
}

TEST(MetricsSampler, WindowIndexAdvancesAcrossSkippedWindows) {
  StatRegistry reg;
  reg.register_component("x", [](StatSet& s) { s.add("n", 1); });
  MetricsConfig cfg;
  cfg.enabled = true;
  cfg.interval = 100;
  MetricsSampler m(cfg, &reg);
  m.sample(100, "active");
  // A long idle jump lands the next sample several windows later; the
  // window index reflects the cycle, not the sample count.
  m.sample(700, "wake");
  EXPECT_NE(m.jsonl().find("\"cycle\":700,\"window\":7"), std::string::npos);
  EXPECT_EQ(m.next_sample(), 800u);
}

}  // namespace
}  // namespace mecc::tracing
