#include "cpu/core.h"

#include <gtest/gtest.h>

#include <deque>

#include "trace/benchmarks.h"

namespace mecc::cpu {
namespace {

/// A toy memory that completes reads a fixed number of cycles after
/// issue and optionally rejects enqueues (to test backpressure).
struct FakeMemory {
  Cycle latency = 100;
  bool accept_reads = true;
  bool accept_writes = true;
  std::deque<std::pair<Cycle, std::uint64_t>> in_flight;  // (ready, tag)
  Cycle now = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;

  bool issue_read(std::uint64_t tag) {
    if (!accept_reads) return false;
    in_flight.emplace_back(now + latency, tag);
    ++reads;
    return true;
  }
  bool issue_write() {
    if (!accept_writes) return false;
    ++writes;
    return true;
  }
  void deliver(InOrderCore& core) {
    while (!in_flight.empty() && in_flight.front().first <= now) {
      core.on_read_data(in_flight.front().second);
      in_flight.pop_front();
    }
  }
};

class CoreTest : public ::testing::Test {
 protected:
  void build(const char* bench, double base_ipc, Cycle latency = 100) {
    gen_ = std::make_unique<trace::GeneratorSource>(
        trace::benchmark(bench), trace::GeneratorConfig{.seed = 3});
    mem_.latency = latency;
    core_ = std::make_unique<InOrderCore>(
        CoreConfig{.base_ipc = base_ipc, .width = 2}, *gen_,
        [this](Address, std::uint64_t tag) { return mem_.issue_read(tag); },
        [this](Address) { return mem_.issue_write(); });
  }

  void run(InstCount instructions) {
    while (core_->retired() < instructions) {
      ++mem_.now;
      mem_.deliver(*core_);
      core_->tick();
      ASSERT_LT(core_->cycles(), 100'000'000u) << "core appears hung";
    }
  }

  std::unique_ptr<trace::GeneratorSource> gen_;
  FakeMemory mem_;
  std::unique_ptr<InOrderCore> core_;
};

TEST_F(CoreTest, IpcApproachesBaseIpcWhenMemoryIsFree) {
  // gamess: MPKI 0.05 with zero-latency memory -> IPC ~ base_ipc.
  build("gamess", 1.9, /*latency=*/1);
  run(1'000'000);
  EXPECT_NEAR(core_->ipc(), 1.9, 0.05);
}

TEST_F(CoreTest, FullWidthRetirement) {
  build("gamess", 2.0, 1);
  run(1'000'000);
  EXPECT_NEAR(core_->ipc(), 2.0, 0.05);
}

TEST_F(CoreTest, ReadsBlockTheCore) {
  // libquantum at 33 MPKI with 100-cycle reads: IPC must be dominated by
  // memory stalls (roughly reads-per-inst * latency).
  build("libquantum", 2.0, 100);
  run(200'000);
  const double reads_per_inst = static_cast<double>(mem_.reads) /
                                static_cast<double>(core_->retired());
  const double expected_cpi = 0.5 + reads_per_inst * 100.0;
  EXPECT_NEAR(1.0 / core_->ipc(), expected_cpi, expected_cpi * 0.15);
  EXPECT_GT(core_->stall_cycles(), core_->cycles() / 2);
}

TEST_F(CoreTest, LongerLatencyLowersIpc) {
  build("milc", 2.0, 50);
  run(200'000);
  const double fast = core_->ipc();
  build("milc", 2.0, 300);
  run(200'000);
  EXPECT_LT(core_->ipc(), fast * 0.6);
}

TEST_F(CoreTest, WritesDoNotBlock) {
  // lbm is 50% writes; with writes accepted instantly, only reads stall.
  build("lbm", 2.0, 100);
  run(100'000);
  EXPECT_GT(mem_.writes, 0u);
  const double reads_per_inst = static_cast<double>(mem_.reads) /
                                static_cast<double>(core_->retired());
  const double expected_cpi = 0.5 + reads_per_inst * 100.0;
  EXPECT_NEAR(1.0 / core_->ipc(), expected_cpi, expected_cpi * 0.15);
}

TEST_F(CoreTest, WriteBackpressureStallsUntilAccepted) {
  build("lbm", 2.0, 10);
  mem_.accept_writes = false;
  // Run until the core wants to issue a write, then some more cycles.
  for (int i = 0; i < 5000 && mem_.writes == 0; ++i) {
    ++mem_.now;
    mem_.deliver(*core_);
    core_->tick();
  }
  EXPECT_EQ(mem_.writes, 0u);
  const InstCount stuck_at = core_->retired();
  for (int i = 0; i < 100; ++i) {
    ++mem_.now;
    mem_.deliver(*core_);
    core_->tick();
  }
  EXPECT_EQ(core_->retired(), stuck_at);  // fully blocked
  mem_.accept_writes = true;
  for (int i = 0; i < 100; ++i) {
    ++mem_.now;
    mem_.deliver(*core_);
    core_->tick();
  }
  EXPECT_GT(core_->retired(), stuck_at);  // unblocked
}

TEST_F(CoreTest, ReadBackpressureRetries) {
  build("libquantum", 2.0, 10);
  mem_.accept_reads = false;
  for (int i = 0; i < 1000; ++i) {
    ++mem_.now;
    mem_.deliver(*core_);
    core_->tick();
  }
  EXPECT_EQ(mem_.reads, 0u);
  mem_.accept_reads = true;
  for (int i = 0; i < 1000; ++i) {
    ++mem_.now;
    mem_.deliver(*core_);
    core_->tick();
  }
  EXPECT_GT(mem_.reads, 0u);
}

TEST_F(CoreTest, RetiredCountsAllInstructionTypes) {
  build("astar", 1.5, 5);
  run(50'000);
  // Retired = gaps + memory instructions; reads+writes present.
  EXPECT_GT(mem_.reads, 0u);
  EXPECT_GT(mem_.writes, 0u);
  EXPECT_GE(core_->retired(), 50'000u);
}

}  // namespace
}  // namespace mecc::cpu
