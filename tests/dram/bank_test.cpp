#include "dram/bank.h"

#include <gtest/gtest.h>

namespace mecc::dram {
namespace {

class BankTest : public ::testing::Test {
 protected:
  Timing t_;
  Bank bank_{t_};
};

TEST_F(BankTest, StartsClosedAndActivatable) {
  EXPECT_FALSE(bank_.row_open());
  EXPECT_TRUE(bank_.can_activate(0));
  EXPECT_FALSE(bank_.can_column(0));
  EXPECT_FALSE(bank_.can_precharge(0));
}

TEST_F(BankTest, ActivateOpensRowAfterTrcd) {
  bank_.activate(10, 42);
  EXPECT_TRUE(bank_.row_open());
  EXPECT_EQ(bank_.open_row(), 42);
  EXPECT_FALSE(bank_.can_column(10 + t_.tRCD - 1));
  EXPECT_TRUE(bank_.can_column(10 + t_.tRCD));
}

TEST_F(BankTest, TrasGuardsPrecharge) {
  bank_.activate(10, 1);
  EXPECT_FALSE(bank_.can_precharge(10 + t_.tRAS - 1));
  EXPECT_TRUE(bank_.can_precharge(10 + t_.tRAS));
}

TEST_F(BankTest, PrechargeClosesRowAndBlocksActivateForTrp) {
  bank_.activate(0, 1);
  bank_.precharge(t_.tRAS);
  EXPECT_FALSE(bank_.row_open());
  EXPECT_FALSE(bank_.can_activate(t_.tRAS + t_.tRP - 1));
  EXPECT_TRUE(bank_.can_activate(t_.tRAS + t_.tRP));
}

TEST_F(BankTest, ReadReturnsDataAfterClPlusBurst) {
  bank_.activate(0, 1);
  const MemCycle issue = t_.tRCD;
  const MemCycle done = bank_.read(issue);
  EXPECT_EQ(done, issue + t_.tCL + t_.tBURST);
}

TEST_F(BankTest, ReadExtendsPrechargeWindow) {
  bank_.activate(0, 1);
  // A read late in the row's life pushes PRE past tRAS.
  const MemCycle issue = t_.tRAS;
  (void)bank_.read(issue);
  EXPECT_FALSE(bank_.can_precharge(issue + t_.tRTP + t_.tBURST - 1));
  EXPECT_TRUE(bank_.can_precharge(issue + t_.tRTP + t_.tBURST));
}

TEST_F(BankTest, WriteRecoveryGuardsPrecharge) {
  bank_.activate(0, 1);
  const MemCycle issue = t_.tRCD;
  const MemCycle done = bank_.write(issue);
  EXPECT_EQ(done, issue + t_.tCWL + t_.tBURST);
  EXPECT_FALSE(bank_.can_precharge(done + t_.tWR - 1));
  EXPECT_TRUE(bank_.can_precharge(done + t_.tWR));
}

TEST_F(BankTest, BackToBackColumnsSpacedByBurst) {
  bank_.activate(0, 7);
  const MemCycle first = t_.tRCD;
  (void)bank_.read(first);
  EXPECT_FALSE(bank_.can_column(first + t_.tBURST - 1));
  EXPECT_TRUE(bank_.can_column(first + t_.tBURST));
}

TEST_F(BankTest, BlockUntilFreezesAllCommands) {
  bank_.activate(0, 1);
  bank_.precharge(t_.tRAS);
  bank_.block_until(100);
  EXPECT_FALSE(bank_.can_activate(99));
  EXPECT_TRUE(bank_.can_activate(100));
}

}  // namespace
}  // namespace mecc::dram
