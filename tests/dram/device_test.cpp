#include "dram/device.h"

#include <gtest/gtest.h>

namespace mecc::dram {
namespace {

class DeviceTest : public ::testing::Test {
 protected:
  Geometry geo_;
  Timing t_;
  Device dev_{geo_, t_};
};

TEST_F(DeviceTest, GeometryMatchesTable2) {
  // Table II: 1 GB, 1 channel, 1 rank, 4 banks, 16K rows.
  EXPECT_EQ(geo_.capacity_bytes(), 1ull << 30);
  EXPECT_EQ(geo_.banks, 4u);
  EXPECT_EQ(geo_.rows_per_bank, 16u * 1024);
  EXPECT_EQ(geo_.total_lines(), kMemoryLines);
}

TEST_F(DeviceTest, ReadAfterActivate) {
  ASSERT_TRUE(dev_.can_activate(0, 0));
  dev_.activate(0, 123, 0);
  EXPECT_FALSE(dev_.can_read(0, 123, t_.tRCD - 1));
  ASSERT_TRUE(dev_.can_read(0, 123, t_.tRCD));
  EXPECT_FALSE(dev_.can_read(0, 999, t_.tRCD));  // wrong row
  const MemCycle done = dev_.read(0, t_.tRCD);
  EXPECT_EQ(done, t_.tRCD + t_.tCL + t_.tBURST);
}

TEST_F(DeviceTest, TrrdSpacesActivates) {
  dev_.activate(0, 1, 0);
  EXPECT_FALSE(dev_.can_activate(1, t_.tRRD - 1));
  EXPECT_TRUE(dev_.can_activate(1, t_.tRRD));
}

TEST_F(DeviceTest, TfawLimitsFourActivatesPerWindow) {
  // Use a wide tFAW so the four-activate window outlives tRAS + tRP.
  Timing t = t_;
  t.tFAW = 30;
  Device dev(geo_, t);
  dev.activate(0, 1, 0);
  dev.activate(1, 1, t.tRRD);
  dev.activate(2, 1, 2 * t.tRRD);
  dev.activate(3, 1, 3 * t.tRRD);
  // All four banks activated; a fifth ACT cannot happen before tFAW,
  // even if a bank is free again (re-activate bank 0 after precharge).
  dev.precharge(0, t.tRAS);
  const MemCycle after_pre = t.tRAS + t.tRP;
  ASSERT_LT(after_pre, static_cast<MemCycle>(t.tFAW));
  EXPECT_FALSE(dev.can_activate(0, after_pre));
  EXPECT_TRUE(dev.can_activate(0, t.tFAW));
}

TEST_F(DeviceTest, TfawDoesNotBindBeforeFourActivates) {
  // A fresh device must allow its very first ACT at time 0.
  EXPECT_TRUE(dev_.can_activate(0, 0));
}

TEST_F(DeviceTest, SharedDataBusSpacesColumns) {
  dev_.activate(0, 1, 0);
  dev_.activate(1, 2, t_.tRRD);
  const MemCycle rd = t_.tRCD;
  (void)dev_.read(0, rd);
  // Bank 1's row is open by rd + tBURST, but the data bus is busy.
  EXPECT_FALSE(dev_.can_read(1, 2, rd + t_.tBURST - 1));
  EXPECT_TRUE(dev_.can_read(1, 2, rd + t_.tBURST));
}

TEST_F(DeviceTest, WriteToReadTurnaround) {
  dev_.activate(0, 1, 0);
  (void)dev_.write(0, t_.tRCD);
  const MemCycle bus_free = t_.tRCD + t_.tBURST;
  EXPECT_FALSE(dev_.can_read(0, 1, bus_free + t_.tWTR - 1));
  EXPECT_TRUE(dev_.can_read(0, 1, bus_free + t_.tWTR));
}

TEST_F(DeviceTest, RefreshRequiresAllBanksPrecharged) {
  dev_.activate(0, 1, 0);
  EXPECT_FALSE(dev_.can_refresh(t_.tRAS));
  dev_.precharge(0, t_.tRAS);
  const MemCycle idle = t_.tRAS + t_.tRP;
  ASSERT_TRUE(dev_.can_refresh(idle));
  dev_.refresh(idle);
  // Banks blocked for tRFC.
  EXPECT_FALSE(dev_.can_activate(0, idle + t_.tRFC - 1));
  EXPECT_TRUE(dev_.can_activate(0, idle + t_.tRFC));
}

TEST_F(DeviceTest, PowerDownBlocksCommands) {
  dev_.enter_power_down(0);
  EXPECT_TRUE(dev_.in_power_down());
  EXPECT_EQ(dev_.power_state(), PowerState::kPrechargePowerDown);
  EXPECT_FALSE(dev_.can_activate(0, 100));
  dev_.exit_power_down(100);
  EXPECT_FALSE(dev_.can_activate(0, 100 + t_.tXP - 1));
  EXPECT_TRUE(dev_.can_activate(0, 100 + t_.tXP));
}

TEST_F(DeviceTest, ActivePowerDownState) {
  dev_.activate(0, 1, 0);
  dev_.enter_power_down(5);
  EXPECT_EQ(dev_.power_state(), PowerState::kActivePowerDown);
}

TEST_F(DeviceTest, StateCyclesAccounted) {
  dev_.activate(0, 1, 0);        // active standby from 0
  dev_.precharge(0, t_.tRAS);    // precharge standby from tRAS
  dev_.enter_power_down(20);     // pd from 20
  const auto& c = dev_.counters(100);
  EXPECT_EQ(c.state_cycles[static_cast<std::size_t>(
                PowerState::kActiveStandby)],
            static_cast<MemCycle>(t_.tRAS));
  EXPECT_EQ(c.state_cycles[static_cast<std::size_t>(
                PowerState::kPrechargeStandby)],
            20u - t_.tRAS);
  EXPECT_EQ(c.state_cycles[static_cast<std::size_t>(
                PowerState::kPrechargePowerDown)],
            80u);
  EXPECT_EQ(c.activates, 1u);
  EXPECT_EQ(c.precharges, 1u);
}

TEST_F(DeviceTest, SelfRefreshCreditsInternalPulses) {
  dev_.enter_self_refresh(0, /*refresh_divider=*/1);
  EXPECT_TRUE(dev_.in_self_refresh());
  EXPECT_EQ(dev_.power_state(), PowerState::kSelfRefresh);
  const MemCycle stay = static_cast<MemCycle>(t_.tREFI) * 100;
  dev_.exit_self_refresh(stay);
  const auto& c = dev_.counters(stay);
  EXPECT_EQ(c.self_refresh_pulses, 100u);
}

TEST_F(DeviceTest, SlowSelfRefreshDividesPulses16x) {
  // The paper's 4-bit counter: divider 16 -> 16x fewer refresh pulses.
  dev_.enter_self_refresh(0, /*refresh_divider=*/16);
  const MemCycle stay = static_cast<MemCycle>(t_.tREFI) * 1600;
  dev_.exit_self_refresh(stay);
  EXPECT_EQ(dev_.counters(stay).self_refresh_pulses, 100u);
}

TEST_F(DeviceTest, SelfRefreshExitEnforcesTxsr) {
  dev_.enter_self_refresh(0, 16);
  dev_.exit_self_refresh(1000);
  EXPECT_FALSE(dev_.can_activate(0, 1000 + t_.tXSR - 1));
  EXPECT_TRUE(dev_.can_activate(0, 1000 + t_.tXSR));
}

TEST_F(DeviceTest, CountersTallyCommands) {
  dev_.activate(0, 1, 0);
  (void)dev_.read(0, t_.tRCD);
  (void)dev_.write(0, t_.tRCD + t_.tBURST);
  const auto& c = dev_.counters(50);
  EXPECT_EQ(c.activates, 1u);
  EXPECT_EQ(c.reads, 1u);
  EXPECT_EQ(c.writes, 1u);
}

}  // namespace
}  // namespace mecc::dram
