#include "dram/timing_checker.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dram/device.h"
#include "memctrl/controller.h"

namespace mecc::dram {
namespace {

class TimingCheckerTest : public ::testing::Test {
 protected:
  Timing t_;
  TimingChecker checker_{t_};

  static Command cmd(CmdType type, std::uint32_t bank, std::uint64_t cycle,
                     std::uint32_t row = 0) {
    return {.type = type, .bank = bank, .row = row, .cycle = cycle};
  }
};

TEST_F(TimingCheckerTest, CleanSequencePasses) {
  const std::vector<Command> log = {
      cmd(CmdType::kActivate, 0, 0, 5),
      cmd(CmdType::kRead, 0, 0 + t_.tRCD),
      cmd(CmdType::kPrecharge, 0, t_.tRAS + 5),
      cmd(CmdType::kActivate, 0, t_.tRAS + 5 + t_.tRP, 6),
  };
  EXPECT_TRUE(checker_.check(log, 4).empty());
}

TEST_F(TimingCheckerTest, CatchesTrcdViolation) {
  const std::vector<Command> log = {
      cmd(CmdType::kActivate, 0, 0),
      cmd(CmdType::kRead, 0, t_.tRCD - 1),
  };
  const auto v = checker_.check(log, 4);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "tRCD");
  EXPECT_EQ(v[0].required_gap, t_.tRCD);
}

TEST_F(TimingCheckerTest, CatchesTrasViolation) {
  const std::vector<Command> log = {
      cmd(CmdType::kActivate, 0, 0),
      cmd(CmdType::kPrecharge, 0, t_.tRAS - 1),
  };
  const auto v = checker_.check(log, 4);
  ASSERT_GE(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "tRAS");
}

TEST_F(TimingCheckerTest, CatchesTrrdViolation) {
  const std::vector<Command> log = {
      cmd(CmdType::kActivate, 0, 0),
      cmd(CmdType::kActivate, 1, t_.tRRD - 1),
  };
  const auto v = checker_.check(log, 4);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "tRRD");
}

TEST_F(TimingCheckerTest, CatchesTfawViolation) {
  std::vector<Command> log;
  for (std::uint32_t b = 0; b < 4; ++b) {
    log.push_back(cmd(CmdType::kActivate, b, b * t_.tRRD));
  }
  // Fifth ACT one cycle inside the window (bank 0 precharged far in the
  // "future" is irrelevant to this rule; use bank 0 again).
  log.push_back(cmd(CmdType::kPrecharge, 0, t_.tRAS));
  log.push_back(cmd(CmdType::kActivate, 0, t_.tFAW - 1));
  const auto v = checker_.check(log, 4);
  bool found = false;
  for (const auto& viol : v) {
    if (viol.rule == "tFAW") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(TimingCheckerTest, CatchesWriteRecoveryViolation) {
  const std::vector<Command> log = {
      cmd(CmdType::kActivate, 0, 0),
      cmd(CmdType::kWrite, 0, t_.tRCD),
      cmd(CmdType::kPrecharge, 0, t_.tRCD + t_.tCWL + t_.tBURST + t_.tWR - 1),
  };
  const auto v = checker_.check(log, 4);
  ASSERT_GE(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "tWR");
}

TEST_F(TimingCheckerTest, CatchesRefreshWithOpenRow) {
  const std::vector<Command> log = {
      cmd(CmdType::kActivate, 2, 0),
      cmd(CmdType::kRefresh, 0, 100),
  };
  const auto v = checker_.check(log, 4);
  ASSERT_GE(v.size(), 1u);
  EXPECT_NE(v[0].rule.find("open row"), std::string::npos);
}

TEST_F(TimingCheckerTest, CatchesBusConflict) {
  const std::vector<Command> log = {
      cmd(CmdType::kActivate, 0, 0),
      cmd(CmdType::kActivate, 1, t_.tRRD),
      cmd(CmdType::kRead, 0, t_.tRCD),
      cmd(CmdType::kRead, 1, t_.tRCD + t_.tBURST - 1),
  };
  const auto v = checker_.check(log, 4);
  ASSERT_GE(v.size(), 1u);
  EXPECT_EQ(v[0].rule, "tBURST (data bus)");
}

TEST_F(TimingCheckerTest, ViolationToStringReadable) {
  TimingViolation v{.first_index = 1, .second_index = 2, .rule = "tRCD",
                    .required_gap = 3, .actual_gap = 1};
  const std::string s = v.to_string();
  EXPECT_NE(s.find("tRCD"), std::string::npos);
  EXPECT_NE(s.find("3"), std::string::npos);
}

// The headline property: the real controller's schedule is timing-clean
// under randomized traffic, verified command by command.
class ControllerScheduleIsClean
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ControllerScheduleIsClean, RandomTraffic) {
  const Geometry geo;
  const Timing timing;
  Device dev(geo, timing);
  std::vector<Command> log;
  dev.set_command_log(&log);
  memctrl::ControllerConfig cfg;
  memctrl::Controller ctl(dev, cfg);
  Rng rng(GetParam());

  std::uint64_t id = 1;
  for (MemCycle now = 0; now < 40'000; ++now) {
    if (now < 30'000 && rng.chance(0.2)) {
      const Address addr = rng.next_below(1 << 15) * kLineBytes;
      if (rng.chance(0.6)) {
        (void)ctl.enqueue_read(addr, id++, now);
      } else {
        (void)ctl.enqueue_write(addr, now);
      }
    }
    ctl.tick(now);
    (void)ctl.collect_completions(now);
  }

  EXPECT_GT(log.size(), 2000u);  // schedule actually exercised
  const TimingChecker checker(timing);
  const auto violations = checker.check(log, geo.banks);
  for (const auto& v : violations) {
    ADD_FAILURE() << v.to_string();
    break;  // one is enough to diagnose
  }
  EXPECT_TRUE(violations.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllerScheduleIsClean,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace mecc::dram
