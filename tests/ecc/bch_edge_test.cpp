// Edge-of-capability behavior locks for Bch::decode at t = 1..6.
//
// Past t errors a bounded-distance BCH decoder has exactly three legal
// outcomes, and these tests pin which one the implementation picks:
//   1. kUncorrectable via the Berlekamp-Massey guard (L > t or
//      deg(lambda) != L) or a Chien root-count mismatch — the common
//      case for t+1 random errors;
//   2. kCorrected with wrong data (aliasing onto another codeword within
//      distance t) — rare but valid, never silently kClean;
//   3. kClean ONLY when the error pattern is itself a codeword (zero
//      syndrome), in which case the decoder cannot know anything
//      happened and returns the wrong data as "clean".
// The vectorized decode must classify exactly like the scalar reference
// (codec_equivalence_test.cpp); here the classifications themselves are
// locked so a future decoder change cannot quietly weaken DUE detection
// (the fault-campaign DUE accounting depends on outcome 1/2 vs 3).
#include "ecc/bch.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "ecc/scalar_reference.h"

namespace mecc::ecc {
namespace {

BitVec random_data(std::size_t n, Rng& rng) {
  BitVec d(n);
  for (std::size_t i = 0; i < n; ++i) d.set(i, rng.chance(0.5));
  return d;
}

void inject_distinct(BitVec& cw, std::size_t weight, Rng& rng) {
  std::vector<std::size_t> touched;
  while (touched.size() < weight) {
    const std::size_t pos = rng.next_below(cw.size());
    bool fresh = true;
    for (const std::size_t p : touched) fresh &= (p != pos);
    if (!fresh) continue;
    touched.push_back(pos);
    cw.flip(pos);
  }
}

class BchEdge : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BchEdge, TPlusOneErrorsNeverReportClean) {
  // t+1 random errors always produce a non-zero syndrome unless the
  // error pattern is a codeword — impossible here because the designed
  // minimum distance 2t+1 exceeds t+1 for every t >= 1. So kClean is
  // forbidden; the decoder must answer kUncorrectable or (aliasing)
  // kCorrected.
  const std::size_t t = GetParam();
  const Bch code(10, t, 512);
  Rng rng(0xED6E + t);
  std::size_t uncorrectable = 0;
  std::size_t aliased = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const BitVec d = random_data(512, rng);
    BitVec bad = code.encode(d);
    inject_distinct(bad, t + 1, rng);
    const DecodeResult r = code.decode(bad);
    ASSERT_NE(r.status, DecodeStatus::kClean)
        << "t=" << t << " trial " << trial;
    if (r.status == DecodeStatus::kUncorrectable) {
      ++uncorrectable;
    } else {
      // Aliasing: decoded onto a different nearby codeword. The result
      // must self-describe as a correction of <= t bits and must NOT
      // have recovered the original data (that would mean t+1 errors
      // were corrected, beyond bounded-distance capability).
      ++aliased;
      EXPECT_LE(r.corrected_bits, t);
      EXPECT_NE(r.data, d);
    }
  }
  // The BM/Chien guards must be doing real work: miscorrection is the
  // rare outcome, detection the common one.
  EXPECT_GT(uncorrectable, aliased) << "t=" << t;
}

TEST_P(BchEdge, ErrorPatternEqualToCodewordDecodesCleanWithWrongData) {
  // If the injected error pattern is itself a codeword, the syndrome is
  // zero and the decoder sees a perfectly valid (different) codeword.
  // This is information-theoretically undetectable; lock the current
  // behavior: kClean, zero corrected_bits, and data = original XOR the
  // error pattern's data half.
  const std::size_t t = GetParam();
  const Bch code(10, t, 512);
  Rng rng(0xC0DE + t);
  for (int trial = 0; trial < 20; ++trial) {
    const BitVec d = random_data(512, rng);
    // Any nonzero codeword works as the undetectable pattern; encode a
    // random nonzero data word.
    BitVec pattern_data = random_data(512, rng);
    if (!pattern_data.any()) pattern_data.set(0, true);
    const BitVec pattern = code.encode(pattern_data);
    const BitVec bad = code.encode(d) ^ pattern;
    const DecodeResult r = code.decode(bad);
    EXPECT_EQ(r.status, DecodeStatus::kClean) << "t=" << t;
    EXPECT_EQ(r.corrected_bits, 0u);
    EXPECT_EQ(r.data, d ^ pattern_data) << "t=" << t;
    EXPECT_NE(r.data, d) << "t=" << t;
  }
}

TEST_P(BchEdge, ExactlyTErrorsAlwaysCorrected) {
  // The boundary from the other side: weight exactly t must always come
  // back kCorrected with the original data.
  const std::size_t t = GetParam();
  const Bch code(10, t, 512);
  Rng rng(0xACED + t);
  for (int trial = 0; trial < 100; ++trial) {
    const BitVec d = random_data(512, rng);
    BitVec bad = code.encode(d);
    inject_distinct(bad, t, rng);
    const DecodeResult r = code.decode(bad);
    ASSERT_EQ(r.status, DecodeStatus::kCorrected)
        << "t=" << t << " trial " << trial;
    EXPECT_EQ(r.corrected_bits, t);
    EXPECT_EQ(r.data, d);
  }
}

INSTANTIATE_TEST_SUITE_P(AllT, BchEdge,
                         ::testing::Values<std::size_t>(1, 2, 3, 4, 5, 6));

TEST(BchEdge, ClassificationMatchesScalarReferenceAtBoundary) {
  // Belt and suspenders on top of the differential suite: the exact
  // boundary weights t and t+1 are where a vectorized-decoder bug would
  // change DUE accounting, so compare classifications here directly.
  for (const std::size_t t : {std::size_t{1}, std::size_t{3}, std::size_t{6}}) {
    const Bch vec(10, t, 512);
    const reference::ScalarBch ref(10, t, 512);
    Rng rng(0xB0B0 + t);
    for (int trial = 0; trial < 150; ++trial) {
      const BitVec d = random_data(512, rng);
      BitVec bad = vec.encode(d);
      inject_distinct(bad, t + (trial % 2), rng);
      const DecodeResult got = vec.decode(bad);
      const DecodeResult want = ref.decode(bad);
      ASSERT_EQ(got.status, want.status) << "t=" << t << " trial " << trial;
      ASSERT_EQ(got.corrected_bits, want.corrected_bits)
          << "t=" << t << " trial " << trial;
      ASSERT_EQ(got.data, want.data) << "t=" << t << " trial " << trial;
    }
  }
}

}  // namespace
}  // namespace mecc::ecc
