// Parameterized sweep of the BCH codec across field sizes, strengths and
// data lengths: encode -> corrupt with exactly t errors -> decode must
// restore the data; t+1 random errors must never be silently accepted as
// a <= t correction of the original word.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "common/rng.h"
#include "ecc/bch.h"

namespace mecc::ecc {
namespace {

struct GridPoint {
  unsigned m;
  std::size_t t;
  std::size_t k;
};

class BchGrid : public ::testing::TestWithParam<GridPoint> {
 protected:
  static BitVec random_data(std::size_t n, Rng& rng) {
    BitVec d(n);
    for (std::size_t i = 0; i < n; ++i) d.set(i, rng.chance(0.5));
    return d;
  }

  static BitVec corrupt(const BitVec& cw, std::size_t count, Rng& rng) {
    BitVec bad = cw;
    std::set<std::size_t> seen;
    while (seen.size() < count) {
      const std::size_t p = rng.next_below(cw.size());
      if (seen.insert(p).second) bad.flip(p);
    }
    return bad;
  }
};

TEST_P(BchGrid, GeometryConsistent) {
  const auto [m, t, k] = GetParam();
  const Bch code(m, t, k);
  EXPECT_EQ(code.data_bits(), k);
  EXPECT_LE(code.codeword_bits(), (1u << m) - 1);
  EXPECT_EQ(code.parity_bits(),
            static_cast<std::size_t>(code.generator().degree()));
}

TEST_P(BchGrid, CorrectsExactlyTErrors) {
  const auto [m, t, k] = GetParam();
  const Bch code(m, t, k);
  Rng rng(m * 1000 + t * 10 + k);
  for (int trial = 0; trial < 10; ++trial) {
    const BitVec d = random_data(k, rng);
    const BitVec bad = corrupt(code.encode(d), t, rng);
    const DecodeResult r = code.decode(bad);
    ASSERT_EQ(r.status, DecodeStatus::kCorrected);
    EXPECT_EQ(r.corrected_bits, t);
    EXPECT_EQ(r.data, d);
  }
}

TEST_P(BchGrid, NeverReturnsWrongDataClaimingWithinT) {
  // With t+1 errors: either flagged uncorrectable or corrected to a
  // *different valid codeword* - never the original data with a bogus
  // corrected_bits count.
  const auto [m, t, k] = GetParam();
  const Bch code(m, t, k);
  Rng rng(m * 2000 + t * 20 + k);
  for (int trial = 0; trial < 10; ++trial) {
    const BitVec d = random_data(k, rng);
    const BitVec bad = corrupt(code.encode(d), t + 1, rng);
    const DecodeResult r = code.decode(bad);
    if (r.status == DecodeStatus::kCorrected) {
      EXPECT_NE(r.data, d);
      EXPECT_LE(r.corrected_bits, t);
    } else {
      EXPECT_EQ(r.status, DecodeStatus::kUncorrectable);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BchGrid,
    ::testing::Values(GridPoint{6, 1, 40}, GridPoint{6, 3, 30},
                      GridPoint{8, 2, 128}, GridPoint{8, 4, 64},
                      GridPoint{10, 2, 512}, GridPoint{10, 4, 256},
                      GridPoint{10, 6, 512}, GridPoint{10, 7, 512},
                      GridPoint{12, 3, 1024}, GridPoint{11, 5, 800}),
    [](const ::testing::TestParamInfo<GridPoint>& info) {
      return "m" + std::to_string(info.param.m) + "_t" +
             std::to_string(info.param.t) + "_k" +
             std::to_string(info.param.k);
    });

}  // namespace
}  // namespace mecc::ecc
