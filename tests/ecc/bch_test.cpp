#include "ecc/bch.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"

namespace mecc::ecc {
namespace {

BitVec random_data(std::size_t n, Rng& rng) {
  BitVec d(n);
  for (std::size_t i = 0; i < n; ++i) d.set(i, rng.chance(0.5));
  return d;
}

/// Flips `count` distinct random bits of `cw`.
BitVec corrupt(const BitVec& cw, std::size_t count, Rng& rng) {
  BitVec bad = cw;
  std::set<std::size_t> flipped;
  while (flipped.size() < count) {
    const std::size_t p = rng.next_below(cw.size());
    if (flipped.insert(p).second) bad.flip(p);
  }
  return bad;
}

TEST(Bch, Ecc6GeometryMatchesPaper) {
  // Paper S III-D: ECC-6 over a 64 B line needs 60 parity bits (t*m with
  // m = 10), fitting the 60 bits left in the (72,64) spare space.
  const Bch code(10, 6, 512);
  EXPECT_EQ(code.data_bits(), 512u);
  EXPECT_EQ(code.parity_bits(), 60u);
  EXPECT_EQ(code.correct_capability(), 6u);
}

TEST(Bch, GeneratorDividesXnMinusOne) {
  // g(x) must divide x^n - 1 for n = 2^m - 1 (defining property of a
  // cyclic code).
  const Bch code(6, 2, 20);
  galois::Gf2Poly xn1 = galois::Gf2Poly::monomial(63) +
                        galois::Gf2Poly::from_mask(1);
  EXPECT_TRUE(xn1.mod(code.generator()).is_zero());
}

TEST(Bch, CleanRoundTrip) {
  Rng rng(1);
  const Bch code(10, 6, 512);
  for (int trial = 0; trial < 20; ++trial) {
    const BitVec d = random_data(512, rng);
    const DecodeResult r = code.decode(code.encode(d));
    EXPECT_EQ(r.status, DecodeStatus::kClean);
    EXPECT_EQ(r.data, d);
  }
}

class BchCorrectsUpToT : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BchCorrectsUpToT, RandomErrorPatterns) {
  const std::size_t nerr = GetParam();
  Rng rng(100 + nerr);
  const Bch code(10, 6, 512);
  for (int trial = 0; trial < 15; ++trial) {
    const BitVec d = random_data(512, rng);
    const BitVec cw = code.encode(d);
    const BitVec bad = corrupt(cw, nerr, rng);
    const DecodeResult r = code.decode(bad);
    ASSERT_EQ(r.status,
              nerr == 0 ? DecodeStatus::kClean : DecodeStatus::kCorrected)
        << "errors=" << nerr;
    EXPECT_EQ(r.corrected_bits, nerr);
    EXPECT_EQ(r.data, d);
  }
}

INSTANTIATE_TEST_SUITE_P(ZeroToSixErrors, BchCorrectsUpToT,
                         ::testing::Range<std::size_t>(0, 7));

TEST(Bch, ErrorsInParityBitsAreAlsoCorrected) {
  Rng rng(7);
  const Bch code(10, 6, 512);
  const BitVec d = random_data(512, rng);
  const BitVec cw = code.encode(d);
  BitVec bad = cw;
  // Flip bits only inside the parity region [512, 572).
  bad.flip(512);
  bad.flip(540);
  bad.flip(571);
  const DecodeResult r = code.decode(bad);
  EXPECT_EQ(r.status, DecodeStatus::kCorrected);
  EXPECT_EQ(r.corrected_bits, 3u);
  EXPECT_EQ(r.data, d);
}

TEST(Bch, SevenErrorsNeverSilentlyCorruptToWrongCount) {
  // Beyond t errors the decoder must either flag uncorrectable or
  // miscorrect to some other codeword; it must never return the original
  // data while claiming a correction of <= t bits that didn't happen.
  Rng rng(8);
  const Bch code(10, 6, 512);
  int uncorrectable = 0;
  const int kTrials = 30;
  for (int trial = 0; trial < kTrials; ++trial) {
    const BitVec d = random_data(512, rng);
    const BitVec cw = code.encode(d);
    const BitVec bad = corrupt(cw, 7, rng);
    const DecodeResult r = code.decode(bad);
    if (r.status == DecodeStatus::kUncorrectable) {
      ++uncorrectable;
    } else {
      // A miscorrection lands on a *different* codeword.
      ASSERT_EQ(r.status, DecodeStatus::kCorrected);
      EXPECT_NE(r.data, d);
    }
  }
  // For random 7-error patterns, detection is the overwhelmingly common
  // outcome for this (572, 512) code.
  EXPECT_GT(uncorrectable, kTrials / 2);
}

TEST(Bch, SmallerTCodesWork) {
  Rng rng(9);
  for (std::size_t t = 1; t <= 4; ++t) {
    const Bch code(10, t, 512);
    EXPECT_EQ(code.parity_bits(), t * 10) << "t=" << t;
    const BitVec d = random_data(512, rng);
    const BitVec bad = corrupt(code.encode(d), t, rng);
    const DecodeResult r = code.decode(bad);
    EXPECT_EQ(r.status, DecodeStatus::kCorrected);
    EXPECT_EQ(r.data, d);
  }
}

TEST(Bch, UnshortenedSmallCode) {
  // BCH(15, 5) with t = 3: a classic textbook code (m = 4).
  Rng rng(10);
  const Bch code(4, 3, 5);
  EXPECT_EQ(code.parity_bits(), 10u);
  const BitVec d = random_data(5, rng);
  const BitVec bad = corrupt(code.encode(d), 3, rng);
  const DecodeResult r = code.decode(bad);
  EXPECT_EQ(r.status, DecodeStatus::kCorrected);
  EXPECT_EQ(r.data, d);
}

TEST(Bch, RejectsOversizedData) {
  // 2^6 - 1 = 63 total bits; t=2 needs 12 parity, so k > 51 must throw.
  EXPECT_THROW(Bch(6, 2, 52), std::invalid_argument);
  EXPECT_NO_THROW(Bch(6, 2, 51));
}

TEST(Bch, BurstOfAdjacentErrorsWithinT) {
  Rng rng(11);
  const Bch code(10, 6, 512);
  const BitVec d = random_data(512, rng);
  BitVec bad = code.encode(d);
  for (std::size_t i = 100; i < 106; ++i) bad.flip(i);  // 6 adjacent flips
  const DecodeResult r = code.decode(bad);
  EXPECT_EQ(r.status, DecodeStatus::kCorrected);
  EXPECT_EQ(r.corrected_bits, 6u);
  EXPECT_EQ(r.data, d);
}

TEST(Bch, AllZeroDataIsACodeword) {
  const Bch code(10, 6, 512);
  BitVec zero(512);
  const BitVec cw = code.encode(zero);
  EXPECT_FALSE(cw.any());  // systematic encoding of 0 is the zero word
  EXPECT_EQ(code.decode(cw).status, DecodeStatus::kClean);
}

}  // namespace
}  // namespace mecc::ecc
