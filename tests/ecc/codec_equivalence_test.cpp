// Randomized differential suite: the word-parallel codecs must be
// bit-identical to the retained scalar references
// (src/ecc/scalar_reference.h) — same encode output and the same
// DecodeResult (status, corrected_bits, data) on every input, including
// error weights past the correction capability where classification, not
// correction, is the contract.
//
// This suite runs under the ASan and TSan tier-1 legs too
// (scripts/tier1.sh), so the word-scan and thread_local-scratch paths
// get sanitizer coverage at volume.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "ecc/bch.h"
#include "ecc/scalar_reference.h"
#include "ecc/secded.h"

namespace mecc::ecc {
namespace {

BitVec random_data(std::size_t n, Rng& rng) {
  BitVec d(n);
  for (std::size_t i = 0; i < n; ++i) d.set(i, rng.chance(0.5));
  return d;
}

/// Flips `weight` distinct random positions of `cw`.
void inject(BitVec& cw, std::size_t weight, Rng& rng) {
  std::vector<std::size_t> touched;
  while (touched.size() < weight) {
    const std::size_t pos = rng.next_below(cw.size());
    if (std::find(touched.begin(), touched.end(), pos) != touched.end()) {
      continue;  // re-flipping would cancel and lower the weight
    }
    touched.push_back(pos);
    cw.flip(pos);
  }
}

struct CodecPair {
  std::string label;
  std::unique_ptr<Code> vec;
  std::unique_ptr<Code> ref;
  std::size_t trials;
};

std::vector<CodecPair> make_pairs() {
  std::vector<CodecPair> pairs;
  // Trial counts chosen so every codec sees >= 10k decoded lines across
  // the weight sweep (trials * (t + 3) weights).
  pairs.push_back({"secded64", std::make_unique<Secded>(64),
                   std::make_unique<reference::ScalarSecded>(64), 4000});
  pairs.push_back({"secded512", std::make_unique<Secded>(512),
                   std::make_unique<reference::ScalarSecded>(512), 3000});
  pairs.push_back({"bch_t1", std::make_unique<Bch>(10, 1, 512),
                   std::make_unique<reference::ScalarBch>(10, 1, 512), 2500});
  pairs.push_back({"bch_t3", std::make_unique<Bch>(10, 3, 512),
                   std::make_unique<reference::ScalarBch>(10, 3, 512), 1700});
  pairs.push_back({"bch_t6", std::make_unique<Bch>(10, 6, 512),
                   std::make_unique<reference::ScalarBch>(10, 6, 512), 1200});
  return pairs;
}

TEST(CodecEquivalence, GeometryMatchesReference) {
  for (const auto& p : make_pairs()) {
    EXPECT_EQ(p.vec->data_bits(), p.ref->data_bits()) << p.label;
    EXPECT_EQ(p.vec->parity_bits(), p.ref->parity_bits()) << p.label;
    EXPECT_EQ(p.vec->correct_capability(), p.ref->correct_capability())
        << p.label;
  }
}

TEST(CodecEquivalence, EncodeIsBitIdentical) {
  for (const auto& p : make_pairs()) {
    Rng rng(0xE0C0 + p.vec->data_bits());
    for (std::size_t trial = 0; trial < p.trials; ++trial) {
      const BitVec d = random_data(p.vec->data_bits(), rng);
      ASSERT_EQ(p.vec->encode(d), p.ref->encode(d))
          << p.label << " trial " << trial;
    }
  }
}

TEST(CodecEquivalence, DecodeIsBitIdenticalAcrossErrorWeights) {
  // Error weight sweeps 0 .. t+2: clean path, every correctable weight,
  // and two weights past capability where the reference's
  // classification (kCorrected-with-aliasing vs kUncorrectable) is the
  // behavior being locked, not "correctness".
  std::size_t lines = 0;
  for (const auto& p : make_pairs()) {
    Rng rng(0xDEC0 + p.vec->data_bits() * 31 +
            p.vec->correct_capability());
    const std::size_t t = p.vec->correct_capability();
    for (std::size_t trial = 0; trial < p.trials; ++trial) {
      const BitVec d = random_data(p.vec->data_bits(), rng);
      const BitVec cw = p.ref->encode(d);
      for (std::size_t weight = 0; weight <= t + 2; ++weight) {
        BitVec bad = cw;
        inject(bad, weight, rng);
        const DecodeResult got = p.vec->decode(bad);
        const DecodeResult want = p.ref->decode(bad);
        ASSERT_EQ(got.status, want.status)
            << p.label << " trial " << trial << " weight " << weight;
        ASSERT_EQ(got.corrected_bits, want.corrected_bits)
            << p.label << " trial " << trial << " weight " << weight;
        ASSERT_EQ(got.data, want.data)
            << p.label << " trial " << trial << " weight " << weight;
        ++lines;
      }
    }
  }
  // The differential contract is volume-based; keep the suite honest
  // about how much it actually exercised.
  EXPECT_GE(lines, 10000u * make_pairs().size());
}

TEST(CodecEquivalence, BchEncodeFallbackPathMatchesReference) {
  // m=10 t=7 has p=70 > 63, exercising the Gf2Poly::mod encode fallback
  // instead of the single-word LFSR.
  const Bch vec(10, 7, 512);
  const reference::ScalarBch ref(10, 7, 512);
  ASSERT_GT(vec.parity_bits(), 63u);
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const BitVec d = random_data(512, rng);
    ASSERT_EQ(vec.encode(d), ref.encode(d)) << "trial " << trial;
    BitVec bad = vec.encode(d);
    inject(bad, static_cast<std::size_t>(trial % 9), rng);
    const DecodeResult got = vec.decode(bad);
    const DecodeResult want = ref.decode(bad);
    ASSERT_EQ(got.status, want.status) << "trial " << trial;
    ASSERT_EQ(got.corrected_bits, want.corrected_bits) << "trial " << trial;
    ASSERT_EQ(got.data, want.data) << "trial " << trial;
  }
}

}  // namespace
}  // namespace mecc::ecc
