#include "ecc/secded.h"

#include <gtest/gtest.h>

#include <limits>

#include "common/rng.h"

namespace mecc::ecc {
namespace {

BitVec random_data(std::size_t n, Rng& rng) {
  BitVec d(n);
  for (std::size_t i = 0; i < n; ++i) d.set(i, rng.chance(0.5));
  return d;
}

TEST(Secded, Code7264Geometry) {
  const Secded code(64);
  EXPECT_EQ(code.data_bits(), 64u);
  EXPECT_EQ(code.parity_bits(), 8u);  // the classic (72,64) code
  EXPECT_EQ(code.codeword_bits(), 72u);
  EXPECT_EQ(code.correct_capability(), 1u);
  EXPECT_EQ(code.name(), "SECDED(72,64)");
}

TEST(Secded, Code512GeometryMatchesPaper) {
  // Paper S III-D: SECDED over a 64-byte line needs 11 bits.
  const Secded code(512);
  EXPECT_EQ(code.parity_bits(), 11u);
  EXPECT_EQ(code.codeword_bits(), 523u);
}

TEST(Secded, CleanRoundTrip) {
  Rng rng(1);
  const Secded code(64);
  for (int trial = 0; trial < 100; ++trial) {
    const BitVec d = random_data(64, rng);
    const BitVec cw = code.encode(d);
    const DecodeResult r = code.decode(cw);
    EXPECT_EQ(r.status, DecodeStatus::kClean);
    EXPECT_EQ(r.data, d);
    EXPECT_EQ(r.corrected_bits, 0u);
  }
}

class SecdedSingleError : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SecdedSingleError, EverySingleBitFlipIsCorrected) {
  Rng rng(2);
  const Secded code(64);
  const BitVec d = random_data(64, rng);
  const BitVec cw = code.encode(d);
  BitVec bad = cw;
  bad.flip(GetParam());
  const DecodeResult r = code.decode(bad);
  EXPECT_EQ(r.status, DecodeStatus::kCorrected);
  EXPECT_EQ(r.corrected_bits, 1u);
  EXPECT_EQ(r.data, d) << "flip at " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllPositions, SecdedSingleError,
                         ::testing::Range<std::size_t>(0, 72));

TEST(Secded, EveryDoubleErrorIsDetectedNotMiscorrected) {
  Rng rng(3);
  const Secded code(64);
  const BitVec d = random_data(64, rng);
  const BitVec cw = code.encode(d);
  for (std::size_t i = 0; i < 72; ++i) {
    for (std::size_t j = i + 1; j < 72; ++j) {
      BitVec bad = cw;
      bad.flip(i);
      bad.flip(j);
      const DecodeResult r = code.decode(bad);
      EXPECT_EQ(r.status, DecodeStatus::kUncorrectable)
          << "flips at " << i << "," << j;
    }
  }
}

TEST(Secded, SingleErrorCorrectedOn512BitLine) {
  Rng rng(4);
  const Secded code(512);
  const BitVec d = random_data(512, rng);
  const BitVec cw = code.encode(d);
  for (std::size_t i = 0; i < code.codeword_bits(); i += 17) {
    BitVec bad = cw;
    bad.flip(i);
    const DecodeResult r = code.decode(bad);
    EXPECT_EQ(r.status, DecodeStatus::kCorrected);
    EXPECT_EQ(r.data, d);
  }
}

TEST(Secded, DoubleErrorDetectedOn512BitLine) {
  Rng rng(5);
  const Secded code(512);
  const BitVec d = random_data(512, rng);
  const BitVec cw = code.encode(d);
  for (int trial = 0; trial < 500; ++trial) {
    const std::size_t i = rng.next_below(code.codeword_bits());
    std::size_t j = rng.next_below(code.codeword_bits());
    while (j == i) j = rng.next_below(code.codeword_bits());
    BitVec bad = cw;
    bad.flip(i);
    bad.flip(j);
    EXPECT_EQ(code.decode(bad).status, DecodeStatus::kUncorrectable);
  }
}

TEST(Secded, AllZeroAndAllOneWords) {
  const Secded code(64);
  BitVec zero(64);
  EXPECT_EQ(code.decode(code.encode(zero)).status, DecodeStatus::kClean);
  BitVec ones(64);
  for (std::size_t i = 0; i < 64; ++i) ones.set(i, true);
  const DecodeResult r = code.decode(code.encode(ones));
  EXPECT_EQ(r.status, DecodeStatus::kClean);
  EXPECT_EQ(r.data, ones);
}

TEST(Secded, RejectsTooSmallData) {
  EXPECT_THROW(Secded(3), std::invalid_argument);
}

TEST(Secded, RejectsDataNeedingThirtyTwoOrMoreCheckBits) {
  // k = 2^31 would need r = 32 Hamming check bits; the tag arithmetic is
  // 32-bit (1u << i), so the constructor must refuse *before* trying to
  // allocate the 2^32-entry tag table. This must throw fast, not OOM.
  EXPECT_THROW(Secded(std::size_t{1} << 31), std::invalid_argument);
  EXPECT_THROW(Secded(std::numeric_limits<std::size_t>::max() / 2),
               std::invalid_argument);
}

TEST(Secded, LargestPracticalCodeRoundTrips) {
  // A comfortably-large k (r = 16) exercising the upper range that the
  // r < 32 bound is meant to keep sound: encode/decode round trip plus
  // single-error correction at both ends of the codeword.
  const std::size_t k = 1 << 15;  // 32768 data bits -> r = 16
  const Secded code(k);
  EXPECT_EQ(code.parity_bits(), 17u);  // 16 Hamming + overall parity
  Rng rng(7);
  const BitVec d = random_data(k, rng);
  const BitVec cw = code.encode(d);
  EXPECT_EQ(code.decode(cw).status, DecodeStatus::kClean);
  for (const std::size_t flip :
       {std::size_t{0}, k - 1, k, code.codeword_bits() - 1}) {
    BitVec bad = cw;
    bad.flip(flip);
    const DecodeResult r = code.decode(bad);
    EXPECT_EQ(r.status, DecodeStatus::kCorrected) << "flip at " << flip;
    EXPECT_EQ(r.data, d) << "flip at " << flip;
  }
}

TEST(Secded, DistinctDataEncodesToDistinctCodewords) {
  const Secded code(64);
  Rng rng(6);
  const BitVec a = random_data(64, rng);
  BitVec b = a;
  b.flip(rng.next_below(64));
  EXPECT_NE(code.encode(a), code.encode(b));
}

}  // namespace
}  // namespace mecc::ecc
